package sti

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"

	"sti/internal/interp"
	"sti/internal/metrics"
)

const obsvTC = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func openObsvDB(t *testing.T, opts ...Option) *Database {
	t.Helper()
	db, err := MustParse(obsvTC).Open(opts...)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func seedChain(t *testing.T, db *Database, n int) {
	t.Helper()
	b := db.NewBatch()
	for i := 0; i < n; i++ {
		b.Add("edge", i, i+1)
	}
	if err := db.Apply(b); err != nil {
		t.Fatalf("apply: %v", err)
	}
}

// The disabled observability path must add zero allocations to Query and
// Apply: a database opened without WithObservability allocates exactly as
// much per operation as one opened with it (and the obsv package's own
// AllocsPerRun tests prove the enabled Start/Finish pair is free too).
func TestObservabilityZeroAllocParity(t *testing.T) {
	plain := openObsvDB(t)
	instr := openObsvDB(t, WithObservability(ObservabilityConfig{}))
	seedChain(t, plain, 4)
	seedChain(t, instr, 4)
	if plain.Observer() != nil {
		t.Fatal("plain database has an observer")
	}
	if instr.Observer() == nil {
		t.Fatal("instrumented database has no observer")
	}

	queryAllocs := func(db *Database) float64 {
		return testing.AllocsPerRun(100, func() {
			if _, err := db.Query("path", 0, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	applyAllocs := func(db *Database) float64 {
		return testing.AllocsPerRun(100, func() {
			if err := db.Apply(db.NewBatch()); err != nil {
				t.Fatal(err)
			}
		})
	}
	if p, i := queryAllocs(plain), queryAllocs(instr); p != i {
		t.Fatalf("Query allocations diverge: plain %.1f, instrumented %.1f", p, i)
	}
	if p, i := applyAllocs(plain), applyAllocs(instr); p != i {
		t.Fatalf("Apply allocations diverge: plain %.1f, instrumented %.1f", p, i)
	}
}

// An Apply crossing the slow threshold emits exactly one structured record
// carrying the request ID and the engine profile group.
func TestSlowApplyEmitsProfileRecord(t *testing.T) {
	var buf bytes.Buffer
	db := openObsvDB(t, WithObservability(ObservabilityConfig{
		Logger:      slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowRequest: time.Nanosecond,
	}))
	seedChain(t, db, 3)

	dec := json.NewDecoder(&buf)
	var rec map[string]any
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("slow log is not one JSON record: %v (buf %q)", err, buf.String())
	}
	if rec["msg"] != "slow request" || rec["op"] != "apply" || rec["outcome"] != "incremental" {
		t.Fatalf("record = %v", rec)
	}
	rid, _ := rec["request"].(string)
	if !strings.HasPrefix(rid, "r") {
		t.Fatalf("record carries no request ID: %v", rec)
	}
	eng, ok := rec["engine"].(map[string]any)
	if !ok {
		t.Fatalf("record carries no engine profile: %v", rec)
	}
	for _, key := range []string{"epoch", "applies", "incremental_applies", "recomputes", "phase"} {
		if _, present := eng[key]; !present {
			t.Fatalf("engine profile missing %s: %v", eng, rec)
		}
	}
	// The record reports the epoch this apply published, not the one it
	// started from.
	if eng["epoch"] != float64(1) {
		t.Fatalf("engine epoch = %v, want 1: %v", eng["epoch"], rec)
	}
	if dec.More() {
		t.Fatal("one slow apply emitted more than one record")
	}
	if db.Observer().Stats().Slow != 1 {
		t.Fatalf("slow counter = %d", db.Observer().Stats().Slow)
	}
}

// Slow reads attach the lock-free profile: reads hold no writer lock, so
// their records carry only the atomically mirrored epoch and phase.
func TestSlowQueryEmitsReadProfile(t *testing.T) {
	var buf bytes.Buffer
	db := openObsvDB(t, WithObservability(ObservabilityConfig{
		Logger:      slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowRequest: time.Nanosecond,
	}))
	seedChain(t, db, 3)
	buf.Reset() // drop the slow-apply record from seeding
	if _, err := db.Query("path", 0, nil); err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.NewDecoder(&buf).Decode(&rec); err != nil {
		t.Fatalf("slow log is not one JSON record: %v (buf %q)", err, buf.String())
	}
	if rec["msg"] != "slow request" || rec["op"] != "query" || rec["detail"] != "path" {
		t.Fatalf("record = %v", rec)
	}
	eng, ok := rec["engine"].(map[string]any)
	if !ok {
		t.Fatalf("record carries no engine profile: %v", rec)
	}
	if eng["epoch"] != float64(1) || eng["phase"] != "ready" {
		t.Fatalf("read profile = %v", eng)
	}
	if _, present := eng["applies"]; present {
		t.Fatalf("read profile must not expose lock-guarded counters: %v", eng)
	}
}

// Stats carries the request-level snapshot and the cumulative
// fallback-reason counts, and both survive JSON marshaling (the expvar
// sti.db blob publishes exactly this struct).
func TestStatsCarriesRequestsAndFallbackReasons(t *testing.T) {
	db := openObsvDB(t, WithShards(2), WithObservability(ObservabilityConfig{}))
	seedChain(t, db, 3) // sharded database: every apply is a recorded fallback
	if rows, err := db.Query("path", 0, nil); err != nil || len(rows) == 0 {
		t.Fatalf("query hit: %v rows, err %v", len(rows), err)
	}
	if rows, err := db.Query("path", 99, nil); err != nil || len(rows) != 0 {
		t.Fatalf("query miss: %v rows, err %v", len(rows), err)
	}

	st := db.Stats()
	if st.FallbackReasons[fallbackSharded] != 1 {
		t.Fatalf("fallback reasons = %v", st.FallbackReasons)
	}
	if st.Requests == nil {
		t.Fatal("stats carry no request snapshot")
	}
	series := map[string]bool{}
	for _, s := range st.Requests.Series {
		series[s.Op+"/"+s.Outcome] = true
	}
	for _, want := range []string{"apply/fallback", "query/ok", "query/miss"} {
		if !series[want] {
			t.Fatalf("request snapshot missing %s series: %+v", want, st.Requests.Series)
		}
	}
	enc, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"fallback_reasons"`, `"requests"`, `"op":"query"`} {
		if !strings.Contains(string(enc), want) {
			t.Fatalf("stats JSON missing %s: %s", want, enc)
		}
	}
}

// With tracing enabled, instrumented requests tag their engine spans: the
// Chrome trace carries request IDs on eval/update and query spans.
func TestRequestIDsJoinTraceSpans(t *testing.T) {
	col := metrics.New()
	col.EnableTrace(0)
	cfg := interp.DefaultConfig()
	cfg.Metrics = col
	db := openObsvDB(t,
		WithInterpreterConfig(cfg),
		WithObservability(ObservabilityConfig{}))
	seedChain(t, db, 3)
	if _, err := db.Query("path", 0, nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []metrics.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	tagged := map[string]bool{} // span name -> saw a request arg
	for _, ev := range trace.TraceEvents {
		if rid, ok := ev.Args["request"].(string); ok && strings.HasPrefix(rid, "r") {
			tagged[ev.Name] = true
		}
	}
	if !tagged["update"] {
		t.Fatalf("apply's update span carries no request ID; tagged spans: %v", tagged)
	}
	if !tagged["api:path"] {
		t.Fatalf("query span carries no request ID; tagged spans: %v", tagged)
	}
}
