package sti

import (
	"errors"
	"log/slog"
	"time"

	"sti/internal/interp"
	"sti/internal/obsv"
)

// ObservabilityConfig enables the request-scoped observability layer of a
// resident database: every Apply/Query/Scan is assigned a request ID, its
// latency lands in log-bucketed histograms partitioned by operation and
// outcome, and requests crossing SlowRequest emit one structured log record
// carrying the request ID and the engine profile. The collected counters
// surface through Database.Stats() (and thus the expvar sti.db blob) and
// through the observer's Prometheus text exposition (the /metrics endpoint
// of sti serve).
//
// Observability is opt-in. Without WithObservability a database pays the
// disabled path: one nil check per operation and zero additional
// allocations (guaranteed by AllocsPerRun tests, mirroring the telemetry
// layer's contract).
type ObservabilityConfig struct {
	// Logger receives the slow-request records; nil keeps all counters live
	// but logs nothing.
	Logger *slog.Logger
	// SlowRequest is the latency threshold beyond which a request is logged
	// with its engine profile. <= 0 disables the slow-request log.
	SlowRequest time.Duration
}

// WithObservability attaches a request-scoped observer to a resident
// database (Open only; one-shot Run ignores it).
func WithObservability(cfg ObservabilityConfig) Option {
	return func(o *runOptions) {
		o.obs = obsv.New(obsv.Config{Logger: cfg.Logger, SlowRequest: cfg.SlowRequest})
	}
}

// Observer returns the database's observability hub (nil unless the
// database was opened WithObservability). The serve layer uses it for the
// Prometheus exposition and HTTP request accounting.
func (db *Database) Observer() *obsv.Observer { return db.obs }

// Phase reports the engine's lifecycle phase ("ready" on a healthy
// database). It reads an atomically published snapshot, so health probes
// never block behind an in-flight Apply.
func (db *Database) Phase() string {
	return interp.Phase(db.phaseV.Load()).String()
}

// Ready reports whether the database can serve requests: it is open, the
// engine has not failed mid-apply, and the materialized fixpoint is
// available. Like Phase it never blocks, making it suitable for readiness
// probes. A database stays ready for reads while an Apply is in flight —
// snapshots keep serving the previous epoch.
func (db *Database) Ready() error {
	if db.stClosed.Load() {
		return errClosed
	}
	if db.stBroken.Load() {
		return errors.New("sti: database is broken: the engine failed mid-apply and may hold a partial fixpoint")
	}
	if p := interp.Phase(db.phaseV.Load()); p != interp.PhaseReady {
		return errors.New("sti: database is not ready: engine phase " + p.String())
	}
	return nil
}

// SlowAttrs supplies the engine profile attached to slow-request log
// records: the apply counters, the per-path split, and the most recent
// fallback reason. It implements obsv.SlowProfiler and is invoked on the
// Apply path while the writer lock is held, so plain field reads are safe.
func (db *Database) SlowAttrs() []slog.Attr {
	attrs := []slog.Attr{
		slog.Uint64("epoch", db.epochV.Load()),
		slog.Uint64("applies", db.applies),
		slog.Uint64("incremental_applies", db.incremental),
		slog.Uint64("recomputes", db.recomputes),
		slog.String("phase", interp.Phase(db.phaseV.Load()).String()),
	}
	if db.fallbackReason != "" {
		attrs = append(attrs, slog.String("fallback_reason", db.fallbackReason))
	}
	if tel := db.eng.Telemetry(); tel != nil {
		if rep := tel.Report(); rep != nil && len(rep.Fixpoints) > 0 {
			last := rep.Fixpoints[len(rep.Fixpoints)-1]
			attrs = append(attrs,
				slog.String("last_fixpoint", last.Label),
				slog.Int("last_fixpoint_iterations", last.Iterations))
		}
	}
	return attrs
}

// readProfile is the engine profile attached to slow *read* (Query/Scan)
// records. Reads hold no lock, so only atomically mirrored state is safe
// here; slow applies attach the full profile (Database.SlowAttrs) instead.
// One instance lives on the Database so the read hot path stays
// allocation-free.
type readProfile struct{ db *Database }

func (p *readProfile) SlowAttrs() []slog.Attr {
	return []slog.Attr{
		slog.Uint64("epoch", p.db.epochV.Load()),
		slog.String("phase", interp.Phase(p.db.phaseV.Load()).String()),
	}
}

// registerObsvMetrics wires the database-level gauges and counters into the
// observer's scrape path. Each source takes its own short-lived snapshot,
// so scrapes are consistent with the epoch they observe and never tear an
// in-flight Apply.
func (db *Database) registerObsvMetrics() {
	obs := db.obs
	obs.Register(obsv.KindGauge, "sti_db_epoch",
		"Completed Apply epochs (including Close).",
		func() float64 { return float64(db.guard.Epoch()) })
	obs.Register(obsv.KindCounter, "sti_db_applies_total",
		"Total Apply calls.",
		db.snapshotCounter(func() uint64 { return db.applies }))
	obs.Register(obsv.KindCounter, "sti_db_incremental_applies_total",
		"Batches absorbed through the incremental update/delete entry points.",
		db.snapshotCounter(func() uint64 { return db.incremental }))
	obs.Register(obsv.KindCounter, "sti_db_recomputes_total",
		"Batches that lost the incremental path and recomputed from scratch.",
		db.snapshotCounter(func() uint64 { return db.recomputes }))
	obs.RegisterVec(obsv.KindCounter, "sti_apply_fallbacks_total",
		"Recompute fallbacks by reason.", "reason",
		func() map[string]float64 {
			s := db.Snapshot()
			defer s.Release()
			out := make(map[string]float64, len(db.fallbackCounts))
			for reason, n := range db.fallbackCounts {
				out[reason] = float64(n)
			}
			return out
		})
	if db.pst != nil {
		db.registerPersistMetrics()
	}
	obs.RegisterVec(obsv.KindGauge, "sti_relation_tuples",
		"Tuples per relation (aux relations excluded).", "rel",
		func() map[string]float64 {
			s := db.Snapshot()
			defer s.Release()
			out := map[string]float64{}
			for _, rd := range db.prog.ram.Relations {
				if !rd.Aux {
					out[rd.Name] = float64(db.eng.Relation(rd.Name).Size())
				}
			}
			return out
		})
}

// registerPersistMetrics wires the durable tier's counters into the scrape
// path: WAL traffic, checkpoint cadence, and segment-store shape.
func (db *Database) registerPersistMetrics() {
	obs := db.obs
	persist := func(read func(*PersistStats) float64) func() float64 {
		return func() float64 {
			s := db.Snapshot()
			defer s.Release()
			return read(db.pst.stats())
		}
	}
	obs.Register(obsv.KindGauge, "sti_persist_generation",
		"Current snapshot/WAL generation of the data directory.",
		persist(func(p *PersistStats) float64 { return float64(p.Generation) }))
	obs.Register(obsv.KindCounter, "sti_persist_wal_records_total",
		"Batches appended to the current WAL generation.",
		persist(func(p *PersistStats) float64 { return float64(p.WALRecords) }))
	obs.Register(obsv.KindCounter, "sti_persist_wal_bytes_total",
		"Payload bytes appended to the current WAL generation.",
		persist(func(p *PersistStats) float64 { return float64(p.WALBytes) }))
	obs.Register(obsv.KindCounter, "sti_persist_snapshots_total",
		"Checkpoints taken this session (open, periodic, and close).",
		persist(func(p *PersistStats) float64 { return float64(p.Snapshots) }))
	obs.Register(obsv.KindGauge, "sti_persist_applies_since_snapshot",
		"Applies since the last checkpoint (the WAL replay a crash would pay).",
		persist(func(p *PersistStats) float64 { return float64(p.SinceSnapshot) }))
	obs.Register(obsv.KindGauge, "sti_persist_segments",
		"On-disk segment runs across all durable tables.",
		persist(func(p *PersistStats) float64 { return float64(p.Segments) }))
	obs.Register(obsv.KindGauge, "sti_persist_live_keys",
		"Live keys across all durable tables.",
		persist(func(p *PersistStats) float64 { return float64(p.LiveKeys) }))
	obs.Register(obsv.KindCounter, "sti_persist_flushes_total",
		"Memtable flushes to segment files.",
		persist(func(p *PersistStats) float64 { return float64(p.Flushes) }))
	obs.Register(obsv.KindCounter, "sti_persist_compactions_total",
		"Background segment compactions completed.",
		persist(func(p *PersistStats) float64 { return float64(p.Compactions) }))
	obs.RegisterVec(obsv.KindGauge, "sti_persist_gated",
		"Input relations kept on the in-memory tier, by relation (value is 1; the reason is in Stats).", "rel",
		func() map[string]float64 {
			s := db.Snapshot()
			defer s.Release()
			out := make(map[string]float64, len(db.pst.gates))
			for rel := range db.pst.gates {
				out[rel] = 1
			}
			return out
		})
}

// snapshotCounter adapts a plain counter read into a scrape source that
// pins a snapshot for the read (writers mutate these counters only under
// the writer lock, which a pinned snapshot excludes).
func (db *Database) snapshotCounter(read func() uint64) func() float64 {
	return func() float64 {
		s := db.Snapshot()
		defer s.Release()
		return float64(read())
	}
}
