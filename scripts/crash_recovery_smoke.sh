#!/usr/bin/env bash
# Crash-recovery smoke for the durable resident engine (sti serve -data).
#
# Three runs of the same batch stream over a symbol-typed transitive
# closure:
#
#   reference   one uninterrupted in-memory session applying every batch,
#               then a query block
#   crashed     a durable session absorbs the first half of the batches and
#               is killed with SIGKILL mid-stream (no graceful close, WAL
#               past the last checkpoint); a restart on the same data
#               directory must recover, absorb the second half, and answer
#               the query block byte-identically to the reference
#   graceful    a durable HTTP session is sent SIGTERM and must exit 0
#               after checkpointing, with the restart recovering instantly
#
# The query block output (rows + counts, "applied epoch" chatter stripped)
# is diffed, so row order matters: recovery must restore symbol ordinals
# exactly. Usage: scripts/crash_recovery_smoke.sh [path-to-sti-binary]
set -euo pipefail

bin=${1:-${STI_BIN:-./bin/sti}}
if [ ! -x "$bin" ]; then
  echo "building $bin" >&2
  go build -o "$bin" ./cmd/sti
fi
bin=$(readlink -f "$bin")

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cd "$work"

cat > tc.dl <<'EOF'
.decl edge(x:symbol, y:symbol)
.decl path(x:symbol, y:symbol)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
EOF

# batch N emits one apply-able batch: a chain link, a cross edge, and from
# the third batch on a deletion of an earlier cross edge (so the stream
# exercises delete propagation on the durable tier too).
batch() {
  local n=$1
  printf '+edge\tn%d\tn%d\n' "$n" $((n + 1))
  printf '+edge\tn%d\tx%d\n' "$n" "$n"
  if [ "$n" -ge 3 ]; then
    printf -- '-edge\tn%d\tx%d\n' $((n - 2)) $((n - 2))
  fi
  printf 'apply\n'
}

queries() {
  printf 'query path\nquery edge\ncount path\ncount edge\n'
}

total=8
half=4

# --- reference: uninterrupted, in-memory ---------------------------------
{
  for i in $(seq 1 $total); do batch "$i"; done
  queries
  printf 'quit\n'
} | "$bin" serve tc.dl > ref.raw
grep -v '^applied epoch=' ref.raw > ref.out

# --- crashed: first half, SIGKILL, recover, second half ------------------
mkfifo crash.in
"$bin" serve tc.dl -data data -snapshot-every 3 < crash.in > crash1.raw 2> crash1.log &
pid=$!
exec 3> crash.in
for i in $(seq 1 $half); do batch "$i" >&3; done
# Wait until every first-half batch is applied (and therefore WAL-logged:
# the record is appended and flushed to the OS before the engine mutates),
# then kill hard. snapshot-every=3 guarantees the last checkpoint is stale,
# so the restart must replay WAL records, not just load a snapshot.
for _ in $(seq 1 100); do
  [ "$(grep -c '^applied epoch=' crash1.raw)" -eq "$half" ] && break
  sleep 0.1
done
[ "$(grep -c '^applied epoch=' crash1.raw)" -eq "$half" ] || {
  echo "first-half applies never landed:" >&2; cat crash1.raw crash1.log >&2; exit 1
}
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
exec 3>&-

{
  for i in $(seq $((half + 1)) $total); do batch "$i"; done
  queries
  printf 'stats\nquit\n'
} | "$bin" serve tc.dl -data data -snapshot-every 3 > crash2.raw 2> crash2.log
grep '"recovered":true' crash2.raw > /dev/null || {
  echo "restart did not report recovery:" >&2; cat crash2.raw crash2.log >&2; exit 1
}
grep -v '^applied epoch=\|^{' crash2.raw > crash.out

if ! diff -u ref.out crash.out; then
  echo "FAIL: recovered query output differs from the uninterrupted run" >&2
  exit 1
fi
echo "crash recovery: query output byte-identical after kill -9 + restart"

# --- graceful: SIGTERM checkpoints and exits 0 ---------------------------
rm -rf data2
port=$((RANDOM % 2000 + 18000))
"$bin" serve tc.dl -data data2 -http "127.0.0.1:$port" < /dev/null > grace.raw 2> grace.log &
gpid=$!
for _ in $(seq 1 100); do
  curl -sf "http://127.0.0.1:$port/healthz" > /dev/null 2>&1 && break
  sleep 0.1
done
# batch() ends with the line-protocol "apply" command; HTTP bodies carry
# only the +/- lines.
curl -sf -X POST --data-binary "$(batch 1 | grep -v '^apply$')" \
  "http://127.0.0.1:$port/apply" > /dev/null
kill -TERM "$gpid"
rc=0
wait "$gpid" || rc=$?
[ "$rc" -eq 0 ] || { echo "SIGTERM exit status $rc:" >&2; cat grace.log >&2; exit 1; }
grep -q 'shutdown complete' grace.log || {
  echo "no shutdown record in the log:" >&2; cat grace.log >&2; exit 1
}
# A graceful close checkpointed, so the restart recovers from the snapshot
# with nothing to replay.
printf 'stats\ncount path\nquit\n' | "$bin" serve tc.dl -data data2 > grace2.raw
grep -q '"recovered":true' grace2.raw
grep -q '"recovered_records"' grace2.raw && {
  echo "graceful restart had WAL records to replay:" >&2; cat grace2.raw >&2; exit 1
}
grep -qx '3' grace2.raw
echo "graceful shutdown: SIGTERM checkpointed, exited 0, restart replayed nothing"
