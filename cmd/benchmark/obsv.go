package main

import (
	"fmt"
	"io"
	"time"

	"sti"
	"sti/internal/bench"
)

// obsvSrc is the observability-overhead workload: transitive closure on
// disjoint chains, the same shape the resident benchmark uses, driven
// through the public Database API so the instrumented Apply/Query wrappers
// are on the measured path.
const obsvSrc = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

// obsvShape sizes the request stream: a component-chain base, then batches
// of chain extensions each followed by a burst of point queries — the mix a
// resident serve deployment sees.
type obsvShape struct {
	components int
	chainLen   int
	batches    int
	batchSize  int
	queries    int // point queries after each batch
}

const obsvStride = 1 << 16

func obsvShapeAt(scale bench.Scale) obsvShape {
	return obsvShape{
		components: []int{50, 200, 400}[scale],
		chainLen:   64,
		batches:    []int{25, 50, 100}[scale],
		batchSize:  8,
		queries:    30,
	}
}

// runObsv measures the end-to-end overhead of the observability layer: the
// same apply+query stream runs against a plain database and one opened
// WithObservability (histograms live, slow threshold armed but never
// crossed). The minimum wall over repeats is reported per variant, and the
// observed row's Ratio is observed/plain — the CI regression guard holds it
// under the documented 2% budget (docs/OPERATIONS.md).
func runObsv(scale bench.Scale, repeats int, w io.Writer) ([]bench.BenchRecord, error) {
	shape := obsvShapeAt(scale)
	prog, err := sti.Parse(obsvSrc)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		opts []sti.Option
	}{
		{"plain", nil},
		{"observed", []sti.Option{sti.WithObservability(sti.ObservabilityConfig{
			SlowRequest: time.Minute, // armed, never crossed: the realistic hot path
		})}},
	}
	fmt.Fprintf(w, "observability overhead (scale=%s; %d base edges, %d batches of %d edges + %d queries each)\n",
		scale, shape.components*(shape.chainLen-1), shape.batches, shape.batchSize, shape.queries)
	fmt.Fprintf(w, "%-14s %12s %10s %8s\n", "variant", "wall", "tuples", "ratio")

	walls := map[string]time.Duration{}
	tuples := map[string]int{}
	for rep := 0; rep < repeats || rep == 0; rep++ {
		// Interleave variants within each repeat so machine drift hits both,
		// and alternate the order so warm-up effects don't systematically
		// favor whichever side runs second.
		order := []int{0, 1}
		if rep%2 == 1 {
			order = []int{1, 0}
		}
		for _, vi := range order {
			v := variants[vi]
			wall, n, err := obsvStream(prog, shape, v.opts)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", v.name, err)
			}
			if cur, ok := walls[v.name]; !ok || wall < cur {
				walls[v.name] = wall
				tuples[v.name] = n
			}
		}
	}
	if tuples["plain"] != tuples["observed"] {
		return nil, fmt.Errorf("obsv: tuple mismatch: plain=%d observed=%d", tuples["plain"], tuples["observed"])
	}
	ratio := float64(walls["observed"]) / float64(walls["plain"])
	var records []bench.BenchRecord
	for _, v := range variants {
		r := bench.BenchRecord{
			Workload: fmt.Sprintf("tc-%dx%d", shape.components, shape.chainLen),
			Variant:  v.name,
			WallNs:   walls[v.name].Nanoseconds(),
			Tuples:   tuples[v.name],
		}
		if v.name == "observed" {
			r.Ratio = ratio
		}
		records = append(records, r)
		fmt.Fprintf(w, "%-14s %12v %10d %8.3f\n",
			r.Variant, walls[v.name].Round(time.Microsecond), r.Tuples, r.Ratio)
	}
	return records, nil
}

// obsvStream opens a database, loads the chain base (untimed), then times
// the batch/query stream and returns the wall time and final path size.
func obsvStream(prog *sti.Program, shape obsvShape, opts []sti.Option) (time.Duration, int, error) {
	db, err := prog.Open(opts...)
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	base := db.NewBatch()
	for c := 0; c < shape.components; c++ {
		for i := 0; i < shape.chainLen-1; i++ {
			base.Add("edge", c*obsvStride+i, c*obsvStride+i+1)
		}
	}
	if err := db.Apply(base); err != nil {
		return 0, 0, err
	}

	start := time.Now()
	for bi := 0; bi < shape.batches; bi++ {
		b := db.NewBatch()
		for j := 0; j < shape.batchSize; j++ {
			k := bi*shape.batchSize + j
			c := k % shape.components
			ext := k / shape.components
			tail := c*obsvStride + shape.chainLen - 1 + ext
			b.Add("edge", tail, tail+1)
		}
		if err := db.Apply(b); err != nil {
			return 0, 0, err
		}
		for q := 0; q < shape.queries; q++ {
			c := (bi*shape.queries + q) % shape.components
			if _, err := db.Query("path", c*obsvStride, nil); err != nil {
				return 0, 0, err
			}
		}
	}
	elapsed := time.Since(start)
	n, err := db.Size("path")
	if err != nil {
		return 0, 0, err
	}
	return elapsed, n, nil
}
