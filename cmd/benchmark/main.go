// Command benchmark regenerates the paper's tables and figures (see
// DESIGN.md §5 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results).
//
//	benchmark -fig 15          STI & legacy slowdown vs compiled (Fig 15)
//	benchmark -fig 16          per-rule slowdown case study (Fig 16)
//	benchmark -fig 18          static instruction generation ablation
//	benchmark -fig 19          super-instruction ablation
//	benchmark -fig reorder     static tuple reordering ablation (§5.5)
//	benchmark -fig dispatch    lean dispatch ablation (§5.5)
//	benchmark -table 1         first-run compile+execute ratios (Table 1)
//	benchmark -all             everything
//
// Flags: -scale small|medium|large, -repeat N, -no-legacy.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sti/internal/bench"
)

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 15 | 16 | 18 | 19 | reorder | dispatch")
	table := flag.String("table", "", "table to reproduce: 1")
	all := flag.Bool("all", false, "run every experiment")
	scaleFlag := flag.String("scale", "small", "workload scale: small | medium | large")
	repeats := flag.Int("repeat", 1, "measurement repetitions (minimum is reported)")
	noLegacy := flag.Bool("no-legacy", false, "skip the slow legacy-interpreter runs in Fig 15")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	if !*all && *fig == "" && *table == "" {
		flag.Usage()
		os.Exit(2)
	}

	w := os.Stdout
	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %v", name, err))
		}
		fmt.Fprintln(w)
	}

	if *all || *fig == "15" {
		run("fig15", func() error {
			_, err := bench.Fig15(scale, *repeats, !*noLegacy, w)
			return err
		})
	}
	if *all || *fig == "16" {
		run("fig16", func() error {
			_, err := bench.Fig16(scale, w)
			return err
		})
	}
	if *all || *fig == "18" {
		run("fig18", func() error {
			_, err := bench.Fig18(scale, *repeats, w)
			return err
		})
	}
	if *all || *fig == "19" {
		run("fig19", func() error {
			_, err := bench.Fig19(scale, *repeats, w)
			return err
		})
	}
	if *all || *fig == "reorder" {
		run("reorder", func() error {
			_, err := bench.FigReorder(scale, *repeats, w)
			return err
		})
	}
	if *all || *fig == "dispatch" {
		run("dispatch", func() error {
			_, err := bench.FigDispatch(scale, *repeats, w)
			return err
		})
	}
	if *all || *fig == "portfolio" {
		run("portfolio", func() error {
			return bench.FigPortfolio(scale, *repeats, w)
		})
	}
	if *all || *table == "1" {
		run("table1", func() error {
			root, err := moduleRoot()
			if err != nil {
				return err
			}
			_, err = bench.Table1(scale, root, w)
			return err
		})
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("benchmark must run inside the sti module (go.mod not found)")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmark:", err)
	os.Exit(1)
}
