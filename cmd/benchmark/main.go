// Command benchmark regenerates the paper's tables and figures (see
// DESIGN.md §5 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results).
//
//	benchmark -fig 15          STI & legacy slowdown vs compiled (Fig 15)
//	benchmark -fig 16          per-rule slowdown case study (Fig 16)
//	benchmark -fig 18          static instruction generation ablation
//	benchmark -fig 19          super-instruction ablation
//	benchmark -fig reorder     static tuple reordering ablation (§5.5)
//	benchmark -fig dispatch    lean dispatch ablation (§5.5)
//	benchmark -fig scaling     worker-scaling sweep (wall time, tuples/s)
//	benchmark -fig shard       shard-scaling sweep vs unsharded baseline
//	benchmark -fig resident    resident incremental Apply vs re-running
//	benchmark -fig delete      incremental deletion vs recompute fallback
//	benchmark -fig obsv        observability layer overhead (plain vs
//	                           WithObservability on the same request stream)
//	benchmark -fig persist     durable tier overhead and cold-restart
//	                           recovery (memory vs WithPersistence)
//	benchmark -table 1         first-run compile+execute ratios (Table 1)
//	benchmark -all             everything
//
// Flags: -scale small|medium|large, -repeat N, -no-legacy, and -json DIR to
// also write each experiment's results as machine-readable BENCH_<name>.json
// (workloads, wall times, tuple throughput, worker counts, git revision).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sti/internal/bench"
)

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 15 | 16 | 18 | 19 | reorder | dispatch | scaling | shard | resident | delete | obsv | persist")
	table := flag.String("table", "", "table to reproduce: 1")
	all := flag.Bool("all", false, "run every experiment")
	scaleFlag := flag.String("scale", "small", "workload scale: small | medium | large")
	repeats := flag.Int("repeat", 1, "measurement repetitions (minimum is reported)")
	noLegacy := flag.Bool("no-legacy", false, "skip the slow legacy-interpreter runs in Fig 15")
	jsonDir := flag.String("json", "", "directory to write machine-readable BENCH_<experiment>.json results")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	if !*all && *fig == "" && *table == "" {
		flag.Usage()
		os.Exit(2)
	}

	w := os.Stdout
	// run executes one experiment; the returned records (nil when the
	// experiment has no machine-readable form) go to -json.
	run := func(name string, fn func() ([]bench.BenchRecord, error)) {
		records, err := fn()
		if err != nil {
			fatal(fmt.Errorf("%s: %v", name, err))
		}
		fmt.Fprintln(w)
		if *jsonDir == "" || records == nil {
			return
		}
		log := bench.NewBenchLog(name, scale, *repeats)
		log.Records = records
		path, err := log.WriteJSON(*jsonDir)
		if err != nil {
			fatal(fmt.Errorf("%s: writing json: %v", name, err))
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if *all || *fig == "15" {
		run("fig15", func() ([]bench.BenchRecord, error) {
			rows, err := bench.Fig15(scale, *repeats, !*noLegacy, w)
			return bench.Fig15Records(rows), err
		})
	}
	if *all || *fig == "16" {
		run("fig16", func() ([]bench.BenchRecord, error) {
			rows, err := bench.Fig16(scale, w)
			return bench.Fig16Records(rows), err
		})
	}
	if *all || *fig == "18" {
		run("fig18", func() ([]bench.BenchRecord, error) {
			rows, err := bench.Fig18(scale, *repeats, w)
			return bench.AblationRecords(rows), err
		})
	}
	if *all || *fig == "19" {
		run("fig19", func() ([]bench.BenchRecord, error) {
			rows, err := bench.Fig19(scale, *repeats, w)
			return bench.AblationRecords(rows), err
		})
	}
	if *all || *fig == "reorder" {
		run("reorder", func() ([]bench.BenchRecord, error) {
			rows, err := bench.FigReorder(scale, *repeats, w)
			return bench.AblationRecords(rows), err
		})
	}
	if *all || *fig == "dispatch" {
		run("dispatch", func() ([]bench.BenchRecord, error) {
			rows, err := bench.FigDispatch(scale, *repeats, w)
			return bench.AblationRecords(rows), err
		})
	}
	if *all || *fig == "scaling" {
		run("scaling", func() ([]bench.BenchRecord, error) {
			rows, err := bench.Scaling(scale, *repeats, w)
			return bench.ScalingRecords(rows), err
		})
	}
	if *all || *fig == "shard" {
		run("shard", func() ([]bench.BenchRecord, error) {
			rows, err := bench.Shard(scale, *repeats, w)
			return bench.ShardRecords(rows), err
		})
	}
	if *all || *fig == "resident" {
		run("resident", func() ([]bench.BenchRecord, error) {
			rows, err := bench.Resident(scale, *repeats, w)
			return bench.ResidentRecords(rows), err
		})
	}
	if *all || *fig == "delete" {
		run("delete", func() ([]bench.BenchRecord, error) {
			rows, err := bench.Delete(scale, *repeats, w)
			return bench.DeleteRecords(rows), err
		})
	}
	if *all || *fig == "obsv" {
		run("obsv", func() ([]bench.BenchRecord, error) {
			return runObsv(scale, *repeats, w)
		})
	}
	if *all || *fig == "persist" {
		run("persist", func() ([]bench.BenchRecord, error) {
			return runPersist(scale, *repeats, w)
		})
	}
	if *all || *fig == "portfolio" {
		run("portfolio", func() ([]bench.BenchRecord, error) {
			return nil, bench.FigPortfolio(scale, *repeats, w)
		})
	}
	if *all || *table == "1" {
		run("table1", func() ([]bench.BenchRecord, error) {
			root, err := moduleRoot()
			if err != nil {
				return nil, err
			}
			rows, err := bench.Table1(scale, root, w)
			return bench.Table1Records(rows), err
		})
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("benchmark must run inside the sti module (go.mod not found)")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmark:", err)
	os.Exit(1)
}
