package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"sti"
	"sti/internal/bench"
)

// runPersist measures what durability costs and what it buys: the same
// apply+query stream as the obsv workload runs against a plain in-memory
// database and one opened WithPersistence (WAL on every apply, periodic
// checkpoints, the durable index tier live), and after each persistent run
// a cold restart times recovery — reopening the data directory until the
// database answers queries again. Three records come out:
//
//	memory      the in-memory baseline wall
//	persistent  the durable wall; Ratio = persistent/memory
//	recovery    cold-restart wall (snapshot restore + WAL replay + fixpoint)
//
// Minima over repeats are reported, and the persistent run must produce the
// same fixpoint sizes as the memory run (it shares obsvStream).
func runPersist(scale bench.Scale, repeats int, w io.Writer) ([]bench.BenchRecord, error) {
	shape := obsvShapeAt(scale)
	fmt.Fprintf(w, "durable tier overhead (scale=%s; %d base edges, %d batches of %d edges + %d queries each, checkpoint every %d applies)\n",
		scale, shape.components*(shape.chainLen-1), shape.batches, shape.batchSize, shape.queries, persistSnapshotEvery)
	fmt.Fprintf(w, "%-14s %12s %10s %8s\n", "variant", "wall", "tuples", "ratio")

	walls := map[string]time.Duration{}
	tuples := map[string]int{}
	for rep := 0; rep < repeats || rep == 0; rep++ {
		// Interleave the variants within each repeat so machine drift hits
		// both, alternating order to cancel warm-up bias (obsv precedent).
		order := []string{"memory", "persistent"}
		if rep%2 == 1 {
			order = []string{"persistent", "memory"}
		}
		for _, name := range order {
			var err error
			if name == "memory" {
				err = persistRepMemory(shape, walls, tuples)
			} else {
				err = persistRepDurable(shape, walls, tuples)
			}
			if err != nil {
				return nil, fmt.Errorf("%s: %v", name, err)
			}
		}
	}
	for _, v := range []string{"persistent", "recovery"} {
		if tuples[v] != tuples["memory"] {
			return nil, fmt.Errorf("persist: tuple mismatch: memory=%d %s=%d", tuples["memory"], v, tuples[v])
		}
	}
	ratio := float64(walls["persistent"]) / float64(walls["memory"])
	var records []bench.BenchRecord
	for _, v := range []string{"memory", "persistent", "recovery"} {
		r := bench.BenchRecord{
			Workload: fmt.Sprintf("tc-%dx%d", shape.components, shape.chainLen),
			Variant:  v,
			WallNs:   walls[v].Nanoseconds(),
			Tuples:   tuples[v],
		}
		if v == "persistent" {
			r.Ratio = ratio
		}
		records = append(records, r)
		fmt.Fprintf(w, "%-14s %12v %10d %8.3f\n",
			r.Variant, walls[v].Round(time.Microsecond), r.Tuples, r.Ratio)
	}
	return records, nil
}

// persistSnapshotEvery keeps checkpoints on the measured path: the stream
// applies dozens of batches, so several periodic snapshots land mid-run.
const persistSnapshotEvery = 16

func persistConfig(dir string) sti.Option {
	return sti.WithPersistenceConfig(sti.PersistenceConfig{
		Dir:           dir,
		SnapshotEvery: persistSnapshotEvery,
	})
}

func persistRepMemory(shape obsvShape, walls map[string]time.Duration, tuples map[string]int) error {
	prog, err := sti.Parse(obsvSrc)
	if err != nil {
		return err
	}
	wall, n, err := obsvStream(prog, shape, nil)
	if err != nil {
		return err
	}
	persistKeepMin(walls, tuples, "memory", wall, n)
	return nil
}

// persistRepDurable runs the stream through a fresh data directory, then
// cold-restarts it: a newly parsed Program reopens the directory (snapshot
// restore + WAL replay + recompute) and must answer with the same fixpoint.
func persistRepDurable(shape obsvShape, walls map[string]time.Duration, tuples map[string]int) error {
	dir, err := os.MkdirTemp("", "sti-bench-persist-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	prog, err := sti.Parse(obsvSrc)
	if err != nil {
		return err
	}
	wall, n, err := obsvStream(prog, shape, []sti.Option{persistConfig(dir)})
	if err != nil {
		return err
	}
	persistKeepMin(walls, tuples, "persistent", wall, n)

	reopened, err := sti.Parse(obsvSrc) // a restart parses the program afresh
	if err != nil {
		return err
	}
	start := time.Now()
	db, err := reopened.Open(persistConfig(dir))
	if err != nil {
		return fmt.Errorf("cold restart: %v", err)
	}
	rwall := time.Since(start)
	defer db.Close()
	rn, err := db.Size("path")
	if err != nil {
		return err
	}
	if p := db.Stats().Persist; p == nil || !p.Recovered {
		return fmt.Errorf("cold restart did not report recovery (stats=%+v)", db.Stats().Persist)
	}
	persistKeepMin(walls, tuples, "recovery", rwall, rn)
	return nil
}

func persistKeepMin(walls map[string]time.Duration, tuples map[string]int, name string, wall time.Duration, n int) {
	if cur, ok := walls[name]; !ok || wall < cur {
		walls[name] = wall
		tuples[name] = n
	}
}
