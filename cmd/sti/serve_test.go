package main

import (
	"errors"
	"strings"
	"testing"

	"sti"
	"sti/internal/eio"
)

const serveTC = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func openServeDB(t *testing.T) *sti.Database {
	t.Helper()
	db, err := sti.MustParse(serveTC).Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestServeLinesDeleteBatch drives the line protocol through an insert
// batch, a delete batch, and a stats read: deletions of a deletable program
// are absorbed incrementally and the counts reflect it.
func TestServeLinesDeleteBatch(t *testing.T) {
	db := openServeDB(t)
	in := strings.Join([]string{
		"+edge\t1\t2",
		"+edge\t2\t3",
		"+edge\t3\t4",
		"apply",
		"count path",
		"-edge\t2\t3",
		"apply",
		"count path",
		"stats",
		"quit",
	}, "\n") + "\n"
	var out strings.Builder
	quit, err := serveLines(db, strings.NewReader(in), &out)
	if err != nil {
		t.Fatalf("serveLines: %v", err)
	}
	if !quit {
		t.Fatal("session ended by quit, serveLines reported EOF")
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	want := []string{"applied epoch=1", "6", "applied epoch=2", "2"}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("line %d = %q, want %q\nfull output:\n%s", i, lines[i], w, out.String())
		}
	}
	stats := lines[len(lines)-1]
	if !strings.Contains(stats, `"incremental_applies":2`) || !strings.Contains(stats, `"applies_fallback":0`) {
		t.Fatalf("stats line missing incremental counters: %s", stats)
	}
	if !strings.Contains(stats, `"deletable":true`) {
		t.Fatalf("stats line missing deletable flag: %s", stats)
	}
}

// TestServeLinesRowErrorPosition pins the typed-error contract of the line
// protocol: a malformed field in a +/- line renders as stdin:line:col, with
// the column pointing at the offending byte after the "+rel<TAB>" prefix.
func TestServeLinesRowErrorPosition(t *testing.T) {
	db := openServeDB(t)
	in := strings.Join([]string{
		"+edge\t1\t2",   // line 1, fine
		"+edge\t3\tbad", // line 2: "bad" starts at byte column 9
		"-edge\tx\t2",   // line 3: "x" starts at byte column 7
		"+edge\t1",      // line 4: arity mismatch, whole-row error
		"quit",
	}, "\n") + "\n"
	var out strings.Builder
	quit, err := serveLines(db, strings.NewReader(in), &out)
	if err != nil {
		t.Fatalf("serveLines: %v", err)
	}
	if !quit {
		t.Fatal("session ended by quit, serveLines reported EOF")
	}
	text := out.String()
	for _, want := range []string{
		"error: stdin:2:9: relation edge:",
		"error: stdin:3:7: relation edge:",
		"error: stdin:4: relation edge: 1 fields, want 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// TestBatchAtRowError checks the typed error is a *eio.RowError all the way
// up through errors.As, not just a rendered string.
func TestBatchAtRowError(t *testing.T) {
	db := openServeDB(t)
	b := db.NewBatch().At("stdin", 7, 7).AddText("edge", []string{"1", "oops"})
	var re *eio.RowError
	if !errors.As(b.Err(), &re) {
		t.Fatalf("batch error %v is not a *eio.RowError", b.Err())
	}
	if re.Path != "stdin" || re.Line != 7 || re.Col != 9 || re.Rel != "edge" {
		t.Fatalf("RowError = %+v", re)
	}
}
