package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"sti/internal/ast2ram"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/ramopt"
	"sti/internal/sema"
	"sti/internal/symtab"
)

// cmdVet parses, analyzes, and translates one or more Datalog programs and
// runs the RAM verifier over the result — without executing anything. It
// accepts .dl files, Go files with embedded Datalog (backtick literals
// containing ".decl", the examples/ convention), and directories, which
// are walked for both. A trailing /... on a directory is accepted and
// ignored, matching go tool path spelling.
//
// Vet shares the findings pipeline with sti lint: frontend errors and
// verifier diagnostics print as path-located findings (or a JSON array
// with -json), exit code 0 means clean, 1 means findings, 2 means an
// internal error such as an unreadable path.
func cmdVet(args []string) {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	optimize := fs.Bool("O", false, "also verify the program after RAM optimization passes")
	verbose := fs.Bool("v", false, "report every checked program, not only failures")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sti vet [-O] [-v] [-json] path...   (\".dl\" files, Go files with embedded programs, or directories)")
		fs.PrintDefaults()
		os.Exit(2)
	}
	sources, err := collectSources(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sti:", err)
		os.Exit(2)
	}
	if len(sources) == 0 {
		fmt.Fprintf(os.Stderr, "sti: vet: no Datalog programs found under %s\n", strings.Join(fs.Args(), " "))
		os.Exit(2)
	}
	var all []finding
	for _, src := range sources {
		fnds, stats := vetOne(src, *optimize)
		if len(fnds) == 0 && *verbose && !*jsonOut {
			if *optimize && stats.Changed() {
				fmt.Printf("%s: ok (optimized: %s)\n", src.name, stats)
			} else {
				fmt.Printf("%s: ok\n", src.name)
			}
		}
		all = append(all, fnds...)
	}
	os.Exit(reportFindings(all, *jsonOut))
}

type vetSource struct {
	name string // path, plus #n for multi-program files
	text string
}

// vetOne runs one program through the frontend and the verifier, and —
// with optimize — through the RAM optimizer and the verifier again,
// reporting the optimizer's program shrink for -v.
func vetOne(src vetSource, optimize bool) ([]finding, ramopt.Stats) {
	var stats ramopt.Stats
	astProg, err := parser.Parse(src.text)
	if err != nil {
		return []finding{frontendFinding(src, err)}, stats
	}
	semProg, errs := sema.Analyze(astProg)
	if len(errs) > 0 {
		return []finding{frontendFinding(src, errs[0])}, stats
	}
	st := symtab.New()
	prog, err := ast2ram.Translate(semProg, st)
	if err != nil {
		return []finding{frontendFinding(src, err)}, stats
	}
	out := collectDiags(prog, src.name, "translate")
	if optimize && len(out) == 0 {
		stats = ramopt.OptimizeStats(prog, st, ramopt.All())
		out = append(out, collectDiags(prog, src.name, "optimize")...)
	}
	return out, stats
}

func collectDiags(prog *ram.Program, path, stage string) []finding {
	var out []finding
	for _, d := range verify.Program(prog) {
		out = append(out, finding{
			Path:     path,
			Code:     d.Rule,
			Severity: "error",
			Msg:      stage + ": " + d.Msg,
			Excerpt:  verify.Excerpt(prog, d),
		})
	}
	return out
}

// collectSources expands the argument list into Datalog program texts.
func collectSources(args []string) ([]vetSource, error) {
	var out []vetSource
	for _, arg := range args {
		arg = strings.TrimSuffix(strings.TrimSuffix(arg, "..."), string(filepath.Separator)+"...")
		arg = strings.TrimSuffix(arg, "/...")
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			srcs, err := fileSources(arg)
			if err != nil {
				return nil, err
			}
			out = append(out, srcs...)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			switch filepath.Ext(path) {
			case ".dl", ".go":
				srcs, err := fileSources(path)
				if err != nil {
					return err
				}
				out = append(out, srcs...)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fileSources reads one file: a .dl file is one program; a Go file yields
// every backtick raw string literal containing ".decl". Go files without
// embedded programs are skipped silently so directories can be walked.
func fileSources(path string) ([]vetSource, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if filepath.Ext(path) != ".go" {
		return []vetSource{{name: path, text: string(data)}}, nil
	}
	// Raw string literals cannot contain backticks, so splitting on them
	// alternates code and literal contents exactly.
	parts := strings.Split(string(data), "`")
	var out []vetSource
	for i := 1; i < len(parts); i += 2 {
		if !strings.Contains(parts[i], ".decl") {
			continue
		}
		name := path
		if len(out) > 0 || strings.Count(string(data), ".decl") > strings.Count(parts[i], ".decl") {
			name = fmt.Sprintf("%s#%d", path, len(out))
		}
		out = append(out, vetSource{name: name, text: parts[i]})
	}
	return out, nil
}

func indentLines(s, prefix string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString(prefix)
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
