package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"sti"
	"sti/internal/eio"
)

// serveMux exposes the database over HTTP:
//
//	POST /apply        absorb a batch of +/- lines (body), JSON result
//	GET  /query        ?rel=NAME&p=field... ("_" wildcard), JSON rows
//	GET  /stats        database stats as JSON
//	GET  /metrics      Prometheus text exposition (version 0.0.4)
//	GET  /healthz      liveness: 200 while the process serves
//	GET  /readyz       readiness: 200 while the engine phase machine is
//	                   ready, 503 once the database is closed or broken
//	GET  /debug/vars   expvar, including the sti.db stats blob
//
// Every handler runs under a middleware that assigns a request ID (honoring
// an inbound X-Request-Id), echoes it in the response header and in JSON
// error bodies, counts the request in sti_http_requests_total, and writes a
// structured access-log record.
func serveMux(db *sti.Database) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	handle := func(pattern string, h func(w http.ResponseWriter, r *http.Request, rid string)) {
		mux.Handle(pattern, instrument(db, pattern, h))
	}
	handle("/stats", func(w http.ResponseWriter, r *http.Request, rid string) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(db.Stats())
	})
	handle("/query", func(w http.ResponseWriter, r *http.Request, rid string) {
		rel := r.URL.Query().Get("rel")
		if rel == "" {
			httpError(w, rid, http.StatusBadRequest, errors.New("missing rel parameter"))
			return
		}
		rows, err := db.QueryText(rel, r.URL.Query()["p"])
		if err != nil {
			httpError(w, rid, statusFor(db, err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rows)
	})
	handle("/apply", func(w http.ResponseWriter, r *http.Request, rid string) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			httpError(w, rid, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, rid, http.StatusBadRequest, err)
			return
		}
		batch := db.NewBatch()
		for i, line := range strings.Split(string(body), "\n") {
			if line == "" {
				continue
			}
			fields := strings.Split(line, "\t")
			switch {
			case strings.HasPrefix(fields[0], "+"):
				batch.At("body", i+1, len(fields[0])+2).AddText(fields[0][1:], fields[1:])
			case strings.HasPrefix(fields[0], "-"):
				batch.At("body", i+1, len(fields[0])+2).DeleteText(fields[0][1:], fields[1:])
			default:
				httpError(w, rid, http.StatusBadRequest,
					fmt.Errorf("bad line %q: want +rel or -rel", line))
				return
			}
		}
		staged := batch.Len()
		if err := db.Apply(batch); err != nil {
			httpError(w, rid, statusFor(db, err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"epoch": db.Epoch(), "staged": staged})
	})
	handle("/metrics", func(w http.ResponseWriter, r *http.Request, rid string) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		db.Observer().WriteMetrics(w)
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request, rid string) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	handle("/readyz", func(w http.ResponseWriter, r *http.Request, rid string) {
		w.Header().Set("Content-Type", "application/json")
		if err := db.Ready(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{
				"status": "unready", "phase": db.Phase(), "error": err.Error(),
			})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ready", "phase": db.Phase(), "epoch": db.Epoch(),
		})
	})
	return mux
}

// instrument wraps a handler with the request-scoped plumbing: request ID,
// status capture, HTTP traffic counters, and the structured access log.
func instrument(db *sti.Database, pattern string, h func(w http.ResponseWriter, r *http.Request, rid string)) http.Handler {
	obs := db.Observer()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = obs.NextID() // "" when observability is off
		}
		if rid != "" {
			w.Header().Set("X-Request-Id", rid)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r, rid)
		obs.CountHTTP(pattern, sw.status)
		if logger := obs.Logger(); logger != nil {
			level := slog.LevelDebug
			if sw.status >= 400 {
				level = slog.LevelWarn
			}
			logger.LogAttrs(r.Context(), level, "http request",
				slog.String("request", rid),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", time.Since(t0)))
		}
	})
}

// statusWriter captures the status code a handler wrote (200 if it never
// called WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// errorBody is the JSON shape of every HTTP error response. Row errors from
// batch staging carry their typed position so clients can point at the
// offending byte of the body they posted.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
	// Position of a *eio.RowError ("body" is the posted payload).
	Path string `json:"path,omitempty"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
	Rel  string `json:"rel,omitempty"`
}

// httpError writes a JSON error response carrying the request ID and, for
// typed row errors, the path:line:col position.
func httpError(w http.ResponseWriter, rid string, status int, err error) {
	body := errorBody{Error: err.Error(), RequestID: rid}
	var re *eio.RowError
	if errors.As(err, &re) {
		body.Path = re.Path
		body.Line = re.Line
		body.Col = re.Col
		body.Rel = re.Rel
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// statusFor maps a database error to an HTTP status: client mistakes (bad
// batches, unknown relations, malformed patterns) are 400s, a closed
// database is 503 (the process is shutting down), and a broken database —
// the engine failed mid-apply — is 500.
func statusFor(db *sti.Database, err error) int {
	var re *eio.RowError
	if errors.As(err, &re) {
		return http.StatusBadRequest
	}
	if ready := db.Ready(); ready != nil {
		if strings.Contains(ready.Error(), "closed") {
			return http.StatusServiceUnavailable
		}
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}
