// Command sti runs Datalog programs with the Soufflé Tree Interpreter.
//
//	sti run program.dl -F facts/ -D out/       interpret a program
//	sti run program.dl -backend compiled       use the closure compiler
//	sti profile program.dl -json p.json        run with telemetry: rule and
//	                                           relation counters, fixpoint
//	                                           curves, -trace span output
//	sti ram program.dl                         print the RAM program
//	sti emit program.dl -o gen/prog            synthesize standalone Go
//	sti vet examples/ prog.dl                  verify RAM without executing
//	sti lint examples/ prog.dl                 source diagnostics: unused
//	                                           relations, singleton variables,
//	                                           unreachable rules, ...
//	sti serve program.dl [-http addr]          keep the program resident:
//	                                           apply fact batches and query
//	                                           over stdin lines or HTTP, with
//	                                           /metrics, /healthz, /readyz,
//	                                           and structured request logs
//	                                           (-log-format json, -slow 1s)
//	sti serve program.dl -data dir             same, durably: WAL + snapshot
//	                                           checkpoints in dir, crash and
//	                                           restart recovery, graceful
//	                                           SIGINT/SIGTERM shutdown
//	                                           (-snapshot-every N, -fsync)
//
// Input relations read <name>.facts (tab-separated) from -F; output
// relations write <name>.csv to -D; .printsize writes to stdout.
//
// All execution modes take -d ramverify (or STI_DEBUG=ramverify) to
// re-verify the RAM program after every transformation stage.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sti/internal/ast2ram"
	"sti/internal/codegen"
	"sti/internal/compile"
	"sti/internal/interp"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/ramopt"
	"sti/internal/sema"
	"sti/internal/symtab"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "profile":
		cmdProfile(os.Args[2:])
	case "ram":
		cmdRAM(os.Args[2:])
	case "emit":
		cmdEmit(os.Args[2:])
	case "vet":
		cmdVet(os.Args[2:])
	case "lint":
		cmdLint(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	default:
		usage()
	}
}

// debugFlag registers the shared -d option; each comma- or space-separated
// name enables one debug facility ("ramverify" arms the RAM verifier at
// every pipeline stage, "all" enables everything).
func debugFlag(fs *flag.FlagSet) *string {
	return fs.String("d", "", "debug facilities to enable, e.g. -d ramverify")
}

func applyDebug(spec string) {
	for _, name := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' }) {
		switch name {
		case "ramverify", "all":
			verify.SetDebug(true)
		default:
			fatal(fmt.Errorf("unknown debug facility %q (have: ramverify, all)", name))
		}
	}
}

// parseWithFile parses "FILE [flags]" or "[flags] FILE", returning the file.
func parseWithFile(fs *flag.FlagSet, args []string, usageLine string) string {
	var file string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		file = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if file == "" && fs.NArg() == 1 {
		file = fs.Arg(0)
	}
	if file == "" || fs.NArg() > 1 {
		fmt.Fprintln(os.Stderr, usageLine)
		fs.PrintDefaults()
		os.Exit(2)
	}
	return file
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sti {run|profile|ram|emit|vet|lint|serve} program.dl [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sti:", err)
	os.Exit(1)
}

// load compiles a source file to RAM.
func load(path string) (*ram.Program, *symtab.Table) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	astProg, err := parser.Parse(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s:%v", path, err))
	}
	semProg, errs := sema.Analyze(astProg)
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "sti: %s:%v\n", path, e)
		}
		os.Exit(1)
	}
	st := symtab.New()
	ramProg, err := ast2ram.Translate(semProg, st)
	if err != nil {
		fatal(err)
	}
	return ramProg, st
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	facts := fs.String("F", ".", "input facts directory")
	out := fs.String("D", ".", "output directory")
	backend := fs.String("backend", "interp", "execution backend: interp | compiled | legacy")
	profile := fs.Bool("profile", false, "print the interpreter profile")
	noSuper := fs.Bool("no-super", false, "disable super-instructions")
	noStatic := fs.Bool("no-static", false, "disable specialized instructions (dynamic adapter)")
	noReorder := fs.Bool("no-reorder", false, "disable static tuple reordering")
	timing := fs.Bool("time", false, "print wall-clock time")
	jobs := fs.Int("j", 1, "parallel workers for rule evaluation")
	shards := fs.Int("shards", 0, "hash-partition relations into N shards (shard-parallel fixpoint; interp backend)")
	optimize := fs.Bool("O", false, "run RAM optimization passes (fold constants, fuse filters, choices)")
	explain := fs.String("explain", "", "after the run, print the derivation of a tuple, e.g. 'path(1,3)'")
	debug := debugFlag(fs)
	file := parseWithFile(fs, args, "usage: sti run program.dl [flags]")
	applyDebug(*debug)
	prog, st := load(file)
	if *optimize {
		ramopt.Optimize(prog, st, ramopt.All())
	}
	io := &interp.DirIO{InputDir: *facts, OutputDir: *out, Symbols: st, W: os.Stdout}

	start := time.Now()
	switch *backend {
	case "compiled":
		if err := compile.New(prog, st).Run(io); err != nil {
			fatal(err)
		}
	case "interp", "legacy":
		cfg := interp.DefaultConfig()
		if *backend == "legacy" {
			cfg = interp.LegacyConfig()
		}
		cfg.SuperInstructions = cfg.SuperInstructions && !*noSuper
		cfg.StaticDispatch = cfg.StaticDispatch && !*noStatic
		cfg.StaticReordering = cfg.StaticReordering && !*noReorder
		cfg.Profile = *profile
		cfg.Workers = *jobs
		cfg.Shards = *shards
		cfg.Provenance = *explain != ""
		eng := interp.New(prog, st, cfg)
		if err := eng.Run(io); err != nil {
			fatal(err)
		}
		if *profile {
			fmt.Print(eng.Profile().String())
		}
		if *explain != "" {
			if err := printExplanation(eng, prog, st, *explain); err != nil {
				fatal(err)
			}
		}
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "total time: %v\n", time.Since(start))
	}
}

func cmdRAM(args []string) {
	fs := flag.NewFlagSet("ram", flag.ExitOnError)
	debug := debugFlag(fs)
	file := parseWithFile(fs, args, "usage: sti ram program.dl")
	applyDebug(*debug)
	prog, _ := load(file)
	fmt.Print(prog.String())
}

func cmdEmit(args []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	out := fs.String("o", "", "output directory for main.go (default: print to stdout)")
	build := fs.Bool("build", false, "also compile the emitted program (requires running inside the sti module)")
	optimize := fs.Bool("O", false, "run RAM optimization passes before emitting")
	debug := debugFlag(fs)
	file := parseWithFile(fs, args, "usage: sti emit program.dl [-o dir] [-build]")
	applyDebug(*debug)
	prog, st := load(file)
	if *optimize {
		ramopt.Optimize(prog, st, ramopt.All())
	}
	src, err := codegen.Emit(prog, st)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(src)
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(*out, "main.go")
	if err := os.WriteFile(path, src, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	if *build {
		root, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		bin, elapsed, err := codegen.Build(root, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "built %s in %v\n", bin, elapsed)
	}
}
