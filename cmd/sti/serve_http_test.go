package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sti"
	"sti/internal/obsv/promtest"
)

// openObsServeDB opens the serve test program with observability on, the way
// cmdServe does.
func openObsServeDB(t *testing.T) *sti.Database {
	t.Helper()
	db, err := sti.MustParse(serveTC).Open(
		sti.WithObservability(sti.ObservabilityConfig{}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp, body
}

func post(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("POST %s body: %v", path, err)
	}
	return resp, out
}

func TestServeHTTPApplyQueryStats(t *testing.T) {
	db := openObsServeDB(t)
	srv := httptest.NewServer(serveMux(db))
	defer srv.Close()

	resp, body := post(t, srv, "/apply", "+edge\t1\t2\n+edge\t2\t3\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/apply = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("/apply response has no X-Request-Id")
	}
	var applied struct {
		Epoch  uint64 `json:"epoch"`
		Staged int    `json:"staged"`
	}
	if err := json.Unmarshal(body, &applied); err != nil {
		t.Fatalf("/apply body: %v (%s)", err, body)
	}
	if applied.Epoch != 1 || applied.Staged != 2 {
		t.Fatalf("/apply = %+v", applied)
	}

	resp, body = get(t, srv, "/query?rel=path&p=1&p=_")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query = %d: %s", resp.StatusCode, body)
	}
	var rows [][]string
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatalf("/query body: %v (%s)", err, body)
	}
	if len(rows) != 2 { // path(1,2), path(1,3)
		t.Fatalf("/query rows = %v", rows)
	}

	resp, body = get(t, srv, "/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{`"epoch":1`, `"incremental_applies":1`, `"requests"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("/stats missing %s: %s", want, text)
		}
	}

	// An inbound request ID is honored end to end.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/query?rel=path", nil)
	req.Header.Set("X-Request-Id", "ext-42")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if got := r2.Header.Get("X-Request-Id"); got != "ext-42" {
		t.Fatalf("inbound request ID not echoed: %q", got)
	}
}

func TestServeHTTPErrorBodies(t *testing.T) {
	db := openObsServeDB(t)
	srv := httptest.NewServer(serveMux(db))
	defer srv.Close()

	// Malformed batch line: typed row error with body:line:col position.
	resp, body := post(t, srv, "/apply", "+edge\t1\t2\n+edge\tx\t9\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/apply bad field = %d, want 400", resp.StatusCode)
	}
	var eb struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
		Path      string `json:"path"`
		Line      int    `json:"line"`
		Col       int    `json:"col"`
		Rel       string `json:"rel"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, body)
	}
	if eb.Path != "body" || eb.Line != 2 || eb.Col != 7 || eb.Rel != "edge" {
		t.Fatalf("row error position = %+v", eb)
	}
	if eb.RequestID == "" || !strings.Contains(eb.Error, "bad number") {
		t.Fatalf("error body = %+v", eb)
	}

	// Line without a +/- prefix.
	if resp, _ := post(t, srv, "/apply", "edge\t1\t2\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/apply junk line = %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	if resp, _ := get(t, srv, "/apply"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /apply = %d, want 405", resp.StatusCode)
	}
	// Unknown relation and missing parameter.
	if resp, _ := get(t, srv, "/query?rel=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/query unknown rel = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, srv, "/query"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/query without rel = %d, want 400", resp.StatusCode)
	}
}

func TestServeHTTPHealthAndReady(t *testing.T) {
	db := openObsServeDB(t)
	srv := httptest.NewServer(serveMux(db))
	defer srv.Close()

	if resp, body := get(t, srv, "/healthz"); resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
	resp, body := get(t, srv, "/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"ready"`) {
		t.Fatalf("/readyz = %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"phase":"ready"`) {
		t.Fatalf("/readyz carries no phase: %s", body)
	}

	db.Close()
	resp, body = get(t, srv, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after close = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"status":"unready"`) {
		t.Fatalf("/readyz after close = %s", body)
	}
	// A closed database maps request errors to 503, not 400.
	if resp, _ := get(t, srv, "/query?rel=path"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/query after close = %d, want 503", resp.StatusCode)
	}
}

// The /metrics payload must be well-formed Prometheus text exposition and
// reflect the traffic that produced it.
func TestServeHTTPMetricsExposition(t *testing.T) {
	db := openObsServeDB(t)
	srv := httptest.NewServer(serveMux(db))
	defer srv.Close()

	post(t, srv, "/apply", "+edge\t1\t2\n")
	get(t, srv, "/query?rel=path")
	get(t, srv, "/query") // 400: counted under a distinct code

	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	series, err := promtest.Validate(string(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		"sti_requests_total", "sti_request_duration_seconds_bucket",
		"sti_http_requests_total", "sti_db_epoch", "sti_relation_tuples",
		"sti_db_applies_total", "sti_goroutines", "sti_heap_alloc_bytes",
	} {
		if !series[want] {
			t.Fatalf("/metrics missing series %s:\n%s", want, body)
		}
	}
	text := string(body)
	for _, want := range []string{
		`sti_requests_total{op="apply",outcome="incremental"} 1`,
		`sti_http_requests_total{handler="/query",code="200"} 1`,
		`sti_http_requests_total{handler="/query",code="400"} 1`,
		`sti_relation_tuples{rel="edge"} 1`,
		"sti_db_epoch 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
}

// Queries keep serving the previous epoch while an Apply is in flight; run
// under -race this also proves the instrumented paths are data-race free.
func TestServeHTTPConcurrentApplyDuringQuery(t *testing.T) {
	db := openObsServeDB(t)
	srv := httptest.NewServer(serveMux(db))
	defer srv.Close()

	post(t, srv, "/apply", "+edge\t1\t2\n+edge\t2\t3\n")

	const queriers, rounds = 4, 25
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if resp, body := post(t, srv, "/apply", "+edge\t3\t4\n"); resp.StatusCode != http.StatusOK {
				t.Errorf("apply = %d: %s", resp.StatusCode, body)
				return
			}
			get(t, srv, "/readyz")
		}
	}()
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, body := get(t, srv, "/query?rel=path")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query = %d: %s", resp.StatusCode, body)
					return
				}
				get(t, srv, "/metrics")
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := db.Stats()
	if st.Requests == nil || st.Requests.InFlight != 0 {
		t.Fatalf("requests still in flight after the storm: %+v", st.Requests)
	}
}
