package main

import (
	"fmt"
	"strconv"
	"strings"

	"sti/internal/interp"
	"sti/internal/ram"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

// printExplanation parses a tuple specification like `path(1,3)` or
// `Violation("exec")`, asks the engine for its derivation, and prints the
// proof tree with symbols resolved.
func printExplanation(eng *interp.Engine, prog *ram.Program, st *symtab.Table, spec string) error {
	name, t, err := parseTupleSpec(prog, st, spec)
	if err != nil {
		return err
	}
	proof, err := eng.Explain(name, t)
	if err != nil {
		return err
	}
	printProof(prog, st, proof, 0)
	return nil
}

func parseTupleSpec(prog *ram.Program, st *symtab.Table, spec string) (string, tuple.Tuple, error) {
	open := strings.IndexByte(spec, '(')
	if open < 0 || !strings.HasSuffix(spec, ")") {
		return "", nil, fmt.Errorf("bad tuple spec %q (want name(v1,...,vn))", spec)
	}
	name := strings.TrimSpace(spec[:open])
	var decl *ram.Relation
	for _, r := range prog.Relations {
		if r.Name == name && !r.Aux {
			decl = r
			break
		}
	}
	if decl == nil {
		return "", nil, fmt.Errorf("unknown relation %q", name)
	}
	body := spec[open+1 : len(spec)-1]
	var fields []string
	if strings.TrimSpace(body) != "" {
		fields = strings.Split(body, ",")
	}
	if len(fields) != decl.Arity {
		return "", nil, fmt.Errorf("relation %s has arity %d, spec has %d values", name, decl.Arity, len(fields))
	}
	t := make(tuple.Tuple, decl.Arity)
	for i, f := range fields {
		f = strings.TrimSpace(f)
		v, err := parseSpecValue(st, decl.Types[i], f)
		if err != nil {
			return "", nil, fmt.Errorf("%s argument %d: %v", name, i, err)
		}
		t[i] = v
	}
	return name, t, nil
}

func parseSpecValue(st *symtab.Table, ty value.Type, s string) (value.Value, error) {
	switch ty {
	case value.Symbol:
		s = strings.Trim(s, `"`)
		v, ok := st.Lookup(s)
		if !ok {
			return 0, fmt.Errorf("symbol %q never occurs in the database", s)
		}
		return v, nil
	case value.Number:
		n, err := strconv.ParseInt(s, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", s)
		}
		return value.FromInt(int32(n)), nil
	case value.Unsigned:
		n, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad unsigned %q", s)
		}
		return value.Value(n), nil
	default:
		f, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return 0, fmt.Errorf("bad float %q", s)
		}
		return value.FromFloat(float32(f)), nil
	}
}

func printProof(prog *ram.Program, st *symtab.Table, p *interp.Proof, depth int) {
	var decl *ram.Relation
	for _, r := range prog.Relations {
		if r.Name == p.Relation && !r.Aux {
			decl = r
			break
		}
	}
	fmt.Printf("%s%s(", strings.Repeat("  ", depth), p.Relation)
	for i, v := range p.Tuple {
		if i > 0 {
			fmt.Print(", ")
		}
		if decl != nil {
			switch decl.Types[i] {
			case value.Symbol:
				fmt.Printf("%q", st.Resolve(v))
			case value.Number:
				fmt.Print(value.AsInt(v))
			case value.Float:
				fmt.Print(value.AsFloat(v))
			default:
				fmt.Print(v)
			}
		} else {
			fmt.Print(v)
		}
	}
	if p.Rule == "" {
		fmt.Println(")  [fact]")
	} else {
		fmt.Printf(")  [%s]\n", p.Rule)
	}
	for _, prem := range p.Premises {
		printProof(prog, st, prem, depth+1)
	}
}
