package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sti/internal/lint"
	"sti/internal/parser"
)

// cmdLint runs the source-level diagnostics of internal/lint over one or
// more Datalog programs: unused relations, unbound head variables,
// singleton variables, always-empty and unreachable rules, and negation
// inside recursion. Unlike vet it never translates to RAM — the rules are
// AST-level, so they fire even on files sema rejects. It shares the vet
// path conventions (.dl files, Go files with embedded programs,
// directories) and the findings pipeline: exit 0 clean, 1 with findings,
// 2 on internal errors.
func cmdLint(args []string) {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print findings as a JSON array on stdout")
	verbose := fs.Bool("v", false, "report every clean program, not only findings")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sti lint [-json] [-v] path...   (\".dl\" files, Go files with embedded programs, or directories)")
		fs.PrintDefaults()
		os.Exit(2)
	}
	sources, err := collectSources(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sti:", err)
		os.Exit(2)
	}
	if len(sources) == 0 {
		fmt.Fprintf(os.Stderr, "sti: lint: no Datalog programs found under %s\n", strings.Join(fs.Args(), " "))
		os.Exit(2)
	}
	var all []finding
	for _, src := range sources {
		fs := lintOne(src)
		if len(fs) == 0 && *verbose && !*jsonOut {
			fmt.Printf("%s: ok\n", src.name)
		}
		all = append(all, fs...)
	}
	os.Exit(reportFindings(all, *jsonOut))
}

// lintOne parses and checks a single program, mapping parse failures and
// lint diagnostics into findings with marked excerpts.
func lintOne(src vetSource) []finding {
	prog, err := parser.Parse(src.text)
	if err != nil {
		return []finding{frontendFinding(src, err)}
	}
	var out []finding
	for _, d := range lint.Check(src.name, prog) {
		out = append(out, finding{
			Path:     src.name,
			Line:     d.Line,
			Col:      d.Col,
			Code:     d.Code,
			Severity: string(d.Severity),
			Msg:      d.Msg,
			Excerpt:  lint.Excerpt(src.text, d.Line, d.Col),
		})
	}
	return out
}
