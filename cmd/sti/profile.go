package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"sti/internal/interp"
	"sti/internal/metrics"
	"sti/internal/ramopt"
)

// profileFile is the JSON envelope of `sti profile -json`: the per-rule
// profile plus the engine-wide telemetry snapshot, stamped with enough
// metadata to compare runs.
type profileFile struct {
	Program string          `json:"program"`
	Workers int             `json:"workers"`
	WallNs  int64           `json:"wall_ns"`
	Profile *interp.Profile `json:"profile"`
}

// cmdProfile runs a program like `sti run` but with the profiler and the
// telemetry collector armed: per-rule counters, per-relation/index traffic,
// fixpoint convergence curves, and parallel-worker statistics. -json writes
// the machine-readable report; -trace writes Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing); -http serves expvar (with a
// live sti.telemetry snapshot) and net/http/pprof for the duration of the
// run.
func cmdProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	facts := fs.String("F", ".", "input facts directory")
	out := fs.String("D", ".", "output directory")
	jsonOut := fs.String("json", "", "write profile + telemetry as JSON to this file (- for stdout)")
	traceOut := fs.String("trace", "", "write span trace as Chrome trace-event JSON to this file")
	traceCap := fs.Int("trace-cap", 0, fmt.Sprintf("max recorded trace events (default %d)", metrics.DefaultTraceCap))
	httpAddr := fs.String("http", "", "serve expvar and net/http/pprof on this address during the run, e.g. :6060")
	jobs := fs.Int("j", 1, "parallel workers for rule evaluation")
	optimize := fs.Bool("O", false, "run RAM optimization passes before executing")
	quiet := fs.Bool("q", false, "suppress the human-readable summary on stderr")
	debug := debugFlag(fs)
	file := parseWithFile(fs, args, "usage: sti profile program.dl [-json out.json] [-trace out.trace.json] [flags]")
	applyDebug(*debug)

	prog, st := load(file)
	if *optimize {
		ramopt.Optimize(prog, st, ramopt.All())
	}

	tel := metrics.New()
	if *traceOut != "" {
		tel.EnableTrace(*traceCap)
	}
	cfg := interp.DefaultConfig()
	cfg.Profile = true
	cfg.Workers = *jobs
	cfg.Metrics = tel

	if *httpAddr != "" {
		expvar.Publish("sti.telemetry", expvar.Func(func() any { return tel.Report() }))
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "sti: -http %s: %v\n", *httpAddr, err)
			}
		}()
	}

	io := &interp.DirIO{InputDir: *facts, OutputDir: *out, Symbols: st, W: os.Stdout}
	start := time.Now()
	eng := interp.New(prog, st, cfg)
	if err := eng.Run(io); err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	profile := eng.Profile()
	if !*quiet {
		fmt.Fprint(os.Stderr, profile.String())
		fmt.Fprint(os.Stderr, profile.Telemetry.String())
	}

	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(profileFile{
			Program: file,
			Workers: cfg.Workers,
			WallNs:  wall.Nanoseconds(),
			Profile: profile,
		}); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tel.WriteTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		kept, dropped := tel.TraceEventCount()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "trace: %d events", kept)
			if dropped > 0 {
				fmt.Fprintf(os.Stderr, " (%d dropped past cap)", dropped)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
}
