package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"sti/internal/lint"
	"sti/internal/parser"
	"sti/internal/sema"
)

// finding is the diagnostic currency shared by sti vet and sti lint: both
// commands reduce their checkers' native outputs to this shape, then print
// and exit through the same pipeline so text rendering, -json, dedup, and
// exit codes cannot drift apart.
type finding struct {
	Path     string `json:"path"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Msg      string `json:"msg"`
	Excerpt  string `json:"-"` // rendered in text mode only
}

func (f finding) location() string {
	switch {
	case f.Line > 0 && f.Col > 0:
		return fmt.Sprintf("%s:%d:%d", f.Path, f.Line, f.Col)
	case f.Line > 0:
		return fmt.Sprintf("%s:%d", f.Path, f.Line)
	default:
		return f.Path
	}
}

// dedupFindings drops exact repeats — the same file reached through two
// argument spellings, or the same defect reported by two stages — keyed on
// everything the user sees.
func dedupFindings(fs []finding) []finding {
	type key struct {
		path      string
		line, col int
		code, msg string
	}
	seen := map[key]bool{}
	out := fs[:0]
	for _, f := range fs {
		k := key{f.Path, f.Line, f.Col, f.Code, f.Msg}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

func sortFindings(fs []finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
}

// reportFindings prints the deduplicated findings — one line each plus the
// marked excerpt in text mode, a JSON array on stdout with -json — and
// returns the process exit code: 0 when clean, 1 when anything fired.
// Internal errors (unreadable paths, walker failures) exit 2 before this
// point.
func reportFindings(fs []finding, jsonOut bool) int {
	fs = dedupFindings(fs)
	sortFindings(fs)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if fs == nil {
			fs = []finding{}
		}
		if err := enc.Encode(fs); err != nil {
			fmt.Fprintln(os.Stderr, "sti:", err)
			return 2
		}
	} else {
		for _, f := range fs {
			fmt.Fprintf(os.Stderr, "%s: %s: %s [%s]\n", f.location(), f.Severity, f.Msg, f.Code)
			if f.Excerpt != "" {
				fmt.Fprint(os.Stderr, indentLines(f.Excerpt, "    "))
			}
		}
	}
	if len(fs) > 0 {
		return 1
	}
	return 0
}

// frontendFinding converts a parse, sema, or translate error into a
// finding, recovering the source position both error types carry so the
// finding renders path:line:col with a marked excerpt.
func frontendFinding(src vetSource, err error) finding {
	f := finding{Path: src.name, Code: "translate-error", Severity: "error", Msg: err.Error()}
	switch e := err.(type) {
	case *parser.Error:
		f.Code = "parse-error"
		f.Line, f.Col, f.Msg = e.Pos.Line, e.Pos.Col, e.Msg
	case *sema.Error:
		f.Code = "sema-error"
		f.Line, f.Col, f.Msg = e.Pos.Line, e.Pos.Col, e.Msg
	default:
		return f
	}
	f.Excerpt = lint.Excerpt(src.text, f.Line, f.Col)
	return f
}
