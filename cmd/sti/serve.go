package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"sti"
)

// cmdServe keeps a program resident and answers a line protocol on stdin:
//
//	+rel<TAB>v1<TAB>v2...   stage a fact insertion
//	-rel<TAB>v1<TAB>v2...   stage a fact deletion
//	apply                   absorb the staged batch, print "applied epoch=N"
//	query rel[<TAB>p1...]   print matching rows ("_" field = wildcard),
//	                        then "ok N"
//	count rel               print the relation's size
//	stats                   print database stats as one JSON line
//	quit                    exit
//
// With -http, the same operations are served over HTTP (POST /apply with
// +/- lines as the body, GET /query?rel=NAME&p=..., GET /stats) alongside
// the operational endpoints: /metrics (Prometheus text exposition),
// /healthz, /readyz, and /debug/vars (expvar, including the sti.db blob).
//
// The server logs structured records to stderr (-log-format json|text):
// one access record per HTTP request carrying its request ID, and one
// warning with the engine profile for every database request slower than
// -slow. Stdout stays reserved for the line protocol.
//
// With -data, the database opens a durable data directory: every applied
// batch is WAL-logged before it mutates the engine, checkpoints roll the
// log into snapshots, and a restart (clean or after a crash) recovers the
// resident state from disk. SIGINT/SIGTERM trigger a graceful shutdown:
// the database closes first — taking a final checkpoint and flushing the
// WAL — which flips /readyz to 503, then the HTTP listener drains and the
// process exits.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	jobs := fs.Int("j", 1, "parallel workers for rule evaluation")
	optimize := fs.Bool("O", false, "run RAM optimization passes (applies to initial evaluation only)")
	httpAddr := fs.String("http", "", "also serve HTTP on this address (/apply, /query, /stats, /metrics, /healthz, /readyz, /debug/vars)")
	dataDir := fs.String("data", "", "durable data directory (WAL + snapshots + segment store); created if missing, recovered if present")
	snapEvery := fs.Int("snapshot-every", 0, "checkpoint after this many applies (0 = default cadence, negative = checkpoint only on open and close; needs -data)")
	fsync := fs.Bool("fsync", false, "fsync the WAL after every apply (durable against power loss, slower; needs -data)")
	logFormat := fs.String("log-format", "text", "structured log encoding: text | json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug | info | warn | error (debug includes per-request access records)")
	slow := fs.Duration("slow", time.Second, "log requests slower than this with the engine profile (0 disables)")
	debug := debugFlag(fs)
	file := parseWithFile(fs, args, "usage: sti serve program.dl [-j N] [-O] [-http addr] [-data dir] [-snapshot-every N] [-fsync] [-log-format text|json] [-log-level info] [-slow 1s]")
	applyDebug(*debug)

	logger := newLogger(*logFormat, *logLevel)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	prog, err := sti.Parse(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s:%v", file, err))
	}
	if *optimize {
		prog.Optimize()
	}
	opts := []sti.Option{
		sti.WithWorkers(*jobs),
		sti.WithObservability(sti.ObservabilityConfig{Logger: logger, SlowRequest: *slow}),
	}
	if *dataDir != "" {
		opts = append(opts, sti.WithPersistenceConfig(sti.PersistenceConfig{
			Dir:           *dataDir,
			SnapshotEvery: *snapEvery,
			Fsync:         *fsync,
		}))
	} else if *snapEvery != 0 || *fsync {
		fatal(errors.New("-snapshot-every and -fsync require -data"))
	}
	db, err := prog.Open(opts...)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if p := db.Stats().Persist; p != nil {
		logger.Info("durable tier open", "dir", p.Dir, "generation", p.Generation,
			"recovered", p.Recovered, "recovered_wal_records", p.RecoveredRecords,
			"tables", p.Tables, "gated", len(p.Gated))
	}

	var srv *http.Server
	if *httpAddr != "" {
		expvar.Publish("sti.db", expvar.Func(func() any { return db.Stats() }))
		srv = &http.Server{Addr: *httpAddr, Handler: serveMux(db)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal(err)
			}
		}()
		logger.Info("serving http", "addr", *httpAddr, "program", file)
	}

	// SIGINT/SIGTERM shut the server down gracefully; a second signal during
	// the drain kills the process the default way.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		logger.Info("signal received, shutting down", "signal", sig.String())
		signal.Stop(sigc)
		shutdownServe(db, srv, logger)
		os.Exit(0)
	}()

	quit, err := serveLines(db, os.Stdin, os.Stdout)
	if err != nil {
		fatal(err)
	}
	// An explicit "quit" always ends the process. A closed stdin (the
	// normal state for a daemonized HTTP deployment, where stdin is
	// /dev/null) keeps the HTTP server running.
	if *httpAddr != "" && !quit {
		logger.Info("stdin closed, serving http only", "addr", *httpAddr)
		select {}
	}
	shutdownServe(db, srv, logger)
}

// shutdownServe is the single graceful-shutdown path: close the database
// first — on a durable deployment that takes the final checkpoint and
// flushes the WAL, and it flips /readyz to 503 either way — then drain the
// HTTP listener so in-flight responses complete. Idempotent, so the signal
// handler and the normal exit path can both call it.
var shutdownOnce sync.Once

func shutdownServe(db *sti.Database, srv *http.Server, logger *slog.Logger) {
	shutdownOnce.Do(func() {
		if err := db.Close(); err != nil {
			logger.Error("database close failed", "error", err)
		}
		if srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				logger.Warn("http shutdown incomplete", "error", err)
			}
		}
		logger.Info("shutdown complete")
	})
}

// newLogger builds the server's structured logger on stderr; stdout belongs
// to the line protocol.
func newLogger(format, level string) *slog.Logger {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		fatal(fmt.Errorf("unknown -log-level %q (have: debug, info, warn, error)", level))
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts))
	default:
		fatal(fmt.Errorf("unknown -log-format %q (have: text, json)", format))
		return nil
	}
}

// serveLines drives the resident database from a line protocol. Errors in
// individual commands are reported as "error: ..." lines and do not stop
// the session; only I/O failures end it. The returned bool reports whether
// the session ended with an explicit quit/exit (as opposed to input EOF).
func serveLines(db *sti.Database, r io.Reader, w io.Writer) (bool, error) {
	out := bufio.NewWriter(w)
	defer out.Flush()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	batch := db.NewBatch()
	lineNo := 0
	for sc.Scan() {
		line := sc.Text()
		lineNo++
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		head := fields[0]
		// Parse errors in +/- lines carry stdin:line:col positions (the
		// first field starts right after the "+rel<TAB>" prefix).
		switch {
		case strings.HasPrefix(head, "+"):
			batch.At("stdin", lineNo, len(head)+2).AddText(head[1:], fields[1:])
			if err := batch.Err(); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				batch = db.NewBatch()
			}
		case strings.HasPrefix(head, "-"):
			batch.At("stdin", lineNo, len(head)+2).DeleteText(head[1:], fields[1:])
			if err := batch.Err(); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				batch = db.NewBatch()
			}
		default:
			words := strings.Fields(head)
			if len(words) == 0 {
				continue
			}
			switch words[0] {
			case "apply":
				if err := db.Apply(batch); err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
				} else {
					fmt.Fprintf(out, "applied epoch=%d\n", db.Epoch())
				}
				batch = db.NewBatch()
			case "query":
				if len(words) != 2 {
					fmt.Fprintln(out, "error: usage: query rel[<TAB>pattern...]")
					break
				}
				rows, err := db.QueryText(words[1], fields[1:])
				if err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
					break
				}
				for _, row := range rows {
					fmt.Fprintln(out, strings.Join(row, "\t"))
				}
				fmt.Fprintf(out, "ok %d\n", len(rows))
			case "count":
				if len(words) != 2 {
					fmt.Fprintln(out, "error: usage: count rel")
					break
				}
				n, err := db.Size(words[1])
				if err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
					break
				}
				fmt.Fprintf(out, "%d\n", n)
			case "stats":
				enc, err := json.Marshal(db.Stats())
				if err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
					break
				}
				fmt.Fprintf(out, "%s\n", enc)
			case "quit", "exit":
				return true, out.Flush()
			default:
				fmt.Fprintf(out, "error: unknown command %q\n", words[0])
			}
		}
		if err := out.Flush(); err != nil {
			return false, err
		}
	}
	return false, sc.Err()
}
