package main

import (
	"bufio"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"sti"
)

// cmdServe keeps a program resident and answers a line protocol on stdin:
//
//	+rel<TAB>v1<TAB>v2...   stage a fact insertion
//	-rel<TAB>v1<TAB>v2...   stage a fact deletion
//	apply                   absorb the staged batch, print "applied epoch=N"
//	query rel[<TAB>p1...]   print matching rows ("_" field = wildcard),
//	                        then "ok N"
//	count rel               print the relation's size
//	stats                   print database stats as one JSON line
//	quit                    exit
//
// With -http, the same operations are served over HTTP (POST /apply with
// +/- lines as the body, GET /query?rel=NAME&p=..., GET /stats) and the
// stats are published through expvar at /debug/vars.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	jobs := fs.Int("j", 1, "parallel workers for rule evaluation")
	optimize := fs.Bool("O", false, "run RAM optimization passes (applies to initial evaluation only)")
	httpAddr := fs.String("http", "", "also serve HTTP on this address (/apply, /query, /stats, /debug/vars)")
	debug := debugFlag(fs)
	file := parseWithFile(fs, args, "usage: sti serve program.dl [-j N] [-O] [-http addr]")
	applyDebug(*debug)

	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	prog, err := sti.Parse(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s:%v", file, err))
	}
	if *optimize {
		prog.Optimize()
	}
	db, err := prog.Open(sti.WithWorkers(*jobs))
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *httpAddr != "" {
		expvar.Publish("sti.db", expvar.Func(func() any { return db.Stats() }))
		go func() {
			if err := http.ListenAndServe(*httpAddr, serveMux(db)); err != nil {
				fatal(err)
			}
		}()
		fmt.Fprintf(os.Stderr, "sti: serving HTTP on %s\n", *httpAddr)
	}
	if err := serveLines(db, os.Stdin, os.Stdout); err != nil {
		fatal(err)
	}
}

// serveLines drives the resident database from a line protocol. Errors in
// individual commands are reported as "error: ..." lines and do not stop
// the session; only I/O failures end it.
func serveLines(db *sti.Database, r io.Reader, w io.Writer) error {
	out := bufio.NewWriter(w)
	defer out.Flush()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	batch := db.NewBatch()
	lineNo := 0
	for sc.Scan() {
		line := sc.Text()
		lineNo++
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		head := fields[0]
		// Parse errors in +/- lines carry stdin:line:col positions (the
		// first field starts right after the "+rel<TAB>" prefix).
		switch {
		case strings.HasPrefix(head, "+"):
			batch.At("stdin", lineNo, len(head)+2).AddText(head[1:], fields[1:])
			if err := batch.Err(); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				batch = db.NewBatch()
			}
		case strings.HasPrefix(head, "-"):
			batch.At("stdin", lineNo, len(head)+2).DeleteText(head[1:], fields[1:])
			if err := batch.Err(); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				batch = db.NewBatch()
			}
		default:
			words := strings.Fields(head)
			if len(words) == 0 {
				continue
			}
			switch words[0] {
			case "apply":
				if err := db.Apply(batch); err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
				} else {
					fmt.Fprintf(out, "applied epoch=%d\n", db.Epoch())
				}
				batch = db.NewBatch()
			case "query":
				if len(words) != 2 {
					fmt.Fprintln(out, "error: usage: query rel[<TAB>pattern...]")
					break
				}
				rows, err := db.QueryText(words[1], fields[1:])
				if err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
					break
				}
				for _, row := range rows {
					fmt.Fprintln(out, strings.Join(row, "\t"))
				}
				fmt.Fprintf(out, "ok %d\n", len(rows))
			case "count":
				if len(words) != 2 {
					fmt.Fprintln(out, "error: usage: count rel")
					break
				}
				n, err := db.Size(words[1])
				if err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
					break
				}
				fmt.Fprintf(out, "%d\n", n)
			case "stats":
				enc, err := json.Marshal(db.Stats())
				if err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
					break
				}
				fmt.Fprintf(out, "%s\n", enc)
			case "quit", "exit":
				return out.Flush()
			default:
				fmt.Fprintf(out, "error: unknown command %q\n", words[0])
			}
		}
		if err := out.Flush(); err != nil {
			return err
		}
	}
	return sc.Err()
}

// serveMux exposes the database over HTTP.
func serveMux(db *sti.Database) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(db.Stats())
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		rel := r.URL.Query().Get("rel")
		if rel == "" {
			http.Error(w, "missing rel parameter", http.StatusBadRequest)
			return
		}
		rows, err := db.QueryText(rel, r.URL.Query()["p"])
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rows)
	})
	mux.HandleFunc("/apply", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		batch := db.NewBatch()
		for i, line := range strings.Split(string(body), "\n") {
			if line == "" {
				continue
			}
			fields := strings.Split(line, "\t")
			switch {
			case strings.HasPrefix(fields[0], "+"):
				batch.At("body", i+1, len(fields[0])+2).AddText(fields[0][1:], fields[1:])
			case strings.HasPrefix(fields[0], "-"):
				batch.At("body", i+1, len(fields[0])+2).DeleteText(fields[0][1:], fields[1:])
			default:
				http.Error(w, fmt.Sprintf("bad line %q: want +rel or -rel", line), http.StatusBadRequest)
				return
			}
		}
		if err := db.Apply(batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"epoch": db.Epoch(), "staged": batch.Len()})
	})
	return mux
}
