// Disassembly analysis: a DDisasm-style workload (one of the paper's
// benchmark suites). From raw instruction facts the rules derive plausible
// code addresses, fall-through/jump successors, and function entries —
// including an arithmetic-heavy filter of the kind the paper's §5.2 case
// study identifies as the interpreter's worst case.
package main

import (
	"fmt"
	"log"

	"sti"
)

const program = `
.decl instruction(addr:number, size:number, isJump:number, target:number)
.decl possibleTarget(addr:number)
.decl code(addr:number)
.decl next(from:number, to:number)
.decl functionEntry(addr:number)
.input instruction
.output code
.output functionEntry

possibleTarget(0).
possibleTarget(t) :- instruction(_, _, 1, t).

code(a) :- possibleTarget(a), instruction(a, _, _, _).
code(n) :- code(a), instruction(a, s, j, _), n = a + s, j = 0, instruction(n, _, _, _).

next(a, n) :- code(a), instruction(a, s, 0, _), n = a + s.
next(a, t) :- code(a), instruction(a, _, 1, t).

// moved_label-style rule: the filter performs several arithmetic
// operations per candidate pair (cf. paper Fig 17).
functionEntry(t) :-
    instruction(_, _, 1, t),
    code(t),
    t % 16 = 0,
    t / 16 * 16 = t.
`

func main() {
	prog, err := sti.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	in := prog.NewInput()
	// A tiny straight-line program with two calls to an aligned function.
	addr := 0
	emit := func(size, isJump, target int) {
		in.Add("instruction", addr, size, isJump, target)
		addr += size
	}
	emit(4, 0, 0)  // 0
	emit(4, 1, 32) // 4: call 32
	emit(4, 0, 0)  // 8
	emit(4, 1, 32) // 12: call 32
	emit(8, 0, 0)  // 16
	emit(8, 0, 0)  // 24
	emit(4, 0, 0)  // 32: function body
	emit(4, 0, 0)  // 36

	res, err := prog.Run(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("code addresses (%d):\n ", res.Size("code"))
	for _, row := range res.Rows("code") {
		fmt.Printf(" %v", row[0])
	}
	fmt.Println()
	fmt.Println("function entries:")
	for _, row := range res.Rows("functionEntry") {
		fmt.Printf("  0x%x\n", row[0])
	}
}
