// Network reachability: a VPC-style analysis (one of the paper's benchmark
// suites). Instances attach to subnets, subnets connect through route
// tables, and security groups filter by port; the analysis derives which
// instance pairs can reach each other on which port.
package main

import (
	"fmt"
	"log"

	"sti"
)

const program = `
.decl instance(id:symbol, subnet:symbol)
.decl route(from:symbol, to:symbol)
.decl allowIngress(subnet:symbol, port:number)
.decl subnetReach(a:symbol, b:symbol)
.decl canReach(src:symbol, dst:symbol, port:number)
.input instance
.input route
.input allowIngress
.output canReach

subnetReach(a, a) :- instance(_, a).
subnetReach(a, b) :- route(a, b).
subnetReach(a, c) :- subnetReach(a, b), route(b, c).

canReach(i, j, p) :-
    instance(i, si),
    instance(j, sj),
    subnetReach(si, sj),
    allowIngress(sj, p),
    i != j.
`

func main() {
	prog, err := sti.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	in := prog.NewInput()
	in.Add("instance", "web-1", "public-a")
	in.Add("instance", "web-2", "public-b")
	in.Add("instance", "app-1", "private-a")
	in.Add("instance", "db-1", "data-a")
	in.Add("route", "public-a", "private-a")
	in.Add("route", "public-b", "private-a")
	in.Add("route", "private-a", "data-a")
	in.Add("allowIngress", "private-a", 8080)
	in.Add("allowIngress", "data-a", 5432)
	in.Add("allowIngress", "public-a", 443)

	res, err := prog.Run(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("reachability (src -> dst : port):")
	for _, row := range res.Rows("canReach") {
		fmt.Printf("  %s -> %s : %d\n", row[0], row[1], row[2])
	}
	if res.Contains("canReach", "web-1", "db-1", 5432) {
		fmt.Println("finding: web tier can reach the database directly (port 5432)")
	}
}
