// Quickstart: transitive closure over a small graph, exercising the whole
// pipeline (parse → analyze → RAM → Soufflé Tree Interpreter) through the
// public API.
package main

import (
	"fmt"
	"log"

	"sti"
)

const program = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func main() {
	prog, err := sti.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	in := prog.NewInput()
	in.Add("edge", 1, 2)
	in.Add("edge", 2, 3)
	in.Add("edge", 3, 4)
	in.Add("edge", 4, 1) // a cycle — the fixpoint still terminates

	res, err := prog.Run(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("path has %d tuples:\n", res.Size("path"))
	for _, row := range res.Rows("path") {
		fmt.Printf("  path(%v, %v)\n", row[0], row[1])
	}

	// The same program through the closure-compiled backend.
	res2, err := prog.Run(in, sti.WithBackend(sti.Compiled))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled backend agrees: %v\n", res.Size("path") == res2.Size("path"))
}
