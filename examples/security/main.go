// Security analysis: the paper's running example (Fig 2). A code block is
// unsafe if reachable from an unsafe block without crossing a protected
// block; a violation is a vulnerable block that is unsafe.
package main

import (
	"fmt"
	"log"

	"sti"
)

const program = `
.decl Edge(x:symbol, y:symbol)
.decl Protect(x:symbol)
.decl Vulnerable(x:symbol)
.decl Unsafe(x:symbol)
.decl Violation(x:symbol)
.input Edge
.input Protect
.input Vulnerable
.output Violation

Unsafe("while").

/* Rule 1 */
Unsafe(y) :- Unsafe(x), Edge(x, y), !Protect(y).

/* Rule 2 */
Violation(x) :- Vulnerable(x), Unsafe(x).
`

func main() {
	prog, err := sti.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	// A small control-flow graph: the "while" block reaches handler and
	// parse; sanitize is protected, so everything behind it stays safe.
	in := prog.NewInput()
	for _, e := range [][2]string{
		{"while", "handler"},
		{"handler", "parse"},
		{"parse", "exec"},
		{"handler", "sanitize"},
		{"sanitize", "query"},
		{"query", "render"},
	} {
		in.Add("Edge", e[0], e[1])
	}
	in.Add("Protect", "sanitize")
	in.Add("Vulnerable", "exec")
	in.Add("Vulnerable", "query")
	in.Add("Vulnerable", "render")

	res, err := prog.Run(in, sti.WithProvenance())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("violations:")
	for _, row := range res.Rows("Violation") {
		fmt.Printf("  %s\n", row[0])
	}
	fmt.Printf("(unsafe blocks: %d, protected subgraph stayed safe)\n", res.Size("Unsafe"))

	// The interpreter's debugging workflow: explain WHY exec is a violation.
	proof, err := res.Explain("Violation", "exec")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nderivation of Violation(exec):")
	fmt.Print(proof)
}
