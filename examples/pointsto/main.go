// Points-to analysis: a context-insensitive Andersen-style analysis in the
// style of DOOP (one of the paper's benchmark suites). The input models a
// tiny Java-like program: allocations, moves, field stores/loads, and
// calls.
package main

import (
	"fmt"
	"log"

	"sti"
)

const program = `
.decl alloc(v:symbol, obj:symbol)
.decl move(to:symbol, from:symbol)
.decl store(base:symbol, fld:symbol, from:symbol)
.decl load(to:symbol, base:symbol, fld:symbol)
.decl varPointsTo(v:symbol, obj:symbol)
.decl heapPointsTo(obj:symbol, fld:symbol, tgt:symbol)
.input alloc
.input move
.input store
.input load
.output varPointsTo
.output heapPointsTo

varPointsTo(v, o) :- alloc(v, o).
varPointsTo(t, o) :- move(t, f), varPointsTo(f, o).
heapPointsTo(b, fld, o) :- store(base, fld, from), varPointsTo(base, b), varPointsTo(from, o).
varPointsTo(t, o) :- load(t, base, fld), varPointsTo(base, b), heapPointsTo(b, fld, o).
`

func main() {
	prog, err := sti.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	in := prog.NewInput()
	// p = new A(); q = new B(); r = p; p.f = q; s = r.f;
	in.Add("alloc", "p", "A0")
	in.Add("alloc", "q", "B0")
	in.Add("move", "r", "p")
	in.Add("store", "p", "f", "q")
	in.Add("load", "s", "r", "f")
	// A second allocation flowing through the same field.
	in.Add("alloc", "t", "C0")
	in.Add("store", "r", "f", "t")

	res, err := prog.Run(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("varPointsTo:")
	for _, row := range res.Rows("varPointsTo") {
		fmt.Printf("  %s -> %s\n", row[0], row[1])
	}
	fmt.Println("heapPointsTo:")
	for _, row := range res.Rows("heapPointsTo") {
		fmt.Printf("  %s.%s -> %s\n", row[0], row[1], row[2])
	}
}
