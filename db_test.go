package sti

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// tcProgram builds the transitive-closure fixture with a configurable
// representation for the recursive relation.
func tcProgram(t *testing.T, rep string) *Program {
	t.Helper()
	src := fmt.Sprintf(`
.decl edge(x:number, y:number)
.decl path(x:number, y:number) %s
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`, rep)
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// runUnion evaluates the program from scratch on the union of all edges
// and returns the path rows, for comparison against the resident engine.
func runUnion(t *testing.T, p *Program, edges [][2]int) [][]any {
	t.Helper()
	in := p.NewInput()
	for _, e := range edges {
		in.Add("edge", e[0], e[1])
	}
	res, err := p.Run(in)
	if err != nil {
		t.Fatalf("one-shot run: %v", err)
	}
	return res.Rows("path")
}

// checkEquivalent asserts the resident database and a from-scratch run on
// the accumulated edge set produce byte-identical path relations.
func checkEquivalent(t *testing.T, db *Database, p *Program, edges [][2]int, tag string) {
	t.Helper()
	want := runUnion(t, p, edges)
	got, err := db.Query("path")
	if err != nil {
		t.Fatalf("%s: query: %v", tag, err)
	}
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
		t.Fatalf("%s: resident path (%d rows) differs from one-shot run (%d rows)\nresident: %v\none-shot: %v",
			tag, len(got), len(want), got, want)
	}
}

func applyEdges(t *testing.T, db *Database, edges [][2]int) {
	t.Helper()
	b := db.NewBatch()
	for _, e := range edges {
		b.Add("edge", e[0], e[1])
	}
	if err := db.Apply(b); err != nil {
		t.Fatalf("apply: %v", err)
	}
}

// Edge workloads: a chain, a grid, and a pseudo-random sparse graph.
func chainEdges(n int) [][2]int {
	var out [][2]int
	for i := 0; i < n; i++ {
		out = append(out, [2]int{i, i + 1})
	}
	return out
}

func gridEdges(n int) [][2]int {
	var out [][2]int
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				out = append(out, [2]int{r*n + c, r*n + c + 1})
			}
			if r+1 < n {
				out = append(out, [2]int{r*n + c, (r+1)*n + c})
			}
		}
	}
	return out
}

func randomEdges(n, nodes int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	var out [][2]int
	for i := 0; i < n; i++ {
		out = append(out, [2]int{rng.Intn(nodes), rng.Intn(nodes)})
	}
	return out
}

// TestIncrementalEquivalence is the core property test: applying edge
// batches to a resident database must yield exactly the relation a
// from-scratch Run on the union of the batches yields, after every batch,
// across representations and workload shapes.
func TestIncrementalEquivalence(t *testing.T) {
	workloads := map[string][][2]int{
		"chain":  chainEdges(30),
		"grid":   gridEdges(5),
		"random": randomEdges(40, 15, 1),
	}
	for _, rep := range []string{"btree", "brie", "eqrel"} {
		for wname, edges := range workloads {
			t.Run(rep+"/"+wname, func(t *testing.T) {
				p := tcProgram(t, rep)
				db, err := p.Open()
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				defer db.Close()
				if !db.Incremental() {
					t.Fatal("transitive closure should support incremental batches")
				}
				var applied [][2]int
				const batch = 7
				for i := 0; i < len(edges); i += batch {
					end := i + batch
					if end > len(edges) {
						end = len(edges)
					}
					applyEdges(t, db, edges[i:end])
					applied = append(applied, edges[i:end]...)
					checkEquivalent(t, db, p, applied, fmt.Sprintf("%s/%s after batch %d", rep, wname, i/batch))
				}
				st := db.Stats()
				if st.AppliesIncremental != st.Applies || st.Recomputes != 0 {
					t.Fatalf("insert-only batches should all be incremental: %+v", st)
				}
			})
		}
	}
}

// TestMultiStratumIncremental exercises restart variants that join fresh
// lower-stratum tuples against an already-saturated recursive stratum.
func TestMultiStratumIncremental(t *testing.T) {
	p := MustParse(`
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl node(x:number)
.decl reach2(x:number, y:number)
.input edge
.input node
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
reach2(x, z) :- path(x, y), path(y, z), node(z).
`)
	db, err := p.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()

	applyEdges(t, db, chainEdges(10))
	// A later batch adds only nodes: the reach2 stratum must pick up
	// old path ⨝ old path ⨝ fresh node derivations via its restart variant.
	b := db.NewBatch().Add("node", 5).Add("node", 9)
	if err := db.Apply(b); err != nil {
		t.Fatalf("apply nodes: %v", err)
	}
	in := p.NewInput()
	for _, e := range chainEdges(10) {
		in.Add("edge", e[0], e[1])
	}
	in.Add("node", 5)
	in.Add("node", 9)
	res, err := p.Run(in)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := db.Query("reach2")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", res.Rows("reach2")) {
		t.Fatalf("reach2 mismatch\nresident: %v\none-shot: %v", got, res.Rows("reach2"))
	}
	if st := db.Stats(); st.Recomputes != 0 {
		t.Fatalf("expected incremental applies only: %+v", st)
	}
}

// TestDeletionAppliesIncrementally checks a batch with deletions of a
// deletable program is correct (matches a run without the deleted facts)
// and absorbed through the delete program rather than a recompute.
func TestDeletionAppliesIncrementally(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	if !db.Deletable() {
		t.Fatal("transitive closure must be deletable")
	}

	applyEdges(t, db, chainEdges(10))
	// Cut the chain in the middle.
	if err := db.Apply(db.NewBatch().Delete("edge", 5, 6)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	var remaining [][2]int
	for _, e := range chainEdges(10) {
		if e != [2]int{5, 6} {
			remaining = append(remaining, e)
		}
	}
	checkEquivalent(t, db, p, remaining, "after deletion")
	if st := db.Stats(); st.Recomputes != 0 || st.AppliesIncremental != 2 {
		t.Fatalf("deletion should stay incremental: %+v", st)
	}
	// Deleting a fact that was never added is a no-op.
	if err := db.Apply(db.NewBatch().Delete("edge", 100, 101)); err != nil {
		t.Fatalf("noop delete: %v", err)
	}
	checkEquivalent(t, db, p, remaining, "after noop deletion")
	// Mixed add/delete batches route through update then delete.
	b := db.NewBatch().Add("edge", 5, 6).Delete("edge", 1, 2)
	if err := db.Apply(b); err != nil {
		t.Fatalf("mixed batch: %v", err)
	}
	var mixed [][2]int
	for _, e := range chainEdges(10) {
		if e != [2]int{1, 2} {
			mixed = append(mixed, e)
		}
	}
	checkEquivalent(t, db, p, mixed, "after mixed batch")
	st := db.Stats()
	if st.AppliesFallback != 0 || st.AppliesIncremental != st.Applies {
		t.Fatalf("every apply should be incremental: %+v", st)
	}
	if st.FallbackReason != "" {
		t.Fatalf("no fallback happened, got reason %q", st.FallbackReason)
	}
}

// TestDeletionOfDerivedFallsBack checks a deletion naming a non-input
// relation loses the incremental path (derived tuples cannot be retracted
// directly) and records the reason, while the result stays correct.
func TestDeletionOfDerivedFallsBack(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	applyEdges(t, db, chainEdges(10))
	if err := db.Apply(db.NewBatch().Delete("path", 1, 2)); err != nil {
		t.Fatalf("derived delete: %v", err)
	}
	// The derived tuple is still derivable from the EDB: it survives.
	checkEquivalent(t, db, p, chainEdges(10), "after derived deletion")
	st := db.Stats()
	if st.AppliesFallback != 1 || st.Recomputes != 1 {
		t.Fatalf("derived deletion must fall back: %+v", st)
	}
	if !strings.Contains(st.FallbackReason, "not an input relation") {
		t.Fatalf("fallback reason = %q", st.FallbackReason)
	}
}

// TestNonMonotoneFallsBack checks programs with negation refuse the
// incremental path but stay correct through recomputation.
func TestNonMonotoneFallsBack(t *testing.T) {
	p := MustParse(`
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl unreachable(x:number, y:number)
.decl node(x:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
unreachable(x, y) :- node(x), node(y), !path(x, y).
`)
	db, err := p.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	if db.Incremental() {
		t.Fatal("negation must disable incremental evaluation")
	}
	b := db.NewBatch().Add("node", 1).Add("node", 2).Add("node", 3).Add("edge", 1, 2)
	if err := db.Apply(b); err != nil {
		t.Fatalf("apply: %v", err)
	}
	got, err := db.Query("unreachable")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	// 1→2 reachable; every other ordered pair (incl. self-pairs) is not.
	if len(got) != 8 {
		t.Fatalf("unreachable rows = %v", got)
	}
	if st := db.Stats(); st.Recomputes != 1 || st.AppliesIncremental != 0 {
		t.Fatalf("non-monotone applies must recompute: %+v", st)
	}
}

// TestQueryPatternsAndScan covers bound-pattern lookups and first-column
// range scans on the resident database.
func TestQueryPatternsAndScan(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	applyEdges(t, db, chainEdges(10))

	// path(3, _): everything reachable from 3.
	rows, err := db.Query("path", 3, nil)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("path(3,_) rows = %v", rows)
	}
	for _, r := range rows {
		if r[0] != int32(3) {
			t.Fatalf("pattern not honored: %v", r)
		}
	}
	// Fully bound probe.
	rows, err = db.Query("path", 2, 9)
	if err != nil || len(rows) != 1 {
		t.Fatalf("path(2,9) = %v, %v", rows, err)
	}
	rows, err = db.Query("path", 9, 2)
	if err != nil || len(rows) != 0 {
		t.Fatalf("path(9,2) = %v, %v", rows, err)
	}
	// Range scan on the first attribute.
	rows, err = db.Scan("edge", 3, 5)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("edge scan [3,5] = %v", rows)
	}
	// Size.
	if n, err := db.Size("edge"); err != nil || n != 10 {
		t.Fatalf("size(edge) = %d, %v", n, err)
	}
	// Arity mismatch and unknown relations error cleanly.
	if _, err := db.Query("path", 1); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := db.Query("nope"); err == nil {
		t.Fatal("expected unknown-relation error")
	}
}

// TestDeterministicTupleOrder is the regression test for the documented
// contract: repeated reads, and reads from independently-built databases
// over the same facts, return rows in the identical primary-index order.
func TestDeterministicTupleOrder(t *testing.T) {
	edges := randomEdges(40, 15, 7)
	build := func(shuffleSeed int64) [][]any {
		p := tcProgram(t, "btree")
		db, err := p.Open()
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer db.Close()
		perm := rand.New(rand.NewSource(shuffleSeed)).Perm(len(edges))
		shuffled := make([][2]int, len(edges))
		for i, j := range perm {
			shuffled[i] = edges[j]
		}
		applyEdges(t, db, shuffled)
		rows, err := db.Query("path")
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		return rows
	}
	a := build(1)
	b := build(2)
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Fatalf("tuple order depends on insertion order:\n%v\n%v", a, b)
	}
}

// TestBatchErrors checks conversion errors surface from Err and Apply and
// poison the whole batch.
func TestBatchErrors(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()

	b := db.NewBatch().Add("edge", 1, 2).Add("nosuch", 1)
	if b.Err() == nil {
		t.Fatal("unknown relation must set batch error")
	}
	if err := db.Apply(b); err == nil {
		t.Fatal("Apply must return the batch error")
	}
	if n, _ := db.Size("edge"); n != 0 {
		t.Fatal("failed batch must not apply partially")
	}
	if db.NewBatch().Add("edge", 1).Err() == nil {
		t.Fatal("arity mismatch must set batch error")
	}
	if db.NewBatch().Add("edge", "x", 2).Err() == nil {
		t.Fatal("type mismatch must set batch error")
	}
}

// TestSnapshotSemantics checks epoch pinning, release discipline, and the
// closed-database behavior.
func TestSnapshotSemantics(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if db.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", db.Epoch())
	}
	applyEdges(t, db, chainEdges(3))
	s := db.Snapshot()
	if s.Epoch() != 1 {
		t.Fatalf("snapshot epoch = %d", s.Epoch())
	}
	if n, err := s.Size("path"); err != nil || n != 6 {
		t.Fatalf("snapshot size = %d, %v", n, err)
	}
	s.Release()
	s.Release() // no-op
	if _, err := s.Query("path"); err == nil {
		t.Fatal("released snapshot must refuse reads")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := db.Query("path"); err == nil {
		t.Fatal("closed database must refuse reads")
	}
	if err := db.Apply(db.NewBatch().Add("edge", 9, 10)); err == nil {
		t.Fatal("closed database must refuse writes")
	}
}

// TestOpenRejectsUnsupportedOptions pins the option gate.
func TestOpenRejectsUnsupportedOptions(t *testing.T) {
	p := tcProgram(t, "btree")
	if _, err := p.Open(WithBackend(Compiled)); err == nil {
		t.Fatal("compiled backend must be rejected")
	}
	if _, err := p.Open(WithProvenance()); err == nil {
		t.Fatal("provenance must be rejected")
	}
}

// TestConcurrentQueryDuringApply is the -race satellite: readers hammer
// Query/Scan/Stats while a writer streams insert batches. Every read must
// observe a consistent fixpoint — for a chain workload, a path count that
// corresponds to some whole number of applied batches.
func TestConcurrentQueryDuringApply(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open(WithWorkers(2))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()

	const segments = 12
	// Chain of length n has n*(n+1)/2 paths; legal sizes are those of
	// prefixes of the chain, extended segment by segment.
	legal := map[int]bool{0: true}
	for s := 1; s <= segments; s++ {
		n := s * 4
		legal[n*(n+1)/2] = true
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					rows, err := db.Query("path")
					if err != nil {
						t.Errorf("query: %v", err)
						return
					}
					if !legal[len(rows)] {
						t.Errorf("observed partial fixpoint: %d path rows", len(rows))
						return
					}
				case 1:
					if _, err := db.Scan("path", 0, 10); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
				case 2:
					st := db.Stats()
					if !legal[st.Relations["path"]] {
						t.Errorf("stats saw partial fixpoint: %+v", st)
						return
					}
				}
			}
		}(int64(r + 1))
	}
	edges := chainEdges(segments * 4)
	for s := 0; s < segments; s++ {
		applyEdges(t, db, edges[s*4:(s+1)*4])
	}
	close(done)
	wg.Wait()
	if n, err := db.Size("path"); err != nil || !legal[n] || n == 0 {
		t.Fatalf("final path size = %d, %v", n, err)
	}
}

// TestInterleavedDeleteEquivalence is the deletion property test: batches
// interleaving insertions and retractions against a resident database must
// match a from-scratch run on the net fact set after every batch, across
// workload shapes and representations. eqrel is excluded by construction —
// union-find relations cannot attribute retractions, so such programs are
// not deletable.
func TestInterleavedDeleteEquivalence(t *testing.T) {
	workloads := map[string][][2]int{
		"chain":  chainEdges(30),
		"grid":   gridEdges(5),
		"random": randomEdges(40, 15, 1),
	}
	for _, rep := range []string{"btree", "brie"} {
		for wname, edges := range workloads {
			t.Run(rep+"/"+wname, func(t *testing.T) {
				p := tcProgram(t, rep)
				db, err := p.Open()
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				defer db.Close()
				if !db.Deletable() {
					t.Fatal("transitive closure should support incremental deletion")
				}
				rng := rand.New(rand.NewSource(99))
				var applied [][2]int
				next := 0
				for round := 0; next < len(edges); round++ {
					b := db.NewBatch()
					for k := 0; k < 5 && next < len(edges); k++ {
						e := edges[next]
						next++
						b.Add("edge", e[0], e[1])
						applied = append(applied, e)
					}
					// Every other round also retracts a few random edges
					// applied earlier (duplicates in the stream mean some
					// retractions are no-ops — that path must hold too).
					if round%2 == 1 {
						for k := 0; k < 3 && len(applied) > 0; k++ {
							i := rng.Intn(len(applied))
							e := applied[i]
							b.Delete("edge", e[0], e[1])
							kept := applied[:0]
							for _, a := range applied {
								if a != e {
									kept = append(kept, a)
								}
							}
							applied = append([][2]int{}, kept...)
						}
					}
					if err := db.Apply(b); err != nil {
						t.Fatalf("round %d: apply: %v", round, err)
					}
					checkEquivalent(t, db, p, applied, fmt.Sprintf("%s/%s round %d", rep, wname, round))
				}
				st := db.Stats()
				if st.AppliesIncremental != st.Applies || st.Recomputes != 0 {
					t.Fatalf("every batch should be incremental: %+v", st)
				}
			})
		}
	}
}

// TestPrefixScanDuringDeleteApply hammers the prefix-scan edge cases while
// a writer streams mixed insert/delete batches: within one pinned snapshot,
// an empty-prefix Query, a fully-bound (max-arity) probe of one of its
// rows, and a first-attribute ScanRange covering everything must agree.
func TestPrefixScanDuringDeleteApply(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open(WithWorkers(2))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	applyEdges(t, db, chainEdges(8))

	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := db.Snapshot()
				rows, err := s.Query("path") // empty prefix: all rows
				if err != nil {
					t.Errorf("query: %v", err)
					s.Release()
					return
				}
				if len(rows) > 0 {
					r0 := rows[0]
					hit, err := s.Query("path", r0[0], r0[1]) // max-arity prefix
					if err != nil || len(hit) != 1 {
						t.Errorf("bound probe of %v: %d rows, %v", r0, len(hit), err)
						s.Release()
						return
					}
				}
				all, err := s.Scan("path", 0, 1<<30)
				if err != nil || len(all) != len(rows) {
					t.Errorf("scan saw %d rows, query saw %d (%v)", len(all), len(rows), err)
					s.Release()
					return
				}
				s.Release()
			}
		}()
	}
	// The writer alternates growing the chain and cutting its tail edge.
	for i := 0; i < 30; i++ {
		if i%3 == 2 {
			if err := db.Apply(db.NewBatch().Delete("edge", 8+i, 9+i)); err != nil {
				t.Fatalf("delete batch %d: %v", i, err)
			}
		} else {
			if err := db.Apply(db.NewBatch().Add("edge", 8+i, 9+i)); err != nil {
				t.Fatalf("insert batch %d: %v", i, err)
			}
		}
	}
	close(done)
	wg.Wait()
	if st := db.Stats(); st.Recomputes != 0 {
		t.Fatalf("mixed stream should stay incremental: %+v", st)
	}
}

// TestSnapshotPinnedAcrossDeleteBatch pins a snapshot, lets a delete batch
// wait on it, and checks the snapshot's reads never observe the retraction
// until released.
func TestSnapshotPinnedAcrossDeleteBatch(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	applyEdges(t, db, chainEdges(4)) // 10 paths

	s := db.Snapshot()
	applied := make(chan error, 1)
	go func() {
		applied <- db.Apply(db.NewBatch().Delete("edge", 2, 3))
	}()
	for i := 0; i < 20; i++ {
		rows, err := s.Query("path")
		if err != nil {
			t.Fatalf("pinned query: %v", err)
		}
		if len(rows) != 10 {
			t.Fatalf("pinned snapshot saw the delete: %d rows", len(rows))
		}
		select {
		case <-applied:
			t.Fatal("delete batch completed while the snapshot was pinned")
		default:
		}
		time.Sleep(time.Millisecond)
	}
	s.Release()
	if err := <-applied; err != nil {
		t.Fatalf("apply after release: %v", err)
	}
	// Cutting 2->3 leaves paths within 0-1-2 and 3-4 only.
	rows, err := db.Query("path")
	if err != nil || len(rows) != 4 {
		t.Fatalf("post-release path rows = %d, %v", len(rows), err)
	}
	if st := db.Stats(); st.Recomputes != 0 || st.AppliesIncremental != st.Applies {
		t.Fatalf("delete batch should be incremental: %+v", st)
	}
}
