package sti

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"sti/internal/store"
	"sti/internal/tuple"
	"sti/internal/value"
)

// Durability protocol of a resident database (the persistent tier's db
// layer). A data directory holds:
//
//	MANIFEST            program identity (source hash); refuses foreign programs
//	LOCK                flock(2) guard; dies with the process
//	snap-<g>.snap       checkpoint g: full symbol table + accumulated EDB
//	wal-<g>.log         batches applied after checkpoint g, one record each
//	tables/             the persistent tier's segment cache (rebuilt on open)
//
// Every Apply appends its batch to the WAL before any state changes, so the
// WAL-after-snapshot suffix always reconstructs the EDB. Checkpoints rotate
// the pair atomically: write snap g+1 (tmp+rename), open wal g+1, then
// delete generation ≤ g files — a crash between any two steps leaves either
// generation complete, and replaying an already-checkpointed WAL is
// idempotent (set semantics for facts, stable re-interning for symbols).
//
// Symbol determinism: evaluation never interns strings (only parsing and
// batch staging do), so each WAL record carries the symbols interned since
// the previous record, in ordinal order. Replay re-interns them at their
// original ordinals, which makes a recovered database byte-identical to an
// uninterrupted one — including the index order of query results, which
// sorts by those ordinals.

// PersistenceConfig tunes the durable tier of a resident database.
type PersistenceConfig struct {
	// Dir is the data directory (created if absent). One process at a time;
	// guarded by an advisory lock that dies with the process.
	Dir string
	// SnapshotEvery checkpoints after this many Apply calls since the last
	// checkpoint (default 256). Negative disables periodic checkpoints;
	// Open and Close always checkpoint.
	SnapshotEvery int
	// Fsync forces every WAL append to stable storage before Apply returns.
	// Off by default: appends are flushed to the OS (surviving process
	// crashes, not power loss), and checkpoints always fsync.
	Fsync bool
	// FlushKeys and MaxSegments tune the segment store (0 means default;
	// see store.Options). Mainly for tests that want tiny segments.
	FlushKeys   int
	MaxSegments int
}

func (c PersistenceConfig) withDefaults() PersistenceConfig {
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 256
	}
	return c
}

// WithPersistence opens the database on a durable data directory with
// default tuning: eligible input relations live on the persistent tier,
// every Apply is write-ahead logged, and restarts recover the EDB from
// snapshot + WAL and recompute the fixpoint.
func WithPersistence(dir string) Option {
	return WithPersistenceConfig(PersistenceConfig{Dir: dir})
}

// WithPersistenceConfig is WithPersistence with explicit tuning.
func WithPersistenceConfig(cfg PersistenceConfig) Option {
	return func(o *runOptions) { c := cfg; o.persist = &c }
}

// persistence is the durable state attached to a Database. All fields are
// mutated under the database writer lock.
type persistence struct {
	cfg    PersistenceConfig
	st     *store.Store
	wal    *store.WAL
	gen    uint64 // generation of the current snapshot/WAL pair
	symLen int    // symbols already covered by snapshot + logged records

	sinceSnap        int
	snapshots        uint64
	recovered        bool // last Open replayed state from disk
	recoveredRecords int  // WAL records replayed by the last Open
	gates            map[string]string
}

// dbTier implements relation.Tier over the open store: every eligible
// relation index gets a durable table named <rel>.<index>; gating decisions
// are recorded for Stats.
type dbTier struct{ p *persistence }

func (t dbTier) Table(rel string, idx int, order tuple.Order) *store.Table {
	tab, err := t.p.st.Table(fmt.Sprintf("%s.%d", rel, idx), tuple.KeySize(len(order)))
	if err != nil {
		return nil
	}
	return tab
}

func (t dbTier) Gate(rel, reason string) {
	if _, dup := t.p.gates[rel]; !dup {
		t.p.gates[rel] = reason
	}
}

// manifest pins a data directory to one program.
type manifest struct {
	Version int    `json:"version"`
	Program string `json:"program_sha256"`
}

const manifestName = "MANIFEST"

// openPersistence opens the store, verifies (or writes) the manifest, and
// returns the tier hook for engine construction.
func openPersistence(p *Program, cfg PersistenceConfig) (*persistence, error) {
	cfg = cfg.withDefaults()
	st, err := store.Open(cfg.Dir, store.Options{
		Fsync:       cfg.Fsync,
		FlushKeys:   cfg.FlushKeys,
		MaxSegments: cfg.MaxSegments,
	})
	if err != nil {
		return nil, err
	}
	mPath := filepath.Join(cfg.Dir, manifestName)
	if raw, err := os.ReadFile(mPath); err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			st.Close()
			return nil, fmt.Errorf("sti: corrupt %s: %v", mPath, err)
		}
		if m.Program != p.hash {
			st.Close()
			return nil, fmt.Errorf("sti: data directory %s belongs to a different program (manifest %s, program %s)",
				cfg.Dir, short(m.Program), short(p.hash))
		}
	} else {
		raw, _ := json.Marshal(manifest{Version: 1, Program: p.hash})
		if err := os.WriteFile(mPath, raw, 0o644); err != nil {
			st.Close()
			return nil, err
		}
	}
	return &persistence{cfg: cfg, st: st, gates: map[string]string{}}, nil
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

func programHash(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// --- recovery ---

// recover restores the database from the newest valid snapshot plus the
// WAL suffix, recomputes the fixpoint, and checkpoints so the directory
// starts the session one clean generation ahead. On a fresh directory it
// evaluates normally and checkpoints the empty EDB.
func (pst *persistence) recover(db *Database) error {
	dir := pst.cfg.Dir
	snapGens, err := store.ListSnapshots(dir)
	if err != nil {
		return err
	}
	walGens, err := store.ListWALs(dir)
	if err != nil {
		return err
	}
	maxGen := uint64(0)
	for _, g := range append(append([]uint64(nil), snapGens...), walGens...) {
		if g > maxGen {
			maxGen = g
		}
	}

	// Newest valid snapshot wins; older ones only matter if the newest was
	// never completed, which the atomic rename rules out, but tolerate a
	// corrupted file by falling back rather than refusing to start.
	restored := false
	var snapGen uint64
	for i := len(snapGens) - 1; i >= 0 && !restored; i-- {
		payload, err := store.ReadSnapshot(store.SnapshotPath(dir, snapGens[i]))
		if err != nil {
			continue
		}
		if err := pst.restoreSnapshot(db, payload); err != nil {
			return fmt.Errorf("sti: snapshot generation %d: %w", snapGens[i], err)
		}
		snapGen, restored = snapGens[i], true
	}
	if !restored {
		pst.symLen = db.prog.st.Len()
		if len(walGens) > 0 {
			return fmt.Errorf("sti: data directory %s has WAL files but no readable snapshot", dir)
		}
	}

	records := 0
	for _, g := range walGens {
		if restored && g < snapGen {
			continue // superseded generation a crash left behind; replay is harmless but pointless
		}
		n, err := store.ReplayWAL(store.WALPath(dir, g), func(rec []byte) error {
			return pst.replayRecord(db, rec)
		})
		records += n
		if err != nil {
			return fmt.Errorf("sti: wal generation %d: %w", g, err)
		}
	}
	pst.recovered = restored || records > 0
	pst.recoveredRecords = records

	if pst.recovered {
		if err := db.recompute(); err != nil {
			return err
		}
	} else if err := db.eng.Eval(); err != nil {
		return err
	}
	pst.gen = maxGen
	return pst.checkpoint(db)
}

// checkpoint writes snapshot generation gen+1, rotates the WAL to match,
// and prunes superseded generations. Runs in writer context.
func (pst *persistence) checkpoint(db *Database) error {
	next := pst.gen + 1
	dir := pst.cfg.Dir
	if err := store.WriteSnapshot(store.SnapshotPath(dir, next), pst.encodeSnapshot(db)); err != nil {
		return err
	}
	wal, err := store.CreateWAL(store.WALPath(dir, next), pst.cfg.Fsync)
	if err != nil {
		return err
	}
	if pst.wal != nil {
		pst.wal.Close()
	}
	pst.wal = wal
	pst.gen = next
	pst.symLen = db.prog.st.Len()
	pst.sinceSnap = 0
	pst.snapshots++
	if gens, err := store.ListSnapshots(dir); err == nil {
		for _, g := range gens {
			if g < next {
				os.Remove(store.SnapshotPath(dir, g))
			}
		}
	}
	if gens, err := store.ListWALs(dir); err == nil {
		for _, g := range gens {
			if g < next {
				os.Remove(store.WALPath(dir, g))
			}
		}
	}
	return nil
}

// shutdown runs the final checkpoint and releases the directory. Writer
// context (called from Close).
func (pst *persistence) shutdown(db *Database) error {
	err := pst.checkpoint(db)
	if pst.wal != nil {
		if e := pst.wal.Sync(); err == nil {
			err = e
		}
		if e := pst.wal.Close(); err == nil {
			err = e
		}
		pst.wal = nil
	}
	if e := pst.st.Close(); err == nil {
		err = e
	}
	return err
}

// abandon drops the durable state without checkpointing or flushing — the
// crash-simulation hook for recovery tests. What survives is exactly what a
// kill -9 would leave: the WAL records whose Append returned.
func (pst *persistence) abandon() {
	if pst.wal != nil {
		pst.wal.Abandon()
		pst.wal = nil
	}
	pst.st.Close()
}

// --- snapshot codec ---

// Snapshot payload:
//
//	u32 nSyms   | nSyms × (u32 len | bytes)        full symbol table, ordinal order
//	u32 nRels   | per relation:
//	    u32 len | name | u32 arity | u32 count | count × arity × u32 (big-endian)
//
// Only the accumulated EDB (db.facts) is stored; the IDB is recomputed.
func (pst *persistence) encodeSnapshot(db *Database) []byte {
	var b bytes.Buffer
	syms := db.prog.st.Strings()
	putU32(&b, uint32(len(syms)))
	for _, s := range syms {
		putStr(&b, s)
	}
	names := make([]string, 0, len(db.facts))
	for _, rd := range db.prog.ram.Relations {
		if !rd.Aux && len(db.facts[rd.Name]) > 0 {
			names = append(names, rd.Name)
		}
	}
	putU32(&b, uint32(len(names)))
	for _, name := range names {
		ts := db.facts[name]
		putStr(&b, name)
		arity := 0
		if len(ts) > 0 {
			arity = len(ts[0])
		}
		putU32(&b, uint32(arity))
		putU32(&b, uint32(len(ts)))
		for _, t := range ts {
			for _, w := range t {
				putU32(&b, uint32(w))
			}
		}
	}
	return b.Bytes()
}

func (pst *persistence) restoreSnapshot(db *Database, payload []byte) error {
	r := &reader{buf: payload}
	nSyms := int(r.u32())
	syms := make([]string, 0, nSyms)
	for i := 0; i < nSyms && r.err == nil; i++ {
		syms = append(syms, r.str())
	}
	if r.err != nil {
		return r.err
	}
	// The freshly parsed program interned its symbols in deterministic
	// source order, so they must form a prefix of the saved table; the rest
	// re-interns in ordinal order, restoring every saved ordinal exactly.
	cur := db.prog.st.Strings()
	if len(cur) > len(syms) {
		return fmt.Errorf("symbol table has %d symbols, snapshot only %d (was the Program reused?)", len(cur), len(syms))
	}
	for i, s := range cur {
		if syms[i] != s {
			return fmt.Errorf("symbol %d mismatch: program %q, snapshot %q", i, s, syms[i])
		}
	}
	for i := len(cur); i < len(syms); i++ {
		if ord := db.prog.st.Intern(syms[i]); int(ord) != i {
			return fmt.Errorf("symbol %q restored at ordinal %d, want %d", syms[i], ord, i)
		}
	}

	nRels := int(r.u32())
	for i := 0; i < nRels; i++ {
		name := r.str()
		arity := int(r.u32())
		count := int(r.u32())
		if r.err != nil {
			return r.err
		}
		if arity < 0 || arity > 64 || count < 0 {
			return fmt.Errorf("relation %s: implausible arity %d / count %d", name, arity, count)
		}
		ts := make([]tuple.Tuple, 0, count)
		flat := make([]value.Value, count*arity)
		for j := range flat {
			flat[j] = value.Value(r.u32())
		}
		if r.err != nil {
			return r.err
		}
		for j := 0; j < count; j++ {
			ts = append(ts, flat[j*arity:(j+1)*arity:(j+1)*arity])
		}
		db.facts[name] = ts
	}
	return r.err
}

// --- WAL record codec ---

// WAL record (one per Apply batch):
//
//	u32 baseOrd | u32 nNew | nNew × (u32 len | bytes)   symbols interned since
//	                                                    the previous record
//	u32 nIns | nIns facts | u32 nDels | nDels facts
//	fact: u32 len | rel | u32 arity | arity × u32
//
// Values are raw ordinals/words: the dictionary section guarantees every
// referenced symbol ordinal is already restored by the time facts decode.
func (pst *persistence) logBatch(db *Database, b *Batch) error {
	var buf bytes.Buffer
	syms := db.prog.st.Strings()
	if pst.symLen > len(syms) {
		return fmt.Errorf("sti: symbol table shrank (%d -> %d)", pst.symLen, len(syms))
	}
	putU32(&buf, uint32(pst.symLen))
	news := syms[pst.symLen:]
	putU32(&buf, uint32(len(news)))
	for _, s := range news {
		putStr(&buf, s)
	}
	putFacts(&buf, b.ins)
	putFacts(&buf, b.dels)
	if err := pst.wal.Append(buf.Bytes()); err != nil {
		return err
	}
	pst.symLen = len(syms)
	return nil
}

func putFacts(b *bytes.Buffer, facts []batchFact) {
	putU32(b, uint32(len(facts)))
	for _, f := range facts {
		putStr(b, f.rel)
		putU32(b, uint32(len(f.t)))
		for _, w := range f.t {
			putU32(b, uint32(w))
		}
	}
}

// replayRecord applies one logged batch to the accumulated fact set,
// re-interning its symbol dictionary first. Replay is idempotent: a record
// already covered by a newer snapshot re-interns to identical ordinals and
// re-applies facts with set semantics.
func (pst *persistence) replayRecord(db *Database, rec []byte) error {
	r := &reader{buf: rec}
	base := int(r.u32())
	nNew := int(r.u32())
	if r.err != nil {
		return r.err
	}
	if base > db.prog.st.Len() {
		return fmt.Errorf("record expects %d interned symbols, table has %d", base, db.prog.st.Len())
	}
	for i := 0; i < nNew; i++ {
		s := r.str()
		if r.err != nil {
			return r.err
		}
		if ord := db.prog.st.Intern(s); int(ord) != base+i {
			return fmt.Errorf("symbol %q replayed at ordinal %d, want %d", s, ord, base+i)
		}
	}
	ins, err := readFacts(r)
	if err != nil {
		return err
	}
	dels, err := readFacts(r)
	if err != nil {
		return err
	}
	for _, f := range ins {
		db.facts[f.rel] = append(db.facts[f.rel], f.t)
	}
	for _, f := range dels {
		ts := db.facts[f.rel]
		kept := ts[:0]
		for _, t := range ts {
			if !tuple.Equal(t, f.t) {
				kept = append(kept, t)
			}
		}
		db.facts[f.rel] = kept
	}
	return nil
}

func readFacts(r *reader) ([]batchFact, error) {
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	out := make([]batchFact, 0, n)
	for i := 0; i < n; i++ {
		rel := r.str()
		arity := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if arity < 0 || arity > 64 {
			return nil, fmt.Errorf("fact for %s has implausible arity %d", rel, arity)
		}
		t := make(tuple.Tuple, arity)
		for j := range t {
			t[j] = value.Value(r.u32())
		}
		out = append(out, batchFact{rel: rel, t: t})
	}
	return out, r.err
}

// --- little codec helpers ---

func putU32(b *bytes.Buffer, v uint32) {
	var w [4]byte
	binary.BigEndian.PutUint32(w[:], v)
	b.Write(w[:])
}

func putStr(b *bytes.Buffer, s string) {
	putU32(b, uint32(len(s)))
	b.WriteString(s)
}

type reader struct {
	buf []byte
	err error
}

var errShortRecord = errors.New("truncated record")

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.err = errShortRecord
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n < 0 || len(r.buf) < n {
		r.err = errShortRecord
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// --- stats ---

// PersistStats summarizes the durable tier for DBStats.
type PersistStats struct {
	Dir        string `json:"dir"`
	Generation uint64 `json:"generation"`
	// Recovered reports whether the last Open restored state from disk;
	// RecoveredRecords counts the WAL records replayed on top of the
	// snapshot (nonzero means the previous session did not close cleanly).
	Recovered        bool `json:"recovered"`
	RecoveredRecords int  `json:"recovered_records,omitempty"`

	WALRecords    int64  `json:"wal_records"`
	WALBytes      int64  `json:"wal_bytes"`
	WALSyncs      int64  `json:"wal_syncs"`
	Snapshots     uint64 `json:"snapshots"`
	SinceSnapshot int    `json:"applies_since_snapshot"`

	Tables      int   `json:"tables"`
	Segments    int   `json:"segments"`
	LiveKeys    int   `json:"live_keys"`
	Flushes     int64 `json:"flushes"`
	Compactions int64 `json:"compactions"`

	// Gated maps each input relation kept on the in-memory tier to the
	// reason it could not persist (eqrel, nullary, sharded, ...).
	Gated map[string]string `json:"gated,omitempty"`
}

func (pst *persistence) stats() *PersistStats {
	st := pst.st.Stats()
	out := &PersistStats{
		Dir:              pst.cfg.Dir,
		Generation:       pst.gen,
		Recovered:        pst.recovered,
		RecoveredRecords: pst.recoveredRecords,
		Snapshots:        pst.snapshots,
		SinceSnapshot:    pst.sinceSnap,
		Tables:           st.Tables,
		Segments:         st.Segments,
		LiveKeys:         st.LiveKeys,
		Flushes:          st.Flushes,
		Compactions:      st.Compactions,
	}
	if pst.wal != nil {
		out.WALRecords = pst.wal.Records()
		out.WALBytes = pst.wal.Bytes()
		out.WALSyncs = pst.wal.Syncs()
	}
	if len(pst.gates) > 0 {
		out.Gated = make(map[string]string, len(pst.gates))
		for rel, reason := range pst.gates {
			out.Gated[rel] = reason
		}
	}
	return out
}
