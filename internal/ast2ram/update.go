package ast2ram

import (
	"fmt"
	"strings"

	"sti/internal/ast"
	"sti/internal/ram"
	"sti/internal/sema"
)

// Update-program emission (delta-restart semi-naive evaluation).
//
// The full program evaluates each stratum from scratch. A resident engine
// instead stages fresh EDB facts into the recent_R trackers and runs
// Program.Update, which re-enters every stratum seeded only with what
// changed:
//
//   - Every rule gets one *restart* variant per out-of-stratum body atom:
//     that atom reads recent_X (the fresh tuples of a lower stratum) while
//     all other atoms read the full relations. Since insert-monotone
//     programs only ever add tuples, every new derivation has at least one
//     fresh premise, and the fresh premise is either a lower-stratum tuple
//     (covered by a restart variant) or an in-stratum tuple (covered by
//     delta seeding and the fixpoint loop below).
//   - Recursive strata then rerun the standard semi-naive LOOP with delta_R
//     seeded from recent_R and the restart output, rather than the full
//     relation — the delta-restart of the issue.
//   - Atoms over out-of-stratum eqrel relations cannot be freshness-tracked
//     (the union-find closes pairs no insert ever mentioned), so such rules
//     fall back to a single all-full restart variant; the ¬R(head) guard
//     keeps re-derivations cheap.
//
// Every stratum section appends its newly derived tuples to recent_R so
// downstream sections restart from them; the tail of the update program
// clears all trackers.

// translateCountingUpdate emits the update section of a counting stratum.
// The guarded restart variants of the set-semantics path would be wrong
// here: a tuple's support must grow by exactly its number of *new*
// derivations, so the variants are unguarded, enumerate per-derivation
// (forceScan), and telescope over the recent trackers — variant i reads
// recent_B at atom i and excludes recent_B at every earlier atom, which
// partitions the new derivations by their first fresh premise. The counts
// accumulate in cbuf_R; COUNT-MERGE then folds them into the relation,
// inserting tuples whose support rises from zero and recording them in
// recent_R for downstream restarts.
func (t *translator) translateCountingUpdate(s *sema.Stratum) (ram.Statement, error) {
	var stmts []ram.Statement
	touched := map[string]bool{}
	for _, r := range s.Rels {
		for _, c := range r.Clauses {
			if c.IsFact() {
				continue // fact support never changes after Main
			}
			var pos []int
			for i, l := range c.Body {
				if _, ok := l.(*ast.Atom); ok {
					pos = append(pos, i)
				}
			}
			atomName := func(i int) string { return c.Body[i].(*ast.Atom).Name }
			cbuf := t.cbufs[r.Name()]
			for k, pk := range pos {
				v := version{
					target:    cbuf,
					forceScan: true,
					subst:     map[int]*ram.Relation{pk: t.recents[atomName(pk)]},
					exclude:   map[int]*ram.Relation{},
				}
				for _, pj := range pos[:k] {
					v.exclude[pj] = t.recents[atomName(pj)]
				}
				q, err := t.translateRule(c, v)
				if err != nil {
					return nil, err
				}
				stmts = append(stmts, q)
				touched[r.Name()] = true
			}
		}
	}
	for _, r := range s.Rels {
		if !touched[r.Name()] {
			continue
		}
		stmts = append(stmts, &ram.CountMerge{
			Dst:   t.rels[r.Name()],
			Src:   t.cbufs[r.Name()],
			Fresh: t.recents[r.Name()],
		})
		stmts = append(stmts, &ram.Clear{Rel: t.cbufs[r.Name()]})
	}
	if len(stmts) == 0 {
		return nil, nil
	}
	return &ram.Sequence{Stmts: stmts}, nil
}

func (t *translator) translateStratumUpdate(s *sema.Stratum) (ram.Statement, error) {
	type rule struct {
		rel    *sema.Rel
		clause *ast.Clause
	}
	var rules []rule
	for _, r := range s.Rels {
		for _, c := range r.Clauses {
			if !c.IsFact() {
				rules = append(rules, rule{r, c})
			}
		}
	}
	if len(rules) == 0 {
		return nil, nil // pure EDB stratum: batch facts arrive via recent_R
	}

	inStratum := map[string]bool{}
	for _, r := range s.Rels {
		inStratum[r.Name()] = true
	}

	// restartVersions expands one rule into its restart variants.
	restartVersions := func(c *ast.Clause, target, guard *ram.Relation, naive bool) []version {
		var outPos []int
		outEqrel := false
		for i, l := range c.Body {
			at, ok := l.(*ast.Atom)
			if !ok || inStratum[at.Name] {
				continue
			}
			if t.rels[at.Name].Rep == ram.RepEqRel {
				outEqrel = true
				continue
			}
			outPos = append(outPos, i)
		}
		if outEqrel || len(outPos) == 0 {
			// An untrackable premise (or a ground rule): re-derive from the
			// full relations, deduplicated by the guard.
			return []version{{target: target, guard: guard, naive: naive}}
		}
		vs := make([]version, 0, len(outPos))
		for _, i := range outPos {
			vs = append(vs, version{target: target, guard: guard, naive: naive, useRecent: true, recentPos: i})
		}
		return vs
	}

	var stmts []ram.Statement
	emit := func(c *ast.Clause, vs []version) error {
		for _, v := range vs {
			q, err := t.translateRule(c, v)
			if err != nil {
				return err
			}
			stmts = append(stmts, q)
		}
		return nil
	}

	if !s.Recursive {
		if t.deletable {
			return t.translateCountingUpdate(s)
		}
		for _, ru := range rules {
			head := t.rels[ru.rel.Name()]
			rc := t.recents[ru.rel.Name()]
			var vs []version
			if rc != nil {
				vs = restartVersions(ru.clause, rc, head, false)
			} else {
				// EqRel head: project straight into the union-find (inserts
				// are idempotent and nothing downstream tracks its recents).
				vs = restartVersions(ru.clause, head, nil, false)
			}
			if err := emit(ru.clause, vs); err != nil {
				return nil, err
			}
		}
		// Fold the fresh tuples into the base relations; recent_R keeps
		// them visible to downstream sections until the final clears.
		for _, r := range s.Rels {
			if rc := t.recents[r.Name()]; rc != nil {
				stmts = append(stmts, &ram.Merge{Dst: t.rels[r.Name()], Src: rc})
			}
		}
		return &ram.Sequence{Stmts: stmts}, nil
	}

	// Recursive stratum: restart into new_R, fold into base/recent/delta,
	// then rerun the semi-naive loop seeded from the deltas only.
	for _, ru := range rules {
		target := t.rels[ru.rel.Name()]
		newRel := t.news[ru.rel.Name()]
		anyInStratum := false
		for _, l := range ru.clause.Body {
			if at, ok := l.(*ast.Atom); ok && inStratum[at.Name] {
				anyInStratum = true
			}
		}
		if !anyInStratum {
			if err := emit(ru.clause, restartVersions(ru.clause, newRel, target, false)); err != nil {
				return nil, err
			}
			continue
		}
		// A rule with in-stratum atoms still needs restart variants for its
		// out-of-stratum premises: old in-stratum ⨝ fresh lower-stratum
		// pairs never pass through any delta. In-stratum atoms read the
		// full relation here (naive), exactly like the pre-loop init rules.
		hasOut := false
		for _, l := range ru.clause.Body {
			if at, ok := l.(*ast.Atom); ok && !inStratum[at.Name] {
				hasOut = true
			}
		}
		if hasOut {
			if err := emit(ru.clause, restartVersions(ru.clause, newRel, target, true)); err != nil {
				return nil, err
			}
		}
	}
	for _, r := range s.Rels {
		nw := t.news[r.Name()]
		rc := t.recents[r.Name()]
		if nw != nil {
			stmts = append(stmts, &ram.Merge{Dst: t.rels[r.Name()], Src: nw})
			if rc != nil {
				stmts = append(stmts, &ram.Merge{Dst: rc, Src: nw})
			}
		}
		if d := t.deltas[r.Name()]; d != nil && rc != nil {
			// Seed the delta with everything fresh so far: staged batch
			// facts and the restart output, but *not* the old fixpoint.
			stmts = append(stmts, &ram.Merge{Dst: d, Src: rc})
		}
		if nw != nil {
			stmts = append(stmts, &ram.Clear{Rel: nw})
		}
	}

	// The fixpoint loop mirrors translateStratum's, with one extra rotation
	// step: new_R also merges into recent_R for downstream restarts.
	var loopBody []ram.Statement
	for _, ru := range rules {
		target := t.rels[ru.rel.Name()]
		newRel := t.news[ru.rel.Name()]
		var rec []int
		anyInStratum := false
		for i, l := range ru.clause.Body {
			if at, ok := l.(*ast.Atom); ok && inStratum[at.Name] {
				anyInStratum = true
				if t.rels[at.Name].Rep != ram.RepEqRel {
					rec = append(rec, i)
				}
			}
		}
		if !anyInStratum {
			continue
		}
		if len(rec) == 0 {
			q, err := t.translateRule(ru.clause, version{target: newRel, guard: target, naive: true})
			if err != nil {
				return nil, err
			}
			loopBody = append(loopBody, q)
			continue
		}
		for _, deltaPos := range rec {
			q, err := t.translateRule(ru.clause, version{
				target:   newRel,
				guard:    target,
				deltaPos: deltaPos,
				useDelta: true,
			})
			if err != nil {
				return nil, err
			}
			loopBody = append(loopBody, q)
		}
	}
	var post []ram.Statement
	var exitCond ram.Condition
	var names []string
	for _, r := range s.Rels {
		nw := t.news[r.Name()]
		if nw == nil {
			continue
		}
		names = append(names, r.Name())
		var c ram.Condition = &ram.EmptinessCheck{Rel: nw}
		if exitCond == nil {
			exitCond = c
		} else {
			exitCond = &ram.And{L: exitCond, R: c}
		}
		post = append(post, &ram.Merge{Dst: t.rels[r.Name()], Src: nw})
		if rc := t.recents[r.Name()]; rc != nil {
			post = append(post, &ram.Merge{Dst: rc, Src: nw})
		}
		if d := t.deltas[r.Name()]; d != nil {
			post = append(post, &ram.Swap{A: d, B: nw})
			post = append(post, &ram.Clear{Rel: nw})
		} else {
			post = append(post, &ram.Clear{Rel: nw})
		}
	}
	body := append(loopBody, &ram.Exit{Cond: exitCond})
	body = append(body, post...)
	label := fmt.Sprintf("update stratum %d (%s)", s.Index, strings.Join(names, ", "))
	stmts = append(stmts, &ram.Loop{Body: &ram.Sequence{Stmts: body}, Label: label})
	for _, r := range s.Rels {
		if d := t.deltas[r.Name()]; d != nil {
			stmts = append(stmts, &ram.Clear{Rel: d})
		}
		if nw := t.news[r.Name()]; nw != nil {
			stmts = append(stmts, &ram.Clear{Rel: nw})
		}
	}
	return &ram.Sequence{Stmts: stmts}, nil
}
