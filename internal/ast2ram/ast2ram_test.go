package ast2ram

import (
	"strings"
	"testing"

	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/sema"
	"sti/internal/symtab"
)

func translate(t *testing.T, src string) *ram.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	rp, err := Translate(an, symtab.New())
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return rp
}

const tcSrc = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func TestTransitiveClosureShape(t *testing.T) {
	rp := translate(t, tcSrc)
	names := map[string]*ram.Relation{}
	for _, r := range rp.Relations {
		names[r.Name] = r
	}
	for _, want := range []string{"edge", "path", "delta_path", "new_path"} {
		if names[want] == nil {
			t.Fatalf("missing relation %s (have %v)", want, relNames(rp))
		}
	}
	if !names["delta_path"].Aux || names["edge"].Aux {
		t.Fatal("aux flags wrong")
	}
	text := rp.String()
	for _, want := range []string{
		"LOOP", "EXIT", "MERGE", "SWAP (delta_path, new_path)",
		"LOAD edge", "STORE path", "INSERT",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("RAM text lacks %q:\n%s", want, text)
		}
	}
	// The recursive rule scans delta_path and index-scans edge on column 0.
	if !strings.Contains(text, "delta_path") {
		t.Fatalf("no delta scan:\n%s", text)
	}
	if !strings.Contains(text, "ON INDEX") {
		t.Fatalf("no index scan generated:\n%s", text)
	}
}

func TestIndexSelectionOrders(t *testing.T) {
	rp := translate(t, tcSrc)
	var edge *ram.Relation
	for _, r := range rp.Relations {
		if r.Name == "edge" {
			edge = r
		}
	}
	// edge is searched with column 0 bound: one index, leading with 0.
	if len(edge.Orders) != 1 {
		t.Fatalf("edge orders = %v", edge.Orders)
	}
	if edge.Orders[0][0] != 0 {
		t.Fatalf("edge order %v does not lead with column 0", edge.Orders[0])
	}
}

func TestSecondColumnSearchGetsOrder(t *testing.T) {
	rp := translate(t, `
.decl e(x:number, y:number)
.decl r(x:number)
.decl s(x:number)
r(x) :- s(y), e(x, y).
`)
	var e *ram.Relation
	for _, r := range rp.Relations {
		if r.Name == "e" {
			e = r
		}
	}
	if len(e.Orders) != 1 || e.Orders[0][0] != 1 {
		t.Fatalf("e orders = %v, want leading column 1", e.Orders)
	}
}

func TestNegationBecomesExistenceCheck(t *testing.T) {
	rp := translate(t, `
.decl a(x:number)
.decl b(x:number)
.decl c(x:number)
c(x) :- a(x), !b(x).
`)
	text := rp.String()
	if !strings.Contains(text, "NOT ((0=t0.0) IN b)") {
		t.Fatalf("negation lowering:\n%s", text)
	}
}

func TestGuardOnRecursiveInsert(t *testing.T) {
	rp := translate(t, tcSrc)
	text := rp.String()
	// new_path inserts are guarded by absence from path.
	if !strings.Contains(text, "IN path)") || !strings.Contains(text, "INTO new_path") {
		t.Fatalf("missing recursive guard:\n%s", text)
	}
}

func TestFactsProject(t *testing.T) {
	rp := translate(t, `
.decl p(x:number, s:symbol)
p(1, "a").
p(2, "b").
`)
	text := rp.String()
	if strings.Count(text, "INSERT") != 2 {
		t.Fatalf("fact inserts:\n%s", text)
	}
}

func TestAggregateLowering(t *testing.T) {
	rp := translate(t, `
.decl e(x:number, y:number)
.decl out(x:number, n:number)
out(x, n) :- e(x, _), n = count : { e(x, _) }.
`)
	text := rp.String()
	if !strings.Contains(text, "count") {
		t.Fatalf("no aggregate node:\n%s", text)
	}
}

func TestEqrelNonPrefixFallsBackToScan(t *testing.T) {
	rp := translate(t, `
.decl eq(x:number, y:number) eqrel
.decl s(x:number)
.decl out(x:number)
out(x) :- s(y), eq(x, y).
`)
	text := rp.String()
	// The eq atom binds only column 1: must be a full scan plus filter.
	if !strings.Contains(text, "FOR t1 IN eq\n") {
		t.Fatalf("eqrel search did not fall back to scan:\n%s", text)
	}
}

func TestMutualRecursionLoopsOnce(t *testing.T) {
	rp := translate(t, `
.decl seed(x:number)
.decl a(x:number)
.decl b(x:number)
seed(1).
a(x) :- seed(x).
a(x) :- b(x).
b(x) :- a(x), x < 10.
`)
	text := rp.String()
	if strings.Count(text, "END LOOP") != 1 {
		t.Fatalf("expected one fixpoint loop:\n%s", text)
	}
	// Exit condition covers both new relations.
	if !strings.Contains(text, "new_a = EMPTY AND new_b = EMPTY") {
		t.Fatalf("exit condition:\n%s", text)
	}
}

func TestRuleCount(t *testing.T) {
	rp := translate(t, tcSrc)
	// 1 non-recursive rule + 1 recursive rule with one delta version = 2.
	if rp.NumRules != 2 {
		t.Fatalf("NumRules = %d", rp.NumRules)
	}
}

func relNames(rp *ram.Program) []string {
	var out []string
	for _, r := range rp.Relations {
		out = append(out, r.Name)
	}
	return out
}
