package ast2ram

import (
	"strings"
	"testing"

	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/sema"
	"sti/internal/symtab"
)

// translate runs src through parse→sema→Translate and verifies the RAM
// output, so every fixture in this file doubles as a verifier corpus
// entry.
func translate(t *testing.T, src string) *ram.Program {
	t.Helper()
	rp, _ := translateVerified(t, src)
	return rp
}

func translateVerified(t *testing.T, src string) (*ram.Program, *symtab.Table) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	st := symtab.New()
	rp, err := Translate(an, st)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if err := verify.Check(rp, "ast2ram"); err != nil {
		t.Fatalf("translated program fails verification: %v", err)
	}
	return rp, st
}

const tcSrc = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func TestTransitiveClosureShape(t *testing.T) {
	rp := translate(t, tcSrc)
	names := map[string]*ram.Relation{}
	for _, r := range rp.Relations {
		names[r.Name] = r
	}
	for _, want := range []string{"edge", "path", "delta_path", "new_path"} {
		if names[want] == nil {
			t.Fatalf("missing relation %s (have %v)", want, relNames(rp))
		}
	}
	if !names["delta_path"].Aux || names["edge"].Aux {
		t.Fatal("aux flags wrong")
	}
	text := rp.String()
	for _, want := range []string{
		"LOOP", "EXIT", "MERGE", "SWAP (delta_path, new_path)",
		"LOAD edge", "STORE path", "INSERT",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("RAM text lacks %q:\n%s", want, text)
		}
	}
	// The recursive rule scans delta_path and index-scans edge on column 0.
	if !strings.Contains(text, "delta_path") {
		t.Fatalf("no delta scan:\n%s", text)
	}
	if !strings.Contains(text, "ON INDEX") {
		t.Fatalf("no index scan generated:\n%s", text)
	}
}

func TestIndexSelectionOrders(t *testing.T) {
	rp := translate(t, tcSrc)
	var edge *ram.Relation
	for _, r := range rp.Relations {
		if r.Name == "edge" {
			edge = r
		}
	}
	// edge is searched with column 0 bound: one index, leading with 0.
	if len(edge.Orders) != 1 {
		t.Fatalf("edge orders = %v", edge.Orders)
	}
	if edge.Orders[0][0] != 0 {
		t.Fatalf("edge order %v does not lead with column 0", edge.Orders[0])
	}
}

const secondColSrc = `
.decl e(x:number, y:number)
.decl r(x:number)
.decl s(x:number)
r(x) :- s(y), e(x, y).
`

func TestSecondColumnSearchGetsOrder(t *testing.T) {
	rp := translate(t, secondColSrc)
	var e *ram.Relation
	for _, r := range rp.Relations {
		if r.Name == "e" {
			e = r
		}
	}
	if len(e.Orders) != 1 || e.Orders[0][0] != 1 {
		t.Fatalf("e orders = %v, want leading column 1", e.Orders)
	}
}

const negationSrc = `
.decl a(x:number)
.decl b(x:number)
.decl c(x:number)
c(x) :- a(x), !b(x).
`

func TestNegationBecomesExistenceCheck(t *testing.T) {
	rp := translate(t, negationSrc)
	text := rp.String()
	if !strings.Contains(text, "NOT ((0=t0.0) IN b)") {
		t.Fatalf("negation lowering:\n%s", text)
	}
}

func TestGuardOnRecursiveInsert(t *testing.T) {
	rp := translate(t, tcSrc)
	text := rp.String()
	// new_path inserts are guarded by absence from path.
	if !strings.Contains(text, "IN path)") || !strings.Contains(text, "INTO new_path") {
		t.Fatalf("missing recursive guard:\n%s", text)
	}
}

const factsSrc = `
.decl p(x:number, s:symbol)
p(1, "a").
p(2, "b").
`

func TestFactsProject(t *testing.T) {
	rp := translate(t, factsSrc)
	text := rp.String()
	if strings.Count(text, "INSERT") != 2 {
		t.Fatalf("fact inserts:\n%s", text)
	}
}

const aggregateSrc = `
.decl e(x:number, y:number)
.decl out(x:number, n:number)
out(x, n) :- e(x, _), n = count : { e(x, _) }.
`

func TestAggregateLowering(t *testing.T) {
	rp := translate(t, aggregateSrc)
	text := rp.String()
	if !strings.Contains(text, "count") {
		t.Fatalf("no aggregate node:\n%s", text)
	}
}

const eqrelSrc = `
.decl eq(x:number, y:number) eqrel
.decl s(x:number)
.decl out(x:number)
out(x) :- s(y), eq(x, y).
`

func TestEqrelNonPrefixFallsBackToScan(t *testing.T) {
	rp := translate(t, eqrelSrc)
	text := rp.String()
	// The eq atom binds only column 1: must be a full scan plus filter.
	if !strings.Contains(text, "FOR t1 IN eq\n") {
		t.Fatalf("eqrel search did not fall back to scan:\n%s", text)
	}
}

const mutualSrc = `
.decl seed(x:number)
.decl a(x:number)
.decl b(x:number)
seed(1).
a(x) :- seed(x).
a(x) :- b(x).
b(x) :- a(x), x < 10.
`

func TestMutualRecursionLoopsOnce(t *testing.T) {
	rp := translate(t, mutualSrc)
	// Only the Main program: the update section repeats the fixpoint loop.
	text, _, _ := strings.Cut(rp.String(), "\nUPDATE\n")
	if strings.Count(text, "END LOOP") != 1 {
		t.Fatalf("expected one fixpoint loop:\n%s", text)
	}
	// Exit condition covers both new relations.
	if !strings.Contains(text, "new_a = EMPTY AND new_b = EMPTY") {
		t.Fatalf("exit condition:\n%s", text)
	}
}

func TestRuleCount(t *testing.T) {
	rp := translate(t, tcSrc)
	// Main: 1 non-recursive rule + 1 recursive rule with one delta version.
	// Update: 1 restart variant per rule + 1 delta version in the loop.
	// Delete (DRed): overdelete init variant per rule (2) + in-stratum loop
	// variant (1), rederive init variant per rule (2) + loop variant (1).
	if rp.NumRules != 11 {
		t.Fatalf("NumRules = %d", rp.NumRules)
	}
}

func relNames(rp *ram.Program) []string {
	var out []string
	for _, r := range rp.Relations {
		out = append(out, r.Name)
	}
	return out
}
