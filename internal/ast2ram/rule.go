package ast2ram

import (
	"fmt"

	"sti/internal/ast"
	"sti/internal/indexselect"
	"sti/internal/ram"
	"sti/internal/sema"
	"sti/internal/tuple"
	"sti/internal/value"
)

// ruleTranslator builds the operation tree of one rule version.
type ruleTranslator struct {
	t         *translator
	info      *sema.ClauseInfo
	env       map[string]ram.Expr // variable bindings
	uses      map[string]int      // variable occurrence counts across the clause
	tid       int                 // next tuple slot
	forceScan bool                // disable the existence-check collapse (version.forceScan)
}

// translateRule emits one semi-naive version of a rule as a Query.
func (t *translator) translateRule(c *ast.Clause, v version) (ram.Statement, error) {
	info := t.sem.Clauses[c]
	tr := &ruleTranslator{t: t, info: info, env: map[string]ram.Expr{}, forceScan: v.forceScan}

	// Count variable uses to recognize single-use variables (treated like
	// wildcards: they never need a binding).
	uses := map[string]int{}
	c.Walk(func(e ast.Expr) {
		if vv, ok := e.(*ast.Var); ok {
			uses[vv.Name]++
		}
	})
	tr.uses = uses

	// Split the body into positive atoms (loop levels) and deferred
	// literals (negations and constraints, attached as early as possible).
	type bodyAtom struct {
		atom    *ast.Atom
		pos     int
		rel     *ram.Relation
		isDelta bool
	}
	var atoms []bodyAtom
	type deferred struct {
		lit ast.Literal
	}
	var defers []deferred
	for i, l := range c.Body {
		switch l := l.(type) {
		case *ast.Atom:
			rel := t.rels[l.Name]
			ba := bodyAtom{atom: l, pos: i, rel: rel}
			if v.useDelta && i == v.deltaPos {
				ba.rel = t.deltas[l.Name]
				ba.isDelta = true
			}
			if v.useRecent && i == v.recentPos {
				ba.rel = t.recents[l.Name]
			}
			if r := v.subst[i]; r != nil {
				ba.rel = r
			}
			atoms = append(atoms, ba)
		default:
			defers = append(defers, deferred{lit: l})
		}
	}
	// Rotate the substituted (del/recent frontier) atom to the outermost
	// level: it holds the batch-sized change set, so driving the join from
	// it keeps the variant's cost proportional to the change rather than to
	// the full relations it joins against. Body literal order is free here —
	// delete/update variants exist only for stratified positive programs,
	// and deferred literals attach by groundedness, not position. Main's
	// delta versions keep the written order (the paper's semi-naive shape).
	driver := -1
	for i, ba := range atoms {
		if v.subst[ba.pos] != nil || (v.useRecent && ba.pos == v.recentPos) {
			driver = i
			break
		}
	}
	if driver > 0 {
		rotated := make([]bodyAtom, 0, len(atoms))
		rotated = append(rotated, atoms[driver])
		rotated = append(rotated, atoms[:driver]...)
		rotated = append(rotated, atoms[driver+1:]...)
		atoms = rotated
	}
	// Del-driven variants scan the head's del set as the outermost level:
	// the head tuple binds all head variables (every head argument is a
	// plain variable by construction), so the body levels re-derive only
	// the overdeleted heads.
	if v.headScan != nil {
		atoms = append([]bodyAtom{{atom: c.Head, pos: -1, rel: v.headScan}}, atoms...)
	}

	// Build inside-out: we construct a list of "levels" and nest at the
	// end. Each level is a function wrapping an inner operation.
	type level func(inner ram.Operation) ram.Operation
	var levels []level
	emitted := make([]bool, len(defers))

	// attachReady emits deferred literals whose variables are all bound.
	var attachReady func() error
	attachReady = func() error {
		for progress := true; progress; {
			progress = false
			for i, d := range defers {
				if emitted[i] {
					continue
				}
				ok, lv, err := tr.tryDeferred(d.lit)
				if err != nil {
					return err
				}
				if ok {
					if lv != nil {
						levels = append(levels, lv)
					}
					emitted[i] = true
					progress = true
				}
			}
		}
		return nil
	}

	if err := attachReady(); err != nil {
		return nil, err
	}
	for _, ba := range atoms {
		tidBefore := tr.tid
		lv, err := tr.atomLevel(ba.atom, ba.rel, uses)
		if err != nil {
			return nil, err
		}
		if lv != nil {
			levels = append(levels, lv)
		}
		// Delete-variant membership filters over the atom's whole tuple:
		// ¬∈exclude, weakened to ¬(∈exclude ∧ ¬∈unless) when an unless
		// relation is given. forceScan guarantees the atom allocated tuple
		// slot tidBefore rather than collapsing to an existence check.
		if exRel := v.exclude[ba.pos]; exRel != nil {
			cond := excludeCond(tr, exRel, v.excludeUnless[ba.pos], tidBefore)
			levels = append(levels, func(inner ram.Operation) ram.Operation {
				return &ram.Filter{Cond: cond, Nested: inner}
			})
		}
		if err := attachReady(); err != nil {
			return nil, err
		}
	}
	for i := range defers {
		if !emitted[i] {
			return nil, &Error{Msg: fmt.Sprintf("internal: literal %s never became ground", ast.LiteralString(defers[i].lit)), Pos: c.Pos}
		}
	}

	// Head projection, optionally guarded by "not already known".
	head := make([]ram.Expr, len(c.Head.Args))
	for i, e := range c.Head.Args {
		re, err := tr.expr(e)
		if err != nil {
			return nil, err
		}
		head[i] = re
	}
	var root ram.Operation = &ram.Project{Rel: v.target, Exprs: head}
	if v.guard != nil {
		ex := &ram.ExistenceCheck{Rel: v.guard, Pattern: head}
		tr.t.registerSearch(v.guard, fullSignature(len(head)), func(id int) { ex.IndexID = id })
		root = &ram.Filter{Cond: &ram.Not{C: ex}, Nested: root}
	}
	if v.require != nil {
		ex := &ram.ExistenceCheck{Rel: v.require, Pattern: head}
		tr.t.registerSearch(v.require, fullSignature(len(head)), func(id int) { ex.IndexID = id })
		root = &ram.Filter{Cond: ex, Nested: root}
	}
	for i := len(levels) - 1; i >= 0; i-- {
		root = levels[i](root)
	}

	// Emptiness guards over all scanned relations (paper Fig 3 line 5).
	var guard ram.Condition
	for _, ba := range atoms {
		var cnd ram.Condition = &ram.Not{C: &ram.EmptinessCheck{Rel: ba.rel}}
		if guard == nil {
			guard = cnd
		} else {
			guard = &ram.And{L: guard, R: cnd}
		}
	}
	if guard != nil {
		root = &ram.Filter{Cond: guard, Nested: root}
	}

	label := c.String()
	if v.useDelta {
		label += fmt.Sprintf(" [delta@%d]", v.deltaPos)
	}
	if v.useRecent {
		label += fmt.Sprintf(" [recent@%d]", v.recentPos)
	}
	if v.headScan != nil {
		label += fmt.Sprintf(" [head<-%s]", v.headScan.Name)
	}
	for i := range c.Body {
		if r := v.subst[i]; r != nil {
			label += fmt.Sprintf(" [%s@%d]", r.Kind, i)
		}
	}
	t.ruleID++
	return &ram.Query{
		Root:      root,
		NumTuples: tr.tid,
		RuleID:    t.ruleID - 1,
		Label:     label,
		Parallel:  true,
	}, nil
}

// excludeCond builds a delete-variant membership filter over the whole tuple
// bound at slot tid: ¬(t ∈ exclude), or with an unless relation the DRed
// survival test ¬(t ∈ exclude ∧ t ∉ unless) — "not deleted, or rederived".
func excludeCond(tr *ruleTranslator, exclude, unless *ram.Relation, tid int) ram.Condition {
	member := func(rel *ram.Relation) *ram.ExistenceCheck {
		pat := make([]ram.Expr, rel.Arity)
		for k := range pat {
			pat[k] = &ram.TupleElement{TupleID: tid, Elem: k}
		}
		ex := &ram.ExistenceCheck{Rel: rel, Pattern: pat}
		tr.t.registerSearch(rel, fullSignature(rel.Arity), func(id int) { ex.IndexID = id })
		return ex
	}
	exDel := member(exclude)
	if unless == nil {
		return &ram.Not{C: exDel}
	}
	return &ram.Not{C: &ram.And{L: exDel, R: &ram.Not{C: member(unless)}}}
}

// atomLevel turns a positive body atom into a scan/index-scan/existence
// level. Returns nil when the atom degenerates to a pure filter.
func (tr *ruleTranslator) atomLevel(at *ast.Atom, rel *ram.Relation, uses map[string]int) (func(ram.Operation) ram.Operation, error) {
	pattern := make([]ram.Expr, rel.Arity)
	var sig indexselect.Signature
	type bindPos struct {
		name string
		pos  int
	}
	var binds []bindPos
	type eqPos struct {
		pos   int
		other ram.Expr // equality against an earlier position of this tuple
		typ   value.Type
	}
	var eqs []eqPos
	needsScan := false

	seen := map[string]int{} // var name -> first position in this atom
	for i, e := range at.Args {
		switch e := e.(type) {
		case *ast.Wildcard:
			// unbound, unused
		case *ast.Var:
			if b, ok := tr.env[e.Name]; ok {
				pattern[i] = b
				sig |= indexselect.Of(i)
				continue
			}
			if first, dup := seen[e.Name]; dup {
				// Same new variable twice in one atom: equality filter
				// between tuple positions.
				eqs = append(eqs, eqPos{pos: i, other: nil, typ: rel.Types[i]})
				eqs[len(eqs)-1].other = &ram.TupleElement{TupleID: -1, Elem: first} // patched below
				needsScan = true
				continue
			}
			seen[e.Name] = i
			if uses[e.Name] > 1 {
				binds = append(binds, bindPos{name: e.Name, pos: i})
				needsScan = true
			}
		default:
			re, err := tr.expr(e)
			if err != nil {
				return nil, err
			}
			pattern[i] = re
			sig |= indexselect.Of(i)
		}
	}

	tid := tr.tid
	bound := sig.Count()

	if !needsScan && len(binds) == 0 && !tr.forceScan {
		// No bindings escape: a (partial) existence check suffices.
		ex := &ram.ExistenceCheck{Rel: rel, Pattern: pattern}
		tr.registerAtomSearch(rel, sig, func(id int) { ex.IndexID = id })
		return func(inner ram.Operation) ram.Operation {
			return &ram.Filter{Cond: ex, Nested: inner}
		}, nil
	}

	// A real scan: allocate the tuple slot and bind variables.
	tr.tid++
	for _, b := range binds {
		tr.env[b.name] = &ram.TupleElement{TupleID: tid, Elem: b.pos}
	}
	// Build the equality filters for duplicate variables.
	var eqCond ram.Condition
	for _, eq := range eqs {
		other := eq.other.(*ram.TupleElement)
		other.TupleID = tid
		var c ram.Condition = &ram.Constraint{
			Op:   ram.CmpEQ,
			Type: eq.typ,
			L:    &ram.TupleElement{TupleID: tid, Elem: eq.pos},
			R:    other,
		}
		if eqCond == nil {
			eqCond = c
		} else {
			eqCond = &ram.And{L: eqCond, R: c}
		}
	}

	if bound == 0 {
		return func(inner ram.Operation) ram.Operation {
			if eqCond != nil {
				inner = &ram.Filter{Cond: eqCond, Nested: inner}
			}
			return &ram.Scan{Rel: rel, TupleID: tid, Nested: inner}
		}, nil
	}

	// eqrel only supports prefix searches on its natural order; fall back
	// to scan+filter for anything else.
	if rel.Rep == ram.RepEqRel && !isPrefixOfNatural(sig) {
		var cond ram.Condition
		for i, p := range pattern {
			if p == nil {
				continue
			}
			var c ram.Condition = &ram.Constraint{
				Op:   ram.CmpEQ,
				Type: rel.Types[i],
				L:    &ram.TupleElement{TupleID: tid, Elem: i},
				R:    p,
			}
			if cond == nil {
				cond = c
			} else {
				cond = &ram.And{L: cond, R: c}
			}
		}
		return func(inner ram.Operation) ram.Operation {
			if eqCond != nil {
				inner = &ram.Filter{Cond: eqCond, Nested: inner}
			}
			return &ram.Scan{Rel: rel, TupleID: tid, Nested: &ram.Filter{Cond: cond, Nested: inner}}
		}, nil
	}

	is := &ram.IndexScan{Rel: rel, Pattern: pattern, TupleID: tid}
	tr.registerAtomSearch(rel, sig, func(id int) { is.IndexID = id })
	return func(inner ram.Operation) ram.Operation {
		if eqCond != nil {
			inner = &ram.Filter{Cond: eqCond, Nested: inner}
		}
		is.Nested = inner
		return is
	}, nil
}

func isPrefixOfNatural(sig indexselect.Signature) bool {
	cols := sig.Columns()
	for i, c := range cols {
		if c != i {
			return false
		}
	}
	return true
}

// tryDeferred attempts to emit a negation or constraint whose variables are
// now bound. Returns (emitted, level, err); level may be nil when the
// literal only extends the environment.
func (tr *ruleTranslator) tryDeferred(l ast.Literal) (bool, func(ram.Operation) ram.Operation, error) {
	switch l := l.(type) {
	case *ast.Negation:
		pattern := make([]ram.Expr, len(l.Atom.Args))
		rel := tr.t.rels[l.Atom.Name]
		var sig indexselect.Signature
		for i, e := range l.Atom.Args {
			if _, isW := e.(*ast.Wildcard); isW {
				continue
			}
			if !tr.ground(e) {
				return false, nil, nil
			}
			re, err := tr.expr(e)
			if err != nil {
				return false, nil, err
			}
			pattern[i] = re
			sig |= indexselect.Of(i)
		}
		if rel.Rep == ram.RepEqRel && !isPrefixOfNatural(sig) && sig.Count() != rel.Arity {
			return false, nil, &Error{Msg: "negation over eqrel requires a natural prefix", Pos: l.Atom.Pos}
		}
		ex := &ram.ExistenceCheck{Rel: rel, Pattern: pattern}
		tr.registerAtomSearch(rel, sig, func(id int) { ex.IndexID = id })
		return true, func(inner ram.Operation) ram.Operation {
			return &ram.Filter{Cond: &ram.Not{C: ex}, Nested: inner}
		}, nil

	case *ast.Constraint:
		// Aggregates may appear on either side of a binding equality.
		if agg, ok := aggregateSide(l); ok {
			return tr.tryAggregate(l, agg)
		}
		// Binding equality: v = ground-expr (or ground-expr = v).
		if l.Op == ast.CmpEQ {
			if v, ok := l.L.(*ast.Var); ok {
				if _, bound := tr.env[v.Name]; !bound && tr.ground(l.R) {
					re, err := tr.expr(l.R)
					if err != nil {
						return false, nil, err
					}
					tr.env[v.Name] = re
					return true, nil, nil
				}
			}
			if v, ok := l.R.(*ast.Var); ok {
				if _, bound := tr.env[v.Name]; !bound && tr.ground(l.L) {
					le, err := tr.expr(l.L)
					if err != nil {
						return false, nil, err
					}
					tr.env[v.Name] = le
					return true, nil, nil
				}
			}
		}
		if !tr.ground(l.L) || !tr.ground(l.R) {
			return false, nil, nil
		}
		le, err := tr.expr(l.L)
		if err != nil {
			return false, nil, err
		}
		re, err := tr.expr(l.R)
		if err != nil {
			return false, nil, err
		}
		cond := &ram.Constraint{Op: cmpOf(l.Op), Type: tr.typeOf(l.L, l.R), L: le, R: re}
		return true, func(inner ram.Operation) ram.Operation {
			return &ram.Filter{Cond: cond, Nested: inner}
		}, nil
	}
	return false, nil, &Error{Msg: fmt.Sprintf("unsupported deferred literal %T", l)}
}

// aggregateSide detects "x = AGG" / "AGG = x" constraints.
func aggregateSide(c *ast.Constraint) (*ast.Aggregate, bool) {
	if c.Op != ast.CmpEQ {
		return nil, false
	}
	if a, ok := c.L.(*ast.Aggregate); ok {
		return a, true
	}
	if a, ok := c.R.(*ast.Aggregate); ok {
		return a, true
	}
	return nil, false
}

// tryAggregate emits an Aggregate level for "v = agg : { body }". The
// aggregate body must be a single positive atom plus constraints over its
// variables (matching what Soufflé's RAM Aggregate expresses; richer bodies
// would need materialized auxiliary relations).
func (tr *ruleTranslator) tryAggregate(c *ast.Constraint, agg *ast.Aggregate) (bool, func(ram.Operation) ram.Operation, error) {
	// Identify the result expression (the non-aggregate side).
	resultSide := c.L
	if resultSide == agg {
		resultSide = c.R
	}

	var atom *ast.Atom
	var conss []*ast.Constraint
	for _, l := range agg.Body {
		switch l := l.(type) {
		case *ast.Atom:
			if atom != nil {
				return false, nil, &Error{Msg: "aggregate bodies are limited to one positive atom", Pos: agg.Pos}
			}
			atom = l
		case *ast.Constraint:
			conss = append(conss, l)
		default:
			return false, nil, &Error{Msg: "aggregate bodies are limited to atoms and constraints", Pos: agg.Pos}
		}
	}
	if atom == nil {
		return false, nil, &Error{Msg: "aggregate body needs a positive atom", Pos: agg.Pos}
	}

	rel := tr.t.rels[atom.Name]
	// A variable is *local* to the aggregate iff all of its occurrences in
	// the clause are inside this aggregate; anything else is an outer
	// variable and must already be bound (otherwise we defer and retry
	// after a later scan binds it).
	inAgg := map[string]int{}
	countVars := func(e ast.Expr) {
		ast.WalkExpr(e, func(sub ast.Expr) {
			if v, ok := sub.(*ast.Var); ok {
				inAgg[v.Name]++
			}
		})
	}
	ast.WalkLiterals(agg.Body, countVars)
	if agg.Target != nil {
		countVars(agg.Target)
	}
	local := map[string]bool{}
	for name, cnt := range inAgg {
		if tr.uses[name] <= cnt {
			local[name] = true
		}
	}
	// Outer variables must be bound before the aggregate can be placed.
	for name := range inAgg {
		if local[name] {
			continue
		}
		if _, bound := tr.env[name]; !bound {
			return false, nil, nil
		}
	}
	groundInAgg := func(e ast.Expr) bool {
		ok := true
		ast.WalkExpr(e, func(sub ast.Expr) {
			if v, isV := sub.(*ast.Var); isV {
				if _, bound := tr.env[v.Name]; !bound && !local[v.Name] {
					ok = false
				}
			}
		})
		return ok
	}
	for _, e := range atom.Args {
		if _, isV := e.(*ast.Var); isV {
			continue
		}
		if _, isW := e.(*ast.Wildcard); isW {
			continue
		}
		if !groundInAgg(e) {
			return false, nil, nil
		}
	}
	for _, cc := range conss {
		if !groundInAgg(cc.L) || !groundInAgg(cc.R) {
			return false, nil, nil
		}
	}
	if agg.Target != nil && !groundInAgg(agg.Target) {
		return false, nil, nil
	}

	// Build the pattern from bound positions; bind local variables to the
	// aggregate's tuple slot.
	tid := tr.tid
	tr.tid++
	pattern := make([]ram.Expr, rel.Arity)
	var sig indexselect.Signature
	savedEnv := map[string]ram.Expr{}
	var selfEq ram.Condition
	for i, e := range atom.Args {
		switch e := e.(type) {
		case *ast.Wildcard:
		case *ast.Var:
			if b, bound := tr.env[e.Name]; bound {
				// A repeated local variable refers back to this aggregate's
				// own tuple; that is a per-tuple equality, not a pattern.
				if te, isTE := b.(*ram.TupleElement); isTE && te.TupleID == tid {
					eq := &ram.Constraint{
						Op: ram.CmpEQ, Type: rel.Types[i],
						L: &ram.TupleElement{TupleID: tid, Elem: i}, R: b,
					}
					if selfEq == nil {
						selfEq = eq
					} else {
						selfEq = &ram.And{L: selfEq, R: eq}
					}
					continue
				}
				pattern[i] = b
				sig |= indexselect.Of(i)
			} else if _, already := savedEnv[e.Name]; !already {
				savedEnv[e.Name] = nil
				tr.env[e.Name] = &ram.TupleElement{TupleID: tid, Elem: i}
			}
		default:
			re, err := tr.expr(e)
			if err != nil {
				return false, nil, err
			}
			pattern[i] = re
			sig |= indexselect.Of(i)
		}
	}
	if rel.Rep == ram.RepEqRel && !isPrefixOfNatural(sig) {
		return false, nil, &Error{Msg: "aggregate over eqrel requires a natural prefix", Pos: agg.Pos}
	}

	// Inner condition and target, evaluated with local bindings in scope.
	cond := selfEq
	for _, cc := range conss {
		le, err := tr.expr(cc.L)
		if err != nil {
			return false, nil, err
		}
		re, err := tr.expr(cc.R)
		if err != nil {
			return false, nil, err
		}
		var one ram.Condition = &ram.Constraint{Op: cmpOf(cc.Op), Type: tr.typeOf(cc.L, cc.R), L: le, R: re}
		if cond == nil {
			cond = one
		} else {
			cond = &ram.And{L: cond, R: one}
		}
	}
	var target ram.Expr
	aggType := value.Number
	if agg.Target != nil {
		var err error
		target, err = tr.expr(agg.Target)
		if err != nil {
			return false, nil, err
		}
		if ty, ok := tr.info.VarTypes[varName(agg.Target)]; ok {
			aggType = ty
		}
	}
	// Remove the local bindings: after the aggregate only the result slot
	// remains visible.
	for name := range savedEnv {
		delete(tr.env, name)
	}

	node := &ram.Aggregate{
		Kind:    aggKindOf(agg.Kind),
		Rel:     rel,
		IndexID: -1,
		Pattern: pattern,
		Cond:    cond,
		Target:  target,
		Type:    aggType,
		TupleID: tid,
	}
	if sig != 0 {
		tr.registerAtomSearch(rel, sig, func(id int) { node.IndexID = id })
	}

	// Bind or compare the result.
	result := &ram.TupleElement{TupleID: tid, Elem: 0}
	var post func(ram.Operation) ram.Operation
	if v, ok := resultSide.(*ast.Var); ok {
		if _, bound := tr.env[v.Name]; !bound {
			tr.env[v.Name] = result
			post = func(inner ram.Operation) ram.Operation { return inner }
		}
	}
	if post == nil {
		if !tr.ground(resultSide) {
			return false, nil, nil
		}
		re, err := tr.expr(resultSide)
		if err != nil {
			return false, nil, err
		}
		eq := &ram.Constraint{Op: ram.CmpEQ, Type: aggType, L: result, R: re}
		post = func(inner ram.Operation) ram.Operation {
			return &ram.Filter{Cond: eq, Nested: inner}
		}
	}
	return true, func(inner ram.Operation) ram.Operation {
		node.Nested = post(inner)
		return node
	}, nil
}

func varName(e ast.Expr) string {
	if v, ok := e.(*ast.Var); ok {
		return v.Name
	}
	return ""
}

func aggKindOf(k ast.AggKind) ram.AggKind {
	switch k {
	case ast.AggSum:
		return ram.AggSum
	case ast.AggMin:
		return ram.AggMin
	case ast.AggMax:
		return ram.AggMax
	default:
		return ram.AggCount
	}
}

func cmpOf(op ast.CmpOp) ram.CmpOp {
	return [...]ram.CmpOp{ram.CmpEQ, ram.CmpNE, ram.CmpLT, ram.CmpLE, ram.CmpGT, ram.CmpGE}[op]
}

// ground reports whether all variables in e are currently bound.
func (tr *ruleTranslator) ground(e ast.Expr) bool {
	ok := true
	ast.WalkExpr(e, func(sub ast.Expr) {
		if v, isV := sub.(*ast.Var); isV {
			if _, bound := tr.env[v.Name]; !bound {
				ok = false
			}
		}
	})
	return ok
}

// typeOf infers the shared type of a constraint's operands.
func (tr *ruleTranslator) typeOf(exprs ...ast.Expr) value.Type {
	for _, e := range exprs {
		if t, ok := tr.staticType(e); ok {
			return t
		}
	}
	return value.Number
}

func (tr *ruleTranslator) staticType(e ast.Expr) (value.Type, bool) {
	switch e := e.(type) {
	case *ast.NumLit:
		return value.Number, true
	case *ast.UnsignedLit:
		return value.Unsigned, true
	case *ast.FloatLit:
		return value.Float, true
	case *ast.StrLit:
		return value.Symbol, true
	case *ast.Var:
		t, ok := tr.info.VarTypes[e.Name]
		return t, ok
	case *ast.BinExpr:
		if t, ok := tr.staticType(e.L); ok {
			return t, true
		}
		return tr.staticType(e.R)
	case *ast.UnExpr:
		return tr.staticType(e.E)
	case *ast.Call:
		switch e.Name {
		case "cat", "substr", "to_string":
			return value.Symbol, true
		case "strlen", "ord", "to_number":
			return value.Number, true
		case "min", "max":
			if len(e.Args) > 0 {
				return tr.staticType(e.Args[0])
			}
		}
		return 0, false
	case *ast.Aggregate:
		if e.Kind == ast.AggCount {
			return value.Number, true
		}
		if e.Target != nil {
			return tr.staticType(e.Target)
		}
		return 0, false
	default:
		return 0, false
	}
}

// expr lowers an AST expression under the current environment.
func (tr *ruleTranslator) expr(e ast.Expr) (ram.Expr, error) {
	switch e := e.(type) {
	case *ast.NumLit:
		return &ram.Constant{Val: value.FromInt(e.Val)}, nil
	case *ast.UnsignedLit:
		return &ram.Constant{Val: e.Val}, nil
	case *ast.FloatLit:
		return &ram.Constant{Val: value.FromFloat(e.Val)}, nil
	case *ast.StrLit:
		return &ram.Constant{Val: tr.t.st.Intern(e.Val)}, nil
	case *ast.Var:
		b, ok := tr.env[e.Name]
		if !ok {
			return nil, &Error{Msg: fmt.Sprintf("internal: variable %s unbound during lowering", e.Name), Pos: e.Pos}
		}
		return b, nil
	case *ast.Wildcard:
		return nil, &Error{Msg: "wildcard in a value position", Pos: e.Pos}
	case *ast.BinExpr:
		l, err := tr.expr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(e.R)
		if err != nil {
			return nil, err
		}
		ty := tr.typeOf(e.L, e.R)
		return &ram.Intrinsic{Op: binOpOf(e.Op), Type: ty, Args: []ram.Expr{l, r}}, nil
	case *ast.UnExpr:
		a, err := tr.expr(e.E)
		if err != nil {
			return nil, err
		}
		ty := tr.typeOf(e.E)
		var op ram.IntrinsicOp
		switch e.Op {
		case ast.OpNeg:
			op = ram.OpNeg
		case ast.OpBNot:
			op = ram.OpBNot
		default:
			op = ram.OpLNot
		}
		return &ram.Intrinsic{Op: op, Type: ty, Args: []ram.Expr{a}}, nil
	case *ast.Call:
		args := make([]ram.Expr, len(e.Args))
		for i, a := range e.Args {
			ra, err := tr.expr(a)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		op, ty, err := callOpOf(e, tr)
		if err != nil {
			return nil, err
		}
		return &ram.Intrinsic{Op: op, Type: ty, Args: args}, nil
	case *ast.Aggregate:
		return nil, &Error{Msg: "aggregates are only supported in equalities of the form v = agg : { ... }", Pos: e.Pos}
	default:
		return nil, &Error{Msg: fmt.Sprintf("unsupported expression %T", e)}
	}
}

func binOpOf(op ast.BinOp) ram.IntrinsicOp {
	return [...]ram.IntrinsicOp{
		ram.OpAdd, ram.OpSub, ram.OpMul, ram.OpDiv, ram.OpMod, ram.OpPow,
		ram.OpBAnd, ram.OpBOr, ram.OpBXor, ram.OpBShl, ram.OpBShr,
		ram.OpLAnd, ram.OpLOr,
	}[op]
}

func callOpOf(e *ast.Call, tr *ruleTranslator) (ram.IntrinsicOp, value.Type, error) {
	switch e.Name {
	case "cat":
		return ram.OpCat, value.Symbol, nil
	case "strlen":
		return ram.OpStrlen, value.Number, nil
	case "substr":
		return ram.OpSubstr, value.Symbol, nil
	case "ord":
		return ram.OpOrd, value.Number, nil
	case "to_number":
		return ram.OpToNumber, value.Number, nil
	case "to_string":
		return ram.OpToString, value.Symbol, nil
	case "min":
		return ram.OpMin, tr.typeOf(e.Args...), nil
	case "max":
		return ram.OpMax, tr.typeOf(e.Args...), nil
	default:
		return 0, 0, &Error{Msg: fmt.Sprintf("unknown functor %s", e.Name), Pos: e.Pos}
	}
}

// --- search registration and index selection ---

func fullSignature(arity int) indexselect.Signature {
	var s indexselect.Signature
	for i := 0; i < arity; i++ {
		s |= indexselect.Of(i)
	}
	return s
}

// registerSearch records that rel is searched with signature sig and that
// the node patch must receive the selected index id.
func (t *translator) registerSearch(rel *ram.Relation, sig indexselect.Signature, set func(int)) {
	t.pending[rel] = append(t.pending[rel], patch{sig: sig, set: set})
}

func (tr *ruleTranslator) registerAtomSearch(rel *ram.Relation, sig indexselect.Signature, set func(int)) {
	tr.t.registerSearch(rel, sig, set)
}

// selectIndexes runs index selection per relation and patches all searches.
// new_R mirrors delta_R's signatures (likewise ndel_R/ddel_R and
// nred_R/dred_R) so that SWAP stays legal.
func (t *translator) selectIndexes() {
	// Swapped pairs must share one index set: merge their pending searches.
	mergePair := func(d, nw *ram.Relation) {
		if d == nil || nw == nil {
			return
		}
		t.pending[d] = append(t.pending[d], t.pending[nw]...)
		t.pending[nw] = nil
	}
	for name, d := range t.deltas {
		mergePair(d, t.news[name])
	}
	for name, d := range t.ddels {
		mergePair(d, t.ndels[name])
	}
	for name, d := range t.dreds {
		mergePair(d, t.nreds[name])
	}
	for _, rel := range t.out.Relations {
		searches := t.pending[rel]
		if rel.Rep == ram.RepEqRel {
			rel.Orders = []tuple.Order{tuple.Identity(rel.Arity)}
			for _, p := range searches {
				p.set(0)
			}
			continue
		}
		sigs := make([]indexselect.Signature, 0, len(searches))
		for _, p := range searches {
			sigs = append(sigs, p.sig)
		}
		res := indexselect.Select(rel.Arity, sigs)
		rel.Orders = res.Orders
		for _, p := range searches {
			pl := res.Placements[p.sig]
			p.set(pl.Index)
		}
	}
	// Give each swapped counterpart exactly its delta sibling's orders.
	copyOrders := func(d, nw *ram.Relation) {
		if d != nil && nw != nil {
			nw.Orders = append([]tuple.Order{}, d.Orders...)
		}
	}
	for name, d := range t.deltas {
		copyOrders(d, t.news[name])
	}
	for name, d := range t.ddels {
		copyOrders(d, t.ndels[name])
	}
	for name, d := range t.dreds {
		copyOrders(d, t.nreds[name])
	}
}
