package ast2ram

import (
	"strings"
	"testing"

	"sti/internal/parser"
	"sti/internal/sema"
	"sti/internal/symtab"
)

func translateErr(t *testing.T, src string) error {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	_, err = Translate(an, symtab.New())
	if err == nil {
		t.Fatalf("translation accepted:\n%s", src)
	}
	return err
}

func TestAggregateTwoAtomsRejected(t *testing.T) {
	err := translateErr(t, `
.decl a(x:number)
.decl b(x:number)
.decl out(n:number)
out(n) :- a(_), n = count : { a(x), b(x) }.
`)
	if !strings.Contains(err.Error(), "one positive atom") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregateNegationRejected(t *testing.T) {
	err := translateErr(t, `
.decl a(x:number)
.decl b(x:number)
.decl out(n:number)
out(n) :- a(_), n = count : { !b(1) }.
`)
	if !strings.Contains(err.Error(), "atoms and constraints") &&
		!strings.Contains(err.Error(), "positive atom") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregateDeepPositionRejected(t *testing.T) {
	err := translateErr(t, `
.decl a(x:number)
.decl out(n:number)
out(n) :- a(_), n = 1 + count : { a(_) }.
`)
	if !strings.Contains(err.Error(), "aggregate") {
		t.Fatalf("err = %v", err)
	}
}

func TestFactSymbolsInterned(t *testing.T) {
	p, err := parser.Parse(`
.decl r(s:symbol)
r("alpha").
r("beta").
`)
	if err != nil {
		t.Fatal(err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	st := symtab.New()
	if _, err := Translate(an, st); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup("alpha"); !ok {
		t.Fatal("fact symbol not interned during translation")
	}
	if st.Len() != 2 {
		t.Fatalf("symbol table has %d entries", st.Len())
	}
}

func TestBaseIDTracking(t *testing.T) {
	p, err := parser.Parse(`
.decl e(x:number, y:number)
.decl tc(x:number, y:number)
tc(x, y) :- e(x, y).
tc(x, z) :- tc(x, y), e(y, z).
`)
	if err != nil {
		t.Fatal(err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	rp, err := Translate(an, symtab.New())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, r := range rp.Relations {
		byName[r.Name] = r.BaseID
	}
	if byName["delta_tc"] != byName["tc"] || byName["new_tc"] != byName["tc"] {
		t.Fatalf("aux BaseIDs wrong: %v", byName)
	}
	for _, r := range rp.Relations {
		if !r.Aux && r.BaseID != r.ID {
			t.Fatalf("source relation %s has BaseID %d != ID %d", r.Name, r.BaseID, r.ID)
		}
	}
}
