package ast2ram

import (
	"fmt"
	"strings"

	"sti/internal/ast"
	"sti/internal/ram"
	"sti/internal/sema"
)

// Delete-program emission: incremental retraction without the full-recompute
// fallback. The caller (db.Apply via the resident engine) stages retracted
// EDB facts into the del_E trackers and runs Program.Delete.
//
// The program has one section per stratum, in dependency order, and every
// section computes its stratum's *exact* set of dying tuples into del_R
// while leaving the physical relations untouched — all reads anywhere in the
// delete program therefore observe the old, pre-delete state. Only after the
// last stratum does a global subtract pass remove del_R from each relation.
//
//   - Non-recursive strata use *counting*: each relation carries per-tuple
//     support counts (the number of derivations producing it, maintained by
//     Main and the counting update path). Lost derivations are enumerated
//     into the cbuf_R multiplicity buffer by telescoped rule variants — one
//     per positive body atom i, reading del_B at i and excluding del_B at
//     every earlier atom, so each lost derivation is counted exactly once
//     (partition by first deleted premise). COUNT-DELETE then decrements,
//     and tuples whose support reaches zero join del_R.
//   - Recursive strata use DRed (overdelete + rederive): first a fixpoint
//     overapproximates the dying set into del_R (any derivation touching a
//     deleted premise), then a second fixpoint rederives survivors — tuples
//     in del_R that still have a derivation from surviving premises — into
//     red_R, and del_R := del_R - red_R makes the set exact.
//
// Both shapes rely on translateRule's delete-variant extensions: subst
// redirects body atoms to del/ddel/dred trackers, exclude/excludeUnless
// express "premise survives", require/headScan restrict rederivation to
// overdeleted heads, and forceScan keeps derivations enumerable per-tuple.

func (t *translator) translateStratumDelete(s *sema.Stratum) (ram.Statement, error) {
	type rule struct {
		rel    *sema.Rel
		clause *ast.Clause
	}
	var rules []rule
	for _, r := range s.Rels {
		for _, c := range r.Clauses {
			if !c.IsFact() {
				rules = append(rules, rule{r, c})
			}
		}
	}
	if len(rules) == 0 {
		return nil, nil // pure EDB stratum: retractions arrive via del_R
	}

	inStratum := map[string]bool{}
	for _, r := range s.Rels {
		inStratum[r.Name()] = true
	}
	// positivePositions lists the body indices holding positive atoms.
	positivePositions := func(c *ast.Clause) []int {
		var idxs []int
		for i, l := range c.Body {
			if _, ok := l.(*ast.Atom); ok {
				idxs = append(idxs, i)
			}
		}
		return idxs
	}
	atomName := func(c *ast.Clause, i int) string {
		return c.Body[i].(*ast.Atom).Name
	}

	var stmts []ram.Statement
	emit := func(c *ast.Clause, v version) error {
		q, err := t.translateRule(c, v)
		if err != nil {
			return err
		}
		stmts = append(stmts, q)
		return nil
	}

	if !s.Recursive {
		// Counting stratum: telescoped lost-derivation variants into cbuf,
		// then one COUNT-DELETE per relation.
		touched := map[string]bool{}
		for _, ru := range rules {
			cbuf := t.cbufs[ru.rel.Name()]
			pos := positivePositions(ru.clause)
			for k, pk := range pos {
				v := version{
					target:    cbuf,
					forceScan: true,
					subst:     map[int]*ram.Relation{pk: t.dels[atomName(ru.clause, pk)]},
					exclude:   map[int]*ram.Relation{},
				}
				for _, pj := range pos[:k] {
					v.exclude[pj] = t.dels[atomName(ru.clause, pj)]
				}
				if err := emit(ru.clause, v); err != nil {
					return nil, err
				}
				touched[ru.rel.Name()] = true
			}
		}
		for _, r := range s.Rels {
			if !touched[r.Name()] {
				continue
			}
			stmts = append(stmts, &ram.CountDelete{
				Dst:  t.rels[r.Name()],
				Src:  t.cbufs[r.Name()],
				Gone: t.dels[r.Name()],
			})
			stmts = append(stmts, &ram.Clear{Rel: t.cbufs[r.Name()]})
		}
		if len(stmts) == 0 {
			return nil, nil
		}
		return &ram.Sequence{Stmts: stmts}, nil
	}

	// Recursive stratum, phase 1: overdeletion fixpoint. A head tuple is
	// threatened as soon as *some* derivation of it touches a deleted
	// premise, so the variants carry no survival filters — overapproximating
	// is what makes the fixpoint monotone (set semantics, no forceScan).
	// Like every parallel query, variants write a relation they never read:
	// init and loop both target ndel_H (guarded by the del_H accumulator),
	// and the fold/rotate steps move ndel into del and the ddel frontier.
	for _, ru := range rules {
		delH := t.dels[ru.rel.Name()]
		ndelH := t.ndels[ru.rel.Name()]
		for _, i := range positivePositions(ru.clause) {
			name := atomName(ru.clause, i)
			if inStratum[name] {
				continue // in-stratum premises are handled by the loop below
			}
			v := version{
				target: ndelH,
				guard:  delH,
				subst:  map[int]*ram.Relation{i: t.dels[name]},
			}
			if err := emit(ru.clause, v); err != nil {
				return nil, err
			}
		}
	}
	for _, r := range s.Rels {
		stmts = append(stmts, &ram.Merge{Dst: t.dels[r.Name()], Src: t.ndels[r.Name()]})
		stmts = append(stmts, &ram.Swap{A: t.ddels[r.Name()], B: t.ndels[r.Name()]})
		stmts = append(stmts, &ram.Clear{Rel: t.ndels[r.Name()]})
	}
	var overBody []ram.Statement
	for _, ru := range rules {
		ndelH := t.ndels[ru.rel.Name()]
		delH := t.dels[ru.rel.Name()]
		for _, i := range positivePositions(ru.clause) {
			name := atomName(ru.clause, i)
			if !inStratum[name] {
				continue
			}
			v := version{
				target: ndelH,
				guard:  delH,
				subst:  map[int]*ram.Relation{i: t.ddels[name]},
			}
			q, err := t.translateRule(ru.clause, v)
			if err != nil {
				return nil, err
			}
			overBody = append(overBody, q)
		}
	}
	var names []string
	for _, r := range s.Rels {
		names = append(names, r.Name())
	}
	stmts = append(stmts, t.deleteFixpoint(s, overBody, t.dels, t.ddels, t.ndels,
		fmt.Sprintf("overdelete stratum %d (%s)", s.Index, strings.Join(names, ", "))))

	// Phase 2: rederivation fixpoint. A tuple of del_H survives if some
	// derivation of it uses only surviving premises: out-of-stratum ∉del
	// (exact by stratum order), in-stratum ∉del or already rederived. The
	// head is restricted to the overdeleted set — by scanning del_H as the
	// outermost level when the head is all variables, and by a ∈del_H
	// filter otherwise. forceScan keeps the atoms' tuple slots alive for
	// the membership filters.
	rederiveHead := func(c *ast.Clause, v *version, delH *ram.Relation) {
		allVars := true
		for _, e := range c.Head.Args {
			if _, ok := e.(*ast.Var); !ok {
				allVars = false
				break
			}
		}
		if allVars && len(c.Head.Args) > 0 {
			v.headScan = delH
		} else {
			v.require = delH
		}
	}
	for _, ru := range rules {
		redH := t.reds[ru.rel.Name()]
		nredH := t.nreds[ru.rel.Name()]
		delH := t.dels[ru.rel.Name()]
		v := version{
			target:    nredH,
			guard:     redH,
			forceScan: true,
			exclude:   map[int]*ram.Relation{},
		}
		for _, i := range positivePositions(ru.clause) {
			v.exclude[i] = t.dels[atomName(ru.clause, i)]
		}
		rederiveHead(ru.clause, &v, delH)
		if err := emit(ru.clause, v); err != nil {
			return nil, err
		}
	}
	// Fact clauses of the stratum also rederive: an overdeleted tuple that
	// is asserted as a fact always survives.
	for _, r := range s.Rels {
		for _, c := range r.Clauses {
			if !c.IsFact() {
				continue
			}
			v := version{
				target:  t.nreds[r.Name()],
				guard:   t.reds[r.Name()],
				require: t.dels[r.Name()],
			}
			if err := emit(c, v); err != nil {
				return nil, err
			}
		}
	}
	for _, r := range s.Rels {
		stmts = append(stmts, &ram.Merge{Dst: t.reds[r.Name()], Src: t.nreds[r.Name()]})
		stmts = append(stmts, &ram.Swap{A: t.dreds[r.Name()], B: t.nreds[r.Name()]})
		stmts = append(stmts, &ram.Clear{Rel: t.nreds[r.Name()]})
	}
	var redBody []ram.Statement
	for _, ru := range rules {
		redH := t.reds[ru.rel.Name()]
		nredH := t.nreds[ru.rel.Name()]
		delH := t.dels[ru.rel.Name()]
		pos := positivePositions(ru.clause)
		for _, i := range pos {
			name := atomName(ru.clause, i)
			if !inStratum[name] {
				continue
			}
			v := version{
				target:        nredH,
				guard:         redH,
				forceScan:     true,
				subst:         map[int]*ram.Relation{i: t.dreds[name]},
				exclude:       map[int]*ram.Relation{},
				excludeUnless: map[int]*ram.Relation{},
			}
			for _, j := range pos {
				if j == i {
					continue // the frontier premise is rederived by construction
				}
				jn := atomName(ru.clause, j)
				v.exclude[j] = t.dels[jn]
				if inStratum[jn] {
					v.excludeUnless[j] = t.reds[jn]
				}
			}
			rederiveHead(ru.clause, &v, delH)
			q, err := t.translateRule(ru.clause, v)
			if err != nil {
				return nil, err
			}
			redBody = append(redBody, q)
		}
	}
	stmts = append(stmts, t.deleteFixpoint(s, redBody, t.reds, t.dreds, t.nreds,
		fmt.Sprintf("rederive stratum %d (%s)", s.Index, strings.Join(names, ", "))))

	// The overdeleted-but-rederived tuples survive: del_R becomes exact.
	for _, r := range s.Rels {
		stmts = append(stmts, &ram.Subtract{Dst: t.dels[r.Name()], Src: t.reds[r.Name()]})
	}
	for _, r := range s.Rels {
		for _, m := range []map[string]*ram.Relation{t.ddels, t.ndels, t.reds, t.dreds, t.nreds} {
			stmts = append(stmts, &ram.Clear{Rel: m[r.Name()]})
		}
	}
	return &ram.Sequence{Stmts: stmts}, nil
}

// deleteFixpoint assembles one semi-naive fixpoint over an accumulator/
// delta/new relation triple per stratum relation: run the variants, exit
// when every new set is empty, otherwise fold new into the accumulator and
// rotate new into delta.
func (t *translator) deleteFixpoint(s *sema.Stratum, body []ram.Statement,
	acc, delta, niu map[string]*ram.Relation, label string) ram.Statement {
	var exitCond ram.Condition
	var post []ram.Statement
	for _, r := range s.Rels {
		nw := niu[r.Name()]
		var c ram.Condition = &ram.EmptinessCheck{Rel: nw}
		if exitCond == nil {
			exitCond = c
		} else {
			exitCond = &ram.And{L: exitCond, R: c}
		}
		post = append(post, &ram.Merge{Dst: acc[r.Name()], Src: nw})
		post = append(post, &ram.Swap{A: delta[r.Name()], B: nw})
		post = append(post, &ram.Clear{Rel: nw})
	}
	body = append(body, &ram.Exit{Cond: exitCond})
	body = append(body, post...)
	return &ram.Loop{Body: &ram.Sequence{Stmts: body}, Label: label}
}
