// Package ast2ram translates an analyzed Datalog program into a RAM program
// (paper §2, Fig 1): facts become insertions, rules become nested-loop query
// trees, and recursive strata become semi-naive fixpoint loops over
// delta/new relations with the structure of the paper's Fig 3.
//
// The translation also runs automatic index selection (internal/indexselect)
// so that every primitive search in the emitted RAM program is a prefix
// search on some index of its relation.
package ast2ram

import (
	"fmt"
	"strings"

	"sti/internal/ast"
	"sti/internal/indexselect"
	"sti/internal/ram"
	"sti/internal/ram/analysis"
	"sti/internal/ram/verify"
	"sti/internal/sema"
	"sti/internal/symtab"
)

// Error is a translation error (analysis accepted the program but the
// backend cannot express it).
type Error struct {
	Msg string
	Pos ast.Pos
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// Translate converts an analyzed program into RAM. String literals are
// interned into st.
func Translate(p *sema.Program, st *symtab.Table) (*ram.Program, error) {
	t := &translator{
		sem:     p,
		st:      st,
		rels:    map[string]*ram.Relation{},
		deltas:  map[string]*ram.Relation{},
		news:    map[string]*ram.Relation{},
		recents: map[string]*ram.Relation{},
		dels:    map[string]*ram.Relation{},
		cbufs:   map[string]*ram.Relation{},
		ddels:   map[string]*ram.Relation{},
		ndels:   map[string]*ram.Relation{},
		reds:    map[string]*ram.Relation{},
		dreds:   map[string]*ram.Relation{},
		nreds:   map[string]*ram.Relation{},
		pending: map[*ram.Relation][]patch{},
	}
	if err := t.run(); err != nil {
		return nil, err
	}
	// In ramverify debug mode the translator checks its own output, so a
	// translation bug surfaces here instead of as a wrong fixpoint.
	if verify.Debugging() {
		if err := verify.Check(t.out, "ast2ram"); err != nil {
			return nil, err
		}
	}
	return t.out, nil
}

// patch records a RAM node whose IndexID must be filled in after index
// selection.
type patch struct {
	sig indexselect.Signature
	set func(indexID int)
}

type translator struct {
	sem *sema.Program
	st  *symtab.Table
	out *ram.Program

	rels    map[string]*ram.Relation // source relations by name
	deltas  map[string]*ram.Relation // delta_R by source name
	news    map[string]*ram.Relation // new_R by source name
	recents map[string]*ram.Relation // recent_R by source name (update program)

	// Delete-program scratch space, by source name (delete.go). dels exists
	// for every source relation; cbufs for counting (non-recursive IDB)
	// relations; the ddel/ndel/red/dred/nred families for relations of
	// recursive strata.
	dels  map[string]*ram.Relation
	cbufs map[string]*ram.Relation
	ddels map[string]*ram.Relation
	ndels map[string]*ram.Relation
	reds  map[string]*ram.Relation
	dreds map[string]*ram.Relation
	nreds map[string]*ram.Relation

	pending   map[*ram.Relation][]patch
	ruleID    int
	monotone  bool // insert-monotone: no negation, no aggregates
	deletable bool // monotone, no eqrel, no input-and-derived relations
}

func (t *translator) run() error {
	t.out = &ram.Program{}

	// Declare source relations.
	for _, r := range t.sem.RelList {
		rel := &ram.Relation{
			ID:        len(t.out.Relations),
			Name:      r.Name(),
			Arity:     r.Arity(),
			Types:     r.Decl.AttrTypes(),
			Rep:       repOf(r.Decl.Rep),
			Input:     r.Input,
			Output:    r.Output,
			PrintSize: r.PrintSize,
			Stratum:   r.Stratum,
		}
		rel.BaseID = rel.ID
		t.out.Relations = append(t.out.Relations, rel)
		t.rels[rel.Name] = rel
	}
	// Declare delta/new for relations in recursive strata (except eqrel,
	// which is evaluated naively within its stratum; see below).
	for _, s := range t.sem.Strata {
		if !s.Recursive {
			continue
		}
		for _, r := range s.Rels {
			base := t.rels[r.Name()]
			if base.Rep == ram.RepEqRel {
				nw := t.auxRelation("new_"+r.Name(), base, ram.AuxNew)
				t.news[r.Name()] = nw
				continue
			}
			t.deltas[r.Name()] = t.auxRelation("delta_"+r.Name(), base, ram.AuxDelta)
			t.news[r.Name()] = t.auxRelation("new_"+r.Name(), base, ram.AuxNew)
		}
	}
	// Declare recent_R freshness trackers for the update program. Every
	// non-eqrel source relation gets one: it holds the tuples that became
	// true since the last Apply batch, so later strata can restart from
	// them. EqRel relations are excluded — their union-find representation
	// implies pairs that no per-tuple tracker can observe, so update rules
	// reading an out-of-stratum eqrel atom re-read the full relation.
	mono := analysis.Monotone(t.sem)
	t.monotone = mono.Monotone()
	t.out.NoUpdateReason = mono.Reason()
	if t.monotone {
		for _, r := range t.sem.RelList {
			base := t.rels[r.Name()]
			if base.Rep == ram.RepEqRel {
				continue
			}
			t.recents[r.Name()] = t.auxRelation("recent_"+r.Name(), base, ram.AuxRecent)
		}
	}
	// Delete-program scratch space. Every source relation gets del_R (the
	// set scheduled for physical removal); counting relations — those of
	// non-recursive strata with at least one proper rule — additionally get
	// a cbuf_R multiplicity buffer, and relations of recursive strata get
	// the DRed overdelete/rederive families.
	canDelete, delReason := analysis.Deletable(t.sem)
	t.deletable = canDelete
	t.out.NoDeleteReason = delReason
	if t.deletable {
		recursive := map[string]bool{}
		for _, s := range t.sem.Strata {
			if s.Recursive {
				for _, r := range s.Rels {
					recursive[r.Name()] = true
				}
			}
		}
		for _, r := range t.sem.RelList {
			base := t.rels[r.Name()]
			t.dels[r.Name()] = t.auxRelation("del_"+r.Name(), base, ram.AuxDel)
			switch {
			case recursive[r.Name()]:
				t.ddels[r.Name()] = t.auxRelation("ddel_"+r.Name(), base, ram.AuxDelDelta)
				t.ndels[r.Name()] = t.auxRelation("ndel_"+r.Name(), base, ram.AuxDelNew)
				t.reds[r.Name()] = t.auxRelation("red_"+r.Name(), base, ram.AuxRed)
				t.dreds[r.Name()] = t.auxRelation("dred_"+r.Name(), base, ram.AuxRedDelta)
				t.nreds[r.Name()] = t.auxRelation("nred_"+r.Name(), base, ram.AuxRedNew)
			case hasProperRule(r):
				base.Counting = true
				cb := t.auxRelation("cbuf_"+r.Name(), base, ram.AuxCount)
				cb.Counting = true
				t.cbufs[r.Name()] = cb
			}
		}
	}

	var main []ram.Statement
	// Load inputs.
	for _, rel := range t.out.Relations {
		if rel.Input {
			main = append(main, &ram.IO{Kind: ram.IOLoad, Rel: rel})
		}
	}
	// Facts.
	for _, r := range t.sem.RelList {
		for _, c := range r.Clauses {
			if !c.IsFact() {
				continue
			}
			q, err := t.translateFact(c)
			if err != nil {
				return err
			}
			main = append(main, q)
		}
	}
	// Strata in dependency order.
	for _, s := range t.sem.Strata {
		stmt, err := t.translateStratum(s)
		if err != nil {
			return err
		}
		if stmt != nil {
			main = append(main, stmt)
		}
	}
	// Outputs.
	for _, rel := range t.out.Relations {
		if rel.Output {
			main = append(main, &ram.IO{Kind: ram.IOStore, Rel: rel})
		}
		if rel.PrintSize {
			main = append(main, &ram.IO{Kind: ram.IOPrintSize, Rel: rel})
		}
	}
	t.out.Main = &ram.Sequence{Stmts: main}

	// Update program: a delta-restart variant of every stratum, entered by
	// resident engines after fresh facts were staged into recent_R.
	if t.monotone {
		var upd []ram.Statement
		for _, s := range t.sem.Strata {
			stmt, err := t.translateStratumUpdate(s)
			if err != nil {
				return err
			}
			if stmt != nil {
				upd = append(upd, stmt)
			}
		}
		// Drain every freshness tracker so the next Apply starts clean.
		for _, r := range t.sem.RelList {
			if rc := t.recents[r.Name()]; rc != nil {
				upd = append(upd, &ram.Clear{Rel: rc})
			}
		}
		t.out.Update = &ram.Sequence{Stmts: upd}
	}

	// Delete program: counting propagation and DRed per stratum, then one
	// global physical-removal pass once no stratum needs the old state.
	if t.deletable {
		var del []ram.Statement
		for _, s := range t.sem.Strata {
			stmt, err := t.translateStratumDelete(s)
			if err != nil {
				return err
			}
			if stmt != nil {
				del = append(del, stmt)
			}
		}
		for _, r := range t.sem.RelList {
			d := t.dels[r.Name()]
			del = append(del, &ram.Subtract{Dst: t.rels[r.Name()], Src: d})
			del = append(del, &ram.Clear{Rel: d})
		}
		t.out.Delete = &ram.Sequence{Stmts: del}
	}
	t.out.NumRules = t.ruleID

	t.selectIndexes()
	analysis.StampShardKeys(t.out)
	return nil
}

// auxRelation declares a delta/new/recent companion. Aux relations of eqrel
// sources are plain B-trees of explicit pairs.
func (t *translator) auxRelation(name string, base *ram.Relation, kind ram.AuxKind) *ram.Relation {
	rep := base.Rep
	if rep == ram.RepEqRel {
		rep = ram.RepBTree
	}
	rel := &ram.Relation{
		ID:      len(t.out.Relations),
		Name:    name,
		Arity:   base.Arity,
		Types:   base.Types,
		Rep:     rep,
		Aux:     true,
		Kind:    kind,
		BaseID:  base.ID,
		Stratum: base.Stratum,
	}
	t.out.Relations = append(t.out.Relations, rel)
	return rel
}

// hasProperRule reports whether the relation has at least one non-fact
// clause (i.e. its contents can actually change under delete propagation).
func hasProperRule(r *sema.Rel) bool {
	for _, c := range r.Clauses {
		if !c.IsFact() {
			return true
		}
	}
	return false
}

func repOf(r ast.Rep) ram.RepKind {
	switch r {
	case ast.RepBrie:
		return ram.RepBrie
	case ast.RepEqRel:
		return ram.RepEqRel
	default:
		return ram.RepBTree
	}
}

// --- strata ---

func (t *translator) translateStratum(s *sema.Stratum) (ram.Statement, error) {
	// Gather the rules (non-fact clauses) of this stratum.
	type rule struct {
		rel    *sema.Rel
		clause *ast.Clause
	}
	var rules []rule
	for _, r := range s.Rels {
		for _, c := range r.Clauses {
			if !c.IsFact() {
				rules = append(rules, rule{r, c})
			}
		}
	}
	if len(rules) == 0 {
		return nil, nil
	}

	inStratum := map[string]bool{}
	for _, r := range s.Rels {
		inStratum[r.Name()] = true
	}
	// recursiveAtoms lists body-atom positions referencing in-stratum,
	// non-eqrel relations (the delta candidates).
	recursiveAtoms := func(c *ast.Clause) []int {
		var idxs []int
		for i, l := range c.Body {
			if at, ok := l.(*ast.Atom); ok {
				if inStratum[at.Name] && t.rels[at.Name].Rep != ram.RepEqRel {
					idxs = append(idxs, i)
				}
			}
		}
		return idxs
	}

	if !s.Recursive {
		var stmts []ram.Statement
		for _, ru := range rules {
			target := t.rels[ru.rel.Name()]
			// Counting targets enumerate every derivation so the support
			// counts are exact multiplicities, not mere existence.
			q, err := t.translateRule(ru.clause, version{target: target, forceScan: target.Counting})
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, q)
		}
		return &ram.Sequence{Stmts: stmts}, nil
	}

	// Recursive stratum: semi-naive evaluation (paper Fig 3).
	var init []ram.Statement
	var loopBody []ram.Statement

	for _, ru := range rules {
		rec := recursiveAtoms(ru.clause)
		target := t.rels[ru.rel.Name()]
		anyInStratum := false
		for _, l := range ru.clause.Body {
			if at, ok := l.(*ast.Atom); ok && inStratum[at.Name] {
				anyInStratum = true
			}
		}
		if !anyInStratum {
			// Non-recursive rule of a recursive stratum: evaluate once.
			q, err := t.translateRule(ru.clause, version{target: target})
			if err != nil {
				return nil, err
			}
			init = append(init, q)
			continue
		}
		newRel := t.news[ru.rel.Name()]
		if len(rec) == 0 {
			// Only eqrel in-stratum atoms: evaluate naively each iteration.
			q, err := t.translateRule(ru.clause, version{
				target: newRel, guard: target, naive: true,
			})
			if err != nil {
				return nil, err
			}
			loopBody = append(loopBody, q)
			continue
		}
		for _, deltaPos := range rec {
			q, err := t.translateRule(ru.clause, version{
				target:   newRel,
				guard:    target,
				deltaPos: deltaPos,
				useDelta: true,
			})
			if err != nil {
				return nil, err
			}
			loopBody = append(loopBody, q)
		}
	}

	var stmts []ram.Statement
	stmts = append(stmts, init...)
	// Seed deltas with the full relations.
	for _, r := range s.Rels {
		if d := t.deltas[r.Name()]; d != nil {
			stmts = append(stmts, &ram.Merge{Dst: d, Src: t.rels[r.Name()]})
		}
	}
	// Fixpoint loop: derive new, exit when nothing new, fold in, rotate.
	var post []ram.Statement
	var exitCond ram.Condition
	for _, r := range s.Rels {
		nw := t.news[r.Name()]
		if nw == nil {
			continue
		}
		var c ram.Condition = &ram.EmptinessCheck{Rel: nw}
		if exitCond == nil {
			exitCond = c
		} else {
			exitCond = &ram.And{L: exitCond, R: c}
		}
		post = append(post, &ram.Merge{Dst: t.rels[r.Name()], Src: nw})
		if d := t.deltas[r.Name()]; d != nil {
			post = append(post, &ram.Swap{A: d, B: nw})
			post = append(post, &ram.Clear{Rel: nw})
		} else {
			post = append(post, &ram.Clear{Rel: nw})
		}
	}
	body := append(loopBody, &ram.Exit{Cond: exitCond})
	body = append(body, post...)
	var names []string
	for _, r := range s.Rels {
		if t.news[r.Name()] != nil {
			names = append(names, r.Name())
		}
	}
	label := fmt.Sprintf("stratum %d (%s)", s.Index, strings.Join(names, ", "))
	stmts = append(stmts, &ram.Loop{Body: &ram.Sequence{Stmts: body}, Label: label})
	// Release the scratch relations.
	for _, r := range s.Rels {
		if d := t.deltas[r.Name()]; d != nil {
			stmts = append(stmts, &ram.Clear{Rel: d})
		}
		if nw := t.news[r.Name()]; nw != nil {
			stmts = append(stmts, &ram.Clear{Rel: nw})
		}
	}
	return &ram.Sequence{Stmts: stmts}, nil
}

// version describes which variant of a rule to emit.
type version struct {
	target   *ram.Relation // relation receiving the head projection
	guard    *ram.Relation // if set, suppress heads already in this relation
	deltaPos int           // body index of the atom read from delta_R
	useDelta bool
	naive    bool // recursive via eqrel only; all in-stratum atoms read full
	// Update-program restart variants read the freshness tracker recent_X
	// at one out-of-stratum body position (and the full relations
	// everywhere else).
	recentPos int
	useRecent bool

	// Delete-program variants (delete.go and the counting update path).
	// subst redirects body positions to scratch relations (del/ddel/dred
	// trackers); exclude filters out atom tuples present in the given
	// relation, and excludeUnless weakens that to ¬(∈exclude ∧ ¬∈unless) —
	// the DRed "deleted but not rederived" survival test. require keeps
	// only heads present in the given relation; headScan instead *scans*
	// that relation as an extra outermost level binding the head variables
	// (legal only when every head argument is a plain variable). forceScan
	// disables the existence-check collapse so each variable assignment is
	// enumerated — exclude filters need the atom's tuple slot, and counting
	// targets need one insert attempt per derivation.
	subst         map[int]*ram.Relation
	exclude       map[int]*ram.Relation
	excludeUnless map[int]*ram.Relation
	require       *ram.Relation
	headScan      *ram.Relation
	forceScan     bool
}

// --- facts ---

func (t *translator) translateFact(c *ast.Clause) (ram.Statement, error) {
	target := t.rels[c.Head.Name]
	exprs := make([]ram.Expr, len(c.Head.Args))
	info := t.sem.Clauses[c]
	tr := &ruleTranslator{t: t, info: info, env: map[string]ram.Expr{}}
	for i, e := range c.Head.Args {
		re, err := tr.expr(e)
		if err != nil {
			return nil, err
		}
		exprs[i] = re
	}
	t.ruleID++
	return &ram.Query{
		Root:   &ram.Project{Rel: target, Exprs: exprs},
		RuleID: t.ruleID - 1,
		Label:  c.String(),
	}, nil
}
