package relation

import (
	"sync"
	"sync/atomic"
)

// EpochGuard coordinates a resident database's single writer with many
// concurrent snapshot readers. Writers (Apply batches) take the exclusive
// side and bump the epoch on completion; readers take cheap shared handles
// that pin one epoch for their lifetime. Because the underlying relation
// structures are only mutated under the exclusive side, a reader holding a
// handle can never observe a half-applied batch, and readers never block
// each other.
//
// The guard deliberately lives in the relation layer: it guards the index
// structures themselves, not any particular engine, and its tests exercise
// it against raw relations under -race.
type EpochGuard struct {
	mu    sync.RWMutex
	epoch atomic.Uint64
}

// Epoch returns the number of completed write sections. It is safe to call
// without holding any side of the guard.
func (g *EpochGuard) Epoch() uint64 { return g.epoch.Load() }

// BeginWrite acquires the exclusive writer side, waiting for all snapshot
// handles to be released.
func (g *EpochGuard) BeginWrite() { g.mu.Lock() }

// EndWrite publishes the write section: the epoch advances and snapshot
// readers may proceed. Epoch is bumped before the lock is released, so a
// handle acquired afterwards always reports the new epoch.
func (g *EpochGuard) EndWrite() {
	g.epoch.Add(1)
	g.mu.Unlock()
}

// Acquire takes a shared snapshot handle at the current epoch. The caller
// must Release it; holding a handle delays writers (and, through Go's
// RWMutex writer-preference, readers that arrive after a blocked writer),
// so handles should be short-lived.
func (g *EpochGuard) Acquire() *SnapshotHandle {
	g.mu.RLock()
	return &SnapshotHandle{g: g, epoch: g.epoch.Load()}
}

// SnapshotHandle pins one consistent epoch of the guarded relations for
// reading. It is not itself safe for concurrent use by multiple
// goroutines; acquire one handle per reader.
type SnapshotHandle struct {
	g        *EpochGuard
	epoch    uint64
	released bool
}

// Epoch reports the epoch this handle pinned at acquisition.
func (h *SnapshotHandle) Epoch() uint64 { return h.epoch }

// Released reports whether the handle has been released.
func (h *SnapshotHandle) Released() bool { return h.released }

// Release returns the shared side of the guard. Releasing twice is a no-op.
func (h *SnapshotHandle) Release() {
	if h.released {
		return
	}
	h.released = true
	h.g.mu.RUnlock()
}
