package relation

import (
	"fmt"

	"sti/internal/metrics"
	"sti/internal/store"
	"sti/internal/tuple"
	"sti/internal/value"
)

// persistAdapter is the dynamic adapter over a durable store.Table: the
// sixth representation of the portfolio. Tuples are re-encoded to the
// index's lexicographic order like every other adapter, then serialized
// with the order-preserving byte codec (internal/tuple), so the table's
// byte-comparison searches implement exactly the adapter contract:
// PrefixScan is a key-range scan between a prefix and its successor, and
// PartitionScan splits at sampled separator keys.
//
// There is no specialized static instruction set for this representation;
// the interpreter's generator falls back to the generic dynamic opcodes,
// which is the de-specialization seam doing its job (§3).
type persistAdapter struct {
	tab   *store.Table
	order tuple.Order
	arity int
	ops   *metrics.IndexOps
}

func newPersistAdapter(tab *store.Table, order tuple.Order) *persistAdapter {
	return &persistAdapter{tab: tab, order: order, arity: len(order)}
}

func (a *persistAdapter) Arity() int                      { return a.arity }
func (a *persistAdapter) Rep() Rep                        { return Persist }
func (a *persistAdapter) Order() tuple.Order              { return a.order }
func (a *persistAdapter) Size() int                       { return a.tab.Len() }
func (a *persistAdapter) Clear()                          { a.tab.Clear() }
func (a *persistAdapter) impl() any                       { return a.tab }
func (a *persistAdapter) attachOps(ops *metrics.IndexOps) { a.ops = ops }

// persistKeyMax bounds the stack buffer for encoded keys.
const persistKeyMax = MaxArity * tuple.KeyWidth

// encode re-orders t and serializes it into buf, returning the key view.
func (a *persistAdapter) encode(buf []byte, t tuple.Tuple) []byte {
	var enc [MaxArity]value.Value
	a.order.Encode(enc[:a.arity], t)
	return tuple.AppendKey(buf[:0], enc[:a.arity])
}

func (a *persistAdapter) Insert(t tuple.Tuple) bool {
	var buf [persistKeyMax]byte
	added := a.tab.Insert(a.encode(buf[:], t))
	if a.ops != nil {
		a.ops.Inserts.Add(1)
		if added {
			a.ops.Fresh.Add(1)
		}
	}
	return added
}

func (a *persistAdapter) InsertAll(flat []value.Value, count int) int {
	var buf [persistKeyMax]byte
	added := 0
	for i := 0; i < count; i++ {
		if a.tab.Insert(a.encode(buf[:], flat[i*a.arity:(i+1)*a.arity])) {
			added++
		}
	}
	if a.ops != nil {
		a.ops.Inserts.Add(uint64(count))
		a.ops.Fresh.Add(uint64(added))
	}
	return added
}

func (a *persistAdapter) Delete(t tuple.Tuple) bool {
	var buf [persistKeyMax]byte
	return a.tab.Delete(a.encode(buf[:], t))
}

func (a *persistAdapter) Contains(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	var buf [persistKeyMax]byte
	return a.tab.Contains(a.encode(buf[:], t))
}

func (a *persistAdapter) ContainsEncoded(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	var buf [persistKeyMax]byte
	return a.tab.Contains(tuple.AppendKey(buf[:0], t))
}

// SwapContents is unsupported: only auxiliary delta/new relations swap
// during evaluation, and the tier policy keeps those in memory, so a swap
// reaching a persistent index is an engine bug.
func (a *persistAdapter) SwapContents(other Index) {
	panic(fmt.Sprintf("relation: SwapContents on persistent index (table %s, other %v/%d)",
		a.tab.Name(), other.Rep(), other.Arity()))
}

func (a *persistAdapter) Scan() Iterator {
	if a.ops != nil {
		a.ops.Scans.Add(1)
	}
	return newBuffered(&persistBatch{cur: a.tab.Range(nil, nil)}, a.arity)
}

func (a *persistAdapter) PrefixScan(pattern tuple.Tuple, k int) Iterator {
	if a.ops != nil {
		a.ops.RangeScans.Add(1)
	}
	if k == 0 {
		return newBuffered(&persistBatch{cur: a.tab.Range(nil, nil)}, a.arity)
	}
	lo := tuple.AppendKey(make([]byte, 0, tuple.KeySize(k)), pattern[:k])
	return newBuffered(&persistBatch{cur: a.tab.Range(lo, tuple.PrefixSuccessor(lo))}, a.arity)
}

func (a *persistAdapter) AnyMatch(pattern tuple.Tuple, k int) bool {
	if a.ops != nil {
		a.ops.Probes.Add(1)
	}
	if k == 0 {
		return a.tab.Len() > 0
	}
	lo := tuple.AppendKey(make([]byte, 0, tuple.KeySize(k)), pattern[:k])
	_, ok := a.tab.Range(lo, tuple.PrefixSuccessor(lo)).Next()
	return ok
}

// PartitionScan splits the keyspace at sampled separator keys into up to n
// disjoint, collectively exhaustive ranges.
func (a *persistAdapter) PartitionScan(n int) []Iterator {
	if a.ops != nil {
		a.ops.Partitions.Add(1)
	}
	seps := a.tab.SampleKeys(n)
	if len(seps) == 0 {
		return []Iterator{a.Scan()}
	}
	var out []Iterator
	var lo []byte
	for _, hi := range seps {
		out = append(out, newBuffered(&persistBatch{cur: a.tab.Range(lo, hi)}, a.arity))
		lo = hi
	}
	out = append(out, newBuffered(&persistBatch{cur: a.tab.Range(lo, nil)}, a.arity))
	return out
}

// persistBatch adapts a store cursor to the wide batcher call, decoding
// keys straight into the caller's tuple slots.
type persistBatch struct {
	cur *store.Cursor
}

func (s *persistBatch) nextBatch(dst []tuple.Tuple) int {
	for i := range dst {
		k, ok := s.cur.Next()
		if !ok {
			return i
		}
		tuple.DecodeKey(dst[i], k)
	}
	return len(dst)
}
