package relation

import (
	"math/rand"
	"sort"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

// TestStagingBufferBasics covers the buffer container itself: packing,
// views, and reuse after Reset.
func TestStagingBufferBasics(t *testing.T) {
	b := NewStagingBuffer(3)
	if b.Arity() != 3 || b.Len() != 0 {
		t.Fatalf("fresh buffer: arity %d len %d", b.Arity(), b.Len())
	}
	b.Add(tuple.Tuple{1, 2, 3})
	b.Add(tuple.Tuple{4, 5, 6})
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	if got := b.Tuple(1); got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("tuple 1 = %v", got)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len after reset = %d", b.Len())
	}
	b.Add(tuple.Tuple{7, 8, 9})
	if got := b.Tuple(0); got[0] != 7 {
		t.Fatalf("tuple after reset = %v", got)
	}
}

// TestInsertAllDedup verifies that merging de-duplicates against the
// relation's existing contents, across buffers, and within one buffer — and
// that every index of the relation ends up consistent.
func TestInsertAllDedup(t *testing.T) {
	for _, rep := range []Rep{BTree, Brie, Legacy} {
		orders := []tuple.Order{{0, 1}, {1, 0}}
		r := New("t", rep, 2, orders)
		r.Insert(tuple.Tuple{1, 2}) // pre-existing

		a := NewStagingBuffer(2)
		a.Add(tuple.Tuple{1, 2}) // duplicate of stored tuple
		a.Add(tuple.Tuple{3, 4})
		a.Add(tuple.Tuple{3, 4}) // duplicate within the buffer
		b := NewStagingBuffer(2)
		b.Add(tuple.Tuple{3, 4}) // duplicate across buffers
		b.Add(tuple.Tuple{5, 6})

		if added := r.InsertAll(a, b); added != 2 {
			t.Fatalf("%v: added = %d, want 2", rep, added)
		}
		if r.Size() != 3 {
			t.Fatalf("%v: size = %d, want 3", rep, r.Size())
		}
		for i := 0; i < r.NumIndexes(); i++ {
			if got := r.Index(i).Size(); got != 3 {
				t.Fatalf("%v: index %d size = %d, want 3", rep, i, got)
			}
		}
		for _, want := range []tuple.Tuple{{1, 2}, {3, 4}, {5, 6}} {
			if !r.Contains(want) {
				t.Fatalf("%v: missing %v", rep, want)
			}
		}
	}
}

// TestInsertAllArityMismatchPanics locks in the guard against merging a
// buffer staged for a different relation.
func TestInsertAllArityMismatchPanics(t *testing.T) {
	r := New("t", BTree, 2, []tuple.Order{{0, 1}})
	b := NewStagingBuffer(3)
	b.Add(tuple.Tuple{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	r.InsertAll(b)
}

// TestInsertAllParallelSecondaryMerge pushes enough fresh tuples through a
// three-index relation to take the parallel secondary-merge path, then
// cross-checks every index against the primary.
func TestInsertAllParallelSecondaryMerge(t *testing.T) {
	orders := []tuple.Order{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}}
	r := New("t", BTree, 3, orders)
	rng := rand.New(rand.NewSource(7))
	bufs := make([]*StagingBuffer, 4)
	want := map[[3]value.Value]bool{}
	for i := range bufs {
		bufs[i] = NewStagingBuffer(3)
		for j := 0; j < parallelMergeMin; j++ {
			tup := tuple.Tuple{
				value.Value(rng.Intn(64)),
				value.Value(rng.Intn(64)),
				value.Value(rng.Intn(64)),
			}
			bufs[i].Add(tup)
			want[[3]value.Value{tup[0], tup[1], tup[2]}] = true
		}
	}
	added := r.InsertAll(bufs...)
	if added != len(want) {
		t.Fatalf("added = %d, want %d", added, len(want))
	}
	for i := 0; i < r.NumIndexes(); i++ {
		idx := r.Index(i)
		if idx.Size() != len(want) {
			t.Fatalf("index %d size = %d, want %d", i, idx.Size(), len(want))
		}
		got := drain(NewDecoder(idx.Scan(), idx.Order()))
		if len(got) != len(want) {
			t.Fatalf("index %d yields %d tuples, want %d", i, len(got), len(want))
		}
		for _, tup := range got {
			if !want[[3]value.Value{tup[0], tup[1], tup[2]}] {
				t.Fatalf("index %d yields unstaged tuple %v", i, tup)
			}
		}
	}
}

// TestInsertAllEqrel verifies merging into an equivalence relation: staged
// pairs union classes, and the merged contents equal serially inserted ones.
func TestInsertAllEqrel(t *testing.T) {
	serial := New("s", EqRel, 2, []tuple.Order{{0, 1}})
	staged := New("p", EqRel, 2, []tuple.Order{{0, 1}})
	pairs := []tuple.Tuple{{1, 2}, {2, 3}, {10, 11}, {3, 1}, {4, 4}}
	b1, b2 := NewStagingBuffer(2), NewStagingBuffer(2)
	for i, p := range pairs {
		serial.Insert(p)
		if i%2 == 0 {
			b1.Add(p)
		} else {
			b2.Add(p)
		}
	}
	staged.InsertAll(b1, b2)
	if staged.Size() != serial.Size() {
		t.Fatalf("size = %d, want %d", staged.Size(), serial.Size())
	}
	got, want := drain(staged.Scan()), drain(serial.Scan())
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
	// (1,2),(2,3),(3,1) collapse into one class with reflexive closure:
	// merging the same information again adds nothing.
	if again := staged.InsertAll(b1, b2); again != 0 {
		t.Fatalf("re-merge added %d", again)
	}
}

// TestInsertAllBrieNonIdentityIndex exercises the brie merge path that must
// encode tuples into the index order before inserting.
func TestInsertAllBrieNonIdentityIndex(t *testing.T) {
	orders := []tuple.Order{{0, 1}, {1, 0}}
	r := New("t", Brie, 2, orders)
	b := NewStagingBuffer(2)
	tuples := []tuple.Tuple{{3, 1}, {1, 2}, {2, 9}, {3, 1}}
	for _, tup := range tuples {
		b.Add(tup)
	}
	if added := r.InsertAll(b); added != 3 {
		t.Fatalf("added = %d, want 3", added)
	}
	// The secondary stores reversed coordinates; decode and compare.
	idx := r.Index(1)
	if idx.Size() != 3 {
		t.Fatalf("secondary size = %d", idx.Size())
	}
	got := drain(NewDecoder(idx.Scan(), idx.Order()))
	sort.Slice(got, func(i, j int) bool {
		return got[i][0] < got[j][0] || (got[i][0] == got[j][0] && got[i][1] < got[j][1])
	})
	want := []tuple.Tuple{{1, 2}, {2, 9}, {3, 1}}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("secondary tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestInsertAllNullary verifies the nullary degenerate case: any staged
// count flips the relation to non-empty exactly once.
func TestInsertAllNullary(t *testing.T) {
	r := New("t", BTree, 0, []tuple.Order{{}})
	b := NewStagingBuffer(0)
	b.Add(tuple.Tuple{})
	b.Add(tuple.Tuple{})
	if added := r.InsertAll(b); added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	if r.Size() != 1 || r.Empty() {
		t.Fatalf("size = %d empty = %v", r.Size(), r.Empty())
	}
	if again := r.InsertAll(b); again != 0 {
		t.Fatalf("re-merge added %d", again)
	}
}
