package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

func drain(it Iterator) []tuple.Tuple {
	var out []tuple.Tuple
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, tuple.Clone(t))
	}
}

// reps to exercise uniformly in adapter contract tests.
var allReps = []Rep{BTree, Brie, Legacy}

func TestFactoryArities(t *testing.T) {
	for _, rep := range allReps {
		for arity := 1; arity <= MaxArity; arity++ {
			idx := NewIndex(rep, tuple.Identity(arity))
			if idx.Arity() != arity {
				t.Fatalf("%v arity %d: got %d", rep, arity, idx.Arity())
			}
			tup := make(tuple.Tuple, arity)
			for i := range tup {
				tup[i] = value.Value(i + 1)
			}
			if !idx.Insert(tup) || idx.Insert(tup) {
				t.Fatalf("%v arity %d: insert newness wrong", rep, arity)
			}
			if !idx.Contains(tup) {
				t.Fatalf("%v arity %d: contains failed", rep, arity)
			}
			if idx.Size() != 1 {
				t.Fatalf("%v arity %d: size %d", rep, arity, idx.Size())
			}
		}
	}
}

func TestFactoryArityOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity 17 did not panic")
		}
	}()
	NewIndex(BTree, tuple.Identity(MaxArity+1))
}

func TestNullary(t *testing.T) {
	idx := NewIndex(BTree, tuple.Order{})
	if idx.Arity() != 0 || idx.Size() != 0 {
		t.Fatal("bad empty nullary index")
	}
	if idx.Contains(tuple.Tuple{}) {
		t.Fatal("empty nullary contains")
	}
	if !idx.Insert(tuple.Tuple{}) || idx.Insert(tuple.Tuple{}) {
		t.Fatal("nullary insert newness wrong")
	}
	got := drain(idx.Scan())
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("nullary scan: %v", got)
	}
	idx.Clear()
	if idx.Size() != 0 {
		t.Fatal("nullary clear failed")
	}
}

// TestEncodedOrderContract: Scan yields tuples in encoded lexicographic
// order, and encoded tuples decode back to the inserted source tuples.
func TestEncodedOrderContract(t *testing.T) {
	order := tuple.Order{1, 0}
	for _, rep := range allReps {
		t.Run(rep.String(), func(t *testing.T) {
			idx := NewIndex(rep, order)
			src := []tuple.Tuple{{5, 1}, {3, 2}, {4, 1}, {3, 9}}
			for _, s := range src {
				idx.Insert(s)
			}
			enc := drain(idx.Scan())
			if len(enc) != len(src) {
				t.Fatalf("scan %d tuples", len(enc))
			}
			for i := 1; i < len(enc); i++ {
				if tuple.Compare(enc[i-1], enc[i]) >= 0 {
					t.Fatalf("encoded scan out of order: %v then %v", enc[i-1], enc[i])
				}
			}
			// Decode and compare as sets.
			dec := drain(NewDecoder(idx.Scan(), order))
			want := make([]tuple.Tuple, len(src))
			for i, s := range src {
				want[i] = tuple.Clone(s)
			}
			sortTuples(dec)
			sortTuples(want)
			for i := range want {
				if tuple.Compare(dec[i], want[i]) != 0 {
					t.Fatalf("decoded set mismatch: got %v want %v", dec, want)
				}
			}
		})
	}
}

func sortTuples(ts []tuple.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return tuple.Compare(ts[i], ts[j]) < 0 })
}

// TestPrefixScanAllReps: prefix scans return exactly the matching tuples,
// in encoded order, for every representation and a non-trivial order.
func TestPrefixScanAllReps(t *testing.T) {
	order := tuple.Order{2, 0, 1}
	rng := rand.New(rand.NewSource(21))
	var src []tuple.Tuple
	for i := 0; i < 800; i++ {
		src = append(src, tuple.Tuple{
			value.Value(rng.Intn(8)), value.Value(rng.Intn(8)), value.Value(rng.Intn(8)),
		})
	}
	for _, rep := range allReps {
		t.Run(rep.String(), func(t *testing.T) {
			idx := NewIndex(rep, order)
			model := map[[3]value.Value]bool{}
			for _, s := range src {
				idx.Insert(s)
				model[[3]value.Value{s[0], s[1], s[2]}] = true
			}
			for k := 0; k <= 3; k++ {
				pattern := tuple.Tuple{4, 2, 7} // encoded pattern
				got := drain(idx.PrefixScan(pattern, k))
				// Reference: filter the model in encoded space.
				var want []tuple.Tuple
				for m := range model {
					enc := order.Encoded(tuple.Tuple{m[0], m[1], m[2]})
					match := true
					for i := 0; i < k; i++ {
						if enc[i] != pattern[i] {
							match = false
							break
						}
					}
					if match {
						want = append(want, enc)
					}
				}
				sortTuples(want)
				if len(got) != len(want) {
					t.Fatalf("k=%d: got %d want %d", k, len(got), len(want))
				}
				for i := range want {
					if tuple.Compare(got[i], want[i]) != 0 {
						t.Fatalf("k=%d position %d: got %v want %v", k, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestEqrelAdapter(t *testing.T) {
	idx := NewIndex(EqRel, tuple.Identity(2))
	idx.Insert(tuple.Tuple{1, 2})
	idx.Insert(tuple.Tuple{2, 3})
	if idx.Size() != 9 {
		t.Fatalf("eqrel size = %d, want 9", idx.Size())
	}
	if !idx.Contains(tuple.Tuple{3, 1}) {
		t.Fatal("transitive pair missing")
	}
	got := drain(idx.PrefixScan(tuple.Tuple{2, 0}, 1))
	if len(got) != 3 {
		t.Fatalf("prefix scan: %d pairs, want 3", len(got))
	}
	got = drain(idx.PrefixScan(tuple.Tuple{1, 3}, 2))
	if len(got) != 1 {
		t.Fatalf("full prefix: %v", got)
	}
	got = drain(idx.PrefixScan(tuple.Tuple{1, 7}, 2))
	if len(got) != 0 {
		t.Fatalf("absent full prefix: %v", got)
	}
}

func TestBufferedIteratorLargeScan(t *testing.T) {
	// More tuples than one buffer so refills are exercised.
	idx := NewIndex(BTree, tuple.Identity(2))
	const n = BufferSize*3 + 17
	for i := 0; i < n; i++ {
		idx.Insert(tuple.Tuple{value.Value(i), value.Value(i * 2)})
	}
	got := drain(idx.Scan())
	if len(got) != n {
		t.Fatalf("scanned %d tuples, want %d", len(got), n)
	}
	for i, tp := range got {
		if tp[0] != value.Value(i) || tp[1] != value.Value(i*2) {
			t.Fatalf("tuple %d = %v", i, tp)
		}
	}
}

// TestBufferedStability: a tuple yielded by a buffered scan stays intact
// while an inner iterator advances (the nested-loop usage pattern).
func TestBufferedStability(t *testing.T) {
	outer := NewIndex(BTree, tuple.Identity(1))
	inner := NewIndex(BTree, tuple.Identity(1))
	for i := 0; i < 10; i++ {
		outer.Insert(tuple.Tuple{value.Value(i)})
		inner.Insert(tuple.Tuple{value.Value(100 + i)})
	}
	oit := outer.Scan()
	for {
		ot, ok := oit.Next()
		if !ok {
			break
		}
		want := ot[0]
		iit := inner.Scan()
		for {
			if _, ok := iit.Next(); !ok {
				break
			}
			if ot[0] != want {
				t.Fatal("outer tuple mutated during inner scan")
			}
		}
	}
}

func TestRelationMultiIndex(t *testing.T) {
	orders := []tuple.Order{{0, 1}, {1, 0}}
	r := New("edge", BTree, 2, orders)
	if r.NumIndexes() != 2 {
		t.Fatalf("NumIndexes = %d", r.NumIndexes())
	}
	r.Insert(tuple.Tuple{1, 2})
	r.Insert(tuple.Tuple{3, 2})
	if r.Size() != 2 || !r.Contains(tuple.Tuple{3, 2}) {
		t.Fatal("relation basic ops failed")
	}
	if r.Index(1).Size() != 2 {
		t.Fatal("secondary index not populated")
	}
	// Secondary index answers a prefix query on source column 1.
	got := drain(r.Index(1).PrefixScan(tuple.Tuple{2, 0}, 1))
	if len(got) != 2 {
		t.Fatalf("secondary prefix scan: %v", got)
	}
}

func TestRelationSwapAndClear(t *testing.T) {
	mk := func() *Relation {
		return New("r", BTree, 2, []tuple.Order{{0, 1}, {1, 0}})
	}
	a, b := mk(), mk()
	a.Insert(tuple.Tuple{1, 1})
	b.Insert(tuple.Tuple{2, 2})
	b.Insert(tuple.Tuple{3, 3})
	a.SwapContents(b)
	if a.Size() != 2 || b.Size() != 1 {
		t.Fatalf("swap sizes: %d %d", a.Size(), b.Size())
	}
	if !a.Contains(tuple.Tuple{2, 2}) || !b.Contains(tuple.Tuple{1, 1}) {
		t.Fatal("swap contents wrong")
	}
	a.Clear()
	if !a.Empty() || a.Index(1).Size() != 0 {
		t.Fatal("clear missed an index")
	}
}

func TestSwapMismatchPanics(t *testing.T) {
	a := NewIndex(BTree, tuple.Identity(2))
	b := NewIndex(Brie, tuple.Identity(2))
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched swap did not panic")
		}
	}()
	a.SwapContents(b)
}

func TestRelationScanDecodes(t *testing.T) {
	// Primary order is non-natural; Relation.Scan must yield source order.
	r := New("r", BTree, 2, []tuple.Order{{1, 0}})
	r.Insert(tuple.Tuple{7, 1})
	got := drain(r.Scan())
	if len(got) != 1 || got[0][0] != 7 || got[0][1] != 1 {
		t.Fatalf("decoded scan = %v", got)
	}
}

func TestContainsEncoded(t *testing.T) {
	order := tuple.Order{1, 0}
	for _, rep := range allReps {
		idx := NewIndex(rep, order)
		idx.Insert(tuple.Tuple{7, 3}) // encoded as (3,7)
		if !idx.ContainsEncoded(tuple.Tuple{3, 7}) {
			t.Errorf("%v: ContainsEncoded missed", rep)
		}
		if idx.ContainsEncoded(tuple.Tuple{7, 3}) {
			t.Errorf("%v: ContainsEncoded matched source order", rep)
		}
	}
}

func TestImplExposesConcreteTree(t *testing.T) {
	idx := NewIndex(BTree, tuple.Identity(3))
	if _, ok := Impl(idx).(interface{ Size() int }); !ok {
		t.Fatalf("Impl returned %T", Impl(idx))
	}
}

func TestRepString(t *testing.T) {
	for rep, want := range map[Rep]string{BTree: "btree", Brie: "brie", EqRel: "eqrel", Legacy: "legacy"} {
		if rep.String() != want {
			t.Errorf("%d.String() = %q", rep, rep.String())
		}
	}
}

func BenchmarkInsertBTreeAdapter(b *testing.B) {
	for _, arity := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("arity%d", arity), func(b *testing.B) {
			idx := NewIndex(BTree, tuple.Identity(arity))
			tup := make(tuple.Tuple, arity)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tup[0] = value.Value(i)
				tup[arity-1] = value.Value(i >> 8)
				idx.Insert(tup)
			}
		})
	}
}
