package relation

import (
	"fmt"

	"sti/internal/brie"
	"sti/internal/eqrel"
	"sti/internal/metrics"
	"sti/internal/tuple"
	"sti/internal/value"
)

// --- brie ---

// brieAdapter wraps a trie. The trie works on dynamic tuples natively, so no
// per-arity glue is needed; it still goes through the same buffered-iterator
// discipline as the B-tree in dynamic mode.
type brieAdapter struct {
	trie  *brie.Trie
	order tuple.Order
	ops   *metrics.IndexOps
}

func newBrieAdapter(order tuple.Order) *brieAdapter {
	return &brieAdapter{trie: brie.New(len(order)), order: order}
}

func (a *brieAdapter) Arity() int                      { return a.trie.Arity() }
func (a *brieAdapter) Rep() Rep                        { return Brie }
func (a *brieAdapter) Order() tuple.Order              { return a.order }
func (a *brieAdapter) Size() int                       { return a.trie.Size() }
func (a *brieAdapter) Clear()                          { a.trie.Clear() }
func (a *brieAdapter) impl() any                       { return a.trie }
func (a *brieAdapter) attachOps(ops *metrics.IndexOps) { a.ops = ops }

func (a *brieAdapter) encode(t tuple.Tuple) tuple.Tuple {
	if a.order.IsIdentity() {
		return t
	}
	return a.order.Encoded(t)
}

func (a *brieAdapter) Insert(t tuple.Tuple) bool {
	added := a.trie.Insert(a.encode(t))
	if a.ops != nil {
		a.ops.Inserts.Add(1)
		if added {
			a.ops.Fresh.Add(1)
		}
	}
	return added
}

func (a *brieAdapter) InsertAll(flat []value.Value, count int) int {
	arity := a.trie.Arity()
	added := 0
	if a.order.IsIdentity() {
		added = a.trie.InsertAll(flat[:count*arity])
	} else {
		var enc [MaxArity]value.Value
		for i := 0; i < count; i++ {
			a.order.Encode(enc[:arity], flat[i*arity:(i+1)*arity])
			if a.trie.Insert(enc[:arity]) {
				added++
			}
		}
	}
	if a.ops != nil {
		a.ops.Inserts.Add(uint64(count))
		a.ops.Fresh.Add(uint64(added))
	}
	return added
}

func (a *brieAdapter) Contains(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	return a.trie.Contains(a.encode(t))
}

func (a *brieAdapter) ContainsEncoded(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	return a.trie.Contains(t)
}

func (a *brieAdapter) SwapContents(other Index) {
	o, ok := other.(*brieAdapter)
	if !ok || !orderEq(a.order, o.order) {
		panic(fmt.Sprintf("relation: swap of incompatible indexes (%v and %v)", a.Rep(), other.Rep()))
	}
	a.trie.Swap(o.trie)
}

func (a *brieAdapter) Scan() Iterator {
	if a.ops != nil {
		a.ops.Scans.Add(1)
	}
	return newBuffered(&brieBatch{it: a.trie.Iter()}, a.Arity())
}

func (a *brieAdapter) PrefixScan(pattern tuple.Tuple, k int) Iterator {
	if a.ops != nil {
		a.ops.RangeScans.Add(1)
	}
	return newBuffered(&brieBatch{it: a.trie.Prefix(pattern[:k])}, a.Arity())
}

func (a *brieAdapter) AnyMatch(pattern tuple.Tuple, k int) bool {
	if a.ops != nil {
		a.ops.Probes.Add(1)
	}
	return a.trie.HasPrefix(pattern[:k])
}

func (a *brieAdapter) PartitionScan(n int) []Iterator {
	if a.ops != nil {
		a.ops.Partitions.Add(1)
	}
	return []Iterator{a.Scan()}
}

type brieBatch struct {
	it *brie.Iter
}

func (s *brieBatch) nextBatch(dst []tuple.Tuple) int {
	for i := range dst {
		t, ok := s.it.Next()
		if !ok {
			return i
		}
		copy(dst[i], t)
	}
	return len(dst)
}

// --- eqrel ---

// eqrelAdapter wraps the union-find relation. Equivalence relations are
// binary and always kept in natural order; the implied-pair iterators of
// internal/eqrel already enumerate lexicographically.
type eqrelAdapter struct {
	rel *eqrel.Rel
	ops *metrics.IndexOps
}

func newEqrelAdapter(order tuple.Order) *eqrelAdapter {
	if len(order) != 2 || !order.IsIdentity() {
		panic("relation: eqrel indexes are binary and natural-ordered")
	}
	return &eqrelAdapter{rel: eqrel.New()}
}

func (a *eqrelAdapter) Arity() int                      { return 2 }
func (a *eqrelAdapter) Rep() Rep                        { return EqRel }
func (a *eqrelAdapter) Order() tuple.Order              { return tuple.Identity(2) }
func (a *eqrelAdapter) Size() int                       { return a.rel.Size() }
func (a *eqrelAdapter) Clear()                          { a.rel.Clear() }
func (a *eqrelAdapter) impl() any                       { return a.rel }
func (a *eqrelAdapter) attachOps(ops *metrics.IndexOps) { a.ops = ops }

func (a *eqrelAdapter) Insert(t tuple.Tuple) bool {
	added := a.rel.Insert(t[0], t[1])
	if a.ops != nil {
		a.ops.Inserts.Add(1)
		if added {
			a.ops.Fresh.Add(1)
		}
	}
	return added
}

func (a *eqrelAdapter) InsertAll(flat []value.Value, count int) int {
	added := a.rel.InsertPairs(flat[:count*2])
	if a.ops != nil {
		a.ops.Inserts.Add(uint64(count))
		a.ops.Fresh.Add(uint64(added))
	}
	return added
}

func (a *eqrelAdapter) Contains(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	return a.rel.Contains(t[0], t[1])
}

func (a *eqrelAdapter) ContainsEncoded(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	return a.rel.Contains(t[0], t[1])
}

func (a *eqrelAdapter) SwapContents(other Index) {
	o, ok := other.(*eqrelAdapter)
	if !ok {
		panic(fmt.Sprintf("relation: swap of incompatible indexes (%v and %v)", a.Rep(), other.Rep()))
	}
	a.rel, o.rel = o.rel, a.rel
}

func (a *eqrelAdapter) Scan() Iterator {
	if a.ops != nil {
		a.ops.Scans.Add(1)
	}
	return a.rel.Iter()
}

func (a *eqrelAdapter) PrefixScan(pattern tuple.Tuple, k int) Iterator {
	if a.ops != nil {
		a.ops.RangeScans.Add(1)
	}
	switch k {
	case 0:
		return a.rel.Iter()
	case 1:
		return a.rel.PrefixFirst(pattern[0])
	default:
		if a.rel.Contains(pattern[0], pattern[1]) {
			return &singleIter{t: tuple.Tuple{pattern[0], pattern[1]}}
		}
		return emptyIter{}
	}
}

func (a *eqrelAdapter) AnyMatch(pattern tuple.Tuple, k int) bool {
	if a.ops != nil {
		a.ops.Probes.Add(1)
	}
	switch k {
	case 0:
		return a.rel.Size() > 0
	case 1:
		return a.rel.Class(pattern[0]) != nil
	default:
		return a.rel.Contains(pattern[0], pattern[1])
	}
}

func (a *eqrelAdapter) PartitionScan(n int) []Iterator {
	if a.ops != nil {
		a.ops.Partitions.Add(1)
	}
	return []Iterator{a.Scan()}
}

// singleIter yields exactly one tuple.
type singleIter struct {
	t    tuple.Tuple
	done bool
}

func (s *singleIter) Next() (tuple.Tuple, bool) {
	if s.done {
		return nil, false
	}
	s.done = true
	return s.t, true
}

// --- nullary ---

// nullaryAdapter stores the zero-arity relation: either empty or holding the
// single empty tuple. Nullary relations act as propositional flags.
type nullaryAdapter struct {
	set bool
	rep Rep
	ops *metrics.IndexOps
}

func (a *nullaryAdapter) Arity() int                      { return 0 }
func (a *nullaryAdapter) Rep() Rep                        { return a.rep }
func (a *nullaryAdapter) Order() tuple.Order              { return tuple.Order{} }
func (a *nullaryAdapter) attachOps(ops *metrics.IndexOps) { a.ops = ops }
func (a *nullaryAdapter) Size() int {
	if a.set {
		return 1
	}
	return 0
}
func (a *nullaryAdapter) Clear()    { a.set = false }
func (a *nullaryAdapter) impl() any { return a }

func (a *nullaryAdapter) Insert(tuple.Tuple) bool {
	added := !a.set
	a.set = true
	if a.ops != nil {
		a.ops.Inserts.Add(1)
		if added {
			a.ops.Fresh.Add(1)
		}
	}
	return added
}

func (a *nullaryAdapter) InsertAll(flat []value.Value, count int) int {
	added := 0
	if count > 0 && !a.set {
		a.set = true
		added = 1
	}
	if a.ops != nil {
		a.ops.Inserts.Add(uint64(count))
		a.ops.Fresh.Add(uint64(added))
	}
	return added
}

func (a *nullaryAdapter) Contains(tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	return a.set
}

func (a *nullaryAdapter) ContainsEncoded(tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	return a.set
}

func (a *nullaryAdapter) SwapContents(other Index) {
	o, ok := other.(*nullaryAdapter)
	if !ok {
		panic(fmt.Sprintf("relation: swap of incompatible indexes (%v and %v)", a.Rep(), other.Rep()))
	}
	a.set, o.set = o.set, a.set
}

func (a *nullaryAdapter) Scan() Iterator {
	if a.set {
		return &singleIter{t: tuple.Tuple{}}
	}
	return emptyIter{}
}

func (a *nullaryAdapter) PrefixScan(pattern tuple.Tuple, k int) Iterator { return a.Scan() }

func (a *nullaryAdapter) AnyMatch(pattern tuple.Tuple, k int) bool { return a.set }

func (a *nullaryAdapter) PartitionScan(n int) []Iterator { return []Iterator{a.Scan()} }
