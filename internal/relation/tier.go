package relation

import (
	"sti/internal/store"
	"sti/internal/tuple"
)

// Tier is the storage-tier policy hook: the engine consults it when
// building each relation to decide whether the relation's indexes live in
// the in-memory portfolio (hot tier) or on durable tables (persistent
// tier). The db layer implements it over an open store.Store and records
// gating decisions for observability.
type Tier interface {
	// Table returns the durable table backing index idx of relation rel, or
	// nil to keep that relation in memory. Implementations must return
	// tables keyed at tuple.KeySize(len(order)) bytes.
	Table(rel string, idx int, order tuple.Order) *store.Table
	// Gate records that rel was kept in memory for the given reason; called
	// once per gated input relation so operators can see why a relation did
	// not persist.
	Gate(rel string, reason string)
}

// NewPersistent creates a relation whose indexes are durable tables from
// tier. It returns nil when the tier declines any index, in which case the
// caller falls back to the in-memory portfolio.
func NewPersistent(name string, arity int, orders []tuple.Order, tier Tier) *Relation {
	if arity == 0 || arity > MaxArity {
		return nil
	}
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(arity)}
	}
	r := &Relation{Name: name, arity: arity, rep: Persist}
	for i, o := range orders {
		tab := tier.Table(name, i, o)
		if tab == nil {
			return nil
		}
		r.indexes = append(r.indexes, newPersistAdapter(tab, o))
	}
	return r
}
