package relation

import (
	"testing"

	"sti/internal/metrics"
	"sti/internal/tuple"
)

// hotPathAllocs measures the steady-state duplicate-insert and membership
// paths (the fixpoint hot loop) for one relation.
func hotPathAllocs(r *Relation) (insert, contains float64) {
	tup := tuple.Tuple{1, 2}
	r.Insert(tup)
	insert = testing.AllocsPerRun(200, func() { r.Insert(tup) })
	contains = testing.AllocsPerRun(200, func() { r.Contains(tup) })
	return insert, contains
}

// Telemetry must be free when enabled and invisible when disabled: the
// counting paths (plain increments and atomic adds on pre-allocated blocks)
// add zero allocations over the untelemetered baseline, and the disabled
// path is a single nil check.
func TestTelemetryHotPathAllocs(t *testing.T) {
	orders := []tuple.Order{{0, 1}, {1, 0}}
	baseIns, baseCon := hotPathAllocs(New("edge", BTree, 2, orders))

	c := metrics.New()
	r := New("edge", BTree, 2, orders)
	rs := c.BindRelation(0, "edge", "btree", 2, false, 0, []string{"[0 1]", "[1 0]"})
	r.AttachMetrics(rs)
	telIns, telCon := hotPathAllocs(r)

	if telIns != baseIns {
		t.Fatalf("telemetry adds allocations to Insert: %v -> %v per op", baseIns, telIns)
	}
	if telCon != baseCon {
		t.Fatalf("telemetry adds allocations to Contains: %v -> %v per op", baseCon, telCon)
	}
	if rs.DedupHits < 200 {
		t.Fatalf("dedup hits = %d, want >= 200", rs.DedupHits)
	}
}

// The adapter counters must see traffic on every index, and agree with the
// relation-level insert counters.
func TestAdapterCounters(t *testing.T) {
	c := metrics.New()
	r := New("edge", BTree, 2, []tuple.Order{{0, 1}, {1, 0}})
	rs := c.BindRelation(0, "edge", "btree", 2, false, 0, []string{"[0 1]", "[1 0]"})
	r.AttachMetrics(rs)
	if r.Stats() != rs {
		t.Fatal("Stats() does not return the bound block")
	}

	r.Insert(tuple.Tuple{1, 2})
	r.Insert(tuple.Tuple{2, 3})
	r.Insert(tuple.Tuple{1, 2}) // duplicate
	r.Contains(tuple.Tuple{1, 2})
	it := r.Index(0).Scan()
	for _, ok := it.Next(); ok; _, ok = it.Next() {
	}

	if rs.Inserts != 2 || rs.DedupHits != 1 {
		t.Fatalf("relation counters: ins=%d dup=%d, want 2 and 1", rs.Inserts, rs.DedupHits)
	}
	primary := rs.Ops[0].View()
	if primary.Inserts != 3 || primary.Fresh != 2 {
		t.Fatalf("primary index: %+v", primary)
	}
	if primary.Lookups == 0 {
		t.Fatalf("primary index saw no lookups: %+v", primary)
	}
	if primary.Scans != 1 {
		t.Fatalf("primary index scans = %d, want 1", primary.Scans)
	}
	// Secondary indexes receive every insert too.
	secondary := rs.Ops[1].View()
	if secondary.Inserts != 3 {
		t.Fatalf("secondary index inserts = %d, want 3", secondary.Inserts)
	}
}

// Counters work for every representation the factory can build.
func TestAdapterCountersAllReps(t *testing.T) {
	for _, rep := range []Rep{BTree, Brie, EqRel, Legacy} {
		c := metrics.New()
		r := New("r", rep, 2, []tuple.Order{{0, 1}})
		rs := c.BindRelation(0, "r", rep.String(), 2, false, 0, []string{"[0 1]"})
		r.AttachMetrics(rs)
		r.Insert(tuple.Tuple{1, 2})
		r.Insert(tuple.Tuple{1, 2})
		ops := rs.Ops[0].View()
		if ops.Inserts != 2 || ops.Fresh != 1 {
			t.Errorf("%v: inserts=%d fresh=%d, want 2 and 1", rep, ops.Inserts, ops.Fresh)
		}
		if rs.Inserts != 1 || rs.DedupHits != 1 {
			t.Errorf("%v: relation ins=%d dup=%d, want 1 and 1", rep, rs.Inserts, rs.DedupHits)
		}
	}
}
