package relation

import (
	"fmt"

	"sti/internal/btree"
	"sti/internal/metrics"
	"sti/internal/tuple"
	"sti/internal/value"
)

// btreeAdapter is the dynamic adapter over a specialized B-tree instance
// (paper Fig 7). The key type K is one of the fixed-arity tuple types from
// tuples_gen.go; toKey/fromKey are the per-arity conversion glue installed
// by the generated factory.
type btreeAdapter[K btree.Key[K]] struct {
	tree    *btree.Tree[K]
	order   tuple.Order
	arity   int
	toKey   func(tuple.Tuple) K
	fromKey func(K, tuple.Tuple)
	ops     *metrics.IndexOps
}

func newBTreeAdapter[K btree.Key[K]](order tuple.Order, toKey func(tuple.Tuple) K, fromKey func(K, tuple.Tuple)) *btreeAdapter[K] {
	return &btreeAdapter[K]{
		tree:    btree.New[K](),
		order:   order,
		arity:   len(order),
		toKey:   toKey,
		fromKey: fromKey,
	}
}

func (a *btreeAdapter[K]) Arity() int                      { return a.arity }
func (a *btreeAdapter[K]) Rep() Rep                        { return BTree }
func (a *btreeAdapter[K]) Order() tuple.Order              { return a.order }
func (a *btreeAdapter[K]) Size() int                       { return a.tree.Size() }
func (a *btreeAdapter[K]) Clear()                          { a.tree.Clear() }
func (a *btreeAdapter[K]) impl() any                       { return a.tree }
func (a *btreeAdapter[K]) attachOps(ops *metrics.IndexOps) { a.ops = ops }

func (a *btreeAdapter[K]) encode(t tuple.Tuple) K {
	var enc [MaxArity]value.Value
	a.order.Encode(enc[:a.arity], t)
	return a.toKey(enc[:a.arity])
}

func (a *btreeAdapter[K]) Insert(t tuple.Tuple) bool {
	added := a.tree.Insert(a.encode(t))
	if a.ops != nil {
		a.ops.Inserts.Add(1)
		if added {
			a.ops.Fresh.Add(1)
		}
	}
	return added
}

// bulkBatch is how many encoded keys an InsertAll accumulates on the stack
// before handing them to the tree's bulk entry point.
const bulkBatch = 64

func (a *btreeAdapter[K]) InsertAll(flat []value.Value, count int) int {
	var enc [MaxArity]value.Value
	var keys [bulkBatch]K
	added, kn := 0, 0
	for i := 0; i < count; i++ {
		a.order.Encode(enc[:a.arity], flat[i*a.arity:(i+1)*a.arity])
		keys[kn] = a.toKey(enc[:a.arity])
		kn++
		if kn == bulkBatch {
			added += a.tree.InsertAll(keys[:kn])
			kn = 0
		}
	}
	added += a.tree.InsertAll(keys[:kn])
	if a.ops != nil {
		a.ops.Inserts.Add(uint64(count))
		a.ops.Fresh.Add(uint64(added))
	}
	return added
}

func (a *btreeAdapter[K]) Contains(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	return a.tree.Contains(a.encode(t))
}

func (a *btreeAdapter[K]) ContainsEncoded(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	return a.tree.Contains(a.toKey(t))
}

func (a *btreeAdapter[K]) SwapContents(other Index) {
	o, ok := other.(*btreeAdapter[K])
	if !ok || !orderEq(a.order, o.order) {
		panic(fmt.Sprintf("relation: swap of incompatible indexes (%v/%d and %v/%d)",
			a.Rep(), a.arity, other.Rep(), other.Arity()))
	}
	a.tree.Swap(o.tree)
}

func (a *btreeAdapter[K]) Scan() Iterator {
	if a.ops != nil {
		a.ops.Scans.Add(1)
	}
	return newBuffered(&btreeBatch[K]{it: a.tree.Iter(), fromKey: a.fromKey}, a.arity)
}

func (a *btreeAdapter[K]) PrefixScan(pattern tuple.Tuple, k int) Iterator {
	if a.ops != nil {
		a.ops.RangeScans.Add(1)
	}
	lo, hi := prefixBounds(pattern, k, a.arity)
	return newBuffered(&btreeBatch[K]{
		it:      a.tree.Range(a.toKey(lo), a.toKey(hi)),
		fromKey: a.fromKey,
	}, a.arity)
}

func (a *btreeAdapter[K]) AnyMatch(pattern tuple.Tuple, k int) bool {
	if a.ops != nil {
		a.ops.Probes.Add(1)
	}
	if k == 0 {
		return a.tree.Size() > 0
	}
	lo, hi := prefixBounds(pattern, k, a.arity)
	it := a.tree.Range(a.toKey(lo), a.toKey(hi))
	_, ok := it.Next()
	return ok
}

// PartitionScan splits the full scan at tree separator keys into up to n
// disjoint, collectively exhaustive ranges for parallel evaluation.
func (a *btreeAdapter[K]) PartitionScan(n int) []Iterator {
	if a.ops != nil {
		a.ops.Partitions.Add(1)
	}
	seps := a.tree.SeparatorKeys(n)
	if len(seps) == 0 {
		return []Iterator{a.Scan()}
	}
	var out []Iterator
	var lo *K
	for i := range seps {
		hi := seps[i]
		out = append(out, newBuffered(&btreeBatch[K]{
			it:      a.tree.SeekBefore(lo, &hi),
			fromKey: a.fromKey,
		}, a.arity))
		lo = &seps[i]
	}
	out = append(out, newBuffered(&btreeBatch[K]{
		it:      a.tree.SeekBefore(lo, nil),
		fromKey: a.fromKey,
	}, a.arity))
	return out
}

// btreeBatch adapts a concrete B-tree iterator to the wide batcher call.
type btreeBatch[K btree.Key[K]] struct {
	it      btree.Iter[K]
	fromKey func(K, tuple.Tuple)
}

func (s *btreeBatch[K]) nextBatch(dst []tuple.Tuple) int {
	for i := range dst {
		k, ok := s.it.Next()
		if !ok {
			return i
		}
		s.fromKey(k, dst[i])
	}
	return len(dst)
}

// prefixBounds builds the lower and upper bound patterns of a prefix search:
// encoded positions 0..k-1 carry the fixed values, the rest range over the
// whole 32-bit domain.
func prefixBounds(pattern tuple.Tuple, k, arity int) (lo, hi tuple.Tuple) {
	lo = make(tuple.Tuple, arity)
	hi = make(tuple.Tuple, arity)
	copy(lo, pattern[:k])
	copy(hi, pattern[:k])
	for i := k; i < arity; i++ {
		lo[i] = 0
		hi[i] = ^value.Value(0)
	}
	return lo, hi
}

func orderEq(a, b tuple.Order) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
