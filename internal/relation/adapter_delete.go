package relation

import (
	"sti/internal/tuple"
)

// Delete implementations of the five adapters. They live in one file because
// deletion is a single concern threaded through the whole de-specialization
// seam: every adapter encodes the source-order tuple exactly as its Insert
// does and asks the underlying structure to remove it.

func (a *btreeAdapter[K]) Delete(t tuple.Tuple) bool {
	removed := a.tree.Remove(a.encode(t))
	if a.ops != nil && removed {
		a.ops.Deletes.Add(1)
	}
	return removed
}

func (a *brieAdapter) Delete(t tuple.Tuple) bool {
	removed := a.trie.Remove(a.encode(t))
	if a.ops != nil && removed {
		a.ops.Deletes.Add(1)
	}
	return removed
}

func (a *legacyAdapter) Delete(t tuple.Tuple) bool {
	removed := a.tree.Remove(t)
	if a.ops != nil && removed {
		a.ops.Deletes.Add(1)
	}
	return removed
}

func (a *nullaryAdapter) Delete(t tuple.Tuple) bool {
	was := a.set
	a.set = false
	if a.ops != nil && was {
		a.ops.Deletes.Add(1)
	}
	return was
}

func (a *eqrelAdapter) Delete(t tuple.Tuple) bool {
	panic("relation: eqrel does not support deletion")
}
