package relation

import (
	"math/rand"
	"testing"

	"sti/internal/store"
	"sti/internal/tuple"
	"sti/internal/value"
)

// testTier hands out tables from a scratch store.
type testTier struct {
	t *testing.T
	s *store.Store
}

func newTestTier(t *testing.T, opts store.Options) *testTier {
	t.Helper()
	s, err := store.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return &testTier{t: t, s: s}
}

func (tt *testTier) Table(rel string, idx int, order tuple.Order) *store.Table {
	tab, err := tt.s.Table(rel+"."+string(rune('0'+idx)), tuple.KeySize(len(order)))
	if err != nil {
		tt.t.Fatalf("Table: %v", err)
	}
	return tab
}

func (tt *testTier) Gate(rel, reason string) {}

func collect(t *testing.T, it Iterator, arity int) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	for {
		tu, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, append(tuple.Tuple(nil), tu...))
	}
}

func tuplesEq(a, b []tuple.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if tuple.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// TestPersistMatchesBTree drives a persistent index and a B-tree index with
// the same random operation stream — under a non-identity order and a flush
// threshold small enough to cross segment and compaction boundaries — and
// requires every observable to agree: membership, size, full scans, prefix
// scans at every depth, existence probes, and partitioned scans.
func TestPersistMatchesBTree(t *testing.T) {
	const arity = 3
	order := tuple.Order{2, 0, 1}
	tier := newTestTier(t, store.Options{FlushKeys: 64, MaxSegments: 2})
	p := NewPersistent("r", arity, []tuple.Order{order}, tier)
	if p == nil {
		t.Fatal("NewPersistent declined")
	}
	pi := p.Primary()
	bi := NewIndex(BTree, order)
	if pi.Rep() != Persist || pi.Rep().String() != "persist" {
		t.Fatalf("Rep = %v", pi.Rep())
	}

	rng := rand.New(rand.NewSource(42))
	randT := func() tuple.Tuple {
		return tuple.Tuple{value.Value(rng.Intn(16)), value.Value(rng.Intn(16)), value.Value(rng.Intn(16))}
	}
	checkScans := func(step int) {
		t.Helper()
		if pi.Size() != bi.Size() {
			t.Fatalf("step %d: Size %d != %d", step, pi.Size(), bi.Size())
		}
		if !tuplesEq(collect(t, pi.Scan(), arity), collect(t, bi.Scan(), arity)) {
			t.Fatalf("step %d: Scan mismatch", step)
		}
		pat := randT()
		enc := make(tuple.Tuple, arity)
		order.Encode(enc, pat)
		for k := 0; k <= arity; k++ {
			if pi.AnyMatch(enc, k) != bi.AnyMatch(enc, k) {
				t.Fatalf("step %d: AnyMatch k=%d mismatch on %v", step, k, enc)
			}
			if !tuplesEq(collect(t, pi.PrefixScan(enc, k), arity), collect(t, bi.PrefixScan(enc, k), arity)) {
				t.Fatalf("step %d: PrefixScan k=%d mismatch on %v", step, k, enc)
			}
		}
		var part []tuple.Tuple
		for _, it := range pi.PartitionScan(4) {
			part = append(part, collect(t, it, arity)...)
		}
		if !tuplesEq(part, collect(t, bi.Scan(), arity)) {
			t.Fatalf("step %d: PartitionScan union mismatch", step)
		}
	}

	for step := 0; step < 3000; step++ {
		tu := randT()
		switch rng.Intn(5) {
		case 0:
			if pi.Delete(tu) != bi.Delete(tu) {
				t.Fatalf("step %d: Delete(%v) disagrees", step, tu)
			}
		case 1:
			enc := make(tuple.Tuple, arity)
			order.Encode(enc, tu)
			if pi.ContainsEncoded(enc) != bi.ContainsEncoded(enc) {
				t.Fatalf("step %d: ContainsEncoded(%v) disagrees", step, enc)
			}
		default:
			if pi.Insert(tu) != bi.Insert(tu) {
				t.Fatalf("step %d: Insert(%v) disagrees", step, tu)
			}
		}
		if pi.Contains(tu) != bi.Contains(tu) {
			t.Fatalf("step %d: Contains(%v) disagrees", step, tu)
		}
		if step%500 == 499 {
			checkScans(step)
		}
	}
	checkScans(-1)

	// InsertAll bulk path.
	const bulk = 300
	flat := make([]value.Value, 0, bulk*arity)
	for i := 0; i < bulk; i++ {
		flat = append(flat, randT()...)
	}
	if pa, ba := pi.InsertAll(flat, bulk), bi.InsertAll(flat, bulk); pa != ba {
		t.Fatalf("InsertAll added %d != %d", pa, ba)
	}
	checkScans(-2)

	pi.Clear()
	bi.Clear()
	checkScans(-3)
}

// TestPersistGatesAtMaxArity verifies the tier declines out-of-range
// arities instead of building a broken relation.
func TestPersistGatesAtMaxArity(t *testing.T) {
	tier := newTestTier(t, store.Options{})
	if r := NewPersistent("r", 0, nil, tier); r != nil {
		t.Fatal("nullary relation persisted")
	}
	big := make(tuple.Order, MaxArity+1)
	for i := range big {
		big[i] = i
	}
	if r := NewPersistent("r", MaxArity+1, []tuple.Order{big}, tier); r != nil {
		t.Fatal("over-arity relation persisted")
	}
}
