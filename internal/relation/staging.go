package relation

import (
	"fmt"
	"sync"

	"sti/internal/tuple"
	"sti/internal/value"
)

// StagingBuffer collects source-order tuples destined for one relation on
// behalf of one parallel worker. Workers append locally without any
// synchronization; at the iteration barrier the coordinator merges every
// worker's buffer into the relation in bulk (Relation.InsertAll),
// de-duplicating against the primary index. Under semi-naive evaluation the
// deferral is invisible: inserts land in relations no concurrent scan of
// the same query reads, so merge-at-barrier is equivalent to locked
// in-place inserts.
//
// Tuples are packed back to back in a flat backing array, so a buffer costs
// one allocation amortized regardless of how many tuples it stages.
type StagingBuffer struct {
	arity int
	flat  []value.Value
	count int
}

// NewStagingBuffer returns an empty buffer for tuples of the given arity
// (0 is allowed: nullary tuples stage as bare counts).
func NewStagingBuffer(arity int) *StagingBuffer {
	return &StagingBuffer{arity: arity}
}

// Arity reports the tuple width.
func (b *StagingBuffer) Arity() int { return b.arity }

// Len reports the number of staged tuples (including duplicates: staging
// never de-duplicates, the merge does).
func (b *StagingBuffer) Len() int { return b.count }

// Add copies a source-order tuple into the buffer.
func (b *StagingBuffer) Add(t tuple.Tuple) {
	b.flat = append(b.flat, t[:b.arity]...)
	b.count++
}

// Tuple returns a view of the i-th staged tuple, valid until the next Add.
func (b *StagingBuffer) Tuple(i int) tuple.Tuple {
	return tuple.Tuple(b.flat[i*b.arity : (i+1)*b.arity])
}

// Reset empties the buffer, keeping its backing array for reuse.
func (b *StagingBuffer) Reset() {
	b.flat = b.flat[:0]
	b.count = 0
}

// parallelMergeMin is the fresh-tuple count above which secondary indexes
// merge on their own goroutines. Below it the goroutine setup outweighs the
// per-index work.
const parallelMergeMin = 512

// InsertAll merges staged tuples into the relation in bulk: the paper's
// parallel-insert discipline recovered without thread-safe stores. Every
// tuple is inserted into the primary index first, which de-duplicates both
// against the relation's existing contents and across buffers; only the
// fresh tuples propagate to the secondary indexes. When the fresh set is
// large, each secondary index merges on its own goroutine — an index is
// only ever touched by one goroutine, so no locking is needed. Returns the
// number of tuples newly added.
func (r *Relation) InsertAll(bufs ...*StagingBuffer) int {
	primary := r.indexes[0]
	collect := len(r.indexes) > 1
	added, attempted := 0, 0
	var fresh []value.Value
	for _, b := range bufs {
		if b == nil || b.count == 0 {
			continue
		}
		if b.arity != r.arity {
			panic(fmt.Sprintf("relation %s: staged arity %d does not match arity %d", r.Name, b.arity, r.arity))
		}
		attempted += b.count
		for i := 0; i < b.count; i++ {
			t := b.Tuple(i)
			if r.counts != nil {
				r.counts[r.key(t)]++
			}
			if primary.Insert(t) {
				added++
				if collect {
					fresh = append(fresh, t...)
				}
			}
		}
	}
	if r.stats != nil {
		r.stats.CountBulk(attempted, added)
	}
	if !collect || added == 0 {
		return added
	}
	secondaries := r.indexes[1:]
	if added >= parallelMergeMin && len(secondaries) > 1 {
		var wg sync.WaitGroup
		for _, idx := range secondaries {
			wg.Add(1)
			go func(idx Index) {
				defer wg.Done()
				idx.InsertAll(fresh, added)
			}(idx)
		}
		wg.Wait()
		return added
	}
	for _, idx := range secondaries {
		idx.InsertAll(fresh, added)
	}
	return added
}
