package relation

import (
	"sti/internal/tuple"
	"sti/internal/value"
)

// Support counts for counting-based delete propagation. A counting relation
// carries a sidecar map from tuple to the number of derivations that produced
// it; the indexes still store each tuple once (set semantics), the sidecar
// remembers multiplicity. Retraction then needs no rederivation for
// non-recursive strata: a tuple dies exactly when its count reaches zero.
//
// The sidecar is maintained at the same seam as the indexes — Insert and
// InsertAll bump it per attempt (not per fresh tuple: duplicates are the
// whole point), Clear empties it, SwapContents exchanges it, Delete drops the
// entry. All of these run under the engine's write section, so the map needs
// no locking.

// countKey is a tuple flattened into a fixed-size array so it can key a map.
// Slots past the relation's arity stay zero.
type countKey [MaxArity]value.Value

func (r *Relation) key(t tuple.Tuple) countKey {
	var k countKey
	copy(k[:], t)
	return k
}

// EnableCounting attaches an empty support-count sidecar. Called once at
// engine construction for relations the translator marked Counting.
func (r *Relation) EnableCounting() {
	r.counts = make(map[countKey]int32)
}

// Counting reports whether the relation maintains support counts.
func (r *Relation) Counting() bool { return r.counts != nil }

// Count returns the support count of a source-order tuple (0 if absent).
func (r *Relation) Count(t tuple.Tuple) int32 { return r.counts[r.key(t)] }

// AddCount adds n derivations of t, reporting whether t transitioned from
// unsupported to supported; on that transition t is also physically inserted
// into the indexes. This is the count-merge entry point: the source buffer's
// per-tuple multiplicities fold into the destination in one call each.
func (r *Relation) AddCount(t tuple.Tuple, n int32) bool {
	k := r.key(t)
	old := r.counts[k]
	r.counts[k] = old + n
	if old != 0 {
		return false
	}
	added := r.indexes[0].Insert(t)
	for _, idx := range r.indexes[1:] {
		idx.Insert(t)
	}
	if r.stats != nil {
		r.stats.CountInsert(added)
	}
	return true
}

// DecCount removes n derivations of t, clamping at zero, and reports whether
// t just lost its last support. The tuple stays in the indexes and the
// zero-count entry stays in the sidecar: physical removal is deferred to the
// delete program's final subtract pass, which must still see the old state
// while other strata propagate.
func (r *Relation) DecCount(t tuple.Tuple, n int32) bool {
	k := r.key(t)
	old, ok := r.counts[k]
	if !ok || old == 0 {
		return false
	}
	nw := old - n
	if nw < 0 {
		nw = 0
	}
	r.counts[k] = nw
	return nw == 0
}

// RangeCounts calls fn for every supported tuple with its count. The yielded
// tuple is reused across calls; fn must not retain it. Iteration order is
// unspecified — callers fold into sets, so order cannot be observed.
func (r *Relation) RangeCounts(fn func(t tuple.Tuple, n int32)) {
	buf := make(tuple.Tuple, r.arity)
	for k, n := range r.counts {
		if n == 0 {
			continue
		}
		copy(buf, k[:r.arity])
		fn(buf, n)
	}
}

// Delete removes a source-order tuple from every index and drops its support
// entry, reporting whether the primary index contained it.
func (r *Relation) Delete(t tuple.Tuple) bool {
	removed := r.indexes[0].Delete(t)
	if removed {
		for _, idx := range r.indexes[1:] {
			idx.Delete(t)
		}
		if r.stats != nil {
			r.stats.CountDelete()
		}
	}
	if r.counts != nil {
		delete(r.counts, r.key(t))
	}
	return removed
}
