package relation

import (
	"fmt"
	"sync"

	"sti/internal/metrics"
	"sti/internal/tuple"
	"sti/internal/value"
)

// Sharded relations hash-partition their tuples by one source column (the
// shard key) across N sub-indexes, so shard-parallel evaluation can run one
// semi-naive fixpoint per shard and exchange out-of-shard delta tuples at
// the existing staging-buffer merge barriers (Gilray et al., "Higher-Order,
// Data-Parallel Structured Deduction").
//
// The wrapper sits *behind* the de-specialized Index interface: every
// operation routes to the owning shard when the key is bound (point inserts,
// deletes, membership, prefix scans whose encoded prefix covers the key) and
// falls back to an order-preserving k-way merge over all shards otherwise.
// Because each shard is itself a sorted adapter (B-tree and brie both
// enumerate in encoded lexicographic order), the merged enumeration is
// byte-identical to the unsharded adapter's — sharding changes where tuples
// live, never what a reader observes.

// shardHashMul is Knuth's multiplicative hash constant (2^32 / phi). The
// shard of a key value is a multiplicative hash mod the shard count, which
// spreads the dense small integers the interner produces far better than a
// plain modulus.
const shardHashMul = 2654435761

// ShardOf returns the owning shard of a key value under n shards.
func ShardOf(v value.Value, n int) int {
	return int(uint32(v) * shardHashMul % uint32(n))
}

// shardedIndex implements Index over n sub-adapters of identical
// representation and order. Tuples are placed by ShardOf of their key
// column; sub-adapter i holds exactly the tuples whose key hashes to i.
type shardedIndex struct {
	subs  []Index
	order tuple.Order
	// key is the shard key as a source-coordinate column; keyEnc is the same
	// column's position in encoded order (order[keyEnc] == key), used to
	// route encoded-order operations like PrefixScan.
	key    int
	keyEnc int
}

// newShardedIndex builds a sharded index of n sub-adapters. key is the
// source-coordinate shard column.
func newShardedIndex(rep Rep, order tuple.Order, n, key int) *shardedIndex {
	if n < 1 {
		panic(fmt.Sprintf("relation: sharded index needs at least 1 shard, got %d", n))
	}
	if key < 0 || key >= len(order) {
		panic(fmt.Sprintf("relation: shard key %d out of range for arity %d", key, len(order)))
	}
	s := &shardedIndex{order: order, key: key, keyEnc: -1}
	for p, src := range order {
		if src == key {
			s.keyEnc = p
			break
		}
	}
	if s.keyEnc < 0 {
		panic(fmt.Sprintf("relation: order %v does not place shard key %d", order, key))
	}
	for i := 0; i < n; i++ {
		s.subs = append(s.subs, NewIndex(rep, order))
	}
	return s
}

func (s *shardedIndex) Arity() int         { return len(s.order) }
func (s *shardedIndex) Rep() Rep           { return s.subs[0].Rep() }
func (s *shardedIndex) Order() tuple.Order { return s.order }

// impl returns the wrapper itself: there is no single concrete tree behind a
// sharded index, so the generated static instructions never specialize over
// one (the instruction selector forces generic opcodes for sharded
// relations).
func (s *shardedIndex) impl() any { return s }

// attachOps installs the same counter block on every shard; the counters are
// atomic, so per-shard traffic aggregates into one per-index view.
func (s *shardedIndex) attachOps(ops *metrics.IndexOps) {
	for _, sub := range s.subs {
		sub.attachOps(ops)
	}
}

// shard returns the owning sub-index of a source-order tuple.
func (s *shardedIndex) shard(t tuple.Tuple) Index {
	return s.subs[ShardOf(t[s.key], len(s.subs))]
}

func (s *shardedIndex) Insert(t tuple.Tuple) bool { return s.shard(t).Insert(t) }
func (s *shardedIndex) Delete(t tuple.Tuple) bool { return s.shard(t).Delete(t) }
func (s *shardedIndex) Contains(t tuple.Tuple) bool {
	return s.shard(t).Contains(t)
}

func (s *shardedIndex) ContainsEncoded(t tuple.Tuple) bool {
	return s.subs[ShardOf(t[s.keyEnc], len(s.subs))].ContainsEncoded(t)
}

func (s *shardedIndex) InsertAll(flat []value.Value, count int) int {
	arity := len(s.order)
	if len(s.subs) == 1 {
		return s.subs[0].InsertAll(flat, count)
	}
	// Bucket tuples per shard so each sub-adapter still gets one bulk call.
	parts := make([][]value.Value, len(s.subs))
	for i := 0; i < count; i++ {
		t := flat[i*arity : (i+1)*arity]
		sh := ShardOf(t[s.key], len(s.subs))
		parts[sh] = append(parts[sh], t...)
	}
	added := 0
	for sh, p := range parts {
		if len(p) > 0 {
			added += s.subs[sh].InsertAll(p, len(p)/arity)
		}
	}
	return added
}

func (s *shardedIndex) Size() int {
	n := 0
	for _, sub := range s.subs {
		n += sub.Size()
	}
	return n
}

func (s *shardedIndex) Clear() {
	for _, sub := range s.subs {
		sub.Clear()
	}
}

func (s *shardedIndex) SwapContents(other Index) {
	o, ok := other.(*shardedIndex)
	if !ok || len(o.subs) != len(s.subs) || o.key != s.key || !orderEq(o.order, s.order) {
		panic(fmt.Sprintf("relation: swap of incompatible sharded indexes (%v and %v)", s.Rep(), other.Rep()))
	}
	for i := range s.subs {
		s.subs[i].SwapContents(o.subs[i])
	}
}

func (s *shardedIndex) Scan() Iterator {
	if len(s.subs) == 1 {
		return s.subs[0].Scan()
	}
	its := make([]Iterator, len(s.subs))
	for i, sub := range s.subs {
		its[i] = sub.Scan()
	}
	return newMergeIter(its)
}

func (s *shardedIndex) PrefixScan(pattern tuple.Tuple, k int) Iterator {
	if len(s.subs) == 1 {
		return s.subs[0].PrefixScan(pattern, k)
	}
	if s.keyEnc < k {
		// The encoded prefix binds the shard key: only one shard can hold
		// matches. This is the payoff of keying shards on the program's
		// most-bound column — the common inner-loop searches stay
		// shard-local instead of fanning out.
		return s.subs[ShardOf(pattern[s.keyEnc], len(s.subs))].PrefixScan(pattern, k)
	}
	its := make([]Iterator, len(s.subs))
	for i, sub := range s.subs {
		its[i] = sub.PrefixScan(pattern, k)
	}
	return newMergeIter(its)
}

func (s *shardedIndex) AnyMatch(pattern tuple.Tuple, k int) bool {
	if s.keyEnc < k {
		return s.subs[ShardOf(pattern[s.keyEnc], len(s.subs))].AnyMatch(pattern, k)
	}
	for _, sub := range s.subs {
		if sub.AnyMatch(pattern, k) {
			return true
		}
	}
	return false
}

// PartitionScan splits the scan along shard boundaries: with n >= #shards
// every shard becomes its own partition (the shape shard-parallel fixpoints
// rely on: worker i scans shard i), otherwise consecutive shards are chained
// round-robin into n partitions.
func (s *shardedIndex) PartitionScan(n int) []Iterator {
	if n <= 1 {
		return []Iterator{s.Scan()}
	}
	if n >= len(s.subs) {
		its := make([]Iterator, len(s.subs))
		for i, sub := range s.subs {
			its[i] = sub.Scan()
		}
		return its
	}
	its := make([]Iterator, n)
	for i := range its {
		var group []Iterator
		for sh := i; sh < len(s.subs); sh += n {
			group = append(group, s.subs[sh].Scan())
		}
		its[i] = &chainIter{its: group}
	}
	return its
}

// mergeIter is an order-preserving k-way merge over sorted encoded-order
// iterators. Each sub-iterator's head tuple stays valid until that iterator
// advances (the Iterator contract), and the merge only advances the
// sub-iterator whose head it yielded on the *next* Next call, so yielded
// tuples obey the same contract.
type mergeIter struct {
	its   []Iterator
	heads []tuple.Tuple
	last  int // sub-iterator whose head was yielded last, -1 initially
}

func newMergeIter(its []Iterator) *mergeIter {
	m := &mergeIter{its: its, heads: make([]tuple.Tuple, len(its)), last: -1}
	for i, it := range its {
		if t, ok := it.Next(); ok {
			m.heads[i] = t
		}
	}
	return m
}

func (m *mergeIter) Next() (tuple.Tuple, bool) {
	if m.last >= 0 {
		if t, ok := m.its[m.last].Next(); ok {
			m.heads[m.last] = t
		} else {
			m.heads[m.last] = nil
		}
		m.last = -1
	}
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best < 0 || tuple.Compare(h, m.heads[best]) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	m.last = best
	return m.heads[best], true
}

// chainIter concatenates iterators back to back.
type chainIter struct {
	its []Iterator
}

func (c *chainIter) Next() (tuple.Tuple, bool) {
	for len(c.its) > 0 {
		if t, ok := c.its[0].Next(); ok {
			return t, true
		}
		c.its = c.its[1:]
	}
	return nil, false
}

// --- relation-level sharding ---

// NewSharded creates a relation whose indexes are each hash-partitioned into
// the given number of shards on the given source column. Orders follow the
// same rules as New. EqRel and nullary relations cannot shard.
func NewSharded(name string, rep Rep, arity int, orders []tuple.Order, shards, key int) *Relation {
	if arity == 0 || rep == EqRel {
		panic(fmt.Sprintf("relation %s: %v/arity-%d relations cannot shard", name, rep, arity))
	}
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(arity)}
	}
	r := &Relation{Name: name, arity: arity, rep: rep, shards: shards, shardKey: key}
	for _, o := range orders {
		if len(o) != arity {
			panic(fmt.Sprintf("relation %s: order %v does not match arity %d", name, o, arity))
		}
		r.indexes = append(r.indexes, newShardedIndex(rep, o, shards, key))
	}
	return r
}

// Sharded reports whether the relation's indexes are hash-partitioned.
func (r *Relation) Sharded() bool { return r.shards > 0 }

// ShardCount reports the number of shards, or 0 for unsharded relations.
func (r *Relation) ShardCount() int { return r.shards }

// ShardKeyCol reports the source column tuples are partitioned on; it is
// meaningless (0) for unsharded relations.
func (r *Relation) ShardKeyCol() int { return r.shardKey }

// shardRouteMin is the routed-tuple count above which per-shard merges run
// on their own goroutines, mirroring parallelMergeMin for secondaries.
const shardRouteMin = 512

// InsertAllSharded merges staged per-worker buffers into a sharded relation:
// the cross-shard exchange step of shard-parallel evaluation. Tuples are
// routed to their owning shard by partition hash, then every shard merges
// its routed tuples independently (dedup against the shard's primary
// sub-index, fresh tuples propagated to the same shard of every secondary) —
// shards never touch each other's sub-indexes, so the per-shard merges run
// on their own goroutines without locks.
//
// bufs[w] is worker w's buffer (nil entries allowed). Returns the number of
// tuples newly added; routed[s] counts tuples owned by shard s (the skew
// signal); exchanged counts tuples that crossed shards — produced by worker
// w but owned by shard s != w mod shards, i.e. the delta-exchange volume
// when workers are aligned with shards.
func (r *Relation) InsertAllSharded(bufs []*StagingBuffer) (added int, routed []uint64, exchanged uint64) {
	primary, ok := r.indexes[0].(*shardedIndex)
	if !ok {
		panic(fmt.Sprintf("relation %s: InsertAllSharded on unsharded relation", r.Name))
	}
	shards := len(primary.subs)
	routed = make([]uint64, shards)
	parts := make([][]value.Value, shards)
	attempted := 0
	for w, b := range bufs {
		if b == nil || b.count == 0 {
			continue
		}
		if b.arity != r.arity {
			panic(fmt.Sprintf("relation %s: staged arity %d does not match arity %d", r.Name, b.arity, r.arity))
		}
		attempted += b.count
		home := w % shards
		for i := 0; i < b.count; i++ {
			t := b.Tuple(i)
			if r.counts != nil {
				r.counts[r.key(t)]++
			}
			sh := ShardOf(t[primary.key], shards)
			routed[sh]++
			if sh != home {
				exchanged++
			}
			parts[sh] = append(parts[sh], t...)
		}
	}
	if attempted == 0 {
		if r.stats != nil {
			r.stats.CountBulk(0, 0)
		}
		return 0, routed, 0
	}
	freshCounts := make([]int, shards)
	merge := func(sh int) {
		flat := parts[sh]
		n := len(flat) / r.arity
		if n == 0 {
			return
		}
		sub := primary.subs[sh]
		// Dedup through the shard's primary, compacting fresh tuples to the
		// front of the routed slice so secondaries bulk-insert exactly the
		// fresh set.
		fresh := 0
		for i := 0; i < n; i++ {
			t := flat[i*r.arity : (i+1)*r.arity]
			if sub.Insert(t) {
				copy(flat[fresh*r.arity:], t)
				fresh++
			}
		}
		freshCounts[sh] = fresh
		if fresh == 0 {
			return
		}
		for _, idx := range r.indexes[1:] {
			idx.(*shardedIndex).subs[sh].InsertAll(flat[:fresh*r.arity], fresh)
		}
	}
	if attempted >= shardRouteMin && shards > 1 {
		var wg sync.WaitGroup
		for sh := 0; sh < shards; sh++ {
			if len(parts[sh]) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh int) {
				defer wg.Done()
				merge(sh)
			}(sh)
		}
		wg.Wait()
	} else {
		for sh := 0; sh < shards; sh++ {
			merge(sh)
		}
	}
	for _, f := range freshCounts {
		added += f
	}
	if r.stats != nil {
		r.stats.CountBulk(attempted, added)
	}
	return added, routed, exchanged
}

// ShardImpls exposes the per-shard concrete stores of a sharded index plus
// the encoded position of its partition key, for the interpreter's sharded
// specialized instructions (which bind one concrete tree per shard and route
// by partition hash at runtime). Returns (nil, -1) for unsharded indexes.
func ShardImpls(idx Index) ([]any, int) {
	s, ok := idx.(*shardedIndex)
	if !ok {
		return nil, -1
	}
	impls := make([]any, len(s.subs))
	for i, sub := range s.subs {
		impls[i] = sub.impl()
	}
	return impls, s.keyEnc
}

// CheckShardLocal verifies the shard-local-writes invariant at runtime:
// every tuple in every shard of every index hashes to the shard holding it.
// It is O(size) and meant for tests and debug assertions, returning the
// first violation found or nil.
func (r *Relation) CheckShardLocal() error {
	for ii, idx := range r.indexes {
		s, ok := idx.(*shardedIndex)
		if !ok {
			if r.Sharded() {
				return fmt.Errorf("relation %s: index %d is not sharded", r.Name, ii)
			}
			continue
		}
		for sh, sub := range s.subs {
			it := sub.Scan()
			for t, ok := it.Next(); ok; t, ok = it.Next() {
				if got := ShardOf(t[s.keyEnc], len(s.subs)); got != sh {
					return fmt.Errorf("relation %s index %d: tuple %v owned by shard %d held by shard %d",
						r.Name, ii, t, got, sh)
				}
			}
		}
	}
	return nil
}
