// Package relation implements the de-specialization layer of the paper (§3):
// it wraps the specialized data structures (internal/btree, internal/brie,
// internal/eqrel) behind dynamic adapters so a virtual execution environment
// can use them, after shrinking their specialization space to
// {representation × arity}:
//
//   - all lexicographic orders are reduced to the natural one by re-encoding
//     tuples on insert (tuple.Order),
//   - all element types are reduced to 32-bit words (internal/value),
//   - the remaining {representation × arity} space is small enough to
//     pre-instantiate: a generated factory covers arities 0..16 (Fig 7).
//
// Two access paths exist, matching the paper's §4.1 ablation:
//
//   - the *dynamic adapter* path: every operation goes through the Index
//     interface with []Value tuples, and scans go through a 128-entry
//     buffered iterator that amortizes interface-call overhead (§3);
//   - the *static* path: the interpreter's generated specialized
//     instructions type-assert the concrete tree out of the adapter and
//     operate on it with fixed-arity array tuples and concrete iterators
//     (§4.1), paying no per-tuple interface dispatch.
package relation

import (
	"fmt"

	"sti/internal/metrics"
	"sti/internal/tuple"
	"sti/internal/value"
)

// Rep identifies the data-structure implementation backing an index.
type Rep uint8

// The index representations in the engine's portfolio (paper §2).
const (
	BTree Rep = iota
	Brie
	EqRel
	Legacy // B-tree with a runtime-comparator (the legacy interpreter's store, §5.1)
	// Persist is the durable tier (internal/store): an LSM table keyed by
	// the order-preserving byte codec. It has no specialized static
	// instructions — every access crosses the dynamic adapter, which is
	// exactly what de-specialization buys: a sixth representation slots into
	// the portfolio with zero interpreter changes.
	Persist
)

// String returns the source-language spelling of the representation.
func (r Rep) String() string {
	switch r {
	case BTree:
		return "btree"
	case Brie:
		return "brie"
	case EqRel:
		return "eqrel"
	case Legacy:
		return "legacy"
	case Persist:
		return "persist"
	default:
		return fmt.Sprintf("rep(%d)", uint8(r))
	}
}

// MaxArity is the largest relation arity with pre-instantiated specialized
// structures. The paper observed up to 16 in practice (§3).
const MaxArity = 16

// Iterator enumerates tuples. Next returns ok=false when exhausted. The
// yielded slice may be reused by subsequent Next calls on the same iterator;
// it remains valid until then.
type Iterator interface {
	Next() (tuple.Tuple, bool)
}

// batcher is the wide-call interface that the buffered iterator uses to pull
// many tuples per dynamic dispatch (paper §3: "one virtual call ... for
// every 128 read requests"). dst slots are fully-allocated tuples that the
// implementation fills in place.
type batcher interface {
	nextBatch(dst []tuple.Tuple) int
}

// Index is the dynamic adapter interface over a de-specialized data
// structure (paper Fig 7). Tuples cross this interface in *encoded* (index)
// order; callers that need source order decode with Order().Decode, or avoid
// decoding entirely via static reordering (§4.2).
type Index interface {
	// Arity is the tuple width.
	Arity() int
	// Rep is the backing implementation.
	Rep() Rep
	// Order is the lexicographic order this index maintains, as a
	// permutation from source positions to encoded positions.
	Order() tuple.Order

	// Insert adds a tuple given in source order, reporting whether it was
	// newly added.
	Insert(t tuple.Tuple) bool
	// InsertAll bulk-inserts count source-order tuples packed back to back
	// in flat (len(flat) == count*Arity()), reporting how many were newly
	// added. It is the merge entry point of the staging-buffer path: one
	// dynamic dispatch covers the whole batch instead of one per tuple.
	InsertAll(flat []value.Value, count int) int
	// Delete removes a tuple given in source order, reporting whether it was
	// present. It is the retraction entry point of delete propagation and
	// runs only between scans (under the engine's write section), so
	// implementations may restructure freely; iterators obtained before a
	// Delete are invalidated. EqRel indexes cannot delete (the union-find
	// has no per-pair removal) and panic; translation gates them out.
	Delete(t tuple.Tuple) bool
	// Contains tests membership of a tuple given in source order.
	Contains(t tuple.Tuple) bool
	// ContainsEncoded tests membership of a tuple given in encoded order.
	ContainsEncoded(t tuple.Tuple) bool
	// Size is the number of stored tuples.
	Size() int
	// Clear removes all tuples.
	Clear()
	// SwapContents exchanges the stored tuples with another index of the
	// same representation, arity, and order. It panics otherwise: swapping
	// mismatched indexes is an engine bug, not a user error.
	SwapContents(other Index)

	// Scan enumerates all tuples in encoded lexicographic order.
	Scan() Iterator
	// PrefixScan enumerates, in encoded lexicographic order, tuples whose
	// first k encoded elements equal pattern[0:k].
	PrefixScan(pattern tuple.Tuple, k int) Iterator
	// AnyMatch reports whether at least one tuple matches the first k
	// encoded elements of pattern (k == 0 means "relation non-empty").
	AnyMatch(pattern tuple.Tuple, k int) bool
	// PartitionScan splits a full scan into up to n independent iterators
	// covering disjoint, collectively exhaustive tuple ranges, for parallel
	// evaluation.
	PartitionScan(n int) []Iterator

	// impl exposes the concrete specialized structure (e.g. a
	// *btree.Tree[Tup3]) to the generated static instructions.
	impl() any

	// attachOps installs telemetry counters on the adapter. nil (the
	// default) disables counting; every adapter operation then pays one nil
	// check and nothing else. Counters only observe traffic that crosses
	// the dynamic adapter — the interpreter's static instructions bypass
	// the adapter (and its counters) by design.
	attachOps(*metrics.IndexOps)
}

// Impl returns the concrete specialized data structure behind idx, for use
// by the interpreter's generated specialized instructions.
func Impl(idx Index) any { return idx.impl() }

// BufferSize is the batch width of the buffered iterator (paper §3).
const BufferSize = 128

// buffered amortizes dynamic-dispatch cost: one nextBatch interface call
// refills BufferSize tuples. Returned tuples point into the buffer and stay
// valid until the buffer is next refilled, i.e. for at least BufferSize
// subsequent Next calls — long enough for any nested-loop consumer that
// reads the tuple before advancing this iterator again.
type buffered struct {
	src   batcher
	slots []tuple.Tuple
	n     int // filled
	i     int // next to yield
	done  bool
}

// newBuffered wraps src in a BufferSize-entry buffer for tuples of the given
// arity.
func newBuffered(src batcher, arity int) *buffered {
	b := &buffered{src: src, slots: make([]tuple.Tuple, BufferSize)}
	backing := make([]value.Value, BufferSize*arity)
	for i := range b.slots {
		b.slots[i] = backing[i*arity : (i+1)*arity : (i+1)*arity]
	}
	return b
}

func (b *buffered) Next() (tuple.Tuple, bool) {
	if b.i >= b.n {
		if b.done {
			return nil, false
		}
		b.n = b.src.nextBatch(b.slots)
		b.i = 0
		if b.n < len(b.slots) {
			b.done = true
		}
		if b.n == 0 {
			return nil, false
		}
	}
	t := b.slots[b.i]
	b.i++
	return t, true
}

// emptyIter is an Iterator with no tuples.
type emptyIter struct{}

func (emptyIter) Next() (tuple.Tuple, bool) { return nil, false }
