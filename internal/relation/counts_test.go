package relation

import (
	"math/rand"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

// TestIndexDeleteContract exercises the Delete seam of every representation:
// hits and misses, size accounting, and iteration after retraction.
func TestIndexDeleteContract(t *testing.T) {
	for _, rep := range allReps {
		idx := NewIndex(rep, tuple.Identity(2))
		rng := rand.New(rand.NewSource(7))
		model := map[[2]value.Value]bool{}
		for step := 0; step < 5000; step++ {
			k := [2]value.Value{value.Value(rng.Intn(100)), value.Value(rng.Intn(100))}
			tup := tuple.Tuple{k[0], k[1]}
			if rng.Intn(3) == 0 {
				if idx.Delete(tup) != model[k] {
					t.Fatalf("%v step %d: Delete(%v) disagrees with model", rep, step, tup)
				}
				delete(model, k)
			} else {
				if idx.Insert(tup) == model[k] {
					t.Fatalf("%v step %d: Insert(%v) newness disagrees with model", rep, step, tup)
				}
				model[k] = true
			}
		}
		if idx.Size() != len(model) {
			t.Fatalf("%v: size %d, model %d", rep, idx.Size(), len(model))
		}
		for _, tup := range drain(idx.Scan()) {
			if !model[[2]value.Value{tup[0], tup[1]}] {
				t.Fatalf("%v: scan yielded deleted tuple %v", rep, tup)
			}
		}
	}
}

func TestNullaryDelete(t *testing.T) {
	idx := NewIndex(BTree, tuple.Identity(0))
	if idx.Delete(tuple.Tuple{}) {
		t.Fatal("delete from empty nullary reported a hit")
	}
	idx.Insert(tuple.Tuple{})
	if !idx.Delete(tuple.Tuple{}) || idx.Size() != 0 {
		t.Fatal("nullary delete failed")
	}
	if idx.Delete(tuple.Tuple{}) {
		t.Fatal("second nullary delete reported a hit")
	}
}

// TestSupportCounts drives the sidecar through the count-merge/count-delete
// lifecycle: support accumulates across AddCount calls, the physical insert
// happens only on the 0→positive transition, DecCount clamps at zero and
// defers physical removal to Delete.
func TestSupportCounts(t *testing.T) {
	r := New("t", BTree, 2, []tuple.Order{tuple.Identity(2), {1, 0}})
	r.EnableCounting()
	if !r.Counting() {
		t.Fatal("counting not enabled")
	}
	ab := tuple.Tuple{1, 2}

	if !r.AddCount(ab, 2) {
		t.Fatal("first AddCount did not report the unsupported->supported transition")
	}
	if r.AddCount(ab, 3) {
		t.Fatal("second AddCount reported a transition on an already-supported tuple")
	}
	if r.Count(ab) != 5 || r.Size() != 1 {
		t.Fatalf("count=%d size=%d, want 5 and 1", r.Count(ab), r.Size())
	}

	// Losing some support keeps the tuple alive and physically present.
	if r.DecCount(ab, 4) {
		t.Fatal("DecCount reported death with support remaining")
	}
	if r.Count(ab) != 1 || !r.Contains(ab) {
		t.Fatalf("count=%d contains=%v after partial loss", r.Count(ab), r.Contains(ab))
	}

	// Losing the last support reports death but leaves the indexes intact —
	// the delete program still reads the old state until its subtract pass.
	if !r.DecCount(ab, 7) {
		t.Fatal("DecCount missed the last-support transition")
	}
	if r.Count(ab) != 0 {
		t.Fatalf("count=%d, want clamp at 0", r.Count(ab))
	}
	if !r.Contains(ab) || r.Size() != 1 {
		t.Fatal("zero support removed the tuple before the subtract pass")
	}
	if r.DecCount(ab, 1) {
		t.Fatal("DecCount on a dead tuple reported another death")
	}

	// RangeCounts enumerates only supported tuples.
	r.AddCount(tuple.Tuple{3, 4}, 2)
	seen := map[[2]value.Value]int32{}
	r.RangeCounts(func(tp tuple.Tuple, n int32) {
		seen[[2]value.Value{tp[0], tp[1]}] = n
	})
	if len(seen) != 1 || seen[[2]value.Value{3, 4}] != 2 {
		t.Fatalf("RangeCounts yielded %v, want only (3,4)->2", seen)
	}

	// Physical removal clears every index and the sidecar entry.
	if !r.Delete(ab) {
		t.Fatal("Delete missed a physically present tuple")
	}
	if r.Contains(ab) || r.Index(1).Contains(tuple.Tuple{2, 1}) {
		t.Fatal("Delete left the tuple in an index")
	}
	if r.Delete(ab) {
		t.Fatal("second Delete reported a hit")
	}
	// A fresh derivation after death must re-insert physically.
	if !r.AddCount(ab, 1) || !r.Contains(ab) {
		t.Fatal("AddCount after death did not re-insert")
	}
}
