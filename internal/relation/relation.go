// Package relation is the de-specialization layer (paper §3): the single
// Index interface the interpreter programs against, and the portfolio of
// concrete stores behind it — per-arity specialized B-trees, bries,
// union-find equivalence relations, a nullary flag, and the legacy
// runtime-comparator tree. All lexicographic orders are reduced to the
// natural order by re-encoding tuples on insert (tuple.Order), and all
// element types are reduced to 32-bit words, so the concrete portfolio is
// exactly {structure × arity}.
//
// On top of the flat portfolio, sharded.go provides shardedIndex: a
// wrapper holding one concrete adapter per hash partition of a single key
// column. Key-bound operations route to the owning shard; key-unbound
// enumerations run an order-preserving k-way merge, so a sharded relation
// is observationally identical to an unsharded one. Relations also carry
// the support-count sidecar for counting-based incremental deletion
// (counts.go) and per-relation telemetry hooks (internal/metrics).
package relation

import (
	"fmt"

	"sti/internal/metrics"
	"sti/internal/tuple"
)

// Relation is a named set of tuples backed by one or more indexes, each
// maintaining a different lexicographic order so that every primitive search
// the program performs is a prefix search on some index (paper §2). Index 0
// is the primary index; insertions go to all indexes, and Size/Contains are
// answered by the primary.
type Relation struct {
	Name    string
	arity   int
	rep     Rep
	indexes []Index
	stats   *metrics.RelationStats
	// counts is the support-count sidecar for counting-based deletion
	// (counts.go); nil for ordinary set-semantics relations.
	counts map[countKey]int32
	// shards/shardKey describe the hash partitioning of a sharded relation
	// (sharded.go); shards == 0 means unsharded.
	shards   int
	shardKey int
}

// New creates a relation with one index per given order. Orders must all
// have length arity; at least one order is required (the primary). EqRel
// relations are restricted to a single natural-order index.
func New(name string, rep Rep, arity int, orders []tuple.Order) *Relation {
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(arity)}
	}
	r := &Relation{Name: name, arity: arity, rep: rep}
	for _, o := range orders {
		if len(o) != arity {
			panic(fmt.Sprintf("relation %s: order %v does not match arity %d", name, o, arity))
		}
		r.indexes = append(r.indexes, NewIndex(rep, o))
	}
	return r
}

// NewIndex builds a single de-specialized index: the factory entry point of
// the paper's Fig 7, dispatching on representation and arity.
func NewIndex(rep Rep, order tuple.Order) Index {
	if len(order) == 0 {
		return &nullaryAdapter{rep: rep}
	}
	if len(order) > MaxArity {
		panic(fmt.Sprintf("relation: arity %d exceeds the pre-instantiated maximum %d", len(order), MaxArity))
	}
	switch rep {
	case BTree:
		return newBTreeIndex(order)
	case Brie:
		return newBrieAdapter(order)
	case EqRel:
		return newEqrelAdapter(order)
	case Legacy:
		return newLegacyAdapter(order)
	default:
		panic(fmt.Sprintf("relation: unknown representation %v", rep))
	}
}

// AttachMetrics installs telemetry counters: relation-level insert/dedup
// stats plus one IndexOps block per index (rs.Ops must have one entry per
// index, as allocated by Collector.BindRelation). A nil rs detaches nothing
// and keeps telemetry disabled.
func (r *Relation) AttachMetrics(rs *metrics.RelationStats) {
	if rs == nil {
		return
	}
	r.stats = rs
	for i, idx := range r.indexes {
		if i < len(rs.Ops) {
			idx.attachOps(rs.Ops[i])
		}
	}
}

// Stats returns the attached telemetry block, or nil when telemetry is off.
func (r *Relation) Stats() *metrics.RelationStats { return r.stats }

// Arity reports the tuple width.
func (r *Relation) Arity() int { return r.arity }

// Rep reports the backing representation.
func (r *Relation) Rep() Rep { return r.rep }

// NumIndexes reports how many indexes the relation maintains.
func (r *Relation) NumIndexes() int { return len(r.indexes) }

// Index returns the i-th index.
func (r *Relation) Index(i int) Index { return r.indexes[i] }

// Primary returns the primary index.
func (r *Relation) Primary() Index { return r.indexes[0] }

// Insert adds a source-order tuple to every index, reporting whether the
// primary index did not already contain it.
func (r *Relation) Insert(t tuple.Tuple) bool {
	added := r.indexes[0].Insert(t)
	for _, idx := range r.indexes[1:] {
		idx.Insert(t)
	}
	if r.counts != nil {
		r.counts[r.key(t)]++
	}
	if r.stats != nil {
		r.stats.CountInsert(added)
	}
	return added
}

// Contains tests membership of a source-order tuple.
func (r *Relation) Contains(t tuple.Tuple) bool { return r.indexes[0].Contains(t) }

// Size reports the number of tuples.
func (r *Relation) Size() int { return r.indexes[0].Size() }

// Empty reports whether the relation holds no tuples.
func (r *Relation) Empty() bool { return r.Size() == 0 }

// Clear removes all tuples from all indexes, and all support counts.
func (r *Relation) Clear() {
	for _, idx := range r.indexes {
		idx.Clear()
	}
	if r.counts != nil {
		clear(r.counts)
	}
}

// SwapContents exchanges contents with another relation of identical
// signature (arity, representation, index orders), in O(#indexes).
func (r *Relation) SwapContents(o *Relation) {
	if len(r.indexes) != len(o.indexes) {
		panic(fmt.Sprintf("relation: swap of %s and %s with different index counts", r.Name, o.Name))
	}
	for i := range r.indexes {
		r.indexes[i].SwapContents(o.indexes[i])
	}
	r.counts, o.counts = o.counts, r.counts
}

// Scan enumerates the primary index in source order (decoding if the primary
// order is not natural).
func (r *Relation) Scan() Iterator {
	it := r.indexes[0].Scan()
	return NewDecoder(it, r.indexes[0].Order())
}

// NewDecoder wraps an encoded-order iterator so it yields source-order
// tuples. If the order is natural the iterator is returned unchanged.
func NewDecoder(it Iterator, order tuple.Order) Iterator {
	if order.IsIdentity() {
		return it
	}
	return &decodeIter{src: it, order: order, out: make(tuple.Tuple, len(order))}
}

type decodeIter struct {
	src   Iterator
	order tuple.Order
	out   tuple.Tuple
}

func (d *decodeIter) Next() (tuple.Tuple, bool) {
	t, ok := d.src.Next()
	if !ok {
		return nil, false
	}
	d.order.Decode(d.out, t)
	return d.out, true
}
