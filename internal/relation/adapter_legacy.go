package relation

import (
	"fmt"

	"sti/internal/dyntree"
	"sti/internal/metrics"
	"sti/internal/tuple"
	"sti/internal/value"
)

// legacyAdapter is the relation store of the legacy interpreter (§5.1): a
// B-tree ordered by a *runtime* comparator that interprets the order array
// on every comparison. Tuples are stored in source order; the encoded view
// required by the Index contract is produced on output.
type legacyAdapter struct {
	tree  *dyntree.Tree
	order tuple.Order
	ops   *metrics.IndexOps
}

func newLegacyAdapter(order tuple.Order) *legacyAdapter {
	return &legacyAdapter{tree: dyntree.New(dyntree.OrderCmp(order)), order: order}
}

func (a *legacyAdapter) Arity() int                      { return len(a.order) }
func (a *legacyAdapter) Rep() Rep                        { return Legacy }
func (a *legacyAdapter) Order() tuple.Order              { return a.order }
func (a *legacyAdapter) Size() int                       { return a.tree.Size() }
func (a *legacyAdapter) Clear()                          { a.tree.Clear() }
func (a *legacyAdapter) impl() any                       { return a.tree }
func (a *legacyAdapter) attachOps(ops *metrics.IndexOps) { a.ops = ops }

func (a *legacyAdapter) Insert(t tuple.Tuple) bool {
	added := a.tree.Insert(t)
	if a.ops != nil {
		a.ops.Inserts.Add(1)
		if added {
			a.ops.Fresh.Add(1)
		}
	}
	return added
}

func (a *legacyAdapter) InsertAll(flat []value.Value, count int) int {
	arity := len(a.order)
	added := 0
	for i := 0; i < count; i++ {
		if a.tree.Insert(flat[i*arity : (i+1)*arity]) {
			added++
		}
	}
	if a.ops != nil {
		a.ops.Inserts.Add(uint64(count))
		a.ops.Fresh.Add(uint64(added))
	}
	return added
}

func (a *legacyAdapter) Contains(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	return a.tree.Contains(t)
}

func (a *legacyAdapter) ContainsEncoded(t tuple.Tuple) bool {
	if a.ops != nil {
		a.ops.Lookups.Add(1)
	}
	var src [MaxArity]value.Value
	a.order.Decode(src[:len(a.order)], t)
	return a.tree.Contains(src[:len(a.order)])
}

func (a *legacyAdapter) SwapContents(other Index) {
	o, ok := other.(*legacyAdapter)
	if !ok || !orderEq(a.order, o.order) {
		panic(fmt.Sprintf("relation: swap of incompatible indexes (%v and %v)", a.Rep(), other.Rep()))
	}
	a.tree.Swap(o.tree)
}

func (a *legacyAdapter) Scan() Iterator {
	if a.ops != nil {
		a.ops.Scans.Add(1)
	}
	return &legacyIter{it: a.tree.Iter(), order: a.order, out: make(tuple.Tuple, len(a.order))}
}

func (a *legacyAdapter) PrefixScan(pattern tuple.Tuple, k int) Iterator {
	if a.ops != nil {
		a.ops.RangeScans.Add(1)
	}
	arity := len(a.order)
	lo := make(tuple.Tuple, arity)
	hi := make(tuple.Tuple, arity)
	for i := 0; i < k; i++ {
		lo[a.order[i]] = pattern[i]
		hi[a.order[i]] = pattern[i]
	}
	for i := k; i < arity; i++ {
		lo[a.order[i]] = 0
		hi[a.order[i]] = ^value.Value(0)
	}
	return &legacyIter{it: a.tree.Range(lo, hi), order: a.order, out: make(tuple.Tuple, arity)}
}

func (a *legacyAdapter) AnyMatch(pattern tuple.Tuple, k int) bool {
	if a.ops != nil {
		a.ops.Probes.Add(1)
	}
	if k == 0 {
		return a.tree.Size() > 0
	}
	it := a.PrefixScan(pattern, k)
	_, ok := it.Next()
	return ok
}

func (a *legacyAdapter) PartitionScan(n int) []Iterator {
	if a.ops != nil {
		a.ops.Partitions.Add(1)
	}
	return []Iterator{a.Scan()}
}

// legacyIter re-encodes stored source-order tuples into the encoded view on
// every step — the runtime reordering cost the legacy design pays.
type legacyIter struct {
	it    *dyntree.Iter
	order tuple.Order
	out   tuple.Tuple
}

func (l *legacyIter) Next() (tuple.Tuple, bool) {
	src, ok := l.it.Next()
	if !ok {
		return nil, false
	}
	l.order.Encode(l.out, src)
	return l.out, true
}
