package relation

import (
	"testing"

	"sti/internal/btree"
	"sti/internal/tuple"
	"sti/internal/value"
)

// These micro-benchmarks quantify the gap the paper's §4.1 closes: the same
// scan through the dynamic adapter (interface + buffered iterator) vs the
// concrete specialized tree.

func populated(n int) Index {
	idx := NewIndex(BTree, tuple.Identity(2))
	t := make(tuple.Tuple, 2)
	for i := 0; i < n; i++ {
		t[0] = value.Value(i % 251)
		t[1] = value.Value(i)
		idx.Insert(t)
	}
	return idx
}

func BenchmarkScanDynamicAdapter(b *testing.B) {
	idx := populated(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := idx.Scan()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkScanStaticTree(b *testing.B) {
	idx := populated(1 << 16)
	tree := Impl(idx).(*btree.Tree[Tup2])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tree.Iter()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkInsertDynamicAdapter(b *testing.B) {
	t := make(tuple.Tuple, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		idx := NewIndex(BTree, tuple.Identity(2))
		b.StartTimer()
		for j := 0; j < 1<<14; j++ {
			t[0] = value.Value(j % 251)
			t[1] = value.Value(j)
			idx.Insert(t)
		}
	}
}

func BenchmarkInsertStaticTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tree := btree.New[Tup2]()
		b.StartTimer()
		for j := 0; j < 1<<14; j++ {
			tree.Insert(Tup2{value.Value(j % 251), value.Value(j)})
		}
	}
}

func BenchmarkAnyMatch(b *testing.B) {
	idx := populated(1 << 16)
	pat := tuple.Tuple{100, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.AnyMatch(pat, 1)
	}
}
