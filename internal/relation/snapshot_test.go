package relation

import (
	"sync"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

func TestEpochGuardEpochAdvances(t *testing.T) {
	var g EpochGuard
	if g.Epoch() != 0 {
		t.Fatalf("fresh guard epoch = %d", g.Epoch())
	}
	g.BeginWrite()
	g.EndWrite()
	if g.Epoch() != 1 {
		t.Fatalf("epoch after one write = %d", g.Epoch())
	}
	h := g.Acquire()
	if h.Epoch() != 1 {
		t.Fatalf("handle epoch = %d", h.Epoch())
	}
	h.Release()
	h.Release() // double release is a no-op
	if !h.Released() {
		t.Fatal("handle not marked released")
	}
}

// TestEpochGuardSnapshotConsistency hammers a guarded relation with one
// writer inserting tuples in even-sized batches and many readers checking,
// under a handle, that they only ever observe whole batches. Run with
// -race this also proves the lock discipline keeps index mutation and
// concurrent scans apart.
func TestEpochGuardSnapshotConsistency(t *testing.T) {
	var g EpochGuard
	rel := New("r", BTree, 2, []tuple.Order{tuple.Identity(2)})
	const batches, batchSize, readers = 50, 8, 4

	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				h := g.Acquire()
				n := rel.Size()
				// Scan under the handle: every tuple must be visible and
				// the count must be a whole number of batches.
				it := rel.Scan()
				seen := 0
				for {
					_, ok := it.Next()
					if !ok {
						break
					}
					seen++
				}
				epoch := h.Epoch()
				h.Release()
				if n%batchSize != 0 {
					t.Errorf("observed %d tuples at epoch %d, not a whole batch", n, epoch)
					return
				}
				if seen != n {
					t.Errorf("scan saw %d tuples, size was %d", seen, n)
					return
				}
				if n == batches*batchSize {
					return
				}
			}
		}()
	}
	for b := 0; b < batches; b++ {
		g.BeginWrite()
		for j := 0; j < batchSize; j++ {
			k := b*batchSize + j
			rel.Insert(tuple.Tuple{value.Value(k), value.Value(k + 1)})
		}
		g.EndWrite()
	}
	wg.Wait()
	if got := g.Epoch(); got != batches {
		t.Fatalf("final epoch = %d, want %d", got, batches)
	}
}
