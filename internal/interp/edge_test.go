package interp

import (
	"fmt"
	"strings"
	"testing"

	"sti/internal/relation"
	"sti/internal/tuple"
	"sti/internal/value"
)

// TestMaxAritySpecialized: a 16-column relation exercises the largest
// pre-instantiated factory entry end to end.
func TestMaxAritySpecialized(t *testing.T) {
	var cols, vars []string
	for i := 0; i < relation.MaxArity; i++ {
		cols = append(cols, fmt.Sprintf("c%d:number", i))
		vars = append(vars, fmt.Sprintf("v%d", i))
	}
	src := fmt.Sprintf(`
.decl wide(%[1]s)
.decl out(%[1]s)
.input wide
.output out
out(%[2]s) :- wide(%[2]s), v0 < v15.
`, strings.Join(cols, ", "), strings.Join(vars, ", "))

	facts := map[string][]tuple.Tuple{}
	for r := 0; r < 10; r++ {
		tup := make(tuple.Tuple, relation.MaxArity)
		for i := range tup {
			tup[i] = value.Value(r*16 + i)
		}
		facts["wide"] = append(facts["wide"], tup)
		rev := make(tuple.Tuple, relation.MaxArity)
		for i := range rev {
			rev[i] = value.Value(1000 - r*16 - i)
		}
		facts["wide"] = append(facts["wide"], rev)
	}
	eng, _ := run(t, src, facts, DefaultConfig())
	got := tuplesOf(t, eng, "out")
	if len(got) != 10 {
		t.Fatalf("out has %d tuples (ascending rows only), want 10", len(got))
	}
}

// TestArityOverflowRejected: arity 17 must fail cleanly at engine build.
func TestArityOverflowRejected(t *testing.T) {
	var cols []string
	for i := 0; i <= relation.MaxArity; i++ {
		cols = append(cols, fmt.Sprintf("c%d:number", i))
	}
	src := fmt.Sprintf(".decl toowide(%s)\n", strings.Join(cols, ", "))
	rp, st := compileSrc(t, src)
	defer func() {
		if recover() == nil {
			t.Fatal("arity 17 engine construction did not panic")
		}
	}()
	New(rp, st, DefaultConfig())
}

// TestThreeIndexRelation: three mutually incomparable search signatures
// force three indexes; insert/search/swap must keep them consistent.
func TestThreeIndexRelation(t *testing.T) {
	src := `
.decl f(a:number, b:number, c:number)
.decl qa(x:number)
.decl qb(x:number)
.decl qc(x:number)
.decl ra(a:number, b:number, c:number)
.decl rb(a:number, b:number, c:number)
.decl rc(a:number, b:number, c:number)
.input f
.input qa
.input qb
.input qc
ra(a, b, c) :- qa(a), f(a, b, c).
rb(a, b, c) :- qb(b), f(a, b, c).
rc(a, b, c) :- qc(c), f(a, b, c).
`
	facts := map[string][]tuple.Tuple{
		"qa": {{1}}, "qb": {{2}}, "qc": {{3}},
	}
	for a := value.Value(0); a < 6; a++ {
		for b := value.Value(0); b < 6; b++ {
			facts["f"] = append(facts["f"], tuple.Tuple{a, b, (a + b) % 6})
		}
	}
	eng, _ := run(t, src, facts, DefaultConfig())
	if eng.Relation("f").NumIndexes() < 3 {
		t.Fatalf("f has %d indexes, want >= 3", eng.Relation("f").NumIndexes())
	}
	if n := len(tuplesOf(t, eng, "ra")); n != 6 {
		t.Fatalf("ra = %d", n)
	}
	if n := len(tuplesOf(t, eng, "rb")); n != 6 {
		t.Fatalf("rb = %d", n)
	}
	if n := len(tuplesOf(t, eng, "rc")); n != 6 {
		t.Fatalf("rc = %d", n)
	}
}

// TestSpecializedOpCoverage: every generic scan-family opcode specializes
// for every supported arity, and the specialized opcodes are all distinct.
func TestSpecializedOpCoverage(t *testing.T) {
	generics := []opcode{
		opInsert, opExists, opScan, opIndexScan,
		opChoice, opIndexChoice, opAggregate, opIndexAggregate,
	}
	seen := map[opcode]bool{}
	for _, g := range generics {
		for arity := 1; arity <= relation.MaxArity; arity++ {
			sp, ok := specializedOp(g, arity)
			if !ok {
				t.Fatalf("no specialization for op %d arity %d", g, arity)
			}
			if sp < opSpecializedBase {
				t.Fatalf("specialized op %d below base", sp)
			}
			if seen[sp] {
				t.Fatalf("specialized opcode %d assigned twice", sp)
			}
			seen[sp] = true
		}
		if _, ok := specializedOp(g, 0); ok {
			t.Fatalf("arity 0 specialized for op %d", g)
		}
		if _, ok := specializedOp(g, relation.MaxArity+1); ok {
			t.Fatalf("arity %d specialized for op %d", relation.MaxArity+1, g)
		}
	}
	if len(seen) != len(generics)*relation.MaxArity {
		t.Fatalf("coverage %d, want %d", len(seen), len(generics)*relation.MaxArity)
	}
}

// TestRecursiveAggregateOverLowerStratum: aggregates read relations from an
// earlier stratum inside a recursive stratum.
func TestRecursiveAggregateOverLowerStratum(t *testing.T) {
	src := `
.decl weight(x:number, w:number)
.decl seed(x:number)
.decl grow(x:number)
.input weight
.input seed
grow(x) :- seed(x).
grow(y) :- grow(x), y = x + 1, y <= m, m = max w : { weight(_, w) }.
`
	facts := map[string][]tuple.Tuple{
		"weight": {{0, 5}, {1, 3}},
		"seed":   {{1}},
	}
	eng, _ := run(t, src, facts, DefaultConfig())
	wantTuples(t, tuplesOf(t, eng, "grow"), [][]value.Value{{1}, {2}, {3}, {4}, {5}})
}

// TestDeepRecursionStack: a 20k-deep derivation chain must not overflow
// anything (iterative fixpoint, not recursion-per-tuple).
func TestDeepRecursionStack(t *testing.T) {
	src := `
.decl next(x:number, y:number)
.decl reach(x:number)
.input next
reach(0).
reach(y) :- reach(x), next(x, y).
`
	var nexts []tuple.Tuple
	const n = 20000
	for i := 0; i < n; i++ {
		nexts = append(nexts, tuple.Tuple{value.Value(i), value.Value(i + 1)})
	}
	eng, _ := run(t, src, map[string][]tuple.Tuple{"next": nexts}, DefaultConfig())
	if got := eng.Relation("reach").Size(); got != n+1 {
		t.Fatalf("reach = %d, want %d", got, n+1)
	}
}

// TestEmptyInputRelations: rules over empty inputs derive nothing and the
// emptiness guards keep loops cheap.
func TestEmptyInputRelations(t *testing.T) {
	eng, _ := run(t, tcSrc, nil, DefaultConfig())
	if eng.Relation("path").Size() != 0 {
		t.Fatal("path nonempty on empty edge")
	}
	cfg := DefaultConfig()
	cfg.Profile = true
	eng2, _ := run(t, tcSrc, nil, cfg)
	for _, r := range eng2.Profile().Rules {
		if r.Iterations != 0 {
			t.Fatalf("rule %q iterated %d times over empty inputs", r.Label, r.Iterations)
		}
	}
}
