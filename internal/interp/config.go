// Package interp implements the Soufflé Tree Interpreter (STI), the paper's
// core contribution (§3): a recursive tree interpreter over RAM programs
// that uses de-specialized relational data structures (internal/relation)
// and four interpreter optimizations (§4):
//
//  1. static access and instruction generation — opcodes specialized per
//     {structure × arity} bind the concrete B-tree type statically
//     (specialized_gen.go, the Go analog of the paper's C++ macros);
//  2. static tuple reordering — the interpreter tree is generated in encoded
//     index coordinates so scans never decode tuples at runtime;
//  3. lean dispatch — the hot recursive execute path avoids per-dispatch
//     allocation and interface boxing (the Go analog of the paper's
//     register-pressure trick, whose effect class is fixed per-dispatch
//     overhead);
//  4. super-instructions — constant and tuple-element sub-expressions of
//     inserts, scans, and existence checks are folded into their parent
//     instruction, eliminating their dispatches.
//
// Each optimization is independently switchable so the paper's ablation
// experiments (Figs 18, 19 and §5.5) can be reproduced. The Legacy mode
// reproduces the pre-STI interpreter (§5.1): relations stored in
// runtime-comparator B-trees with no specialization at all.
package interp

import (
	"sti/internal/metrics"
	"sti/internal/relation"
)

// Config selects the interpreter variant.
type Config struct {
	// StaticDispatch enables the specialized instruction set (§4.1). When
	// false, every relational operation goes through the dynamic Index
	// adapter with buffered iterators (§3).
	StaticDispatch bool
	// SuperInstructions folds Constant/TupleElement children into parent
	// instructions (§4.4).
	SuperInstructions bool
	// StaticReordering generates the interpreter tree in encoded index
	// coordinates, eliminating runtime tuple reordering (§4.2).
	StaticReordering bool
	// LeanDispatch keeps the recursive dispatch path allocation-free (the
	// §4.3 analog). When false, every dispatch round-trips its operands
	// through heap-allocated boxes, modelling the fixed per-dispatch
	// overhead the paper removes with its lambda trick.
	LeanDispatch bool
	// FusedFilters enables the "hand-crafted super-instructions" of the
	// paper's §5.2 case study: a filter whose condition is a pure
	// conjunction of constraints is compiled into a single closure at
	// tree-generation time, so the whole condition costs one dispatch
	// instead of one per sub-expression. Off by default — the paper
	// treats this as a manual remedy, not a standard optimization.
	FusedFilters bool
	// Legacy switches relation storage to runtime-comparator B-trees (the
	// legacy interpreter of §5.1). Implies dynamic dispatch and runtime
	// reordering.
	Legacy bool
	// Profile enables the built-in profiler: per-rule wall time, dispatch
	// counts, and iteration counts (§5.2). Counters are kept per worker
	// context and folded at query barriers, so profiling composes with
	// parallel execution.
	Profile bool
	// Provenance records the first derivation of every tuple so that
	// Engine.Explain can reconstruct proof trees — the debugging workflow
	// that motivates interpreters in the paper's §1. Provenance implies the
	// dynamic-adapter path, runtime reordering, and serial execution.
	Provenance bool
	// Workers sets the parallelism degree for the outermost scans of rule
	// evaluations (paper §3: thread-local context copies per worker).
	// Values below 2 mean serial execution.
	Workers int
	// Shards hash-partitions every shardable relation into this many
	// partitions on its shard-plan column (ram.Relation.ShardKey, derived by
	// analysis.ShardKeys), so parallel scans split along shard boundaries
	// and scan-barrier merges route staged tuples to their owning shard —
	// shard-parallel semi-naive evaluation with delta exchange at the
	// barriers. 0 disables sharding; 1 builds the degenerate single-shard
	// wrappers (useful to test the routing path); values above 1 raise
	// Workers to match so worker i evaluates shard i. Sharded relations
	// keep static dispatch through the sharded specialized opcodes
	// (specialized_shard.go), which bind one concrete tree per shard and
	// route by partition hash; only the instructions without a sharded
	// form (choice, aggregates) drop to the dynamic adapter. Sharding is
	// disabled under Legacy and Provenance.
	Shards int
	// Tier is the storage-tier policy hook. When non-nil, eligible input
	// relations (non-aux, arity > 0, not eqrel, not legacy, not sharded)
	// are built on the persistent tier's durable tables instead of the
	// in-memory portfolio; ineligible input relations are reported through
	// Tier.Gate so the db layer can record why they stayed hot. nil keeps
	// every relation in memory.
	Tier relation.Tier
	// Metrics attaches a telemetry collector: per-relation and per-index
	// counters, fixpoint convergence curves, parallel-scan statistics, and
	// (when the collector has tracing enabled) span events. nil disables all
	// telemetry; the hot paths then pay a nil check and nothing else.
	Metrics *metrics.Collector
}

// DefaultConfig is the full STI: every optimization enabled.
func DefaultConfig() Config {
	return Config{
		StaticDispatch:    true,
		SuperInstructions: true,
		StaticReordering:  true,
		LeanDispatch:      true,
	}
}

// DynamicAdapterConfig disables only static instruction generation — the
// baseline of Fig 18.
func DynamicAdapterConfig() Config {
	c := DefaultConfig()
	c.StaticDispatch = false
	return c
}

// LegacyConfig reproduces the legacy interpreter of §5.1.
func LegacyConfig() Config {
	return Config{Legacy: true}
}

// normalize resolves implied settings.
func (c Config) normalize() Config {
	if c.Legacy {
		c.StaticDispatch = false
		c.StaticReordering = false
		c.SuperInstructions = false
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Shards < 0 {
		c.Shards = 0
	}
	if c.Legacy {
		c.Shards = 0
	}
	if c.Workers < c.Shards {
		c.Workers = c.Shards
	}
	if c.Workers > 1 {
		// Fused filter closures keep per-closure scratch state and are not
		// safe to share across workers.
		c.FusedFilters = false
	}
	if c.Provenance {
		c.StaticDispatch = false
		c.StaticReordering = false
		c.FusedFilters = false
		c.Workers = 1
		c.Shards = 0
	}
	return c
}
