package interp

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

// shardTCSrc is the transitive-closure mix used across the shard tests,
// parameterized over the relation representation (btree/brie).
func shardTCSrc(rep string) string {
	return fmt.Sprintf(`
.decl edge(x:number, y:number) %[1]s
.decl path(x:number, y:number) %[1]s
.decl node(x:number) %[1]s
.decl unreached(x:number) %[1]s
.input edge
node(x) :- edge(x, _).
node(y) :- edge(_, y).
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
unreached(x) :- node(x), !path(0, x).
`, rep)
}

// shardGraphs returns the three edge sets of the shard property tests:
// a chain, a grid, and a random graph.
func shardGraphs(n int, seed int64) map[string][]tuple.Tuple {
	graphs := map[string][]tuple.Tuple{}
	for i := 0; i < n-1; i++ {
		graphs["chain"] = append(graphs["chain"],
			tuple.Tuple{value.Value(i), value.Value(i + 1)})
	}
	side := 1
	for side*side < n {
		side++
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			id := value.Value(r*side + c)
			if c+1 < side {
				graphs["grid"] = append(graphs["grid"], tuple.Tuple{id, id + 1})
			}
			if r+1 < side {
				graphs["grid"] = append(graphs["grid"], tuple.Tuple{id, value.Value((r+1)*side + c)})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 4*n; i++ {
		graphs["random"] = append(graphs["random"],
			tuple.Tuple{value.Value(rng.Intn(n)), value.Value(rng.Intn(n))})
	}
	return graphs
}

// requireSame asserts two engines computed byte-identical relations.
func requireSame(t *testing.T, label string, want, got *Engine, rels ...string) {
	t.Helper()
	for _, r := range rels {
		a := tuplesOf(t, want, r)
		b := tuplesOf(t, got, r)
		if len(a) != len(b) {
			t.Fatalf("%s relation %s: want %d tuples, got %d", label, r, len(a), len(b))
		}
		for i := range a {
			if tuple.Compare(a[i], b[i]) != 0 {
				t.Fatalf("%s relation %s differs at %d: %v vs %v", label, r, i, a[i], b[i])
			}
		}
	}
}

// TestShardedMatchesUnsharded is the shard property test: chain, grid, and
// random graphs, btree and brie representations, 1/2/4 shards — every
// configuration must produce byte-identical relations to the unsharded
// interpreter. The single-shard case proves the degenerate wrapper (routing
// machinery engaged, one partition) changes nothing.
func TestShardedMatchesUnsharded(t *testing.T) {
	rels := []string{"path", "node", "unreached"}
	for _, rep := range []string{"btree", "brie"} {
		src := shardTCSrc(rep)
		for name, edges := range shardGraphs(48, 7) {
			facts := map[string][]tuple.Tuple{"edge": edges}
			want, _ := run(t, src, facts, DefaultConfig())
			for _, shards := range []int{1, 2, 4} {
				cfg := DefaultConfig()
				cfg.Shards = shards
				got, _ := run(t, src, facts, cfg)
				requireSame(t, fmt.Sprintf("%s/%s/shards=%d", rep, name, shards), want, got, rels...)
				for _, r := range rels {
					rel := got.Relation(r)
					if !rel.Sharded() || rel.ShardCount() != shards {
						t.Fatalf("%s/%s: relation %s not sharded into %d", rep, name, r, shards)
					}
					if err := rel.CheckShardLocal(); err != nil {
						t.Fatalf("%s/%s/shards=%d: %v", rep, name, shards, err)
					}
				}
			}
		}
	}
}

// TestShardedSkewedKeys drives every tuple into a single shard: all source
// keys are identical, so the partition hash routes the whole workload to one
// partition. The fixpoint must still terminate with correct results (the
// other shards run empty scans and the consensus emptiness check must not
// exit early or spin).
func TestShardedSkewedKeys(t *testing.T) {
	src := shardTCSrc("btree")
	// A star from node 0: every derived path starts at 0, so path/delta
	// tuples all carry the same shard key.
	var edges []tuple.Tuple
	for i := 1; i <= 40; i++ {
		edges = append(edges, tuple.Tuple{0, value.Value(i)})
		edges = append(edges, tuple.Tuple{value.Value(i), value.Value(i + 40)})
	}
	facts := map[string][]tuple.Tuple{"edge": edges}
	want, _ := run(t, src, facts, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Shards = 4
	got, _ := run(t, src, facts, cfg)
	requireSame(t, "skewed", want, got, "path", "node", "unreached")

	rel := got.Relation("path")
	if err := rel.CheckShardLocal(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedNullary: nullary relations carry no shard plan and must stay
// unsharded while the rest of the program shards, including when a nullary
// flag gates recursive derivation.
func TestShardedNullary(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl go()
.decl done()
.input edge
go() :- edge(_, _).
path(x, y) :- edge(x, y), go().
path(x, z) :- path(x, y), edge(y, z).
done() :- path(0, 5).
`
	var edges []tuple.Tuple
	for i := 0; i < 12; i++ {
		edges = append(edges, tuple.Tuple{value.Value(i), value.Value(i + 1)})
	}
	facts := map[string][]tuple.Tuple{"edge": edges}
	want, _ := run(t, src, facts, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Shards = 3
	got, _ := run(t, src, facts, cfg)
	requireSame(t, "nullary", want, got, "path", "go", "done")

	if flag := got.Relation("go"); flag.Sharded() {
		t.Fatal("nullary relation must not shard")
	}
	if path := got.Relation("path"); !path.Sharded() {
		t.Fatal("path should shard")
	}
}

// TestShardedEqrelAndAggregates: the full feature mix (eqrel, negation,
// aggregates) under NumCPU shards. EqRel relations must stay unsharded;
// everything must match serial unsharded evaluation.
func TestShardedEqrelAndAggregates(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl node(x:number)
.decl deg(x:number, n:number)
.decl eq(x:number, y:number) eqrel
.input edge
node(x) :- edge(x, _).
node(y) :- edge(_, y).
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
deg(x, n) :- node(x), n = count : { edge(x, _) }.
eq(x, y) :- edge(x, y), x < y.
`
	rng := rand.New(rand.NewSource(55))
	var edges []tuple.Tuple
	for i := 0; i < 200; i++ {
		edges = append(edges, tuple.Tuple{value.Value(rng.Intn(50)), value.Value(rng.Intn(50))})
	}
	facts := map[string][]tuple.Tuple{"edge": edges}
	want, _ := run(t, src, facts, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Shards = runtime.NumCPU()
	if cfg.Shards < 2 {
		cfg.Shards = 2
	}
	got, _ := run(t, src, facts, cfg)
	requireSame(t, "mix", want, got, "path", "node", "deg", "eq")

	if eq := got.Relation("eq"); eq.Sharded() {
		t.Fatal("eqrel relation must not shard")
	}
}

// TestShardMergeTelemetry: a sharded parallel run records shard merges,
// routed-tuple counts summing over shards, and (on multi-shard runs of a
// graph with mixed keys) a sane skew figure.
func TestShardMergeTelemetry(t *testing.T) {
	src := shardTCSrc("btree")
	facts := map[string][]tuple.Tuple{"edge": shardGraphs(40, 3)["random"]}
	cfg := DefaultConfig()
	cfg.Shards = 4
	_, rep := runWithTelemetry(t, src, facts, cfg)
	if rep.Parallel == nil || rep.Parallel.ShardMerges == 0 {
		t.Fatal("no shard merges recorded")
	}
	if len(rep.Parallel.ShardRouted) != 4 {
		t.Fatalf("ShardRouted has %d entries, want 4", len(rep.Parallel.ShardRouted))
	}
	var total uint64
	for _, n := range rep.Parallel.ShardRouted {
		total += n
	}
	if total == 0 {
		t.Fatal("no routed tuples recorded")
	}
	if rep.Parallel.ShardMaxSkew < 1 {
		t.Fatalf("ShardMaxSkew = %v, want >= 1", rep.Parallel.ShardMaxSkew)
	}
}
