package interp

import (
	"fmt"
	"sync"
	"time"

	"sti/internal/metrics"
	"sti/internal/ram"
	"sti/internal/relation"
	"sti/internal/rtl"
	"sti/internal/tuple"
	"sti/internal/value"
)

// executor holds the per-run state of the recursive tree walk. Relation
// mutation needs no locks: parallel workers stage inserts into worker-local
// buffers (context.stage) that merge at the scan barrier, so no store is
// ever mutated while another goroutine can observe it.
type executor struct {
	eng  *Engine
	io   IOHandler
	prof *profiler
	prov *provenance
	curQ *inode // active query (provenance only)
	// tel is the telemetry collector (nil = disabled). fix is the fixpoint
	// record of the innermost LOOP being executed; statements only run on the
	// coordinating goroutine, so no synchronization is needed.
	tel     *metrics.Collector
	fix     *metrics.FixpointStats
	profile bool
	// count enables the per-context operation counters: set when profiling
	// or telemetry is on (telemetry needs iteration counts for the
	// per-worker parallel statistics).
	count   bool
	lean    bool
	workers int
}

// eval is the dispatch entry point. With LeanDispatch off it models the
// paper's §4.3 baseline: every dispatch pays a fixed extra cost comparable
// to the callee-saved register spills and canary setup the paper removes
// (here: eight dependent memory updates before the real dispatch).
func (ex *executor) eval(n *inode, ctx *context) value.Value {
	if ex.profile {
		ctx.stats.dispatches++
	}
	if !ex.lean {
		spill(ctx)
	}
	return ex.execute(n, ctx)
}

// spill models the per-dispatch fixed overhead the paper's §4.3 trick
// removes (callee-saved register saves plus stack-canary setup on every
// recursive execute call): a non-inlinable call whose body performs the
// equivalent register/stack traffic, against the worker-local context.
//
//go:noinline
func spill(ctx *context) {
	ctx.pad[0]++
	ctx.pad[1]++
	ctx.pad[2]++
	ctx.pad[3]++
	ctx.pad[4]++
	ctx.pad[5]++
	ctx.pad[6]++
	ctx.pad[7]++
}

func (ex *executor) execute(n *inode, ctx *context) value.Value {
	switch n.op {
	// --- statements ---
	case opSequence:
		for _, st := range n.children {
			ex.eval(st, ctx)
			if ctx.exit {
				break
			}
		}
		return 0
	case opLoop:
		if ex.tel != nil {
			return ex.execLoopTelemetry(n, ctx)
		}
		for {
			ex.eval(n.nested, ctx)
			if ctx.exit {
				ctx.exit = false
				return 0
			}
		}
	case opExit:
		if ex.eval(n.cond, ctx) != 0 {
			ctx.exit = true
		}
		if ex.fix != nil && len(n.sampleRels) > 0 {
			ex.sampleDeltas(n)
		}
		return 0
	case opQuery:
		qctx := newContext(n.widths)
		if n.staged {
			qctx.stage = make([]*relation.StagingBuffer, len(ex.eng.rels))
		}
		if ex.prov != nil {
			prevQ := ex.curQ
			ex.curQ = n
			defer func() { ex.curQ = prevQ }()
		}
		qspan := ex.tel.Begin()
		if ex.profile {
			start := time.Now()
			ex.eval(n.nested, qctx)
			ex.flushStage(qctx)
			rp := &ex.prof.rules[n.ruleID]
			rp.RuleID = int(n.ruleID)
			rp.Label = n.label
			rp.Time += time.Since(start)
			rp.Iterations += qctx.stats.iters
			rp.Dispatches += qctx.stats.dispatches
			rp.Inserts += qctx.stats.inserts
			rp.Attempts += qctx.stats.attempts
			ex.prof.dispatches += qctx.stats.dispatches
			ex.prof.super += qctx.stats.super
			ex.tel.End(qspan, "query", n.label)
			return 0
		}
		ex.eval(n.nested, qctx)
		ex.flushStage(qctx)
		ex.tel.End(qspan, "query", n.label)
		return 0
	case opClear:
		n.rel.Clear()
		return 0
	case opSwap:
		n.rel.SwapContents(n.rel2)
		return 0
	case opMerge:
		mspan := ex.tel.Begin()
		it := n.rel2.Scan()
		for {
			t, ok := it.Next()
			if !ok {
				ex.tel.End(mspan, "merge", n.rel.Name)
				return 0
			}
			n.rel.Insert(t)
		}
	case opSubtract:
		sspan := ex.tel.Begin()
		it := n.rel2.Scan()
		for {
			t, ok := it.Next()
			if !ok {
				ex.tel.End(sspan, "subtract", n.rel.Name)
				return 0
			}
			n.rel.Delete(t)
		}
	case opCountMerge:
		mspan := ex.tel.Begin()
		n.rel2.RangeCounts(func(t tuple.Tuple, m int32) {
			if n.rel.AddCount(t, m) {
				n.rel3.Insert(t)
			}
		})
		ex.tel.End(mspan, "count-merge", n.rel.Name)
		return 0
	case opCountDelete:
		dspan := ex.tel.Begin()
		n.rel2.RangeCounts(func(t tuple.Tuple, m int32) {
			if n.rel.DecCount(t, m) {
				n.rel3.Insert(t)
			}
		})
		ex.tel.End(dspan, "count-delete", n.rel.Name)
		return 0
	case opIO:
		iospan := ex.tel.Begin()
		ex.execIO(n)
		ex.tel.End(iospan, "io", n.rel.Name)
		return 0
	case opLogTimer:
		tspan := ex.tel.Begin()
		ex.eval(n.nested, ctx)
		ex.tel.End(tspan, "timer", n.label)
		return 0

	// --- operations (dynamic-adapter forms) ---
	case opScan:
		if n.par && ex.workers > 1 {
			ex.parallelScan(n, ctx)
			return 0
		}
		it := n.idx.Scan()
		if n.decode {
			it = relation.NewDecoder(it, n.order)
		}
		for {
			t, ok := it.Next()
			if !ok {
				return 0
			}
			ctx.tuples[n.tupleID] = t
			ex.countIter(ctx)
			ex.eval(n.nested, ctx)
		}
	case opIndexScan:
		var pat [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		it := n.idx.PrefixScan(pat[:n.arity], int(n.prefix))
		if n.decode {
			it = relation.NewDecoder(it, n.order)
		}
		for {
			t, ok := it.Next()
			if !ok {
				return 0
			}
			ctx.tuples[n.tupleID] = t
			ex.countIter(ctx)
			ex.eval(n.nested, ctx)
		}
	case opChoice:
		it := n.idx.Scan()
		if n.decode {
			it = relation.NewDecoder(it, n.order)
		}
		for {
			t, ok := it.Next()
			if !ok {
				return 0
			}
			ctx.tuples[n.tupleID] = t
			ex.countIter(ctx)
			if n.cond == nil || ex.eval(n.cond, ctx) != 0 {
				ex.eval(n.nested, ctx)
				return 0
			}
		}
	case opIndexChoice:
		var pat [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		it := n.idx.PrefixScan(pat[:n.arity], int(n.prefix))
		if n.decode {
			it = relation.NewDecoder(it, n.order)
		}
		for {
			t, ok := it.Next()
			if !ok {
				return 0
			}
			ctx.tuples[n.tupleID] = t
			ex.countIter(ctx)
			if n.cond == nil || ex.eval(n.cond, ctx) != 0 {
				ex.eval(n.nested, ctx)
				return 0
			}
		}
	case opFilter:
		if ex.eval(n.cond, ctx) != 0 {
			ex.eval(n.nested, ctx)
		}
		return 0
	case opFusedFilter:
		if n.fused(ctx.tuples) {
			ex.eval(n.nested, ctx)
		}
		return 0
	case opInsert:
		var t [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, t[:n.arity])
		if ex.stageInsert(n, ctx, t[:n.arity]) {
			return 0
		}
		if n.rel.Insert(t[:n.arity]) {
			ex.countInsert(ctx, true)
			if ex.prov != nil {
				ex.recordDerivation(n, t[:n.arity], ctx)
			}
		} else {
			ex.countInsert(ctx, false)
		}
		return 0
	case opAggregate, opIndexAggregate:
		ctx.tuples[n.tupleID] = ctx.base[n.tupleID]
		var pat [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		it := n.idx.PrefixScan(pat[:n.arity], int(n.prefix))
		if n.decode {
			it = relation.NewDecoder(it, n.order)
		}
		var acc aggAcc
		acc.Init(ram.AggKind(n.a), value.Type(n.b))
		for {
			t, ok := it.Next()
			if !ok {
				break
			}
			ctx.tuples[n.tupleID] = t
			ex.countIter(ctx)
			if n.cond != nil && ex.eval(n.cond, ctx) == 0 {
				continue
			}
			var v value.Value
			if n.target != nil {
				v = ex.eval(n.target, ctx)
			}
			acc.Step(v)
		}
		if res, ok := acc.Finish(); ok {
			ctx.tuples[n.tupleID] = tuple.Tuple{res}
			ex.eval(n.nested, ctx)
		}
		return 0

	// --- conditions ---
	case opAnd:
		if ex.eval(n.children[0], ctx) == 0 {
			return 0
		}
		return ex.eval(n.children[1], ctx)
	case opNot:
		if ex.eval(n.cond, ctx) == 0 {
			return 1
		}
		return 0
	case opEmptiness:
		if n.rel.Empty() {
			return 1
		}
		return 0
	case opExists:
		var pat [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		if n.prefix == n.arity {
			if n.idx.ContainsEncoded(pat[:n.arity]) {
				return 1
			}
			return 0
		}
		if n.idx.AnyMatch(pat[:n.arity], int(n.prefix)) {
			return 1
		}
		return 0
	case opConstraint:
		l := ex.eval(n.children[0], ctx)
		r := ex.eval(n.children[1], ctx)
		if compare(ram.CmpOp(n.a), value.Type(n.b), l, r) {
			return 1
		}
		return 0

	// --- expressions ---
	case opConstant:
		return n.val
	case opTupleElement:
		return ctx.tuples[n.a][n.b]
	case opIntrinsic:
		return ex.evalIntrinsic(n, ctx)
	}

	// Handwritten and generated specialized instructions.
	if v, handled := ex.execNonGeneric(n, ctx); handled {
		return v
	}
	if v, handled := ex.execSpecialized(n, ctx); handled {
		return v
	}
	if v, handled := ex.execSharded(n, ctx); handled {
		return v
	}
	panic(fmt.Sprintf("interp: unknown opcode %d", n.op))
}

// execLoopTelemetry is the telemetry variant of opLoop: it opens a fixpoint
// record labeled with the RAM loop's stratum label, makes it current so the
// loop's Exit samples per-iteration deltas into it, and emits one span per
// iteration plus one for the whole fixpoint. Loops nest (a stratum inside a
// log timer, say), so the previous fixpoint is restored on the way out.
func (ex *executor) execLoopTelemetry(n *inode, ctx *context) value.Value {
	fix := ex.tel.StartFixpoint(n.label)
	prev := ex.fix
	ex.fix = fix
	loopSpan := ex.tel.Begin()
	for {
		iterNo := fix.Iterations
		iterSpan := ex.tel.Begin()
		ex.eval(n.nested, ctx)
		if !iterSpan.IsZero() {
			ex.tel.End(iterSpan, "fixpoint", fmt.Sprintf("iteration %d", iterNo))
		}
		if ctx.exit {
			ctx.exit = false
			break
		}
	}
	if !loopSpan.IsZero() {
		ex.tel.EndArgs(loopSpan, "fixpoint", n.label, map[string]any{"iterations": fix.Iterations})
	}
	ex.fix = prev
	ex.tel.EndFixpoint(fix)
	return 0
}

// sampleDeltas records the current iteration's fresh-tuple counts: at Exit
// time every new_X relation of the stratum holds exactly the tuples derived
// this iteration (the post-statements that merge and clear them have not run
// yet). Per-relation peaks land on the base relation's stats.
func (ex *executor) sampleDeltas(n *inode) {
	sizes := make([]uint64, len(n.sampleRels))
	for i, rel := range n.sampleRels {
		sz := uint64(rel.Size())
		sizes[i] = sz
		if rs := n.sampleStats[i]; rs != nil && sz > rs.PeakDelta {
			rs.PeakDelta = sz
		}
	}
	ex.fix.RecordIteration(n.sampleNames, sizes)
}

// parallelScan partitions a full scan across workers, each with its own
// context copy and its own staging buffers (paper §3). Workers never mutate
// shared state: inserts land in worker-local buffers that mergeWorkers folds
// into the relations after the barrier. Runtime errors from workers are
// re-raised after all workers finish.
func (ex *executor) parallelScan(n *inode, ctx *context) {
	iters := n.idx.PartitionScan(ex.workers)
	if len(iters) == 1 {
		// Degenerate partitioning (store too small or unsupported): same
		// loop as a worker runs, on the caller's context.
		ex.runPartition(n, ctx, iters[0])
		return
	}
	wctxs := make([]*context, len(iters))
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr *rtl.Error
	for i, it := range iters {
		wctxs[i] = ctx.clone()
		wg.Add(1)
		go func(it relation.Iterator, wctx *context) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if re, ok := r.(*rtl.Error); ok {
						errMu.Lock()
						if firstErr == nil {
							firstErr = re
						}
						errMu.Unlock()
						return
					}
					panic(r)
				}
			}()
			ex.runPartition(n, wctx, it)
		}(it, wctxs[i])
	}
	wg.Wait()
	if ex.tel != nil {
		scanned := make([]uint64, len(wctxs))
		staged := make([]uint64, len(wctxs))
		for i, w := range wctxs {
			scanned[i] = w.stats.iters
			for _, b := range w.stage {
				if b != nil {
					staged[i] += uint64(b.Len())
				}
			}
		}
		mergeStart := time.Now()
		ex.mergeWorkers(ctx, wctxs)
		ex.tel.RecordParallelScan(scanned, staged, time.Since(mergeStart))
	} else {
		ex.mergeWorkers(ctx, wctxs)
	}
	if firstErr != nil {
		panic(firstErr)
	}
}

// runPartition drives one partition iterator through the scan body. It is
// the single loop shared by the multi-worker path and the single-partition
// fallback, so both execute identically.
func (ex *executor) runPartition(n *inode, ctx *context, it relation.Iterator) {
	if n.decode {
		it = relation.NewDecoder(it, n.order)
	}
	for {
		t, ok := it.Next()
		if !ok {
			return
		}
		ctx.tuples[n.tupleID] = t
		ex.countIter(ctx)
		ex.eval(n.nested, ctx)
	}
}

// mergeWorkers folds the workers' staging buffers and profiling counters
// into the coordinating context at the scan barrier. All buffers targeting
// one relation merge in a single InsertAll call, which de-duplicates against
// the destination's primary index and across workers. Buffers targeting a
// *sharded* relation instead take the routed merge (InsertAllSharded): the
// barrier is where cross-shard delta tuples — produced by worker w but owned
// by another shard's partition — are exchanged into their owners before the
// next iteration scans them.
func (ex *executor) mergeWorkers(ctx *context, wctxs []*context) {
	if ctx.stage != nil {
		var bufs []*relation.StagingBuffer
		for rid := range ctx.stage {
			rel := ex.eng.rels[rid]
			if rel.Sharded() {
				// Keep worker alignment (nil gaps included) so the exchange
				// counter can compare each tuple's owning shard against its
				// producing worker's; the coordinator's own buffer rides
				// along in the last slot.
				wbufs := make([]*relation.StagingBuffer, 0, len(wctxs)+1)
				any := false
				for _, w := range wctxs {
					b := w.stage[rid]
					wbufs = append(wbufs, b)
					any = any || (b != nil && b.Len() > 0)
				}
				if b := ctx.stage[rid]; b != nil && b.Len() > 0 {
					wbufs = append(wbufs, b)
					any = true
				}
				if !any {
					continue
				}
				added, routed, exchanged := rel.InsertAllSharded(wbufs)
				ctx.stats.inserts += uint64(added)
				if ex.tel != nil {
					ex.tel.RecordShardMerge(routed, exchanged)
				}
				if b := ctx.stage[rid]; b != nil {
					b.Reset()
				}
				continue
			}
			bufs = bufs[:0]
			if b := ctx.stage[rid]; b != nil && b.Len() > 0 {
				bufs = append(bufs, b)
			}
			for _, w := range wctxs {
				if b := w.stage[rid]; b != nil && b.Len() > 0 {
					bufs = append(bufs, b)
				}
			}
			if len(bufs) == 0 {
				continue
			}
			added := rel.InsertAll(bufs...)
			ctx.stats.inserts += uint64(added)
			if b := ctx.stage[rid]; b != nil {
				b.Reset()
			}
		}
	}
	for _, w := range wctxs {
		ctx.stats.iters += w.stats.iters
		ctx.stats.attempts += w.stats.attempts
		ctx.stats.dispatches += w.stats.dispatches
		ctx.stats.super += w.stats.super
		// Worker inserts were deferred to the staging buffers; the InsertAll
		// above already counted the post-dedup total.
	}
}

// stageInsert appends t to the context's worker-local staging buffer when
// the insert runs under a staged query, reporting whether it did. The
// relation is not touched; de-duplication happens at merge time.
func (ex *executor) stageInsert(n *inode, ctx *context, t tuple.Tuple) bool {
	if !n.staged || ctx.stage == nil {
		return false
	}
	b := ctx.stage[n.relID]
	if b == nil {
		b = relation.NewStagingBuffer(int(n.arity))
		ctx.stage[n.relID] = b
	}
	b.Add(t)
	if ex.count {
		// Staged tuples are insert attempts; the post-dedup fresh count is
		// folded from InsertAll's return at the merge barrier.
		ctx.stats.attempts++
	}
	return true
}

// flushStage merges any staging buffers still pending on ctx into their
// relations (a staged query whose parallel scan degenerated to the serial
// path, or staged inserts outside the partitioned scan).
func (ex *executor) flushStage(ctx *context) {
	if ctx.stage == nil {
		return
	}
	for rid, b := range ctx.stage {
		if b == nil || b.Len() == 0 {
			continue
		}
		added := ex.eng.rels[rid].InsertAll(b)
		ctx.stats.inserts += uint64(added)
		b.Reset()
	}
}

func (ex *executor) countIter(ctx *context) {
	if ex.count {
		ctx.stats.iters++
	}
}

func (ex *executor) countInsert(ctx *context, added bool) {
	if ex.count {
		ctx.stats.attempts++
		if added {
			ctx.stats.inserts++
		}
	}
}

// fillTuple materializes a node's value children into dst (dst length
// selects how many leading children are used: full arity for inserts, the
// bound prefix for patterns). Super-instruction nodes read their constant
// and tuple-element fields without dispatch (paper Fig 14).
func (ex *executor) fillTuple(n *inode, ctx *context, dst []value.Value) {
	if n.super {
		for _, c := range n.constants {
			dst[c.pos] = c.val
		}
		for _, t := range n.tupleElems {
			dst[t.pos] = ctx.tuples[t.tid][t.elem]
		}
		for _, g := range n.generics {
			dst[g.pos] = ex.eval(g.expr, ctx)
		}
		if ex.profile {
			ctx.stats.super += uint64(len(n.constants) + len(n.tupleElems))
		}
		return
	}
	for i := range dst {
		dst[i] = ex.eval(n.children[i], ctx)
	}
}

func (ex *executor) execIO(n *inode) {
	switch ram.IOKind(n.a) {
	case ram.IOLoad:
		err := ex.io.Load(n.shadow.(*ram.IO).Rel, func(t tuple.Tuple) error {
			n.rel.Insert(t)
			return nil
		})
		if err != nil {
			rtl.Fail("loading %s: %v", n.rel.Name, err)
		}
	case ram.IOStore:
		if err := ex.io.Store(n.shadow.(*ram.IO).Rel, n.rel.Scan()); err != nil {
			rtl.Fail("storing %s: %v", n.rel.Name, err)
		}
	default:
		if err := ex.io.PrintSize(n.shadow.(*ram.IO).Rel, n.rel.Size()); err != nil {
			rtl.Fail("printsize %s: %v", n.rel.Name, err)
		}
	}
}

// aggAcc aliases the shared accumulator.
type aggAcc = rtl.AggAcc

func boolVal(b bool) value.Value { return rtl.Bool(b) }

func compare(op ram.CmpOp, typ value.Type, l, r value.Value) bool {
	return rtl.Compare(op, typ, l, r)
}

func (ex *executor) evalIntrinsic(n *inode, ctx *context) value.Value {
	op := ram.IntrinsicOp(n.a)
	typ := value.Type(n.b)
	st := ex.eng.st
	switch op {
	case ram.OpNeg:
		return rtl.Neg(typ, ex.eval(n.children[0], ctx))
	case ram.OpBNot:
		return rtl.BNot(typ, ex.eval(n.children[0], ctx))
	case ram.OpLNot:
		return rtl.LNot(ex.eval(n.children[0], ctx))
	case ram.OpCat:
		args := make([]value.Value, len(n.children))
		for i, ch := range n.children {
			args[i] = ex.eval(ch, ctx)
		}
		return rtl.Cat(st, args...)
	case ram.OpStrlen:
		return rtl.Strlen(st, ex.eval(n.children[0], ctx))
	case ram.OpSubstr:
		return rtl.Substr(st,
			ex.eval(n.children[0], ctx),
			ex.eval(n.children[1], ctx),
			ex.eval(n.children[2], ctx))
	case ram.OpOrd:
		return ex.eval(n.children[0], ctx)
	case ram.OpToNumber:
		return rtl.ToNumber(st, ex.eval(n.children[0], ctx))
	case ram.OpToString:
		return rtl.ToString(st, ex.eval(n.children[0], ctx))
	case ram.OpMin, ram.OpMax:
		acc := ex.eval(n.children[0], ctx)
		for _, ch := range n.children[1:] {
			acc = rtl.Arith(op, typ, acc, ex.eval(ch, ctx))
		}
		return acc
	default:
		l := ex.eval(n.children[0], ctx)
		r := ex.eval(n.children[1], ctx)
		return rtl.Arith(op, typ, l, r)
	}
}
