package interp

import (
	"math/rand"
	"runtime"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

// TestParallelMatchesSerial: the parallel interpreter computes exactly the
// serial results over randomized graphs for a program with recursion,
// negation, aggregates, and eqrel.
func TestParallelMatchesSerial(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl node(x:number)
.decl unreached(x:number)
.decl deg(x:number, n:number)
.decl eq(x:number, y:number) eqrel
.input edge
node(x) :- edge(x, _).
node(y) :- edge(_, y).
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
unreached(x) :- node(x), !path(0, x).
deg(x, n) :- node(x), n = count : { edge(x, _) }.
eq(x, y) :- edge(x, y), x < y.
`
	rng := rand.New(rand.NewSource(123))
	rels := []string{"path", "node", "unreached", "deg", "eq"}
	for trial := 0; trial < 3; trial++ {
		n := 30 + trial*20
		facts := map[string][]tuple.Tuple{}
		for i := 0; i < 4*n; i++ {
			facts["edge"] = append(facts["edge"],
				tuple.Tuple{value.Value(rng.Intn(n)), value.Value(rng.Intn(n))})
		}
		serial, _ := run(t, src, facts, DefaultConfig())
		parCfg := DefaultConfig()
		parCfg.Workers = runtime.NumCPU()
		if parCfg.Workers < 2 {
			parCfg.Workers = 2
		}
		parallel, _ := run(t, src, facts, parCfg)
		for _, r := range rels {
			a := tuplesOf(t, serial, r)
			b := tuplesOf(t, parallel, r)
			if len(a) != len(b) {
				t.Fatalf("trial %d relation %s: serial %d tuples, parallel %d", trial, r, len(a), len(b))
			}
			for i := range a {
				if tuple.Compare(a[i], b[i]) != 0 {
					t.Fatalf("trial %d relation %s differs at %d: %v vs %v", trial, r, i, a[i], b[i])
				}
			}
		}
	}
}

// TestParallelStress oversubscribes the scheduler (twice the CPUs) on
// randomized graphs through the full feature mix — recursion, negation,
// aggregates, eqrel — and demands byte-identical results with serial
// evaluation. Run under -race it doubles as the proof that staged inserts
// leave no shared mutable state between workers.
func TestParallelStress(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl node(x:number)
.decl unreached(x:number)
.decl deg(x:number, n:number)
.decl eq(x:number, y:number) eqrel
.input edge
node(x) :- edge(x, _).
node(y) :- edge(_, y).
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
unreached(x) :- node(x), !path(0, x).
deg(x, n) :- node(x), n = count : { edge(x, _) }.
eq(x, y) :- edge(x, y), x < y.
`
	rels := []string{"path", "node", "unreached", "deg", "eq"}
	rng := rand.New(rand.NewSource(987))
	for trial := 0; trial < 4; trial++ {
		n := 60 + trial*30
		facts := map[string][]tuple.Tuple{}
		for i := 0; i < 6*n; i++ {
			facts["edge"] = append(facts["edge"],
				tuple.Tuple{value.Value(rng.Intn(n)), value.Value(rng.Intn(n))})
		}
		serial, _ := run(t, src, facts, DefaultConfig())
		parCfg := DefaultConfig()
		parCfg.Workers = 2 * runtime.NumCPU()
		parallel, _ := run(t, src, facts, parCfg)
		for _, r := range rels {
			a := tuplesOf(t, serial, r)
			b := tuplesOf(t, parallel, r)
			if len(a) != len(b) {
				t.Fatalf("trial %d relation %s: serial %d tuples, parallel %d", trial, r, len(a), len(b))
			}
			for i := range a {
				if tuple.Compare(a[i], b[i]) != 0 {
					t.Fatalf("trial %d relation %s differs at %d: %v vs %v", trial, r, i, a[i], b[i])
				}
			}
		}
	}
}

// TestProfileParallel: profiling no longer forces serial execution. The
// per-context counters folded at query barriers must agree with a serial
// profiling run on work-proportional counters (iterations, inserts).
func TestProfileParallel(t *testing.T) {
	facts := map[string][]tuple.Tuple{}
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 300; i++ {
		facts["edge"] = append(facts["edge"],
			tuple.Tuple{value.Value(rng.Intn(60)), value.Value(rng.Intn(60))})
	}
	serCfg := DefaultConfig()
	serCfg.Profile = true
	serEng, _ := run(t, tcSrc, facts, serCfg)
	parCfg := DefaultConfig()
	parCfg.Profile = true
	parCfg.Workers = 4
	if parCfg.normalize().Workers != 4 {
		t.Fatal("profiling still forces serial execution")
	}
	parEng, _ := run(t, tcSrc, facts, parCfg)
	ser, par := serEng.Profile(), parEng.Profile()
	if ser == nil || par == nil {
		t.Fatal("missing profile")
	}
	sums := func(p *Profile) (iters, inserts uint64) {
		for _, r := range p.Rules {
			iters += r.Iterations
			inserts += r.Inserts
		}
		return
	}
	si, sn := sums(ser)
	pi, pn := sums(par)
	if si != pi {
		t.Fatalf("iterations: serial %d, parallel %d", si, pi)
	}
	if sn != pn {
		t.Fatalf("inserts: serial %d, parallel %d", sn, pn)
	}
	if par.TotalDispatches == 0 {
		t.Fatal("parallel profile counted no dispatches")
	}
}

// TestParallelRuntimeError: worker panics surface as ordinary errors.
func TestParallelRuntimeError(t *testing.T) {
	src := `
.decl n(x:number)
.decl out(x:number)
.input n
out(y) :- n(x), y = 100 / x.
`
	rp, st := compileSrc(t, src)
	cfg := DefaultConfig()
	cfg.Workers = 4
	eng := New(rp, st, cfg)
	io := NewMemIO()
	for i := 0; i < 50; i++ {
		io.Add("n", tuple.Tuple{value.Value(i)}) // includes 0
	}
	if err := eng.Run(io); err == nil {
		t.Fatal("division by zero not reported from parallel workers")
	}
}

// TestPartitionScanCoverage: partitions of a B-tree index cover every tuple
// exactly once.
func TestPartitionScanCoverage(t *testing.T) {
	rp, st := compileSrc(t, tcSrc)
	eng := New(rp, st, DefaultConfig())
	io := NewMemIO()
	const n = 5000
	for i := 0; i < n; i++ {
		io.Add("edge", tuple.Tuple{value.Value(i % 71), value.Value(i)})
	}
	if err := eng.Run(io); err != nil {
		t.Fatal(err)
	}
	idx := eng.Relation("edge").Primary()
	for _, parts := range [][]int{{2}, {4}, {7}} {
		seen := map[[2]value.Value]bool{}
		iters := idx.PartitionScan(parts[0])
		for _, it := range iters {
			for {
				tp, ok := it.Next()
				if !ok {
					break
				}
				key := [2]value.Value{tp[0], tp[1]}
				if seen[key] {
					t.Fatalf("%d partitions: duplicate tuple %v", parts[0], tp)
				}
				seen[key] = true
			}
		}
		if len(seen) != idx.Size() {
			t.Fatalf("%d partitions covered %d of %d tuples", parts[0], len(seen), idx.Size())
		}
	}
}
