package interp

import (
	"sti/internal/brie"
	"sti/internal/btree"
	"sti/internal/relation"
	"sti/internal/value"
)

// Sharded specialized instructions. A sharded relation has no single concrete
// tree, so the plain specialized opcodes (specialized.go) cannot bind it —
// but it does have one concrete tree *per shard*, all of the same type. These
// forms bind the whole per-shard slice at generation time (inode.impls) plus
// the partition-key position (inode.b: the encoded key position for scans and
// existence checks, the source key column for inserts), and route with one
// hash at runtime:
//
//   - When the search prefix covers the key, exactly one shard can hold
//     matches, and the instruction runs the unsharded static loop on that
//     shard's tree. This is the common case by construction: the shard plan
//     keys each relation on its most-bound column.
//   - When it does not, the instruction visits shards back to back. Shard
//     order (not globally sorted order) is observationally equivalent for
//     scans — a scan's result set does not depend on enumeration order, and
//     the order-sensitive instructions (choice, aggregate over floats) stay
//     on the dynamic adapter, whose k-way merge preserves sorted order.
//
// The opcode block extends the generated per-arity layout: op = base + arity-1.
const (
	opShardedBase   opcode = opIndexAggregateBT16 + 1
	opInsertShBT    opcode = opShardedBase
	opExistsShBT    opcode = opShardedBase + 16
	opScanShBT      opcode = opShardedBase + 32
	opIndexScanShBT opcode = opShardedBase + 48

	opInsertShBrie    opcode = opShardedBase + 64
	opScanShBrie      opcode = opShardedBase + 65
	opIndexScanShBrie opcode = opShardedBase + 66
	opExistsShBrie    opcode = opShardedBase + 67
)

// shardedOp maps a generic opcode to its sharded specialized form for the
// given representation and arity.
func shardedOp(generic opcode, rep relation.Rep, arity int) (opcode, bool) {
	switch rep {
	case relation.BTree:
		if arity < 1 || arity > relation.MaxArity {
			return 0, false
		}
		switch generic {
		case opInsert:
			return opInsertShBT + opcode(arity-1), true
		case opExists:
			return opExistsShBT + opcode(arity-1), true
		case opScan:
			return opScanShBT + opcode(arity-1), true
		case opIndexScan:
			return opIndexScanShBT + opcode(arity-1), true
		}
	case relation.Brie:
		switch generic {
		case opInsert:
			return opInsertShBrie, true
		case opScan:
			return opScanShBrie, true
		case opIndexScan:
			return opIndexScanShBrie, true
		case opExists:
			return opExistsShBrie, true
		}
	}
	return 0, false
}

// evalInsertShBT routes a freshly built tuple to its owning shard by the
// source key column and inserts it into that shard of every index. The impls
// slice is laid out index-major: impls[i*shards+s] is index i's shard s.
func evalInsertShBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, toKey toKeyFn[K]) value.Value {
	var src, enc [relation.MaxArity]value.Value
	ex.fillTuple(n, ctx, src[:n.arity])
	if ex.stageInsert(n, ctx, src[:n.arity]) {
		return 0
	}
	shards := len(n.impls) / len(n.orders)
	sh := relation.ShardOf(src[n.b], shards)
	added := false
	for i, ord := range n.orders {
		ord.Encode(enc[:n.arity], src[:n.arity])
		if n.impls[i*shards+sh].(*btree.Tree[K]).Insert(toKey(enc[:n.arity])) && i == 0 {
			added = true
		}
	}
	ex.countInsert(ctx, added)
	if n.rstats != nil {
		n.rstats.CountInsert(added)
	}
	return 0
}

func evalExistsShBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, toKey toKeyFn[K]) value.Value {
	var pat [relation.MaxArity]value.Value
	ex.fillTuple(n, ctx, pat[:n.prefix])
	if n.b < n.prefix {
		tree := n.impls[relation.ShardOf(pat[n.b], len(n.impls))].(*btree.Tree[K])
		if n.prefix == n.arity {
			return boolVal(tree.Contains(toKey(pat[:n.arity])))
		}
		it := btRangeTree(tree, n, pat[:n.prefix], toKey)
		_, ok := it.Next()
		return boolVal(ok)
	}
	for _, impl := range n.impls {
		tree := impl.(*btree.Tree[K])
		if n.prefix == 0 {
			if tree.Size() > 0 {
				return 1
			}
			continue
		}
		it := btRangeTree(tree, n, pat[:n.prefix], toKey)
		if _, ok := it.Next(); ok {
			return 1
		}
	}
	return 0
}

func evalScanShBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, fromKey fromKeyFn[K]) value.Value {
	for _, impl := range n.impls {
		it := impl.(*btree.Tree[K]).Iter()
		for {
			k, ok := it.Next()
			if !ok {
				break
			}
			bindKey(n, ctx, k, fromKey)
			ex.countIter(ctx)
			ex.eval(n.nested, ctx)
		}
	}
	return 0
}

func evalIndexScanShBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, toKey toKeyFn[K], fromKey fromKeyFn[K]) value.Value {
	var pat [relation.MaxArity]value.Value
	ex.fillTuple(n, ctx, pat[:n.prefix])
	if n.b < n.prefix {
		tree := n.impls[relation.ShardOf(pat[n.b], len(n.impls))].(*btree.Tree[K])
		it := btRangeTree(tree, n, pat[:n.prefix], toKey)
		for {
			k, ok := it.Next()
			if !ok {
				return 0
			}
			bindKey(n, ctx, k, fromKey)
			ex.countIter(ctx)
			ex.eval(n.nested, ctx)
		}
	}
	for _, impl := range n.impls {
		it := btRangeTree(impl.(*btree.Tree[K]), n, pat[:n.prefix], toKey)
		for {
			k, ok := it.Next()
			if !ok {
				break
			}
			bindKey(n, ctx, k, fromKey)
			ex.countIter(ctx)
			ex.eval(n.nested, ctx)
		}
	}
	return 0
}

// execShardedBrie handles the handwritten sharded forms of the brie, which is
// not arity-generic.
func (ex *executor) execShardedBrie(n *inode, ctx *context) (value.Value, bool) {
	switch n.op {
	case opInsertShBrie:
		var src, enc [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, src[:n.arity])
		if ex.stageInsert(n, ctx, src[:n.arity]) {
			return 0, true
		}
		shards := len(n.impls) / len(n.orders)
		sh := relation.ShardOf(src[n.b], shards)
		added := false
		for i, ord := range n.orders {
			ord.Encode(enc[:n.arity], src[:n.arity])
			if n.impls[i*shards+sh].(*brie.Trie).Insert(enc[:n.arity]) && i == 0 {
				added = true
			}
		}
		ex.countInsert(ctx, added)
		if n.rstats != nil {
			n.rstats.CountInsert(added)
		}
		return 0, true

	case opScanShBrie, opIndexScanShBrie:
		var pat [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		slot := ctx.tuples[n.tupleID]
		impls := n.impls
		if n.b < n.prefix {
			sh := relation.ShardOf(pat[n.b], len(n.impls))
			impls = n.impls[sh : sh+1]
		}
		for _, impl := range impls {
			it := impl.(*brie.Trie).Prefix(pat[:n.prefix])
			for {
				t, ok := it.Next()
				if !ok {
					break
				}
				if n.decode {
					n.order.Decode(slot, t)
				} else {
					copy(slot, t)
				}
				ex.countIter(ctx)
				ex.eval(n.nested, ctx)
			}
		}
		return 0, true

	case opExistsShBrie:
		var pat [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		if n.b < n.prefix {
			trie := n.impls[relation.ShardOf(pat[n.b], len(n.impls))].(*brie.Trie)
			if n.prefix == n.arity {
				return boolVal(trie.Contains(pat[:n.arity])), true
			}
			return boolVal(trie.HasPrefix(pat[:n.prefix])), true
		}
		for _, impl := range n.impls {
			if impl.(*brie.Trie).HasPrefix(pat[:n.prefix]) {
				return 1, true
			}
		}
		return 0, true
	}
	return 0, false
}

// execSharded dispatches the sharded specialized opcodes; returns
// (result, handled).
func (ex *executor) execSharded(n *inode, ctx *context) (value.Value, bool) {
	if n.op >= opInsertShBrie {
		return ex.execShardedBrie(n, ctx)
	}
	switch n.op {
	case opInsertShBT + 0:
		return evalInsertShBT[relation.Tup1](ex, n, ctx, relation.ToTup1), true
	case opInsertShBT + 1:
		return evalInsertShBT[relation.Tup2](ex, n, ctx, relation.ToTup2), true
	case opInsertShBT + 2:
		return evalInsertShBT[relation.Tup3](ex, n, ctx, relation.ToTup3), true
	case opInsertShBT + 3:
		return evalInsertShBT[relation.Tup4](ex, n, ctx, relation.ToTup4), true
	case opInsertShBT + 4:
		return evalInsertShBT[relation.Tup5](ex, n, ctx, relation.ToTup5), true
	case opInsertShBT + 5:
		return evalInsertShBT[relation.Tup6](ex, n, ctx, relation.ToTup6), true
	case opInsertShBT + 6:
		return evalInsertShBT[relation.Tup7](ex, n, ctx, relation.ToTup7), true
	case opInsertShBT + 7:
		return evalInsertShBT[relation.Tup8](ex, n, ctx, relation.ToTup8), true
	case opInsertShBT + 8:
		return evalInsertShBT[relation.Tup9](ex, n, ctx, relation.ToTup9), true
	case opInsertShBT + 9:
		return evalInsertShBT[relation.Tup10](ex, n, ctx, relation.ToTup10), true
	case opInsertShBT + 10:
		return evalInsertShBT[relation.Tup11](ex, n, ctx, relation.ToTup11), true
	case opInsertShBT + 11:
		return evalInsertShBT[relation.Tup12](ex, n, ctx, relation.ToTup12), true
	case opInsertShBT + 12:
		return evalInsertShBT[relation.Tup13](ex, n, ctx, relation.ToTup13), true
	case opInsertShBT + 13:
		return evalInsertShBT[relation.Tup14](ex, n, ctx, relation.ToTup14), true
	case opInsertShBT + 14:
		return evalInsertShBT[relation.Tup15](ex, n, ctx, relation.ToTup15), true
	case opInsertShBT + 15:
		return evalInsertShBT[relation.Tup16](ex, n, ctx, relation.ToTup16), true

	case opExistsShBT + 0:
		return evalExistsShBT[relation.Tup1](ex, n, ctx, relation.ToTup1), true
	case opExistsShBT + 1:
		return evalExistsShBT[relation.Tup2](ex, n, ctx, relation.ToTup2), true
	case opExistsShBT + 2:
		return evalExistsShBT[relation.Tup3](ex, n, ctx, relation.ToTup3), true
	case opExistsShBT + 3:
		return evalExistsShBT[relation.Tup4](ex, n, ctx, relation.ToTup4), true
	case opExistsShBT + 4:
		return evalExistsShBT[relation.Tup5](ex, n, ctx, relation.ToTup5), true
	case opExistsShBT + 5:
		return evalExistsShBT[relation.Tup6](ex, n, ctx, relation.ToTup6), true
	case opExistsShBT + 6:
		return evalExistsShBT[relation.Tup7](ex, n, ctx, relation.ToTup7), true
	case opExistsShBT + 7:
		return evalExistsShBT[relation.Tup8](ex, n, ctx, relation.ToTup8), true
	case opExistsShBT + 8:
		return evalExistsShBT[relation.Tup9](ex, n, ctx, relation.ToTup9), true
	case opExistsShBT + 9:
		return evalExistsShBT[relation.Tup10](ex, n, ctx, relation.ToTup10), true
	case opExistsShBT + 10:
		return evalExistsShBT[relation.Tup11](ex, n, ctx, relation.ToTup11), true
	case opExistsShBT + 11:
		return evalExistsShBT[relation.Tup12](ex, n, ctx, relation.ToTup12), true
	case opExistsShBT + 12:
		return evalExistsShBT[relation.Tup13](ex, n, ctx, relation.ToTup13), true
	case opExistsShBT + 13:
		return evalExistsShBT[relation.Tup14](ex, n, ctx, relation.ToTup14), true
	case opExistsShBT + 14:
		return evalExistsShBT[relation.Tup15](ex, n, ctx, relation.ToTup15), true
	case opExistsShBT + 15:
		return evalExistsShBT[relation.Tup16](ex, n, ctx, relation.ToTup16), true

	case opScanShBT + 0:
		return evalScanShBT[relation.Tup1](ex, n, ctx, relation.FromTup1), true
	case opScanShBT + 1:
		return evalScanShBT[relation.Tup2](ex, n, ctx, relation.FromTup2), true
	case opScanShBT + 2:
		return evalScanShBT[relation.Tup3](ex, n, ctx, relation.FromTup3), true
	case opScanShBT + 3:
		return evalScanShBT[relation.Tup4](ex, n, ctx, relation.FromTup4), true
	case opScanShBT + 4:
		return evalScanShBT[relation.Tup5](ex, n, ctx, relation.FromTup5), true
	case opScanShBT + 5:
		return evalScanShBT[relation.Tup6](ex, n, ctx, relation.FromTup6), true
	case opScanShBT + 6:
		return evalScanShBT[relation.Tup7](ex, n, ctx, relation.FromTup7), true
	case opScanShBT + 7:
		return evalScanShBT[relation.Tup8](ex, n, ctx, relation.FromTup8), true
	case opScanShBT + 8:
		return evalScanShBT[relation.Tup9](ex, n, ctx, relation.FromTup9), true
	case opScanShBT + 9:
		return evalScanShBT[relation.Tup10](ex, n, ctx, relation.FromTup10), true
	case opScanShBT + 10:
		return evalScanShBT[relation.Tup11](ex, n, ctx, relation.FromTup11), true
	case opScanShBT + 11:
		return evalScanShBT[relation.Tup12](ex, n, ctx, relation.FromTup12), true
	case opScanShBT + 12:
		return evalScanShBT[relation.Tup13](ex, n, ctx, relation.FromTup13), true
	case opScanShBT + 13:
		return evalScanShBT[relation.Tup14](ex, n, ctx, relation.FromTup14), true
	case opScanShBT + 14:
		return evalScanShBT[relation.Tup15](ex, n, ctx, relation.FromTup15), true
	case opScanShBT + 15:
		return evalScanShBT[relation.Tup16](ex, n, ctx, relation.FromTup16), true

	case opIndexScanShBT + 0:
		return evalIndexScanShBT[relation.Tup1](ex, n, ctx, relation.ToTup1, relation.FromTup1), true
	case opIndexScanShBT + 1:
		return evalIndexScanShBT[relation.Tup2](ex, n, ctx, relation.ToTup2, relation.FromTup2), true
	case opIndexScanShBT + 2:
		return evalIndexScanShBT[relation.Tup3](ex, n, ctx, relation.ToTup3, relation.FromTup3), true
	case opIndexScanShBT + 3:
		return evalIndexScanShBT[relation.Tup4](ex, n, ctx, relation.ToTup4, relation.FromTup4), true
	case opIndexScanShBT + 4:
		return evalIndexScanShBT[relation.Tup5](ex, n, ctx, relation.ToTup5, relation.FromTup5), true
	case opIndexScanShBT + 5:
		return evalIndexScanShBT[relation.Tup6](ex, n, ctx, relation.ToTup6, relation.FromTup6), true
	case opIndexScanShBT + 6:
		return evalIndexScanShBT[relation.Tup7](ex, n, ctx, relation.ToTup7, relation.FromTup7), true
	case opIndexScanShBT + 7:
		return evalIndexScanShBT[relation.Tup8](ex, n, ctx, relation.ToTup8, relation.FromTup8), true
	case opIndexScanShBT + 8:
		return evalIndexScanShBT[relation.Tup9](ex, n, ctx, relation.ToTup9, relation.FromTup9), true
	case opIndexScanShBT + 9:
		return evalIndexScanShBT[relation.Tup10](ex, n, ctx, relation.ToTup10, relation.FromTup10), true
	case opIndexScanShBT + 10:
		return evalIndexScanShBT[relation.Tup11](ex, n, ctx, relation.ToTup11, relation.FromTup11), true
	case opIndexScanShBT + 11:
		return evalIndexScanShBT[relation.Tup12](ex, n, ctx, relation.ToTup12, relation.FromTup12), true
	case opIndexScanShBT + 12:
		return evalIndexScanShBT[relation.Tup13](ex, n, ctx, relation.ToTup13, relation.FromTup13), true
	case opIndexScanShBT + 13:
		return evalIndexScanShBT[relation.Tup14](ex, n, ctx, relation.ToTup14, relation.FromTup14), true
	case opIndexScanShBT + 14:
		return evalIndexScanShBT[relation.Tup15](ex, n, ctx, relation.ToTup15, relation.FromTup15), true
	case opIndexScanShBT + 15:
		return evalIndexScanShBT[relation.Tup16](ex, n, ctx, relation.ToTup16, relation.FromTup16), true
	}
	return 0, false
}
