package interp

import (
	"sti/internal/brie"
	"sti/internal/btree"
	"sti/internal/eqrel"
	"sti/internal/ram"
	"sti/internal/relation"
	"sti/internal/tuple"
	"sti/internal/value"
)

// This file holds the bodies of the specialized instructions (paper §4.1,
// Fig 11c): generic helpers instantiated per fixed-arity key type by the
// generated dispatch in specialized_gen.go. Each helper type-asserts the
// concrete structure once, then runs with stack-allocated fixed-size tuples,
// concrete iterators, and no interface dispatch on the per-tuple path.

type toKeyFn[K btree.Key[K]] func(tuple.Tuple) K

type fromKeyFn[K btree.Key[K]] func(K, tuple.Tuple)

// evalInsertBT inserts a freshly built source tuple into every B-tree index
// of the relation. Under a staged query the source tuple goes to the
// worker-local buffer instead; the merge encodes per index.
func evalInsertBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, toKey toKeyFn[K], _ fromKeyFn[K]) value.Value {
	var src, enc [relation.MaxArity]value.Value
	ex.fillTuple(n, ctx, src[:n.arity])
	if ex.stageInsert(n, ctx, src[:n.arity]) {
		return 0
	}
	added := false
	for i, impl := range n.impls {
		n.orders[i].Encode(enc[:n.arity], src[:n.arity])
		if impl.(*btree.Tree[K]).Insert(toKey(enc[:n.arity])) && i == 0 {
			added = true
		}
	}
	ex.countInsert(ctx, added)
	if n.rstats != nil {
		// The static path bypasses Relation.Insert (and its counters), so the
		// relation-level stats are bumped here.
		n.rstats.CountInsert(added)
	}
	return 0
}

// btRange prepares the concrete range iterator of a prefix search.
func btRange[K btree.Key[K]](n *inode, pat []value.Value, toKey toKeyFn[K]) btree.Iter[K] {
	return btRangeTree(n.impls[0].(*btree.Tree[K]), n, pat, toKey)
}

// btRangeTree is btRange against an explicit tree, shared with the sharded
// instruction forms (which pick the tree by partition hash first).
func btRangeTree[K btree.Key[K]](tree *btree.Tree[K], n *inode, pat []value.Value, toKey toKeyFn[K]) btree.Iter[K] {
	if n.prefix == 0 {
		return tree.Iter()
	}
	var lo, hi [relation.MaxArity]value.Value
	copy(lo[:n.prefix], pat)
	copy(hi[:n.prefix], pat)
	for i := n.prefix; i < n.arity; i++ {
		lo[i] = 0
		hi[i] = ^value.Value(0)
	}
	return tree.Range(toKey(lo[:n.arity]), toKey(hi[:n.arity]))
}

func evalExistsBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, toKey toKeyFn[K], _ fromKeyFn[K]) value.Value {
	tree := n.impls[0].(*btree.Tree[K])
	var pat [relation.MaxArity]value.Value
	ex.fillTuple(n, ctx, pat[:n.prefix])
	switch {
	case n.prefix == n.arity:
		return boolVal(tree.Contains(toKey(pat[:n.arity])))
	case n.prefix == 0:
		return boolVal(tree.Size() > 0)
	default:
		it := btRange[K](n, pat[:n.prefix], toKey)
		_, ok := it.Next()
		return boolVal(ok)
	}
}

// bindKey writes key k into the context slot for n.tupleID, decoding to
// source coordinates when static reordering is off.
func bindKey[K btree.Key[K]](n *inode, ctx *context, k K, fromKey fromKeyFn[K]) {
	slot := ctx.tuples[n.tupleID]
	if n.decode {
		var scratch [relation.MaxArity]value.Value
		fromKey(k, scratch[:n.arity])
		n.order.Decode(slot, scratch[:n.arity])
		return
	}
	fromKey(k, slot)
}

func evalScanBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, _ toKeyFn[K], fromKey fromKeyFn[K]) value.Value {
	it := n.impls[0].(*btree.Tree[K]).Iter()
	for {
		k, ok := it.Next()
		if !ok {
			return 0
		}
		bindKey(n, ctx, k, fromKey)
		ex.countIter(ctx)
		ex.eval(n.nested, ctx)
	}
}

func evalIndexScanBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, toKey toKeyFn[K], fromKey fromKeyFn[K]) value.Value {
	var pat [relation.MaxArity]value.Value
	ex.fillTuple(n, ctx, pat[:n.prefix])
	it := btRange[K](n, pat[:n.prefix], toKey)
	for {
		k, ok := it.Next()
		if !ok {
			return 0
		}
		bindKey(n, ctx, k, fromKey)
		ex.countIter(ctx)
		ex.eval(n.nested, ctx)
	}
}

func evalChoiceBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, _ toKeyFn[K], fromKey fromKeyFn[K]) value.Value {
	it := n.impls[0].(*btree.Tree[K]).Iter()
	for {
		k, ok := it.Next()
		if !ok {
			return 0
		}
		bindKey(n, ctx, k, fromKey)
		ex.countIter(ctx)
		if n.cond == nil || ex.eval(n.cond, ctx) != 0 {
			ex.eval(n.nested, ctx)
			return 0
		}
	}
}

func evalIndexChoiceBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, toKey toKeyFn[K], fromKey fromKeyFn[K]) value.Value {
	var pat [relation.MaxArity]value.Value
	ex.fillTuple(n, ctx, pat[:n.prefix])
	it := btRange[K](n, pat[:n.prefix], toKey)
	for {
		k, ok := it.Next()
		if !ok {
			return 0
		}
		bindKey(n, ctx, k, fromKey)
		ex.countIter(ctx)
		if n.cond == nil || ex.eval(n.cond, ctx) != 0 {
			ex.eval(n.nested, ctx)
			return 0
		}
	}
}

func aggBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, it btree.Iter[K], fromKey fromKeyFn[K]) value.Value {
	ctx.tuples[n.tupleID] = ctx.base[n.tupleID]
	var acc aggAcc
	acc.Init(ram.AggKind(n.a), value.Type(n.b))
	for {
		k, ok := it.Next()
		if !ok {
			break
		}
		bindKey(n, ctx, k, fromKey)
		ex.countIter(ctx)
		if n.cond != nil && ex.eval(n.cond, ctx) == 0 {
			continue
		}
		var v value.Value
		if n.target != nil {
			v = ex.eval(n.target, ctx)
		}
		acc.Step(v)
	}
	if res, ok := acc.Finish(); ok {
		ctx.tuples[n.tupleID] = tuple.Tuple{res}
		ex.eval(n.nested, ctx)
	}
	return 0
}

func evalAggregateBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, _ toKeyFn[K], fromKey fromKeyFn[K]) value.Value {
	return aggBT(ex, n, ctx, n.impls[0].(*btree.Tree[K]).Iter(), fromKey)
}

func evalIndexAggregateBT[K btree.Key[K]](ex *executor, n *inode, ctx *context, toKey toKeyFn[K], fromKey fromKeyFn[K]) value.Value {
	var pat [relation.MaxArity]value.Value
	ex.fillTuple(n, ctx, pat[:n.prefix])
	return aggBT(ex, n, ctx, btRange[K](n, pat[:n.prefix], toKey), fromKey)
}

// execNonGeneric handles the handwritten specialized instructions for the
// structures that are not arity-generic: the binary equivalence relation
// and the dynamic-depth brie.
func (ex *executor) execNonGeneric(n *inode, ctx *context) (value.Value, bool) {
	switch n.op {
	case opInsertEq:
		var t [2]value.Value
		ex.fillTuple(n, ctx, t[:])
		if ex.stageInsert(n, ctx, t[:]) {
			return 0, true
		}
		rel := n.impls[0].(*eqrel.Rel)
		added := rel.Insert(t[0], t[1])
		ex.countInsert(ctx, added)
		if n.rstats != nil {
			n.rstats.CountInsert(added)
		}
		return 0, true
	case opScanEq:
		it := n.impls[0].(*eqrel.Rel).Iter()
		slot := ctx.tuples[n.tupleID]
		for {
			t, ok := it.Next()
			if !ok {
				return 0, true
			}
			copy(slot, t)
			ex.countIter(ctx)
			ex.eval(n.nested, ctx)
		}
	case opIndexScanEq:
		rel := n.impls[0].(*eqrel.Rel)
		var pat [2]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		slot := ctx.tuples[n.tupleID]
		if n.prefix == 2 {
			if rel.Contains(pat[0], pat[1]) {
				copy(slot, pat[:])
				ex.countIter(ctx)
				ex.eval(n.nested, ctx)
			}
			return 0, true
		}
		it := rel.PrefixFirst(pat[0])
		for {
			t, ok := it.Next()
			if !ok {
				return 0, true
			}
			copy(slot, t)
			ex.countIter(ctx)
			ex.eval(n.nested, ctx)
		}
	case opExistsEq:
		rel := n.impls[0].(*eqrel.Rel)
		var pat [2]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		switch n.prefix {
		case 0:
			return boolVal(rel.Size() > 0), true
		case 1:
			return boolVal(rel.Class(pat[0]) != nil), true
		default:
			return boolVal(rel.Contains(pat[0], pat[1])), true
		}

	case opInsertBrie:
		var src, enc [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, src[:n.arity])
		if ex.stageInsert(n, ctx, src[:n.arity]) {
			return 0, true
		}
		added := false
		for i, impl := range n.impls {
			n.orders[i].Encode(enc[:n.arity], src[:n.arity])
			if impl.(*brie.Trie).Insert(enc[:n.arity]) && i == 0 {
				added = true
			}
		}
		ex.countInsert(ctx, added)
		if n.rstats != nil {
			n.rstats.CountInsert(added)
		}
		return 0, true
	case opScanBrie, opIndexScanBrie:
		trie := n.impls[0].(*brie.Trie)
		var pat [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		it := trie.Prefix(pat[:n.prefix])
		slot := ctx.tuples[n.tupleID]
		for {
			t, ok := it.Next()
			if !ok {
				return 0, true
			}
			if n.decode {
				n.order.Decode(slot, t)
			} else {
				copy(slot, t)
			}
			ex.countIter(ctx)
			ex.eval(n.nested, ctx)
		}
	case opExistsBrie:
		trie := n.impls[0].(*brie.Trie)
		var pat [relation.MaxArity]value.Value
		ex.fillTuple(n, ctx, pat[:n.prefix])
		if n.prefix == n.arity {
			return boolVal(trie.Contains(pat[:n.arity])), true
		}
		return boolVal(trie.HasPrefix(pat[:n.prefix])), true
	}
	return 0, false
}
