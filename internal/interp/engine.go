package interp

import (
	"fmt"

	"sti/internal/metrics"
	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/relation"
	"sti/internal/rtl"
	"sti/internal/symtab"
	"sti/internal/tuple"
)

// Engine executes a RAM program with the Soufflé Tree Interpreter.
type Engine struct {
	prog *ram.Program
	cfg  Config
	st   *symtab.Table
	rels []*relation.Relation // by RAM relation ID
	root *inode
	prof *profiler
	prov *provenance
	tel  *metrics.Collector // telemetry sink (nil = disabled)
}

// New prepares an engine: it materializes the de-specialized relations and
// generates the interpreter tree for the given configuration. Generation
// cost is deliberately part of the measured interpreter runtime in the
// benchmarks, as in the paper.
func New(prog *ram.Program, st *symtab.Table, cfg Config) *Engine {
	if verify.Debugging() {
		if err := verify.Check(prog, "interp.New"); err != nil {
			panic(err)
		}
	}
	cfg = cfg.normalize()
	e := &Engine{prog: prog, cfg: cfg, st: st, tel: cfg.Metrics}
	for _, rd := range prog.Relations {
		e.rels = append(e.rels, buildRelation(rd, cfg))
	}
	// Bind telemetry before tree generation so the generated insert nodes can
	// cache their target's stats block.
	if e.tel != nil {
		for i, rd := range prog.Relations {
			rel := e.rels[i]
			orders := make([]string, rel.NumIndexes())
			for j := range orders {
				orders[j] = fmt.Sprint([]int(rel.Index(j).Order()))
			}
			rel.AttachMetrics(e.tel.BindRelation(
				rd.ID, rd.Name, rel.Rep().String(), rd.Arity, rd.Aux, rd.BaseID, orders))
		}
	}
	g := &generator{eng: e, cfg: cfg}
	e.root = g.genStatement(prog.Main)
	return e
}

func buildRelation(rd *ram.Relation, cfg Config) *relation.Relation {
	rep := relation.BTree
	switch rd.Rep {
	case ram.RepBrie:
		rep = relation.Brie
	case ram.RepEqRel:
		rep = relation.EqRel
	}
	if cfg.Legacy && rep != relation.EqRel {
		rep = relation.Legacy
	}
	orders := rd.Orders
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(rd.Arity)}
	}
	return relation.New(rd.Name, rep, rd.Arity, orders)
}

// RuntimeError reports an evaluation failure (division by zero, bad
// to_number input, I/O failures). It aliases the shared runtime's error
// type so all backends fail uniformly.
type RuntimeError = rtl.Error

// Run executes the program. io supplies inputs and receives outputs; nil
// uses a fresh in-memory handler (no inputs).
func (e *Engine) Run(io IOHandler) (err error) {
	if io == nil {
		io = NewMemIO()
	}
	if e.cfg.Profile {
		e.prof = newProfiler(e.prog.NumRules)
	}
	if e.cfg.Provenance {
		e.prov = newProvenance(len(e.prog.Relations))
	}
	ex := &executor{
		eng:     e,
		io:      io,
		prof:    e.prof,
		prov:    e.prov,
		tel:     e.tel,
		profile: e.cfg.Profile,
		count:   e.cfg.Profile || e.tel != nil,
		lean:    e.cfg.LeanDispatch,
		workers: e.cfg.Workers,
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	ctx := &context{}
	runStart := e.tel.Begin()
	ex.eval(e.root, ctx)
	if ex.profile {
		// Dispatches outside any query (sequences, loops, IO) are folded
		// from the root context; per-query counters folded at query end.
		e.prof.dispatches += ctx.stats.dispatches
		e.prof.super += ctx.stats.super
	}
	if e.tel != nil {
		e.tel.End(runStart, "run", "run")
		for _, rel := range e.rels {
			if rs := rel.Stats(); rs != nil {
				rs.FinalSize = rel.Size()
			}
		}
		e.tel.Finish()
	}
	return nil
}

// Telemetry returns the engine's attached collector (nil unless
// Config.Metrics was set).
func (e *Engine) Telemetry() *metrics.Collector { return e.tel }

// TotalTuples reports the number of tuples across all relations after a
// run, for throughput metrics in the benchmarks.
func (e *Engine) TotalTuples() int {
	total := 0
	for _, r := range e.rels {
		total += r.Size()
	}
	return total
}

// Profile returns the profiling report of the last Run (nil unless
// Config.Profile was set). When the run also carried a metrics collector,
// the engine-wide telemetry snapshot is attached.
func (e *Engine) Profile() *Profile {
	if e.prof == nil {
		return nil
	}
	p := e.prof.report()
	p.Telemetry = e.tel.Report()
	return p
}

// Relation returns the runtime relation by name, or nil.
func (e *Engine) Relation(name string) *relation.Relation {
	for i, rd := range e.prog.Relations {
		if rd.Name == name {
			return e.rels[i]
		}
	}
	return nil
}

// Tuples returns all tuples of a relation in source order, for tests and
// the public API.
func (e *Engine) Tuples(name string) ([]tuple.Tuple, error) {
	rel := e.Relation(name)
	if rel == nil {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	var out []tuple.Tuple
	it := rel.Scan()
	for {
		t, ok := it.Next()
		if !ok {
			return out, nil
		}
		out = append(out, tuple.Clone(t))
	}
}

// SymbolTable exposes the engine's symbol table.
func (e *Engine) SymbolTable() *symtab.Table { return e.st }
