package interp

import (
	"fmt"

	"sti/internal/metrics"
	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/relation"
	"sti/internal/rtl"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

// Phase is the engine's lifecycle state. A one-shot Run walks all three
// states in a single call; a resident engine (sti.Database) drives them
// explicitly and then alternates between InsertFacts/EvalUpdate (staying
// in PhaseReady) for each applied batch.
type Phase uint8

// Engine lifecycle states.
const (
	PhaseNew    Phase = iota // relations empty, nothing loaded
	PhaseLoaded              // EDB inputs loaded, fixpoint not yet evaluated
	PhaseReady               // fixpoint materialized, queries are served
)

func (p Phase) String() string {
	switch p {
	case PhaseLoaded:
		return "loaded"
	case PhaseReady:
		return "ready"
	default:
		return "new"
	}
}

// Engine executes a RAM program with the Soufflé Tree Interpreter.
type Engine struct {
	prog *ram.Program
	cfg  Config
	st   *symtab.Table
	rels []*relation.Relation // by RAM relation ID

	// The generated tree is split at the top level into the load (IOLoad),
	// eval (queries, fixpoint loops), and store (IOStore/IOPrintSize)
	// phases; any part may be nil. When Main's top-level sequence is not
	// shaped load* eval* store*, everything lives in rootEval.
	rootLoad  *inode
	rootEval  *inode
	rootStore *inode
	// rootUpdate is generated lazily from prog.Update on first EvalUpdate;
	// rootDelete likewise from prog.Delete on first EvalDelete.
	rootUpdate *inode
	rootDelete *inode
	gen        *generator
	phase      Phase

	// recent maps a source relation ID to its recent_R freshness tracker
	// (nil entries when the program has no update variant or the relation
	// is an eqrel). del likewise maps to the del_R retraction tracker of
	// deletable programs.
	recent []*relation.Relation
	del    []*relation.Relation

	prof *profiler
	prov *provenance
	tel  *metrics.Collector // telemetry sink (nil = disabled)

	// reqTag is the request ID attributed to telemetry spans of the next
	// evaluation (Eval/EvalUpdate/EvalDelete). Resident databases set it at
	// the top of Apply, under the single-writer lock, so the engine's trace
	// tree joins the request-scoped observability layer. Empty when no
	// request is attributed.
	reqTag string
}

// New prepares an engine: it materializes the de-specialized relations and
// generates the interpreter tree for the given configuration. Generation
// cost is deliberately part of the measured interpreter runtime in the
// benchmarks, as in the paper.
func New(prog *ram.Program, st *symtab.Table, cfg Config) *Engine {
	if verify.Debugging() {
		if err := verify.Check(prog, "interp.New"); err != nil {
			panic(err)
		}
	}
	cfg = cfg.normalize()
	e := &Engine{prog: prog, cfg: cfg, st: st, tel: cfg.Metrics}
	for _, rd := range prog.Relations {
		e.rels = append(e.rels, buildRelation(rd, cfg))
	}
	e.recent = make([]*relation.Relation, len(prog.Relations))
	e.del = make([]*relation.Relation, len(prog.Relations))
	for i, rd := range prog.Relations {
		if rd.Aux && rd.Kind == ram.AuxRecent {
			e.recent[rd.BaseID] = e.rels[i]
		}
		if rd.Aux && rd.Kind == ram.AuxDel {
			e.del[rd.BaseID] = e.rels[i]
		}
	}
	// Bind telemetry before tree generation so the generated insert nodes can
	// cache their target's stats block.
	if e.tel != nil {
		for i, rd := range prog.Relations {
			rel := e.rels[i]
			orders := make([]string, rel.NumIndexes())
			for j := range orders {
				orders[j] = fmt.Sprint([]int(rel.Index(j).Order()))
			}
			rel.AttachMetrics(e.tel.BindRelation(
				rd.ID, rd.Name, rel.Rep().String(), rd.Arity, rd.Aux, rd.BaseID, orders))
		}
	}
	e.gen = &generator{eng: e, cfg: cfg}
	e.genRoots()
	return e
}

// genRoots partitions Main's top-level sequence into the load/eval/store
// trees. ast2ram emits Main as IOLoad*, queries/strata, IO(Store|PrintSize)*;
// if a transformed program no longer has that shape, the whole statement
// becomes the eval tree and the load/store phases are empty.
func (e *Engine) genRoots() {
	seq, ok := e.prog.Main.(*ram.Sequence)
	if ok {
		split, prev := true, 0
		for _, s := range seq.Stmts {
			p := phaseOf(s)
			if p < prev {
				split = false
				break
			}
			prev = p
		}
		if split {
			var parts [3][]ram.Statement
			for _, s := range seq.Stmts {
				parts[phaseOf(s)] = append(parts[phaseOf(s)], s)
			}
			e.rootLoad = e.genPart(parts[0])
			e.rootEval = e.genPart(parts[1])
			e.rootStore = e.genPart(parts[2])
			return
		}
	}
	e.rootEval = e.gen.genStatement(e.prog.Main)
}

func (e *Engine) genPart(stmts []ram.Statement) *inode {
	if len(stmts) == 0 {
		return nil
	}
	return e.gen.genStatement(&ram.Sequence{Stmts: stmts})
}

// phaseOf classifies a top-level statement: 0 load, 1 eval, 2 store.
func phaseOf(s ram.Statement) int {
	if io, ok := s.(*ram.IO); ok {
		if io.Kind == ram.IOLoad {
			return 0
		}
		return 2
	}
	return 1
}

func buildRelation(rd *ram.Relation, cfg Config) *relation.Relation {
	rep := relation.BTree
	switch rd.Rep {
	case ram.RepBrie:
		rep = relation.Brie
	case ram.RepEqRel:
		rep = relation.EqRel
	}
	if cfg.Legacy && rep != relation.EqRel {
		rep = relation.Legacy
	}
	orders := rd.Orders
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(rd.Arity)}
	}
	if rel := tieredRelation(rd, cfg, orders); rel != nil {
		return rel
	}
	if shardable(rd, cfg) {
		rel := relation.NewSharded(rd.Name, rep, rd.Arity, orders, cfg.Shards, rd.ShardCol())
		if rd.Counting {
			rel.EnableCounting()
		}
		return rel
	}
	rel := relation.New(rd.Name, rep, rd.Arity, orders)
	if rd.Counting {
		rel.EnableCounting()
	}
	return rel
}

// tieredRelation consults the storage-tier policy (Config.Tier) for the
// declaration. Only base input relations are candidates: auxiliary and
// derived relations are recomputed from the EDB on recovery, so persisting
// them buys nothing and would put swap-heavy delta traffic on disk.
// Ineligible *input* relations are reported through Tier.Gate so operators
// can see why they stayed in memory. Returns nil when the relation should
// use the in-memory portfolio.
func tieredRelation(rd *ram.Relation, cfg Config, orders []tuple.Order) *relation.Relation {
	if cfg.Tier == nil || rd.Aux || !rd.Input {
		return nil
	}
	switch {
	case rd.Arity == 0:
		cfg.Tier.Gate(rd.Name, "nullary relation")
	case rd.Rep == ram.RepEqRel:
		cfg.Tier.Gate(rd.Name, "eqrel: union-find has no persistent form")
	case cfg.Legacy:
		cfg.Tier.Gate(rd.Name, "legacy comparator store keeps its own layout")
	case shardable(rd, cfg):
		cfg.Tier.Gate(rd.Name, "sharded: hash partitions stay in memory")
	default:
		if rel := relation.NewPersistent(rd.Name, rd.Arity, orders, cfg.Tier); rel != nil {
			if rd.Counting {
				rel.EnableCounting()
			}
			return rel
		}
		cfg.Tier.Gate(rd.Name, "tier declined")
	}
	return nil
}

// shardable reports whether the declaration gets hash-partitioned indexes
// under the configuration: sharding must be on, the translator must have
// stamped a shard plan (nullary and eqrel relations never carry one), and
// the store must be an in-memory set adapter — the legacy comparator store
// keeps its own layout, and counting sidecars are maintained at the
// relation level either way.
func shardable(rd *ram.Relation, cfg Config) bool {
	return cfg.Shards >= 1 && !cfg.Legacy &&
		rd.ShardKey > 0 && rd.Arity > 0 && rd.Rep != ram.RepEqRel
}

// RuntimeError reports an evaluation failure (division by zero, bad
// to_number input, I/O failures). It aliases the shared runtime's error
// type so all backends fail uniformly.
type RuntimeError = rtl.Error

// Phase reports the engine's lifecycle state.
func (e *Engine) Phase() Phase { return e.phase }

// SetRequest tags the telemetry spans of subsequent evaluations with a
// request ID ("" clears the tag). Must only be called while holding the
// mutation right on the engine (the resident database's writer lock) — the
// tag is read by the evaluation entry points on the same goroutine.
func (e *Engine) SetRequest(id string) { e.reqTag = id }

// spanArgs builds the trace-event argument map joining a span to the
// request that caused it. Only called when tracing is enabled, so the map
// allocation never lands on untraced paths.
func (e *Engine) spanArgs(req string) map[string]any {
	if req == "" {
		return nil
	}
	return map[string]any{"request": req}
}

// Incremental reports whether the program carries an update entry point,
// i.e. whether EvalUpdate can re-evaluate insert-only batches without a
// full recomputation.
func (e *Engine) Incremental() bool { return e.prog.Update != nil }

// Deletable reports whether the program carries a delete entry point, i.e.
// whether EvalDelete can retract staged facts without a full recomputation.
func (e *Engine) Deletable() bool { return e.prog.Delete != nil }

// NoUpdateReason returns the analysis fact explaining a missing update
// entry point ("" when the program is incremental).
func (e *Engine) NoUpdateReason() string { return e.prog.NoUpdateReason }

// NoDeleteReason returns the analysis fact explaining a missing delete
// entry point ("" when the program is deletable).
func (e *Engine) NoDeleteReason() string { return e.prog.NoDeleteReason }

// execTree evaluates one generated tree, converting RuntimeError panics
// into errors. A nil root is a no-op; nil io runs against a fresh
// in-memory handler.
func (e *Engine) execTree(io IOHandler, root *inode) (err error) {
	if root == nil {
		return nil
	}
	if io == nil {
		io = NewMemIO()
	}
	if e.cfg.Profile && e.prof == nil {
		e.prof = newProfiler(e.prog.NumRules)
	}
	if e.cfg.Provenance && e.prov == nil {
		e.prov = newProvenance(len(e.prog.Relations))
	}
	ex := &executor{
		eng:     e,
		io:      io,
		prof:    e.prof,
		prov:    e.prov,
		tel:     e.tel,
		profile: e.cfg.Profile,
		count:   e.cfg.Profile || e.tel != nil,
		lean:    e.cfg.LeanDispatch,
		workers: e.cfg.Workers,
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	ctx := &context{}
	ex.eval(root, ctx)
	if ex.profile && e.prof != nil {
		// Dispatches outside any query (sequences, loops, IO) are folded
		// from the root context; per-query counters folded at query end.
		e.prof.dispatches += ctx.stats.dispatches
		e.prof.super += ctx.stats.super
	}
	return nil
}

// Run executes the whole program — load, eval, store — in one shot. io
// supplies inputs and receives outputs; nil uses a fresh in-memory handler
// (no inputs). The engine must be in PhaseNew; resident callers drive the
// phases individually instead.
func (e *Engine) Run(io IOHandler) error {
	if e.phase != PhaseNew {
		return fmt.Errorf("interp: Run in phase %s (want new; use Reset or the phase methods)", e.phase)
	}
	if io == nil {
		io = NewMemIO()
	}
	if e.cfg.Profile {
		e.prof = newProfiler(e.prog.NumRules)
	}
	if e.cfg.Provenance {
		e.prov = newProvenance(len(e.prog.Relations))
	}
	runStart := e.tel.Begin()
	for _, root := range []*inode{e.rootLoad, e.rootEval, e.rootStore} {
		if err := e.execTree(io, root); err != nil {
			return err
		}
	}
	e.phase = PhaseReady
	if e.tel != nil {
		e.tel.End(runStart, "run", "run")
		for _, rel := range e.rels {
			if rs := rel.Stats(); rs != nil {
				rs.FinalSize = rel.Size()
			}
		}
		e.tel.Finish()
	}
	return nil
}

// Load runs the program's input phase (IOLoad statements) against io,
// moving the engine from PhaseNew to PhaseLoaded.
func (e *Engine) Load(io IOHandler) error {
	if e.phase != PhaseNew {
		return fmt.Errorf("interp: Load in phase %s (want new)", e.phase)
	}
	if err := e.execTree(io, e.rootLoad); err != nil {
		return err
	}
	e.phase = PhaseLoaded
	return nil
}

// Eval runs the evaluation phase (facts, strata, fixpoint loops) to the
// full fixpoint, moving the engine to PhaseReady. Calling Eval directly
// from PhaseNew evaluates with no loaded inputs.
func (e *Engine) Eval() error {
	if e.phase == PhaseReady {
		return fmt.Errorf("interp: Eval in phase %s (already evaluated)", e.phase)
	}
	span := e.tel.Begin()
	if err := e.execTree(nil, e.rootEval); err != nil {
		return err
	}
	if e.tel != nil {
		e.tel.EndArgs(span, "run", "eval", e.spanArgs(e.reqTag))
	}
	e.phase = PhaseReady
	return nil
}

// Store runs the output phase (IOStore/IOPrintSize statements) against io.
// It may be called any number of times once the engine is PhaseReady.
func (e *Engine) Store(io IOHandler) error {
	if e.phase != PhaseReady {
		return fmt.Errorf("interp: Store in phase %s (want ready)", e.phase)
	}
	return e.execTree(io, e.rootStore)
}

// EvalUpdate incrementally re-evaluates the program after fresh facts were
// staged with InsertFacts: it runs Program.Update, the delta-restart
// variant of every stratum, which derives only consequences of the fresh
// tuples. The engine stays PhaseReady. The update tree is generated on
// first use, so one-shot runs never pay for it.
func (e *Engine) EvalUpdate() error {
	if e.phase != PhaseReady {
		return fmt.Errorf("interp: EvalUpdate in phase %s (want ready)", e.phase)
	}
	if e.prog.Update == nil {
		if why := e.prog.NoUpdateReason; why != "" {
			return fmt.Errorf("interp: program has no update entry point: %s", why)
		}
		return fmt.Errorf("interp: program has no update entry point (not insert-monotone)")
	}
	if e.rootUpdate == nil {
		e.rootUpdate = e.gen.genStatement(e.prog.Update)
	}
	span := e.tel.Begin()
	err := e.execTree(nil, e.rootUpdate)
	if e.tel != nil {
		e.tel.EndArgs(span, "run", "update", e.spanArgs(e.reqTag))
	}
	return err
}

// EvalDelete incrementally retracts the facts staged with DeleteFacts: it
// runs Program.Delete, which computes the exact set of tuples losing their
// last derivation (support counting for non-recursive strata, overdelete +
// rederive for recursive ones) and removes them. The engine stays
// PhaseReady. The delete tree is generated on first use.
func (e *Engine) EvalDelete() error {
	if e.phase != PhaseReady {
		return fmt.Errorf("interp: EvalDelete in phase %s (want ready)", e.phase)
	}
	if e.prog.Delete == nil {
		if why := e.prog.NoDeleteReason; why != "" {
			return fmt.Errorf("interp: program has no delete entry point: %s", why)
		}
		return fmt.Errorf("interp: program has no delete entry point")
	}
	if e.rootDelete == nil {
		e.rootDelete = e.gen.genStatement(e.prog.Delete)
	}
	span := e.tel.Begin()
	err := e.execTree(nil, e.rootDelete)
	if e.tel != nil {
		e.tel.EndArgs(span, "run", "delete", e.spanArgs(e.reqTag))
	}
	return err
}

// DeleteFacts stages encoded tuples of a source relation for retraction: the
// tuples currently present are recorded in the relation's del_R tracker for
// a following EvalDelete, which decides what else dies with them and performs
// all physical removal. Nothing is removed here — queries keep observing the
// old state until EvalDelete runs. Tuples not present are ignored. It reports
// how many tuples were staged.
func (e *Engine) DeleteFacts(name string, tuples []tuple.Tuple) (int, error) {
	rd := e.decl(name)
	if rd == nil {
		return 0, fmt.Errorf("unknown relation %s", name)
	}
	del := e.del[rd.ID]
	if del == nil {
		if why := e.prog.NoDeleteReason; why != "" {
			return 0, fmt.Errorf("relation %s has no retraction tracker: %s", name, why)
		}
		return 0, fmt.Errorf("relation %s has no retraction tracker", name)
	}
	rel := e.rels[rd.ID]
	staged := 0
	for _, t := range tuples {
		if len(t) != rd.Arity {
			return staged, fmt.Errorf("relation %s has arity %d, got a tuple of %d values", name, rd.Arity, len(t))
		}
		if rel.Contains(t) && del.Insert(t) {
			staged++
		}
	}
	return staged, nil
}

// Reset clears every relation (including all scratch and freshness
// trackers) and returns the engine to PhaseNew, keeping the generated
// trees and index structures for reuse.
func (e *Engine) Reset() {
	for _, r := range e.rels {
		r.Clear()
	}
	e.prof = nil
	e.prov = nil
	e.phase = PhaseNew
}

// InsertFacts inserts encoded tuples directly into a source relation,
// bypassing IO. Tuples not already present are also staged into the
// relation's recent_R freshness tracker (when the program has one) so a
// following EvalUpdate restarts from exactly the fresh set. It reports how
// many tuples were newly added.
func (e *Engine) InsertFacts(name string, tuples []tuple.Tuple) (int, error) {
	rd := e.decl(name)
	if rd == nil {
		return 0, fmt.Errorf("unknown relation %s", name)
	}
	rel := e.rels[rd.ID]
	recent := e.recent[rd.ID]
	added := 0
	for _, t := range tuples {
		if len(t) != rd.Arity {
			return added, fmt.Errorf("relation %s has arity %d, got a tuple of %d values", name, rd.Arity, len(t))
		}
		if rel.Insert(t) {
			added++
			if recent != nil {
				recent.Insert(t)
			}
		}
	}
	return added, nil
}

// ClearRecents drains every recent_R freshness tracker. Resident engines
// call it after a full recomputation, which replays facts through
// InsertFacts but never runs the update program that normally drains them.
func (e *Engine) ClearRecents() {
	for _, r := range e.recent {
		if r != nil {
			r.Clear()
		}
	}
}

// decl returns the declaration of a non-aux relation by name, or nil.
func (e *Engine) decl(name string) *ram.Relation {
	for _, rd := range e.prog.Relations {
		if rd.Name == name && !rd.Aux {
			return rd
		}
	}
	return nil
}

// Query returns the tuples of a relation matching a partially bound
// pattern: mask[i] set means position i must equal pattern[i]. When some
// index's order starts with exactly the bound positions the lookup is a
// prefix scan on it; otherwise it degrades to a filtered full scan. The
// result order is deterministic (the chosen index's encoded order, decoded
// to source coordinates) and tuples are safe to retain.
func (e *Engine) Query(name string, pattern tuple.Tuple, mask []bool) ([]tuple.Tuple, error) {
	return e.QueryReq("", name, pattern, mask)
}

// QueryReq is Query with a request ID attributed to its telemetry span,
// joining the trace tree to the observability layer. Safe for concurrent
// callers: the ID travels as an argument, not through engine state.
func (e *Engine) QueryReq(req, name string, pattern tuple.Tuple, mask []bool) ([]tuple.Tuple, error) {
	span := e.tel.Begin()
	out, err := e.query(name, pattern, mask)
	if e.tel != nil {
		e.tel.EndArgs(span, "query", "api:"+name, e.spanArgs(req))
	}
	return out, err
}

func (e *Engine) query(name string, pattern tuple.Tuple, mask []bool) ([]tuple.Tuple, error) {
	rd := e.decl(name)
	if rd == nil {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	if len(pattern) != rd.Arity || len(mask) != rd.Arity {
		return nil, fmt.Errorf("relation %s has arity %d, got a pattern of %d values", name, rd.Arity, len(pattern))
	}
	rel := e.rels[rd.ID]
	k := 0
	for _, b := range mask {
		if b {
			k++
		}
	}
	if k == 0 {
		return e.Tuples(name)
	}
	var out []tuple.Tuple
	if idx, order := matchIndex(rel, mask, k); idx != nil {
		enc := make(tuple.Tuple, rd.Arity)
		for j := 0; j < k; j++ {
			enc[j] = pattern[order[j]]
		}
		it := relation.NewDecoder(idx.PrefixScan(enc, k), order)
		for {
			t, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, tuple.Clone(t))
		}
		return out, nil
	}
	it := rel.Scan()
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		match := true
		for i, b := range mask {
			if b && t[i] != pattern[i] {
				match = false
				break
			}
		}
		if match {
			out = append(out, tuple.Clone(t))
		}
	}
	return out, nil
}

// matchIndex finds an index whose order's first k positions are exactly
// the bound set, so the bound pattern forms a prefix.
func matchIndex(rel *relation.Relation, mask []bool, k int) (relation.Index, tuple.Order) {
	for i := 0; i < rel.NumIndexes(); i++ {
		idx := rel.Index(i)
		order := idx.Order()
		ok := true
		for j := 0; j < k; j++ {
			if !mask[order[j]] {
				ok = false
				break
			}
		}
		if ok {
			return idx, order
		}
	}
	return nil, nil
}

// ScanRange returns the tuples of a relation whose first attribute lies in
// [lo, hi], compared under the attribute's declared type. The result is in
// primary-index order.
func (e *Engine) ScanRange(name string, lo, hi value.Value) ([]tuple.Tuple, error) {
	return e.ScanRangeReq("", name, lo, hi)
}

// ScanRangeReq is ScanRange with a request ID attributed to its telemetry
// span.
func (e *Engine) ScanRangeReq(req, name string, lo, hi value.Value) ([]tuple.Tuple, error) {
	span := e.tel.Begin()
	out, err := e.scanRange(name, lo, hi)
	if e.tel != nil {
		e.tel.EndArgs(span, "query", "scan:"+name, e.spanArgs(req))
	}
	return out, err
}

func (e *Engine) scanRange(name string, lo, hi value.Value) ([]tuple.Tuple, error) {
	rd := e.decl(name)
	if rd == nil {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	if rd.Arity == 0 {
		return nil, fmt.Errorf("relation %s has no attributes to range over", name)
	}
	typ := rd.Types[0]
	var out []tuple.Tuple
	it := e.rels[rd.ID].Scan()
	for {
		t, ok := it.Next()
		if !ok {
			return out, nil
		}
		if rtl.Compare(ram.CmpGE, typ, t[0], lo) && rtl.Compare(ram.CmpLE, typ, t[0], hi) {
			out = append(out, tuple.Clone(t))
		}
	}
}

// Telemetry returns the engine's attached collector (nil unless
// Config.Metrics was set).
func (e *Engine) Telemetry() *metrics.Collector { return e.tel }

// TotalTuples reports the number of tuples across all relations after a
// run, for throughput metrics in the benchmarks.
func (e *Engine) TotalTuples() int {
	total := 0
	for _, r := range e.rels {
		total += r.Size()
	}
	return total
}

// Profile returns the profiling report of the last Run (nil unless
// Config.Profile was set). When the run also carried a metrics collector,
// the engine-wide telemetry snapshot is attached.
func (e *Engine) Profile() *Profile {
	if e.prof == nil {
		return nil
	}
	p := e.prof.report()
	p.Telemetry = e.tel.Report()
	return p
}

// Relation returns the runtime relation by name, or nil.
func (e *Engine) Relation(name string) *relation.Relation {
	for i, rd := range e.prog.Relations {
		if rd.Name == name {
			return e.rels[i]
		}
	}
	return nil
}

// Tuples returns all tuples of a relation in primary-index order (the
// encoded lexicographic order of index 0, decoded to source coordinates).
// That order is deterministic across runs and engines for identical
// contents, which the public API relies on for stable query results.
func (e *Engine) Tuples(name string) ([]tuple.Tuple, error) {
	rel := e.Relation(name)
	if rel == nil {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	var out []tuple.Tuple
	it := rel.Scan()
	for {
		t, ok := it.Next()
		if !ok {
			return out, nil
		}
		out = append(out, tuple.Clone(t))
	}
}

// SymbolTable exposes the engine's symbol table.
func (e *Engine) SymbolTable() *symtab.Table { return e.st }
