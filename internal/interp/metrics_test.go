package interp

import (
	"strings"
	"testing"
	"time"

	"sti/internal/metrics"
	"sti/internal/tuple"
)

// runWithTelemetry executes src with a metrics collector attached and
// returns the engine and the telemetry report.
func runWithTelemetry(t testing.TB, src string, facts map[string][]tuple.Tuple, cfg Config) (*Engine, *metrics.Report) {
	t.Helper()
	tel := metrics.New()
	cfg.Metrics = tel
	eng, _ := run(t, src, facts, cfg)
	return eng, tel.Report()
}

func relReport(t testing.TB, r *metrics.Report, name string) *metrics.RelationReport {
	t.Helper()
	for _, rel := range r.Relations {
		if rel.Name == name {
			return rel
		}
	}
	t.Fatalf("relation %q missing from telemetry report", name)
	return nil
}

// The delta curve of transitive closure over an n-edge chain is fully
// determined: iteration i derives the paths of length i+1 (n-1-i of them),
// and the loop exits after one final empty iteration — n iterations total,
// matching the graph diameter.
func TestTelemetryDeltaCurve(t *testing.T) {
	const n = 8
	tel := metrics.New()
	cfg := DefaultConfig()
	cfg.Metrics = tel
	eng, _ := run(t, tcSrc, chainFacts(n), cfg)
	r := tel.Report()

	if len(r.Fixpoints) != 1 {
		t.Fatalf("got %d fixpoints, want 1: %+v", len(r.Fixpoints), r.Fixpoints)
	}
	f := r.Fixpoints[0]
	if f.Iterations != n {
		t.Fatalf("iterations = %d, want the chain diameter %d (curve %v)",
			f.Iterations, n, f.DeltaCurve)
	}
	if !strings.Contains(f.Label, "path") {
		t.Fatalf("fixpoint label %q does not name the recursive relation", f.Label)
	}
	// Curve: n-1, n-2, …, 1, 0.
	if len(f.DeltaCurve) != n {
		t.Fatalf("curve has %d points, want %d: %v", len(f.DeltaCurve), n, f.DeltaCurve)
	}
	for i, d := range f.DeltaCurve {
		want := uint64(0)
		if i < n-1 {
			want = uint64(n - 1 - i)
		}
		if d != want {
			t.Fatalf("delta[%d] = %d, want %d (curve %v)", i, d, want, f.DeltaCurve)
		}
	}
	if curve := f.RelationCurves["path"]; len(curve) != n {
		t.Fatalf("per-relation curve = %v", curve)
	}

	// Relation stats: path holds all n(n+1)/2 pairs, every insert fresh
	// (the semi-naive existence filter rejects re-derivations pre-insert),
	// and the peak delta is the first recursive iteration's n-1 tuples.
	path := relReport(t, r, "path")
	total := uint64(n * (n + 1) / 2)
	if path.Inserts != total || uint64(path.FinalSize) != total {
		t.Fatalf("path inserts=%d size=%d, want %d", path.Inserts, path.FinalSize, total)
	}
	if path.PeakDelta != n-1 {
		t.Fatalf("path peak delta = %d, want %d", path.PeakDelta, n-1)
	}
	if eng.Relation("path").Size() != int(total) {
		t.Fatalf("engine size disagrees with telemetry")
	}
}

// Counters must agree between serial and parallel execution: staging buffers
// change where inserts happen, not how many.
func TestTelemetryParallelSerialParity(t *testing.T) {
	const n = 60
	serialCfg := DefaultConfig()
	serialCfg.Workers = 1
	_, serial := runWithTelemetry(t, tcSrc, chainFacts(n), serialCfg)

	parCfg := DefaultConfig()
	parCfg.Workers = 4
	_, par := runWithTelemetry(t, tcSrc, chainFacts(n), parCfg)

	for _, name := range []string{"path", "edge"} {
		s, p := relReport(t, serial, name), relReport(t, par, name)
		if s.FinalSize != p.FinalSize {
			t.Errorf("%s: final size serial=%d parallel=%d", name, s.FinalSize, p.FinalSize)
		}
		if s.Inserts != p.Inserts {
			t.Errorf("%s: inserts serial=%d parallel=%d", name, s.Inserts, p.Inserts)
		}
		if s.DedupHits != p.DedupHits {
			t.Errorf("%s: dedup serial=%d parallel=%d", name, s.DedupHits, p.DedupHits)
		}
		if s.PeakDelta != p.PeakDelta {
			t.Errorf("%s: peak delta serial=%d parallel=%d", name, s.PeakDelta, p.PeakDelta)
		}
	}
	if len(serial.Fixpoints) != 1 || len(par.Fixpoints) != 1 {
		t.Fatalf("fixpoint counts: serial=%d parallel=%d", len(serial.Fixpoints), len(par.Fixpoints))
	}
	sf, pf := serial.Fixpoints[0], par.Fixpoints[0]
	if sf.Iterations != pf.Iterations {
		t.Fatalf("iterations: serial=%d parallel=%d", sf.Iterations, pf.Iterations)
	}
	for i := range sf.DeltaCurve {
		if sf.DeltaCurve[i] != pf.DeltaCurve[i] {
			t.Fatalf("delta curves diverge at %d: serial=%v parallel=%v",
				i, sf.DeltaCurve, pf.DeltaCurve)
		}
	}
	// The parallel run must actually have exercised the staging path.
	if par.Parallel == nil || par.Parallel.Scans == 0 {
		t.Fatal("parallel run recorded no partitioned scans")
	}
	var staged uint64
	for _, w := range par.Parallel.Workers {
		staged += w.Staged
	}
	if staged == 0 {
		t.Fatal("parallel run staged no tuples")
	}
}

// Trace output from a real run must parse and nest: run > fixpoint >
// iteration spans, in microseconds.
func TestTelemetryTraceFromRun(t *testing.T) {
	tel := metrics.New()
	tel.EnableTrace(0)
	cfg := DefaultConfig()
	cfg.Metrics = tel
	run(t, tcSrc, chainFacts(6), cfg)

	kept, dropped := tel.TraceEventCount()
	if kept == 0 || dropped != 0 {
		t.Fatalf("kept=%d dropped=%d", kept, dropped)
	}
	var b strings.Builder
	if err := tel.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"traceEvents"`, `"cat":"fixpoint"`, `"iteration 0"`, `"cat":"run"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q", want)
		}
	}
}

// Profile.String must be deterministic: descending time, rule ID breaking
// ties.
func TestProfileStringDeterministic(t *testing.T) {
	p := &Profile{Rules: []RuleProfile{
		{RuleID: 3, Label: "c", Time: time.Millisecond},
		{RuleID: 1, Label: "a", Time: time.Millisecond},
		{RuleID: 2, Label: "b", Time: 2 * time.Millisecond},
	}}
	s := p.String()
	ib, ia, ic := strings.Index(s, "b\n"), strings.Index(s, "a\n"), strings.Index(s, "c\n")
	if ib == -1 || ia == -1 || ic == -1 || !(ib < ia && ia < ic) {
		t.Fatalf("rule order wrong (want b, a, c):\n%s", s)
	}
	if p.String() != s {
		t.Fatal("String not stable across calls")
	}
	// Sorting must not reorder the underlying slice.
	if p.Rules[0].RuleID != 3 {
		t.Fatal("String mutated the profile")
	}
}

// With no collector attached, the telemetry hooks must stay off the
// allocation path: the interpreter pays nil checks only.
func TestDisabledTelemetryNoExtraWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile = true
	eng, _ := run(t, tcSrc, chainFacts(10), cfg)
	if eng.Telemetry() != nil {
		t.Fatal("engine invented a collector")
	}
	if p := eng.Profile(); p == nil || p.Telemetry != nil {
		t.Fatal("profile carries telemetry without a collector")
	}
	for _, name := range []string{"path", "edge"} {
		if eng.Relation(name).Stats() != nil {
			t.Fatalf("%s has stats bound without a collector", name)
		}
	}
}
