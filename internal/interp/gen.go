package interp

import (
	"fmt"

	"sti/internal/compile"
	"sti/internal/metrics"
	"sti/internal/ram"
	"sti/internal/relation"
	"sti/internal/tuple"
)

// generator builds the interpreter tree (INodes) from a RAM program,
// applying the configuration's static optimizations: specialized opcode
// assignment (§4.1), static tuple reordering (§4.2), and super-instruction
// construction (§4.4). This is the "extra code generation of the
// Interpreter Tree" whose cost the paper includes in interpreter runtimes.
type generator struct {
	eng *Engine
	cfg Config

	// coords maps a bound tupleID to the index order its tuples are stored
	// in when static reordering leaves them encoded; nil means source
	// coordinates.
	coords     map[int32]tuple.Order
	widths     map[int32]int32
	prems      map[int32]int32 // tid -> base relation ID (provenance)
	premExists []*inode        // positive full-bound existence checks (provenance)
	negDepth   int
	// pendingParallel marks that the next full scan of the current query is
	// the outermost loop and should be partitioned across workers.
	pendingParallel bool
	// inParallel is true while generating the subtree nested under a
	// partitioned scan: inserts there run on worker goroutines and must
	// stage into worker-local buffers instead of mutating relations.
	inParallel bool
	// sawParallel records that the current query generated a partitioned
	// scan, so the query node must allocate and merge staging buffers.
	sawParallel bool
}

func (g *generator) relation(r *ram.Relation) *relation.Relation {
	return g.eng.rels[r.ID]
}

func (g *generator) genStatement(s ram.Statement) *inode {
	switch s := s.(type) {
	case *ram.Sequence:
		n := &inode{op: opSequence, shadow: s}
		for _, st := range s.Stmts {
			n.children = append(n.children, g.genStatement(st))
		}
		return n
	case *ram.Loop:
		return &inode{op: opLoop, label: s.Label, nested: g.genStatement(s.Body), shadow: s}
	case *ram.Exit:
		n := &inode{op: opExit, cond: g.genCond(s.Cond), shadow: s}
		g.collectSamples(n, n.cond)
		return n
	case *ram.Query:
		g.coords = map[int32]tuple.Order{}
		g.widths = map[int32]int32{}
		g.prems = map[int32]int32{}
		g.premExists = nil
		g.pendingParallel = g.cfg.Workers > 1 && s.Parallel
		g.sawParallel = false
		root := g.genOperation(s.Root)
		g.pendingParallel = false
		widths := make([]int32, s.NumTuples)
		for tid, w := range g.widths {
			widths[tid] = w
		}
		premRels := make([]int32, s.NumTuples)
		for i := range premRels {
			premRels[i] = -1
		}
		for tid, rel := range g.prems {
			premRels[tid] = rel
		}
		return &inode{
			op: opQuery, nested: root, widths: widths, premRels: premRels,
			premExists: g.premExists, staged: g.sawParallel,
			ruleID: int32(s.RuleID), label: s.Label, shadow: s,
		}
	case *ram.Clear:
		return &inode{op: opClear, rel: g.relation(s.Rel), shadow: s}
	case *ram.Swap:
		return &inode{op: opSwap, rel: g.relation(s.A), rel2: g.relation(s.B), shadow: s}
	case *ram.Merge:
		return &inode{op: opMerge, rel: g.relation(s.Dst), rel2: g.relation(s.Src), shadow: s}
	case *ram.Subtract:
		return &inode{op: opSubtract, rel: g.relation(s.Dst), rel2: g.relation(s.Src), shadow: s}
	case *ram.CountMerge:
		return &inode{op: opCountMerge, rel: g.relation(s.Dst), rel2: g.relation(s.Src), rel3: g.relation(s.Fresh), shadow: s}
	case *ram.CountDelete:
		return &inode{op: opCountDelete, rel: g.relation(s.Dst), rel2: g.relation(s.Src), rel3: g.relation(s.Gone), shadow: s}
	case *ram.IO:
		return &inode{op: opIO, rel: g.relation(s.Rel), a: int32(s.Kind), shadow: s}
	case *ram.LogTimer:
		return &inode{op: opLogTimer, label: s.Label, nested: g.genStatement(s.Stmt), shadow: s}
	default:
		panic(fmt.Sprintf("interp: unknown RAM statement %T", s))
	}
}

// scanOpcode picks the (possibly specialized) opcode for a scan-like
// instruction over rel.
func (g *generator) scanOpcode(generic opcode, rel *relation.Relation) opcode {
	if !g.cfg.StaticDispatch {
		return generic
	}
	if rel.Sharded() {
		// Sharded relations have no single concrete tree, but they have one
		// per shard: the sharded specialized forms bind the per-shard slice
		// and route by partition hash (specialized_shard.go). Instructions
		// without a sharded form (choice, aggregates) stay on the dynamic
		// adapter, whose merge preserves sorted enumeration order.
		if sp, ok := shardedOp(generic, rel.Rep(), rel.Arity()); ok {
			return sp
		}
		return generic
	}
	switch rel.Rep() {
	case relation.BTree:
		if sp, ok := specializedOp(generic, rel.Arity()); ok {
			return sp
		}
	case relation.EqRel:
		switch generic {
		case opInsert:
			return opInsertEq
		case opScan:
			return opScanEq
		case opIndexScan:
			return opIndexScanEq
		case opExists:
			return opExistsEq
		}
	case relation.Brie:
		switch generic {
		case opInsert:
			return opInsertBrie
		case opScan:
			return opScanBrie
		case opIndexScan:
			return opIndexScanBrie
		case opExists:
			return opExistsBrie
		}
	}
	return generic
}

// bindScanImpls binds the concrete store(s) of a scan-like node: the single
// impl for unsharded indexes, or the per-shard impl slice plus the encoded
// partition-key position (inode.b) for sharded ones.
func (g *generator) bindScanImpls(n *inode, idx relation.Index) {
	if subs, keyEnc := relation.ShardImpls(idx); subs != nil {
		n.impls = subs
		n.b = int32(keyEnc)
		return
	}
	n.impls = []any{relation.Impl(idx)}
}

func (g *generator) genOperation(o ram.Operation) *inode {
	switch o := o.(type) {
	case *ram.Scan:
		rel := g.relation(o.Rel)
		idx := rel.Primary()
		op := g.scanOpcode(opScan, rel)
		par := false
		if g.pendingParallel {
			// The outermost full scan is partitioned across workers; it
			// runs through the dynamic adapter (whose iterators partition),
			// while everything nested stays specialized.
			g.pendingParallel = false
			if rel.Arity() > 0 {
				op = opScan
				par = true
			}
		}
		n := &inode{
			op:      op,
			par:     par,
			rel:     rel,
			idx:     idx,
			order:   idx.Order(),
			arity:   int32(rel.Arity()),
			tupleID: int32(o.TupleID),
			shadow:  o,
		}
		g.bindScanImpls(n, idx)
		g.widths[n.tupleID] = n.arity
		g.prems[n.tupleID] = int32(o.Rel.BaseID)
		g.bindCoords(n.tupleID, idx.Order(), n)
		if par {
			// Everything nested runs on worker goroutines: inserts must
			// stage into worker-local buffers (merged at the scan barrier).
			g.sawParallel = true
			g.inParallel = true
			n.nested = g.genOperation(o.Nested)
			g.inParallel = false
		} else {
			n.nested = g.genOperation(o.Nested)
		}
		return n

	case *ram.IndexScan:
		// Only a query's outermost *full* scan is parallelized; any other
		// loop kind ends the search.
		g.pendingParallel = false
		rel := g.relation(o.Rel)
		idx := rel.Index(o.IndexID)
		n := &inode{
			op:      g.scanOpcode(opIndexScan, rel),
			rel:     rel,
			idx:     idx,
			order:   idx.Order(),
			arity:   int32(rel.Arity()),
			tupleID: int32(o.TupleID),
			shadow:  o,
		}
		g.bindScanImpls(n, idx)
		n.children, n.prefix = g.genPattern(o.Pattern, idx.Order())
		g.applySuper(n)
		g.widths[n.tupleID] = n.arity
		g.prems[n.tupleID] = int32(o.Rel.BaseID)
		g.bindCoords(n.tupleID, idx.Order(), n)
		n.nested = g.genOperation(o.Nested)
		return n

	case *ram.Choice:
		g.pendingParallel = false
		rel := g.relation(o.Rel)
		idx := rel.Primary()
		op := opChoice
		if g.cfg.StaticDispatch && !rel.Sharded() && rel.Rep() == relation.BTree {
			if sp, ok := specializedOp(opChoice, rel.Arity()); ok {
				op = sp
			}
		}
		n := &inode{
			op: op, rel: rel, idx: idx, order: idx.Order(),
			arity: int32(rel.Arity()), tupleID: int32(o.TupleID), shadow: o,
		}
		n.impls = []any{relation.Impl(idx)}
		g.widths[n.tupleID] = n.arity
		g.prems[n.tupleID] = int32(o.Rel.BaseID)
		g.bindCoords(n.tupleID, idx.Order(), n)
		if o.Cond != nil {
			n.cond = g.genCond(o.Cond)
		}
		n.nested = g.genOperation(o.Nested)
		return n

	case *ram.IndexChoice:
		g.pendingParallel = false
		rel := g.relation(o.Rel)
		idx := rel.Index(o.IndexID)
		op := opIndexChoice
		if g.cfg.StaticDispatch && !rel.Sharded() && rel.Rep() == relation.BTree {
			if sp, ok := specializedOp(opIndexChoice, rel.Arity()); ok {
				op = sp
			}
		}
		n := &inode{
			op: op, rel: rel, idx: idx, order: idx.Order(),
			arity: int32(rel.Arity()), tupleID: int32(o.TupleID), shadow: o,
		}
		n.impls = []any{relation.Impl(idx)}
		n.children, n.prefix = g.genPattern(o.Pattern, idx.Order())
		g.applySuper(n)
		g.widths[n.tupleID] = n.arity
		g.bindCoords(n.tupleID, idx.Order(), n)
		if o.Cond != nil {
			n.cond = g.genCond(o.Cond)
		}
		n.nested = g.genOperation(o.Nested)
		return n

	case *ram.Filter:
		if g.cfg.FusedFilters {
			// Collapse a chain of nested filters into one condition, so the
			// hand-crafted super-instruction covers the whole filter
			// cascade of a rule in a single dispatch (paper §5.2).
			if compile.Fusible(o.Cond) {
				cond := ram.Condition(o.Cond)
				inner := o.Nested
				for {
					f, ok := inner.(*ram.Filter)
					if !ok || !compile.Fusible(f.Cond) {
						break
					}
					cond = &ram.And{L: cond, R: f.Cond}
					inner = f.Nested
				}
				if fn, ok := compile.CompileCondition(cond, g.eng.st, g.coords); ok {
					return &inode{op: opFusedFilter, fused: fn, nested: g.genOperation(inner), shadow: o}
				}
			}
		}
		return &inode{op: opFilter, cond: g.genCond(o.Cond), nested: g.genOperation(o.Nested), shadow: o}

	case *ram.Project:
		rel := g.relation(o.Rel)
		op := g.scanOpcode(opInsert, rel)
		if rel.Counting() {
			// Counting relations track per-tuple support: every insert
			// attempt must flow through Relation.Insert (or a staging
			// buffer's InsertAll), so the specialized direct-to-index
			// insert forms are disabled for them.
			op = opInsert
		}
		n := &inode{
			op:     op,
			rel:    rel,
			relID:  int32(o.Rel.ID),
			staged: g.inParallel,
			arity:  int32(rel.Arity()),
			baseID: int32(o.Rel.BaseID),
			rstats: rel.Stats(),
			shadow: o,
		}
		for i := 0; i < rel.NumIndexes(); i++ {
			if subs, _ := relation.ShardImpls(rel.Index(i)); subs != nil {
				// Sharded insert: impls is index-major (index i's shard s at
				// i*shards+s), with the source key column in n.b so the
				// instruction routes each tuple with one hash.
				n.impls = append(n.impls, subs...)
				n.b = int32(rel.ShardKeyCol())
			} else {
				n.impls = append(n.impls, relation.Impl(rel.Index(i)))
			}
			n.orders = append(n.orders, rel.Index(i).Order())
		}
		for _, e := range o.Exprs {
			n.children = append(n.children, g.genExpr(e))
		}
		g.applySuper(n)
		return n

	case *ram.Aggregate:
		g.pendingParallel = false
		rel := g.relation(o.Rel)
		var idx relation.Index
		if o.IndexID >= 0 {
			idx = rel.Index(o.IndexID)
		} else {
			idx = rel.Primary()
		}
		generic := opAggregate
		if o.IndexID >= 0 {
			generic = opIndexAggregate
		}
		op := generic
		if g.cfg.StaticDispatch && !rel.Sharded() && rel.Rep() == relation.BTree {
			if sp, ok := specializedOp(generic, rel.Arity()); ok {
				op = sp
			}
		}
		n := &inode{
			op: op, rel: rel, idx: idx, order: idx.Order(),
			arity: int32(rel.Arity()), tupleID: int32(o.TupleID),
			a: int32(o.Kind), b: int32(o.Type), shadow: o,
		}
		n.impls = []any{relation.Impl(idx)}
		n.children, n.prefix = g.genPattern(o.Pattern, idx.Order())
		g.applySuper(n)
		w := n.arity
		if w < 1 {
			w = 1
		}
		g.widths[n.tupleID] = w
		// Candidate tuples are visible to the target and condition in the
		// index's coordinates; the 1-tuple result afterwards is not.
		g.bindCoords(n.tupleID, idx.Order(), n)
		if o.Target != nil {
			n.target = g.genExpr(o.Target)
		}
		if o.Cond != nil {
			n.cond = g.genCond(o.Cond)
		}
		delete(g.coords, n.tupleID)
		n.nested = g.genOperation(o.Nested)
		return n

	default:
		panic(fmt.Sprintf("interp: unknown RAM operation %T", o))
	}
}

// collectSamples walks an Exit condition gathering the new_X relations its
// emptiness checks test, giving the Exit node its delta-sampling payload:
// the relations to size at exit-evaluation time, each labeled with the base
// relation it shadows. The payload is built unconditionally (it is a
// handful of pointers); the runtime only consults it under telemetry.
func (g *generator) collectSamples(exit, cond *inode) {
	switch cond.op {
	case opAnd:
		g.collectSamples(exit, cond.children[0])
		g.collectSamples(exit, cond.children[1])
	case opEmptiness:
		check, ok := cond.shadow.(*ram.EmptinessCheck)
		if !ok {
			return
		}
		name := check.Rel.Name
		var baseStats *metrics.RelationStats
		if base := check.Rel.BaseID; base >= 0 && base < len(g.eng.rels) {
			name = g.eng.prog.Relations[base].Name
			baseStats = g.eng.rels[base].Stats()
		}
		exit.sampleRels = append(exit.sampleRels, cond.rel)
		exit.sampleNames = append(exit.sampleNames, name)
		exit.sampleStats = append(exit.sampleStats, baseStats)
	}
}

// bindCoords records which coordinate system the tuple bound at tid uses
// inside the nested subtree, and whether the scan must decode at runtime.
func (g *generator) bindCoords(tid int32, order tuple.Order, n *inode) {
	if order.IsIdentity() {
		return
	}
	if g.cfg.StaticReordering {
		g.coords[tid] = order
	} else {
		n.decode = true
	}
}

// genPattern lowers a source-coordinate RAM pattern into encoded pattern
// children: child i is the expression for encoded position i, for the k
// bound positions. Index selection guarantees the bound set is a prefix of
// the order.
func (g *generator) genPattern(pattern []ram.Expr, order tuple.Order) ([]*inode, int32) {
	var children []*inode
	k := int32(0)
	for i := 0; i < len(order); i++ {
		src := pattern[order[i]]
		if src == nil {
			break
		}
		children = append(children, g.genExpr(src))
		k++
	}
	// Verify nothing bound was left behind the prefix (engine invariant).
	bound := int32(0)
	for _, e := range pattern {
		if e != nil {
			bound++
		}
	}
	if bound != k {
		panic(fmt.Sprintf("interp: pattern with %d bound positions is not a prefix of order %v", bound, order))
	}
	return children, k
}

// applySuper splits a node's children into constant, tuple-element, and
// generic fields (paper Fig 13), eliminating dispatches for the first two
// classes.
func (g *generator) applySuper(n *inode) {
	if !g.cfg.SuperInstructions || len(n.children) == 0 {
		return
	}
	n.super = true
	for i, ch := range n.children {
		switch ch.op {
		case opConstant:
			n.constants = append(n.constants, constEntry{pos: int32(i), val: ch.val})
		case opTupleElement:
			n.tupleElems = append(n.tupleElems, tupleEntry{pos: int32(i), tid: ch.a, elem: ch.b})
		default:
			n.generics = append(n.generics, genEntry{pos: int32(i), expr: ch})
		}
	}
}

func (g *generator) genCond(c ram.Condition) *inode {
	switch c := c.(type) {
	case *ram.And:
		return &inode{op: opAnd, children: []*inode{g.genCond(c.L), g.genCond(c.R)}, shadow: c}
	case *ram.Not:
		g.negDepth++
		inner := g.genCond(c.C)
		g.negDepth--
		return &inode{op: opNot, cond: inner, shadow: c}
	case *ram.EmptinessCheck:
		return &inode{op: opEmptiness, rel: g.relation(c.Rel), shadow: c}
	case *ram.ExistenceCheck:
		rel := g.relation(c.Rel)
		idx := rel.Index(c.IndexID)
		n := &inode{
			op: g.scanOpcode(opExists, rel), rel: rel, idx: idx,
			order: idx.Order(), arity: int32(rel.Arity()),
			baseID: int32(c.Rel.BaseID), shadow: c,
		}
		g.bindScanImpls(n, idx)
		n.children, n.prefix = g.genPattern(c.Pattern, idx.Order())
		g.applySuper(n)
		if g.negDepth == 0 && n.prefix == n.arity && n.arity > 0 {
			g.premExists = append(g.premExists, n)
		}
		return n
	case *ram.Constraint:
		return &inode{
			op: opConstraint, a: int32(c.Op), b: int32(c.Type),
			children: []*inode{g.genExpr(c.L), g.genExpr(c.R)}, shadow: c,
		}
	default:
		panic(fmt.Sprintf("interp: unknown RAM condition %T", c))
	}
}

func (g *generator) genExpr(e ram.Expr) *inode {
	switch e := e.(type) {
	case *ram.Constant:
		return &inode{op: opConstant, val: e.Val, shadow: e}
	case *ram.TupleElement:
		elem := e.Elem
		// Static reordering (§4.2): if the referenced tuple is stored in
		// index coordinates, rewrite the access to the encoded position.
		if order := g.coords[int32(e.TupleID)]; order != nil {
			elem = order.Inverse()[elem]
		}
		return &inode{op: opTupleElement, a: int32(e.TupleID), b: int32(elem), shadow: e}
	case *ram.Intrinsic:
		n := &inode{op: opIntrinsic, a: int32(e.Op), b: int32(e.Type), shadow: e}
		for _, arg := range e.Args {
			n.children = append(n.children, g.genExpr(arg))
		}
		return n
	default:
		panic(fmt.Sprintf("interp: unknown RAM expression %T", e))
	}
}
