package interp

import (
	"sti/internal/metrics"
	"sti/internal/ram"
	"sti/internal/relation"
	"sti/internal/tuple"
	"sti/internal/value"
)

// opcode identifies an interpreter instruction. Every INode carries one, so
// the executor dispatches with a single switch (paper §3, Fig 5). The
// specialized block (generated in specialized_gen.go) encodes the target
// structure and arity in the opcode itself (paper §4.1): one opcode per
// {instruction × structure × arity}.
type opcode uint16

const (
	// statements
	opSequence opcode = iota
	opLoop
	opExit
	opQuery
	opClear
	opSwap
	opMerge
	opSubtract
	opCountMerge
	opCountDelete
	opIO
	opLogTimer

	// operations (dynamic-adapter forms)
	opScan
	opIndexScan
	opChoice
	opIndexChoice
	opFilter
	opInsert // RAM Project
	opAggregate
	opIndexAggregate

	// conditions
	opAnd
	opNot
	opEmptiness
	opExists
	opConstraint

	// expressions
	opConstant
	opTupleElement
	opIntrinsic

	// opFusedFilter is a filter whose condition was compiled to a single
	// closure (hand-crafted super-instruction, §5.2).
	opFusedFilter

	// handwritten specialized forms for the non-generic structures
	opInsertEq
	opScanEq
	opIndexScanEq
	opExistsEq
	opInsertBrie
	opScanBrie
	opIndexScanBrie
	opExistsBrie

	// opSpecializedBase starts the generated per-arity B-tree block; it
	// must be the last opcode in this list.
	opSpecializedBase
)

// Super-instruction payload entries (paper Figs 13-14): each names the
// target slot in the tuple being built and where its value comes from.
type constEntry struct {
	pos int32
	val value.Value
}

type tupleEntry struct {
	pos, tid, elem int32
}

type genEntry struct {
	pos  int32
	expr *inode
}

// inode is an Interpreter Node: a lightweight instruction with execution
// state and pre-computed values (paper §3, Fig 4). The shadow field is the
// sPtr back to the source RAM node for static information.
type inode struct {
	op opcode

	// relational operands
	rel    *relation.Relation // target relation
	rel2   *relation.Relation // second relation (swap, merge/subtract source)
	rel3   *relation.Relation // third relation (count-merge fresh, count-delete gone)
	idx    relation.Index     // chosen index (dynamic path)
	impls  []any              // concrete stores for the static path
	orders []tuple.Order      // per-impl index orders (inserts)
	order  tuple.Order        // chosen index order (scans/exists)
	decode bool               // wrap scans with a decoding iterator

	tupleID int32
	prefix  int32 // bound prefix length (encoded coordinates)
	arity   int32
	par     bool // partition this scan across workers
	// staged marks mutation deferral for parallel evaluation. On an insert
	// node it means "append to the context's worker-local staging buffer
	// instead of mutating the relation"; on a query node it means "this
	// query contains a parallel scan — allocate staging buffers and merge
	// them when the query finishes".
	staged bool
	relID  int32 // insert target's RAM relation ID (staging buffer slot)

	// tree structure
	children []*inode // sub-expressions / statements / pattern (encoded order)
	nested   *inode   // operation body
	cond     *inode   // condition
	target   *inode   // aggregate target expression

	// super-instruction payload (pattern/tuple construction)
	super      bool
	constants  []constEntry
	tupleElems []tupleEntry
	generics   []genEntry

	// fused is the hand-crafted super-instruction body of a fused filter
	// (paper §5.2): the whole condition in one dispatch.
	fused func([]tuple.Tuple) bool

	// immediates
	val    value.Value // constant
	a, b   int32       // generic payload: (tid,elem), (op,type), (cmp,type), io kind
	label  string
	ruleID int32
	widths []int32 // query: context tuple widths by tupleID
	// provenance metadata: the insert target's base relation, the per-tid
	// base relations of the query's scans (-1 = not a relation binding),
	// and the query's positive fully-bound existence checks (whose matched
	// tuples are premises even though they bind no tuple slot).
	baseID     int32
	premRels   []int32
	premExists []*inode

	// Delta-sampling payload of an Exit node: the new_X relations its
	// emptiness checks test, plus the base relation each shadows (name and
	// telemetry block). At Exit time new_X holds exactly the fresh tuples of
	// the current iteration, so sampling here yields the per-iteration delta
	// curve of the enclosing fixpoint.
	sampleRels  []*relation.Relation
	sampleNames []string
	sampleStats []*metrics.RelationStats

	// rstats is the insert target's telemetry block (nil when telemetry is
	// off), for the specialized insert paths that bypass Relation.Insert.
	rstats *metrics.RelationStats

	shadow any // source RAM node (static info), the paper's sPtr
}

// opStats are the profiling counters of one context. They live in the
// context rather than the executor so parallel workers never contend on (or
// race over) shared counters; query and parallel-scan barriers fold them
// into the profiler on the coordinating goroutine.
type opStats struct {
	iters      uint64 // tuples visited by scans
	inserts    uint64 // tuples newly inserted
	attempts   uint64 // insert attempts (attempts - inserts = dedup hits)
	dispatches uint64 // execute() calls
	super      uint64 // dispatches avoided by super-instructions
}

// add folds another context's counters into s.
func (s *opStats) add(o *opStats) {
	s.iters += o.iters
	s.inserts += o.inserts
	s.attempts += o.attempts
	s.dispatches += o.dispatches
	s.super += o.super
}

// context is the runtime environment of one query: the tuples currently
// bound by enclosing scans (paper §3). Parallel workers get their own copy.
type context struct {
	tuples []tuple.Tuple
	// base keeps the originally allocated full-width slot per tupleID;
	// aggregates shrink tuples[tid] to their 1-wide result and must restore
	// the full slot before re-iterating.
	base []tuple.Tuple
	// stage holds this context's worker-local staging buffers, indexed by
	// RAM relation ID, when the enclosing query defers inserts to the merge
	// barrier (parallel evaluation). nil on the direct-insert path.
	stage []*relation.StagingBuffer
	stats opStats
	exit  bool // set by Exit, consumed by Loop
	// pad receives the heavyweight-dispatch baseline's spill traffic; it
	// lives in the per-worker context so parallel workers do not contend.
	pad [8]uint64
}

// clone creates a fresh context with the same slot widths (the paper's
// thread-local context copies for parallel workers). A staging context
// clones to a staging context: each worker stages into its own buffers.
func (ctx *context) clone() *context {
	widths := make([]int32, len(ctx.base))
	for i, t := range ctx.base {
		widths[i] = int32(len(t))
	}
	c := newContext(widths)
	if ctx.stage != nil {
		c.stage = make([]*relation.StagingBuffer, len(ctx.stage))
	}
	return c
}

func newContext(widths []int32) *context {
	ctx := &context{
		tuples: make([]tuple.Tuple, len(widths)),
		base:   make([]tuple.Tuple, len(widths)),
	}
	for i, w := range widths {
		ctx.tuples[i] = make(tuple.Tuple, w)
		ctx.base[i] = ctx.tuples[i]
	}
	return ctx
}

// shadowRAM returns the RAM node behind n, for diagnostics.
func (n *inode) shadowRAM() ram.Statement {
	if s, ok := n.shadow.(ram.Statement); ok {
		return s
	}
	return nil
}
