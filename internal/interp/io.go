package interp

import (
	"sti/internal/eio"
)

// The interpreter shares its I/O layer with the other backends; these
// aliases keep the package's public surface self-contained.

// IOHandler connects LOAD/STORE/PRINTSIZE statements to the outside world.
type IOHandler = eio.Handler

// MemIO is the in-memory I/O handler.
type MemIO = eio.Mem

// NewMemIO returns an empty in-memory handler.
func NewMemIO() *MemIO { return eio.NewMem() }

// DirIO is the fact-file I/O handler (Soufflé's .facts/.csv convention).
type DirIO = eio.Dir
