package interp

import (
	"strings"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

const phaseTC = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func n32(i int) value.Value { return value.FromInt(int32(i)) }

// TestPhaseMachine pins the Load → Eval → Store state machine and its
// error messages.
func TestPhaseMachine(t *testing.T) {
	rp, st := compileSrc(t, phaseTC)
	eng := New(rp, st, DefaultConfig())
	if eng.Phase() != PhaseNew {
		t.Fatalf("fresh phase = %s", eng.Phase())
	}
	io := NewMemIO()
	io.Add("edge", tuple.Tuple{n32(1), n32(2)})
	io.Add("edge", tuple.Tuple{n32(2), n32(3)})
	if err := eng.Load(io); err != nil {
		t.Fatal(err)
	}
	if eng.Phase() != PhaseLoaded {
		t.Fatalf("phase after Load = %s", eng.Phase())
	}
	// Run and a second Load are both phase errors now.
	if err := eng.Run(io); err == nil || !strings.Contains(err.Error(), "phase loaded") {
		t.Fatalf("Run after Load: %v", err)
	}
	if err := eng.Load(io); err == nil {
		t.Fatal("Load twice must fail")
	}
	// Store before Eval is a phase error.
	if err := eng.Store(io); err == nil || !strings.Contains(err.Error(), "want ready") {
		t.Fatalf("Store before Eval: %v", err)
	}
	if err := eng.Eval(); err != nil {
		t.Fatal(err)
	}
	if eng.Phase() != PhaseReady {
		t.Fatalf("phase after Eval = %s", eng.Phase())
	}
	if err := eng.Eval(); err == nil {
		t.Fatal("Eval twice must fail")
	}
	// Store is repeatable once ready.
	for i := 0; i < 2; i++ {
		if err := eng.Store(io); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(io.Out["path"]); got != 3 {
		t.Fatalf("stored path rows = %d", got)
	}
	// Reset returns to new; the engine is reusable.
	eng.Reset()
	if eng.Phase() != PhaseNew {
		t.Fatalf("phase after Reset = %s", eng.Phase())
	}
	if ts, err := eng.Tuples("path"); err != nil || len(ts) != 0 {
		t.Fatalf("Reset left tuples: %v %v", ts, err)
	}
	if err := eng.Run(io); err != nil {
		t.Fatal(err)
	}
	if ts, _ := eng.Tuples("path"); len(ts) != 3 {
		t.Fatalf("rerun path = %v", ts)
	}
}

// TestEvalUpdatePhaseErrors pins the EvalUpdate preconditions.
func TestEvalUpdatePhaseErrors(t *testing.T) {
	rp, st := compileSrc(t, phaseTC)
	eng := New(rp, st, DefaultConfig())
	if err := eng.EvalUpdate(); err == nil || !strings.Contains(err.Error(), "want ready") {
		t.Fatalf("EvalUpdate before Eval: %v", err)
	}
	if !eng.Incremental() {
		t.Fatal("TC program should be insert-monotone")
	}
	// A non-monotone program reports no update entry point.
	rpNeg, stNeg := compileSrc(t, `
.decl a(x:number)
.decl b(x:number)
.decl c(x:number)
c(x) :- a(x), !b(x).
`)
	engNeg := New(rpNeg, stNeg, DefaultConfig())
	if engNeg.Incremental() {
		t.Fatal("negation must disable the update entry point")
	}
	if err := engNeg.Run(NewMemIO()); err != nil {
		t.Fatal(err)
	}
	if err := engNeg.EvalUpdate(); err == nil || !strings.Contains(err.Error(), "update entry point") {
		t.Fatalf("EvalUpdate on non-monotone program: %v", err)
	}
}

// TestInsertFactsEvalUpdate drives the incremental path at the engine
// level: staged fresh facts plus EvalUpdate must land exactly where a
// from-scratch run would.
func TestInsertFactsEvalUpdate(t *testing.T) {
	rp, st := compileSrc(t, phaseTC)
	eng := New(rp, st, DefaultConfig())
	if err := eng.Run(NewMemIO()); err != nil {
		t.Fatal(err)
	}
	added, err := eng.InsertFacts("edge", []tuple.Tuple{
		{n32(1), n32(2)}, {n32(2), n32(3)}, {n32(1), n32(2)}, // dup
	})
	if err != nil || added != 2 {
		t.Fatalf("InsertFacts added=%d err=%v", added, err)
	}
	if err := eng.EvalUpdate(); err != nil {
		t.Fatal(err)
	}
	if ts, _ := eng.Tuples("path"); len(ts) != 3 {
		t.Fatalf("path after update = %v", ts)
	}
	// Arity errors are reported.
	if _, err := eng.InsertFacts("edge", []tuple.Tuple{{n32(1)}}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, err := eng.InsertFacts("nosuch", nil); err == nil {
		t.Fatal("unknown relation must fail")
	}
}

// TestTuplesDeterministicOrder pins the documented contract: Tuples
// returns primary-index order, independent of insertion order.
func TestTuplesDeterministicOrder(t *testing.T) {
	facts := [][2]int{{5, 6}, {1, 2}, {3, 4}, {2, 3}, {4, 5}, {1, 4}}
	build := func(reverse bool) []tuple.Tuple {
		rp, st := compileSrc(t, phaseTC)
		eng := New(rp, st, DefaultConfig())
		io := NewMemIO()
		order := facts
		if reverse {
			order = make([][2]int, len(facts))
			for i, f := range facts {
				order[len(facts)-1-i] = f
			}
		}
		for _, f := range order {
			io.Add("edge", tuple.Tuple{n32(f[0]), n32(f[1])})
		}
		if err := eng.Run(io); err != nil {
			t.Fatal(err)
		}
		ts, err := eng.Tuples("path")
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	a, b := build(false), build(true)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !tuple.Equal(a[i], b[i]) {
			t.Fatalf("order diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
