package interp

import (
	"fmt"
	"strings"

	"sti/internal/tuple"
)

// Provenance support: interpreters exist in large part for the development
// and debugging workflow the paper motivates in §1 (citing Soufflé's
// provenance-based debugger [54]). In provenance mode the engine records,
// for the *first* derivation of every tuple, the rule and the body tuples
// that produced it; Explain then reconstructs a proof tree.
//
// The recording strategy follows Soufflé's observation that first
// derivations are well-founded: every premise was inserted before its
// conclusion, so proof trees are finite and acyclic.

// Proof is one node of a derivation tree. Leaves (input facts and
// equivalence-closure pairs) have an empty Rule and no premises.
type Proof struct {
	Relation string
	Tuple    tuple.Tuple
	Rule     string
	Premises []*Proof
}

// String renders the proof as an indented tree.
func (p *Proof) String() string {
	var b strings.Builder
	p.render(&b, 0)
	return b.String()
}

func (p *Proof) render(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s%s", p.Relation, tuple.String(p.Tuple))
	if p.Rule == "" {
		b.WriteString("  [fact]")
	} else {
		fmt.Fprintf(b, "  [%s]", p.Rule)
	}
	b.WriteByte('\n')
	for _, prem := range p.Premises {
		prem.render(b, depth+1)
	}
}

// premiseRec locates one body tuple of a recorded derivation.
type premiseRec struct {
	relID int // base relation ID
	tup   tuple.Tuple
}

type proofRec struct {
	label    string
	premises []premiseRec
}

// provenance stores first-derivation records per base relation.
type provenance struct {
	proofs []map[string]proofRec // by base relation ID
}

func newProvenance(numRels int) *provenance {
	p := &provenance{proofs: make([]map[string]proofRec, numRels)}
	for i := range p.proofs {
		p.proofs[i] = map[string]proofRec{}
	}
	return p
}

// key encodes a tuple as a map key.
func provKey(t tuple.Tuple) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// record stores the first derivation of a tuple.
func (p *provenance) record(relID int, t tuple.Tuple, label string, premises []premiseRec) {
	k := provKey(t)
	if _, seen := p.proofs[relID][k]; seen {
		return
	}
	p.proofs[relID][k] = proofRec{label: label, premises: premises}
}

// recordDerivation is called by the executor after a successful insert; it
// snapshots the currently bound tuples of the enclosing query.
func (ex *executor) recordDerivation(n *inode, t tuple.Tuple, ctx *context) {
	q := ex.curQ
	if q == nil {
		return
	}
	relID := n.rel2BaseID()
	var premises []premiseRec
	for tid, rel := range q.premRels {
		if rel < 0 {
			continue
		}
		bound := ctx.tuples[tid]
		premises = append(premises, premiseRec{relID: int(rel), tup: tuple.Clone(bound)})
	}
	// Positive membership tests contribute their (fully determined) tuple.
	for _, pn := range q.premExists {
		enc := make(tuple.Tuple, pn.arity)
		for i, ch := range pn.children {
			enc[i] = ex.eval(ch, ctx)
		}
		src := make(tuple.Tuple, pn.arity)
		pn.order.Decode(src, enc)
		premises = append(premises, premiseRec{relID: int(pn.baseID), tup: src})
	}
	ex.prov.record(relID, tuple.Clone(t), q.label, premises)
}

// rel2BaseID maps the insert target to its user-visible relation.
func (n *inode) rel2BaseID() int { return int(n.baseID) }

// Explain reconstructs the proof tree for a tuple of the named relation.
// Tuples without a recorded derivation (inputs, facts absorbed before
// provenance, equivalence-closure pairs) become leaves. Returns an error if
// the engine did not run in provenance mode or the tuple is not in the
// relation.
func (e *Engine) Explain(name string, t tuple.Tuple) (*Proof, error) {
	if e.prov == nil {
		return nil, fmt.Errorf("interp: engine did not run with Config.Provenance")
	}
	var relID = -1
	for _, rd := range e.prog.Relations {
		if rd.Name == name && !rd.Aux {
			relID = rd.ID
			break
		}
	}
	if relID < 0 {
		return nil, fmt.Errorf("interp: unknown relation %q", name)
	}
	if !e.rels[relID].Contains(t) {
		return nil, fmt.Errorf("interp: %s%s is not derivable", name, tuple.String(t))
	}
	memo := map[string]*Proof{}
	return e.explain(relID, t, memo), nil
}

func (e *Engine) explain(relID int, t tuple.Tuple, memo map[string]*Proof) *Proof {
	key := fmt.Sprintf("%d/%s", relID, provKey(t))
	if p, ok := memo[key]; ok {
		return p
	}
	p := &Proof{
		Relation: e.prog.Relations[relID].Name,
		Tuple:    tuple.Clone(t),
	}
	memo[key] = p
	if rec, ok := e.prov.proofs[relID][provKey(t)]; ok {
		p.Rule = rec.label
		for _, prem := range rec.premises {
			p.Premises = append(p.Premises, e.explain(prem.relID, prem.tup, memo))
		}
	}
	return p
}
