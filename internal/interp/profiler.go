package interp

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RuleProfile is the profiler record for one rule version (the analog of
// Soufflé's profiler output used in the paper's §5.2 case study).
type RuleProfile struct {
	RuleID     int
	Label      string
	Time       time.Duration
	Iterations uint64 // tuples visited by this rule's scans
	Dispatches uint64 // execute() calls made while running the rule
	Inserts    uint64 // tuples newly inserted
}

// Profile is a completed profiling report.
type Profile struct {
	Rules           []RuleProfile
	TotalDispatches uint64
	// SuperSaved counts dispatches avoided by super-instructions (constant
	// and tuple-element fields evaluated without dispatch, §5.4).
	SuperSaved uint64
}

// String renders the profile sorted by descending time.
func (p *Profile) String() string {
	rules := append([]RuleProfile{}, p.Rules...)
	sort.Slice(rules, func(i, j int) bool { return rules[i].Time > rules[j].Time })
	var b strings.Builder
	fmt.Fprintf(&b, "total dispatches: %d (super-instructions saved %d)\n", p.TotalDispatches, p.SuperSaved)
	for _, r := range rules {
		fmt.Fprintf(&b, "%12v %12d iter %12d disp %10d ins  %s\n",
			r.Time.Round(time.Microsecond), r.Iterations, r.Dispatches, r.Inserts, r.Label)
	}
	return b.String()
}

// profiler accumulates per-rule counters during execution.
type profiler struct {
	rules      []RuleProfile
	super      uint64
	dispatches uint64
}

func newProfiler(numRules int) *profiler {
	return &profiler{rules: make([]RuleProfile, numRules)}
}

func (p *profiler) report() *Profile {
	out := &Profile{TotalDispatches: p.dispatches, SuperSaved: p.super}
	for _, r := range p.rules {
		if r.Time > 0 || r.Dispatches > 0 || r.Iterations > 0 {
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}
