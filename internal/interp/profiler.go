package interp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sti/internal/metrics"
)

// RuleProfile is the profiler record for one rule version (the analog of
// Soufflé's profiler output used in the paper's §5.2 case study). It
// marshals to JSON for machine-readable profiles; Time serializes as
// nanoseconds (time.Duration's native encoding).
type RuleProfile struct {
	RuleID     int           `json:"rule_id"`
	Label      string        `json:"label"`
	Time       time.Duration `json:"time_ns"`
	Iterations uint64        `json:"iterations"` // tuples visited by this rule's scans
	Dispatches uint64        `json:"dispatches"` // execute() calls made while running the rule
	Inserts    uint64        `json:"inserts"`    // tuples newly inserted
	Attempts   uint64        `json:"attempts"`   // insert attempts, duplicates included
	Dedup      uint64        `json:"dedup"`      // attempts rejected as duplicates
}

// Profile is a completed profiling report.
type Profile struct {
	Rules           []RuleProfile `json:"rules"`
	TotalDispatches uint64        `json:"total_dispatches"`
	// SuperSaved counts dispatches avoided by super-instructions (constant
	// and tuple-element fields evaluated without dispatch, §5.4).
	SuperSaved uint64 `json:"super_saved"`
	// Telemetry is the engine-wide metrics snapshot: relation/index/fixpoint
	// and parallel-worker statistics. Present only when the run carried a
	// metrics collector (Config.Metrics).
	Telemetry *metrics.Report `json:"telemetry,omitempty"`
}

// String renders the profile sorted by descending time; ties break on
// ascending rule ID so the output is deterministic.
func (p *Profile) String() string {
	rules := append([]RuleProfile{}, p.Rules...)
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Time != rules[j].Time {
			return rules[i].Time > rules[j].Time
		}
		return rules[i].RuleID < rules[j].RuleID
	})
	var b strings.Builder
	fmt.Fprintf(&b, "total dispatches: %d (super-instructions saved %d)\n", p.TotalDispatches, p.SuperSaved)
	for _, r := range rules {
		fmt.Fprintf(&b, "%12v %12d iter %12d disp %10d ins %10d dup  %s\n",
			r.Time.Round(time.Microsecond), r.Iterations, r.Dispatches, r.Inserts, r.Dedup, r.Label)
	}
	return b.String()
}

// profiler accumulates per-rule counters during execution.
type profiler struct {
	rules      []RuleProfile
	super      uint64
	dispatches uint64
}

func newProfiler(numRules int) *profiler {
	return &profiler{rules: make([]RuleProfile, numRules)}
}

func (p *profiler) report() *Profile {
	out := &Profile{TotalDispatches: p.dispatches, SuperSaved: p.super}
	for _, r := range p.rules {
		if r.Time > 0 || r.Dispatches > 0 || r.Iterations > 0 {
			if r.Attempts >= r.Inserts {
				r.Dedup = r.Attempts - r.Inserts
			}
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}
