package interp

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"sti/internal/ast2ram"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/sema"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

// compile builds the RAM program for a source text.
func compileSrc(t testing.TB, src string) (*ram.Program, *symtab.Table) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	st := symtab.New()
	rp, err := ast2ram.Translate(an, st)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return rp, st
}

// run executes src with the given facts and config, returning the engine
// and its MemIO.
func run(t testing.TB, src string, facts map[string][]tuple.Tuple, cfg Config) (*Engine, *MemIO) {
	t.Helper()
	rp, st := compileSrc(t, src)
	eng := New(rp, st, cfg)
	io := NewMemIO()
	for name, ts := range facts {
		for _, tp := range ts {
			io.Add(name, tp)
		}
	}
	if err := eng.Run(io); err != nil {
		t.Fatalf("run: %v", err)
	}
	return eng, io
}

func tuplesOf(t testing.TB, eng *Engine, name string) []tuple.Tuple {
	t.Helper()
	ts, err := eng.Tuples(name)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ts, func(i, j int) bool { return tuple.Compare(ts[i], ts[j]) < 0 })
	return ts
}

func wantTuples(t testing.TB, got []tuple.Tuple, want [][]value.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if tuple.Compare(got[i], want[i]) != 0 {
			t.Fatalf("tuple %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

const tcSrc = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func chainFacts(n int) map[string][]tuple.Tuple {
	var edges []tuple.Tuple
	for i := 0; i < n; i++ {
		edges = append(edges, tuple.Tuple{value.Value(i), value.Value(i + 1)})
	}
	return map[string][]tuple.Tuple{"edge": edges}
}

func TestTransitiveClosureChain(t *testing.T) {
	eng, io := run(t, tcSrc, chainFacts(10), DefaultConfig())
	// 10-chain: path has n*(n+1)/2 = 55 pairs.
	got := tuplesOf(t, eng, "path")
	if len(got) != 55 {
		t.Fatalf("path size = %d, want 55", len(got))
	}
	if len(io.Out["path"]) != 55 {
		t.Fatalf("output stored %d tuples", len(io.Out["path"]))
	}
	// Spot checks.
	rel := eng.Relation("path")
	if !rel.Contains(tuple.Tuple{0, 10}) || rel.Contains(tuple.Tuple{10, 0}) {
		t.Fatal("path contents wrong")
	}
}

func TestCycleTerminates(t *testing.T) {
	facts := map[string][]tuple.Tuple{"edge": {
		{1, 2}, {2, 3}, {3, 1},
	}}
	eng, _ := run(t, tcSrc, facts, DefaultConfig())
	got := tuplesOf(t, eng, "path")
	if len(got) != 9 {
		t.Fatalf("cyclic path size = %d, want 9", len(got))
	}
}

func TestGrandparentSymbols(t *testing.T) {
	src := `
.decl parent(a:symbol, b:symbol)
.decl gp(a:symbol, b:symbol)
.output gp
parent("Bob", "Alice").
parent("Alice", "Carol").
parent("Alice", "Dan").
gp(x, z) :- parent(x, y), parent(y, z).
`
	eng, _ := run(t, src, nil, DefaultConfig())
	got := tuplesOf(t, eng, "gp")
	if len(got) != 2 {
		t.Fatalf("gp = %v", got)
	}
	st := eng.SymbolTable()
	for _, g := range got {
		if st.Resolve(g[0]) != "Bob" {
			t.Fatalf("grandparent = %q", st.Resolve(g[0]))
		}
	}
	names := map[string]bool{}
	for _, g := range got {
		names[st.Resolve(g[1])] = true
	}
	if !names["Carol"] || !names["Dan"] {
		t.Fatalf("grandchildren = %v", names)
	}
}

func TestNegationSecurityAnalysis(t *testing.T) {
	// The paper's Fig 2 example.
	src := `
.decl Edge(x:symbol, y:symbol)
.decl Protect(x:symbol)
.decl Vulnerable(x:symbol)
.decl Unsafe(x:symbol)
.decl Violation(x:symbol)
.input Edge
.input Protect
.input Vulnerable
.output Violation
Unsafe("while").
Unsafe(y) :- Unsafe(x), Edge(x, y), !Protect(y).
Violation(x) :- Vulnerable(x), Unsafe(x).
`
	rp, st := compileSrc(t, src)
	eng := New(rp, st, DefaultConfig())
	io := NewMemIO()
	sym := func(s string) value.Value { return st.Intern(s) }
	edges := [][2]string{
		{"while", "a"}, {"a", "b"}, {"b", "c"}, {"a", "safe"}, {"safe", "d"},
	}
	for _, e := range edges {
		io.Add("Edge", tuple.Tuple{sym(e[0]), sym(e[1])})
	}
	io.Add("Protect", tuple.Tuple{sym("safe")})
	io.Add("Vulnerable", tuple.Tuple{sym("b")})
	io.Add("Vulnerable", tuple.Tuple{sym("d")})
	if err := eng.Run(io); err != nil {
		t.Fatal(err)
	}
	// unsafe: while, a, b, c (safe blocks propagation to d).
	unsafe := tuplesOf(t, eng, "Unsafe")
	if len(unsafe) != 4 {
		t.Fatalf("unsafe = %d tuples", len(unsafe))
	}
	violation := tuplesOf(t, eng, "Violation")
	if len(violation) != 1 || st.Resolve(violation[0][0]) != "b" {
		t.Fatalf("violation = %v", violation)
	}
}

func TestSameGeneration(t *testing.T) {
	src := `
.decl parent(x:number, y:number)
.decl sg(x:number, y:number)
.input parent
.output sg
sg(x, y) :- parent(p, x), parent(p, y), x != y.
sg(x, y) :- parent(px, x), sg(px, py), parent(py, y).
`
	// Two small trees: 1->{2,3}, 2->{4}, 3->{5}.
	facts := map[string][]tuple.Tuple{"parent": {
		{1, 2}, {1, 3}, {2, 4}, {3, 5},
	}}
	eng, _ := run(t, src, facts, DefaultConfig())
	got := tuplesOf(t, eng, "sg")
	wantTuples(t, got, [][]value.Value{{2, 3}, {3, 2}, {4, 5}, {5, 4}})
}

func TestArithmeticAndConstraints(t *testing.T) {
	src := `
.decl n(x:number)
.decl out(x:number, y:number)
.output out
n(1). n(2). n(3). n(4).
out(x, y) :- n(x), y = x * x + 1, x % 2 = 1.
`
	eng, _ := run(t, src, nil, DefaultConfig())
	got := tuplesOf(t, eng, "out")
	wantTuples(t, got, [][]value.Value{{1, 2}, {3, 10}})
}

func TestStringFunctors(t *testing.T) {
	src := `
.decl w(s:symbol)
.decl out(s:symbol, n:number)
.output out
w("ab").
w("xyz").
out(cat(s, "!"), strlen(s)) :- w(s).
`
	eng, _ := run(t, src, nil, DefaultConfig())
	st := eng.SymbolTable()
	got := tuplesOf(t, eng, "out")
	if len(got) != 2 {
		t.Fatalf("out = %v", got)
	}
	seen := map[string]int32{}
	for _, g := range got {
		seen[st.Resolve(g[0])] = value.AsInt(g[1])
	}
	if seen["ab!"] != 2 || seen["xyz!"] != 3 {
		t.Fatalf("out = %v", seen)
	}
}

func TestAggregates(t *testing.T) {
	src := `
.decl e(x:number, y:number)
.decl cnt(x:number, n:number)
.decl sm(x:number, n:number)
.decl mn(x:number, n:number)
.decl mx(x:number, n:number)
.decl node(x:number)
.output cnt
node(x) :- e(x, _).
cnt(x, n) :- node(x), n = count : { e(x, _) }.
sm(x, n) :- node(x), n = sum y : { e(x, y) }.
mn(x, n) :- node(x), n = min y : { e(x, y) }.
mx(x, n) :- node(x), n = max y : { e(x, y) }.
.input e
`
	facts := map[string][]tuple.Tuple{"e": {
		{1, 10}, {1, 20}, {1, 30}, {2, 5},
	}}
	eng, _ := run(t, src, facts, DefaultConfig())
	wantTuples(t, tuplesOf(t, eng, "cnt"), [][]value.Value{{1, 3}, {2, 1}})
	wantTuples(t, tuplesOf(t, eng, "sm"), [][]value.Value{{1, 60}, {2, 5}})
	wantTuples(t, tuplesOf(t, eng, "mn"), [][]value.Value{{1, 10}, {2, 5}})
	wantTuples(t, tuplesOf(t, eng, "mx"), [][]value.Value{{1, 30}, {2, 5}})
}

func TestEqrelClosure(t *testing.T) {
	src := `
.decl eq(x:number, y:number) eqrel
.decl link(x:number, y:number)
.decl q(x:number, y:number)
.input link
.output q
eq(x, y) :- link(x, y).
q(x, y) :- eq(x, y).
`
	facts := map[string][]tuple.Tuple{"link": {
		{1, 2}, {2, 3}, {10, 11},
	}}
	eng, _ := run(t, src, facts, DefaultConfig())
	q := tuplesOf(t, eng, "q")
	// Classes {1,2,3} and {10,11}: 9 + 4 = 13 pairs.
	if len(q) != 13 {
		t.Fatalf("q = %d tuples: %v", len(q), q)
	}
	if eng.Relation("eq").Size() != 13 {
		t.Fatalf("eq size = %d", eng.Relation("eq").Size())
	}
}

func TestEqrelRecursiveWithRules(t *testing.T) {
	// Equivalence grows through a recursive interaction with another
	// relation: if a~b then their successors are also equivalent.
	src := `
.decl succ(x:number, y:number)
.decl eq(x:number, y:number) eqrel
.input succ
.output eq
eq(1, 2).
eq(y1, y2) :- eq(x1, x2), succ(x1, y1), succ(x2, y2).
`
	facts := map[string][]tuple.Tuple{"succ": {
		{1, 10}, {2, 20}, {10, 100}, {20, 200},
	}}
	eng, _ := run(t, src, facts, DefaultConfig())
	eq := eng.Relation("eq")
	for _, pair := range [][2]value.Value{{1, 2}, {10, 20}, {100, 200}} {
		if !eq.Contains(tuple.Tuple{pair[0], pair[1]}) {
			t.Fatalf("missing equivalence %v (size %d)", pair, eq.Size())
		}
	}
	if eq.Contains(tuple.Tuple{1, 10}) {
		t.Fatal("phantom equivalence 1~10")
	}
}

func TestBrieRelation(t *testing.T) {
	src := `
.decl edge(x:number, y:number) brie
.decl path(x:number, y:number) brie
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`
	eng, _ := run(t, src, chainFacts(8), DefaultConfig())
	if got := tuplesOf(t, eng, "path"); len(got) != 36 {
		t.Fatalf("brie path = %d tuples", len(got))
	}
}

func TestNullaryRelations(t *testing.T) {
	src := `
.decl flag()
.decl n(x:number)
.decl out(x:number)
.output out
n(1). n(2).
flag() :- n(2).
out(x) :- n(x), flag().
`
	eng, _ := run(t, src, nil, DefaultConfig())
	wantTuples(t, tuplesOf(t, eng, "out"), [][]value.Value{{1}, {2}})
}

func TestMutualRecursion(t *testing.T) {
	src := `
.decl even(x:number)
.decl odd(x:number)
.decl succ(x:number, y:number)
.input succ
.output even
even(0).
odd(y) :- even(x), succ(x, y).
even(y) :- odd(x), succ(x, y).
`
	var succ []tuple.Tuple
	for i := 0; i < 20; i++ {
		succ = append(succ, tuple.Tuple{value.Value(i), value.Value(i + 1)})
	}
	eng, _ := run(t, src, map[string][]tuple.Tuple{"succ": succ}, DefaultConfig())
	evens := tuplesOf(t, eng, "even")
	if len(evens) != 11 {
		t.Fatalf("evens = %v", evens)
	}
	for _, e := range evens {
		if value.AsInt(e[0])%2 != 0 {
			t.Fatalf("odd number %v in even", e)
		}
	}
}

func TestWildcardAndExistence(t *testing.T) {
	src := `
.decl e(x:number, y:number)
.decl hasOut(x:number)
.decl sink(x:number)
.decl node(x:number)
.input e
.input node
.output sink
hasOut(x) :- e(x, _).
sink(x) :- node(x), !e(x, _).
`
	facts := map[string][]tuple.Tuple{
		"e":    {{1, 2}, {2, 3}},
		"node": {{1}, {2}, {3}},
	}
	eng, _ := run(t, src, facts, DefaultConfig())
	wantTuples(t, tuplesOf(t, eng, "sink"), [][]value.Value{{3}})
	wantTuples(t, tuplesOf(t, eng, "hasOut"), [][]value.Value{{1}, {2}})
}

func TestDuplicateVarInAtom(t *testing.T) {
	src := `
.decl e(x:number, y:number)
.decl selfloop(x:number)
.input e
.output selfloop
selfloop(x) :- e(x, x).
`
	facts := map[string][]tuple.Tuple{"e": {{1, 1}, {1, 2}, {3, 3}}}
	eng, _ := run(t, src, facts, DefaultConfig())
	wantTuples(t, tuplesOf(t, eng, "selfloop"), [][]value.Value{{1}, {3}})
}

func TestUnsignedAndFloatTypes(t *testing.T) {
	src := `
.decl u(x:unsigned)
.decl f(x:float)
.decl bigU(x:unsigned)
.decl posF(x:float)
.output bigU
.output posF
u(1u). u(4000000000u).
f(1.5). f(-2.5).
bigU(x) :- u(x), x > 100u.
posF(x) :- f(x), x > 0.0.
`
	eng, _ := run(t, src, nil, DefaultConfig())
	bigU := tuplesOf(t, eng, "bigU")
	if len(bigU) != 1 || bigU[0][0] != 4000000000 {
		t.Fatalf("bigU = %v", bigU)
	}
	posF := tuplesOf(t, eng, "posF")
	if len(posF) != 1 || value.AsFloat(posF[0][0]) != 1.5 {
		t.Fatalf("posF = %v", posF)
	}
}

func TestDivisionByZeroFails(t *testing.T) {
	src := `
.decl n(x:number)
.decl out(x:number)
n(0). n(1).
out(y) :- n(x), y = 10 / x.
`
	rp, st := compileSrc(t, src)
	eng := New(rp, st, DefaultConfig())
	err := eng.Run(NewMemIO())
	if err == nil {
		t.Fatal("division by zero not reported")
	}
	if _, ok := err.(*RuntimeError); !ok {
		t.Fatalf("error type %T", err)
	}
}

// configs enumerates the full optimization lattice plus legacy and the
// hand-crafted fused-filter mode.
func configs() map[string]Config {
	fused := DefaultConfig()
	fused.FusedFilters = true
	out := map[string]Config{"legacy": LegacyConfig(), "fused": fused}
	for i := 0; i < 16; i++ {
		c := Config{
			StaticDispatch:    i&1 != 0,
			SuperInstructions: i&2 != 0,
			StaticReordering:  i&4 != 0,
			LeanDispatch:      i&8 != 0,
		}
		out[fmt.Sprintf("sd%v_si%v_sr%v_ld%v", c.StaticDispatch, c.SuperInstructions, c.StaticReordering, c.LeanDispatch)] = c
	}
	return out
}

// TestConfigLatticeEquivalence: every interpreter variant computes identical
// relations on a program exercising recursion, negation, aggregates,
// strings, eqrel, and brie.
func TestConfigLatticeEquivalence(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl node(x:number)
.decl unreached(x:number)
.decl deg(x:number, n:number)
.decl eq(x:number, y:number) eqrel
.decl trie(x:number, y:number) brie
.input edge
.output path
node(x) :- edge(x, _).
node(y) :- edge(_, y).
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
unreached(x) :- node(x), !path(1, x).
deg(x, n) :- node(x), n = count : { edge(x, _) }.
eq(x, y) :- edge(x, y), x < y.
trie(x, y) :- edge(x, y).
trie(x, z) :- trie(x, y), edge(y, z), z != x.
`
	facts := map[string][]tuple.Tuple{"edge": {
		{1, 2}, {2, 3}, {3, 4}, {4, 2}, {5, 6}, {6, 5}, {2, 7}, {7, 1},
	}}
	type snapshot map[string][]tuple.Tuple
	var baseline snapshot
	var baseName string
	rels := []string{"path", "unreached", "deg", "eq", "trie", "node"}
	for name, cfg := range configs() {
		eng, _ := run(t, src, facts, cfg)
		snap := snapshot{}
		for _, r := range rels {
			snap[r] = tuplesOf(t, eng, r)
		}
		if baseline == nil {
			baseline, baseName = snap, name
			continue
		}
		for _, r := range rels {
			a, b := baseline[r], snap[r]
			if len(a) != len(b) {
				t.Fatalf("config %s: relation %s has %d tuples, %s has %d",
					name, r, len(b), baseName, len(a))
			}
			for i := range a {
				if tuple.Compare(a[i], b[i]) != 0 {
					t.Fatalf("config %s: relation %s differs at %d: %v vs %v",
						name, r, i, b[i], a[i])
				}
			}
		}
	}
}

func TestProfiler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile = true
	eng, _ := run(t, tcSrc, chainFacts(30), cfg)
	prof := eng.Profile()
	if prof == nil {
		t.Fatal("no profile")
	}
	if prof.TotalDispatches == 0 {
		t.Fatal("no dispatches counted")
	}
	if len(prof.Rules) == 0 {
		t.Fatal("no rule records")
	}
	var iters uint64
	for _, r := range prof.Rules {
		iters += r.Iterations
	}
	if iters == 0 {
		t.Fatal("no iterations counted")
	}
	if prof.SuperSaved == 0 {
		t.Fatal("super-instructions saved no dispatches despite being enabled")
	}
	if prof.String() == "" {
		t.Fatal("empty profile rendering")
	}
}

func TestSuperInstructionsReduceDispatches(t *testing.T) {
	facts := chainFacts(50)
	count := func(superOn bool) uint64 {
		cfg := DefaultConfig()
		cfg.SuperInstructions = superOn
		cfg.Profile = true
		eng, _ := run(t, tcSrc, facts, cfg)
		return eng.Profile().TotalDispatches
	}
	with, without := count(true), count(false)
	if with >= without {
		t.Fatalf("super-instructions did not reduce dispatches: %d vs %d", with, without)
	}
}

func TestDirIO(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "edge.facts"), []byte("1\t2\n2\t3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rp, st := compileSrc(t, tcSrc)
	eng := New(rp, st, DefaultConfig())
	io := &DirIO{InputDir: dir, OutputDir: dir, Symbols: st}
	if err := eng.Run(io); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "path.csv"))
	if err != nil {
		t.Fatal(err)
	}
	want := "1\t2\n1\t3\n2\t3\n"
	if string(data) != want {
		t.Fatalf("path.csv = %q, want %q", data, want)
	}
}

func TestDirIOErrors(t *testing.T) {
	dir := t.TempDir()
	rp, st := compileSrc(t, tcSrc)
	eng := New(rp, st, DefaultConfig())
	// Missing input file.
	if err := eng.Run(&DirIO{InputDir: dir, OutputDir: dir, Symbols: st}); err == nil {
		t.Fatal("missing facts file not reported")
	}
	// Wrong arity.
	if err := os.WriteFile(filepath.Join(dir, "edge.facts"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng2 := New(rp, st, DefaultConfig())
	if err := eng2.Run(&DirIO{InputDir: dir, OutputDir: dir, Symbols: st}); err == nil {
		t.Fatal("arity mismatch not reported")
	}
}
