package interp

import (
	"strings"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

func TestExplainTransitiveClosure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Provenance = true
	eng, _ := run(t, tcSrc, chainFacts(4), cfg)

	// path(0,4) derives through path(0,3), which derives through path(0,2)...
	proof, err := eng.Explain("path", tuple.Tuple{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if proof.Rule == "" {
		t.Fatal("derived tuple explained as a fact")
	}
	if len(proof.Premises) != 2 {
		t.Fatalf("premises = %d:\n%s", len(proof.Premises), proof)
	}
	// Depth: the proof chain must bottom out at edge facts.
	depth := 0
	var walk func(p *Proof, d int)
	var leaves int
	walk = func(p *Proof, d int) {
		if d > depth {
			depth = d
		}
		if len(p.Premises) == 0 {
			if p.Rule != "" {
				t.Fatalf("leaf with rule %q", p.Rule)
			}
			if p.Relation != "edge" {
				t.Fatalf("leaf in relation %s", p.Relation)
			}
			leaves++
		}
		for _, prem := range p.Premises {
			walk(prem, d+1)
		}
	}
	walk(proof, 0)
	if depth < 3 {
		t.Fatalf("proof too shallow (%d):\n%s", depth, proof)
	}
	if leaves < 4 {
		t.Fatalf("expected all four edges as leaves, saw %d:\n%s", leaves, proof)
	}
	if !strings.Contains(proof.String(), "[fact]") {
		t.Fatalf("rendering lacks fact leaves:\n%s", proof)
	}
}

func TestExplainErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Provenance = true
	eng, _ := run(t, tcSrc, chainFacts(3), cfg)
	if _, err := eng.Explain("path", tuple.Tuple{3, 0}); err == nil {
		t.Fatal("underivable tuple explained")
	}
	if _, err := eng.Explain("nosuch", tuple.Tuple{1}); err == nil {
		t.Fatal("unknown relation explained")
	}
	// Without provenance mode, Explain must refuse.
	eng2, _ := run(t, tcSrc, chainFacts(3), DefaultConfig())
	if _, err := eng2.Explain("path", tuple.Tuple{0, 1}); err == nil {
		t.Fatal("Explain worked without provenance mode")
	}
}

func TestExplainFactAndProgramFact(t *testing.T) {
	src := `
.decl seed(x:number)
.decl out(x:number)
seed(7).
out(y) :- seed(x), y = x + 1.
`
	cfg := DefaultConfig()
	cfg.Provenance = true
	eng, _ := run(t, src, nil, cfg)
	proof, err := eng.Explain("out", tuple.Tuple{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Premises) != 1 || proof.Premises[0].Relation != "seed" {
		t.Fatalf("premises:\n%s", proof)
	}
	// The program fact seed(7) has its own (empty-premise) derivation.
	leaf := proof.Premises[0]
	if value.AsInt(leaf.Tuple[0]) != 7 {
		t.Fatalf("leaf tuple %v", leaf.Tuple)
	}
	if len(leaf.Premises) != 0 {
		t.Fatalf("fact has premises:\n%s", proof)
	}
}

func TestProvenanceMatchesPlainResults(t *testing.T) {
	facts := chainFacts(12)
	plain, _ := run(t, tcSrc, facts, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Provenance = true
	prov, _ := run(t, tcSrc, facts, cfg)
	a := tuplesOf(t, plain, "path")
	b := tuplesOf(t, prov, "path")
	if len(a) != len(b) {
		t.Fatalf("provenance mode changed results: %d vs %d", len(a), len(b))
	}
	// Every derived tuple is explainable.
	for _, tp := range b {
		if _, err := prov.Explain("path", tp); err != nil {
			t.Fatalf("cannot explain %v: %v", tp, err)
		}
	}
}
