package codegen

import (
	"fmt"
	"strings"

	"sti/internal/ram"
	"sti/internal/tuple"
	"sti/internal/value"
)

// tupleVar tracks the Go variable holding each bound tuple. The emitter
// maintains it alongside coords (the storage order of that binding, for
// static reordering of element accesses).
var _ = fmt.Sprintf

func (e *emitter) tupVar(tid int) string { return fmt.Sprintf("t%d", tid) }

// --- statements ---

func (e *emitter) stmt(s ram.Statement) {
	switch s := s.(type) {
	case *ram.Sequence:
		for _, st := range s.Stmts {
			e.stmt(st)
		}
	case *ram.Loop:
		e.loopID++
		id := e.loopID
		e.pf("loop%d:", id)
		e.pf("for {")
		e.depth++
		prev := e.curLoop
		e.curLoop = id
		e.stmt(s.Body)
		e.curLoop = prev
		e.depth--
		e.pf("}")
	case *ram.Exit:
		e.pf("if %s {", e.cond(s.Cond))
		e.pf("\tbreak loop%d", e.curLoop)
		e.pf("}")
	case *ram.Query:
		e.coords = map[int]tuple.Order{}
		e.vars = map[int]string{}
		e.pf("{ // %s", strings.ReplaceAll(s.Label, "\n", " "))
		e.depth++
		e.op(s.Root)
		e.depth--
		e.pf("}")
	case *ram.Clear:
		e.pf("%s.Clear()", wrapName(s.Rel))
	case *ram.Swap:
		e.pf("%s.SwapContents(%s)", wrapName(s.A), wrapName(s.B))
	case *ram.Merge:
		e.tmpID++
		it := fmt.Sprintf("mit%d", e.tmpID)
		e.pf("for %s := %s.Scan(); ; {", it, wrapName(s.Src))
		e.pf("\tt, ok := %s.Next()", it)
		e.pf("\tif !ok {")
		e.pf("\t\tbreak")
		e.pf("\t}")
		e.pf("\t%s.Insert(t)", wrapName(s.Dst))
		e.pf("}")
	case *ram.IO:
		switch s.Kind {
		case ram.IOLoad:
			e.pf("if err := io.Load(%s, func(t tuple.Tuple) error { %s.Insert(t); return nil }); err != nil {",
				declName(s.Rel), wrapName(s.Rel))
			e.pf("\trtl.Fail(\"loading %s: %%v\", err)", s.Rel.Name)
			e.pf("}")
		case ram.IOStore:
			e.pf("if err := io.Store(%s, %s.Scan()); err != nil {", declName(s.Rel), wrapName(s.Rel))
			e.pf("\trtl.Fail(\"storing %s: %%v\", err)", s.Rel.Name)
			e.pf("}")
		default:
			e.pf("if err := io.PrintSize(%s, %s.Size()); err != nil {", declName(s.Rel), wrapName(s.Rel))
			e.pf("\trtl.Fail(\"printsize %s: %%v\", err)", s.Rel.Name)
			e.pf("}")
		}
	case *ram.LogTimer:
		e.stmt(s.Stmt)
	default:
		panic(fmt.Sprintf("codegen: unknown RAM statement %T", s))
	}
}

// --- operations ---

func (e *emitter) op(o ram.Operation) {
	switch o := o.(type) {
	case *ram.Scan:
		e.scan(o.Rel, -1, nil, o.TupleID, o.Nested, false, nil)
	case *ram.IndexScan:
		e.scan(o.Rel, o.IndexID, o.Pattern, o.TupleID, o.Nested, false, nil)
	case *ram.Choice:
		e.scan(o.Rel, -1, nil, o.TupleID, o.Nested, true, o.Cond)
	case *ram.IndexChoice:
		e.scan(o.Rel, o.IndexID, o.Pattern, o.TupleID, o.Nested, true, o.Cond)
	case *ram.Filter:
		e.pf("if %s {", e.cond(o.Cond))
		e.depth++
		e.op(o.Nested)
		e.depth--
		e.pf("}")
	case *ram.Project:
		e.project(o)
	case *ram.Aggregate:
		e.aggregate(o)
	default:
		panic(fmt.Sprintf("codegen: unknown RAM operation %T", o))
	}
}

// scan emits a (possibly index-restricted, possibly choice) scan loop.
// indexID -1 means the primary index with no pattern.
func (e *emitter) scan(r *ram.Relation, indexID int, pattern []ram.Expr, tid int, nested ram.Operation, choice bool, choiceCond ram.Condition) {
	orders := r.Orders
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(r.Arity)}
	}
	idx := 0
	if indexID >= 0 {
		idx = indexID
	}
	order := orders[idx]
	tv := e.tupVar(tid)
	e.tmpID++
	it := fmt.Sprintf("it%d", e.tmpID)

	// Pattern expressions at encoded positions.
	var pats []string
	if pattern != nil {
		for i := 0; i < len(order); i++ {
			src := pattern[order[i]]
			if src == nil {
				break
			}
			pats = append(pats, e.expr(src))
		}
	}

	if r.Arity == 0 {
		// Nullary: run the body once if the relation holds its tuple.
		e.pf("if %s.Size() > 0 {", wrapName(r))
		e.depth++
		e.op(nested)
		e.depth--
		e.pf("}")
		return
	}

	switch r.Rep {
	case ram.RepEqRel:
		switch len(pats) {
		case 2:
			e.pf("if %s.Contains(%s, %s) {", storeName(r, 0), pats[0], pats[1])
			e.depth++
			e.pf("%s := [2]value.Value{%s, %s}", tv, pats[0], pats[1])
			// At most one match exists, so the choice short-circuit (and
			// its loop break) is unnecessary; keep only the condition.
			e.vars[tid] = tv
			if choiceCond != nil {
				e.pf("if %s {", e.cond(choiceCond))
				e.depth++
				e.op(nested)
				e.depth--
				e.pf("}")
			} else {
				e.op(nested)
			}
			delete(e.vars, tid)
			e.depth--
			e.pf("}")
			return
		case 1:
			e.pf("%s := %s.PrefixFirst(%s)", it, storeName(r, 0), pats[0])
		default:
			e.pf("%s := %s.Iter()", it, storeName(r, 0))
		}
		e.sliceLoop(it, tv, tid, tuple.Identity(2), nested, choice, choiceCond)
	case ram.RepBrie:
		if len(pats) > 0 {
			e.pf("%s := %s.Prefix([]value.Value{%s})", it, storeName(r, idx), strings.Join(pats, ", "))
		} else {
			e.pf("%s := %s.Iter()", it, storeName(r, idx))
		}
		e.sliceLoop(it, tv, tid, order, nested, choice, choiceCond)
	default: // btree
		if len(pats) > 0 {
			loParts := make([]string, r.Arity)
			hiParts := make([]string, r.Arity)
			for i := range loParts {
				if i < len(pats) {
					e.tmpID++
					pv := fmt.Sprintf("p%d", e.tmpID)
					e.pf("%s := %s", pv, pats[i])
					loParts[i] = pv
					hiParts[i] = pv
				} else {
					loParts[i] = "0"
					hiParts[i] = "0xffffffff"
				}
			}
			e.pf("%s := %s.Range(relation.Tup%d{%s}, relation.Tup%d{%s})",
				it, storeName(r, idx), r.Arity, strings.Join(loParts, ", "), r.Arity, strings.Join(hiParts, ", "))
		} else {
			e.pf("%s := %s.Iter()", it, storeName(r, idx))
		}
		e.pf("for {")
		e.depth++
		e.pf("%s, ok := %s.Next()", tv, it)
		e.pf("if !ok {")
		e.pf("\tbreak")
		e.pf("}")
		e.pf("_ = %s", tv)
		e.bindAndNest(tid, tv, order, nested, choice, choiceCond)
		e.depth--
		e.pf("}")
	}
}

// sliceLoop iterates a slice-yielding iterator (eqrel/brie).
func (e *emitter) sliceLoop(it, tv string, tid int, order tuple.Order, nested ram.Operation, choice bool, choiceCond ram.Condition) {
	e.pf("for {")
	e.depth++
	e.pf("%s, ok := %s.Next()", tv, it)
	e.pf("if !ok {")
	e.pf("\tbreak")
	e.pf("}")
	e.pf("_ = %s", tv)
	e.bindAndNest(tid, tv, order, nested, choice, choiceCond)
	e.depth--
	e.pf("}")
}

// bindAndNest binds the tuple variable for tid, emits the nested operation
// (with choice short-circuit if requested), and unbinds.
func (e *emitter) bindAndNest(tid int, tv string, order tuple.Order, nested ram.Operation, choice bool, choiceCond ram.Condition) {
	e.vars[tid] = tv
	if !order.IsIdentity() {
		e.coords[tid] = order
	}
	switch {
	case choice && choiceCond == nil:
		e.op(nested)
		e.pf("break")
	case choiceCond != nil:
		e.pf("if %s {", e.cond(choiceCond))
		e.depth++
		e.op(nested)
		e.pf("break")
		e.depth--
		e.pf("}")
	default:
		e.op(nested)
	}
	delete(e.vars, tid)
	delete(e.coords, tid)
}

// project emits the tuple build plus one fully-unrolled encoded insert per
// index (the synthesizer never reorders at runtime).
func (e *emitter) project(o *ram.Project) {
	r := o.Rel
	if r.Arity == 0 {
		e.pf("%s.Insert(tuple.Tuple{})", wrapName(r))
		return
	}
	vals := make([]string, len(o.Exprs))
	e.pf("{")
	e.depth++
	for i, expr := range o.Exprs {
		e.tmpID++
		v := fmt.Sprintf("v%d", e.tmpID)
		e.pf("%s := %s", v, e.expr(expr))
		vals[i] = v
	}
	orders := r.Orders
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(r.Arity)}
	}
	switch r.Rep {
	case ram.RepEqRel:
		e.pf("%s.Insert(%s, %s)", storeName(r, 0), vals[0], vals[1])
	case ram.RepBrie:
		for j, ord := range orders {
			enc := make([]string, len(ord))
			for i, p := range ord {
				enc[i] = vals[p]
			}
			e.pf("%s.Insert([]value.Value{%s})", storeName(r, j), strings.Join(enc, ", "))
		}
	default:
		for j, ord := range orders {
			enc := make([]string, len(ord))
			for i, p := range ord {
				enc[i] = vals[p]
			}
			e.pf("%s.Insert(relation.Tup%d{%s})", storeName(r, j), r.Arity, strings.Join(enc, ", "))
		}
	}
	e.depth--
	e.pf("}")
}

func (e *emitter) aggregate(o *ram.Aggregate) {
	r := o.Rel
	orders := r.Orders
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(r.Arity)}
	}
	idx := 0
	if o.IndexID >= 0 {
		idx = o.IndexID
	}
	order := orders[idx]
	tv := e.tupVar(o.TupleID)
	e.tmpID++
	it := fmt.Sprintf("it%d", e.tmpID)
	e.tmpID++
	acc := fmt.Sprintf("acc%d", e.tmpID)

	var pats []string
	if o.Pattern != nil {
		for i := 0; i < len(order); i++ {
			src := o.Pattern[order[i]]
			if src == nil {
				break
			}
			pats = append(pats, e.expr(src))
		}
	}

	e.pf("{")
	e.depth++
	e.pf("var %s rtl.AggAcc", acc)
	e.pf("%s.Init(ram.AggKind(%d), value.Type(%d))", acc, o.Kind, o.Type)

	sliceIter := false
	switch r.Rep {
	case ram.RepEqRel:
		sliceIter = true
		if len(pats) == 1 {
			e.pf("%s := %s.PrefixFirst(%s)", it, storeName(r, 0), pats[0])
		} else {
			e.pf("%s := %s.Iter()", it, storeName(r, 0))
		}
	case ram.RepBrie:
		sliceIter = true
		if len(pats) > 0 {
			e.pf("%s := %s.Prefix([]value.Value{%s})", it, storeName(r, idx), strings.Join(pats, ", "))
		} else {
			e.pf("%s := %s.Iter()", it, storeName(r, idx))
		}
	default:
		if len(pats) > 0 {
			lo := make([]string, r.Arity)
			hi := make([]string, r.Arity)
			for i := range lo {
				if i < len(pats) {
					e.tmpID++
					pv := fmt.Sprintf("p%d", e.tmpID)
					e.pf("%s := %s", pv, pats[i])
					lo[i] = pv
					hi[i] = pv
				} else {
					lo[i] = "0"
					hi[i] = "0xffffffff"
				}
			}
			e.pf("%s := %s.Range(relation.Tup%d{%s}, relation.Tup%d{%s})",
				it, storeName(r, idx), r.Arity, strings.Join(lo, ", "), r.Arity, strings.Join(hi, ", "))
		} else {
			e.pf("%s := %s.Iter()", it, storeName(r, idx))
		}
	}
	_ = sliceIter

	e.pf("for {")
	e.depth++
	e.pf("%s, ok := %s.Next()", tv, it)
	e.pf("if !ok {")
	e.pf("\tbreak")
	e.pf("}")
	e.pf("_ = %s", tv)
	e.vars[o.TupleID] = tv
	if !order.IsIdentity() {
		e.coords[o.TupleID] = order
	}
	if o.Cond != nil {
		e.pf("if !(%s) {", e.cond(o.Cond))
		e.pf("\tcontinue")
		e.pf("}")
	}
	if o.Target != nil {
		e.pf("%s.Step(%s)", acc, e.expr(o.Target))
	} else {
		e.pf("%s.Step(0)", acc)
	}
	delete(e.vars, o.TupleID)
	delete(e.coords, o.TupleID)
	e.depth--
	e.pf("}")

	resVar := tv + "r"
	e.pf("if res, ok := %s.Finish(); ok {", acc)
	e.depth++
	e.pf("%s := [1]value.Value{res}", resVar)
	e.vars[o.TupleID] = resVar
	e.op(o.Nested)
	delete(e.vars, o.TupleID)
	e.depth--
	e.pf("}")
	e.depth--
	e.pf("}")
}

// --- conditions ---

func (e *emitter) cond(c ram.Condition) string {
	switch c := c.(type) {
	case *ram.And:
		return "(" + e.cond(c.L) + ") && (" + e.cond(c.R) + ")"
	case *ram.Not:
		return "!(" + e.cond(c.C) + ")"
	case *ram.EmptinessCheck:
		return fmt.Sprintf("%s.Size() == 0", wrapName(c.Rel))
	case *ram.ExistenceCheck:
		return e.existence(c)
	case *ram.Constraint:
		return e.constraint(c)
	default:
		panic(fmt.Sprintf("codegen: unknown RAM condition %T", c))
	}
}

func (e *emitter) existence(c *ram.ExistenceCheck) string {
	r := c.Rel
	orders := r.Orders
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(r.Arity)}
	}
	idx := c.IndexID
	if idx < 0 {
		idx = 0
	}
	order := orders[idx]
	var pats []string
	for i := 0; i < len(order); i++ {
		src := c.Pattern[order[i]]
		if src == nil {
			break
		}
		pats = append(pats, e.expr(src))
	}
	if r.Arity == 0 {
		return fmt.Sprintf("%s.Size() > 0", wrapName(r))
	}
	switch r.Rep {
	case ram.RepEqRel:
		switch len(pats) {
		case 0:
			return fmt.Sprintf("%s.Size() > 0", storeName(r, 0))
		case 1:
			return fmt.Sprintf("%s.Class(%s) != nil", storeName(r, 0), pats[0])
		default:
			return fmt.Sprintf("%s.Contains(%s, %s)", storeName(r, 0), pats[0], pats[1])
		}
	case ram.RepBrie:
		if len(pats) == r.Arity {
			return fmt.Sprintf("%s.Contains([]value.Value{%s})", storeName(r, idx), strings.Join(pats, ", "))
		}
		return fmt.Sprintf("%s.HasPrefix([]value.Value{%s})", storeName(r, idx), strings.Join(pats, ", "))
	default:
		switch {
		case len(pats) == r.Arity:
			return fmt.Sprintf("%s.Contains(relation.Tup%d{%s})", storeName(r, idx), r.Arity, strings.Join(pats, ", "))
		case len(pats) == 0:
			return fmt.Sprintf("%s.Size() > 0", storeName(r, idx))
		default:
			lo := make([]string, r.Arity)
			hi := make([]string, r.Arity)
			for i := range lo {
				if i < len(pats) {
					lo[i] = pats[i]
					hi[i] = pats[i]
				} else {
					lo[i] = "0"
					hi[i] = "0xffffffff"
				}
			}
			return fmt.Sprintf("func() bool { it := %s.Range(relation.Tup%d{%s}, relation.Tup%d{%s}); _, ok := it.Next(); return ok }()",
				storeName(r, idx), r.Arity, strings.Join(lo, ", "), r.Arity, strings.Join(hi, ", "))
		}
	}
}

func (e *emitter) constraint(c *ram.Constraint) string {
	l, r := e.expr(c.L), e.expr(c.R)
	switch c.Op {
	case ram.CmpEQ:
		return fmt.Sprintf("(%s) == (%s)", l, r)
	case ram.CmpNE:
		return fmt.Sprintf("(%s) != (%s)", l, r)
	}
	op := map[ram.CmpOp]string{ram.CmpLT: "<", ram.CmpLE: "<=", ram.CmpGT: ">", ram.CmpGE: ">="}[c.Op]
	switch c.Type {
	case value.Number:
		return fmt.Sprintf("value.AsInt(%s) %s value.AsInt(%s)", l, op, r)
	case value.Float:
		return fmt.Sprintf("value.AsFloat(%s) %s value.AsFloat(%s)", l, op, r)
	default:
		return fmt.Sprintf("(%s) %s (%s)", l, op, r)
	}
}

// --- expressions ---

var opNames = map[ram.IntrinsicOp]string{
	ram.OpAdd: "ram.OpAdd", ram.OpSub: "ram.OpSub", ram.OpMul: "ram.OpMul",
	ram.OpDiv: "ram.OpDiv", ram.OpMod: "ram.OpMod", ram.OpPow: "ram.OpPow",
	ram.OpBAnd: "ram.OpBAnd", ram.OpBOr: "ram.OpBOr", ram.OpBXor: "ram.OpBXor",
	ram.OpBShl: "ram.OpBShl", ram.OpBShr: "ram.OpBShr",
	ram.OpLAnd: "ram.OpLAnd", ram.OpLOr: "ram.OpLOr",
	ram.OpMin: "ram.OpMin", ram.OpMax: "ram.OpMax",
}

var typeNames = map[value.Type]string{
	value.Number: "value.Number", value.Unsigned: "value.Unsigned",
	value.Float: "value.Float", value.Symbol: "value.Symbol",
}

func (e *emitter) expr(x ram.Expr) string {
	switch x := x.(type) {
	case *ram.Constant:
		return fmt.Sprintf("value.Value(0x%x)", x.Val)
	case *ram.TupleElement:
		elem := x.Elem
		if order := e.coords[x.TupleID]; order != nil {
			elem = order.Inverse()[elem]
		}
		v, ok := e.vars[x.TupleID]
		if !ok {
			panic(fmt.Sprintf("codegen: tuple %d referenced but not bound", x.TupleID))
		}
		return fmt.Sprintf("%s[%d]", v, elem)
	case *ram.Intrinsic:
		return e.intrinsic(x)
	default:
		panic(fmt.Sprintf("codegen: unknown RAM expression %T", x))
	}
}

func (e *emitter) intrinsic(x *ram.Intrinsic) string {
	args := make([]string, len(x.Args))
	for i, a := range x.Args {
		args[i] = e.expr(a)
	}
	// Fully inlined signed arithmetic for the safe operators; the shared
	// runtime handles everything with failure cases or string semantics.
	if x.Type == value.Number {
		bin := map[ram.IntrinsicOp]string{
			ram.OpAdd: "+", ram.OpSub: "-", ram.OpMul: "*",
			ram.OpBAnd: "&", ram.OpBOr: "|", ram.OpBXor: "^",
		}
		if op, ok := bin[x.Op]; ok {
			return fmt.Sprintf("value.FromInt(value.AsInt(%s) %s value.AsInt(%s))", args[0], op, args[1])
		}
	}
	if x.Type == value.Unsigned {
		bin := map[ram.IntrinsicOp]string{
			ram.OpAdd: "+", ram.OpSub: "-", ram.OpMul: "*",
			ram.OpBAnd: "&", ram.OpBOr: "|", ram.OpBXor: "^",
		}
		if op, ok := bin[x.Op]; ok {
			return fmt.Sprintf("(%s) %s (%s)", args[0], op, args[1])
		}
	}
	switch x.Op {
	case ram.OpNeg:
		return fmt.Sprintf("rtl.Neg(%s, %s)", typeNames[x.Type], args[0])
	case ram.OpBNot:
		return fmt.Sprintf("rtl.BNot(%s, %s)", typeNames[x.Type], args[0])
	case ram.OpLNot:
		return fmt.Sprintf("rtl.LNot(%s)", args[0])
	case ram.OpCat:
		return fmt.Sprintf("rtl.Cat(st, %s)", strings.Join(args, ", "))
	case ram.OpStrlen:
		return fmt.Sprintf("rtl.Strlen(st, %s)", args[0])
	case ram.OpSubstr:
		return fmt.Sprintf("rtl.Substr(st, %s, %s, %s)", args[0], args[1], args[2])
	case ram.OpOrd:
		return args[0]
	case ram.OpToNumber:
		return fmt.Sprintf("rtl.ToNumber(st, %s)", args[0])
	case ram.OpToString:
		return fmt.Sprintf("rtl.ToString(st, %s)", args[0])
	case ram.OpMin, ram.OpMax:
		out := args[0]
		for _, a := range args[1:] {
			out = fmt.Sprintf("rtl.Arith(%s, %s, %s, %s)", opNames[x.Op], typeNames[x.Type], out, a)
		}
		return out
	default:
		return fmt.Sprintf("rtl.Arith(%s, %s, %s, %s)", opNames[x.Op], typeNames[x.Type], args[0], args[1])
	}
}
