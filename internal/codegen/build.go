package codegen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"sti/internal/ram"
	"sti/internal/symtab"
)

// WriteProgram emits the synthesized source for prog into
// <moduleRoot>/gen/<name>/main.go. The directory must live inside this
// module because the emitted code imports the engine's internal packages
// (as Soufflé-synthesized C++ includes the Soufflé headers).
func WriteProgram(moduleRoot, name string, prog *ram.Program, st *symtab.Table) (string, error) {
	src, err := Emit(prog, st)
	if err != nil {
		return "", err
	}
	dir := filepath.Join(moduleRoot, "gen", name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
		return "", err
	}
	return dir, nil
}

// Build compiles the synthesized program with the Go toolchain, returning
// the binary path and the wall-clock compile time — the synthesizer's
// compile-time overhead measured by the paper's Table 1.
func Build(moduleRoot, dir string) (string, time.Duration, error) {
	bin := filepath.Join(dir, "prog")
	start := time.Now()
	cmd := exec.Command("go", "build", "-o", bin, "./"+mustRel(moduleRoot, dir))
	cmd.Dir = moduleRoot
	out, err := cmd.CombinedOutput()
	elapsed := time.Since(start)
	if err != nil {
		return "", elapsed, fmt.Errorf("go build failed: %v\n%s", err, out)
	}
	return bin, elapsed, nil
}

func mustRel(base, target string) string {
	rel, err := filepath.Rel(base, target)
	if err != nil {
		return target
	}
	return rel
}

// RunBinary executes a synthesized binary against a facts directory,
// returning its wall-clock run time.
func RunBinary(bin, factsDir, outDir string) (time.Duration, error) {
	start := time.Now()
	cmd := exec.Command(bin, "-F", factsDir, "-D", outDir)
	out, err := cmd.CombinedOutput()
	elapsed := time.Since(start)
	if err != nil {
		return elapsed, fmt.Errorf("synthesized binary failed: %v\n%s", err, out)
	}
	return elapsed, nil
}
