package codegen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sti/internal/ast2ram"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/sema"
	"sti/internal/symtab"
)

func compileSrc(t testing.TB, src string) (*ram.Program, *symtab.Table) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	st := symtab.New()
	rp, err := ast2ram.Translate(an, st)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return rp, st
}

// moduleRoot finds the repository root (where go.mod lives).
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

const tcSrc = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
.printsize path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func TestEmitShape(t *testing.T) {
	rp, st := compileSrc(t, tcSrc)
	src, err := Emit(rp, st)
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	for _, want := range []string{
		"package main",
		"btree.Tree[relation.Tup2]",
		".Range(relation.Tup2{", // specialized prefix search
		"io.Load",
		"io.Store",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("emitted source lacks %q:\n%s", want, text)
		}
	}
}

// TestSynthesizedProgramRuns emits, compiles, and executes the synthesized
// program and checks its output against the known closure of a chain graph.
func TestSynthesizedProgramRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("go build in -short mode")
	}
	root := moduleRoot(t)
	rp, st := compileSrc(t, tcSrc)
	dir, err := WriteProgram(root, "test_tc", rp, st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })

	bin, compileTime, err := Build(root, dir)
	if err != nil {
		t.Fatal(err)
	}
	if compileTime <= 0 {
		t.Fatal("no compile time measured")
	}

	work := t.TempDir()
	if err := os.WriteFile(filepath.Join(work, "edge.facts"), []byte("1\t2\n2\t3\n3\t4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBinary(bin, work, work); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(work, "path.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 6 {
		t.Fatalf("path.csv has %d rows:\n%s", len(lines), data)
	}
	if lines[0] != "1\t2" || lines[5] != "3\t4" {
		t.Fatalf("path.csv contents:\n%s", data)
	}
}

// TestSynthesizedKitchenSink covers negation, aggregates, strings, eqrel,
// brie, and non-trivial index orders end-to-end through the synthesizer.
func TestSynthesizedKitchenSink(t *testing.T) {
	if testing.Short() {
		t.Skip("go build in -short mode")
	}
	src := `
.decl edge(x:number, y:number)
.decl rev(x:number, y:number)
.decl deg(x:number, n:number)
.decl lonely(x:number)
.decl lbl(s:symbol)
.decl eq(x:number, y:number) eqrel
.decl trie(x:number, y:number) brie
.input edge
.output rev
.output deg
.output lonely
.output lbl
.printsize eq
.printsize trie
rev(y, x) :- edge(x, y).
deg(x, n) :- edge(x, _), n = count : { edge(x, _) }.
lonely(x) :- edge(x, _), !rev(x, _).
lbl(cat("n", to_string(x))) :- edge(x, _).
eq(x, y) :- edge(x, y).
trie(x, y) :- edge(x, y), x < y.
`
	root := moduleRoot(t)
	rp, st := compileSrc(t, src)
	dir, err := WriteProgram(root, "test_sink", rp, st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	bin, _, err := Build(root, dir)
	if err != nil {
		t.Fatal(err)
	}
	work := t.TempDir()
	if err := os.WriteFile(filepath.Join(work, "edge.facts"), []byte("1\t2\n2\t1\n3\t4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBinary(bin, work, work); err != nil {
		t.Fatal(err)
	}
	read := func(name string) string {
		data, err := os.ReadFile(filepath.Join(work, name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		return strings.TrimSpace(string(data))
	}
	if got := read("rev.csv"); got != "1\t2\n2\t1\n4\t3" {
		t.Fatalf("rev.csv:\n%s", got)
	}
	if got := read("deg.csv"); got != "1\t1\n2\t1\n3\t1" {
		t.Fatalf("deg.csv:\n%s", got)
	}
	if got := read("lonely.csv"); got != "3" {
		t.Fatalf("lonely.csv:\n%s", got)
	}
	lbl := read("lbl.csv")
	for _, want := range []string{"n1", "n2", "n3"} {
		if !strings.Contains(lbl, want) {
			t.Fatalf("lbl.csv lacks %s:\n%s", want, lbl)
		}
	}
}
