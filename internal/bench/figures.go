package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sti/internal/codegen"
	"sti/internal/eio"
	"sti/internal/interp"
	"sti/internal/symtab"
	"sti/internal/value"
)

// repeat runs fn n times and returns the minimum duration (the paper reports
// over five runs; minimum is the conventional noise-resistant choice).
func repeat(n int, fn func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return best, nil
}

// --- Fig 15: interpreter slowdown vs the compiled engine ---

// Fig15Row is one benchmark's slowdown measurement.
type Fig15Row struct {
	Workload string
	Compiled time.Duration
	Interp   time.Duration
	Legacy   time.Duration // zero when legacy not measured
	Slowdown float64
	LegacyX  float64
}

// Fig15 measures STI and (optionally) the legacy interpreter against the
// compiled engine on every workload.
func Fig15(scale Scale, repeats int, withLegacy bool, w io.Writer) ([]Fig15Row, error) {
	var rows []Fig15Row
	fmt.Fprintf(w, "Fig 15 — execution-time slowdown vs the compiled engine (scale=%s)\n", scale)
	fmt.Fprintf(w, "%-22s %12s %12s %9s", "benchmark", "compiled", "STI", "slowdown")
	if withLegacy {
		fmt.Fprintf(w, " %12s %9s", "legacy", "legacyX")
	}
	fmt.Fprintln(w)
	for _, wl := range Suites(scale) {
		tc, err := repeat(repeats, func() (time.Duration, error) {
			d, _, err := wl.TimeCompiled()
			return d, err
		})
		if err != nil {
			return nil, err
		}
		ti, err := repeat(repeats, func() (time.Duration, error) {
			d, _, err := wl.TimeInterp(interp.DefaultConfig())
			return d, err
		})
		if err != nil {
			return nil, err
		}
		row := Fig15Row{
			Workload: wl.FullName(),
			Compiled: tc,
			Interp:   ti,
			Slowdown: float64(ti) / float64(tc),
		}
		if withLegacy {
			tl, err := repeat(1, func() (time.Duration, error) {
				d, _, err := wl.TimeInterp(interp.LegacyConfig())
				return d, err
			})
			if err != nil {
				return nil, err
			}
			row.Legacy = tl
			row.LegacyX = float64(tl) / float64(tc)
		}
		fmt.Fprintf(w, "%-22s %12v %12v %8.2fx", row.Workload, round(row.Compiled), round(row.Interp), row.Slowdown)
		if withLegacy {
			fmt.Fprintf(w, " %12v %8.2fx", round(row.Legacy), row.LegacyX)
		}
		fmt.Fprintln(w)
		rows = append(rows, row)
	}
	summarizeSlowdowns(w, rows)
	return rows, nil
}

func summarizeSlowdowns(w io.Writer, rows []Fig15Row) {
	bySuite := map[string][]float64{}
	for _, r := range rows {
		suite := r.Workload[:len(r.Workload)-len(filepath.Base(r.Workload))-1]
		bySuite[suite] = append(bySuite[suite], r.Slowdown)
	}
	var suites []string
	for s := range bySuite {
		suites = append(suites, s)
	}
	sort.Strings(suites)
	for _, s := range suites {
		lo, hi := minMax(bySuite[s])
		fmt.Fprintf(w, "  %s: slowdown %.2fx - %.2fx\n", s, lo, hi)
	}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

// --- Table 1: first-run ratio (synthesize+compile+run) / interpreter ---

// Table1Row is one benchmark's first-run comparison.
type Table1Row struct {
	Workload  string
	SynthGen  time.Duration // codegen (emit Go source)
	SynthBld  time.Duration // go build
	SynthRun  time.Duration // binary execution
	InterpRun time.Duration
	Ratio     float64 // (gen+build+run) / interp
}

// Table1 runs the true synthesizer pipeline (emit → go build → execute) for
// every workload and compares against the interpreter's first run. Both
// sides read facts from files for a fair I/O path. moduleRoot must be this
// repository's root. The workloads come from the dedicated Table1Suite
// (sized for the compile-time-amortization profile), so scale is ignored.
func Table1(scale Scale, moduleRoot string, w io.Writer) ([]Table1Row, error) {
	_ = scale
	var rows []Table1Row
	fmt.Fprintln(w, "Table 1 — first-run ratio (synthesizer compile+execute / interpreter)")
	fmt.Fprintf(w, "%-22s %10s %10s %10s %12s %8s\n", "benchmark", "codegen", "go build", "synth run", "STI run", "ratio")
	for i, wl := range Table1Suite() {
		row, err := table1Row(wl, moduleRoot, fmt.Sprintf("t1_%d", i))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-22s %10v %10v %10v %12v %7.2fx\n",
			row.Workload, round(row.SynthGen), round(row.SynthBld), round(row.SynthRun),
			round(row.InterpRun), row.Ratio)
		rows = append(rows, row)
	}
	table1Summary(w, rows)
	return rows, nil
}

// Table1One runs the Table 1 pipeline for a single workload (used by the
// root benchmark suite).
func Table1One(wl *Workload, moduleRoot, genName string) (Table1Row, error) {
	return table1Row(wl, moduleRoot, genName)
}

func table1Row(wl *Workload, moduleRoot, genName string) (Table1Row, error) {
	row := Table1Row{Workload: wl.FullName()}
	rp, st, err := wl.Compile()
	if err != nil {
		return row, err
	}

	// Shared facts directory.
	work, err := os.MkdirTemp("", "sti-bench")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(work)
	if err := writeFacts(wl, st, work); err != nil {
		return row, err
	}

	// Synthesizer: emit, build, run.
	start := time.Now()
	dir, err := codegen.WriteProgram(moduleRoot, genName, rp, st)
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	row.SynthGen = time.Since(start)
	_, bld, err := codegen.Build(moduleRoot, dir)
	if err != nil {
		return row, err
	}
	row.SynthBld = bld
	runT, err := codegen.RunBinary(filepath.Join(dir, "prog"), work, work)
	if err != nil {
		return row, err
	}
	row.SynthRun = runT

	// Interpreter: tree generation + run over the same files.
	rp2, st2, err := wl.Compile()
	if err != nil {
		return row, err
	}
	io := &eio.Dir{InputDir: work, OutputDir: work, Symbols: st2, W: io.Discard}
	start = time.Now()
	eng := interp.New(rp2, st2, interp.DefaultConfig())
	if err := eng.Run(io); err != nil {
		return row, err
	}
	row.InterpRun = time.Since(start)
	row.Ratio = float64(row.SynthGen+row.SynthBld+row.SynthRun) / float64(row.InterpRun)
	return row, nil
}

// writeFacts renders a workload's in-memory facts as .facts files.
func writeFacts(wl *Workload, st *symtab.Table, dir string) error {
	prog, _, err := wl.Compile()
	if err != nil {
		return err
	}
	for _, rd := range prog.Relations {
		if !rd.Input {
			continue
		}
		f, err := os.Create(filepath.Join(dir, rd.Name+".facts"))
		if err != nil {
			return err
		}
		for _, t := range wl.Facts[rd.Name] {
			for i, v := range t {
				if i > 0 {
					fmt.Fprint(f, "\t")
				}
				switch rd.Types[i] {
				case value.Symbol:
					fmt.Fprint(f, st.Resolve(v))
				case value.Number:
					fmt.Fprint(f, value.AsInt(v))
				case value.Float:
					fmt.Fprint(f, value.AsFloat(v))
				default:
					fmt.Fprint(f, v)
				}
			}
			fmt.Fprintln(f)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func table1Summary(w io.Writer, rows []Table1Row) {
	bySuite := map[string][]float64{}
	for _, r := range rows {
		suite := r.Workload[:len(r.Workload)-len(filepath.Base(r.Workload))-1]
		bySuite[suite] = append(bySuite[suite], r.Ratio)
	}
	var suites []string
	for s := range bySuite {
		suites = append(suites, s)
	}
	sort.Strings(suites)
	fmt.Fprintf(w, "%-10s %10s %8s %8s %8s\n", "suite", ">=1", "avg", "max", "min")
	var all []float64
	for _, s := range suites {
		xs := bySuite[s]
		all = append(all, xs...)
		fmt.Fprintf(w, "%-10s %9.1f%% %8.2f %8.2f %8.2f\n", s, pctGE1(xs), mean(xs), maxOf(xs), minOf(xs))
	}
	fmt.Fprintf(w, "overall avg ratio: %.2f\n", mean(all))
}

func pctGE1(xs []float64) float64 {
	n := 0
	for _, x := range xs {
		if x >= 1 {
			n++
		}
	}
	return 100 * float64(n) / float64(len(xs))
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
