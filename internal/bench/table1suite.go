package bench

// Table1Suite is the dedicated workload set for the first-run experiment
// (Table 1). The paper's result is about compile-time amortization, so the
// sizes are chosen to reproduce its load profile relative to the
// synthesizer's fixed compile cost (~0.4 s of `go build` here, ~2 min of
// C++ there):
//
//   - VPC: long-running analyses — compile time amortizes away, most
//     ratios < 1 (paper: avg 0.79, only 20% >= 1);
//   - DDisasm: mostly small binaries with one large outlier — high ratios
//     with a < 1 tail (paper: avg 15.2, 90% >= 1, min 0.44);
//   - DOOP: uniform mid-size runs — ratios clustered a little above 2
//     (paper: avg 2.12, all >= 1).
func Table1Suite() []*Workload {
	var out []*Workload

	vpc := []vpcParams{
		{name: "acct-web", subnets: 170, routes: 620, instances: 420, ports: 3},
		{name: "acct-batch", subnets: 330, routes: 1120, instances: 640, ports: 2, hubby: true},
		{name: "acct-ml", subnets: 400, routes: 1380, instances: 740, ports: 3},
		{name: "acct-corp", subnets: 480, routes: 1650, instances: 860, ports: 2, hubby: true},
		{name: "acct-xl", subnets: 560, routes: 1960, instances: 980, ports: 3},
	}
	for i, p := range vpc {
		out = append(out, genVPC(p, int64(100+i)))
	}

	disasm := []disasmParams{
		{name: "gcc", instr: 10000}, // the large outlier: ratio < 1
		{name: "gamess", instr: 2600},
		{name: "milc", instr: 1900},
		{name: "bzip2", instr: 1400},
		{name: "sjeng", instr: 1000},
		{name: "h264ref", instr: 1700},
		{name: "lbm", instr: 1200},
		{name: "astar", instr: 900},
		{name: "omnetpp", instr: 2100},
		{name: "sphinx3", instr: 700}, // the small extreme: highest ratio
	}
	for i, p := range disasm {
		out = append(out, genDisasm(p, int64(200+i)))
	}

	doop := []doopParams{
		{name: "antlr", vars: 235, heaps: 57, moves: 375, stores: 75, loads: 90, fields: 12},
		{name: "bloat", vars: 255, heaps: 62, moves: 410, stores: 82, loads: 99, fields: 12},
		{name: "chart", vars: 245, heaps: 59, moves: 395, stores: 78, loads: 94, fields: 12},
		{name: "fop", vars: 225, heaps: 54, moves: 360, stores: 71, loads: 85, fields: 12},
		{name: "luindex", vars: 240, heaps: 58, moves: 385, stores: 77, loads: 91, fields: 12},
	}
	for i, p := range doop {
		out = append(out, genDoop(p, int64(300+i)))
	}
	return out
}
