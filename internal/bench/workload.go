// Package bench provides the benchmark suites and measurement harness that
// regenerate the paper's evaluation (§5): Fig 15 (interpreter vs
// synthesized slowdown), Table 1 (first-run compile+execute ratios), Fig 16
// (per-rule slowdown histogram), Figs 18/19 and §5.5 (optimization
// ablations).
//
// The paper's workloads are proprietary or external (Amazon VPC configs,
// SpecCPU binaries through DDisasm, DaCapo through DOOP); this package
// substitutes synthetic workloads with the same rule shapes and load
// profiles — see DESIGN.md §4 for the substitution rationale.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"sti/internal/ast2ram"
	"sti/internal/compile"
	"sti/internal/eio"
	"sti/internal/interp"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/sema"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

// Scale selects workload sizes. Small keeps every figure's full sweep under
// a minute; Medium approaches the paper's relative load profile.
type Scale int

// Available scales.
const (
	Small Scale = iota
	Medium
	Large
)

// ParseScale converts a flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want small, medium, or large)", s)
}

func (s Scale) String() string {
	return [...]string{"small", "medium", "large"}[s]
}

// Workload is one benchmark: a Datalog program plus its input facts.
type Workload struct {
	Suite string // "VPC", "DDisasm", "DOOP"
	Name  string
	Src   string
	Facts map[string][]tuple.Tuple
}

// FullName is "Suite/Name".
func (w *Workload) FullName() string { return w.Suite + "/" + w.Name }

// NewIO builds a fresh in-memory I/O handler with the workload's facts.
func (w *Workload) NewIO() *eio.Mem {
	io := eio.NewMem()
	io.Facts = w.Facts
	return io
}

// Suites generates every workload of all three suites at the given scale.
func Suites(scale Scale) []*Workload {
	var out []*Workload
	out = append(out, VPCSuite(scale)...)
	out = append(out, DisasmSuite(scale)...)
	out = append(out, DoopSuite(scale)...)
	return out
}

// Compile builds the RAM program for a workload.
func (w *Workload) Compile() (*ram.Program, *symtab.Table, error) {
	astProg, err := parser.Parse(w.Src)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: parse: %v", w.FullName(), err)
	}
	semProg, errs := sema.Analyze(astProg)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("%s: sema: %v", w.FullName(), errs[0])
	}
	st := symtab.New()
	rp, err := ast2ram.Translate(semProg, st)
	if err != nil {
		return nil, nil, err
	}
	return rp, st, nil
}

// TimeInterp measures the interpreter on a workload. Following the paper,
// the measured time includes interpreter-tree generation (engine
// construction) plus execution, but not parsing/RAM translation (common to
// both engines).
func (w *Workload) TimeInterp(cfg interp.Config) (time.Duration, *interp.Profile, error) {
	rp, st, err := w.Compile()
	if err != nil {
		return 0, nil, err
	}
	io := w.NewIO()
	start := time.Now()
	eng := interp.New(rp, st, cfg)
	if err := eng.Run(io); err != nil {
		return 0, nil, err
	}
	elapsed := time.Since(start)
	return elapsed, eng.Profile(), nil
}

// TimeCompiled measures the closure-compiled engine's execution time
// (closure construction excluded, mirroring the paper's exclusion of
// synthesis+compilation from Fig 15).
func (w *Workload) TimeCompiled() (time.Duration, []compile.RuleTime, error) {
	rp, st, err := w.Compile()
	if err != nil {
		return 0, nil, err
	}
	m := compile.New(rp, st)
	io := w.NewIO()
	start := time.Now()
	if err := m.Run(io); err != nil {
		return 0, nil, err
	}
	return time.Since(start), m.RuleTimes(), nil
}

// randGraph emits m random edges over n nodes, optionally skewed so that a
// few hub nodes concentrate traffic (rough power-law shape like real
// configurations).
func randGraph(rng *rand.Rand, n, m int, hubby bool) [][2]int {
	edges := make([][2]int, 0, m)
	pick := func() int {
		if hubby && rng.Intn(4) == 0 {
			return rng.Intn(1 + n/10)
		}
		return rng.Intn(n)
	}
	for i := 0; i < m; i++ {
		edges = append(edges, [2]int{pick(), pick()})
	}
	return edges
}

func num(i int) value.Value { return value.FromInt(int32(i)) }

// tupleT abbreviates tuple.Tuple in generator literals.
type tupleT = tuple.Tuple
