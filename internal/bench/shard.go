package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"sti/internal/interp"
)

// ShardCounts is the shard axis of the shard-scaling benchmark:
// 1, 2, 4, and all CPUs, de-duplicated and ordered — the same axis as
// ScalingWorkerCounts so the two sweeps are directly comparable.
func ShardCounts() []int {
	return ScalingWorkerCounts()
}

// ShardRow is one shard-scaling measurement. Shards == 0 marks the unsharded
// baseline row (partitioned-scan parallelism only, Workers = NumCPU), the
// configuration PR 2 tops out at; the sharded rows must beat it for the
// exchange machinery to pay for itself.
type ShardRow struct {
	Workload     string
	Shards       int
	Workers      int
	Wall         time.Duration
	Tuples       int
	TuplesPerSec float64
}

// Shard sweeps the scaling workloads over the shard axis: each run
// hash-partitions every shardable relation into N shards and runs with
// Workers = N, so every shard has a worker to merge it. An unsharded
// Workers = NumCPU row per workload gives the partitioned-scan baseline.
// The minimum over repeats is reported, as in the paper's methodology.
func Shard(scale Scale, repeats int, w io.Writer) ([]ShardRow, error) {
	fmt.Fprintf(w, "shard scaling (scale=%s; wall time and tuples/s per shard count; shards=0 is the unsharded baseline)\n", scale)
	fmt.Fprintf(w, "%-22s %8s %8s %12s %12s %14s\n", "benchmark", "shards", "workers", "wall", "tuples", "tuples/s")
	var rows []ShardRow
	for _, wl := range ScalingWorkloads(scale) {
		// Baseline: unsharded, all parallelism from partitioned scans.
		base := interp.DefaultConfig()
		base.Workers = runtime.NumCPU()
		configs := []struct {
			shards  int
			workers int
		}{{0, base.Workers}}
		for _, s := range ShardCounts() {
			configs = append(configs, struct {
				shards  int
				workers int
			}{s, s})
		}
		for _, c := range configs {
			cfg := interp.DefaultConfig()
			cfg.Workers = c.workers
			cfg.Shards = c.shards
			var best ShardRow
			for rep := 0; rep < repeats || rep == 0; rep++ {
				rp, st, err := wl.Compile()
				if err != nil {
					return nil, err
				}
				io := wl.NewIO()
				start := time.Now()
				eng := interp.New(rp, st, cfg)
				if err := eng.Run(io); err != nil {
					return nil, err
				}
				elapsed := time.Since(start)
				if best.Wall == 0 || elapsed < best.Wall {
					best = ShardRow{
						Workload: wl.FullName(),
						Shards:   c.shards,
						Workers:  c.workers,
						Wall:     elapsed,
						Tuples:   eng.TotalTuples(),
					}
				}
			}
			best.TuplesPerSec = float64(best.Tuples) / best.Wall.Seconds()
			rows = append(rows, best)
			fmt.Fprintf(w, "%-22s %8d %8d %12v %12d %14.0f\n",
				best.Workload, best.Shards, best.Workers, best.Wall.Round(time.Microsecond), best.Tuples, best.TuplesPerSec)
		}
	}
	return rows, nil
}

// ShardRecords converts shard-scaling rows; the unsharded baseline carries
// the "unsharded" variant label.
func ShardRecords(rows []ShardRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		variant := fmt.Sprintf("%d-shards", r.Shards)
		if r.Shards == 0 {
			variant = "unsharded"
		}
		out = append(out, BenchRecord{
			Workload:     r.Workload,
			Variant:      variant,
			Workers:      r.Workers,
			WallNs:       r.Wall.Nanoseconds(),
			Tuples:       r.Tuples,
			TuplesPerSec: r.TuplesPerSec,
		})
	}
	return out
}
