package bench

import (
	"fmt"
	"testing"

	"sti/internal/interp"
)

// BenchmarkParallelScaling measures end-to-end evaluation throughput
// (tuples/s across all relations, engine construction included) for each
// scaling workload at 1, 2, 4, and NumCPU workers. Compare the tuples/s
// metric across the workers axis of one workload to read the speedup.
//
//	go test ./internal/bench -run xxx -bench ParallelScaling
func BenchmarkParallelScaling(b *testing.B) {
	for _, wl := range ScalingWorkloads(Small) {
		rp, st, err := wl.Compile()
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range ScalingWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.FullName(), workers), func(b *testing.B) {
				cfg := interp.DefaultConfig()
				cfg.Workers = workers
				tuples := 0
				for i := 0; i < b.N; i++ {
					eng := interp.New(rp, st, cfg)
					if err := eng.Run(wl.NewIO()); err != nil {
						b.Fatal(err)
					}
					tuples = eng.TotalTuples()
				}
				b.ReportMetric(float64(tuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
			})
		}
	}
}

// TestScalingWorkloads keeps the benchmark inputs well-formed: workloads
// compile, run, and the worker axis starts at 1 (the serial baseline).
func TestScalingWorkloads(t *testing.T) {
	counts := ScalingWorkerCounts()
	if counts[0] != 1 {
		t.Fatalf("worker counts %v do not start at the serial baseline", counts)
	}
	seen := map[int]bool{}
	for _, c := range counts {
		if seen[c] {
			t.Fatalf("duplicate worker count in %v", counts)
		}
		seen[c] = true
	}
	wl := TCWorkload(Small)
	rp, st, err := wl.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := interp.DefaultConfig()
	cfg.Workers = 4
	eng := interp.New(rp, st, cfg)
	if err := eng.Run(wl.NewIO()); err != nil {
		t.Fatal(err)
	}
	if eng.TotalTuples() == 0 {
		t.Fatal("TC workload produced no tuples")
	}
	path := eng.Relation("path")
	if path == nil || path.Size() <= len(wl.Facts["edge"]) {
		t.Fatalf("closure did not grow: path %v vs %d edges", path, len(wl.Facts["edge"]))
	}
}
