package bench

import (
	"math/rand"

	"sti/internal/tuple"
)

// vpcProgram is the network-reachability analysis: transitive reachability
// over the subnet routing graph joined against instances and ACL rules —
// the rule shape of the paper's VPC suite (long-running recursive strata
// dominated by joins).
const vpcProgram = `
.decl route(a:number, b:number)
.decl instance(id:number, subnet:number)
.decl acl(subnet:number, port:number)
.decl subnetReach(a:number, b:number)
.decl canReach(i:number, j:number, p:number)
.decl exposed(i:number, p:number)
.input route
.input instance
.input acl
.printsize subnetReach
.printsize canReach
.printsize exposed

subnetReach(a, b) :- route(a, b).
subnetReach(a, c) :- subnetReach(a, b), route(b, c).

canReach(i, j, p) :-
    instance(i, si),
    instance(j, sj),
    subnetReach(si, sj),
    acl(sj, p),
    i != j.

exposed(j, p) :- canReach(_, j, p), p < 1024.
`

type vpcParams struct {
	name      string
	subnets   int
	routes    int
	instances int
	ports     int
	hubby     bool
}

// VPCSuite generates the VPC-like workloads: several synthetic "accounts"
// with different routing-graph shapes and sizes.
func VPCSuite(scale Scale) []*Workload {
	mult := map[Scale]float64{Small: 0.35, Medium: 1, Large: 2}[scale]
	params := []vpcParams{
		{name: "acct-web", subnets: 90, routes: 330, instances: 260, ports: 3},
		{name: "acct-batch", subnets: 130, routes: 420, instances: 300, ports: 2, hubby: true},
		{name: "acct-ml", subnets: 170, routes: 560, instances: 340, ports: 3},
		{name: "acct-corp", subnets: 220, routes: 740, instances: 420, ports: 2, hubby: true},
		{name: "acct-xl", subnets: 300, routes: 1050, instances: 520, ports: 3},
	}
	var out []*Workload
	for i, p := range params {
		p.subnets = int(float64(p.subnets) * mult)
		p.routes = int(float64(p.routes) * mult)
		p.instances = int(float64(p.instances) * mult)
		out = append(out, genVPC(p, int64(100+i)))
	}
	return out
}

func genVPC(p vpcParams, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	facts := map[string][]tuple.Tuple{}
	for _, e := range randGraph(rng, p.subnets, p.routes, p.hubby) {
		facts["route"] = append(facts["route"], tuple.Tuple{num(e[0]), num(e[1])})
	}
	for i := 0; i < p.instances; i++ {
		facts["instance"] = append(facts["instance"], tuple.Tuple{num(i), num(rng.Intn(p.subnets))})
	}
	wellKnown := []int{22, 80, 443, 5432, 8080, 9092}
	for s := 0; s < p.subnets; s++ {
		seen := map[int]bool{}
		for k := 0; k < p.ports; k++ {
			port := wellKnown[rng.Intn(len(wellKnown))]
			if !seen[port] {
				seen[port] = true
				facts["acl"] = append(facts["acl"], tuple.Tuple{num(s), num(port)})
			}
		}
	}
	return &Workload{Suite: "VPC", Name: p.name, Src: vpcProgram, Facts: facts}
}
