package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"sti/internal/interp"
	"sti/internal/tuple"
	"sti/internal/value"
)

// deleteMixes are the retraction fractions of the operation stream: every
// batch carries batchSize operations, and a fraction mix of all operations
// across the stream are retractions (0% is the pure-insert baseline).
var deleteMixes = []float64{0, 0.01, 0.10}

// deleteOps splits batch b of the stream into insertions and retractions.
// Operation k (0-based, global) is a retraction when the running fraction
// crosses an integer, spreading retractions evenly: mix=0.10 retracts every
// 10th operation, mix=0.01 every 100th. Insertions extend chain components
// from the low end (as in the resident benchmark); retractions remove the
// base-chain tail edge of distinct components from the high end, so the two
// never touch the same component.
func (s residentShape) deleteOps(b int, mix float64) (ins, dels []tupleT) {
	insSeen, delSeen := 0, 0
	for k := 0; k < b*s.batchSize; k++ {
		if int(float64(k+1)*mix) > int(float64(k)*mix) {
			delSeen++
		} else {
			insSeen++
		}
	}
	for j := 0; j < s.batchSize; j++ {
		k := b*s.batchSize + j
		if int(float64(k+1)*mix) > int(float64(k)*mix) {
			c := s.components - 1 - delSeen
			tail := c*residentStride + s.chainLen - 2
			dels = append(dels, tupleT{num(tail), num(tail + 1)})
			delSeen++
			continue
		}
		c := insSeen % s.components
		ext := insSeen / s.components
		tail := c*residentStride + s.chainLen - 1 + ext
		ins = append(ins, tupleT{num(tail), num(tail + 1)})
		insSeen++
	}
	return ins, dels
}

// DeleteRow is one delete-stream measurement: the wall time to absorb all
// batches of a given retraction mix either incrementally (update + delete
// entry points) or by recomputing from scratch on the net fact set after
// every batch (the fallback a non-deletable program pays).
type DeleteRow struct {
	Workload  string
	Variant   string // "apply" (incremental) or "rerun" (recompute fallback)
	Mix       string // retraction fraction of the operation stream
	Batches   int
	BatchSize int
	Wall      time.Duration
	Tuples    int     // path tuples at the end
	Ratio     float64 // rerun wall / apply wall, on the apply row
}

// Delete measures counting/DRed-based incremental retraction against the
// full-recompute fallback on the component-chain workload (≈10k base edges
// at medium scale, batches of 10 operations) across retraction mixes. The
// "apply" variant keeps one engine resident and absorbs each batch with
// InsertFacts + EvalUpdate followed by DeleteFacts + EvalDelete — the path
// behind Database.Apply for deletable programs; the "rerun" variant
// re-evaluates from scratch on the net edge set after every batch. Both
// sides must agree exactly on the final path relation. The minimum over
// repeats is reported.
func Delete(scale Scale, repeats int, w io.Writer) ([]DeleteRow, error) {
	shape := residentShapeAt(scale)
	base := shape.baseEdges()
	wl := &Workload{
		Suite: "Delete",
		Name:  fmt.Sprintf("tc-%dx%d", shape.components, shape.chainLen),
		Src:   residentSrc,
		Facts: map[string][]tupleT{"edge": base},
	}
	fmt.Fprintf(w, "incremental deletion (scale=%s; %d base edges, %d batches of %d ops)\n",
		scale, len(base), shape.batches, shape.batchSize)
	fmt.Fprintf(w, "%-32s %8s %6s %12s %10s %8s\n", "benchmark", "variant", "mix", "wall", "tuples", "ratio")

	rp, st, err := wl.Compile()
	if err != nil {
		return nil, err
	}
	if rp.Delete == nil {
		return nil, fmt.Errorf("delete benchmark program is not deletable: %s", rp.NoDeleteReason)
	}

	pathTuples := func(eng *interp.Engine) ([]tuple.Tuple, error) {
		ts, err := eng.Tuples("path")
		if err != nil {
			return nil, err
		}
		sort.Slice(ts, func(i, j int) bool { return tuple.Compare(ts[i], ts[j]) < 0 })
		return ts, nil
	}

	var rows []DeleteRow
	for _, mix := range deleteMixes {
		mixLabel := fmt.Sprintf("%g%%", mix*100)
		name := fmt.Sprintf("%s/mix%s", wl.FullName(), mixLabel)
		apply := DeleteRow{Workload: name, Variant: "apply", Mix: mixLabel, Batches: shape.batches, BatchSize: shape.batchSize}
		rerun := DeleteRow{Workload: name, Variant: "rerun", Mix: mixLabel, Batches: shape.batches, BatchSize: shape.batchSize}
		var applyFinal, rerunFinal []tuple.Tuple

		for rep := 0; rep < repeats || rep == 0; rep++ {
			// Incremental side: evaluate the base once (untimed), then time
			// the mixed batch stream through the update and delete entry
			// points.
			eng := interp.New(rp, st, interp.DefaultConfig())
			if err := eng.Run(wl.NewIO()); err != nil {
				return nil, err
			}
			start := time.Now()
			for i := 0; i < shape.batches; i++ {
				ins, dels := shape.deleteOps(i, mix)
				if len(ins) > 0 {
					if _, err := eng.InsertFacts("edge", ins); err != nil {
						return nil, err
					}
					if err := eng.EvalUpdate(); err != nil {
						return nil, err
					}
				}
				if len(dels) > 0 {
					if _, err := eng.DeleteFacts("edge", dels); err != nil {
						return nil, err
					}
					if err := eng.EvalDelete(); err != nil {
						return nil, err
					}
				}
			}
			elapsed := time.Since(start)
			if apply.Wall == 0 || elapsed < apply.Wall {
				apply.Wall = elapsed
				if applyFinal, err = pathTuples(eng); err != nil {
					return nil, err
				}
				apply.Tuples = len(applyFinal)
			}

			// Fallback side: after each batch, a fresh engine evaluates the
			// net edge set (insertions applied, retractions removed).
			key := func(e tupleT) [2]value.Value { return [2]value.Value{e[0], e[1]} }
			net := map[[2]value.Value]bool{}
			for _, e := range base {
				net[key(e)] = true
			}
			start = time.Now()
			var last *interp.Engine
			for i := 0; i < shape.batches; i++ {
				ins, dels := shape.deleteOps(i, mix)
				for _, e := range ins {
					net[key(e)] = true
				}
				for _, e := range dels {
					delete(net, key(e))
				}
				edges := make([]tupleT, 0, len(net))
				for e := range net {
					edges = append(edges, tupleT{e[0], e[1]})
				}
				io := wl.NewIO()
				io.Facts = map[string][]tupleT{"edge": edges}
				fresh := interp.New(rp, st, interp.DefaultConfig())
				if err := fresh.Run(io); err != nil {
					return nil, err
				}
				last = fresh
			}
			elapsed = time.Since(start)
			if rerun.Wall == 0 || elapsed < rerun.Wall {
				rerun.Wall = elapsed
				if rerunFinal, err = pathTuples(last); err != nil {
					return nil, err
				}
				rerun.Tuples = len(rerunFinal)
			}
		}
		if len(applyFinal) != len(rerunFinal) {
			return nil, fmt.Errorf("delete mix %s: path mismatch: apply=%d rerun=%d", mixLabel, len(applyFinal), len(rerunFinal))
		}
		for i := range applyFinal {
			if tuple.Compare(applyFinal[i], rerunFinal[i]) != 0 {
				return nil, fmt.Errorf("delete mix %s: path tuple %d differs: apply=%v rerun=%v", mixLabel, i, applyFinal[i], rerunFinal[i])
			}
		}
		apply.Ratio = float64(rerun.Wall) / float64(apply.Wall)
		for _, r := range []DeleteRow{apply, rerun} {
			fmt.Fprintf(w, "%-32s %8s %6s %12v %10d %8.1f\n",
				r.Workload, r.Variant, r.Mix, r.Wall.Round(time.Microsecond), r.Tuples, r.Ratio)
		}
		rows = append(rows, apply, rerun)
	}
	return rows, nil
}

// DeleteRecords converts delete rows to the common record schema.
func DeleteRecords(rows []DeleteRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Workload: r.Workload,
			Variant:  r.Variant,
			WallNs:   r.Wall.Nanoseconds(),
			Tuples:   r.Tuples,
			Ratio:    r.Ratio,
		})
	}
	return out
}
