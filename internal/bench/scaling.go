package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"sti/internal/interp"
)

// TCWorkload generates the transitive-closure workload of the worker-scaling
// experiment: a dense random graph whose closure is insert-dominated, so
// throughput tracks how well parallel inserts scale. TC is the canonical
// recursive benchmark and the one workload where the staging-buffer merge
// discipline is stressed hardest (most tuples per scan iteration).
func TCWorkload(scale Scale) *Workload {
	n := []int{220, 500, 900}[scale]
	m := 3 * n
	src := `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.printsize path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`
	rng := rand.New(rand.NewSource(42))
	facts := map[string][]tupleT{}
	for _, e := range randGraph(rng, n, m, false) {
		facts["edge"] = append(facts["edge"], tupleT{num(e[0]), num(e[1])})
	}
	return &Workload{
		Suite: "Scaling",
		Name:  fmt.Sprintf("tc-%d", n),
		Src:   src,
		Facts: facts,
	}
}

// ScalingWorkloads is the worker-scaling benchmark set: the TC workload
// plus the Table 1 suite, so the scaling numbers cover both the
// insert-dominated extreme and the paper's realistic load profiles.
func ScalingWorkloads(scale Scale) []*Workload {
	return append([]*Workload{TCWorkload(scale)}, Table1Suite()...)
}

// ScalingWorkerCounts is the worker axis of the scaling benchmark:
// 1, 2, 4, and all CPUs, de-duplicated and ordered.
func ScalingWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// ScalingRow is one worker-scaling measurement.
type ScalingRow struct {
	Workload     string
	Workers      int
	Wall         time.Duration
	Tuples       int // total tuples across all relations after the run
	TuplesPerSec float64
}

// Scaling sweeps the scaling workloads over the worker axis and reports
// wall time and tuple throughput per (workload, worker-count) cell; the
// minimum over repeats is reported, as in the paper's methodology.
func Scaling(scale Scale, repeats int, w io.Writer) ([]ScalingRow, error) {
	fmt.Fprintf(w, "worker scaling (scale=%s; wall time and tuples/s per worker count)\n", scale)
	fmt.Fprintf(w, "%-22s %8s %12s %12s %14s\n", "benchmark", "workers", "wall", "tuples", "tuples/s")
	var rows []ScalingRow
	for _, wl := range ScalingWorkloads(scale) {
		for _, workers := range ScalingWorkerCounts() {
			cfg := interp.DefaultConfig()
			cfg.Workers = workers
			var best ScalingRow
			for rep := 0; rep < repeats || rep == 0; rep++ {
				rp, st, err := wl.Compile()
				if err != nil {
					return nil, err
				}
				io := wl.NewIO()
				start := time.Now()
				eng := interp.New(rp, st, cfg)
				if err := eng.Run(io); err != nil {
					return nil, err
				}
				elapsed := time.Since(start)
				if best.Wall == 0 || elapsed < best.Wall {
					best = ScalingRow{
						Workload: wl.FullName(),
						Workers:  workers,
						Wall:     elapsed,
						Tuples:   eng.TotalTuples(),
					}
				}
			}
			best.TuplesPerSec = float64(best.Tuples) / best.Wall.Seconds()
			rows = append(rows, best)
			fmt.Fprintf(w, "%-22s %8d %12v %12d %14.0f\n",
				best.Workload, best.Workers, best.Wall.Round(time.Microsecond), best.Tuples, best.TuplesPerSec)
		}
	}
	return rows, nil
}
