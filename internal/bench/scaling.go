package bench

import (
	"fmt"
	"math/rand"
	"runtime"
)

// TCWorkload generates the transitive-closure workload of the worker-scaling
// experiment: a dense random graph whose closure is insert-dominated, so
// throughput tracks how well parallel inserts scale. TC is the canonical
// recursive benchmark and the one workload where the staging-buffer merge
// discipline is stressed hardest (most tuples per scan iteration).
func TCWorkload(scale Scale) *Workload {
	n := []int{220, 500, 900}[scale]
	m := 3 * n
	src := `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.printsize path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`
	rng := rand.New(rand.NewSource(42))
	facts := map[string][]tupleT{}
	for _, e := range randGraph(rng, n, m, false) {
		facts["edge"] = append(facts["edge"], tupleT{num(e[0]), num(e[1])})
	}
	return &Workload{
		Suite: "Scaling",
		Name:  fmt.Sprintf("tc-%d", n),
		Src:   src,
		Facts: facts,
	}
}

// ScalingWorkloads is the worker-scaling benchmark set: the TC workload
// plus the Table 1 suite, so the scaling numbers cover both the
// insert-dominated extreme and the paper's realistic load profiles.
func ScalingWorkloads(scale Scale) []*Workload {
	return append([]*Workload{TCWorkload(scale)}, Table1Suite()...)
}

// ScalingWorkerCounts is the worker axis of the scaling benchmark:
// 1, 2, 4, and all CPUs, de-duplicated and ordered.
func ScalingWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}
