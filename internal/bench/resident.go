package bench

import (
	"fmt"
	"io"
	"time"

	"sti/internal/interp"
)

// residentSrc is the resident-engine benchmark program: transitive closure,
// the workload shape the delta-restart update program is built for.
const residentSrc = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

// residentShape sizes the component-chain workload: components disjoint
// chains of chainLen nodes each (base edges = components*(chainLen-1)),
// then batches small insert batches, each extending batchSize distinct
// components by one tail node. Component i owns node ids [i*stride,
// (i+1)*stride), so extensions never collide.
type residentShape struct {
	components int
	chainLen   int
	batches    int
	batchSize  int
}

const residentStride = 1 << 16

func residentShapeAt(scale Scale) residentShape {
	return residentShape{
		components: []int{100, 1112, 2223}[scale],
		chainLen:   10,
		batches:    []int{5, 10, 20}[scale],
		batchSize:  10,
	}
}

func (s residentShape) baseEdges() []tupleT {
	var out []tupleT
	for c := 0; c < s.components; c++ {
		for i := 0; i < s.chainLen-1; i++ {
			out = append(out, tupleT{num(c*residentStride + i), num(c*residentStride + i + 1)})
		}
	}
	return out
}

// batchEdges returns the edges of batch b: one chain extension per touched
// component, round-robin over components.
func (s residentShape) batchEdges(b int) []tupleT {
	var out []tupleT
	for j := 0; j < s.batchSize; j++ {
		k := b*s.batchSize + j
		c := k % s.components
		ext := k / s.components // 0-based extension count for component c
		tail := c*residentStride + s.chainLen - 1 + ext
		out = append(out, tupleT{num(tail), num(tail + 1)})
	}
	return out
}

// ResidentRow is one resident-engine measurement: the wall time to absorb
// all batches either incrementally (resident apply) or by re-running from
// scratch on the union after every batch.
type ResidentRow struct {
	Workload  string
	Variant   string // "apply" (resident, incremental) or "rerun" (from scratch)
	Batches   int
	BatchSize int
	Wall      time.Duration
	Tuples    int     // path tuples at the end
	Ratio     float64 // rerun wall / apply wall, on the apply row
}

// Resident measures the resident engine against the one-shot engine on the
// same stream of insert batches: a component-chain base (≈10k edges at
// medium scale) followed by small extension batches. The "apply" variant
// keeps one engine resident and absorbs each batch with InsertFacts +
// EvalUpdate (delta-restart incremental evaluation, the path behind
// Database.Apply); the "rerun" variant re-evaluates from scratch on the
// accumulated edge set after every batch, which is what a non-resident
// deployment would do. The minimum over repeats is reported.
func Resident(scale Scale, repeats int, w io.Writer) ([]ResidentRow, error) {
	shape := residentShapeAt(scale)
	base := shape.baseEdges()
	wl := &Workload{
		Suite: "Resident",
		Name:  fmt.Sprintf("tc-%dx%d", shape.components, shape.chainLen),
		Src:   residentSrc,
		Facts: map[string][]tupleT{"edge": base},
	}
	name := wl.FullName()
	fmt.Fprintf(w, "resident engine (scale=%s; %d base edges, %d batches of %d edges)\n",
		scale, len(base), shape.batches, shape.batchSize)
	fmt.Fprintf(w, "%-26s %10s %12s %10s %8s\n", "benchmark", "variant", "wall", "tuples", "ratio")

	rp, st, err := wl.Compile()
	if err != nil {
		return nil, err
	}

	apply := ResidentRow{Workload: name, Variant: "apply", Batches: shape.batches, BatchSize: shape.batchSize}
	rerun := ResidentRow{Workload: name, Variant: "rerun", Batches: shape.batches, BatchSize: shape.batchSize}

	pathSize := func(eng *interp.Engine) (int, error) {
		ts, err := eng.Tuples("path")
		if err != nil {
			return 0, err
		}
		return len(ts), nil
	}

	for rep := 0; rep < repeats || rep == 0; rep++ {
		// Resident side: evaluate the base once (untimed), then time the
		// batch stream through the incremental entry point.
		eng := interp.New(rp, st, interp.DefaultConfig())
		if err := eng.Run(wl.NewIO()); err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < shape.batches; i++ {
			if _, err := eng.InsertFacts("edge", shape.batchEdges(i)); err != nil {
				return nil, err
			}
			if err := eng.EvalUpdate(); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		if apply.Wall == 0 || elapsed < apply.Wall {
			apply.Wall = elapsed
			if apply.Tuples, err = pathSize(eng); err != nil {
				return nil, err
			}
		}

		// From-scratch side: after each batch, a fresh engine evaluates the
		// union (engine construction included, as in TimeInterp).
		union := append([]tupleT{}, base...)
		start = time.Now()
		var last int
		for i := 0; i < shape.batches; i++ {
			union = append(union, shape.batchEdges(i)...)
			io := wl.NewIO()
			io.Facts = map[string][]tupleT{"edge": union}
			fresh := interp.New(rp, st, interp.DefaultConfig())
			if err := fresh.Run(io); err != nil {
				return nil, err
			}
			if last, err = pathSize(fresh); err != nil {
				return nil, err
			}
		}
		elapsed = time.Since(start)
		if rerun.Wall == 0 || elapsed < rerun.Wall {
			rerun.Wall = elapsed
			rerun.Tuples = last
		}
	}
	if apply.Tuples != rerun.Tuples {
		return nil, fmt.Errorf("resident: tuple mismatch: apply=%d rerun=%d", apply.Tuples, rerun.Tuples)
	}
	apply.Ratio = float64(rerun.Wall) / float64(apply.Wall)
	for _, r := range []ResidentRow{apply, rerun} {
		fmt.Fprintf(w, "%-26s %10s %12v %10d %8.1f\n",
			r.Workload, r.Variant, r.Wall.Round(time.Microsecond), r.Tuples, r.Ratio)
	}
	return []ResidentRow{apply, rerun}, nil
}

// ResidentRecords converts resident rows to the common record schema.
func ResidentRecords(rows []ResidentRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Workload: r.Workload,
			Variant:  r.Variant,
			WallNs:   r.Wall.Nanoseconds(),
			Tuples:   r.Tuples,
			Ratio:    r.Ratio,
		})
	}
	return out
}
