package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// BenchRecord is one machine-readable benchmark measurement. All experiments
// normalize into this shape so downstream tooling (regression tracking, CI
// artifact diffing) parses one schema.
type BenchRecord struct {
	Workload string `json:"workload"`
	// Variant names the engine or configuration measured: "interp",
	// "compiled", "legacy", an ablation ("no-super"), or a worker count.
	Variant string `json:"variant,omitempty"`
	Workers int    `json:"workers,omitempty"`
	WallNs  int64  `json:"wall_ns"`
	// Tuples is the total tuple count after the run (all relations);
	// TuplesPerSec is Tuples scaled by wall time. Zero when the experiment
	// does not track tuple counts.
	Tuples       int     `json:"tuples,omitempty"`
	TuplesPerSec float64 `json:"tuples_per_sec,omitempty"`
	// Ratio carries the experiment's derived metric (slowdown, relative
	// runtime, compile/run ratio) when it has one.
	Ratio float64 `json:"ratio,omitempty"`
}

// BenchLog is the envelope of one benchmark invocation: enough metadata to
// compare runs across machines and revisions.
type BenchLog struct {
	Experiment string        `json:"experiment"`
	Scale      string        `json:"scale"`
	Repeats    int           `json:"repeats"`
	GitRev     string        `json:"git_rev,omitempty"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	Timestamp  string        `json:"timestamp"`
	Records    []BenchRecord `json:"records"`
}

// NewBenchLog stamps an envelope with the environment metadata.
func NewBenchLog(experiment string, scale Scale, repeats int) *BenchLog {
	return &BenchLog{
		Experiment: experiment,
		Scale:      scale.String(),
		Repeats:    repeats,
		GitRev:     gitRev(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

// gitRev reports the current commit (short hash, "-dirty" suffixed), or ""
// outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	rev := strings.TrimSpace(string(out))
	if err := exec.Command("git", "diff", "--quiet", "HEAD").Run(); err != nil {
		rev += "-dirty"
	}
	return rev
}

// WriteJSON writes the log as BENCH_<experiment>.json under dir, creating
// dir if needed, and returns the file path.
func (l *BenchLog) WriteJSON(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", l.Experiment))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(l); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Fig15Records converts Fig 15 rows: one record per engine per workload.
func Fig15Records(rows []Fig15Row) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out,
			BenchRecord{Workload: r.Workload, Variant: "compiled", WallNs: r.Compiled.Nanoseconds()},
			BenchRecord{Workload: r.Workload, Variant: "interp", WallNs: r.Interp.Nanoseconds(), Ratio: r.Slowdown})
		if r.Legacy > 0 {
			out = append(out, BenchRecord{Workload: r.Workload, Variant: "legacy", WallNs: r.Legacy.Nanoseconds(), Ratio: r.LegacyX})
		}
	}
	return out
}

// AblationRecords converts ablation rows: optimized and baseline variants.
func AblationRecords(rows []AblationRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out,
			BenchRecord{Workload: r.Workload, Variant: "optimized", WallNs: r.Base.Nanoseconds(), Ratio: r.Relative},
			BenchRecord{Workload: r.Workload, Variant: "baseline", WallNs: r.Variant.Nanoseconds()})
	}
	return out
}

// Fig16Records converts the per-rule case study: one record per rule, the
// workload field carrying the rule label.
func Fig16Records(rows []Fig16Row) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out,
			BenchRecord{Workload: r.Label, Variant: "interp", WallNs: r.Interp.Nanoseconds(), Ratio: r.Slowdown},
			BenchRecord{Workload: r.Label, Variant: "compiled", WallNs: r.Compiled.Nanoseconds()})
	}
	return out
}

// Table1Records converts Table 1 rows; the synthesizer side reports the full
// gen+build+run pipeline wall time.
func Table1Records(rows []Table1Row) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		synth := r.SynthGen + r.SynthBld + r.SynthRun
		out = append(out,
			BenchRecord{Workload: r.Workload, Variant: "synthesized", WallNs: synth.Nanoseconds(), Ratio: r.Ratio},
			BenchRecord{Workload: r.Workload, Variant: "interp", WallNs: r.InterpRun.Nanoseconds()})
	}
	return out
}

// ScalingRecords converts worker-scaling rows.
func ScalingRecords(rows []ScalingRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Workload:     r.Workload,
			Variant:      fmt.Sprintf("%d-workers", r.Workers),
			Workers:      r.Workers,
			WallNs:       r.Wall.Nanoseconds(),
			Tuples:       r.Tuples,
			TuplesPerSec: r.TuplesPerSec,
		})
	}
	return out
}
