package bench

import (
	"math/rand"

	"sti/internal/tuple"
)

// disasmProgram reconstructs code layout from raw instruction facts, in the
// style of DDisasm. It deliberately contains the §5.2 pathology: the
// moved_label rule is a depth-2 loop nest whose innermost filter performs
// many small arithmetic operations per candidate pair — the pattern whose
// dispatch count dominates the interpreter's performance gap in the paper's
// case study (Fig 17).
const disasmProgram = `
.decl instruction(addr:number, size:number, kind:number, target:number)
.decl jumpTarget(t:number)
.decl code(addr:number)
.decl next(a:number, b:number)
.decl blockStart(a:number)
.decl functionEntry(a:number)
.decl candidate(a:number)
.decl moved_label(a:number, b:number)
.decl alignedPair(a:number, b:number)
.decl dataByte(a:number)
.input instruction
.printsize code
.printsize moved_label
.printsize alignedPair
.printsize functionEntry

jumpTarget(t) :- instruction(_, _, 1, t).

code(0).
code(t) :- jumpTarget(t), instruction(t, _, _, _).
code(n) :- code(a), instruction(a, s, 0, _), n = a + s, instruction(n, _, _, _).

next(a, n) :- code(a), instruction(a, s, 0, _), n = a + s.
next(a, t) :- code(a), instruction(a, _, 1, t).

blockStart(0).
blockStart(t) :- jumpTarget(t), code(t).
functionEntry(t) :- blockStart(t), t % 16 = 0.

dataByte(a) :- instruction(a, _, _, _), !code(a).

candidate(a) :- code(a), a % 2 = 0.

// The pathological rule: quadratic loop nest, arithmetic-heavy filter.
moved_label(a, b) :-
    candidate(a),
    candidate(b),
    b > a,
    (b - a) % 8 = 0,
    (b - a) / 8 < 48,
    (a band 15) = (b band 15),
    ((a bxor b) band 1) = 0,
    (a + b) % 3 != 1.

// A second quadratic rule with a cheaper filter, for the Fig 16 histogram's
// mid-range.
alignedPair(a, b) :-
    candidate(a),
    candidate(b),
    b = a + 64.
`

type disasmParams struct {
	name  string
	instr int
}

// DisasmSuite generates synthetic "binaries" of different sizes, named
// after the flavor of SpecCPU inputs the paper uses. specrand is the
// deliberately tiny outlier whose runtime is dominated by fixed overheads
// (the paper's 23x data point).
func DisasmSuite(scale Scale) []*Workload {
	mult := map[Scale]float64{Small: 0.4, Medium: 1, Large: 2}[scale]
	params := []disasmParams{
		{name: "gcc", instr: 5200},
		{name: "gamess", instr: 4200},
		{name: "milc", instr: 3000},
		{name: "bzip2", instr: 2200},
		{name: "sjeng", instr: 1500},
		{name: "specrand", instr: 60},
	}
	var out []*Workload
	for i, p := range params {
		if p.name != "specrand" {
			p.instr = int(float64(p.instr) * mult)
		}
		out = append(out, genDisasm(p, int64(200+i)))
	}
	return out
}

func genDisasm(p disasmParams, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	facts := map[string][]tuple.Tuple{}
	// Lay out instructions sequentially with sizes 2/4/8; ~10% are jumps to
	// a random earlier-or-later instruction start.
	addrs := make([]int, 0, p.instr)
	addr := 0
	sizes := []int{2, 4, 4, 4, 8}
	type ins struct{ addr, size int }
	var list []ins
	for i := 0; i < p.instr; i++ {
		s := sizes[rng.Intn(len(sizes))]
		addrs = append(addrs, addr)
		list = append(list, ins{addr, s})
		addr += s
	}
	for _, in := range list {
		kind, target := 0, 0
		if rng.Intn(10) == 0 {
			kind = 1
			target = addrs[rng.Intn(len(addrs))]
		}
		facts["instruction"] = append(facts["instruction"],
			tuple.Tuple{num(in.addr), num(in.size), num(kind), num(target)})
	}
	return &Workload{Suite: "DDisasm", Name: p.name, Src: disasmProgram, Facts: facts}
}
