package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"sti/internal/interp"
)

// --- Fig 16: per-rule slowdown case study ---

// Fig16Row is one rule's interpreter-vs-compiled comparison.
type Fig16Row struct {
	RuleID   int
	Label    string
	Interp   time.Duration
	Compiled time.Duration
	Slowdown float64
	// GapShare is this rule's share of the total absolute gap
	// (interp − compiled summed over rules).
	GapShare float64
}

// Fig16 profiles one DDisasm-style workload per rule under both engines and
// reports the slowdown distribution (the paper's §5.2 case study on
// gamess). Rules cheaper than minTime under the compiled engine are
// dropped, like the paper's 0.01 s cutoff.
func Fig16(scale Scale, w io.Writer) ([]Fig16Row, error) {
	var wl *Workload
	for _, cand := range DisasmSuite(scale) {
		if cand.Name == "gamess" {
			wl = cand
		}
	}
	cfg := interp.DefaultConfig()
	cfg.Profile = true
	_, prof, err := wl.TimeInterp(cfg)
	if err != nil {
		return nil, err
	}
	_, ruleTimes, err := wl.TimeCompiled()
	if err != nil {
		return nil, err
	}
	compiled := map[int]time.Duration{}
	for _, rt := range ruleTimes {
		compiled[rt.RuleID] = rt.Time
	}

	minTime := 50 * time.Microsecond
	var rows []Fig16Row
	var totalGap time.Duration
	for _, r := range prof.Rules {
		tc := compiled[r.RuleID]
		if tc < minTime || r.Time <= tc {
			if r.Time > tc {
				totalGap += r.Time - tc
			}
			continue
		}
		rows = append(rows, Fig16Row{
			RuleID:   r.RuleID,
			Label:    r.Label,
			Interp:   r.Time,
			Compiled: tc,
			Slowdown: float64(r.Time) / float64(tc),
		})
		totalGap += r.Time - tc
	}
	for i := range rows {
		rows[i].GapShare = float64(rows[i].Interp-rows[i].Compiled) / float64(totalGap)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Slowdown > rows[j].Slowdown })

	fmt.Fprintf(w, "Fig 16 — per-rule slowdown on DDisasm/gamess (scale=%s)\n", scale)
	fmt.Fprintf(w, "%9s %12s %12s %9s  rule\n", "slowdown", "STI", "compiled", "gap share")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2fx %12v %12v %8.1f%%  %s\n",
			r.Slowdown, round(r.Interp), round(r.Compiled), 100*r.GapShare, clip(r.Label, 60))
	}
	if len(rows) > 0 {
		top := rows[0]
		for _, r := range rows {
			if r.GapShare > top.GapShare {
				top = r
			}
		}
		fmt.Fprintf(w, "dominant rule contributes %.1f%% of the gap at %.1fx (paper: 4 outlier rules ~73%% of gap)\n",
			100*top.GapShare, top.Slowdown)
	}

	// The paper's §5.2 remedy: a hand-crafted super-instruction for the
	// dominant filter condition, executed with a single dispatch.
	cfgFused := interp.DefaultConfig()
	cfgFused.FusedFilters = true
	cfgFused.Profile = true
	_, profFused, err := wl.TimeInterp(cfgFused)
	if err != nil {
		return nil, err
	}
	var before, after time.Duration
	fusedTimes := map[int]time.Duration{}
	for _, r := range profFused.Rules {
		fusedTimes[r.RuleID] = r.Time
	}
	for _, r := range prof.Rules {
		before += r.Time
		after += fusedTimes[r.RuleID]
	}
	fmt.Fprintf(w, "hand-crafted super-instructions (fused filters): total rule time %v -> %v (%.2fx faster; paper: 44s -> 4s on moved_label)\n",
		round(before), round(after), float64(before)/float64(after))

	// Per-iteration dispatch reduction on the dominant rule (the paper's
	// "14 dispatches -> 1").
	var dominant *interp.RuleProfile
	for i := range prof.Rules {
		r := &prof.Rules[i]
		if dominant == nil || r.Time > dominant.Time {
			dominant = r
		}
	}
	if dominant != nil && dominant.Iterations > 0 {
		var fusedRule *interp.RuleProfile
		for i := range profFused.Rules {
			if profFused.Rules[i].RuleID == dominant.RuleID {
				fusedRule = &profFused.Rules[i]
			}
		}
		if fusedRule != nil && fusedRule.Iterations > 0 {
			fmt.Fprintf(w, "dominant rule dispatches/iteration: %.1f -> %.1f (paper: 14 -> 1 for the filter)\n",
				float64(dominant.Dispatches)/float64(dominant.Iterations),
				float64(fusedRule.Dispatches)/float64(fusedRule.Iterations))
		}
	}
	return rows, nil
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// --- generic A/B ablation driver ---

// AblationRow is one workload's A/B runtime comparison.
type AblationRow struct {
	Workload string
	Base     time.Duration // optimization ON (the full STI)
	Variant  time.Duration // optimization OFF
	Relative float64       // Base / Variant (lower = optimization helps)
}

func runAblation(scale Scale, repeats int, title string, w io.Writer, variant func(interp.Config) interp.Config) ([]AblationRow, error) {
	fmt.Fprintf(w, "%s (scale=%s; relative runtime, optimized/baseline — lower is better)\n", title, scale)
	fmt.Fprintf(w, "%-22s %12s %12s %9s\n", "benchmark", "optimized", "baseline", "relative")
	var rows []AblationRow
	for _, wl := range Suites(scale) {
		on, err := repeat(repeats, func() (time.Duration, error) {
			d, _, err := wl.TimeInterp(interp.DefaultConfig())
			return d, err
		})
		if err != nil {
			return nil, err
		}
		off, err := repeat(repeats, func() (time.Duration, error) {
			d, _, err := wl.TimeInterp(variant(interp.DefaultConfig()))
			return d, err
		})
		if err != nil {
			return nil, err
		}
		row := AblationRow{
			Workload: wl.FullName(),
			Base:     on,
			Variant:  off,
			Relative: float64(on) / float64(off),
		}
		fmt.Fprintf(w, "%-22s %12v %12v %9.3f\n", row.Workload, round(on), round(off), row.Relative)
		rows = append(rows, row)
	}
	var rels []float64
	for _, r := range rows {
		rels = append(rels, r.Relative)
	}
	fmt.Fprintf(w, "average relative runtime: %.3f (%.1f%% faster with the optimization)\n",
		mean(rels), 100*(1-mean(rels)))
	return rows, nil
}

// Fig18 ablates static instruction generation: the baseline runs every
// relational operation through the dynamic adapter with buffered iterators.
func Fig18(scale Scale, repeats int, w io.Writer) ([]AblationRow, error) {
	return runAblation(scale, repeats,
		"Fig 18 — static instruction generation vs dynamic adapter", w,
		func(c interp.Config) interp.Config {
			c.StaticDispatch = false
			return c
		})
}

// Fig19 ablates super-instructions and additionally reports the fraction of
// dispatches they eliminate (§5.4's 22.01%).
func Fig19(scale Scale, repeats int, w io.Writer) ([]AblationRow, error) {
	rows, err := runAblation(scale, repeats,
		"Fig 19 — super-instructions vs plain dispatch", w,
		func(c interp.Config) interp.Config {
			c.SuperInstructions = false
			return c
		})
	if err != nil {
		return nil, err
	}
	// Dispatch elimination, measured in profile mode.
	var withSI, withoutSI float64
	for _, wl := range Suites(scale) {
		cfg := interp.DefaultConfig()
		cfg.Profile = true
		_, p1, err := wl.TimeInterp(cfg)
		if err != nil {
			return nil, err
		}
		cfg.SuperInstructions = false
		_, p0, err := wl.TimeInterp(cfg)
		if err != nil {
			return nil, err
		}
		withSI += float64(p1.TotalDispatches)
		withoutSI += float64(p0.TotalDispatches)
	}
	fmt.Fprintf(w, "dispatches eliminated by super-instructions: %.1f%% (paper: 22.01%%)\n",
		100*(1-withSI/withoutSI))
	return rows, nil
}

// FigReorder ablates static tuple reordering (§5.5): the baseline re-orders
// tuples at runtime through decoding iterators.
func FigReorder(scale Scale, repeats int, w io.Writer) ([]AblationRow, error) {
	return runAblation(scale, repeats,
		"§5.5 — static tuple reordering vs runtime reordering", w,
		func(c interp.Config) interp.Config {
			c.StaticReordering = false
			return c
		})
}

// FigDispatch ablates the lean dispatch path (the §4.3 register-pressure
// analog): the baseline pays a fixed extra cost on every dispatch.
func FigDispatch(scale Scale, repeats int, w io.Writer) ([]AblationRow, error) {
	return runAblation(scale, repeats,
		"§5.5 — lean dispatch vs heavyweight dispatch", w,
		func(c interp.Config) interp.Config {
			c.LeanDispatch = false
			return c
		})
}

// --- data-structure portfolio ---

// FigPortfolio compares the portfolio entries (§2): the same dense
// reachability workload with relations stored in B-trees vs bries. Dense
// identifier spaces favor the brie's bitmap leaves; the portfolio exists
// because neither structure wins everywhere.
func FigPortfolio(scale Scale, repeats int, w io.Writer) error {
	const tmpl = `
.decl edge(x:number, y:number) %[1]s
.decl path(x:number, y:number) %[1]s
.input edge
.printsize path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`
	sizes := map[Scale]int{Small: 20, Medium: 30, Large: 42}
	n := sizes[scale]
	facts := denseGridFacts(n)
	fmt.Fprintf(w, "Data-structure portfolio — dense reachability, %dx%d grid (scale=%s)\n", n, n, scale)
	fmt.Fprintf(w, "%-8s %12s\n", "store", "STI time")
	var times []time.Duration
	for _, rep := range []string{"btree", "brie"} {
		wl := &Workload{
			Suite: "Portfolio",
			Name:  rep,
			Src:   fmt.Sprintf(tmpl, rep),
			Facts: facts,
		}
		d, err := repeat(repeats, func() (time.Duration, error) {
			t, _, err := wl.TimeInterp(interp.DefaultConfig())
			return t, err
		})
		if err != nil {
			return err
		}
		times = append(times, d)
		fmt.Fprintf(w, "%-8s %12v\n", rep, round(d))
	}
	fmt.Fprintf(w, "brie/btree runtime ratio: %.2f\n", float64(times[1])/float64(times[0]))
	return nil
}

// denseGridFacts lays a 2-D grid over a dense id space: node (r,c) = r*side+c
// with right/down edges — dense, clustered identifiers.
func denseGridFacts(side int) map[string][]tupleT {
	var edges []tupleT
	id := func(r, c int) uint32 { return uint32(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				edges = append(edges, tupleT{id(r, c), id(r, c+1)})
			}
			if r+1 < side {
				edges = append(edges, tupleT{id(r, c), id(r+1, c)})
			}
		}
	}
	return map[string][]tupleT{"edge": edges}
}
