package bench

import (
	"strings"
	"testing"

	"sti/internal/interp"
)

func TestSuitesGenerateAndCompile(t *testing.T) {
	suites := Suites(Small)
	if len(suites) != 16 {
		t.Fatalf("workload count = %d", len(suites))
	}
	names := map[string]bool{}
	for _, w := range suites {
		if names[w.FullName()] {
			t.Fatalf("duplicate workload %s", w.FullName())
		}
		names[w.FullName()] = true
		if _, _, err := w.Compile(); err != nil {
			t.Fatalf("%s does not compile: %v", w.FullName(), err)
		}
		if len(w.Facts) == 0 {
			t.Fatalf("%s has no facts", w.FullName())
		}
	}
	for _, want := range []string{"VPC/acct-web", "DDisasm/gcc", "DOOP/antlr"} {
		if !names[want] {
			t.Fatalf("missing workload %s", want)
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a := Suites(Small)
	b := Suites(Small)
	for i := range a {
		for rel, ts := range a[i].Facts {
			if len(b[i].Facts[rel]) != len(ts) {
				t.Fatalf("%s relation %s differs across generations", a[i].FullName(), rel)
			}
			for j := range ts {
				for k := range ts[j] {
					if ts[j][k] != b[i].Facts[rel][j][k] {
						t.Fatalf("%s relation %s tuple %d differs", a[i].FullName(), rel, j)
					}
				}
			}
		}
	}
}

func TestScalesOrdered(t *testing.T) {
	small := Suites(Small)
	medium := Suites(Medium)
	for i := range small {
		if small[i].Suite != medium[i].Suite || small[i].Name != medium[i].Name {
			t.Fatal("scale changes workload identity")
		}
	}
	// Medium VPC has strictly more routes than small.
	if len(medium[0].Facts["route"]) <= len(small[0].Facts["route"]) {
		t.Fatal("medium not larger than small")
	}
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"small": Small, "medium": Medium, "large": Large} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("giant"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestTable1SuiteShape(t *testing.T) {
	ws := Table1Suite()
	counts := map[string]int{}
	for _, w := range ws {
		counts[w.Suite]++
		if _, _, err := w.Compile(); err != nil {
			t.Fatalf("%s: %v", w.FullName(), err)
		}
	}
	if counts["VPC"] != 5 || counts["DDisasm"] != 10 || counts["DOOP"] != 5 {
		t.Fatalf("suite counts = %v", counts)
	}
}

// TestTinyMeasurementRuns: the measurement helpers work end to end on the
// smallest workload.
func TestTinyMeasurementRuns(t *testing.T) {
	var tiny *Workload
	for _, w := range DisasmSuite(Small) {
		if w.Name == "specrand" {
			tiny = w
		}
	}
	d, prof, err := tiny.TimeInterp(interp.DefaultConfig())
	if err != nil || d <= 0 {
		t.Fatalf("TimeInterp: %v %v", d, err)
	}
	if prof != nil {
		t.Fatal("profile returned without profiling enabled")
	}
	dc, rules, err := tiny.TimeCompiled()
	if err != nil || dc <= 0 {
		t.Fatalf("TimeCompiled: %v %v", dc, err)
	}
	if len(rules) == 0 {
		t.Fatal("no rule times recorded")
	}
}

func TestFig15SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement sweep")
	}
	var sb strings.Builder
	rows, err := Fig15(Small, 1, false, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Slowdown <= 0 {
			t.Fatalf("bad slowdown for %s", r.Workload)
		}
	}
	if !strings.Contains(sb.String(), "slowdown") {
		t.Fatal("report missing summary")
	}
}
