package bench

import (
	"math/rand"

	"sti/internal/tuple"
)

// doopProgram is a context-insensitive Andersen-style points-to analysis —
// the mutually recursive varPointsTo/heapPointsTo fixpoint at the core of
// DOOP's analyses.
const doopProgram = `
.decl alloc(v:number, h:number)
.decl move(t:number, f:number)
.decl store(base:number, fld:number, from:number)
.decl load(to:number, base:number, fld:number)
.decl vpt(v:number, h:number)
.decl hpt(h:number, fld:number, g:number)
.decl aliased(a:number, b:number)
.input alloc
.input move
.input store
.input load
.printsize vpt
.printsize hpt
.printsize aliased

vpt(v, h) :- alloc(v, h).
vpt(t, h) :- move(t, f), vpt(f, h).
hpt(b, fld, g) :- store(base, fld, from), vpt(base, b), vpt(from, g).
vpt(t, g) :- load(t, base, fld), vpt(base, b), hpt(b, fld, g).

aliased(a, b) :- vpt(a, h), vpt(b, h), a < b.
`

type doopParams struct {
	name   string
	vars   int
	heaps  int
	moves  int
	stores int
	loads  int
	fields int
}

// DoopSuite generates synthetic Java-like heaps. The workloads share one
// generator with nearby sizes and different seeds — mirroring the paper's
// observation that the DaCapo programs behave alike because the Java
// standard library dominates.
func DoopSuite(scale Scale) []*Workload {
	mult := map[Scale]float64{Small: 0.4, Medium: 1, Large: 1.8}[scale]
	params := []doopParams{
		{name: "antlr", vars: 800, heaps: 190, moves: 1300, stores: 260, loads: 310, fields: 12},
		{name: "bloat", vars: 900, heaps: 220, moves: 1500, stores: 290, loads: 350, fields: 12},
		{name: "chart", vars: 850, heaps: 200, moves: 1400, stores: 270, loads: 330, fields: 12},
		{name: "fop", vars: 750, heaps: 175, moves: 1200, stores: 245, loads: 290, fields: 12},
		{name: "luindex", vars: 820, heaps: 195, moves: 1350, stores: 265, loads: 320, fields: 12},
	}
	var out []*Workload
	for i, p := range params {
		p.vars = int(float64(p.vars) * mult)
		p.heaps = int(float64(p.heaps) * mult)
		p.moves = int(float64(p.moves) * mult)
		p.stores = int(float64(p.stores) * mult)
		p.loads = int(float64(p.loads) * mult)
		out = append(out, genDoop(p, int64(300+i)))
	}
	return out
}

func genDoop(p doopParams, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	facts := map[string][]tuple.Tuple{}
	// Every heap object is allocated into some variable; a shared
	// "library" prefix of variables is reused heavily by moves, giving the
	// common-substrate behavior of real Java programs.
	for h := 0; h < p.heaps; h++ {
		facts["alloc"] = append(facts["alloc"], tuple.Tuple{num(rng.Intn(p.vars)), num(h)})
	}
	libVars := p.vars / 5
	pickVar := func() int {
		if rng.Intn(3) == 0 {
			return rng.Intn(libVars)
		}
		return rng.Intn(p.vars)
	}
	for i := 0; i < p.moves; i++ {
		facts["move"] = append(facts["move"], tuple.Tuple{num(pickVar()), num(pickVar())})
	}
	for i := 0; i < p.stores; i++ {
		facts["store"] = append(facts["store"],
			tuple.Tuple{num(pickVar()), num(rng.Intn(p.fields)), num(pickVar())})
	}
	for i := 0; i < p.loads; i++ {
		facts["load"] = append(facts["load"],
			tuple.Tuple{num(pickVar()), num(pickVar()), num(rng.Intn(p.fields))})
	}
	return &Workload{Suite: "DOOP", Name: p.name, Src: doopProgram, Facts: facts}
}
