package bench

import (
	"io"
	"testing"

	"sti/internal/interp"
)

func TestResidentSmoke(t *testing.T) {
	rows, err := Resident(Small, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Variant != "apply" || rows[1].Variant != "rerun" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Tuples == 0 || rows[0].Tuples != rows[1].Tuples {
		t.Fatalf("tuple counts diverge: %+v", rows)
	}
	if rows[0].Ratio <= 0 {
		t.Fatalf("apply row missing ratio: %+v", rows[0])
	}
}

func residentEngine(b *testing.B, shape residentShape) *interp.Engine {
	b.Helper()
	wl := &Workload{
		Suite: "Resident",
		Name:  "bench",
		Src:   residentSrc,
		Facts: map[string][]tupleT{"edge": shape.baseEdges()},
	}
	rp, st, err := wl.Compile()
	if err != nil {
		b.Fatal(err)
	}
	eng := interp.New(rp, st, interp.DefaultConfig())
	if err := eng.Run(wl.NewIO()); err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkResidentApply measures one incremental batch absorption
// (InsertFacts + EvalUpdate, the path behind Database.Apply) against a
// resident engine holding the medium component-chain base (≈10k edges).
// Compare with BenchmarkResidentRerun, which pays a full from-scratch
// evaluation for the same fact set.
func BenchmarkResidentApply(b *testing.B) {
	shape := residentShapeAt(Medium)
	eng := residentEngine(b, shape)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.InsertFacts("edge", shape.batchEdges(i)); err != nil {
			b.Fatal(err)
		}
		if err := eng.EvalUpdate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResidentRerun is the from-scratch baseline for
// BenchmarkResidentApply: the same base plus one batch, evaluated with a
// fresh engine per iteration.
func BenchmarkResidentRerun(b *testing.B) {
	shape := residentShapeAt(Medium)
	wl := &Workload{
		Suite: "Resident",
		Name:  "bench",
		Src:   residentSrc,
		Facts: map[string][]tupleT{"edge": append(shape.baseEdges(), shape.batchEdges(0)...)},
	}
	rp, st, err := wl.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := interp.New(rp, st, interp.DefaultConfig())
		if err := eng.Run(wl.NewIO()); err != nil {
			b.Fatal(err)
		}
	}
}
