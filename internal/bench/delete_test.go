package bench

import (
	"io"
	"testing"
)

func TestDeleteSmoke(t *testing.T) {
	rows, err := Delete(Small, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(deleteMixes) {
		t.Fatalf("rows = %+v", rows)
	}
	for i := 0; i < len(rows); i += 2 {
		apply, rerun := rows[i], rows[i+1]
		if apply.Variant != "apply" || rerun.Variant != "rerun" || apply.Mix != rerun.Mix {
			t.Fatalf("row pair %d malformed: %+v %+v", i, apply, rerun)
		}
		if apply.Tuples == 0 || apply.Tuples != rerun.Tuples {
			t.Fatalf("mix %s tuple counts diverge: %+v %+v", apply.Mix, apply, rerun)
		}
		if apply.Ratio <= 0 {
			t.Fatalf("apply row missing ratio: %+v", apply)
		}
	}
	// More retractions shrink the final closure: the 10% mix must end
	// smaller than the pure-insert stream.
	if rows[0].Tuples <= rows[4].Tuples {
		t.Fatalf("retractions did not shrink the closure: mix0=%d mix10=%d", rows[0].Tuples, rows[4].Tuples)
	}
}

// BenchmarkDeleteApply measures one incremental delete batch (DeleteFacts +
// EvalDelete, the path behind Database.Apply for batches with retractions)
// against a resident engine holding the medium component-chain base (≈10k
// edges). Each iteration retracts one base-chain tail edge of a distinct
// component. Compare with BenchmarkResidentRerun, which pays a full
// from-scratch evaluation.
func BenchmarkDeleteApply(b *testing.B) {
	shape := residentShapeAt(Medium)
	eng := residentEngine(b, shape)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i % shape.components
		tail := c*residentStride + shape.chainLen - 2
		dels := []tupleT{{num(tail), num(tail + 1)}}
		if _, err := eng.DeleteFacts("edge", dels); err != nil {
			b.Fatal(err)
		}
		if err := eng.EvalDelete(); err != nil {
			b.Fatal(err)
		}
	}
}
