package obsv

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of log-spaced latency buckets. Bucket b counts
// durations d with bits.Len64(d in ns) == b, i.e. d in [2^(b-1), 2^b) ns;
// the last bucket absorbs everything longer. With 36 buckets the top finite
// bound is 2^35 ns ≈ 34 s, far beyond any request this engine serves.
const NumBuckets = 36

// Histogram is a zero-dependency log-bucketed latency histogram. All fields
// are atomic so concurrent readers (Query goroutines) can record without a
// lock, and a scrape can snapshot mid-traffic. Observing allocates nothing
// and costs exactly two atomic adds; the total count is derived from the
// buckets at snapshot time instead of being maintained as a third counter.
type Histogram struct {
	sumNs   atomic.Int64
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	b := bits.Len64(ns) // 0 for 0ns, else floor(log2)+1
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketBoundNs returns the inclusive upper bound of bucket b in
// nanoseconds (the Prometheus "le" value). The last bucket is unbounded
// and reports a negative sentinel; callers render it as +Inf.
func BucketBoundNs(b int) int64 {
	if b >= NumBuckets-1 {
		return -1
	}
	return int64(uint64(1)<<uint(b)) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.sumNs.Add(d.Nanoseconds())
	h.buckets[bucketOf(d)].Add(1)
}

// Count reports the number of observations (summed over the buckets).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// HistBucket is one non-empty bucket in a snapshot: the count of
// observations at or below LeNs nanoseconds that fell in this bucket
// (non-cumulative). LeNs < 0 marks the unbounded last bucket.
type HistBucket struct {
	LeNs  int64  `json:"le_ns"`
	Count uint64 `json:"count"`
}

// HistView is the JSON-friendly snapshot of one histogram: totals, bucket
// counts, and bucket-resolution quantile estimates (the reported quantile
// is the upper bound of the bucket containing it, so it overestimates by at
// most 2×).
type HistView struct {
	Count   uint64       `json:"count"`
	SumNs   int64        `json:"sum_ns"`
	P50Ns   int64        `json:"p50_ns,omitempty"`
	P99Ns   int64        `json:"p99_ns,omitempty"`
	MeanNs  int64        `json:"mean_ns,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// snapshot copies the atomic counters into a plain array. The copy is not a
// single atomic cut, but each counter is monotone so the view is at worst a
// few observations torn — fine for telemetry.
func (h *Histogram) snapshot() (count uint64, sumNs int64, buckets [NumBuckets]uint64) {
	sumNs = h.sumNs.Load()
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	return
}

// View snapshots the histogram.
func (h *Histogram) View() HistView {
	count, sumNs, buckets := h.snapshot()
	v := HistView{Count: count, SumNs: sumNs}
	if count == 0 {
		return v
	}
	v.MeanNs = sumNs / int64(count)
	v.P50Ns = quantile(buckets[:], count, 0.50)
	v.P99Ns = quantile(buckets[:], count, 0.99)
	for b, n := range buckets {
		if n > 0 {
			v.Buckets = append(v.Buckets, HistBucket{LeNs: BucketBoundNs(b), Count: n})
		}
	}
	return v
}

// quantile returns the upper bound of the bucket holding quantile q.
func quantile(buckets []uint64, count uint64, q float64) int64 {
	rank := uint64(q * float64(count))
	if rank >= count {
		rank = count - 1
	}
	var seen uint64
	for b, n := range buckets {
		seen += n
		if seen > rank {
			if le := BucketBoundNs(b); le >= 0 {
				return le
			}
			// Unbounded last bucket: report the start of its range.
			return int64(uint64(1) << uint(NumBuckets-2))
		}
	}
	return 0
}
