package obsv

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// All Observer methods must be inert on a nil receiver: the disabled path is
// a nil check and nothing else.
func TestNilObserverInert(t *testing.T) {
	var o *Observer
	r := o.Start(OpQuery, "edge")
	if r.Active() {
		t.Fatal("nil observer produced an active request")
	}
	if d := r.Finish(OutOK, nil); d != 0 {
		t.Fatalf("inert finish measured %v", d)
	}
	if id := r.ID(); id != "" {
		t.Fatalf("inert request has ID %q", id)
	}
	if o.NextID() != "" {
		t.Fatal("nil observer minted an ID")
	}
	o.CountHTTP("/query", 200)
	o.Register(KindGauge, "x", "h", func() float64 { return 1 })
	if o.Stats() != nil {
		t.Fatal("nil observer produced stats")
	}
	if err := o.WriteMetrics(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if o.Logger() != nil || o.SlowThreshold() != 0 {
		t.Fatal("nil observer has configuration")
	}
}

// The disabled and enabled fast paths must not allocate: Start/Finish are
// value plumbing over atomics.
func TestStartFinishZeroAlloc(t *testing.T) {
	var nilObs *Observer
	if n := testing.AllocsPerRun(200, func() {
		r := nilObs.Start(OpQuery, "edge")
		r.Finish(OutOK, nil)
	}); n != 0 {
		t.Fatalf("disabled Start/Finish allocates %.1f per op", n)
	}
	o := New(Config{}) // enabled, no logger, no slow threshold
	if n := testing.AllocsPerRun(200, func() {
		r := o.Start(OpApply, "")
		r.Finish(OutIncremental, nil)
	}); n != 0 {
		t.Fatalf("enabled Start/Finish allocates %.1f per op", n)
	}
	// Even with a slow threshold configured, requests under it stay
	// allocation-free — attribute building happens after the check.
	o2 := New(Config{SlowRequest: time.Hour, Logger: slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))})
	if n := testing.AllocsPerRun(200, func() {
		r := o2.Start(OpQuery, "edge")
		r.Finish(OutMiss, nil)
	}); n != 0 {
		t.Fatalf("fast requests under a slow threshold allocate %.1f per op", n)
	}
}

func TestRequestIDsUnique(t *testing.T) {
	o := New(Config{})
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		r := o.Start(OpQuery, "")
		id := r.ID()
		if seen[id] {
			t.Fatalf("duplicate request ID %s", id)
		}
		seen[id] = true
		r.Finish(OutOK, nil)
	}
	if id := o.NextID(); seen[id] {
		t.Fatalf("NextID reused %s", id)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{0, time.Nanosecond, 100 * time.Nanosecond,
		time.Microsecond, time.Millisecond, time.Second, 2 * time.Minute} {
		h.Observe(d)
	}
	v := h.View()
	if v.Count != 7 {
		t.Fatalf("count = %d", v.Count)
	}
	var total uint64
	last := int64(-2)
	for _, b := range v.Buckets {
		total += b.Count
		if b.LeNs >= 0 && b.LeNs <= last {
			t.Fatalf("bucket bounds not increasing: %v", v.Buckets)
		}
		last = b.LeNs
	}
	if total != v.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, v.Count)
	}
	// 2 minutes lands past every finite bound: the last bucket is unbounded.
	if v.Buckets[len(v.Buckets)-1].LeNs != -1 {
		t.Fatalf("missing unbounded bucket: %v", v.Buckets)
	}
	if v.P50Ns <= 0 || v.P99Ns < v.P50Ns {
		t.Fatalf("quantiles p50=%d p99=%d", v.P50Ns, v.P99Ns)
	}
}

// A slow request emits exactly one structured record carrying the request
// ID, operation, duration, and the profiler's engine attributes.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	o := New(Config{
		Logger:      slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowRequest: time.Nanosecond,
	})
	r := o.Start(OpApply, "")
	time.Sleep(50 * time.Microsecond)
	r.Finish(OutFallback, profiler{})

	dec := json.NewDecoder(&buf)
	var rec map[string]any
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("slow log is not one JSON record: %v (buf %q)", err, buf.String())
	}
	if rec["msg"] != "slow request" || rec["level"] != "WARN" {
		t.Fatalf("record = %v", rec)
	}
	if rec["request"] != r.ID() {
		t.Fatalf("record carries request %v, want %s", rec["request"], r.ID())
	}
	if rec["op"] != "apply" || rec["outcome"] != "fallback" {
		t.Fatalf("record = %v", rec)
	}
	eng, ok := rec["engine"].(map[string]any)
	if !ok || eng["epoch"] != float64(7) {
		t.Fatalf("engine profile missing from record: %v", rec)
	}
	if dec.More() {
		t.Fatal("slow request emitted more than one record")
	}
	if o.Stats().Slow != 1 {
		t.Fatalf("slow counter = %d", o.Stats().Slow)
	}
}

type profiler struct{}

func (profiler) SlowAttrs() []slog.Attr {
	return []slog.Attr{slog.Uint64("epoch", 7), slog.Int("relations", 3)}
}

// Concurrent recording from many goroutines must be race-free (run under
// -race) and lose no observations.
func TestConcurrentObserve(t *testing.T) {
	o := New(Config{})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := o.Start(OpQuery, "edge")
				r.Finish(OutOK, nil)
				o.CountHTTP("/query", 200)
			}
		}()
	}
	wg.Wait()
	s := o.Stats()
	if len(s.Series) != 1 || s.Series[0].Count != workers*perWorker {
		t.Fatalf("stats = %+v", s)
	}
	if s.InFlight != 0 {
		t.Fatalf("in-flight = %d after all requests finished", s.InFlight)
	}
	if got := o.httpCounts(); len(got) != 1 || got[0].n != workers*perWorker {
		t.Fatalf("http counts = %+v", got)
	}
}

func TestStatsSnapshotJSON(t *testing.T) {
	o := New(Config{})
	o.Start(OpQuery, "e").Finish(OutOK, nil)
	o.Start(OpApply, "").Finish(OutIncremental, nil)
	enc, err := json.Marshal(o.Stats())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"op":"query"`, `"outcome":"incremental"`, `"count":1`, `"buckets"`} {
		if !strings.Contains(string(enc), want) {
			t.Fatalf("snapshot JSON missing %s: %s", want, enc)
		}
	}
}
