// Package obsv is the request-scoped observability layer of the resident
// engine: every public database operation (Apply, Query, Scan) is wrapped in
// a request carrying a unique ID, its latency lands in a log-bucketed
// histogram partitioned by operation and outcome, and requests crossing a
// configurable threshold emit one structured slog record with the request's
// identity and the engine profile at that moment.
//
// The layer follows the same discipline as internal/metrics: everything is
// opt-in, all methods are safe on a nil *Observer and do nothing, and the
// disabled path adds zero allocations to the hot operations (a nil check and
// nothing else — guaranteed by AllocsPerRun tests). The enabled fast path is
// allocation-free too: requests are value types, histograms are fixed atomic
// arrays, and slow-log attributes are built only after the threshold check
// fails.
//
// Exposure happens three ways, all fed from the same counters:
//
//   - WriteMetrics renders the Prometheus text exposition format (prom.go):
//     request counters, latency histogram series, fallback/slow counters,
//     runtime-sampler gauges, and externally registered gauges.
//   - Stats snapshots the histograms into a JSON-friendly form that
//     sti.DBStats embeds, keeping the expvar sti.db blob truthful.
//   - The slow-request log and per-request debug records go to the
//     configured *slog.Logger.
package obsv

import (
	"context"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Op is the instrumented database operation.
type Op uint8

// Instrumented operations.
const (
	OpQuery Op = iota
	OpApply
	OpScan
	numOps
)

func (o Op) String() string {
	switch o {
	case OpQuery:
		return "query"
	case OpApply:
		return "apply"
	case OpScan:
		return "scan"
	}
	return "unknown"
}

// Outcome classifies how an instrumented operation ended.
type Outcome uint8

// Request outcomes. Queries distinguish hits from misses; applies
// distinguish the incremental paths from the recompute fallback.
const (
	OutOK                Outcome = iota // operation succeeded (query: ≥1 row)
	OutMiss                             // query succeeded with zero rows
	OutError                            // operation failed
	OutIncremental                      // apply absorbed through the update program
	OutIncrementalDelete                // apply absorbed through update + delete programs
	OutFallback                         // apply recomputed from scratch
	numOutcomes
)

func (o Outcome) String() string {
	switch o {
	case OutOK:
		return "ok"
	case OutMiss:
		return "miss"
	case OutError:
		return "error"
	case OutIncremental:
		return "incremental"
	case OutIncrementalDelete:
		return "incremental_delete"
	case OutFallback:
		return "fallback"
	}
	return "unknown"
}

// SlowProfiler supplies the engine profile attached to a slow-request log
// record. It is only invoked after the threshold check fails, so building
// the attributes costs nothing on the fast path. sti.Database implements it.
type SlowProfiler interface {
	SlowAttrs() []slog.Attr
}

// Config parameterizes an Observer.
type Config struct {
	// Logger receives the slow-request records (and is handed to callers for
	// their own structured logging). nil disables logging but keeps all
	// counters live.
	Logger *slog.Logger
	// SlowRequest is the latency threshold beyond which a request emits one
	// structured log record with the engine profile. <= 0 disables the slow
	// log.
	SlowRequest time.Duration
}

// Observer is the per-database observability hub. A nil *Observer disables
// everything: all methods are nil-safe no-ops.
type Observer struct {
	logger *slog.Logger
	slowNs int64
	start  time.Time

	seq      atomic.Uint64
	inflight atomic.Int64
	slow     atomic.Uint64

	hist [numOps][numOutcomes]Histogram

	// mu guards the open-ended label maps (HTTP traffic by handler/code).
	// These are off the engine's hot path — one short critical section per
	// HTTP request.
	mu   sync.Mutex
	http map[httpKey]uint64

	// ext holds externally registered scrape-time metrics (epoch, relation
	// sizes, fallback-reason counts). Registration happens at Open time;
	// the slice is immutable afterwards, so scrapes read it without mu.
	ext []extMetric
}

type httpKey struct {
	handler string
	code    int
}

// New creates an observer.
func New(cfg Config) *Observer {
	return &Observer{
		logger: cfg.Logger,
		slowNs: cfg.SlowRequest.Nanoseconds(),
		start:  time.Now(),
	}
}

// Logger returns the configured structured logger (nil when none).
func (o *Observer) Logger() *slog.Logger {
	if o == nil {
		return nil
	}
	return o.logger
}

// SlowThreshold returns the slow-request threshold (0 when disabled).
func (o *Observer) SlowThreshold() time.Duration {
	if o == nil {
		return 0
	}
	return time.Duration(o.slowNs)
}

// Req is one in-flight instrumented request. It is a value type: starting
// and finishing a request allocates nothing. The zero Req (from a nil
// Observer) is inert.
type Req struct {
	o      *Observer
	id     uint64
	op     Op
	detail string
	t0     time.Time
}

// Start opens a request of the given operation. detail names the specific
// target (the relation for queries/scans, empty for applies); it rides into
// the slow log without allocating.
func (o *Observer) Start(op Op, detail string) Req {
	if o == nil {
		return Req{}
	}
	o.inflight.Add(1)
	return Req{o: o, id: o.seq.Add(1), op: op, detail: detail, t0: time.Now()}
}

// NextID mints a request ID without opening a tracked request — the HTTP
// layer uses it to tag requests that fan out into several database calls.
func (o *Observer) NextID() string {
	if o == nil {
		return ""
	}
	return "r" + strconv.FormatUint(o.seq.Add(1), 10)
}

// ID renders the request's identity ("" for an inert request). It allocates,
// so hot paths only call it when tracing or logging actually needs the
// string.
func (r Req) ID() string {
	if r.o == nil {
		return ""
	}
	return "r" + strconv.FormatUint(r.id, 10)
}

// Active reports whether the request belongs to a live observer.
func (r Req) Active() bool { return r.o != nil }

// Finish closes the request: the latency lands in the (op, outcome)
// histogram, and if it crossed the slow threshold one structured record is
// emitted with the request identity plus the profiler's engine attributes.
// It returns the measured duration (0 for inert requests).
func (r Req) Finish(out Outcome, prof SlowProfiler) time.Duration {
	o := r.o
	if o == nil {
		return 0
	}
	d := time.Since(r.t0)
	o.inflight.Add(-1)
	if out >= numOutcomes {
		out = OutError
	}
	o.hist[r.op][out].Observe(d)
	if o.slowNs > 0 && d.Nanoseconds() >= o.slowNs {
		o.slow.Add(1)
		if o.logger != nil {
			attrs := []slog.Attr{
				slog.String("request", r.ID()),
				slog.String("op", r.op.String()),
				slog.String("outcome", out.String()),
				slog.Duration("duration", d),
			}
			if r.detail != "" {
				attrs = append(attrs, slog.String("detail", r.detail))
			}
			if prof != nil {
				attrs = append(attrs, slog.Group("engine", attrsToAny(prof.SlowAttrs())...))
			}
			o.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow request", attrs...)
		}
	}
	return d
}

func attrsToAny(attrs []slog.Attr) []any {
	out := make([]any, len(attrs))
	for i, a := range attrs {
		out[i] = a
	}
	return out
}

// CountHTTP records one served HTTP request by handler pattern and status
// code, for the sti_http_requests_total exposition series.
func (o *Observer) CountHTTP(handler string, code int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.http == nil {
		o.http = map[httpKey]uint64{}
	}
	o.http[httpKey{handler, code}]++
	o.mu.Unlock()
}

// --- registered scrape-time metrics ---

// MetricKind distinguishes Prometheus counters from gauges in registered
// metrics.
type MetricKind uint8

// Registered metric kinds.
const (
	KindGauge MetricKind = iota
	KindCounter
)

type extMetric struct {
	kind  MetricKind
	name  string
	help  string
	label string                    // label name for vector metrics, "" for scalars
	value func() float64            // scalar source
	vec   func() map[string]float64 // vector source, keyed by label value
}

// Register adds a scalar metric evaluated at scrape time. Must be called
// before the observer is shared across goroutines (i.e. during Open).
func (o *Observer) Register(kind MetricKind, name, help string, value func() float64) {
	if o == nil {
		return
	}
	o.ext = append(o.ext, extMetric{kind: kind, name: name, help: help, value: value})
}

// RegisterVec adds a labeled metric family evaluated at scrape time; the
// source returns one sample per label value. Must be called during Open.
func (o *Observer) RegisterVec(kind MetricKind, name, help, label string, vec func() map[string]float64) {
	if o == nil {
		return
	}
	o.ext = append(o.ext, extMetric{kind: kind, name: name, help: help, label: label, vec: vec})
}

// --- snapshots ---

// SeriesSnap is one (operation, outcome) latency series in a snapshot.
type SeriesSnap struct {
	Op      string `json:"op"`
	Outcome string `json:"outcome"`
	HistView
}

// Snapshot is the JSON-friendly view of the request-level counters,
// embedded into sti.DBStats so the expvar blob carries the same truth as
// the Prometheus endpoint.
type Snapshot struct {
	Series   []SeriesSnap `json:"series,omitempty"`
	Slow     uint64       `json:"slow_requests,omitempty"`
	InFlight int64        `json:"in_flight,omitempty"`
}

// Stats snapshots every non-empty latency series (nil on a nil observer, so
// the field marshals away).
func (o *Observer) Stats() *Snapshot {
	if o == nil {
		return nil
	}
	s := &Snapshot{Slow: o.slow.Load(), InFlight: o.inflight.Load()}
	for op := Op(0); op < numOps; op++ {
		for out := Outcome(0); out < numOutcomes; out++ {
			v := o.hist[op][out].View()
			if v.Count == 0 {
				continue
			}
			s.Series = append(s.Series, SeriesSnap{Op: op.String(), Outcome: out.String(), HistView: v})
		}
	}
	return s
}

// httpCounts returns the HTTP traffic counters in deterministic order.
func (o *Observer) httpCounts() []httpCount {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]httpCount, 0, len(o.http))
	for k, n := range o.http {
		out = append(out, httpCount{k.handler, k.code, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].handler != out[j].handler {
			return out[i].handler < out[j].handler
		}
		return out[i].code < out[j].code
	})
	return out
}

type httpCount struct {
	handler string
	code    int
	n       uint64
}
