package obsv

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"sti/internal/obsv/promtest"
)

// validateExposition runs the shared strict checker (promtest.Validate) and
// fails the test on any malformation, returning the parsed sample names.
func validateExposition(t *testing.T, text string) map[string]bool {
	t.Helper()
	series, err := promtest.Validate(text)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	return series
}

func TestWriteMetricsValidExposition(t *testing.T) {
	o := New(Config{})
	for i := 0; i < 50; i++ {
		r := o.Start(OpQuery, "edge")
		r.Finish(OutOK, nil)
	}
	o.Start(OpApply, "").Finish(OutIncremental, nil)
	o.Start(OpApply, "").Finish(OutFallback, nil)
	o.Start(OpScan, "path").Finish(OutError, nil)
	o.CountHTTP("/query", 200)
	o.CountHTTP("/apply", 400)
	o.Register(KindGauge, "sti_db_epoch", "Epoch.", func() float64 { return 3 })
	o.RegisterVec(KindGauge, "sti_relation_tuples", "Sizes.", "rel", func() map[string]float64 {
		return map[string]float64{"edge": 2, "path": 3}
	})
	o.RegisterVec(KindCounter, "sti_apply_fallbacks_total", "Fallbacks.", "reason", func() map[string]float64 {
		return map[string]float64{`needs "quoting"` + "\nand newlines\\": 1}
	})

	var buf bytes.Buffer
	if err := o.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	series := validateExposition(t, buf.String())
	for _, want := range []string{
		"sti_requests_total", "sti_request_duration_seconds_bucket",
		"sti_request_duration_seconds_sum", "sti_request_duration_seconds_count",
		"sti_slow_requests_total", "sti_requests_in_flight", "sti_http_requests_total",
		"sti_db_epoch", "sti_relation_tuples", "sti_apply_fallbacks_total",
		"sti_goroutines", "sti_heap_alloc_bytes", "sti_gc_cycles_total",
		"sti_gc_pause_seconds_total", "sti_uptime_seconds",
	} {
		if !series[want] {
			t.Fatalf("exposition missing series %s:\n%s", want, buf.String())
		}
	}
	// Outcome labels must be present on the request counters.
	text := buf.String()
	for _, want := range []string{
		`sti_requests_total{op="query",outcome="ok"} 50`,
		`sti_requests_total{op="apply",outcome="incremental"} 1`,
		`sti_requests_total{op="apply",outcome="fallback"} 1`,
		`sti_requests_total{op="scan",outcome="error"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %s:\n%s", want, text)
		}
	}
	// Escaped label values survive round-tripping.
	if !strings.Contains(text, `reason="needs \"quoting\"\nand newlines\\"`) {
		t.Fatalf("label escaping broken:\n%s", text)
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	o := New(Config{})
	durations := []time.Duration{time.Microsecond, 10 * time.Microsecond,
		100 * time.Microsecond, time.Millisecond, time.Millisecond, 10 * time.Millisecond}
	for _, d := range durations {
		h := &o.hist[OpQuery][OutOK]
		h.sumNs.Add(d.Nanoseconds())
		h.buckets[bucketOf(d)].Add(1)
	}
	var buf bytes.Buffer
	if err := o.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	validateExposition(t, buf.String())
	want := fmt.Sprintf(`sti_request_duration_seconds_count{op="query",outcome="ok"} %d`, len(durations))
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("missing %s:\n%s", want, buf.String())
	}
}
