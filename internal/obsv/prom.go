package obsv

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteMetrics renders the observer's counters in the Prometheus text
// exposition format (version 0.0.4): request counters and latency
// histograms labeled by operation and outcome, slow/in-flight/HTTP
// counters, runtime-sampler gauges (goroutines, heap, GC), and every
// metric registered at Open time (epoch, per-relation sizes,
// fallback-reason counts). A nil observer writes nothing.
//
// The format is hand-rolled on purpose: the repo is dependency-free, and
// the subset we need — HELP/TYPE comments, label escaping, histogram
// _bucket/_sum/_count series with cumulative le bounds — is small. The
// exposition-format validity test in prom_test.go keeps it honest.
func (o *Observer) WriteMetrics(w io.Writer) error {
	if o == nil {
		return nil
	}
	b := &strings.Builder{}

	// Request counters and latency histograms per (op, outcome).
	writeHeader(b, "sti_requests_total", "counter", "Database requests by operation and outcome.")
	for op := Op(0); op < numOps; op++ {
		for out := Outcome(0); out < numOutcomes; out++ {
			h := &o.hist[op][out]
			count := h.Count()
			if count == 0 {
				continue
			}
			fmt.Fprintf(b, "sti_requests_total{op=%q,outcome=%q} %d\n", op, out, count)
		}
	}
	writeHeader(b, "sti_request_duration_seconds", "histogram", "Database request latency by operation and outcome.")
	for op := Op(0); op < numOps; op++ {
		for out := Outcome(0); out < numOutcomes; out++ {
			writeHistogram(b, "sti_request_duration_seconds",
				fmt.Sprintf("op=%q,outcome=%q", op, out), &o.hist[op][out])
		}
	}

	writeHeader(b, "sti_slow_requests_total", "counter", "Requests that crossed the slow-request threshold.")
	fmt.Fprintf(b, "sti_slow_requests_total %d\n", o.slow.Load())
	writeHeader(b, "sti_requests_in_flight", "gauge", "Instrumented requests currently executing.")
	fmt.Fprintf(b, "sti_requests_in_flight %d\n", o.inflight.Load())

	if http := o.httpCounts(); len(http) > 0 {
		writeHeader(b, "sti_http_requests_total", "counter", "HTTP requests served, by handler and status code.")
		for _, c := range http {
			fmt.Fprintf(b, "sti_http_requests_total{handler=%s,code=\"%d\"} %d\n",
				quoteLabel(c.handler), c.code, c.n)
		}
	}

	// Registered scrape-time metrics (engine epoch, relation sizes,
	// fallback reasons — wired by sti.Open).
	for _, m := range o.ext {
		kind := "gauge"
		if m.kind == KindCounter {
			kind = "counter"
		}
		writeHeader(b, m.name, kind, m.help)
		if m.value != nil {
			fmt.Fprintf(b, "%s %s\n", m.name, formatFloat(m.value()))
		}
		if m.vec != nil {
			samples := m.vec()
			keys := make([]string, 0, len(samples))
			for k := range samples {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(b, "%s{%s=%s} %s\n", m.name, m.label, quoteLabel(k), formatFloat(samples[k]))
			}
		}
	}

	// Runtime sampler: process-level gauges read at scrape time.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeHeader(b, "sti_goroutines", "gauge", "Number of live goroutines.")
	fmt.Fprintf(b, "sti_goroutines %d\n", runtime.NumGoroutine())
	writeHeader(b, "sti_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	fmt.Fprintf(b, "sti_heap_alloc_bytes %d\n", ms.HeapAlloc)
	writeHeader(b, "sti_heap_objects", "gauge", "Number of allocated heap objects.")
	fmt.Fprintf(b, "sti_heap_objects %d\n", ms.HeapObjects)
	writeHeader(b, "sti_gc_cycles_total", "counter", "Completed GC cycles.")
	fmt.Fprintf(b, "sti_gc_cycles_total %d\n", ms.NumGC)
	writeHeader(b, "sti_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	fmt.Fprintf(b, "sti_gc_pause_seconds_total %s\n", formatFloat(float64(ms.PauseTotalNs)/1e9))
	writeHeader(b, "sti_uptime_seconds", "gauge", "Seconds since the observer was created.")
	fmt.Fprintf(b, "sti_uptime_seconds %s\n", formatFloat(time.Since(o.start).Seconds()))

	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeHistogram renders one histogram as cumulative _bucket series plus
// _sum and _count, with le bounds in seconds. Empty histograms are skipped
// entirely so idle (op, outcome) pairs do not pollute the exposition.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	count, sumNs, buckets := h.snapshot()
	if count == 0 {
		return
	}
	var cum uint64
	for i, n := range buckets {
		cum += n
		if n == 0 && i < NumBuckets-1 {
			// Only emit buckets that change the cumulative count, plus the
			// mandatory +Inf bound; scrapes stay compact.
			continue
		}
		le := "+Inf"
		if bound := BucketBoundNs(i); bound >= 0 {
			le = formatFloat(float64(bound+1) / 1e9)
		}
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
	}
	fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, formatFloat(float64(sumNs)/1e9))
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, count)
}

// quoteLabel escapes a label value per the exposition format: backslash,
// double-quote, and newline are escaped inside double quotes.
func quoteLabel(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, integers without an exponent.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
