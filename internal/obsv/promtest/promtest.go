// Package promtest validates the subset of the Prometheus text exposition
// format (version 0.0.4) that internal/obsv emits. It lives outside the
// _test.go files so both the obsv unit tests and the sti serve HTTP tests
// can scrape an endpoint and assert the payload is well-formed.
package promtest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Validate checks an exposition payload: every sample line parses, every
// metric name has a preceding TYPE, histogram bucket series are cumulative
// with a final +Inf bucket equal to _count, metric names stay within the
// legal charset, and counters never carry a negative value. It returns the
// set of sample names seen so callers can assert presence.
func Validate(text string) (map[string]bool, error) {
	types := map[string]string{}
	series := map[string]bool{}
	type histState struct {
		lastCum  float64
		infSeen  bool
		infValue float64
		count    float64
		hasCount bool
	}
	hists := map[string]*histState{} // keyed by name + labels (minus le)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unknown comment %q", ln+1, line)
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		series[name] = true
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if bt := strings.TrimSuffix(name, suffix); types[bt] == "histogram" {
					base = bt
				}
			}
		}
		if types[base] == "" {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", ln+1, name)
		}
		if types[base] == "counter" && value < 0 {
			return nil, fmt.Errorf("line %d: counter %s is negative: %v", ln+1, name, value)
		}
		if types[base] == "histogram" {
			le, rest := splitLe(labels)
			key := base + "{" + rest + "}"
			st := hists[key]
			if st == nil {
				st = &histState{}
				hists[key] = st
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if value < st.lastCum {
					return nil, fmt.Errorf("line %d: histogram %s buckets not cumulative (%v after %v)", ln+1, key, value, st.lastCum)
				}
				st.lastCum = value
				if le == "+Inf" {
					st.infSeen = true
					st.infValue = value
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					return nil, fmt.Errorf("line %d: bad le %q", ln+1, le)
				}
			case strings.HasSuffix(name, "_count"):
				st.count = value
				st.hasCount = true
			}
		}
	}
	for key, st := range hists {
		if !st.infSeen {
			return nil, fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if !st.hasCount || st.infValue != st.count {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, st.infValue, st.count)
		}
	}
	return series, nil
}

// parseSample parses `name{labels} value` (labels optional).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces: %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], line[j+1:]
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	for _, r := range name {
		if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return "", "", 0, fmt.Errorf("invalid metric name %q", name)
		}
	}
	return name, labels, v, nil
}

// splitLe pulls the le label out of a label string, returning the remaining
// labels sorted so series with reordered labels key identically.
func splitLe(labels string) (le, rest string) {
	var kept []string
	for _, part := range splitLabels(labels) {
		if strings.HasPrefix(part, "le=") {
			le = strings.Trim(strings.TrimPrefix(part, "le="), `"`)
			continue
		}
		kept = append(kept, part)
	}
	sort.Strings(kept)
	return le, strings.Join(kept, ",")
}

// splitLabels splits on commas outside quoted values.
func splitLabels(labels string) []string {
	var out []string
	var b strings.Builder
	quoted := false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case c == '\\' && quoted && i+1 < len(labels):
			b.WriteByte(c)
			i++
			b.WriteByte(labels[i])
		case c == '"':
			quoted = !quoted
			b.WriteByte(c)
		case c == ',' && !quoted:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}
