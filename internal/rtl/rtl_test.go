package rtl

import (
	"testing"

	"sti/internal/ram"
	"sti/internal/symtab"
	"sti/internal/value"
)

func catch(t *testing.T, fn func()) (err *Error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if err, ok = r.(*Error); !ok {
				t.Fatalf("panic value %T", r)
			}
		}
	}()
	fn()
	return nil
}

func TestNumberArith(t *testing.T) {
	n := value.FromInt
	tests := []struct {
		op   ram.IntrinsicOp
		a, b int32
		want int32
	}{
		{ram.OpAdd, 3, 4, 7},
		{ram.OpAdd, 1<<31 - 1, 1, -1 << 31}, // wraparound, like Soufflé
		{ram.OpSub, 3, 5, -2},
		{ram.OpMul, -3, 4, -12},
		{ram.OpDiv, 7, 2, 3},
		{ram.OpDiv, -7, 2, -3},
		{ram.OpMod, 7, 3, 1},
		{ram.OpPow, 2, 10, 1024},
		{ram.OpPow, 5, 0, 1},
		{ram.OpPow, 5, -1, 0},
		{ram.OpBAnd, 0b1100, 0b1010, 0b1000},
		{ram.OpBOr, 0b1100, 0b1010, 0b1110},
		{ram.OpBXor, 0b1100, 0b1010, 0b0110},
		{ram.OpBShl, 1, 4, 16},
		{ram.OpBShr, 16, 2, 4},
		{ram.OpLAnd, 2, 3, 1},
		{ram.OpLAnd, 2, 0, 0},
		{ram.OpLOr, 0, 0, 0},
		{ram.OpLOr, 0, 9, 1},
		{ram.OpMin, -5, 3, -5},
		{ram.OpMax, -5, 3, 3},
	}
	for _, tc := range tests {
		got := Arith(tc.op, value.Number, n(tc.a), n(tc.b))
		if value.AsInt(got) != tc.want {
			t.Errorf("%v(%d, %d) = %d, want %d", tc.op, tc.a, tc.b, value.AsInt(got), tc.want)
		}
	}
}

func TestUnsignedArith(t *testing.T) {
	if Arith(ram.OpSub, value.Unsigned, 1, 2) != ^value.Value(0) {
		t.Error("unsigned subtraction should wrap")
	}
	if Arith(ram.OpBShr, value.Unsigned, 1<<31, 31) != 1 {
		t.Error("unsigned shift right should be logical")
	}
	// Signed shift right preserves sign.
	if value.AsInt(Arith(ram.OpBShr, value.Number, value.FromInt(-8), value.FromInt(1))) != -4 {
		t.Error("signed shift right should be arithmetic")
	}
	if Arith(ram.OpMin, value.Unsigned, 1, ^value.Value(0)) != 1 {
		t.Error("unsigned min treats the bit pattern as unsigned")
	}
}

func TestFloatArith(t *testing.T) {
	f := value.FromFloat
	if value.AsFloat(Arith(ram.OpAdd, value.Float, f(1.5), f(2.25))) != 3.75 {
		t.Error("float add")
	}
	if value.AsFloat(Arith(ram.OpPow, value.Float, f(2), f(0.5))) != 1.4142135 {
		t.Error("float pow")
	}
	if err := catch(t, func() { Arith(ram.OpBAnd, value.Float, f(1), f(2)) }); err == nil {
		t.Error("band on float should fail")
	}
}

func TestDivisionErrors(t *testing.T) {
	for _, typ := range []value.Type{value.Number, value.Unsigned, value.Float} {
		if err := catch(t, func() { Arith(ram.OpDiv, typ, 1, 0) }); err == nil {
			t.Errorf("%v division by zero not reported", typ)
		}
	}
	if err := catch(t, func() { Arith(ram.OpMod, value.Number, 1, 0) }); err == nil {
		t.Error("modulo by zero not reported")
	}
}

func TestUnaryOps(t *testing.T) {
	if value.AsInt(Neg(value.Number, value.FromInt(5))) != -5 {
		t.Error("neg number")
	}
	if value.AsFloat(Neg(value.Float, value.FromFloat(2.5))) != -2.5 {
		t.Error("neg float")
	}
	if value.AsInt(BNot(value.Number, value.FromInt(0))) != -1 {
		t.Error("bnot")
	}
	if BNot(value.Unsigned, 0) != ^value.Value(0) {
		t.Error("bnot unsigned")
	}
	if LNot(0) != 1 || LNot(7) != 0 {
		t.Error("lnot")
	}
	if Bool(true) != 1 || Bool(false) != 0 {
		t.Error("bool")
	}
}

func TestCompare(t *testing.T) {
	n := value.FromInt
	if !Compare(ram.CmpLT, value.Number, n(-1), n(1)) {
		t.Error("-1 < 1 signed")
	}
	if Compare(ram.CmpLT, value.Unsigned, n(-1), n(1)) {
		t.Error("bits of -1 should exceed 1 unsigned")
	}
	if !Compare(ram.CmpEQ, value.Float, value.FromFloat(1.5), value.FromFloat(1.5)) {
		t.Error("float equality")
	}
	if !Compare(ram.CmpGE, value.Number, n(3), n(3)) || !Compare(ram.CmpLE, value.Number, n(3), n(3)) {
		t.Error("boundary comparisons")
	}
	if !Compare(ram.CmpNE, value.Number, n(3), n(4)) {
		t.Error("inequality")
	}
}

func TestStringFunctors(t *testing.T) {
	st := symtab.New()
	a := st.Intern("foo")
	b := st.Intern("bar")
	if st.Resolve(Cat(st, a, b)) != "foobar" {
		t.Error("cat")
	}
	if value.AsInt(Strlen(st, a)) != 3 {
		t.Error("strlen")
	}
	sub := Substr(st, st.Intern("hello"), value.FromInt(1), value.FromInt(3))
	if st.Resolve(sub) != "ell" {
		t.Error("substr")
	}
	// Clamped and out-of-range substrings.
	if st.Resolve(Substr(st, a, value.FromInt(1), value.FromInt(99))) != "oo" {
		t.Error("substr clamp")
	}
	if st.Resolve(Substr(st, a, value.FromInt(-1), value.FromInt(2))) != "" {
		t.Error("substr negative start")
	}
	if value.AsInt(ToNumber(st, st.Intern("-42"))) != -42 {
		t.Error("to_number")
	}
	if err := catch(t, func() { ToNumber(st, a) }); err == nil {
		t.Error("to_number on non-number should fail")
	}
	if st.Resolve(ToString(st, value.FromInt(-7))) != "-7" {
		t.Error("to_string")
	}
}

func TestAggAcc(t *testing.T) {
	var a AggAcc
	a.Init(ram.AggCount, value.Number)
	a.Step(0)
	a.Step(0)
	if v, ok := a.Finish(); !ok || value.AsInt(v) != 2 {
		t.Error("count")
	}
	a.Init(ram.AggSum, value.Number)
	if v, ok := a.Finish(); !ok || value.AsInt(v) != 0 {
		t.Error("empty sum should be 0")
	}
	a.Init(ram.AggMin, value.Number)
	if _, ok := a.Finish(); ok {
		t.Error("empty min should not produce a result")
	}
	a.Init(ram.AggMin, value.Number)
	a.Step(value.FromInt(-3))
	a.Step(value.FromInt(5))
	if v, ok := a.Finish(); !ok || value.AsInt(v) != -3 {
		t.Error("min")
	}
	a.Init(ram.AggMax, value.Float)
	a.Step(value.FromFloat(1.5))
	a.Step(value.FromFloat(-2.5))
	if v, ok := a.Finish(); !ok || value.AsFloat(v) != 1.5 {
		t.Error("float max")
	}
}

func TestErrorFormatting(t *testing.T) {
	err := catch(t, func() { Fail("bad %s", "thing") })
	if err == nil || err.Error() != "runtime error: bad thing" {
		t.Fatalf("err = %v", err)
	}
}
