// Package rtl is the shared runtime library of all three execution
// backends: the tree interpreter (internal/interp), the closure compiler
// (internal/compile), and programs emitted by the Go synthesizer
// (internal/codegen). It implements typed arithmetic over 32-bit words,
// typed comparisons, string functors over the symbol table, and aggregate
// accumulation.
package rtl

import (
	"fmt"
	"math"
	"strconv"

	"sti/internal/ram"
	"sti/internal/symtab"
	"sti/internal/value"
)

// Error is a Datalog evaluation error (division by zero, malformed
// to_number input). Backends panic with *Error and convert it to an
// ordinary error at their run boundary.
type Error struct {
	Msg string
}

func (e *Error) Error() string { return "runtime error: " + e.Msg }

// Fail panics with a formatted *Error.
func Fail(format string, args ...any) {
	panic(&Error{Msg: fmt.Sprintf(format, args...)})
}

// Compare evaluates a typed comparison.
func Compare(op ram.CmpOp, typ value.Type, l, r value.Value) bool {
	switch op {
	case ram.CmpEQ:
		return l == r
	case ram.CmpNE:
		return l != r
	}
	c := value.Compare(typ, l, r)
	switch op {
	case ram.CmpLT:
		return c < 0
	case ram.CmpLE:
		return c <= 0
	case ram.CmpGT:
		return c > 0
	default:
		return c >= 0
	}
}

// Arith applies a binary arithmetic/bitwise/logical operator under a typed
// interpretation of the operand words.
func Arith(op ram.IntrinsicOp, typ value.Type, a, b value.Value) value.Value {
	switch typ {
	case value.Float:
		x, y := value.AsFloat(a), value.AsFloat(b)
		switch op {
		case ram.OpAdd:
			return value.FromFloat(x + y)
		case ram.OpSub:
			return value.FromFloat(x - y)
		case ram.OpMul:
			return value.FromFloat(x * y)
		case ram.OpDiv:
			if y == 0 {
				Fail("float division by zero")
			}
			return value.FromFloat(x / y)
		case ram.OpPow:
			return value.FromFloat(float32(math.Pow(float64(x), float64(y))))
		case ram.OpMin:
			if y < x {
				return b
			}
			return a
		case ram.OpMax:
			if y > x {
				return b
			}
			return a
		}
		Fail("operator %v undefined on float", op)
	case value.Unsigned:
		switch op {
		case ram.OpAdd:
			return a + b
		case ram.OpSub:
			return a - b
		case ram.OpMul:
			return a * b
		case ram.OpDiv:
			if b == 0 {
				Fail("division by zero")
			}
			return a / b
		case ram.OpMod:
			if b == 0 {
				Fail("modulo by zero")
			}
			return a % b
		case ram.OpPow:
			return upow(a, b)
		case ram.OpBAnd:
			return a & b
		case ram.OpBOr:
			return a | b
		case ram.OpBXor:
			return a ^ b
		case ram.OpBShl:
			return a << (b & 31)
		case ram.OpBShr:
			return a >> (b & 31)
		case ram.OpLAnd:
			return Bool(a != 0 && b != 0)
		case ram.OpLOr:
			return Bool(a != 0 || b != 0)
		case ram.OpMin:
			if b < a {
				return b
			}
			return a
		case ram.OpMax:
			if b > a {
				return b
			}
			return a
		}
	default: // Number
		x, y := value.AsInt(a), value.AsInt(b)
		switch op {
		case ram.OpAdd:
			return value.FromInt(x + y)
		case ram.OpSub:
			return value.FromInt(x - y)
		case ram.OpMul:
			return value.FromInt(x * y)
		case ram.OpDiv:
			if y == 0 {
				Fail("division by zero")
			}
			return value.FromInt(x / y)
		case ram.OpMod:
			if y == 0 {
				Fail("modulo by zero")
			}
			return value.FromInt(x % y)
		case ram.OpPow:
			return value.FromInt(ipow(x, y))
		case ram.OpBAnd:
			return value.FromInt(x & y)
		case ram.OpBOr:
			return value.FromInt(x | y)
		case ram.OpBXor:
			return value.FromInt(x ^ y)
		case ram.OpBShl:
			return value.FromInt(x << (uint32(y) & 31))
		case ram.OpBShr:
			return value.FromInt(x >> (uint32(y) & 31))
		case ram.OpLAnd:
			return Bool(x != 0 && y != 0)
		case ram.OpLOr:
			return Bool(x != 0 || y != 0)
		case ram.OpMin:
			if y < x {
				return b
			}
			return a
		case ram.OpMax:
			if y > x {
				return b
			}
			return a
		}
	}
	Fail("operator %v undefined on %v", op, typ)
	return 0
}

// Neg applies typed unary minus.
func Neg(typ value.Type, v value.Value) value.Value {
	if typ == value.Float {
		return value.FromFloat(-value.AsFloat(v))
	}
	return value.FromInt(-value.AsInt(v))
}

// BNot applies typed bitwise complement.
func BNot(typ value.Type, v value.Value) value.Value {
	if typ == value.Unsigned {
		return ^v
	}
	return value.FromInt(^value.AsInt(v))
}

// LNot applies logical negation.
func LNot(v value.Value) value.Value { return Bool(v == 0) }

// Bool encodes a boolean as a word.
func Bool(b bool) value.Value {
	if b {
		return 1
	}
	return 0
}

func ipow(base, exp int32) int32 {
	if exp < 0 {
		return 0
	}
	var result int32 = 1
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

func upow(base, exp value.Value) value.Value {
	var result value.Value = 1
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

// --- string functors ---

// Cat concatenates symbols.
func Cat(st *symtab.Table, args ...value.Value) value.Value {
	s := ""
	for _, a := range args {
		s += st.Resolve(a)
	}
	return st.Intern(s)
}

// Strlen returns a symbol's byte length.
func Strlen(st *symtab.Table, v value.Value) value.Value {
	return value.FromInt(int32(len(st.Resolve(v))))
}

// Substr takes the [start, start+length) slice of a symbol, clamped.
func Substr(st *symtab.Table, v, start, length value.Value) value.Value {
	s := st.Resolve(v)
	b, n := int(value.AsInt(start)), int(value.AsInt(length))
	if b < 0 || n < 0 || b > len(s) {
		return st.Intern("")
	}
	end := b + n
	if end > len(s) {
		end = len(s)
	}
	return st.Intern(s[b:end])
}

// ToNumber parses a symbol as a signed number.
func ToNumber(st *symtab.Table, v value.Value) value.Value {
	s := st.Resolve(v)
	n, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		Fail("to_number: %q is not a number", s)
	}
	return value.FromInt(int32(n))
}

// ToString renders a number as a symbol.
func ToString(st *symtab.Table, v value.Value) value.Value {
	return st.Intern(strconv.FormatInt(int64(value.AsInt(v)), 10))
}

// --- aggregates ---

// AggAcc folds aggregate values (count/sum/min/max with the language's
// empty-set semantics).
type AggAcc struct {
	Kind  ram.AggKind
	Typ   value.Type
	Count uint64
	Acc   value.Value
}

// Init prepares the accumulator.
func (a *AggAcc) Init(kind ram.AggKind, typ value.Type) {
	*a = AggAcc{Kind: kind, Typ: typ}
}

// Step folds one value.
func (a *AggAcc) Step(v value.Value) {
	a.Count++
	switch a.Kind {
	case ram.AggCount:
	case ram.AggSum:
		a.Acc = Arith(ram.OpAdd, a.Typ, a.Acc, v)
	case ram.AggMin:
		if a.Count == 1 || value.Compare(a.Typ, v, a.Acc) < 0 {
			a.Acc = v
		}
	case ram.AggMax:
		if a.Count == 1 || value.Compare(a.Typ, v, a.Acc) > 0 {
			a.Acc = v
		}
	}
}

// Finish returns the result and whether a result exists (min/max fail on
// the empty set; count/sum yield 0).
func (a *AggAcc) Finish() (value.Value, bool) {
	switch a.Kind {
	case ram.AggCount:
		return value.FromInt(int32(a.Count)), true
	case ram.AggSum:
		return a.Acc, true
	default:
		return a.Acc, a.Count > 0
	}
}
