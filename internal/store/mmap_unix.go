//go:build linux || darwin

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. It returns (nil, false) when the
// mapping fails; callers fall back to a plain read.
func mmapFile(f *os.File, size int) ([]byte, bool) {
	if size <= 0 {
		return nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return b, true
}

func munmap(b []byte) {
	if b != nil {
		syscall.Munmap(b)
	}
}

// lockFile takes an exclusive, non-blocking advisory lock on f, so two
// processes cannot open the same data directory. The lock dies with the
// process, which is what makes crash recovery possible without stale-lock
// cleanup.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

func unlockFile(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
