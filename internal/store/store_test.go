package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

func key4(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestTableAgainstMap drives a table with a random op mix and checks every
// observable (membership, size, full-range and sub-range cursors) against a
// plain map, with a flush threshold small enough to exercise segments,
// tombstone shadowing, and compaction swaps.
func TestTableAgainstMap(t *testing.T) {
	s := openTest(t, Options{FlushKeys: 64, MaxSegments: 2})
	tab, err := s.Table("r", 4)
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	model := map[uint32]bool{}
	check := func(step int) {
		t.Helper()
		if got := tab.Len(); got != len(model) {
			t.Fatalf("step %d: Len=%d want %d", step, got, len(model))
		}
		want := make([]uint32, 0, len(model))
		for v := range model {
			want = append(want, v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		cur := tab.Range(nil, nil)
		for i, v := range want {
			k, ok := cur.Next()
			if !ok {
				t.Fatalf("step %d: cursor ended at %d, want %d keys", step, i, len(want))
			}
			if got := binary.BigEndian.Uint32(k); got != v {
				t.Fatalf("step %d: cursor[%d]=%d want %d", step, i, got, v)
			}
		}
		if _, ok := cur.Next(); ok {
			t.Fatalf("step %d: cursor yielded extra key", step)
		}
	}
	for step := 0; step < 4000; step++ {
		v := uint32(rng.Intn(512))
		if rng.Intn(3) == 0 {
			if got := tab.Delete(key4(v)); got != model[v] {
				t.Fatalf("step %d: Delete(%d)=%v want %v", step, v, got, model[v])
			}
			delete(model, v)
		} else {
			if got := tab.Insert(key4(v)); got == model[v] {
				t.Fatalf("step %d: Insert(%d)=%v want %v", step, v, got, !model[v])
			}
			model[v] = true
		}
		if c := tab.Contains(key4(v)); c != model[v] {
			t.Fatalf("step %d: Contains(%d)=%v want %v", step, v, c, model[v])
		}
		if step%251 == 0 {
			check(step)
		}
	}
	check(-1)

	// Sub-range cursor.
	lo, hi := key4(100), key4(300)
	var want []uint32
	for v := range model {
		if v >= 100 && v < 300 {
			want = append(want, v)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	cur := tab.Range(lo, hi)
	for _, v := range want {
		k, ok := cur.Next()
		if !ok || binary.BigEndian.Uint32(k) != v {
			t.Fatalf("range cursor: got %v/%v want %d", k, ok, v)
		}
	}
	if _, ok := cur.Next(); ok {
		t.Fatal("range cursor overran hi bound")
	}

	// Clear drops everything, including on-disk runs.
	tab.Clear()
	if tab.Len() != 0 || tab.Contains(key4(1)) {
		t.Fatal("Clear left live keys")
	}
	if _, ok := tab.Range(nil, nil).Next(); ok {
		t.Fatal("Clear left cursor-visible keys")
	}
}

// TestCompactionConverges forces many flushes and verifies the run count
// settles at one while contents stay intact.
func TestCompactionConverges(t *testing.T) {
	s := openTest(t, Options{FlushKeys: 32, MaxSegments: 2})
	tab, _ := s.Table("r", 4)
	const n = 2000
	for i := 0; i < n; i++ {
		tab.Insert(key4(uint32(i)))
	}
	// Deleting a slice creates tombstones that compaction must drop.
	for i := 0; i < n; i += 3 {
		tab.Delete(key4(uint32(i)))
	}
	if err := tab.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Drain pending compactions deterministically.
	s.mu.Lock()
	close(s.compactCh)
	s.mu.Unlock()
	s.wg.Wait()
	for tab.Segments() > 1 {
		if err := tab.compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
	}
	tab.mu.Lock()
	tab.sweepLocked()
	tab.mu.Unlock()
	want := 0
	for i := 0; i < n; i++ {
		live := i%3 != 0
		if live {
			want++
		}
		if tab.Contains(key4(uint32(i))) != live {
			t.Fatalf("after compaction: Contains(%d) != %v", i, live)
		}
	}
	if tab.Len() != want {
		t.Fatalf("after compaction: Len=%d want %d", tab.Len(), want)
	}
	// The compacted run must have shed the dropped tombstones on disk.
	ents, err := os.ReadDir(filepath.Join(s.dir, TablesDir, "r"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("want 1 segment file after sweep, have %v", names)
	}
	// Make Close safe after we closed the channel ourselves.
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	for _, tb := range s.tables {
		tb.close()
	}
	unlockFile(s.lock)
	s.lock.Close()
}

func TestDirLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of locked dir succeeded")
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

func TestTablesDirIsWipedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{FlushKeys: 4})
	tab, _ := s.Table("r", 4)
	for i := 0; i < 32; i++ {
		tab.Insert(key4(uint32(i)))
	}
	tab.Flush()
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	tab2, _ := s2.Table("r", 4)
	if tab2.Len() != 0 {
		t.Fatalf("tables dir not wiped: Len=%d", tab2.Len())
	}
}

func TestWALReplayAndTornTail(t *testing.T) {
	dir := t.TempDir()
	path := WALPath(dir, 3)
	w, err := CreateWAL(path, false)
	if err != nil {
		t.Fatalf("CreateWAL: %v", err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	replay := func(p string) ([][]byte, int) {
		var got [][]byte
		n, err := ReplayWAL(p, func(b []byte) error {
			got = append(got, append([]byte(nil), b...))
			return nil
		})
		if err != nil {
			t.Fatalf("ReplayWAL: %v", err)
		}
		return got, n
	}
	got, n := replay(path)
	if n != len(want) {
		t.Fatalf("replay count %d want %d", n, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: %q want %q", i, got[i], want[i])
		}
	}

	// Torn tails of every length lose only the final record.
	raw, _ := os.ReadFile(path)
	for cut := 1; cut <= 18; cut += 4 {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.log", cut))
		os.WriteFile(torn, raw[:len(raw)-cut], 0o644)
		_, n := replay(torn)
		if n != len(want)-1 {
			t.Fatalf("torn by %d: replayed %d want %d", cut, n, len(want)-1)
		}
	}

	// Corruption mid-log is an error, not silence. Byte 25 sits inside the
	// second record's payload (records are 4+10+4 bytes).
	bad := append([]byte(nil), raw...)
	bad[25] ^= 0xFF
	badPath := filepath.Join(dir, "bad.log")
	os.WriteFile(badPath, bad, 0o644)
	if _, err := ReplayWAL(badPath, func([]byte) error { return nil }); err == nil {
		t.Fatal("mid-log corruption replayed without error")
	}

	if gens, _ := ListWALs(dir); len(gens) != 1 || gens[0] != 3 {
		t.Fatalf("ListWALs = %v, want [3]", gens)
	}
}

func TestSnapshotRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	payload := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(payload)
	path := SnapshotPath(dir, 7)
	if err := WriteSnapshot(path, payload); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("snapshot payload mismatch")
	}
	if gens, _ := ListSnapshots(dir); len(gens) != 1 || gens[0] != 7 {
		t.Fatalf("ListSnapshots = %v, want [7]", gens)
	}
	// A truncated snapshot must be rejected, not silently half-read.
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)-10], 0o644)
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("truncated snapshot read succeeded")
	}
	// Flipped payload byte must fail the checksum.
	raw[30] ^= 0x01
	os.WriteFile(path, raw, 0o644)
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("corrupted snapshot read succeeded")
	}
}

func TestSegmentRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.seg")
	ents := []memEnt{{string(key4(1)), opSet}, {string(key4(2)), opSet}}
	if _, err := writeSegment(path, 4, &memSource{ents: ents}); err != nil {
		t.Fatalf("writeSegment: %v", err)
	}
	if g, err := openSegment(path); err != nil {
		t.Fatalf("openSegment: %v", err)
	} else {
		g.close()
	}
	raw, _ := os.ReadFile(path)
	raw[segHeaderSize] ^= 0xFF
	os.WriteFile(path, raw, 0o644)
	if g, err := openSegment(path); err == nil {
		g.close()
		t.Fatal("corrupted segment opened")
	}
}

func TestSampleKeysPartitions(t *testing.T) {
	s := openTest(t, Options{FlushKeys: 256})
	tab, _ := s.Table("r", 4)
	for i := 0; i < 1000; i++ {
		tab.Insert(key4(uint32(i * 3)))
	}
	seps := tab.SampleKeys(4)
	if len(seps) == 0 {
		t.Fatal("no separators for 1000-key table")
	}
	for i := 1; i < len(seps); i++ {
		if bytes.Compare(seps[i-1], seps[i]) >= 0 {
			t.Fatalf("separators not ascending: %v", seps)
		}
	}
}
