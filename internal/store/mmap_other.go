//go:build !linux && !darwin

package store

import "os"

// mmapFile is unavailable on this platform; segments fall back to a plain
// read into memory.
func mmapFile(f *os.File, size int) ([]byte, bool) { return nil, false }

func munmap(b []byte) {}

// lockFile is a no-op on platforms without flock; single-process use is the
// caller's responsibility there.
func lockFile(f *os.File) error { return nil }

func unlockFile(f *os.File) {}
