package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Table is one durable keyspace: an LSM-style stack of an in-memory
// memtable over immutable sorted segment runs. Keys are fixed-width
// order-preserving encodings (internal/tuple codec), so all searches —
// point, prefix, and range — are byte comparisons.
//
// Concurrency contract (the de-specialization layer's): one writer at a
// time mutates (Insert/Delete/Clear/Flush), any number of readers may run
// point lookups and cursors concurrently with each other, and readers never
// overlap a writer (the engine's epoch guard serializes them). Background
// compaction is the one true concurrent mutator; it only swaps the segment
// list under the table lock, and retired segments stay mapped until a
// writer-context safe point, so live cursors never lose their backing
// bytes.
type Table struct {
	store  *Store
	name   string
	dir    string
	keyLen int

	mu   sync.RWMutex
	mem  map[string]byte // key → op (opSet/opDel)
	srt  []memEnt        // sorted snapshot of mem; nil when stale
	segs []*segment      // oldest first
	live int             // exact number of live keys
	seq  uint64          // next segment file number
	gen  uint64          // bumped by Clear; stale compactions discard
	// compacting marks an in-flight background merge; retired segments are
	// only unmapped when it is false (the compactor may still read them).
	compacting bool
	retired    []*segment
}

type memEnt struct {
	key string
	op  byte
}

func newTable(s *Store, name, dir string, keyLen int) *Table {
	return &Table{store: s, name: name, dir: dir, keyLen: keyLen, mem: map[string]byte{}}
}

// Name returns the table's registered name.
func (t *Table) Name() string { return t.name }

// KeyLen returns the fixed encoded key width.
func (t *Table) KeyLen() int { return t.keyLen }

// Len returns the number of live keys.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Segments reports the current number of on-disk runs.
func (t *Table) Segments() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segs)
}

// Insert adds a key, reporting whether it was not live before. The writer
// contract applies.
func (t *Table) Insert(key []byte) bool {
	t.mu.Lock()
	if t.containsLocked(key) {
		t.mu.Unlock()
		return false
	}
	t.mem[string(key)] = opSet
	t.srt = nil
	t.live++
	full := len(t.mem) >= t.store.opts.FlushKeys
	t.mu.Unlock()
	if full {
		t.Flush()
	}
	return true
}

// Delete removes a key, reporting whether it was live.
func (t *Table) Delete(key []byte) bool {
	t.mu.Lock()
	if !t.containsLocked(key) {
		t.mu.Unlock()
		return false
	}
	t.mem[string(key)] = opDel
	t.srt = nil
	t.live--
	full := len(t.mem) >= t.store.opts.FlushKeys
	t.mu.Unlock()
	if full {
		t.Flush()
	}
	return true
}

// Contains reports whether key is live.
func (t *Table) Contains(key []byte) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.containsLocked(key)
}

func (t *Table) containsLocked(key []byte) bool {
	if op, ok := t.mem[string(key)]; ok {
		return op == opSet
	}
	for i := len(t.segs) - 1; i >= 0; i-- {
		if op, ok := t.segs[i].find(key); ok {
			return op == opSet
		}
	}
	return false
}

// Clear drops every key. Runs in writer context: live reader cursors are
// excluded by the caller, so current segments can retire; an in-flight
// compaction is invalidated by the generation bump and its retired inputs
// are swept at the next writer-context safe point.
func (t *Table) Clear() {
	t.mu.Lock()
	t.mem = map[string]byte{}
	t.srt = nil
	t.retired = append(t.retired, t.segs...)
	t.segs = nil
	t.live = 0
	t.gen++
	t.sweepLocked()
	t.mu.Unlock()
}

// sweepLocked unmaps and unlinks retired segments. Only valid in writer
// context (no reader cursors) and only when no compaction is in flight.
func (t *Table) sweepLocked() {
	if t.compacting || len(t.retired) == 0 {
		return
	}
	for _, g := range t.retired {
		g.close()
		os.Remove(g.path)
	}
	t.retired = nil
}

// sortedLocked returns the ascending snapshot of the memtable, rebuilding
// the cache if a write invalidated it. Cursors hold the returned slice; it
// is never mutated in place.
func (t *Table) sortedLocked() []memEnt {
	if t.srt == nil {
		ents := make([]memEnt, 0, len(t.mem))
		for k, op := range t.mem {
			ents = append(ents, memEnt{k, op})
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
		t.srt = ents
	}
	return t.srt
}

// Flush writes the memtable to a new segment and clears it. A flush of an
// empty memtable is a no-op. Tombstones are dropped when no older run could
// resurrect the key. Writer context only.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	if len(t.mem) == 0 {
		return nil
	}
	ents := t.sortedLocked()
	src := &memSource{ents: ents, dropDels: len(t.segs) == 0}
	path := filepath.Join(t.dir, fmt.Sprintf("seg-%08d.seg", t.seq))
	n, err := writeSegment(path, t.keyLen, src)
	if err != nil {
		return fmt.Errorf("store: flush %s: %w", t.name, err)
	}
	t.seq++
	t.store.flushes.Add(1)
	t.store.fsyncs.Add(1)
	if n == 0 {
		os.Remove(path)
		t.mem = map[string]byte{}
		t.srt = nil
		return nil
	}
	g, err := openSegment(path)
	if err != nil {
		return fmt.Errorf("store: reopen flushed %s: %w", t.name, err)
	}
	t.segs = append(t.segs, g)
	t.mem = map[string]byte{}
	t.srt = nil
	if len(t.segs) > t.store.opts.MaxSegments && !t.compacting {
		t.compacting = true
		t.store.scheduleCompact(t)
	}
	return nil
}

// memSource streams a sorted memtable snapshot to the segment writer.
type memSource struct {
	ents     []memEnt
	dropDels bool
	i        int
}

func (m *memSource) next() ([]byte, byte, bool) {
	for m.i < len(m.ents) {
		e := m.ents[m.i]
		m.i++
		if m.dropDels && e.op == opDel {
			continue
		}
		return []byte(e.key), e.op, true
	}
	return nil, 0, false
}

// SampleKeys returns up to n-1 ascending separator keys that split the
// table into roughly equal ranges, for parallel partitioned scans. It may
// return fewer (or none) when the table is small.
func (t *Table) SampleKeys(n int) [][]byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Sample the largest run: it dominates the key distribution.
	var src interface {
		at(i int) []byte
		len() int
	}
	var best *segment
	for _, g := range t.segs {
		if best == nil || g.count > best.count {
			best = g
		}
	}
	if best != nil && best.count >= len(t.mem) {
		src = segKeys{best}
	} else {
		src = memKeys(t.sortedLockedRO())
	}
	if n <= 1 || src.len() < 2*n {
		return nil
	}
	var out [][]byte
	for i := 1; i < n; i++ {
		k := src.at(i * src.len() / n)
		if len(out) > 0 && bytes.Equal(out[len(out)-1], k) {
			continue
		}
		out = append(out, append([]byte(nil), k...))
	}
	return out
}

// sortedLockedRO is the read-lock variant of sortedLocked: it cannot
// install the cache, so it sorts a fresh snapshot when the cache is stale.
func (t *Table) sortedLockedRO() []memEnt {
	if t.srt != nil {
		return t.srt
	}
	ents := make([]memEnt, 0, len(t.mem))
	for k, op := range t.mem {
		ents = append(ents, memEnt{k, op})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
	return ents
}

type segKeys struct{ g *segment }

func (s segKeys) at(i int) []byte { return s.g.key(i) }
func (s segKeys) len() int        { return s.g.count }

type memKeys []memEnt

func (m memKeys) at(i int) []byte { return []byte(m[i].key) }
func (m memKeys) len() int        { return len(m) }

func (t *Table) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, g := range t.retired {
		g.close()
	}
	t.retired = nil
	for _, g := range t.segs {
		g.close()
	}
	t.segs = nil
}
