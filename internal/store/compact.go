package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// Compaction merges a table's entire segment stack into one run, dropping
// shadowed entries and tombstones. It runs on the store's background
// goroutine: the merge itself touches only the immutable captured segments
// (which cannot be swept while t.compacting is true), and the swap takes the
// table lock briefly. Segments flushed while the merge runs are newer than
// every captured run, so they simply stay stacked on top of the merged one.

// compactCapture is the immutable input set grabbed under the table lock.
type compactCapture struct {
	segs []*segment
	gen  uint64
	seq  uint64
	path string
}

func (t *Table) captureCompact() (compactCapture, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.segs) < 2 {
		t.compacting = false
		return compactCapture{}, false
	}
	c := compactCapture{
		segs: append([]*segment(nil), t.segs...),
		gen:  t.gen,
		seq:  t.seq,
	}
	c.path = filepath.Join(t.dir, fmt.Sprintf("seg-%08d.seg", c.seq))
	t.seq++
	return c, true
}

// compact performs one full merge. Called only from the store's compactor
// goroutine, with t.compacting already set.
func (t *Table) compact() error {
	c, ok := t.captureCompact()
	if !ok {
		return nil
	}
	// The captured set always includes the table's oldest run, so nothing
	// below it can resurrect a deleted key: tombstones are dropped.
	src := newMergeSource(c.segs, true)
	n, err := writeSegment(c.path, t.keyLen, src)
	if err != nil {
		t.mu.Lock()
		t.compacting = false
		t.mu.Unlock()
		return fmt.Errorf("store: compact %s: %w", t.name, err)
	}
	var merged *segment
	if n > 0 {
		if merged, err = openSegment(c.path); err != nil {
			t.mu.Lock()
			t.compacting = false
			t.mu.Unlock()
			return fmt.Errorf("store: reopen compacted %s: %w", t.name, err)
		}
	} else {
		os.Remove(c.path)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.compacting = false
	if t.gen != c.gen {
		// Clear ran mid-merge: the result describes dead data.
		if merged != nil {
			merged.close()
			os.Remove(c.path)
		}
		return nil
	}
	newer := t.segs[len(c.segs):] // runs flushed during the merge
	if merged != nil {
		t.segs = append([]*segment{merged}, newer...)
	} else {
		t.segs = append([]*segment(nil), newer...)
	}
	// Captured runs stay mapped until a writer-context safe point: a reader
	// cursor opened before the swap may still be walking them.
	t.retired = append(t.retired, c.segs...)
	t.store.compactions.Add(1)
	t.store.fsyncs.Add(1)
	return nil
}

// mergeSource k-way merges segments (oldest first in input; higher index
// wins ties) into one ascending, de-duplicated stream.
type mergeSource struct {
	segs     []*segment
	pos      []int
	dropDels bool
}

func newMergeSource(segs []*segment, dropDels bool) *mergeSource {
	return &mergeSource{segs: segs, pos: make([]int, len(segs)), dropDels: dropDels}
}

func (m *mergeSource) next() ([]byte, byte, bool) {
	for {
		win := -1
		var winKey []byte
		// Scan newest → oldest so the first holder of the minimal key is
		// the newest level, which decides the op.
		for i := len(m.segs) - 1; i >= 0; i-- {
			if m.pos[i] >= m.segs[i].count {
				continue
			}
			k := m.segs[i].key(m.pos[i])
			if win < 0 || bytes.Compare(k, winKey) < 0 {
				win, winKey = i, k
			}
		}
		if win < 0 {
			return nil, 0, false
		}
		op := m.segs[win].op(m.pos[win])
		for i := range m.segs {
			if m.pos[i] < m.segs[i].count && bytes.Equal(m.segs[i].key(m.pos[i]), winKey) {
				m.pos[i]++
			}
		}
		if m.dropDels && op == opDel {
			continue
		}
		return winKey, op, true
	}
}
