package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// A WAL is an append-only log of opaque records, framed so that replay can
// tell a cleanly written prefix from a torn tail:
//
//	record  len u32 | payload len bytes | crc32(payload) u32
//
// A record counts only once its trailing checksum verifies, so a crash in
// the middle of an append loses at most that record — exactly the batch
// whose caller never saw the append return. Files are named wal-<gen>.log;
// the generation ties each log to the snapshot that precedes it.
type WAL struct {
	f       *os.File
	w       *bufio.Writer
	path    string
	fsync   bool
	records atomic.Int64
	bytes   atomic.Int64
	syncs   atomic.Int64
}

const walRecordMax = 1 << 30 // sanity bound on a single record

// CreateWAL opens a fresh log at path (truncating any leftover). With fsync
// set, every append is forced to stable storage before returning.
func CreateWAL(path string, fsync bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, w: bufio.NewWriterSize(f, 1<<16), path: path, fsync: fsync}, nil
}

// Append frames and writes one record. The record is durable on return when
// the WAL was opened with fsync; otherwise it is flushed to the OS, which
// survives process crashes but not power loss.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > walRecordMax {
		return fmt.Errorf("store: wal record too large (%d bytes)", len(payload))
	}
	var frame [4]byte
	binary.BigEndian.PutUint32(frame[:], uint32(len(payload)))
	if _, err := w.w.Write(frame[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(frame[:], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(frame[:]); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.syncs.Add(1)
	}
	w.records.Add(1)
	w.bytes.Add(int64(len(payload) + 8))
	return nil
}

// Sync forces buffered records to stable storage regardless of the fsync
// option (used on graceful shutdown).
func (w *WAL) Sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	return nil
}

// Records and Bytes report append counters for observability.
func (w *WAL) Records() int64 { return w.records.Load() }
func (w *WAL) Bytes() int64   { return w.bytes.Load() }
func (w *WAL) Syncs() int64   { return w.syncs.Load() }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close flushes and closes the log without fsyncing (use Sync first when
// durability matters).
func (w *WAL) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abandon closes the log's descriptor without flushing or syncing — the
// crash-simulation hook. Because Append flushes each record to the OS
// before returning, what remains on disk is exactly what a kill -9 after
// the last completed Append would leave.
func (w *WAL) Abandon() { w.f.Close() }

// ReplayWAL streams every intact record of the log at path to fn in append
// order. A torn tail — short frame, short payload, or checksum mismatch at
// the very end of the file — is silently dropped, as it can only be the
// record a crash interrupted. Corruption anywhere before the tail is an
// error. Returns the number of records delivered.
func ReplayWAL(path string, fn func(payload []byte) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	n := 0
	var frame [4]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil // clean end
			}
			return n, nil // torn length frame at tail
		}
		ln := int(binary.BigEndian.Uint32(frame[:]))
		if ln > walRecordMax {
			return n, fmt.Errorf("store: wal %s record %d has absurd length %d", path, n, ln)
		}
		if cap(buf) < ln {
			buf = make([]byte, ln)
		}
		buf = buf[:ln]
		if _, err := io.ReadFull(r, buf); err != nil {
			return n, nil // torn payload at tail
		}
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return n, nil // torn checksum at tail
		}
		if binary.BigEndian.Uint32(frame[:]) != crc32.ChecksumIEEE(buf) {
			// A bad checksum is only tolerable if nothing follows it.
			if _, err := r.Peek(1); err != nil {
				return n, nil
			}
			return n, fmt.Errorf("store: wal %s record %d checksum mismatch mid-log", path, n)
		}
		if err := fn(buf); err != nil {
			return n, err
		}
		n++
	}
}

// WALPath names the generation-gen log file under dir.
func WALPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", gen))
}

// ListWALs returns the generations of all log files under dir, ascending.
func ListWALs(dir string) ([]uint64, error) {
	return listGens(dir, "wal-", ".log")
}

func listGens(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}
