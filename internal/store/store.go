// Package store implements the persistent tier behind the de-specialization
// seam: an embedded, single-process, append-only tuple store. Each relation
// order maps to a Table — an LSM-style stack of one in-memory memtable over
// immutable sorted segment runs, keyed by the order-preserving fixed-width
// encoding from internal/tuple, so point lookups, prefix scans, and range
// partitioning all run as byte comparisons directly on mapped files.
//
// The store holds only the *indexes* (a rebuildable cache, wiped on open);
// durability itself comes from the write-ahead log and snapshot files the
// db layer maintains with the CreateWAL/ReplayWAL and WriteSnapshot/
// ReadSnapshot helpers in this package.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Options tune a store. Zero values select the defaults.
type Options struct {
	// Fsync forces every WAL append to stable storage (see CreateWAL; the
	// store records the choice so tables and the db layer agree).
	Fsync bool
	// FlushKeys is the memtable size (in keys) that triggers a segment
	// flush. Default 32768.
	FlushKeys int
	// MaxSegments is the run count above which a table schedules background
	// compaction. Default 4.
	MaxSegments int
}

func (o Options) withDefaults() Options {
	if o.FlushKeys <= 0 {
		o.FlushKeys = 32768
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 4
	}
	return o
}

// Store owns one data directory's table cache and its background compactor.
type Store struct {
	dir  string
	opts Options
	lock *os.File

	mu     sync.Mutex
	tables map[string]*Table
	closed bool

	compactCh chan *Table
	wg        sync.WaitGroup

	flushes     atomic.Int64
	compactions atomic.Int64
	fsyncs      atomic.Int64
}

// TablesDir is the subdirectory holding segment files. It is a cache: the
// db layer rebuilds every table from snapshot + WAL on open, so the whole
// subtree is wiped each time a store opens.
const TablesDir = "tables"

// LockName is the advisory lock file guarding a data directory.
const LockName = "LOCK"

// Open prepares dir for use: creates it, takes the exclusive directory
// lock, clears the table cache, and starts the compactor.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lf, err := os.OpenFile(filepath.Join(dir, LockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(lf); err != nil {
		lf.Close()
		return nil, fmt.Errorf("store: data dir %s is locked by another process: %w", dir, err)
	}
	td := filepath.Join(dir, TablesDir)
	if err := os.RemoveAll(td); err != nil {
		unlockFile(lf)
		lf.Close()
		return nil, err
	}
	if err := os.MkdirAll(td, 0o755); err != nil {
		unlockFile(lf)
		lf.Close()
		return nil, err
	}
	// A crash during snapshot write can leave a temp file behind.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if filepath.Ext(e.Name()) == ".tmp" {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	s := &Store{
		dir:       dir,
		opts:      opts.withDefaults(),
		lock:      lf,
		tables:    map[string]*Table{},
		compactCh: make(chan *Table, 128),
	}
	s.wg.Add(1)
	go s.compactor()
	return s, nil
}

// Dir returns the data directory the store was opened on.
func (s *Store) Dir() string { return s.dir }

// Options returns the effective (defaulted) options.
func (s *Store) Options() Options { return s.opts }

// Table returns the named table, creating its directory on first use. Names
// must be unique per (relation, order); the relation layer derives them.
func (s *Store) Table(name string, keyLen int) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: %s is closed", s.dir)
	}
	if t, ok := s.tables[name]; ok {
		if t.keyLen != keyLen {
			return nil, fmt.Errorf("store: table %s reopened with keyLen %d (have %d)", name, keyLen, t.keyLen)
		}
		return t, nil
	}
	td := filepath.Join(s.dir, TablesDir, name)
	if err := os.MkdirAll(td, 0o755); err != nil {
		return nil, err
	}
	t := newTable(s, name, td, keyLen)
	s.tables[name] = t
	return t, nil
}

// scheduleCompact queues t for background compaction. The caller has set
// t.compacting; when the queue is saturated the request is dropped and the
// flag reset — the next flush simply re-triggers it.
func (s *Store) scheduleCompact(t *Table) {
	select {
	case s.compactCh <- t:
	default:
		t.mu.Lock()
		t.compacting = false
		t.mu.Unlock()
	}
}

func (s *Store) compactor() {
	defer s.wg.Done()
	for t := range s.compactCh {
		// Best-effort: a failed compaction leaves the stack as it was and
		// the next flush retries.
		_ = t.compact()
	}
}

// Stats is a point-in-time summary of the store's structural state.
type Stats struct {
	Tables      int
	Segments    int
	LiveKeys    int
	Flushes     int64
	Compactions int64
	Fsyncs      int64
}

// Stats gathers counters across all tables.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	tabs := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tabs = append(tabs, t)
	}
	s.mu.Unlock()
	st := Stats{
		Tables:      len(tabs),
		Flushes:     s.flushes.Load(),
		Compactions: s.compactions.Load(),
		Fsyncs:      s.fsyncs.Load(),
	}
	for _, t := range tabs {
		st.Segments += t.Segments()
		st.LiveKeys += t.Len()
	}
	return st
}

// Close stops the compactor, unmaps every table, and releases the directory
// lock. Tables are not flushed: their contents are a cache the next open
// rebuilds.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.compactCh)
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	for _, t := range s.tables {
		t.close()
	}
	s.tables = map[string]*Table{}
	s.mu.Unlock()
	unlockFile(s.lock)
	return s.lock.Close()
}
