package store

import (
	"bytes"
	"sort"
)

// Cursor enumerates live keys of a table in ascending order over the
// half-open range [lo, hi) (nil bounds are unbounded). It merges the
// memtable snapshot and every segment, newest level winning on key ties,
// and skips tombstoned keys. The yielded slice is only valid until the next
// call to Next.
type Cursor struct {
	srcs []cursorSrc // index 0 is newest (the memtable)
	hi   []byte
}

// cursorSrc is one sorted level positioned at its next candidate.
type cursorSrc struct {
	mem  []memEnt // memtable level when non-nil
	seg  *segment // segment level otherwise
	i, n int
}

func (s *cursorSrc) key() []byte {
	if s.mem != nil {
		return []byte(s.mem[s.i].key)
	}
	return s.seg.key(s.i)
}

// keyView avoids the []byte(string) copy for comparisons.
func (s *cursorSrc) cmp(other []byte) int {
	if s.mem != nil {
		return bytes.Compare([]byte(s.mem[s.i].key), other)
	}
	return bytes.Compare(s.seg.key(s.i), other)
}

func (s *cursorSrc) op() byte {
	if s.mem != nil {
		return s.mem[s.i].op
	}
	return s.seg.op(s.i)
}

// Range returns a cursor over [lo, hi). The cursor captures an immutable
// view: the memtable's sorted snapshot and the current segment list.
func (t *Table) Range(lo, hi []byte) *Cursor {
	t.mu.Lock()
	ents := t.sortedLocked()
	segs := append([]*segment(nil), t.segs...)
	t.mu.Unlock()

	c := &Cursor{hi: hi}
	// Newest first: memtable, then segments newest → oldest.
	memStart := 0
	if lo != nil {
		memStart = sort.Search(len(ents), func(i int) bool { return ents[i].key >= string(lo) })
	}
	if memStart < len(ents) {
		c.srcs = append(c.srcs, cursorSrc{mem: ents, i: memStart, n: len(ents)})
	}
	for i := len(segs) - 1; i >= 0; i-- {
		g := segs[i]
		start := 0
		if lo != nil {
			start, _ = g.search(lo)
		}
		if start < g.count {
			c.srcs = append(c.srcs, cursorSrc{seg: g, i: start, n: g.count})
		}
	}
	return c
}

// Next yields the next live key in range, or ok=false when exhausted.
func (c *Cursor) Next() ([]byte, bool) {
	for {
		// Find the minimal key across sources; the first (newest) source
		// holding it decides the op. The source count is small (memtable +
		// a compacted handful of segments), so a linear sweep beats heap
		// bookkeeping.
		win := -1
		var winKey []byte
		for si := range c.srcs {
			s := &c.srcs[si]
			if s.i >= s.n {
				continue
			}
			if win < 0 {
				win, winKey = si, s.key()
				continue
			}
			if d := s.cmp(winKey); d < 0 {
				win, winKey = si, s.key()
			}
		}
		if win < 0 {
			return nil, false
		}
		if c.hi != nil && bytes.Compare(winKey, c.hi) >= 0 {
			return nil, false
		}
		op := c.srcs[win].op()
		// Advance every source positioned at the winning key (shadowed
		// older entries are consumed together with the winner).
		for si := range c.srcs {
			s := &c.srcs[si]
			if s.i < s.n && s.cmp(winKey) == 0 {
				s.i++
			}
		}
		if op == opSet {
			return winKey, true
		}
	}
}
