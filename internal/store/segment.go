package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// A segment is one immutable sorted run of a table: fixed-width
// order-preserving keys (internal/tuple codec), each carrying a one-byte op
// (live or tombstone), in ascending key order with no duplicates. Segments
// are written once (memtable flush or compaction merge), then only read —
// by binary search and range cursors directly over the mapped bytes.
//
// File layout:
//
//	header   magic "STISEG1\0" | keyLen u32 | count u32   (16 bytes)
//	entries  count × (keyLen+1) bytes: key || op
//	footer   crc32(entries) u32
//
// Reads go through mmap when the platform provides it (the kernel pages the
// run in and out on demand, which is what lets a table exceed RAM), falling
// back to a plain read otherwise.

const (
	opDel byte = 0 // tombstone: the key is deleted at this level
	opSet byte = 1 // the key is live at this level

	segMagic      = "STISEG1\x00"
	segHeaderSize = 16
)

type segment struct {
	path   string
	keyLen int
	count  int
	raw    []byte // whole mapping (or read buffer)
	ents   []byte // entries region view into raw
	mapped bool   // raw came from mmap and needs munmap
}

// esz is the fixed on-disk entry size.
func (g *segment) esz() int { return g.keyLen + 1 }

// key returns the i-th key (a view into the mapping; do not retain across
// close).
func (g *segment) key(i int) []byte {
	off := i * g.esz()
	return g.ents[off : off+g.keyLen]
}

// op returns the i-th entry's op byte.
func (g *segment) op(i int) byte { return g.ents[i*g.esz()+g.keyLen] }

// search returns the position of key (found=true) or of the first entry
// greater than it.
func (g *segment) search(key []byte) (int, bool) {
	i := sort.Search(g.count, func(i int) bool { return bytes.Compare(g.key(i), key) >= 0 })
	return i, i < g.count && bytes.Equal(g.key(i), key)
}

// find reports whether the segment has an entry for key and its op.
func (g *segment) find(key []byte) (byte, bool) {
	if i, ok := g.search(key); ok {
		return g.op(i), true
	}
	return 0, false
}

func (g *segment) close() {
	if g.mapped {
		munmap(g.raw)
	}
	g.raw, g.ents, g.mapped = nil, nil, false
}

// openSegment maps a segment file and validates its header and checksum.
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(fi.Size())
	if size < segHeaderSize+4 {
		return nil, fmt.Errorf("store: segment %s truncated (%d bytes)", path, size)
	}
	raw, mapped := mmapFile(f, size)
	if raw == nil {
		raw = make([]byte, size)
		if _, err := f.ReadAt(raw, 0); err != nil {
			return nil, err
		}
	}
	g := &segment{path: path, raw: raw, mapped: mapped}
	if string(raw[:8]) != segMagic {
		g.close()
		return nil, fmt.Errorf("store: segment %s has bad magic", path)
	}
	g.keyLen = int(binary.BigEndian.Uint32(raw[8:12]))
	g.count = int(binary.BigEndian.Uint32(raw[12:16]))
	want := segHeaderSize + g.count*g.esz() + 4
	if g.keyLen <= 0 || want != size {
		g.close()
		return nil, fmt.Errorf("store: segment %s has inconsistent header (keyLen=%d count=%d size=%d)",
			path, g.keyLen, g.count, size)
	}
	g.ents = raw[segHeaderSize : segHeaderSize+g.count*g.esz()]
	if crc := binary.BigEndian.Uint32(raw[len(raw)-4:]); crc != crc32.ChecksumIEEE(g.ents) {
		g.close()
		return nil, fmt.Errorf("store: segment %s checksum mismatch", path)
	}
	return g, nil
}

// entrySource streams (key, op) pairs in ascending key order to the segment
// writer. Keys yielded may be reused by the next call.
type entrySource interface {
	next() (key []byte, op byte, ok bool)
}

// writeSegment streams src into a new segment file at path, fsyncing before
// returning. The entry count is patched into the header after the stream
// ends, so sources need not know their length up front.
func writeSegment(path string, keyLen int, src entrySource) (count int, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(path)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	var hdr [segHeaderSize]byte
	copy(hdr[:], segMagic)
	binary.BigEndian.PutUint32(hdr[8:], uint32(keyLen))
	if _, err = w.Write(hdr[:]); err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	for {
		key, op, ok := src.next()
		if !ok {
			break
		}
		if _, err = w.Write(key); err != nil {
			return 0, err
		}
		if err = w.WriteByte(op); err != nil {
			return 0, err
		}
		crc.Write(key)
		crc.Write([]byte{op})
		count++
	}
	var foot [4]byte
	binary.BigEndian.PutUint32(foot[:], crc.Sum32())
	if _, err = w.Write(foot[:]); err != nil {
		return 0, err
	}
	if err = w.Flush(); err != nil {
		return 0, err
	}
	// Patch the entry count into the header now that the stream is done.
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(count))
	if _, err = f.WriteAt(cnt[:], 12); err != nil {
		return 0, err
	}
	if err = f.Sync(); err != nil {
		return 0, err
	}
	return count, f.Close()
}
