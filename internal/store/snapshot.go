package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshots are whole-state checkpoints written atomically: the payload
// (encoded by the db layer) is framed with a magic, length, and checksum,
// written to a temp file, fsynced, then renamed into place. A reader either
// sees the complete verified snapshot or none at all — a crash mid-write
// leaves only a stale temp file, which open cleanup removes.
//
//	file  magic "STISNAP1" | len u64 | payload | crc32(payload) u32

const snapMagic = "STISNAP1"

// SnapshotPath names the generation-gen snapshot under dir.
func SnapshotPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", gen))
}

// ListSnapshots returns the generations of all snapshots under dir,
// ascending.
func ListSnapshots(dir string) ([]uint64, error) {
	return listGens(dir, "snap-", ".snap")
}

// WriteSnapshot atomically persists payload at path.
func WriteSnapshot(path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [16]byte
	copy(hdr[:8], snapMagic)
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(payload)))
	var foot [4]byte
	binary.BigEndian.PutUint32(foot[:], crc32.ChecksumIEEE(payload))
	for _, b := range [][]byte{hdr[:], payload, foot[:]} {
		if _, err = f.Write(b); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err = f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err = f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ReadSnapshot loads and verifies the snapshot at path.
func ReadSnapshot(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 20 || string(raw[:8]) != snapMagic {
		return nil, fmt.Errorf("store: snapshot %s has bad header", path)
	}
	ln := binary.BigEndian.Uint64(raw[8:16])
	if uint64(len(raw)) != 20+ln {
		return nil, fmt.Errorf("store: snapshot %s truncated (%d of %d payload bytes)", path, len(raw)-20, ln)
	}
	payload := raw[16 : 16+ln]
	if binary.BigEndian.Uint32(raw[16+ln:]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("store: snapshot %s checksum mismatch", path)
	}
	return payload, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best-effort on platforms where directories reject fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
