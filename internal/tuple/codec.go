package tuple

// Order-preserving byte encoding of tuples, the key codec of the persistent
// storage tier (internal/store). Every element is a 32-bit word already
// compared by unsigned bit pattern (Compare), so a fixed-width big-endian
// layout carries the order agreement property the durable tier needs:
//
//	bytes.Compare(EncodedKey(a), EncodedKey(b)) == Compare(a, b)
//
// for equal-arity tuples, and — because the encoding is fixed-width — the
// first k elements of a tuple occupy exactly the first k*KeyWidth bytes of
// its key. Prefix searches (PrefixScan, AnyMatch) and range partitioning
// (PartitionScan) therefore work directly on encoded keys, with no decoding
// on the comparison path.

// KeyWidth is the encoded size of one tuple element.
const KeyWidth = 4

// KeySize is the encoded size of a tuple of the given arity.
func KeySize(arity int) int { return arity * KeyWidth }

// AppendKey appends the order-preserving encoding of t to dst and returns
// the extended slice.
func AppendKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return dst
}

// EncodedKey returns a freshly allocated order-preserving key for t.
func EncodedKey(t Tuple) []byte {
	return AppendKey(make([]byte, 0, KeySize(len(t))), t)
}

// DecodeKey decodes an encoded key into dst. The key must hold exactly
// KeySize(len(dst)) bytes.
func DecodeKey(dst Tuple, key []byte) {
	for i := range dst {
		b := key[i*KeyWidth:]
		dst[i] = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
}

// PrefixSuccessor returns the smallest key strictly greater than every key
// beginning with p, i.e. p with its last byte incremented (with carry). It
// returns nil when p is all 0xFF (or empty): no finite upper bound exists,
// and callers treat nil as +infinity.
func PrefixSuccessor(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}
