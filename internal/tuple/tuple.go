// Package tuple provides tuple utilities shared by the relational data
// structures and the interpreter: lexicographic comparison of flat tuples
// and the Order permutations that implement the paper's first
// de-specialization step (§3).
//
// An index only ever stores tuples in the *natural* lexicographic order
// (element 0 first, then element 1, ...). A relation that needs the order
// (2,0,1) instead re-encodes each tuple on insert by permuting its elements;
// scans either decode on read or — with static reordering (§4.2) — the
// surrounding program is rewritten to read permuted positions directly.
package tuple

import (
	"fmt"
	"strings"

	"sti/internal/value"
)

// Tuple is a flat, untyped tuple of 32-bit words. Most of the engine works
// with this dynamic representation; the specialized index instantiations use
// fixed-size arrays internally.
type Tuple = []value.Value

// Compare lexicographically compares two equal-length tuples by unsigned
// bit-pattern order (the storage order of every index).
func Compare(a, b Tuple) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Equal reports whether two equal-length tuples have identical elements.
func Equal(a, b Tuple) bool { return Compare(a, b) == 0 }

// Clone returns a copy of t.
func Clone(t Tuple) Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// String renders a tuple for debugging.
func String(t Tuple) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Order is a permutation of attribute positions defining a lexicographic
// order: Order[i] is the source position stored at encoded position i. The
// identity permutation is the natural order.
type Order []int

// Identity returns the natural order of the given arity.
func Identity(arity int) Order {
	o := make(Order, arity)
	for i := range o {
		o[i] = i
	}
	return o
}

// IsIdentity reports whether o is the natural order.
func (o Order) IsIdentity() bool {
	for i, p := range o {
		if p != i {
			return false
		}
	}
	return true
}

// Valid reports whether o is a permutation of 0..len(o)-1.
func (o Order) Valid() bool {
	seen := make([]bool, len(o))
	for _, p := range o {
		if p < 0 || p >= len(o) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// Encode permutes src into dst so that dst[i] = src[o[i]]. dst and src must
// not alias and must both have length len(o).
func (o Order) Encode(dst, src Tuple) {
	for i, p := range o {
		dst[i] = src[p]
	}
}

// Decode applies the inverse permutation: dst[o[i]] = src[i].
func (o Order) Decode(dst, src Tuple) {
	for i, p := range o {
		dst[p] = src[i]
	}
}

// Encoded returns a freshly allocated encoding of src.
func (o Order) Encoded(src Tuple) Tuple {
	dst := make(Tuple, len(o))
	o.Encode(dst, src)
	return dst
}

// Inverse returns the inverse permutation of o.
func (o Order) Inverse() Order {
	inv := make(Order, len(o))
	for i, p := range o {
		inv[p] = i
	}
	return inv
}

// String renders the order, e.g. "[2 0 1]".
func (o Order) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, p := range o {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	b.WriteByte(']')
	return b.String()
}
