package tuple

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sti/internal/value"
)

// edgeWords covers every value kind crossing the codec: unsigned ordinals
// (symbols), two's-complement numbers, and float bit patterns, at their
// boundary encodings.
var edgeWords = []value.Value{
	0, 1, 0x7F, 0x80, 0xFF, 0x100, 0xFFFF, 0x10000,
	0x7FFFFFFF,             // max int32
	0x80000000,             // min int32 two's complement
	0xFFFFFFFF,             // -1 two's complement
	math.Float32bits(0),    // +0.0
	math.Float32bits(1.5),  // positive float
	math.Float32bits(-1.5), // negative float
	math.Float32bits(float32(math.Inf(1))),
}

func TestKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for arity := 0; arity <= testArities; arity++ {
		for trial := 0; trial < 200; trial++ {
			in := randTuple(rng, arity)
			key := EncodedKey(in)
			if len(key) != KeySize(arity) {
				t.Fatalf("arity %d: key size %d, want %d", arity, len(key), KeySize(arity))
			}
			out := make(Tuple, arity)
			DecodeKey(out, key)
			if !Equal(in, out) {
				t.Fatalf("arity %d: round trip %v -> %v", arity, in, out)
			}
		}
	}
}

func TestKeyOrderAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for arity := 1; arity <= testArities; arity++ {
		for trial := 0; trial < 500; trial++ {
			a, b := randTuple(rng, arity), randTuple(rng, arity)
			if trial%3 == 0 {
				// Force shared prefixes so ties and near-ties are covered.
				k := rng.Intn(arity)
				copy(b[:k], a[:k])
			}
			want := Compare(a, b)
			got := bytes.Compare(EncodedKey(a), EncodedKey(b))
			if got != want {
				t.Fatalf("arity %d: bytes.Compare(enc(%v), enc(%v)) = %d, tuple order %d",
					arity, a, b, got, want)
			}
		}
	}
}

// TestKeyPrefixAgreement pins the property PrefixScan relies on: the first
// k elements of a tuple occupy exactly the first KeySize(k) bytes.
func TestKeyPrefixAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		arity := 1 + rng.Intn(testArities)
		tup := randTuple(rng, arity)
		key := EncodedKey(tup)
		for k := 0; k <= arity; k++ {
			if !bytes.Equal(key[:KeySize(k)], EncodedKey(tup[:k])) {
				t.Fatalf("prefix %d of %v does not agree with its key prefix", k, tup)
			}
		}
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct{ in, want []byte }{
		{[]byte{0x00}, []byte{0x01}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
		{[]byte{0x12, 0x34}, []byte{0x12, 0x35}},
	}
	for _, c := range cases {
		if got := PrefixSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		p := EncodedKey(randTuple(rng, 1+rng.Intn(4)))
		succ := PrefixSuccessor(p)
		if succ == nil {
			continue
		}
		if bytes.Compare(succ, p) <= 0 {
			t.Fatalf("successor %x not greater than %x", succ, p)
		}
		// Every key starting with p sorts strictly below the successor.
		ext := append(append([]byte{}, p...), 0xFF, 0xFF, 0xFF, 0xFF)
		if bytes.Compare(ext, succ) >= 0 {
			t.Fatalf("extension %x of %x not below successor %x", ext, p, succ)
		}
	}
}

// FuzzKeyOrder fuzzes the order agreement property over arbitrary byte
// inputs carved into two equal-arity tuples.
func FuzzKeyOrder(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 255, 255, 255, 255})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0x80, 0, 0, 0, 0x7F, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		arity := len(data) / (2 * KeyWidth)
		if arity == 0 {
			return
		}
		if arity > maxFuzzArity {
			arity = maxFuzzArity
		}
		a, b := make(Tuple, arity), make(Tuple, arity)
		DecodeKey(a, data[:KeySize(arity)])
		DecodeKey(b, data[KeySize(arity):2*KeySize(arity)])
		if got, want := bytes.Compare(EncodedKey(a), EncodedKey(b)), Compare(a, b); got != want {
			t.Fatalf("bytes.Compare = %d, tuple order %d (a=%v b=%v)", got, want, a, b)
		}
	})
}

// FuzzKeyRoundTrip fuzzes encode/decode inverses.
func FuzzKeyRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		arity := len(data) / KeyWidth
		if arity == 0 {
			return
		}
		if arity > maxFuzzArity {
			arity = maxFuzzArity
		}
		in := make(Tuple, arity)
		DecodeKey(in, data[:KeySize(arity)])
		key := EncodedKey(in)
		if !bytes.Equal(key, data[:KeySize(arity)]) {
			t.Fatalf("decode/encode of %x produced %x", data[:KeySize(arity)], key)
		}
		out := make(Tuple, arity)
		DecodeKey(out, key)
		if !Equal(in, out) {
			t.Fatalf("round trip %v -> %v", in, out)
		}
	})
}

// maxFuzzArity mirrors relation.MaxArity without the import (tuple sits
// below relation in the dependency order); testArities bounds the
// exhaustive property sweeps.
const (
	maxFuzzArity = 16
	testArities  = 6
)

func randTuple(rng *rand.Rand, arity int) Tuple {
	t := make(Tuple, arity)
	for i := range t {
		if rng.Intn(4) == 0 {
			t[i] = edgeWords[rng.Intn(len(edgeWords))]
		} else {
			t[i] = value.Value(rng.Uint32())
		}
	}
	return t
}
