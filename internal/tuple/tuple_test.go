package tuple

import (
	"testing"
	"testing/quick"

	"sti/internal/value"
)

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{}, Tuple{}, 0},
		{Tuple{1}, Tuple{1}, 0},
		{Tuple{1}, Tuple{2}, -1},
		{Tuple{2}, Tuple{1}, 1},
		{Tuple{1, 5}, Tuple{1, 6}, -1},
		{Tuple{1, 6}, Tuple{1, 5}, 1},
		{Tuple{0, ^value.Value(0)}, Tuple{1, 0}, -1},
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEqualAndClone(t *testing.T) {
	a := Tuple{1, 2, 3}
	c := Clone(a)
	if !Equal(a, c) {
		t.Fatal("clone not equal")
	}
	c[0] = 9
	if a[0] == 9 {
		t.Fatal("clone aliases original")
	}
}

func TestOrderValid(t *testing.T) {
	tests := []struct {
		o    Order
		want bool
	}{
		{Order{}, true},
		{Order{0}, true},
		{Order{1, 0, 2}, true},
		{Order{0, 0}, false},
		{Order{1, 2}, false},
		{Order{-1, 0}, false},
	}
	for _, tc := range tests {
		if got := tc.o.Valid(); got != tc.want {
			t.Errorf("%v.Valid() = %v, want %v", tc.o, got, tc.want)
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if !id.IsIdentity() || !id.Valid() {
		t.Fatalf("Identity(4) = %v", id)
	}
	if (Order{1, 0}).IsIdentity() {
		t.Error("non-identity reported as identity")
	}
}

func TestEncodeDecode(t *testing.T) {
	o := Order{2, 0, 1}
	src := Tuple{10, 20, 30}
	enc := o.Encoded(src)
	// dst[i] = src[o[i]]
	want := Tuple{30, 10, 20}
	if !Equal(enc, want) {
		t.Fatalf("Encoded = %v, want %v", enc, want)
	}
	dec := make(Tuple, 3)
	o.Decode(dec, enc)
	if !Equal(dec, src) {
		t.Fatalf("Decode(Encode(x)) = %v, want %v", dec, src)
	}
}

func TestInverse(t *testing.T) {
	o := Order{2, 0, 3, 1}
	inv := o.Inverse()
	for i := range o {
		if inv[o[i]] != i {
			t.Fatalf("inverse wrong: o=%v inv=%v", o, inv)
		}
	}
	// Encoding by o then by inverse restores the original.
	src := Tuple{1, 2, 3, 4}
	if got := inv.Encoded(o.Encoded(src)); !Equal(got, src) {
		t.Fatalf("inv∘o = %v, want %v", got, src)
	}
}

// TestQuickRoundTrip: Decode is the inverse of Encode for random permutations
// and tuples.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals [6]uint32, seed uint32) bool {
		// Build a permutation from the seed by repeated swaps.
		o := Identity(6)
		s := seed
		for i := 5; i > 0; i-- {
			s = s*1664525 + 1013904223
			j := int(s % uint32(i+1))
			o[i], o[j] = o[j], o[i]
		}
		if !o.Valid() {
			return false
		}
		src := Tuple(vals[:])
		enc := o.Encoded(src)
		dec := make(Tuple, 6)
		o.Decode(dec, enc)
		return Equal(dec, src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	if got := String(Tuple{1, 2}); got != "(1,2)" {
		t.Errorf("String = %q", got)
	}
	if got := (Order{1, 0}).String(); got != "[1 0]" {
		t.Errorf("Order.String = %q", got)
	}
}
