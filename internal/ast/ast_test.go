package ast

import (
	"strings"
	"testing"

	"sti/internal/value"
)

func TestDeclString(t *testing.T) {
	d := &RelationDecl{
		Name: "edge",
		Attrs: []Attr{
			{Name: "x", Type: value.Number},
			{Name: "s", Type: value.Symbol},
		},
		Rep: RepBrie,
	}
	want := ".decl edge(x:number, s:symbol) brie"
	if got := d.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	if d.Arity() != 2 {
		t.Fatalf("arity = %d", d.Arity())
	}
	types := d.AttrTypes()
	if len(types) != 2 || types[0] != value.Number || types[1] != value.Symbol {
		t.Fatalf("types = %v", types)
	}
}

func TestClauseString(t *testing.T) {
	c := &Clause{
		Head: &Atom{Name: "p", Args: []Expr{&Var{Name: "x"}}},
		Body: []Literal{
			&Atom{Name: "q", Args: []Expr{&Var{Name: "x"}, &Wildcard{}}},
			&Negation{Atom: &Atom{Name: "r", Args: []Expr{&Var{Name: "x"}}}},
			&Constraint{Op: CmpLT, L: &Var{Name: "x"}, R: &NumLit{Val: 5}},
		},
	}
	want := "p(x) :- q(x, _), !r(x), x < 5."
	if got := c.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	if c.IsFact() {
		t.Fatal("rule classified as fact")
	}
}

func TestExprStrings(t *testing.T) {
	tests := []struct {
		e    Expr
		want string
	}{
		{&NumLit{Val: -3}, "-3"},
		{&UnsignedLit{Val: 7}, "7u"},
		{&FloatLit{Val: 1.5}, "1.5"},
		{&FloatLit{Val: 2}, "2.0"},
		{&StrLit{Val: `a"b`}, `"a\"b"`},
		{&BinExpr{Op: OpAdd, L: &NumLit{Val: 1}, R: &NumLit{Val: 2}}, "(1 + 2)"},
		{&BinExpr{Op: OpBAnd, L: &Var{Name: "x"}, R: &NumLit{Val: 3}}, "(x band 3)"},
		{&UnExpr{Op: OpNeg, E: &Var{Name: "x"}}, "(-x)"},
		{&UnExpr{Op: OpBNot, E: &Var{Name: "x"}}, "bnot(x)"},
		{&Call{Name: "cat", Args: []Expr{&Var{Name: "a"}, &StrLit{Val: "!"}}}, `cat(a, "!")`},
		{&Aggregate{Kind: AggCount, Body: []Literal{&Atom{Name: "r", Args: []Expr{&Wildcard{}}}}}, "count : { r(_) }"},
		{&Aggregate{Kind: AggSum, Target: &Var{Name: "y"}, Body: []Literal{&Atom{Name: "r", Args: []Expr{&Var{Name: "y"}}}}}, "sum y : { r(y) }"},
	}
	for _, tc := range tests {
		if got := ExprString(tc.e); got != tc.want {
			t.Errorf("ExprString = %q, want %q", got, tc.want)
		}
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	c := &Clause{
		Head: &Atom{Name: "p", Args: []Expr{
			&BinExpr{Op: OpAdd, L: &Var{Name: "a"}, R: &NumLit{Val: 1}},
		}},
		Body: []Literal{
			&Atom{Name: "q", Args: []Expr{&Var{Name: "a"}}},
			&Constraint{Op: CmpEQ,
				L: &Var{Name: "n"},
				R: &Aggregate{Kind: AggSum, Target: &Var{Name: "y"},
					Body: []Literal{&Atom{Name: "r", Args: []Expr{&Var{Name: "y"}}}}},
			},
		},
	}
	vars := map[string]int{}
	c.Walk(func(e Expr) {
		if v, ok := e.(*Var); ok {
			vars[v.Name]++
		}
	})
	// a appears twice (head expr + body atom), n once, y twice (target +
	// aggregate body).
	if vars["a"] != 2 || vars["n"] != 1 || vars["y"] != 2 {
		t.Fatalf("vars = %v", vars)
	}
}

func TestProgramString(t *testing.T) {
	p := &Program{
		Decls: []*RelationDecl{
			{Name: "r", Attrs: []Attr{{Name: "x", Type: value.Number}}},
		},
		Directives: []*Directive{{Kind: DirInput, Rel: "r"}},
		Clauses: []*Clause{
			{Head: &Atom{Name: "r", Args: []Expr{&NumLit{Val: 1}}}},
		},
	}
	s := p.String()
	for _, want := range []string{".decl r(x:number)", ".input r", "r(1)."} {
		if !strings.Contains(s, want) {
			t.Fatalf("program string lacks %q:\n%s", want, s)
		}
	}
}

func TestOperatorNames(t *testing.T) {
	if OpAdd.String() != "+" || OpBShr.String() != "bshr" || OpLOr.String() != "lor" {
		t.Fatal("binary operator names wrong")
	}
	if OpNeg.String() != "-" || OpLNot.String() != "lnot" {
		t.Fatal("unary operator names wrong")
	}
	if CmpNE.String() != "!=" || CmpGE.String() != ">=" {
		t.Fatal("comparison names wrong")
	}
	if AggMax.String() != "max" {
		t.Fatal("aggregate names wrong")
	}
	if DirPrintSize.String() != ".printsize" {
		t.Fatal("directive names wrong")
	}
	if RepEqRel.String() != "eqrel" || RepDefault.String() != "" {
		t.Fatal("rep names wrong")
	}
}
