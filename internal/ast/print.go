package ast

import (
	"fmt"
	"strings"

	"sti/internal/value"
)

// String renders the program in (normalized) source syntax. The output
// re-parses to an equivalent program; golden tests rely on this.
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Decls {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	for _, d := range p.Directives {
		fmt.Fprintf(&b, "%s %s\n", d.Kind, d.Rel)
	}
	for _, c := range p.Clauses {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (d *RelationDecl) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".decl %s(", d.Name)
	for i, a := range d.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", a.Name, a.Type)
	}
	b.WriteByte(')')
	if d.Rep != RepDefault {
		b.WriteByte(' ')
		b.WriteString(d.Rep.String())
	}
	return b.String()
}

func (c *Clause) String() string {
	var b strings.Builder
	b.WriteString(c.Head.String())
	if len(c.Body) > 0 {
		b.WriteString(" :- ")
		for i, l := range c.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(LiteralString(l))
		}
	}
	b.WriteByte('.')
	return b.String()
}

// LiteralString renders a body literal.
func LiteralString(l Literal) string {
	switch l := l.(type) {
	case *Atom:
		return l.String()
	case *Negation:
		return "!" + l.Atom.String()
	case *Constraint:
		return fmt.Sprintf("%s %s %s", ExprString(l.L), l.Op, ExprString(l.R))
	default:
		return fmt.Sprintf("<%T>", l)
	}
}

func (a *Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Name)
	b.WriteByte('(')
	for i, e := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ExprString(e))
	}
	b.WriteByte(')')
	return b.String()
}

// ExprString renders an expression with full parenthesization.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *Var:
		return e.Name
	case *Wildcard:
		return "_"
	case *NumLit:
		return fmt.Sprintf("%d", e.Val)
	case *UnsignedLit:
		return fmt.Sprintf("%du", e.Val)
	case *FloatLit:
		s := fmt.Sprintf("%g", e.Val)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *StrLit:
		return fmt.Sprintf("%q", e.Val)
	case *BinExpr:
		if e.Op >= OpBAnd {
			return fmt.Sprintf("(%s %s %s)", ExprString(e.L), e.Op, ExprString(e.R))
		}
		return fmt.Sprintf("(%s %s %s)", ExprString(e.L), e.Op, ExprString(e.R))
	case *UnExpr:
		if e.Op == OpNeg {
			return fmt.Sprintf("(-%s)", ExprString(e.E))
		}
		return fmt.Sprintf("%s(%s)", e.Op, ExprString(e.E))
	case *Call:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	case *Aggregate:
		var b strings.Builder
		b.WriteString(e.Kind.String())
		if e.Target != nil {
			b.WriteByte(' ')
			b.WriteString(ExprString(e.Target))
		}
		b.WriteString(" : { ")
		for i, l := range e.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(LiteralString(l))
		}
		b.WriteString(" }")
		return b.String()
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// Walk applies fn to every expression in the clause (head and body),
// recursing into sub-expressions, including aggregate bodies.
func (c *Clause) Walk(fn func(Expr)) {
	for _, e := range c.Head.Args {
		WalkExpr(e, fn)
	}
	WalkLiterals(c.Body, fn)
}

// WalkLiterals applies fn to every expression under the given literals.
func WalkLiterals(lits []Literal, fn func(Expr)) {
	for _, l := range lits {
		switch l := l.(type) {
		case *Atom:
			for _, e := range l.Args {
				WalkExpr(e, fn)
			}
		case *Negation:
			for _, e := range l.Atom.Args {
				WalkExpr(e, fn)
			}
		case *Constraint:
			WalkExpr(l.L, fn)
			WalkExpr(l.R, fn)
		}
	}
}

// WalkExpr applies fn to e and all of its sub-expressions.
func WalkExpr(e Expr, fn func(Expr)) {
	fn(e)
	switch e := e.(type) {
	case *BinExpr:
		WalkExpr(e.L, fn)
		WalkExpr(e.R, fn)
	case *UnExpr:
		WalkExpr(e.E, fn)
	case *Call:
		for _, a := range e.Args {
			WalkExpr(a, fn)
		}
	case *Aggregate:
		if e.Target != nil {
			WalkExpr(e.Target, fn)
		}
		WalkLiterals(e.Body, fn)
	}
}

// AttrTypes returns the attribute types of a declaration.
func (d *RelationDecl) AttrTypes() []value.Type {
	ts := make([]value.Type, len(d.Attrs))
	for i, a := range d.Attrs {
		ts[i] = a.Type
	}
	return ts
}
