// Package ast defines the abstract syntax tree of the source language: the
// Soufflé-style Datalog dialect described in the paper's §2, with relations,
// facts, Horn rules, stratified negation, constraints, arithmetic and string
// functors, and aggregates.
package ast

import (
	"sti/internal/value"
)

// Pos is a source position (1-based).
type Pos struct {
	Line, Col int
}

// Program is a parsed source file.
type Program struct {
	Decls      []*RelationDecl
	Directives []*Directive
	Clauses    []*Clause
}

// Rep selects the data-structure portfolio entry for a relation.
type Rep uint8

// Relation representation qualifiers. Default means "engine's choice"
// (a B-tree).
const (
	RepDefault Rep = iota
	RepBTree
	RepBrie
	RepEqRel
)

func (r Rep) String() string {
	switch r {
	case RepBTree:
		return "btree"
	case RepBrie:
		return "brie"
	case RepEqRel:
		return "eqrel"
	default:
		return ""
	}
}

// RelationDecl is a .decl item: a relation name, its typed attributes, and
// an optional representation qualifier.
type RelationDecl struct {
	Name  string
	Attrs []Attr
	Rep   Rep
	Pos   Pos
}

// Arity is the number of attributes.
func (d *RelationDecl) Arity() int { return len(d.Attrs) }

// Attr is a named, typed relation attribute.
type Attr struct {
	Name string
	Type value.Type
}

// DirectiveKind distinguishes the I/O directives.
type DirectiveKind uint8

// The I/O directives.
const (
	DirInput DirectiveKind = iota
	DirOutput
	DirPrintSize
)

func (k DirectiveKind) String() string {
	switch k {
	case DirInput:
		return ".input"
	case DirOutput:
		return ".output"
	default:
		return ".printsize"
	}
}

// Directive is a .input/.output/.printsize item.
type Directive struct {
	Kind DirectiveKind
	Rel  string
	Pos  Pos
}

// Clause is a fact (empty body) or rule.
type Clause struct {
	Head *Atom
	Body []Literal
	Pos  Pos
}

// IsFact reports whether the clause has an empty body.
func (c *Clause) IsFact() bool { return len(c.Body) == 0 }

// Literal is a body element: a positive atom, a negated atom, or a
// constraint.
type Literal interface{ isLiteral() }

// Atom is a relation applied to argument expressions.
type Atom struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*Atom) isLiteral() {}

// Negation is a negated atom.
type Negation struct {
	Atom *Atom
}

func (*Negation) isLiteral() {}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (op CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[op]
}

// Constraint is a comparison between two expressions.
type Constraint struct {
	Op   CmpOp
	L, R Expr
	Pos  Pos
}

func (*Constraint) isLiteral() {}

// Expr is an argument or constraint operand.
type Expr interface{ isExpr() }

// Var is a named variable.
type Var struct {
	Name string
	Pos  Pos
}

// Wildcard is the anonymous variable "_".
type Wildcard struct {
	Pos Pos
}

// NumLit is a signed number literal.
type NumLit struct {
	Val int32
	Pos Pos
}

// UnsignedLit is an unsigned number literal (suffix "u").
type UnsignedLit struct {
	Val uint32
	Pos Pos
}

// FloatLit is a float literal.
type FloatLit struct {
	Val float32
	Pos Pos
}

// StrLit is a string (symbol) literal.
type StrLit struct {
	Val string
	Pos Pos
}

// BinOp is a binary functor.
type BinOp uint8

// Binary functors.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpBAnd
	OpBOr
	OpBXor
	OpBShl
	OpBShr
	OpLAnd
	OpLOr
)

func (op BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "%", "^", "band", "bor", "bxor", "bshl", "bshr", "land", "lor"}[op]
}

// BinExpr applies a binary functor.
type BinExpr struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// UnOp is a unary functor.
type UnOp uint8

// Unary functors.
const (
	OpNeg UnOp = iota
	OpBNot
	OpLNot
)

func (op UnOp) String() string {
	return [...]string{"-", "bnot", "lnot"}[op]
}

// UnExpr applies a unary functor.
type UnExpr struct {
	Op  UnOp
	E   Expr
	Pos Pos
}

// Call applies a named intrinsic functor (cat, strlen, substr, ord,
// to_number, to_string, min, max).
type Call struct {
	Name string
	Args []Expr
	Pos  Pos
}

// AggKind distinguishes aggregate operators.
type AggKind uint8

// Aggregate operators.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

func (k AggKind) String() string {
	return [...]string{"count", "sum", "min", "max"}[k]
}

// Aggregate is an aggregate expression, e.g. "sum y : { edge(x, y) }".
// Target is nil for count. Body literals may reference variables bound in
// the enclosing rule (those become loop-carried) plus local variables.
type Aggregate struct {
	Kind   AggKind
	Target Expr // nil for count
	Body   []Literal
	Pos    Pos
}

func (*Var) isExpr()         {}
func (*Wildcard) isExpr()    {}
func (*NumLit) isExpr()      {}
func (*UnsignedLit) isExpr() {}
func (*FloatLit) isExpr()    {}
func (*StrLit) isExpr()      {}
func (*BinExpr) isExpr()     {}
func (*UnExpr) isExpr()      {}
func (*Call) isExpr()        {}
func (*Aggregate) isExpr()   {}
