package ramopt

import (
	"sort"

	"sti/internal/ram"
	"sti/internal/tuple"
)

// pruneIndexes drops secondary index orders no search in the program uses,
// consulting the per-index usage facts the walk below collects from Main
// and Update together. The primary (index 0) is never pruned: full scans,
// merges, stores, and deterministic iteration all run over it.
//
// Pruning is performed per *swap group*: relations connected by SWAP
// statements (delta_R/new_R pairs) must keep identical order lists — the
// swap-shape invariant index selection established by mirroring delta's
// orders onto new — so an order is removed only when no member of the group
// uses it. Surviving searches are renumbered onto the compacted index list.
func pruneIndexes(p *ram.Program) {
	used := map[*ram.Relation]map[int]bool{}
	use := func(rel *ram.Relation, indexID int) {
		if rel == nil || indexID <= 0 {
			return
		}
		m := used[rel]
		if m == nil {
			m = map[int]bool{}
			used[rel] = m
		}
		m[indexID] = true
	}
	forEachSearch(p.Main, use)
	forEachSearch(p.Update, use)
	forEachSearch(p.Delete, use)

	// Union-find over swap statements groups relations whose order lists
	// must stay identical.
	parent := map[*ram.Relation]*ram.Relation{}
	var find func(r *ram.Relation) *ram.Relation
	find = func(r *ram.Relation) *ram.Relation {
		for parent[r] != nil && parent[r] != r {
			r = parent[r]
		}
		return r
	}
	union := func(a, b *ram.Relation) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	collectSwaps(p.Main, union)
	collectSwaps(p.Update, union)
	collectSwaps(p.Delete, union)

	groups := map[*ram.Relation][]*ram.Relation{}
	for _, r := range p.Relations {
		if r == nil || len(r.Orders) <= 1 {
			continue
		}
		root := r
		if parent[r] != nil {
			root = find(r)
		}
		groups[root] = append(groups[root], r)
	}

	remap := map[*ram.Relation][]int{} // old index → new index, -1 dropped
	for _, members := range groups {
		groupUsed := map[int]bool{}
		for _, r := range members {
			for id := range used[r] {
				groupUsed[id] = true
			}
		}
		n := len(members[0].Orders)
		uniform := true
		for _, r := range members {
			if len(r.Orders) != n {
				uniform = false
			}
		}
		if !uniform {
			continue // malformed swap group; leave it to the verifier
		}
		keep := []int{0}
		for id := 1; id < n; id++ {
			if groupUsed[id] {
				keep = append(keep, id)
			}
		}
		if len(keep) == n {
			continue
		}
		sort.Ints(keep)
		m := make([]int, n)
		for i := range m {
			m[i] = -1
		}
		for newID, oldID := range keep {
			m[oldID] = newID
		}
		for _, r := range members {
			orders := make([]tuple.Order, 0, len(keep))
			for _, oldID := range keep {
				orders = append(orders, r.Orders[oldID])
			}
			r.Orders = orders
			remap[r] = m
		}
	}
	if len(remap) == 0 {
		return
	}
	renumber := func(rel *ram.Relation, indexID int) int {
		m := remap[rel]
		if m == nil || indexID < 0 || indexID >= len(m) {
			return indexID
		}
		return m[indexID]
	}
	rewriteSearchIDs(p.Main, renumber)
	rewriteSearchIDs(p.Update, renumber)
	rewriteSearchIDs(p.Delete, renumber)
}

// forEachSearch visits every index-selecting site under s.
func forEachSearch(s ram.Statement, fn func(*ram.Relation, int)) {
	walkSearchSites(s, func(rel *ram.Relation, get func() int, _ func(int)) {
		fn(rel, get())
	})
}

// rewriteSearchIDs renumbers every index-selecting site under s.
func rewriteSearchIDs(s ram.Statement, renumber func(*ram.Relation, int) int) {
	walkSearchSites(s, func(rel *ram.Relation, get func() int, set func(int)) {
		set(renumber(rel, get()))
	})
}

// walkSearchSites visits every node carrying an IndexID (index scans and
// choices, existence checks, aggregates) with getter/setter accessors.
func walkSearchSites(s ram.Statement, visit func(rel *ram.Relation, get func() int, set func(int))) {
	var walkCond func(ram.Condition)
	walkCond = func(c ram.Condition) {
		switch c := c.(type) {
		case *ram.And:
			walkCond(c.L)
			walkCond(c.R)
		case *ram.Not:
			walkCond(c.C)
		case *ram.ExistenceCheck:
			visit(c.Rel, func() int { return c.IndexID }, func(id int) { c.IndexID = id })
		}
	}
	var walkOp func(ram.Operation)
	walkOp = func(o ram.Operation) {
		switch o := o.(type) {
		case *ram.Scan:
			walkOp(o.Nested)
		case *ram.IndexScan:
			visit(o.Rel, func() int { return o.IndexID }, func(id int) { o.IndexID = id })
			walkOp(o.Nested)
		case *ram.Choice:
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.IndexChoice:
			visit(o.Rel, func() int { return o.IndexID }, func(id int) { o.IndexID = id })
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.Filter:
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.Aggregate:
			if o.IndexID >= 0 {
				visit(o.Rel, func() int { return o.IndexID }, func(id int) { o.IndexID = id })
			}
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.Project:
		}
	}
	var walk func(ram.Statement)
	walk = func(s ram.Statement) {
		switch s := s.(type) {
		case *ram.Sequence:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ram.Loop:
			walk(s.Body)
		case *ram.Exit:
			walkCond(s.Cond)
		case *ram.Query:
			walkOp(s.Root)
		case *ram.LogTimer:
			walk(s.Stmt)
		}
	}
	if s != nil {
		walk(s)
	}
}

// collectSwaps calls union for every SWAP pair under s.
func collectSwaps(s ram.Statement, union func(a, b *ram.Relation)) {
	var walk func(ram.Statement)
	walk = func(s ram.Statement) {
		switch s := s.(type) {
		case *ram.Sequence:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ram.Loop:
			walk(s.Body)
		case *ram.Swap:
			if s.A != nil && s.B != nil {
				union(s.A, s.B)
			}
		case *ram.LogTimer:
			walk(s.Stmt)
		}
	}
	if s != nil {
		walk(s)
	}
}
