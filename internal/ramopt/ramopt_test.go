package ramopt_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sti/internal/ast2ram"
	"sti/internal/compile"
	"sti/internal/eio"
	"sti/internal/interp"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/ramopt"
	"sti/internal/sema"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

func build(t testing.TB, src string, optimize bool) (*ram.Program, *symtab.Table) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	st := symtab.New()
	rp, err := ast2ram.Translate(an, st)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if optimize {
		ramopt.Optimize(rp, st, ramopt.All())
	}
	return rp, st
}

func TestConstantFolding(t *testing.T) {
	rp, _ := build(t, `
.decl r(x:number)
.decl s(x:number, y:number)
r(1).
s(x, y) :- r(x), y = x + (2 * 3 - 1).
`, true)
	text := rp.String()
	// 2*3-1 folds; x+5 cannot (x is dynamic).
	if !strings.Contains(text, "add:number(t0.0, 5)") {
		t.Fatalf("constant folding missed:\n%s", text)
	}
}

func TestStringFolding(t *testing.T) {
	rp, st := build(t, `
.decl r(s:symbol)
.decl out(s:symbol, n:number)
r("x").
out(cat("a", "b"), strlen("abc") + 1) :- r(_).
`, true)
	text := rp.String()
	ab, ok := st.Lookup("ab")
	if !ok {
		t.Fatal("folded cat result not interned")
	}
	if !strings.Contains(text, "INSERT ("+itoa(int(ab))+", 4)") {
		t.Fatalf("string folding missed (ab=%d):\n%s", ab, text)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}

func TestDivisionNotFolded(t *testing.T) {
	rp, _ := build(t, `
.decl r(x:number)
.decl s(x:number)
r(1).
s(y) :- r(x), y = x + 4 / 2.
`, true)
	// 4/2 must stay dynamic to preserve error semantics uniformly.
	if !strings.Contains(rp.String(), "div:number(4, 2)") {
		t.Fatalf("division folded away:\n%s", rp.String())
	}
}

func TestFilterFusion(t *testing.T) {
	src := `
.decl e(x:number, y:number)
.decl out(x:number)
.input e
out(x) :- e(x, y), x > 1, y > 2, x != y.
`
	plain, _ := build(t, src, false)
	fused, _ := build(t, src, true)
	if strings.Count(plain.String(), "IF (") <= strings.Count(fused.String(), "IF (") {
		t.Fatalf("fusion did not reduce filter count:\nplain:\n%s\nfused:\n%s",
			plain.String(), fused.String())
	}
	if !strings.Contains(fused.String(), " AND ") {
		t.Fatalf("no conjunction formed:\n%s", fused.String())
	}
}

func TestChoiceConversion(t *testing.T) {
	// The witness y is only tested, never projected: the scan becomes a
	// choice. The negation keeps the program non-deletable so out carries
	// no support counts (counting targets must enumerate every witness).
	src := `
.decl e(x:number, y:number)
.decl node(x:number)
.decl skip(x:number)
.decl out(x:number)
.input e
.input node
.input skip
out(x) :- node(x), e(x, y), y > 10, !skip(x).
`
	rp, _ := build(t, src, true)
	text := rp.String()
	if !strings.Contains(text, "CHOICE") {
		t.Fatalf("no choice introduced:\n%s", text)
	}
}

func TestNoChoiceForCountingTarget(t *testing.T) {
	// Same shape as TestChoiceConversion but deletable: out is a counting
	// relation, so collapsing the witness scan to a choice would record one
	// support unit where each witness must contribute its own.
	src := `
.decl e(x:number, y:number)
.decl node(x:number)
.decl out(x:number)
.input e
.input node
out(x) :- node(x), e(x, y), y > 10.
`
	rp, _ := build(t, src, true)
	if rp.Delete == nil {
		t.Fatalf("program unexpectedly not deletable:\n%s", rp.String())
	}
	if strings.Contains(rp.String(), "CHOICE") {
		t.Fatalf("choice introduced for a counting target:\n%s", rp.String())
	}
}

func TestNoChoiceWhenTupleUsed(t *testing.T) {
	src := `
.decl e(x:number, y:number)
.decl out(x:number, y:number)
.input e
out(x, y) :- e(x, y), y > 10.
`
	rp, _ := build(t, src, true)
	if strings.Contains(rp.String(), "CHOICE") {
		t.Fatalf("choice introduced although the tuple is projected:\n%s", rp.String())
	}
}

// runAll executes a RAM program on all three in-process backends and
// returns each relation's sorted tuples.
func runAll(t *testing.T, rp *ram.Program, st *symtab.Table, facts map[string][]tuple.Tuple) map[string][]tuple.Tuple {
	t.Helper()
	mem := eio.NewMem()
	mem.Facts = facts
	eng := interp.New(rp, st, interp.DefaultConfig())
	if err := eng.Run(mem); err != nil {
		t.Fatalf("interp: %v", err)
	}
	out := map[string][]tuple.Tuple{}
	for _, rd := range rp.Relations {
		if rd.Aux {
			continue
		}
		ts, err := eng.Tuples(rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ts, func(i, j int) bool { return tuple.Compare(ts[i], ts[j]) < 0 })
		out[rd.Name] = ts
	}
	// Cross-check the compiled engine on the same (already optimized) RAM.
	m := compile.New(rp, st)
	mem2 := eio.NewMem()
	mem2.Facts = facts
	if err := m.Run(mem2); err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, rd := range rp.Relations {
		if rd.Aux {
			continue
		}
		ts, err := m.Tuples(rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ts, func(i, j int) bool { return tuple.Compare(ts[i], ts[j]) < 0 })
		a := out[rd.Name]
		if len(a) != len(ts) {
			t.Fatalf("backends disagree on optimized %s: %d vs %d", rd.Name, len(a), len(ts))
		}
		for i := range a {
			if tuple.Compare(a[i], ts[i]) != 0 {
				t.Fatalf("backends disagree on optimized %s at %d", rd.Name, i)
			}
		}
	}
	return out
}

// TestOptimizationPreservesSemantics: optimized and unoptimized programs
// compute identical relations on randomized inputs, across backends.
func TestOptimizationPreservesSemantics(t *testing.T) {
	src := `
.decl e(x:number, y:number)
.decl node(x:number)
.decl reach(x:number, y:number)
.decl hasBig(x:number)
.decl labeled(x:number, n:number)
.decl far(x:number)
.input e
node(x) :- e(x, _).
node(y) :- e(_, y).
reach(x, y) :- e(x, y).
reach(x, z) :- reach(x, y), e(y, z).
hasBig(x) :- node(x), e(x, y), y > 5, y != x.
labeled(x, n) :- node(x), n = x * 2 + 3 - 1.
far(x) :- node(x), !reach(0, x), x > 1 + 1.
`
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		n := 10 + trial*5
		facts := map[string][]tuple.Tuple{}
		for i := 0; i < 3*n; i++ {
			facts["e"] = append(facts["e"],
				tuple.Tuple{value.Value(rng.Intn(n)), value.Value(rng.Intn(n))})
		}
		rpPlain, stPlain := build(t, src, false)
		rpOpt, stOpt := build(t, src, true)
		plain := runAll(t, rpPlain, stPlain, facts)
		opt := runAll(t, rpOpt, stOpt, facts)
		for name, a := range plain {
			b := opt[name]
			if len(a) != len(b) {
				t.Fatalf("trial %d relation %s: %d vs %d tuples", trial, name, len(a), len(b))
			}
			for i := range a {
				if tuple.Compare(a[i], b[i]) != 0 {
					t.Fatalf("trial %d relation %s differs at %d: %v vs %v", trial, name, i, a[i], b[i])
				}
			}
		}
	}
}

// TestOptimizedSynthesis: the Go emitter accepts choice-optimized RAM.
func TestOptimizedEmit(t *testing.T) {
	rp, st := build(t, `
.decl e(x:number, y:number)
.decl node(x:number)
.decl out(x:number)
.input e
.input node
.output out
out(x) :- node(x), e(x, y), y > 10.
`, true)
	if !strings.Contains(rp.String(), "CHOICE") {
		t.Skip("no choice generated; nothing to cover")
	}
	// Emission must succeed and include a break-based early exit.
	src, err := emitForTest(rp, st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "break") {
		t.Fatalf("choice emission lacks early exit:\n%s", src)
	}
}
