package ramopt

import (
	"sti/internal/ram"
	"sti/internal/ram/analysis"
)

// deadCode eliminates relations and statements whose results cannot reach
// an IO sink, using the liveness facts of internal/ram/analysis. The pass:
//
//   - removes queries whose insert target is dead, merges into dead
//     destinations, swaps and clears of dead scratch relations;
//   - removes fixpoint loops left without any derivation (their exit fires
//     on the first iteration, so they were already no-ops);
//   - prunes loop-exit conjuncts over dead aux relations (which have no
//     remaining writers and therefore stay empty);
//   - drops the declarations of relations no statement references anymore,
//     renumbering IDs and BaseIDs.
//
// IO statements are never removed — loads and stores are observable side
// effects (a missing fact file must still fail) — and Main and Update are
// rewritten together so both entry points agree on the surviving relations.
// Programs without any IO sink are left untouched: they are observable only
// through engine queries, where every relation is a sink.
func deadCode(p *ram.Program) {
	f := analysis.Analyze(p)
	if !f.HasSinks() {
		return
	}
	p.Main = elimStmt(p.Main, f)
	if p.Main == nil {
		p.Main = &ram.Sequence{}
	}
	if p.Update != nil {
		p.Update = elimStmt(p.Update, f)
		if p.Update == nil {
			// An update program can become empty (nothing live to maintain)
			// but must stay non-nil: its existence is the incremental
			// capability contract.
			p.Update = &ram.Sequence{}
		}
	}
	if p.Delete != nil {
		p.Delete = elimStmt(p.Delete, f)
		if p.Delete == nil {
			// Same contract as Update: an existing delete entry point means
			// the program is deletable, even when nothing live remains.
			p.Delete = &ram.Sequence{}
		}
	}
	compactRelations(p)
}

// elimStmt rewrites one statement tree, returning nil when the statement is
// dead in its entirety.
func elimStmt(s ram.Statement, f *analysis.Facts) ram.Statement {
	switch s := s.(type) {
	case *ram.Sequence:
		var out []ram.Statement
		for _, st := range s.Stmts {
			if st == nil {
				continue
			}
			if kept := elimStmt(st, f); kept != nil {
				out = append(out, kept)
			}
		}
		if len(out) == 0 {
			return nil
		}
		s.Stmts = out
		return s
	case *ram.Loop:
		body := elimStmt(s.Body, f)
		if body == nil || !hasEffect(body) {
			// Every derivation inside the loop was dead: the exit condition
			// fires on the first iteration, so the loop is a no-op.
			return nil
		}
		s.Body = body
		return s
	case *ram.Exit:
		if pruned := pruneExitCond(s.Cond, f); pruned != nil {
			s.Cond = pruned
		}
		return s
	case *ram.Query:
		_, writes := analysis.QueryEffects(s)
		if len(writes) == 0 {
			return s
		}
		for rel := range writes {
			if f.Live(rel) {
				return s
			}
		}
		return nil
	case *ram.Clear:
		if s.Rel != nil && !f.Live(s.Rel) {
			return nil
		}
		return s
	case *ram.Swap:
		if s.A != nil && s.B != nil && !f.Live(s.A) && !f.Live(s.B) {
			return nil
		}
		return s
	case *ram.Merge:
		if s.Dst != nil && !f.Live(s.Dst) {
			return nil
		}
		return s
	case *ram.Subtract:
		if s.Dst != nil && !f.Live(s.Dst) {
			return nil
		}
		return s
	case *ram.CountMerge:
		if s.Dst != nil && s.Fresh != nil && !f.Live(s.Dst) && !f.Live(s.Fresh) {
			return nil
		}
		return s
	case *ram.CountDelete:
		if s.Dst != nil && s.Gone != nil && !f.Live(s.Dst) && !f.Live(s.Gone) {
			return nil
		}
		return s
	case *ram.LogTimer:
		inner := elimStmt(s.Stmt, f)
		if inner == nil {
			return nil
		}
		s.Stmt = inner
		return s
	default: // IO and anything unknown: keep.
		return s
	}
}

// hasEffect reports whether a statement tree contains anything beyond
// control flow — a loop whose body is exit-only derives nothing.
func hasEffect(s ram.Statement) bool {
	switch s := s.(type) {
	case *ram.Sequence:
		for _, st := range s.Stmts {
			if hasEffect(st) {
				return true
			}
		}
		return false
	case *ram.Loop:
		return hasEffect(s.Body)
	case *ram.LogTimer:
		return hasEffect(s.Stmt)
	case *ram.Exit, nil:
		return false
	default:
		return true
	}
}

// pruneExitCond drops emptiness conjuncts over dead aux relations. A dead
// aux relation has no surviving writer (kept queries insert only into live
// relations, and aux relations are never loaded), so its emptiness check is
// constantly true. Returns nil when nothing can be pruned or pruning would
// empty the condition.
func pruneExitCond(c ram.Condition, f *analysis.Facts) ram.Condition {
	removable := func(c ram.Condition) bool {
		e, ok := c.(*ram.EmptinessCheck)
		return ok && e.Rel != nil && e.Rel.Aux && !f.Live(e.Rel)
	}
	var prune func(c ram.Condition) ram.Condition
	prune = func(c ram.Condition) ram.Condition {
		if and, ok := c.(*ram.And); ok {
			l, r := prune(and.L), prune(and.R)
			switch {
			case l == nil:
				return r
			case r == nil:
				return l
			default:
				and.L, and.R = l, r
				return and
			}
		}
		if removable(c) {
			return nil
		}
		return c
	}
	return prune(c)
}

// compactRelations drops declarations no surviving statement references and
// renumbers IDs/BaseIDs. Bases of kept aux relations are kept too (the
// verifier requires every aux to shadow a declared base).
func compactRelations(p *ram.Program) {
	referenced := map[*ram.Relation]bool{}
	mark := func(r *ram.Relation) {
		if r != nil {
			referenced[r] = true
		}
	}
	markStmtRels(p.Main, mark)
	if p.Update != nil {
		markStmtRels(p.Update, mark)
	}
	if p.Delete != nil {
		markStmtRels(p.Delete, mark)
	}
	// Close over bases so kept aux relations keep their shadowed source.
	for _, r := range p.Relations {
		if r != nil && referenced[r] && r.Aux && r.BaseID >= 0 && r.BaseID < len(p.Relations) {
			mark(p.Relations[r.BaseID])
		}
	}
	if len(referenced) == len(p.Relations) {
		return
	}
	oldBase := make(map[*ram.Relation]*ram.Relation, len(p.Relations))
	for _, r := range p.Relations {
		if r != nil && r.BaseID >= 0 && r.BaseID < len(p.Relations) {
			oldBase[r] = p.Relations[r.BaseID]
		}
	}
	var kept []*ram.Relation
	newID := map[*ram.Relation]int{}
	for _, r := range p.Relations {
		if r != nil && referenced[r] {
			newID[r] = len(kept)
			kept = append(kept, r)
		}
	}
	for _, r := range kept {
		r.ID = newID[r]
		if base, ok := newID[oldBase[r]]; ok {
			r.BaseID = base
		} else {
			r.BaseID = r.ID
		}
	}
	p.Relations = kept
}

// markStmtRels calls mark for every relation referenced anywhere under s.
func markStmtRels(s ram.Statement, mark func(*ram.Relation)) {
	var walkCond func(ram.Condition)
	walkCond = func(c ram.Condition) {
		switch c := c.(type) {
		case *ram.And:
			walkCond(c.L)
			walkCond(c.R)
		case *ram.Not:
			walkCond(c.C)
		case *ram.EmptinessCheck:
			mark(c.Rel)
		case *ram.ExistenceCheck:
			mark(c.Rel)
		}
	}
	var walkOp func(ram.Operation)
	walkOp = func(o ram.Operation) {
		switch o := o.(type) {
		case *ram.Scan:
			mark(o.Rel)
			walkOp(o.Nested)
		case *ram.IndexScan:
			mark(o.Rel)
			walkOp(o.Nested)
		case *ram.Choice:
			mark(o.Rel)
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.IndexChoice:
			mark(o.Rel)
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.Filter:
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.Project:
			mark(o.Rel)
		case *ram.Aggregate:
			mark(o.Rel)
			walkCond(o.Cond)
			walkOp(o.Nested)
		}
	}
	var walk func(ram.Statement)
	walk = func(s ram.Statement) {
		switch s := s.(type) {
		case *ram.Sequence:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ram.Loop:
			walk(s.Body)
		case *ram.Exit:
			walkCond(s.Cond)
		case *ram.Query:
			walkOp(s.Root)
		case *ram.Clear:
			mark(s.Rel)
		case *ram.Swap:
			mark(s.A)
			mark(s.B)
		case *ram.Merge:
			mark(s.Dst)
			mark(s.Src)
		case *ram.Subtract:
			mark(s.Dst)
			mark(s.Src)
		case *ram.CountMerge:
			mark(s.Dst)
			mark(s.Src)
			mark(s.Fresh)
		case *ram.CountDelete:
			mark(s.Dst)
			mark(s.Src)
			mark(s.Gone)
		case *ram.IO:
			mark(s.Rel)
		case *ram.LogTimer:
			walk(s.Stmt)
		}
	}
	if s != nil {
		walk(s)
	}
}
