package ramopt_test

import (
	"sort"
	"testing"

	"sti/internal/bench"
	"sti/internal/eio"
	"sti/internal/interp"
	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/ramopt"
	"sti/internal/symtab"
	"sti/internal/tuple"
)

// deadSrc derives into scratch relations nothing observable reads: the
// scratch rules (one of them recursive, so it owns a fixpoint loop and a
// delta/new pair) must vanish under dead code elimination while the
// reachable output stays bit-identical.
const deadSrc = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl scratch(x:number)
.decl ring(x:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
scratch(x) :- edge(x, _).
ring(x) :- edge(x, _).
ring(x) :- ring(x), scratch(x).
`

func TestDeadCodeRemovesUnreachableRelations(t *testing.T) {
	plain, _ := build(t, deadSrc, false)
	opt, stOpt := build(t, deadSrc, true)
	if err := verify.Check(opt, "deadcode-test"); err != nil {
		t.Fatalf("optimized program fails verification: %v", err)
	}
	if len(opt.Relations) >= len(plain.Relations) {
		t.Fatalf("dead code kept all %d relations (plain has %d)",
			len(opt.Relations), len(plain.Relations))
	}
	for _, r := range opt.Relations {
		switch r.Name {
		case "scratch", "ring", "delta_ring", "new_ring":
			t.Fatalf("dead relation %s survived", r.Name)
		}
	}
	// IDs must be dense and match declaration order after renumbering.
	for i, r := range opt.Relations {
		if r.ID != i {
			t.Fatalf("relation %s has ID %d at index %d", r.Name, r.ID, i)
		}
	}
	facts := map[string][]tuple.Tuple{
		"edge": {{1, 2}, {2, 3}, {3, 1}, {4, 4}},
	}
	want := runProg(t, plain, symtabFor(t, deadSrc), facts, "path")
	got := runProg(t, opt, stOpt, facts, "path")
	if len(want) != len(got) {
		t.Fatalf("path differs: %d vs %d tuples", len(want), len(got))
	}
	for i := range want {
		if tuple.Compare(want[i], got[i]) != 0 {
			t.Fatalf("path differs at %d: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestDeadCodeSkipsSinklessPrograms(t *testing.T) {
	// Without IO sinks every relation is observable only through engine
	// queries, so nothing may be removed.
	src := `
.decl a(x:number)
.decl b(x:number)
b(x) :- a(x).
`
	plain, _ := build(t, src, false)
	opt, _ := build(t, src, true)
	if len(opt.Relations) != len(plain.Relations) {
		t.Fatalf("sinkless program shrank: %d -> %d relations",
			len(plain.Relations), len(opt.Relations))
	}
}

// pruneSrc searches edge on its first column, keeping the primary order
// busy; the pruning test grafts a phantom secondary order onto edge and
// checks it is dropped.
const pruneSrc = `
.decl edge(x:number, y:number)
.decl back(x:number, y:number)
.input edge
.output back
back(y, x) :- edge(x, y), edge(y, _).
`

func TestPruneIndexesDropsUnusedOrders(t *testing.T) {
	// Build with every pass except pruning, then prune manually after
	// grafting an extra unused order onto edge.
	opts := ramopt.All()
	opts.PruneIndexes = false
	prog, st := build(t, pruneSrc, false)
	ramopt.Optimize(prog, st, opts)
	var edge *ram.Relation
	for _, r := range prog.Relations {
		if r.Name == "edge" {
			edge = r
		}
	}
	if edge == nil {
		t.Fatal("no edge relation")
	}
	if len(edge.Orders) == 0 {
		t.Skip("no explicit orders on edge; nothing to prune")
	}
	// Graft a phantom secondary order no search references.
	phantom := make(tuple.Order, len(edge.Orders[0]))
	for i := range phantom {
		phantom[i] = len(phantom) - 1 - i
	}
	edge.Orders = append(edge.Orders, phantom)
	before := len(edge.Orders)
	ramopt.Optimize(prog, st, ramopt.Options{PruneIndexes: true})
	if len(edge.Orders) >= before {
		t.Fatalf("unused order not pruned: %d -> %d", before, len(edge.Orders))
	}
	if err := verify.Check(prog, "pruneindex-test"); err != nil {
		t.Fatalf("pruned program fails verification: %v", err)
	}
}

func TestOptimizeStatsReportShrink(t *testing.T) {
	prog, st := build(t, deadSrc, false)
	s := ramopt.OptimizeStats(prog, st, ramopt.All())
	if !s.Changed() {
		t.Fatalf("stats report no change on a program with dead relations: %s", s)
	}
	if s.RelationsAfter >= s.RelationsBefore {
		t.Fatalf("relations did not shrink: %s", s)
	}
	if s.StatementsAfter >= s.StatementsBefore {
		t.Fatalf("statements did not shrink: %s", s)
	}
}

// TestPassesPreserveIOOnBenchSuites: for every Table 1 and Small-scale
// suite workload, the fully optimized program produces byte-identical IO
// (stored tuples and printed sizes) to the unoptimized one.
func TestPassesPreserveIOOnBenchSuites(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite comparison in -short mode")
	}
	workloads := append(bench.Table1Suite(), bench.Suites(bench.Small)...)
	for _, w := range workloads {
		w := w
		t.Run(w.FullName(), func(t *testing.T) {
			plain, stPlain, err := w.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			opt, stOpt, err := w.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ramopt.Optimize(opt, stOpt, ramopt.All())
			if err := verify.Check(opt, "bench-opt"); err != nil {
				t.Fatalf("optimized program fails verification: %v", err)
			}
			a := execIO(t, plain, stPlain, w.NewIO())
			b := execIO(t, opt, stOpt, w.NewIO())
			compareIO(t, a, b)
		})
	}
}

func execIO(t *testing.T, prog *ram.Program, st *symtab.Table, io *eio.Mem) *eio.Mem {
	t.Helper()
	eng := interp.New(prog, st, interp.DefaultConfig())
	if err := eng.Run(io); err != nil {
		t.Fatalf("run: %v", err)
	}
	return io
}

func compareIO(t *testing.T, a, b *eio.Mem) {
	t.Helper()
	if len(a.Out) != len(b.Out) {
		t.Fatalf("output relation sets differ: %d vs %d", len(a.Out), len(b.Out))
	}
	for name, ta := range a.Out {
		tb, ok := b.Out[name]
		if !ok {
			t.Fatalf("optimized run lacks output %s", name)
		}
		sa, sb := sortedCopy(ta), sortedCopy(tb)
		if len(sa) != len(sb) {
			t.Fatalf("output %s differs: %d vs %d tuples", name, len(sa), len(sb))
		}
		for i := range sa {
			if tuple.Compare(sa[i], sb[i]) != 0 {
				t.Fatalf("output %s differs at %d: %v vs %v", name, i, sa[i], sb[i])
			}
		}
	}
	if len(a.Sizes) != len(b.Sizes) {
		t.Fatalf("printsize sets differ: %d vs %d", len(a.Sizes), len(b.Sizes))
	}
	for name, na := range a.Sizes {
		if nb, ok := b.Sizes[name]; !ok || na != nb {
			t.Fatalf("printsize %s differs: %d vs %d (present %v)", name, na, nb, ok)
		}
	}
}

func sortedCopy(ts []tuple.Tuple) []tuple.Tuple {
	out := make([]tuple.Tuple, len(ts))
	copy(out, ts)
	sort.Slice(out, func(i, j int) bool { return tuple.Compare(out[i], out[j]) < 0 })
	return out
}

// runProg executes prog and returns rel's sorted tuples.
func runProg(t *testing.T, prog *ram.Program, st *symtab.Table, facts map[string][]tuple.Tuple, rel string) []tuple.Tuple {
	t.Helper()
	io := eio.NewMem()
	io.Facts = facts
	eng := interp.New(prog, st, interp.DefaultConfig())
	if err := eng.Run(io); err != nil {
		t.Fatalf("run: %v", err)
	}
	ts, err := eng.Tuples(rel)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ts, func(i, j int) bool { return tuple.Compare(ts[i], ts[j]) < 0 })
	return ts
}

// symtabFor rebuilds a fresh symbol table by re-translating src (the plain
// build's table, unaffected by optimization).
func symtabFor(t *testing.T, src string) *symtab.Table {
	t.Helper()
	_, st := build(t, src, false)
	return st
}
