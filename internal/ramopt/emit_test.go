package ramopt_test

import (
	"sti/internal/codegen"
	"sti/internal/ram"
	"sti/internal/symtab"
)

func emitForTest(rp *ram.Program, st *symtab.Table) (string, error) {
	src, err := codegen.Emit(rp, st)
	return string(src), err
}
