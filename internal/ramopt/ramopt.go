// Package ramopt implements optional RAM-to-RAM optimization passes, the
// kind of pre-runtime optimization the paper locates at the RAM level (§2).
// All passes preserve the program's least fixpoint exactly; they are opt-in
// (the benchmark figures measure the unoptimized translation, matching the
// paper's setup).
//
// Passes:
//
//   - constant folding: intrinsic sub-expressions over constants are
//     evaluated at optimization time (including string functors through the
//     symbol table);
//   - filter fusion: chains of nested filters collapse into one filter with
//     a conjunction, removing interpreter dispatches per level;
//   - choice conversion: a scan whose bound tuple is referenced only by the
//     immediately following filters — not by the projection or any deeper
//     operation — only needs *one* witness, so it becomes a (index) choice
//     that stops at the first match;
//   - dead code elimination: statements and relations whose results cannot
//     reach an IO sink are removed, driven by the liveness facts of
//     internal/ram/analysis (see deadcode.go);
//   - index pruning: secondary index orders no search uses are dropped,
//     respecting swap groups (see pruneindex.go).
//
// The first three are peephole passes over Main; the last two are
// analysis-gated whole-program passes that rewrite Main and Update
// together. Dead code elimination assumes IO statements are the only
// observable outputs — callers that keep relations queryable after the run
// (the embedding API, resident databases) must use Queryable() instead of
// All().
package ramopt

import (
	"fmt"

	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/rtl"
	"sti/internal/symtab"
	"sti/internal/value"
)

// Options selects passes.
type Options struct {
	FoldConstants bool
	FuseFilters   bool
	Choices       bool
	// DeadCode removes statements and relations that cannot reach an IO
	// sink. Only sound when IO is the program's sole observable interface.
	DeadCode bool
	// PruneIndexes drops secondary index orders no search uses.
	PruneIndexes bool
}

// All enables every pass, including dead code elimination — appropriate
// when the program's outputs are exactly its IO statements (the CLI -O
// paths).
func All() Options {
	return Options{FoldConstants: true, FuseFilters: true, Choices: true, DeadCode: true, PruneIndexes: true}
}

// Queryable enables every pass that preserves the queryability of all
// relations: everything except dead code elimination. Embedders that read
// arbitrary relations after the run (sti.Result, resident databases) must
// use this set.
func Queryable() Options {
	o := All()
	o.DeadCode = false
	return o
}

// Stats reports the program shrink achieved by the analysis-gated passes.
type Stats struct {
	StatementsBefore, StatementsAfter int
	IndexesBefore, IndexesAfter       int
	RelationsBefore, RelationsAfter   int
}

// Changed reports whether any dimension shrank.
func (s Stats) Changed() bool {
	return s.StatementsAfter < s.StatementsBefore ||
		s.IndexesAfter < s.IndexesBefore ||
		s.RelationsAfter < s.RelationsBefore
}

func (s Stats) String() string {
	return fmt.Sprintf("statements %d->%d, indexes %d->%d, relations %d->%d",
		s.StatementsBefore, s.StatementsAfter,
		s.IndexesBefore, s.IndexesAfter,
		s.RelationsBefore, s.RelationsAfter)
}

// Optimize rewrites the program in place. In ramverify debug mode the
// rewritten program is re-verified and a violated invariant panics with a
// *verify.Error naming the offending node — an optimizer bug is a
// programming error, not a user error.
func Optimize(p *ram.Program, st *symtab.Table, opts Options) {
	OptimizeStats(p, st, opts)
}

// OptimizeStats is Optimize returning the before/after program shrink, for
// callers that report it (sti vet -O).
func OptimizeStats(p *ram.Program, st *symtab.Table, opts Options) Stats {
	s := Stats{
		StatementsBefore: countStmts(p),
		IndexesBefore:    countIndexes(p),
		RelationsBefore:  len(p.Relations),
	}
	o := &optimizer{st: st, opts: opts}
	p.Main = o.stmt(p.Main)
	if opts.DeadCode {
		deadCode(p)
	}
	if opts.PruneIndexes {
		pruneIndexes(p)
	}
	s.StatementsAfter = countStmts(p)
	s.IndexesAfter = countIndexes(p)
	s.RelationsAfter = len(p.Relations)
	if verify.Debugging() {
		if err := verify.Check(p, "ramopt"); err != nil {
			panic(err)
		}
	}
	return s
}

// countStmts counts executable statements (everything except the Sequence
// and LogTimer wrappers) across Main, Update, and Delete.
func countStmts(p *ram.Program) int {
	n := 0
	var walk func(ram.Statement)
	walk = func(s ram.Statement) {
		switch s := s.(type) {
		case *ram.Sequence:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ram.Loop:
			n++
			walk(s.Body)
		case *ram.LogTimer:
			walk(s.Stmt)
		case nil:
		default:
			n++
		}
	}
	walk(p.Main)
	walk(p.Update)
	walk(p.Delete)
	return n
}

// countIndexes sums the index orders backing each relation (at least one:
// relations without explicit orders have an implicit identity primary).
func countIndexes(p *ram.Program) int {
	n := 0
	for _, r := range p.Relations {
		if r != nil {
			n += max(len(r.Orders), 1)
		}
	}
	return n
}

type optimizer struct {
	st   *symtab.Table
	opts Options
}

func (o *optimizer) stmt(s ram.Statement) ram.Statement {
	switch s := s.(type) {
	case *ram.Sequence:
		for i, st := range s.Stmts {
			s.Stmts[i] = o.stmt(st)
		}
		return s
	case *ram.Loop:
		s.Body = o.stmt(s.Body)
		return s
	case *ram.Exit:
		s.Cond = o.cond(s.Cond)
		return s
	case *ram.Query:
		s.Root = o.op(s.Root)
		return s
	case *ram.LogTimer:
		s.Stmt = o.stmt(s.Stmt)
		return s
	default:
		return s
	}
}

func (o *optimizer) op(op ram.Operation) ram.Operation {
	switch op := op.(type) {
	case *ram.Scan:
		op.Nested = o.op(op.Nested)
		if o.opts.Choices {
			if cond, inner, ok := o.choiceBody(op.TupleID, op.Nested); ok {
				return &ram.Choice{Rel: op.Rel, Cond: cond, TupleID: op.TupleID, Nested: inner}
			}
		}
		return op
	case *ram.IndexScan:
		o.foldPattern(op.Pattern)
		op.Nested = o.op(op.Nested)
		if o.opts.Choices {
			if cond, inner, ok := o.choiceBody(op.TupleID, op.Nested); ok {
				return &ram.IndexChoice{
					Rel: op.Rel, IndexID: op.IndexID, Pattern: op.Pattern,
					Cond: cond, TupleID: op.TupleID, Nested: inner,
				}
			}
		}
		return op
	case *ram.Choice:
		op.Cond = o.cond(op.Cond)
		op.Nested = o.op(op.Nested)
		return op
	case *ram.IndexChoice:
		o.foldPattern(op.Pattern)
		op.Cond = o.cond(op.Cond)
		op.Nested = o.op(op.Nested)
		return op
	case *ram.Filter:
		op.Cond = o.cond(op.Cond)
		op.Nested = o.op(op.Nested)
		if o.opts.FuseFilters {
			if inner, ok := op.Nested.(*ram.Filter); ok {
				return o.op(&ram.Filter{
					Cond:   &ram.And{L: op.Cond, R: inner.Cond},
					Nested: inner.Nested,
				})
			}
		}
		return op
	case *ram.Project:
		for i, e := range op.Exprs {
			op.Exprs[i] = o.expr(e)
		}
		return op
	case *ram.Aggregate:
		o.foldPattern(op.Pattern)
		if op.Cond != nil {
			op.Cond = o.cond(op.Cond)
		}
		if op.Target != nil {
			op.Target = o.expr(op.Target)
		}
		op.Nested = o.op(op.Nested)
		return op
	default:
		return op
	}
}

// choiceBody recognizes the choice-convertible shape under a scan binding
// tid: an optional cascade of filters (which may read tid) ending in an
// operation that never reads tid. Returns the merged filter condition (nil
// when there were no filters) and that final operation.
func (o *optimizer) choiceBody(tid int, nested ram.Operation) (ram.Condition, ram.Operation, bool) {
	var cond ram.Condition
	cur := nested
	for {
		f, ok := cur.(*ram.Filter)
		if !ok {
			break
		}
		if cond == nil {
			cond = f.Cond
		} else {
			cond = &ram.And{L: cond, R: f.Cond}
		}
		cur = f.Nested
	}
	// Only a terminal projection qualifies: deeper scans re-enter the loop
	// structure and their iteration counts depend on every witness.
	proj, ok := cur.(*ram.Project)
	if !ok {
		return nil, nil, false
	}
	// Counting targets record one support unit per witness, so collapsing
	// the scan to its first match would corrupt the counts.
	if proj.Rel != nil && proj.Rel.Counting {
		return nil, nil, false
	}
	if opReadsTuple(proj, tid) {
		return nil, nil, false
	}
	return cond, proj, true
}

// opReadsTuple reports whether any expression under op reads tuple tid.
func opReadsTuple(op ram.Operation, tid int) bool {
	found := false
	walkOpExprs(op, func(e ram.Expr) {
		if readsTuple(e, tid) {
			found = true
		}
	})
	return found
}

func walkOpExprs(op ram.Operation, fn func(ram.Expr)) {
	switch op := op.(type) {
	case *ram.Project:
		for _, e := range op.Exprs {
			fn(e)
		}
	case *ram.Filter:
		walkCondExprs(op.Cond, fn)
		walkOpExprs(op.Nested, fn)
	case *ram.Scan:
		walkOpExprs(op.Nested, fn)
	case *ram.IndexScan:
		for _, e := range op.Pattern {
			if e != nil {
				fn(e)
			}
		}
		walkOpExprs(op.Nested, fn)
	case *ram.Choice:
		walkCondExprs(op.Cond, fn)
		walkOpExprs(op.Nested, fn)
	case *ram.IndexChoice:
		for _, e := range op.Pattern {
			if e != nil {
				fn(e)
			}
		}
		walkCondExprs(op.Cond, fn)
		walkOpExprs(op.Nested, fn)
	case *ram.Aggregate:
		for _, e := range op.Pattern {
			if e != nil {
				fn(e)
			}
		}
		if op.Cond != nil {
			walkCondExprs(op.Cond, fn)
		}
		if op.Target != nil {
			fn(op.Target)
		}
		walkOpExprs(op.Nested, fn)
	}
}

func walkCondExprs(c ram.Condition, fn func(ram.Expr)) {
	switch c := c.(type) {
	case *ram.And:
		walkCondExprs(c.L, fn)
		walkCondExprs(c.R, fn)
	case *ram.Not:
		walkCondExprs(c.C, fn)
	case *ram.ExistenceCheck:
		for _, e := range c.Pattern {
			if e != nil {
				fn(e)
			}
		}
	case *ram.Constraint:
		fn(c.L)
		fn(c.R)
	}
}

func readsTuple(e ram.Expr, tid int) bool {
	switch e := e.(type) {
	case *ram.TupleElement:
		return e.TupleID == tid
	case *ram.Intrinsic:
		for _, a := range e.Args {
			if readsTuple(a, tid) {
				return true
			}
		}
	}
	return false
}

func (o *optimizer) foldPattern(pattern []ram.Expr) {
	for i, e := range pattern {
		if e != nil {
			pattern[i] = o.expr(e)
		}
	}
}

func (o *optimizer) cond(c ram.Condition) ram.Condition {
	switch c := c.(type) {
	case *ram.And:
		c.L = o.cond(c.L)
		c.R = o.cond(c.R)
		return c
	case *ram.Not:
		c.C = o.cond(c.C)
		return c
	case *ram.ExistenceCheck:
		o.foldPattern(c.Pattern)
		return c
	case *ram.Constraint:
		c.L = o.expr(c.L)
		c.R = o.expr(c.R)
		return c
	default:
		return c
	}
}

// expr folds constant intrinsic applications. Operators with failure cases
// (division, modulo, to_number) are never folded so that runtime errors
// keep their runtime semantics.
func (o *optimizer) expr(e ram.Expr) ram.Expr {
	in, ok := e.(*ram.Intrinsic)
	if !ok {
		return e
	}
	allConst := true
	for i, a := range in.Args {
		in.Args[i] = o.expr(a)
		if _, isConst := in.Args[i].(*ram.Constant); !isConst {
			allConst = false
		}
	}
	if !o.opts.FoldConstants || !allConst || !foldable(in.Op) {
		return in
	}
	args := make([]value.Value, len(in.Args))
	for i, a := range in.Args {
		args[i] = a.(*ram.Constant).Val
	}
	return &ram.Constant{Val: o.evalConst(in, args)}
}

func foldable(op ram.IntrinsicOp) bool {
	switch op {
	case ram.OpDiv, ram.OpMod, ram.OpToNumber:
		return false
	default:
		return true
	}
}

func (o *optimizer) evalConst(in *ram.Intrinsic, args []value.Value) value.Value {
	switch in.Op {
	case ram.OpNeg:
		return rtl.Neg(in.Type, args[0])
	case ram.OpBNot:
		return rtl.BNot(in.Type, args[0])
	case ram.OpLNot:
		return rtl.LNot(args[0])
	case ram.OpCat:
		return rtl.Cat(o.st, args...)
	case ram.OpStrlen:
		return rtl.Strlen(o.st, args[0])
	case ram.OpSubstr:
		return rtl.Substr(o.st, args[0], args[1], args[2])
	case ram.OpOrd:
		return args[0]
	case ram.OpToString:
		return rtl.ToString(o.st, args[0])
	case ram.OpMin, ram.OpMax:
		acc := args[0]
		for _, a := range args[1:] {
			acc = rtl.Arith(in.Op, in.Type, acc, a)
		}
		return acc
	default:
		return rtl.Arith(in.Op, in.Type, args[0], args[1])
	}
}
