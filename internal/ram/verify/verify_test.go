package verify

import (
	"strings"
	"testing"

	"sti/internal/ram"
	"sti/internal/tuple"
	"sti/internal/value"
)

// rel builds a well-formed source relation declaration.
func rel(id int, name string, arity int) *ram.Relation {
	types := make([]value.Type, arity)
	return &ram.Relation{
		ID: id, Name: name, Arity: arity, Types: types,
		Orders: []tuple.Order{tuple.Identity(arity)},
		BaseID: id,
	}
}

// tcProgram hand-builds a small well-formed program: load edge, copy it
// into path inside a loop with an exit, store path.
func tcProgram() *ram.Program {
	edge := rel(0, "edge", 2)
	edge.Input = true
	path := rel(1, "path", 2)
	path.Output = true
	copyQ := &ram.Query{
		NumTuples: 1,
		Root: &ram.Scan{
			Rel: edge, TupleID: 0,
			Nested: &ram.Project{Rel: path, Exprs: []ram.Expr{
				&ram.TupleElement{TupleID: 0, Elem: 0},
				&ram.TupleElement{TupleID: 0, Elem: 1},
			}},
		},
	}
	return &ram.Program{
		Relations: []*ram.Relation{edge, path},
		Main: &ram.Sequence{Stmts: []ram.Statement{
			&ram.IO{Kind: ram.IOLoad, Rel: edge},
			copyQ,
			&ram.Loop{Body: &ram.Sequence{Stmts: []ram.Statement{
				&ram.Exit{Cond: &ram.EmptinessCheck{Rel: edge}},
			}}},
			&ram.IO{Kind: ram.IOStore, Rel: path},
		}},
	}
}

func TestWellFormedProgramVerifiesClean(t *testing.T) {
	if diags := Program(tcProgram()); len(diags) > 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

// TestMalformedPrograms hand-builds malformed programs and asserts each
// yields exactly the expected diagnostics.
func TestMalformedPrograms(t *testing.T) {
	tests := []struct {
		name  string
		build func() *ram.Program
		want  []string // expected Rule of each diagnostic, in order
	}{
		{
			name: "unbound tuple id",
			build: func() *ram.Program {
				p := tcProgram()
				// A fact-style query reading a tuple slot nothing binds.
				q := &ram.Query{Root: &ram.Project{
					Rel: p.Relations[1],
					Exprs: []ram.Expr{
						&ram.TupleElement{TupleID: 3, Elem: 0},
						&ram.Constant{Val: 1},
					},
				}}
				p.Main.(*ram.Sequence).Stmts = append(p.Main.(*ram.Sequence).Stmts, q)
				return p
			},
			want: []string{RuleTupleUnbound},
		},
		{
			name: "out of bounds tuple element",
			build: func() *ram.Program {
				p := tcProgram()
				q := stmtAt(p, 1).(*ram.Query)
				proj := q.Root.(*ram.Scan).Nested.(*ram.Project)
				proj.Exprs[1].(*ram.TupleElement).Elem = 5 // edge has arity 2
				return p
			},
			want: []string{RuleElemBounds},
		},
		{
			name: "exit outside loop",
			build: func() *ram.Program {
				p := tcProgram()
				seq := p.Main.(*ram.Sequence)
				seq.Stmts = append(seq.Stmts, &ram.Exit{Cond: &ram.EmptinessCheck{Rel: p.Relations[0]}})
				return p
			},
			want: []string{RuleExitInLoop},
		},
		{
			name: "arity mismatched project",
			build: func() *ram.Program {
				p := tcProgram()
				q := stmtAt(p, 1).(*ram.Query)
				proj := q.Root.(*ram.Scan).Nested.(*ram.Project)
				proj.Exprs = proj.Exprs[:1] // path has arity 2
				return p
			},
			want: []string{RuleProjectArity},
		},
		{
			name: "bogus index order",
			build: func() *ram.Program {
				p := tcProgram()
				p.Relations[0].Orders = []tuple.Order{{0, 0}} // not a permutation
				return p
			},
			want: []string{RuleRelOrder},
		},
		{
			name: "index id out of range",
			build: func() *ram.Program {
				p := tcProgram()
				q := stmtAt(p, 1).(*ram.Query)
				scan := q.Root.(*ram.Scan)
				q.Root = &ram.IndexScan{
					Rel: scan.Rel, IndexID: 7,
					Pattern: []ram.Expr{&ram.Constant{Val: 1}, nil},
					TupleID: 0, Nested: scan.Nested,
				}
				return p
			},
			want: []string{RuleIndexID},
		},
		{
			name: "bound pattern not an order prefix",
			build: func() *ram.Program {
				p := tcProgram()
				q := stmtAt(p, 1).(*ram.Query)
				scan := q.Root.(*ram.Scan)
				// Index 0 orders (0,1); binding only position 1 is no prefix.
				q.Root = &ram.IndexScan{
					Rel: scan.Rel, IndexID: 0,
					Pattern: []ram.Expr{nil, &ram.Constant{Val: 1}},
					TupleID: 0, Nested: scan.Nested,
				}
				return p
			},
			want: []string{RuleIndexPrefix},
		},
		{
			name: "swap with mismatched shapes",
			build: func() *ram.Program {
				p := tcProgram()
				one := rel(2, "one", 1)
				p.Relations = append(p.Relations, one)
				seq := p.Main.(*ram.Sequence)
				seq.Stmts = append(seq.Stmts, &ram.Swap{A: p.Relations[0], B: one})
				return p
			},
			want: []string{RuleSwapShape},
		},
		{
			name: "arity types disagreement",
			build: func() *ram.Program {
				p := tcProgram()
				p.Relations[1].Types = p.Relations[1].Types[:1]
				return p
			},
			want: []string{RuleRelTypes},
		},
		{
			name: "aux relation with dangling base",
			build: func() *ram.Program {
				p := tcProgram()
				aux := rel(2, "delta_path", 2)
				aux.Aux = true
				aux.BaseID = 9
				p.Relations = append(p.Relations, aux)
				return p
			},
			want: []string{RuleRelBase},
		},
		{
			name: "aux relation shadowing itself",
			build: func() *ram.Program {
				p := tcProgram()
				aux := rel(2, "delta_path", 2)
				aux.Aux = true // BaseID stays its own ID
				p.Relations = append(p.Relations, aux)
				return p
			},
			want: []string{RuleRelAux},
		},
		{
			name: "duplicate relation name",
			build: func() *ram.Program {
				p := tcProgram()
				dup := rel(2, "edge", 2)
				p.Relations = append(p.Relations, dup)
				return p
			},
			want: []string{RuleRelName},
		},
		{
			name: "duplicate load of a relation",
			build: func() *ram.Program {
				p := tcProgram()
				seq := p.Main.(*ram.Sequence)
				seq.Stmts = append(seq.Stmts, &ram.IO{Kind: ram.IOLoad, Rel: p.Relations[0]})
				return p
			},
			want: []string{RuleIODup},
		},
		{
			name: "load of a non-input relation",
			build: func() *ram.Program {
				p := tcProgram()
				seq := p.Main.(*ram.Sequence)
				seq.Stmts = append(seq.Stmts, &ram.IO{Kind: ram.IOLoad, Rel: p.Relations[1]})
				return p
			},
			want: []string{RuleIOFlag},
		},
		{
			name: "merge with mismatched arity",
			build: func() *ram.Program {
				p := tcProgram()
				one := rel(2, "one", 1)
				p.Relations = append(p.Relations, one)
				seq := p.Main.(*ram.Sequence)
				seq.Stmts = append(seq.Stmts, &ram.Merge{Dst: p.Relations[0], Src: one})
				return p
			},
			want: []string{RuleMergeShape},
		},
		{
			name: "binder slot outside query slot count",
			build: func() *ram.Program {
				p := tcProgram()
				q := stmtAt(p, 1).(*ram.Query)
				q.NumTuples = 0 // the scan binds t0
				return p
			},
			want: []string{RuleTupleSlot},
		},
		{
			name: "undeclared relation in scan",
			build: func() *ram.Program {
				p := tcProgram()
				q := stmtAt(p, 1).(*ram.Query)
				q.Root.(*ram.Scan).Rel = rel(9, "ghost", 2)
				return p
			},
			want: []string{RuleRelDeclared},
		},
		{
			name: "nil exit condition",
			build: func() *ram.Program {
				p := tcProgram()
				loop := stmtAt(p, 2).(*ram.Loop)
				loop.Body.(*ram.Sequence).Stmts[0].(*ram.Exit).Cond = nil
				return p
			},
			want: []string{RuleNilNode},
		},
		{
			name: "intrinsic with wrong argument count",
			build: func() *ram.Program {
				p := tcProgram()
				q := stmtAt(p, 1).(*ram.Query)
				proj := q.Root.(*ram.Scan).Nested.(*ram.Project)
				proj.Exprs[0] = &ram.Intrinsic{
					Op: ram.OpAdd, Type: value.Number,
					Args: []ram.Expr{&ram.Constant{Val: 1}},
				}
				return p
			},
			want: []string{RuleIntrinsicArgs},
		},
		{
			name: "pattern shorter than arity",
			build: func() *ram.Program {
				p := tcProgram()
				q := stmtAt(p, 1).(*ram.Query)
				scan := q.Root.(*ram.Scan)
				q.Root = &ram.IndexScan{
					Rel: scan.Rel, IndexID: 0,
					Pattern: []ram.Expr{&ram.Constant{Val: 1}},
					TupleID: 0, Nested: scan.Nested,
				}
				return p
			},
			want: []string{RulePatternArity},
		},
		{
			name: "sum aggregate without target",
			build: func() *ram.Program {
				p := tcProgram()
				q := stmtAt(p, 1).(*ram.Query)
				scan := q.Root.(*ram.Scan)
				q.NumTuples = 2
				q.Root = &ram.Aggregate{
					Kind: ram.AggSum, Rel: scan.Rel, IndexID: -1,
					Pattern: make([]ram.Expr, 2), Type: value.Number, TupleID: 0,
					Nested: &ram.Project{Rel: p.Relations[1], Exprs: []ram.Expr{
						&ram.TupleElement{TupleID: 0, Elem: 0},
						&ram.TupleElement{TupleID: 0, Elem: 0},
					}},
				}
				return p
			},
			want: []string{RuleAggTarget},
		},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			diags := Program(tt.build())
			var got []string
			for _, d := range diags {
				got = append(got, d.Rule)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("diagnostics = %v, want rules %v", diags, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("diagnostic %d = %v, want rule %s", i, diags[i], tt.want[i])
				}
			}
		})
	}
}

// stmtAt returns the i-th statement of the program's top-level sequence.
func stmtAt(p *ram.Program, i int) ram.Statement {
	return p.Main.(*ram.Sequence).Stmts[i]
}

func TestAggregateResultIsOneTuple(t *testing.T) {
	// Inside an Aggregate's Nested, the slot holds the 1-tuple result:
	// reading element 1 must be rejected even though the relation has
	// arity 2.
	p := tcProgram()
	q := stmtAt(p, 1).(*ram.Query)
	scan := q.Root.(*ram.Scan)
	q.Root = &ram.Aggregate{
		Kind: ram.AggCount, Rel: scan.Rel, IndexID: -1,
		Pattern: make([]ram.Expr, 2), Type: value.Number, TupleID: 0,
		Nested: &ram.Project{Rel: p.Relations[1], Exprs: []ram.Expr{
			&ram.TupleElement{TupleID: 0, Elem: 0},
			&ram.TupleElement{TupleID: 0, Elem: 1}, // result has arity 1
		}},
	}
	diags := Program(p)
	if len(diags) != 1 || diags[0].Rule != RuleElemBounds {
		t.Fatalf("diagnostics = %v, want one %s", diags, RuleElemBounds)
	}
}

func TestTupleSlotVisibilityIsScoped(t *testing.T) {
	// A slot bound in one query must not leak into a sibling query.
	p := tcProgram()
	q := &ram.Query{Root: &ram.Project{
		Rel: p.Relations[1],
		Exprs: []ram.Expr{
			&ram.TupleElement{TupleID: 0, Elem: 0},
			&ram.TupleElement{TupleID: 0, Elem: 1},
		},
	}}
	seq := p.Main.(*ram.Sequence)
	seq.Stmts = append(seq.Stmts, q)
	diags := Program(p)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want two %s", diags, RuleTupleUnbound)
	}
	for _, d := range diags {
		if d.Rule != RuleTupleUnbound {
			t.Fatalf("diagnostic = %v, want rule %s", d, RuleTupleUnbound)
		}
	}
}

func TestCheckReturnsTypedError(t *testing.T) {
	p := tcProgram()
	seq := p.Main.(*ram.Sequence)
	seq.Stmts = append(seq.Stmts, &ram.Exit{Cond: &ram.EmptinessCheck{Rel: p.Relations[0]}})
	err := Check(p, "unittest")
	verr, ok := err.(*Error)
	if !ok {
		t.Fatalf("Check returned %T, want *verify.Error", err)
	}
	if verr.Stage != "unittest" || len(verr.Diags) != 1 {
		t.Fatalf("error = %+v", verr)
	}
	msg := verr.Error()
	for _, want := range []string{"unittest", RuleExitInLoop, ">> "} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error text lacks %q:\n%s", want, msg)
		}
	}
	if err := Check(tcProgram(), "unittest"); err != nil {
		t.Fatalf("clean program: %v", err)
	}
}

func TestExcerptMarksOffendingLine(t *testing.T) {
	p := tcProgram()
	q := stmtAt(p, 1).(*ram.Query)
	proj := q.Root.(*ram.Scan).Nested.(*ram.Project)
	proj.Exprs[1].(*ram.TupleElement).Elem = 5
	diags := Program(p)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v", diags)
	}
	ex := Excerpt(p, diags[0])
	var marked string
	for _, line := range strings.Split(ex, "\n") {
		if strings.HasPrefix(line, ">> ") {
			marked = line
		}
	}
	if !strings.Contains(marked, "INSERT") || !strings.Contains(marked, "t0.5") {
		t.Fatalf("excerpt does not mark the bad INSERT:\n%s", ex)
	}
}

func TestConditionDetached(t *testing.T) {
	cond := &ram.And{
		L: &ram.Constraint{
			Op: ram.CmpLT, Type: value.Number,
			L: &ram.TupleElement{TupleID: 0, Elem: 1},
			R: &ram.Constant{Val: 10},
		},
		R: &ram.Constraint{
			Op: ram.CmpEQ, Type: value.Number,
			L: &ram.TupleElement{TupleID: 2, Elem: 0},
			R: &ram.TupleElement{TupleID: 0, Elem: 5},
		},
	}
	// t0 has arity 2, t2 is unbound, t0.5 is out of bounds.
	diags := Condition(cond, map[int]int{0: 2})
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	want := []string{RuleTupleUnbound, RuleElemBounds}
	if len(rules) != len(want) || rules[0] != want[0] || rules[1] != want[1] {
		t.Fatalf("rules = %v, want %v", rules, want)
	}
}

func TestFusedConditionPartialScope(t *testing.T) {
	cond := &ram.And{
		L: &ram.Constraint{
			Op: ram.CmpLT, Type: value.Number,
			L: &ram.TupleElement{TupleID: 2, Elem: 0}, // absent from scope: OK
			R: &ram.Constant{Val: 10},
		},
		R: &ram.Constraint{
			Op: ram.CmpEQ, Type: value.Number,
			L: &ram.TupleElement{TupleID: 0, Elem: 5}, // known slot, out of bounds
			R: &ram.Constant{Val: 0},
		},
	}
	// Fusion sees a sparse scope (only non-identity orders are recorded),
	// so a missing slot is not an error — but a known slot still has its
	// element reads bounds-checked.
	diags := FusedCondition(cond, map[int]int{0: 2})
	if len(diags) != 1 || diags[0].Rule != RuleElemBounds {
		t.Fatalf("diags = %v, want exactly one %s", diags, RuleElemBounds)
	}
	if diags := FusedCondition(cond, map[int]int{0: 6, 2: 1}); len(diags) != 0 {
		t.Fatalf("fully in-bounds condition flagged: %v", diags)
	}
}

func TestParallelFrozen(t *testing.T) {
	// Marking the copy query parallel is fine as-is: it reads edge and
	// writes path, which are disjoint.
	p := tcProgram()
	stmtAt(p, 1).(*ram.Query).Parallel = true
	if diags := Program(p); len(diags) > 0 {
		t.Fatalf("disjoint parallel query flagged: %v", diags)
	}

	// Rewriting the copy to insert into the relation it scans violates the
	// freeze invariant, but only when the query is parallel.
	build := func(parallel bool) *ram.Program {
		p := tcProgram()
		q := stmtAt(p, 1).(*ram.Query)
		q.Parallel = parallel
		q.Root.(*ram.Scan).Nested.(*ram.Project).Rel = p.Relations[0]
		return p
	}
	if diags := Program(build(false)); len(diags) > 0 {
		t.Fatalf("serial self-insert flagged: %v", diags)
	}
	diags := Program(build(true))
	if len(diags) != 1 || diags[0].Rule != RuleParallelFrozen {
		t.Fatalf("diags = %v, want exactly one %s", diags, RuleParallelFrozen)
	}

	// The read set includes condition checks: a parallel query that guards
	// on membership in its own insert target (dedup-at-insert) must be
	// rejected too — that is exactly the read the merge barrier defers.
	p2 := tcProgram()
	q2 := stmtAt(p2, 1).(*ram.Query)
	q2.Parallel = true
	scan := q2.Root.(*ram.Scan)
	proj := scan.Nested.(*ram.Project)
	scan.Nested = &ram.Filter{
		Cond: &ram.Not{C: &ram.ExistenceCheck{
			Rel: p2.Relations[1], IndexID: 0,
			Pattern: []ram.Expr{
				&ram.TupleElement{TupleID: 0, Elem: 0},
				&ram.TupleElement{TupleID: 0, Elem: 1},
			},
		}},
		Nested: proj,
	}
	diags = Program(p2)
	if len(diags) != 1 || diags[0].Rule != RuleParallelFrozen {
		t.Fatalf("diags = %v, want exactly one %s", diags, RuleParallelFrozen)
	}
}
