package verify

import (
	"testing"

	"sti/internal/ram"
)

// shardProgram hand-builds a program with a stamped shard plan: edge and
// path partition on column 0, and path has a delta companion with the same
// plan, swapped and merged the way semi-naive evaluation does.
func shardProgram() *ram.Program {
	p := tcProgram()
	edge, path := p.Relations[0], p.Relations[1]
	edge.ShardKey = 1
	path.ShardKey = 1
	delta := rel(2, "delta_path", 2)
	delta.Aux = true
	delta.Kind = ram.AuxDelta
	delta.BaseID = path.ID
	delta.ShardKey = 1
	p.Relations = append(p.Relations, delta)
	seq := p.Main.(*ram.Sequence)
	seq.Stmts = append(seq.Stmts,
		&ram.Swap{A: path, B: delta},
		&ram.Merge{Dst: path, Src: delta},
	)
	return p
}

func TestShardPlanVerifiesClean(t *testing.T) {
	if diags := Program(shardProgram()); len(diags) > 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

// TestShardLocalWrites: every way a shard plan can be malformed yields a
// shard-local-writes diagnostic.
func TestShardLocalWrites(t *testing.T) {
	tests := []struct {
		name  string
		build func() *ram.Program
	}{
		{
			name: "key out of range",
			build: func() *ram.Program {
				p := shardProgram()
				p.Relations[0].ShardKey = 3 // edge has arity 2
				return p
			},
		},
		{
			name: "negative key",
			build: func() *ram.Program {
				p := shardProgram()
				p.Relations[0].ShardKey = -1
				return p
			},
		},
		{
			name: "nullary relation with plan",
			build: func() *ram.Program {
				p := shardProgram()
				flag := rel(3, "flag", 0)
				flag.ShardKey = 1
				p.Relations = append(p.Relations, flag)
				return p
			},
		},
		{
			name: "eqrel relation with plan",
			build: func() *ram.Program {
				p := shardProgram()
				eq := rel(3, "eq", 2)
				eq.Rep = ram.RepEqRel
				eq.ShardKey = 1
				p.Relations = append(p.Relations, eq)
				return p
			},
		},
		{
			name: "aux key differs from base",
			build: func() *ram.Program {
				p := shardProgram()
				p.Relations[2].ShardKey = 2 // delta_path off path's column
				return p
			},
		},
		{
			name: "aux unstamped under stamped base",
			build: func() *ram.Program {
				p := shardProgram()
				p.Relations[2].ShardKey = 0
				return p
			},
		},
		{
			name: "swap across keys",
			build: func() *ram.Program {
				p := shardProgram()
				// Give both operands internally-valid but different plans;
				// the statement-level check must still fire.
				other := rel(3, "other", 2)
				other.ShardKey = 2
				p.Relations = append(p.Relations, other)
				seq := p.Main.(*ram.Sequence)
				seq.Stmts = append(seq.Stmts, &ram.Swap{A: p.Relations[0], B: other})
				return p
			},
		},
		{
			name: "merge across keys",
			build: func() *ram.Program {
				p := shardProgram()
				other := rel(3, "other", 2)
				other.ShardKey = 2
				p.Relations = append(p.Relations, other)
				seq := p.Main.(*ram.Sequence)
				seq.Stmts = append(seq.Stmts, &ram.Merge{Dst: p.Relations[0], Src: other})
				return p
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			diags := Program(tc.build())
			found := false
			for _, d := range diags {
				if d.Rule == RuleShardLocal {
					found = true
				} else {
					t.Errorf("unexpected diagnostic %s: %s", d.Rule, d.Msg)
				}
			}
			if !found {
				t.Fatalf("no %s diagnostic; got %v", RuleShardLocal, diags)
			}
		})
	}
}
