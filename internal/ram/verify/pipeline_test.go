package verify_test

// Pipeline invariant test: every embedded example program and every
// fixture the ast2ram tests exercise is pushed through
// translate → ramopt → condition fusion, and the RAM program is verified
// after each stage. Any rewrite that breaks a structural invariant fails
// here with a marked excerpt instead of as a wrong fixpoint at runtime.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sti/internal/ast2ram"
	"sti/internal/compile"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/ramopt"
	"sti/internal/sema"
	"sti/internal/symtab"
	"sti/internal/tuple"
)

// fixtureSrcs mirrors the translation fixtures of internal/ast2ram's tests
// (which independently verify their own outputs through the shared
// translate helper) so the full pipeline corpus lives in one place.
var fixtureSrcs = map[string]string{
	"transitive-closure": `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`,
	"second-column-search": `
.decl e(x:number, y:number)
.decl r(x:number)
.decl s(x:number)
r(x) :- s(y), e(x, y).
`,
	"negation": `
.decl a(x:number)
.decl b(x:number)
.decl c(x:number)
c(x) :- a(x), !b(x).
`,
	"facts": `
.decl p(x:number, s:symbol)
p(1, "a").
p(2, "b").
`,
	"aggregate": `
.decl e(x:number, y:number)
.decl out(x:number, n:number)
out(x, n) :- e(x, _), n = count : { e(x, _) }.
`,
	"eqrel-non-prefix": `
.decl eq(x:number, y:number) eqrel
.decl s(x:number)
.decl out(x:number)
out(x) :- s(y), eq(x, y).
`,
	"mutual-recursion": `
.decl seed(x:number)
.decl a(x:number)
.decl b(x:number)
seed(1).
a(x) :- seed(x).
a(x) :- b(x).
b(x) :- a(x), x < 10.
`,
	"constant-folding": `
.decl out(x:number, s:symbol)
out(1 + 2 * 3, cat("a", "b")).
out(x + 1, "c") :- out(x, _), x < 3 + 4.
`,
}

// optimizerConfigs enumerates the single passes plus the full pipeline.
var optimizerConfigs = []struct {
	name string
	opts ramopt.Options
}{
	{"fold", ramopt.Options{FoldConstants: true}},
	{"fuse-filters", ramopt.Options{FuseFilters: true}},
	{"choices", ramopt.Options{Choices: true}},
	{"dead-code", ramopt.Options{DeadCode: true}},
	{"prune-indexes", ramopt.Options{PruneIndexes: true}},
	{"queryable", ramopt.Queryable()},
	{"all", ramopt.All()},
}

func TestPipelineInvariants(t *testing.T) {
	for name, src := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			for _, cfg := range optimizerConfigs {
				prog, st := translate(t, src)
				if err := verify.Check(prog, "ast2ram"); err != nil {
					t.Fatalf("after translate: %v", err)
				}
				ramopt.Optimize(prog, st, cfg.opts)
				if err := verify.Check(prog, "ramopt/"+cfg.name); err != nil {
					t.Fatalf("after ramopt %s: %v", cfg.name, err)
				}
				fuseAll(t, prog, st)
				if err := verify.Check(prog, "fuse/"+cfg.name); err != nil {
					t.Fatalf("after fusion under ramopt %s: %v", cfg.name, err)
				}
			}
		})
	}
}

// corpus gathers the fixture programs plus every program embedded in
// examples/*/main.go.
func corpus(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	for name, src := range fixtureSrcs {
		out["fixture/"+name] = src
	}
	dirs, err := filepath.Glob(filepath.Join("..", "..", "..", "examples", "*", "main.go"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	for _, path := range dirs {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		progs := embeddedPrograms(string(data))
		if len(progs) == 0 {
			t.Fatalf("%s embeds no Datalog program", path)
		}
		for i, src := range progs {
			name := "example/" + filepath.Base(filepath.Dir(path))
			if len(progs) > 1 {
				name = fmt.Sprintf("%s#%d", name, i)
			}
			out[name] = src
		}
	}
	return out
}

// embeddedPrograms extracts Datalog sources from Go raw string literals.
// Backticks cannot be escaped inside raw literals, so splitting on them
// alternates code and literal contents exactly.
func embeddedPrograms(goSrc string) []string {
	parts := strings.Split(goSrc, "`")
	var out []string
	for i := 1; i < len(parts); i += 2 {
		if strings.Contains(parts[i], ".decl") {
			out = append(out, parts[i])
		}
	}
	return out
}

func translate(t *testing.T, src string) (*ram.Program, *symtab.Table) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	st := symtab.New()
	prog, err := ast2ram.Translate(an, st)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return prog, st
}

// fuseAll compiles every fusible condition in the program the way the
// interpreter's FusedFilters mode does, with every bound tuple in identity
// coordinates, and checks that fusion accepts them and leaves the program
// intact (the post-call verify in the caller catches mutations).
func fuseAll(t *testing.T, prog *ram.Program, st *symtab.Table) {
	t.Helper()
	var walk func(o ram.Operation, coords map[int32]tuple.Order)
	fuse := func(cond ram.Condition, coords map[int32]tuple.Order) {
		if cond == nil || !compile.Fusible(cond) {
			return
		}
		if _, ok := compile.CompileCondition(cond, st, coords); !ok {
			t.Fatalf("fusible condition rejected by CompileCondition: %s", ram.CondString(cond))
		}
	}
	bind := func(coords map[int32]tuple.Order, tid, arity int) map[int32]tuple.Order {
		n := make(map[int32]tuple.Order, len(coords)+1)
		for k, v := range coords {
			n[k] = v
		}
		n[int32(tid)] = tuple.Identity(arity)
		return n
	}
	walk = func(o ram.Operation, coords map[int32]tuple.Order) {
		switch o := o.(type) {
		case *ram.Scan:
			walk(o.Nested, bind(coords, o.TupleID, o.Rel.Arity))
		case *ram.IndexScan:
			walk(o.Nested, bind(coords, o.TupleID, o.Rel.Arity))
		case *ram.Choice:
			inner := bind(coords, o.TupleID, o.Rel.Arity)
			fuse(o.Cond, inner)
			walk(o.Nested, inner)
		case *ram.IndexChoice:
			inner := bind(coords, o.TupleID, o.Rel.Arity)
			fuse(o.Cond, inner)
			walk(o.Nested, inner)
		case *ram.Filter:
			fuse(o.Cond, coords)
			walk(o.Nested, coords)
		case *ram.Aggregate:
			inner := bind(coords, o.TupleID, o.Rel.Arity)
			fuse(o.Cond, inner)
			walk(o.Nested, bind(coords, o.TupleID, 1))
		case *ram.Project:
		}
	}
	var stmts func(s ram.Statement)
	stmts = func(s ram.Statement) {
		switch s := s.(type) {
		case *ram.Sequence:
			for _, st := range s.Stmts {
				stmts(st)
			}
		case *ram.Loop:
			stmts(s.Body)
		case *ram.LogTimer:
			stmts(s.Stmt)
		case *ram.Query:
			walk(s.Root, map[int32]tuple.Order{})
		}
	}
	stmts(prog.Main)
}
