package verify_test

// Negative tests for the delete-program invariants: real deletable programs
// are compiled through the front end, their Delete trees are broken by hand,
// and the verifier must name the violated rule. The positive direction —
// every shipped Delete program verifies clean — is covered by
// TestPipelineInvariants over the fixture/example corpus.

import (
	"testing"

	"sti/internal/ram"
	"sti/internal/ram/verify"
)

const deletableTC = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

const deletableFlat = `
.decl edge(x:number, y:number)
.decl out(x:number, y:number)
.input edge
.output out
out(x, y) :- edge(x, y).
`

// findRel returns the first relation matching the predicate.
func findRel(t *testing.T, p *ram.Program, pred func(*ram.Relation) bool) *ram.Relation {
	t.Helper()
	for _, r := range p.Relations {
		if r != nil && pred(r) {
			return r
		}
	}
	t.Fatal("program has no relation matching the predicate")
	return nil
}

// findStmt walks the delete tree and returns the first statement the
// predicate accepts.
func findStmt(t *testing.T, s ram.Statement, pred func(ram.Statement) bool) ram.Statement {
	t.Helper()
	var found ram.Statement
	var walk func(ram.Statement)
	walk = func(s ram.Statement) {
		if s == nil || found != nil {
			return
		}
		if pred(s) {
			found = s
			return
		}
		switch s := s.(type) {
		case *ram.Sequence:
			for _, sub := range s.Stmts {
				walk(sub)
			}
		case *ram.Loop:
			walk(s.Body)
		case *ram.LogTimer:
			walk(s.Stmt)
		}
	}
	walk(s)
	if found == nil {
		t.Fatal("delete program has no statement matching the predicate")
	}
	return found
}

func assertRule(t *testing.T, p *ram.Program, rule string) {
	t.Helper()
	diags := verify.Program(p)
	for _, d := range diags {
		if d.Rule == rule {
			return
		}
	}
	t.Fatalf("verifier missed %s; got %v", rule, diags)
}

func TestBrokenDeletePrograms(t *testing.T) {
	t.Run("io-in-delete", func(t *testing.T) {
		prog, _ := translate(t, deletableTC)
		path := findRel(t, prog, func(r *ram.Relation) bool { return r.Output })
		seq := prog.Delete.(*ram.Sequence)
		seq.Stmts = append(seq.Stmts, &ram.IO{Kind: ram.IOStore, Rel: path})
		assertRule(t, prog, verify.RuleDeleteNoIO)
	})

	t.Run("write-into-base-relation", func(t *testing.T) {
		prog, _ := translate(t, deletableTC)
		path := findRel(t, prog, func(r *ram.Relation) bool { return r.Output })
		seq := prog.Delete.(*ram.Sequence)
		seq.Stmts = append(seq.Stmts, &ram.Query{
			Root: &ram.Project{Rel: path, Exprs: []ram.Expr{
				&ram.Constant{Val: 1}, &ram.Constant{Val: 2},
			}},
		})
		assertRule(t, prog, verify.RuleDeleteWrite)
	})

	t.Run("rederive-before-overdelete", func(t *testing.T) {
		prog, _ := translate(t, deletableTC)
		red := findRel(t, prog, func(r *ram.Relation) bool { return r.Kind == ram.AuxRed })
		nred := findRel(t, prog, func(r *ram.Relation) bool { return r.Kind == ram.AuxRedNew })
		// A red-family write hoisted before the overdeletion fixpoint makes
		// every later del-family write of the same base a violation.
		seq := prog.Delete.(*ram.Sequence)
		seq.Stmts = append([]ram.Statement{&ram.Merge{Dst: red, Src: nred}}, seq.Stmts...)
		assertRule(t, prog, verify.RuleDeleteOrder)
	})

	t.Run("count-delete-from-non-count-buffer", func(t *testing.T) {
		prog, _ := translate(t, deletableFlat)
		cd := findStmt(t, prog.Delete, func(s ram.Statement) bool {
			_, ok := s.(*ram.CountDelete)
			return ok
		}).(*ram.CountDelete)
		cd.Src = cd.Gone // a del tracker carries no multiplicities
		assertRule(t, prog, verify.RuleCountShape)
	})

	t.Run("count-delete-into-uncounted-relation", func(t *testing.T) {
		prog, _ := translate(t, deletableFlat)
		edge := findRel(t, prog, func(r *ram.Relation) bool { return r.Input })
		cd := findStmt(t, prog.Delete, func(s ram.Statement) bool {
			_, ok := s.(*ram.CountDelete)
			return ok
		}).(*ram.CountDelete)
		cd.Dst = edge // EDB relations maintain no support counts
		assertRule(t, prog, verify.RuleCountShape)
	})
}
