package verify

import (
	"os"
	"strings"
	"sync/atomic"

	"sti/internal/ram"
)

// The ramverify debug mode makes every pipeline stage re-verify its output:
// ast2ram after translation, ramopt after optimization, condition fusion
// before compiling, and each backend once at load. It is enabled by the
// `-d ramverify` CLI option (see cmd/sti), programmatically via SetDebug,
// or by listing "ramverify" (or "all") in the STI_DEBUG environment
// variable, e.g. STI_DEBUG=ramverify go test ./...
var debug atomic.Bool

func init() {
	for _, tok := range strings.FieldsFunc(os.Getenv("STI_DEBUG"), func(r rune) bool {
		return r == ',' || r == ' '
	}) {
		if tok == "ramverify" || tok == "all" {
			debug.Store(true)
		}
	}
}

// SetDebug switches the ramverify debug mode on or off.
func SetDebug(on bool) { debug.Store(on) }

// Debugging reports whether the ramverify debug mode is on.
func Debugging() bool { return debug.Load() }

// excerptContext is the number of program lines shown on each side of a
// marked line.
const excerptContext = 3

// Excerpt renders the lines of p around d.Node, with the offending line(s)
// marked ">> " in the gutter, in the style of a compiler caret diagnostic.
// It returns "" when d.Node is nil or does not occur in p.
func Excerpt(p *ram.Program, d Diag) string {
	if p == nil || d.Node == nil {
		return ""
	}
	lines := strings.Split(strings.TrimRight(p.MarkedString(d.Node), "\n"), "\n")
	keep := make([]bool, len(lines))
	any := false
	for i, l := range lines {
		if strings.HasPrefix(l, ">> ") {
			any = true
			for j := i - excerptContext; j <= i+excerptContext; j++ {
				if j >= 0 && j < len(lines) {
					keep[j] = true
				}
			}
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	elided := false
	for i, l := range lines {
		if !keep[i] {
			elided = true
			continue
		}
		if elided && b.Len() > 0 {
			b.WriteString("   ...\n")
		}
		elided = false
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
