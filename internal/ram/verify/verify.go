// Package verify implements an LLVM-style structural verifier for RAM
// programs. Every transformation in the pipeline — AST→RAM translation
// (internal/ast2ram), RAM peephole optimization (internal/ramopt),
// condition fusion (internal/compile), and index selection
// (internal/indexselect) — must preserve a catalog of invariants: tuple
// slots are bound before use, arities agree everywhere, index searches hit
// declared order prefixes, EXIT only fires inside LOOP, and whole-relation
// statements target declared relations of compatible shape. The verifier
// walks a ram.Program once and reports every violation as a typed Diag
// value; it never panics and never mutates the program. The dataflow-backed
// rules (parallel-frozen and the update-* family) consult the read/write
// facts of internal/ram/analysis instead of re-deriving them syntactically.
//
// Run it after each pass with Check (or per-program with Program) to turn
// "wrong fixpoint three stages later" into "pass X emitted node Y violating
// rule Z", with the offending node marked in a ram print excerpt.
package verify

import (
	"fmt"
	"strings"

	"sti/internal/ram"
	"sti/internal/ram/analysis"
	"sti/internal/tuple"
)

// Rule identifiers, one per invariant. Stable strings so tests and tools
// can match on them.
const (
	RuleProgram        = "program"         // program-level shape (nil Main, nil relation)
	RuleRelID          = "rel-id"          // Relation.ID must equal its declaration index
	RuleRelName        = "rel-name"        // relation names are non-empty and unique
	RuleRelTypes       = "rel-types"       // len(Types) == Arity
	RuleRelOrder       = "rel-order"       // every order is a permutation of 0..arity-1
	RuleRelBase        = "rel-base"        // BaseID resolves to a declared relation
	RuleRelAux         = "rel-aux"         // aux relations shadow a live, compatible base
	RuleRelDeclared    = "rel-declared"    // operations reference declared relations
	RuleExitInLoop     = "exit-in-loop"    // Exit appears only under Loop
	RuleNilNode        = "nil-node"        // required child node is nil
	RuleSwapShape      = "swap-shape"      // Swap operands have identical signatures
	RuleMergeShape     = "merge-shape"     // Merge operands agree in arity and types
	RuleIOFlag         = "io-flag"         // IO statements match the relation's io flags
	RuleIODup          = "io-dup"          // a relation is loaded/stored at most once
	RuleTupleSlot      = "tuple-slot"      // binder TupleIDs fit the query's slot count
	RuleTupleRebound   = "tuple-rebound"   // a live tuple slot is never rebound
	RuleTupleUnbound   = "tuple-unbound"   // tuple reads see an enclosing binder
	RuleElemBounds     = "elem-bounds"     // TupleElement.Elem within the binder's arity
	RulePatternArity   = "pattern-arity"   // pattern length equals relation arity
	RuleIndexID        = "index-id"        // IndexID selects a declared order
	RuleIndexPrefix    = "index-prefix"    // bound pattern positions form an order prefix
	RuleProjectArity   = "project-arity"   // Project expression count equals target arity
	RuleAggTarget      = "agg-target"      // sum/min/max aggregates carry a target
	RuleIntrinsicArgs  = "intrinsic-args"  // intrinsics receive the right argument count
	RuleParallelFrozen = "parallel-frozen" // parallel queries never read their insert targets

	// Shard-plan invariant: under shard-parallel evaluation a shard only
	// writes its own partition outside the exchange step. The static side
	// of that guarantee is plan alignment — a stamped shard key must be a
	// real column, relations that cannot hash (nullary, eqrel) must carry
	// no plan, aux relations must partition exactly like their base, and
	// SWAP/MERGE/SUBTRACT operands must agree on the key — so every bulk
	// statement moves whole partitions between aligned shards and only the
	// routed barrier merge ever crosses them. The runtime side is
	// relation.CheckShardLocal.
	RuleShardLocal = "shard-local-writes"

	// Update-program invariants (Program.Update, the delta-restart entry
	// point of resident engines). Snapshot readers are only locked out
	// while Update runs, so everything it touches must stay inside the
	// scratch space of its own stratum.
	RuleUpdateNoIO    = "update-no-io"   // the update program performs no IO
	RuleUpdateWrite   = "update-write"   // update inserts target aux or eqrel relations only
	RuleUpdateStratum = "update-stratum" // update writes never target a lower stratum than a read
	RuleUpdateAlias   = "update-alias"   // update queries never read their insert targets

	// Delete-program invariants (Program.Delete, the counting/DRed
	// retraction entry point). The delete program must compute the dying
	// sets without touching the physical relations — only the final
	// SUBTRACT statements remove tuples — so every insert stays inside the
	// delete scratch space and rederivation never runs before its
	// stratum's overdeletion has converged.
	RuleDeleteNoIO  = "delete-no-io"               // the delete program performs no IO
	RuleDeleteWrite = "delete-write-targets"       // delete inserts target delete-scratch aux relations only
	RuleDeleteOrder = "overdelete-before-rederive" // per base relation, del-family writes precede all red-family writes
	RuleCountShape  = "counts-nonnegative"         // COUNT-MERGE/COUNT-DELETE operands carry support counts of matching shape
)

// Diag is one invariant violation: the offending node (nil for
// program-level problems), the violated rule, and a human-readable message.
type Diag struct {
	Node any    // *ram.Relation, Statement, Operation, Condition, or Expr
	Rule string // one of the Rule* constants
	Msg  string
}

func (d Diag) String() string {
	return fmt.Sprintf("ramverify[%s]: %s", d.Rule, d.Msg)
}

// Error aggregates the diagnostics of one verification run as an error.
// When Prog is set, Error() includes a marked source excerpt per
// diagnostic so debug-mode failures are actionable.
type Error struct {
	Stage string // pipeline stage that produced the program, e.g. "ramopt"
	Prog  *ram.Program
	Diags []Diag
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ram verification failed after %s: %d invariant violation(s)", e.Stage, len(e.Diags))
	for _, d := range e.Diags {
		b.WriteString("\n  ")
		b.WriteString(d.String())
		if e.Prog != nil && d.Node != nil {
			if ex := Excerpt(e.Prog, d); ex != "" {
				b.WriteByte('\n')
				b.WriteString(indent(ex, "    "))
			}
		}
	}
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

// Check verifies p and returns a *Error naming stage when any invariant is
// violated, nil otherwise.
func Check(p *ram.Program, stage string) error {
	if diags := Program(p); len(diags) > 0 {
		return &Error{Stage: stage, Prog: p, Diags: diags}
	}
	return nil
}

// Program verifies a whole RAM program and returns every violation found,
// in traversal order. A nil return means the program is well-formed.
func Program(p *ram.Program) []Diag {
	c := &checker{p: p, declared: map[*ram.Relation]bool{}}
	if p == nil {
		return []Diag{{Rule: RuleProgram, Msg: "nil program"}}
	}
	c.relations()
	if p.Main == nil {
		c.addf(nil, RuleProgram, "program has no Main statement")
	} else {
		c.stmt(p.Main, false)
	}
	if p.Update != nil {
		c.inUpdate = true
		c.stmt(p.Update, false)
		c.inUpdate = false
	}
	if p.Delete != nil {
		c.inDelete = true
		c.redTouched = map[int]bool{}
		c.stmt(p.Delete, false)
		c.inDelete = false
	}
	return c.diags
}

// Condition verifies a stand-alone condition against an explicit, complete
// tuple scope: arities maps each bound tuple ID to the arity of its binding
// relation, and reads of any other tuple ID are unbound-slot violations.
// Relation-membership checks are skipped when the condition is detached
// from a program.
func Condition(cond ram.Condition, arities map[int]int) []Diag {
	return condition(cond, arities, false)
}

// FusedCondition verifies a condition at the condition-fusion boundary
// (compile.CompileCondition). There the tuple scope is *partial*: the
// caller's coords only cover tuples stored in non-identity index orders,
// so reads of tuples absent from arities are legal and only structural
// rules and known element bounds are enforced.
func FusedCondition(cond ram.Condition, arities map[int]int) []Diag {
	return condition(cond, arities, true)
}

func condition(cond ram.Condition, arities map[int]int, partial bool) []Diag {
	c := &checker{declared: map[*ram.Relation]bool{}, partialScope: partial}
	sc := scope{}
	for tid, ar := range arities {
		sc[tid] = binding{arity: ar}
	}
	if cond == nil {
		c.addf(nil, RuleNilNode, "nil condition")
	} else {
		c.cond(cond, sc)
	}
	return c.diags
}

// binding records what a bound tuple slot holds inside a query.
type binding struct {
	rel   *ram.Relation // nil for detached conditions
	arity int
}

// scope maps bound tuple IDs to their bindings. Binders copy the scope so
// sibling branches cannot see each other's slots.
type scope map[int]binding

func (s scope) with(tid int, b binding) scope {
	n := make(scope, len(s)+1)
	for k, v := range s {
		n[k] = v
	}
	n[tid] = b
	return n
}

type checker struct {
	p        *ram.Program
	declared map[*ram.Relation]bool
	ioSeen   map[ioKey]bool
	diags    []Diag
	// partialScope marks a detached check whose scope covers only some
	// bound tuples; reads of absent slots are then not violations.
	partialScope bool
	// inUpdate marks traversal of Program.Update, where the Rule-Update*
	// invariants apply.
	inUpdate bool
	// inDelete marks traversal of Program.Delete, where the Rule-Delete*
	// invariants apply.
	inDelete bool
	// redTouched records, per BaseID, that the delete walk has written a
	// rederivation-family relation; later del-family writes of the same
	// base violate overdelete-before-rederive.
	redTouched map[int]bool
}

// ioKey identifies one I/O action on one relation, for duplicate detection.
type ioKey struct {
	rel  *ram.Relation
	kind ram.IOKind
}

func (c *checker) addf(node any, rule, format string, args ...any) {
	c.diags = append(c.diags, Diag{Node: node, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// --- relations ---

func (c *checker) relations() {
	byName := map[string]int{}
	for i, r := range c.p.Relations {
		if r == nil {
			c.addf(nil, RuleProgram, "relation declaration %d is nil", i)
			continue
		}
		c.declared[r] = true
		if r.ID != i {
			c.addf(r, RuleRelID, "relation %s has ID %d but is declared at index %d", r.Name, r.ID, i)
		}
		if r.Name == "" {
			c.addf(r, RuleRelName, "relation at index %d has an empty name", i)
		} else if prev, dup := byName[r.Name]; dup {
			c.addf(r, RuleRelName, "relation %s declared twice (indexes %d and %d)", r.Name, prev, i)
		} else {
			byName[r.Name] = i
		}
		if len(r.Types) != r.Arity {
			c.addf(r, RuleRelTypes, "relation %s has arity %d but %d attribute types", r.Name, r.Arity, len(r.Types))
		}
		for oi, ord := range r.Orders {
			if !isPermutation(ord, r.Arity) {
				c.addf(r, RuleRelOrder, "relation %s order %d = %v is not a permutation of 0..%d", r.Name, oi, ord, r.Arity-1)
			}
		}
		if r.BaseID < 0 || r.BaseID >= len(c.p.Relations) {
			c.addf(r, RuleRelBase, "relation %s has BaseID %d outside the declaration range [0,%d)", r.Name, r.BaseID, len(c.p.Relations))
			continue
		}
		base := c.p.Relations[r.BaseID]
		if r.Aux {
			switch {
			case base == nil || r.BaseID == r.ID:
				c.addf(r, RuleRelAux, "aux relation %s has no distinct base relation", r.Name)
			case base.Aux:
				c.addf(r, RuleRelAux, "aux relation %s shadows aux relation %s", r.Name, base.Name)
			case base.Arity != r.Arity:
				c.addf(r, RuleRelAux, "aux relation %s has arity %d but base %s has arity %d", r.Name, r.Arity, base.Name, base.Arity)
			}
			if r.Input || r.Output || r.PrintSize {
				c.addf(r, RuleRelAux, "aux relation %s must not carry io flags", r.Name)
			}
		} else if r.BaseID != r.ID {
			c.addf(r, RuleRelBase, "source relation %s has BaseID %d, want its own ID %d", r.Name, r.BaseID, r.ID)
		}
		c.shardPlan(r, base)
	}
}

// shardPlan checks the shard-local-writes invariants of one declaration's
// stamped plan (ShardKey == 0 means unstamped and is always legal).
func (c *checker) shardPlan(r, base *ram.Relation) {
	if r.ShardKey == 0 {
		// An unstamped aux of a stamped base would split at SWAP barriers:
		// one side sharded, the other not.
		if r.Aux && base != nil && base.ShardKey != 0 && base.Rep != ram.RepEqRel {
			c.addf(r, RuleShardLocal, "aux relation %s carries no shard plan but base %s partitions on column %d",
				r.Name, base.Name, base.ShardCol())
		}
		return
	}
	if r.Arity == 0 {
		c.addf(r, RuleShardLocal, "nullary relation %s carries shard key %d; nullary relations cannot hash-partition", r.Name, r.ShardKey)
		return
	}
	if r.Rep == ram.RepEqRel {
		c.addf(r, RuleShardLocal, "eqrel relation %s carries shard key %d; no hash partition is closed under its congruence", r.Name, r.ShardKey)
		return
	}
	if r.ShardKey < 1 || r.ShardKey > r.Arity {
		c.addf(r, RuleShardLocal, "relation %s shard key %d is outside columns 1..%d", r.Name, r.ShardKey, r.Arity)
		return
	}
	if r.Aux && base != nil && base.Rep != ram.RepEqRel && base.ShardKey != r.ShardKey {
		c.addf(r, RuleShardLocal, "aux relation %s partitions on column %d but base %s partitions on %d; swaps and merges would cross shards",
			r.Name, r.ShardCol(), base.Name, base.ShardCol())
	}
}

func isPermutation(ord []int, arity int) bool {
	if len(ord) != arity {
		return false
	}
	seen := make([]bool, arity)
	for _, p := range ord {
		if p < 0 || p >= arity || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// relDeclared checks an operation's relation pointer and reports whether
// downstream shape checks can proceed.
func (c *checker) relDeclared(node any, rel *ram.Relation, what string) bool {
	if rel == nil {
		c.addf(node, RuleNilNode, "%s has a nil relation", what)
		return false
	}
	if !c.declared[rel] {
		c.addf(node, RuleRelDeclared, "%s references undeclared relation %s", what, rel.Name)
		return false
	}
	return true
}

// --- statements ---

func (c *checker) stmt(s ram.Statement, inLoop bool) {
	switch s := s.(type) {
	case *ram.Sequence:
		for i, st := range s.Stmts {
			if st == nil {
				c.addf(s, RuleNilNode, "sequence statement %d is nil", i)
				continue
			}
			c.stmt(st, inLoop)
		}
	case *ram.Loop:
		if s.Body == nil {
			c.addf(s, RuleNilNode, "loop has a nil body")
			return
		}
		c.stmt(s.Body, true)
	case *ram.Exit:
		if !inLoop {
			c.addf(s, RuleExitInLoop, "EXIT outside of any LOOP")
		}
		if s.Cond == nil {
			c.addf(s, RuleNilNode, "EXIT has a nil condition")
			return
		}
		// Statement-level conditions run outside any query: no tuple is in
		// scope, so every TupleElement is a violation.
		c.cond(s.Cond, scope{})
	case *ram.Query:
		if s.Root == nil {
			c.addf(s, RuleNilNode, "query %q has a nil root operation", s.Label)
			return
		}
		c.op(s.Root, s, scope{})
		c.parallelFrozen(s)
		if c.inUpdate {
			c.updateQuery(s)
		}
		if c.inDelete {
			c.deleteQuery(s)
		}
	case *ram.Clear:
		c.relDeclared(s, s.Rel, "CLEAR")
	case *ram.Swap:
		okA := c.relDeclared(s, s.A, "SWAP")
		okB := c.relDeclared(s, s.B, "SWAP")
		if okA && okB && !sameShape(s.A, s.B) {
			c.addf(s, RuleSwapShape, "SWAP (%s, %s) operands differ in arity, types, representation, or index orders", s.A.Name, s.B.Name)
		}
		if okA && okB && s.A.ShardKey != s.B.ShardKey {
			c.addf(s, RuleShardLocal, "SWAP (%s, %s) operands partition on different shard keys (%d vs %d)",
				s.A.Name, s.B.Name, s.A.ShardKey, s.B.ShardKey)
		}
		if c.inDelete && okA && okB {
			c.deleteWrite(s, s.A, "SWAP")
			c.deleteWrite(s, s.B, "SWAP")
		}
	case *ram.Merge:
		okD := c.relDeclared(s, s.Dst, "MERGE")
		okS := c.relDeclared(s, s.Src, "MERGE")
		if okD && okS {
			if s.Dst.Arity != s.Src.Arity || !sameTypes(s.Dst, s.Src) {
				c.addf(s, RuleMergeShape, "MERGE %s INTO %s with mismatched signatures (arity %d vs %d)", s.Src.Name, s.Dst.Name, s.Src.Arity, s.Dst.Arity)
			}
			if s.Dst.ShardKey != 0 && s.Src.ShardKey != 0 && s.Dst.ShardKey != s.Src.ShardKey {
				c.addf(s, RuleShardLocal, "MERGE %s INTO %s across shard keys (%d vs %d)",
					s.Src.Name, s.Dst.Name, s.Src.ShardKey, s.Dst.ShardKey)
			}
			if c.inUpdate && s.Dst.Stratum < s.Src.Stratum {
				c.addf(s, RuleUpdateStratum, "update MERGE %s INTO %s writes stratum %d from stratum %d", s.Src.Name, s.Dst.Name, s.Dst.Stratum, s.Src.Stratum)
			}
			if c.inDelete {
				c.deleteWrite(s, s.Dst, "MERGE")
			}
		}
	case *ram.Subtract:
		okD := c.relDeclared(s, s.Dst, "SUBTRACT")
		okS := c.relDeclared(s, s.Src, "SUBTRACT")
		if okD && okS && (s.Dst.Arity != s.Src.Arity || !sameTypes(s.Dst, s.Src)) {
			c.addf(s, RuleMergeShape, "SUBTRACT %s FROM %s with mismatched signatures (arity %d vs %d)", s.Src.Name, s.Dst.Name, s.Src.Arity, s.Dst.Arity)
		}
		// SUBTRACT is the one statement allowed to shrink non-scratch
		// relations (the phase-B removal pass and del := del - red), so it
		// is exempt from delete-write-targets and the ordering rule.
	case *ram.CountMerge:
		okD := c.relDeclared(s, s.Dst, "COUNT-MERGE")
		okS := c.relDeclared(s, s.Src, "COUNT-MERGE")
		okF := c.relDeclared(s, s.Fresh, "COUNT-MERGE")
		if okD && okS && okF {
			c.countShape(s, "COUNT-MERGE", s.Dst, s.Src)
			if s.Fresh.Kind != ram.AuxRecent {
				c.addf(s, RuleCountShape, "COUNT-MERGE into %s reports fresh tuples to %s (kind %s), want a recent tracker", s.Dst.Name, s.Fresh.Name, s.Fresh.Kind)
			}
			if s.Dst.Arity != s.Fresh.Arity || !sameTypes(s.Dst, s.Fresh) {
				c.addf(s, RuleCountShape, "COUNT-MERGE into %s and fresh tracker %s have mismatched signatures (arity %d vs %d)", s.Dst.Name, s.Fresh.Name, s.Dst.Arity, s.Fresh.Arity)
			}
		}
	case *ram.CountDelete:
		okD := c.relDeclared(s, s.Dst, "COUNT-DELETE")
		okS := c.relDeclared(s, s.Src, "COUNT-DELETE")
		okG := c.relDeclared(s, s.Gone, "COUNT-DELETE")
		if okD && okS && okG {
			c.countShape(s, "COUNT-DELETE", s.Dst, s.Src)
			if s.Gone.Kind != ram.AuxDel {
				c.addf(s, RuleCountShape, "COUNT-DELETE from %s reports dead tuples to %s (kind %s), want a del tracker", s.Dst.Name, s.Gone.Name, s.Gone.Kind)
			}
			if s.Dst.Arity != s.Gone.Arity || !sameTypes(s.Dst, s.Gone) {
				c.addf(s, RuleCountShape, "COUNT-DELETE from %s and del tracker %s have mismatched signatures (arity %d vs %d)", s.Dst.Name, s.Gone.Name, s.Dst.Arity, s.Gone.Arity)
			}
			if c.inDelete {
				c.deleteWrite(s, s.Gone, "COUNT-DELETE")
			}
		}
	case *ram.IO:
		if !c.relDeclared(s, s.Rel, "IO") {
			return
		}
		if c.inUpdate {
			c.addf(s, RuleUpdateNoIO, "update program performs IO on %s", s.Rel.Name)
		}
		if c.inDelete {
			c.addf(s, RuleDeleteNoIO, "delete program performs IO on %s", s.Rel.Name)
		}
		if c.ioSeen == nil {
			c.ioSeen = map[ioKey]bool{}
		}
		if key := (ioKey{s.Rel, s.Kind}); c.ioSeen[key] {
			c.addf(s, RuleIODup, "relation %s is subject to the same IO action twice", s.Rel.Name)
		} else {
			c.ioSeen[key] = true
		}
		switch s.Kind {
		case ram.IOLoad:
			if !s.Rel.Input {
				c.addf(s, RuleIOFlag, "LOAD targets %s, which is not declared .input", s.Rel.Name)
			}
		case ram.IOStore:
			if !s.Rel.Output {
				c.addf(s, RuleIOFlag, "STORE targets %s, which is not declared .output", s.Rel.Name)
			}
		case ram.IOPrintSize:
			if !s.Rel.PrintSize {
				c.addf(s, RuleIOFlag, "PRINTSIZE targets %s, which is not declared .printsize", s.Rel.Name)
			}
		default:
			c.addf(s, RuleIOFlag, "unknown IO kind %d on %s", s.Kind, s.Rel.Name)
		}
	case *ram.LogTimer:
		if s.Stmt == nil {
			c.addf(s, RuleNilNode, "TIMER %q has a nil statement", s.Label)
			return
		}
		c.stmt(s.Stmt, inLoop)
	default:
		c.addf(s, RuleProgram, "unknown statement type %T", s)
	}
}

func sameShape(a, b *ram.Relation) bool {
	if a.Arity != b.Arity || a.Rep != b.Rep || !sameTypes(a, b) {
		return false
	}
	if len(a.Orders) != len(b.Orders) {
		return false
	}
	for i := range a.Orders {
		if len(a.Orders[i]) != len(b.Orders[i]) {
			return false
		}
		for j := range a.Orders[i] {
			if a.Orders[i][j] != b.Orders[i][j] {
				return false
			}
		}
	}
	return true
}

func sameTypes(a, b *ram.Relation) bool {
	if len(a.Types) != len(b.Types) {
		return false
	}
	for i := range a.Types {
		if a.Types[i] != b.Types[i] {
			return false
		}
	}
	return true
}

// --- operations ---

// bind checks a binder's tuple slot and returns the extended scope.
func (c *checker) bind(node any, q *ram.Query, sc scope, tid int, b binding) scope {
	if tid < 0 || tid >= q.NumTuples {
		c.addf(node, RuleTupleSlot, "binder uses tuple slot t%d, outside the query's %d slot(s)", tid, q.NumTuples)
	}
	if _, live := sc[tid]; live {
		c.addf(node, RuleTupleRebound, "tuple slot t%d rebound while still live", tid)
	}
	return sc.with(tid, b)
}

func (c *checker) op(o ram.Operation, q *ram.Query, sc scope) {
	switch o := o.(type) {
	case *ram.Scan:
		if !c.relDeclared(o, o.Rel, "scan") {
			return
		}
		inner := c.bind(o, q, sc, o.TupleID, binding{rel: o.Rel, arity: o.Rel.Arity})
		c.nested(o, o.Nested, q, inner)
	case *ram.IndexScan:
		if !c.relDeclared(o, o.Rel, "index scan") {
			return
		}
		c.search(o, o.Rel, o.IndexID, o.Pattern, sc, "index scan", false)
		inner := c.bind(o, q, sc, o.TupleID, binding{rel: o.Rel, arity: o.Rel.Arity})
		c.nested(o, o.Nested, q, inner)
	case *ram.Choice:
		if !c.relDeclared(o, o.Rel, "choice") {
			return
		}
		inner := c.bind(o, q, sc, o.TupleID, binding{rel: o.Rel, arity: o.Rel.Arity})
		if o.Cond != nil { // nil means unconditional: first tuple wins
			c.cond(o.Cond, inner)
		}
		c.nested(o, o.Nested, q, inner)
	case *ram.IndexChoice:
		if !c.relDeclared(o, o.Rel, "index choice") {
			return
		}
		c.search(o, o.Rel, o.IndexID, o.Pattern, sc, "index choice", false)
		inner := c.bind(o, q, sc, o.TupleID, binding{rel: o.Rel, arity: o.Rel.Arity})
		if o.Cond != nil {
			c.cond(o.Cond, inner)
		}
		c.nested(o, o.Nested, q, inner)
	case *ram.Filter:
		if o.Cond == nil {
			c.addf(o, RuleNilNode, "filter has a nil condition")
		} else {
			c.cond(o.Cond, sc)
		}
		c.nested(o, o.Nested, q, sc)
	case *ram.Project:
		if !c.relDeclared(o, o.Rel, "insert") {
			return
		}
		if len(o.Exprs) != o.Rel.Arity {
			c.addf(o, RuleProjectArity, "INSERT into %s supplies %d expression(s), relation has arity %d", o.Rel.Name, len(o.Exprs), o.Rel.Arity)
		}
		for i, e := range o.Exprs {
			if e == nil {
				c.addf(o, RuleNilNode, "INSERT into %s has a nil expression at position %d", o.Rel.Name, i)
				continue
			}
			c.expr(e, sc)
		}
	case *ram.Aggregate:
		if !c.relDeclared(o, o.Rel, "aggregate") {
			return
		}
		c.search(o, o.Rel, o.IndexID, o.Pattern, sc, "aggregate", true)
		// Target and Cond see the candidate tuple at full arity...
		candidate := c.bind(o, q, sc, o.TupleID, binding{rel: o.Rel, arity: o.Rel.Arity})
		if o.Cond != nil {
			c.cond(o.Cond, candidate)
		}
		if o.Target != nil {
			c.expr(o.Target, candidate)
		} else if o.Kind != ram.AggCount {
			c.addf(o, RuleAggTarget, "%s aggregate over %s has no target expression", o.Kind, o.Rel.Name)
		}
		// ...while Nested sees only the 1-tuple result in the same slot.
		result := sc.with(o.TupleID, binding{arity: 1})
		c.nested(o, o.Nested, q, result)
	default:
		c.addf(o, RuleProgram, "unknown operation type %T", o)
	}
}

// parallelFrozen enforces the invariant parallel evaluation rests on: a
// parallel query's insert targets must be disjoint from every relation the
// query reads (scans, choices, aggregates, and existence/emptiness checks).
// Semi-naive translation guarantees this — recursive rules read the full
// and delta relations and insert into @new — and the interpreter exploits
// it by deferring worker inserts to a merge at the scan barrier; a query
// that read its own target would observe a relation frozen mid-iteration.
func (c *checker) parallelFrozen(q *ram.Query) {
	if !q.Parallel {
		return
	}
	reads, writes := analysis.QueryEffects(q)
	for rel := range writes {
		if rel != nil && reads[rel] {
			c.addf(q, RuleParallelFrozen, "parallel query %q inserts into %s and also reads it", q.Label, rel.Name)
		}
	}
}

// updateQuery enforces the invariants snapshot isolation rests on: queries
// of the update program insert only into scratch relations (aux or eqrel),
// never into a lower stratum than anything they read, and never into a
// relation they also read (so a half-evaluated query is invisible even to
// the update pass itself).
func (c *checker) updateQuery(q *ram.Query) {
	reads, writes := analysis.QueryEffects(q)
	for rel := range writes {
		if rel == nil {
			continue
		}
		if !rel.Aux && rel.Rep != ram.RepEqRel {
			c.addf(q, RuleUpdateWrite, "update query %q inserts into source relation %s (want an aux or eqrel target)", q.Label, rel.Name)
		}
		if reads[rel] {
			c.addf(q, RuleUpdateAlias, "update query %q inserts into %s and also reads it", q.Label, rel.Name)
		}
		for rd := range reads {
			if rd != nil && rel.Stratum < rd.Stratum {
				c.addf(q, RuleUpdateStratum, "update query %q writes %s (stratum %d) while reading %s (stratum %d)", q.Label, rel.Name, rel.Stratum, rd.Name, rd.Stratum)
			}
		}
	}
}

// countShape checks the (Dst, Src) pair shared by COUNT-MERGE and
// COUNT-DELETE: the destination maintains per-tuple support counts, the
// source is a multiplicity buffer, and their signatures agree — the shape
// that keeps support counts non-negative and exact.
func (c *checker) countShape(node any, what string, dst, src *ram.Relation) {
	if !dst.Counting {
		c.addf(node, RuleCountShape, "%s targets %s, which does not maintain support counts", what, dst.Name)
	}
	if src.Kind != ram.AuxCount {
		c.addf(node, RuleCountShape, "%s reads multiplicities from %s (kind %s), want a count buffer", what, src.Name, src.Kind)
	} else if !src.Counting {
		c.addf(node, RuleCountShape, "%s count buffer %s does not maintain support counts", what, src.Name)
	}
	if dst.Arity != src.Arity || !sameTypes(dst, src) {
		c.addf(node, RuleCountShape, "%s %s and %s have mismatched signatures (arity %d vs %d)", what, src.Name, dst.Name, src.Arity, dst.Arity)
	}
}

// delFamily reports whether kind belongs to the overdeletion scratch space.
func delFamily(k ram.AuxKind) bool {
	return k == ram.AuxDel || k == ram.AuxDelDelta || k == ram.AuxDelNew
}

// redFamily reports whether kind belongs to the rederivation scratch space.
func redFamily(k ram.AuxKind) bool {
	return k == ram.AuxRed || k == ram.AuxRedDelta || k == ram.AuxRedNew
}

// deleteWrite enforces the two write rules of the delete program on one
// written relation: writes stay inside the delete scratch space (count
// buffers and the del/red families — the physical relations only shrink,
// via the exempt SUBTRACT statements), and once a base relation's
// rederivation scratch has been written, its del family is frozen
// (overdelete-before-rederive: rederivation reads del_R as the exact
// overdeleted set, so growing it afterwards would unsoundly skip tuples).
func (c *checker) deleteWrite(node any, rel *ram.Relation, what string) {
	if !rel.Aux || !(rel.Kind == ram.AuxCount || delFamily(rel.Kind) || redFamily(rel.Kind)) {
		c.addf(node, RuleDeleteWrite, "delete %s writes %s (kind %s), want a count buffer or del/red tracker", what, rel.Name, rel.Kind)
		return
	}
	if redFamily(rel.Kind) {
		c.redTouched[rel.BaseID] = true
	}
	if delFamily(rel.Kind) && c.redTouched[rel.BaseID] {
		c.addf(node, RuleDeleteOrder, "delete %s writes %s after the rederivation of its base has begun", what, rel.Name)
	}
}

// deleteQuery enforces the delete-program invariants on one query: every
// insert target is delete scratch (the physical relations must keep
// presenting the old state until the final SUBTRACT pass) and respects the
// overdelete-before-rederive ordering of its base relation.
func (c *checker) deleteQuery(q *ram.Query) {
	_, writes := analysis.QueryEffects(q)
	for rel := range writes {
		if rel == nil {
			continue
		}
		c.deleteWrite(q, rel, fmt.Sprintf("query %q", q.Label))
	}
}

func (c *checker) nested(parent any, o ram.Operation, q *ram.Query, sc scope) {
	if o == nil {
		c.addf(parent, RuleNilNode, "operation has a nil nested operation")
		return
	}
	c.op(o, q, sc)
}

// search checks an index lookup: the pattern spans the relation's arity,
// pattern expressions are well-formed in the *enclosing* scope (they may
// not read the tuple being bound), IndexID selects a declared order, and
// the bound positions are exactly a prefix of that order. allowFullScan
// admits IndexID -1 with an all-unbound pattern (Aggregate's full scan).
func (c *checker) search(node any, rel *ram.Relation, indexID int, pattern []ram.Expr, sc scope, what string, allowFullScan bool) {
	if len(pattern) != rel.Arity {
		c.addf(node, RulePatternArity, "%s pattern on %s has %d position(s), relation has arity %d", what, rel.Name, len(pattern), rel.Arity)
		return
	}
	var bound []int
	for i, e := range pattern {
		if e == nil {
			continue
		}
		bound = append(bound, i)
		c.expr(e, sc)
	}
	if indexID == -1 && allowFullScan {
		if len(bound) > 0 {
			c.addf(node, RuleIndexID, "%s on %s binds positions %v but requests a full scan (IndexID -1)", what, rel.Name, bound)
		}
		return
	}
	orders := rel.Orders
	if indexID < 0 || indexID >= max(len(orders), 1) {
		c.addf(node, RuleIndexID, "%s on %s uses index %d, relation declares %d order(s)", what, rel.Name, indexID, len(orders))
		return
	}
	// Relations without explicit orders default to one identity order in
	// every backend; the prefix of the identity order is 0..k-1.
	order := identityIfEmpty(orders, indexID, rel.Arity)
	if !isPermutation(order, rel.Arity) {
		return // already reported as rel-order
	}
	prefix := map[int]bool{}
	for _, p := range order[:len(bound)] {
		prefix[p] = true
	}
	for _, b := range bound {
		if !prefix[b] {
			c.addf(node, RuleIndexPrefix, "%s on %s binds positions %v, not a prefix of order %v (index %d)", what, rel.Name, bound, order, indexID)
			return
		}
	}
}

func identityIfEmpty(orders []tuple.Order, indexID, arity int) tuple.Order {
	if len(orders) == 0 {
		return tuple.Identity(arity)
	}
	return orders[indexID]
}

// --- conditions ---

func (c *checker) cond(cond ram.Condition, sc scope) {
	switch cond := cond.(type) {
	case *ram.And:
		if cond.L == nil || cond.R == nil {
			c.addf(cond, RuleNilNode, "AND with a nil operand")
			return
		}
		c.cond(cond.L, sc)
		c.cond(cond.R, sc)
	case *ram.Not:
		if cond.C == nil {
			c.addf(cond, RuleNilNode, "NOT with a nil operand")
			return
		}
		c.cond(cond.C, sc)
	case *ram.EmptinessCheck:
		if c.p != nil {
			c.relDeclared(cond, cond.Rel, "emptiness check")
		}
	case *ram.ExistenceCheck:
		if c.p != nil {
			if !c.relDeclared(cond, cond.Rel, "existence check") {
				return
			}
			c.search(cond, cond.Rel, cond.IndexID, cond.Pattern, sc, "existence check", false)
		} else {
			for _, e := range cond.Pattern {
				if e != nil {
					c.expr(e, sc)
				}
			}
		}
	case *ram.Constraint:
		if cond.L == nil || cond.R == nil {
			c.addf(cond, RuleNilNode, "constraint with a nil operand")
			return
		}
		c.expr(cond.L, sc)
		c.expr(cond.R, sc)
	default:
		c.addf(cond, RuleProgram, "unknown condition type %T", cond)
	}
}

// --- expressions ---

// intrinsicArgs gives the expected argument count per functor; -1 means
// variadic with at least one argument.
var intrinsicArgs = map[ram.IntrinsicOp]int{
	ram.OpAdd: 2, ram.OpSub: 2, ram.OpMul: 2, ram.OpDiv: 2, ram.OpMod: 2,
	ram.OpPow: 2, ram.OpBAnd: 2, ram.OpBOr: 2, ram.OpBXor: 2,
	ram.OpBShl: 2, ram.OpBShr: 2, ram.OpLAnd: 2, ram.OpLOr: 2,
	ram.OpNeg: 1, ram.OpBNot: 1, ram.OpLNot: 1,
	ram.OpMin: -1, ram.OpMax: -1, ram.OpCat: -1,
	ram.OpStrlen: 1, ram.OpSubstr: 3, ram.OpOrd: 1,
	ram.OpToNumber: 1, ram.OpToString: 1,
}

func (c *checker) expr(e ram.Expr, sc scope) {
	switch e := e.(type) {
	case *ram.Constant:
		// always well-formed
	case *ram.TupleElement:
		// Slot-range violations are reported at the binder; a bound read
		// only needs the element bound checked here.
		b, bound := sc[e.TupleID]
		if !bound {
			if !c.partialScope {
				c.addf(e, RuleTupleUnbound, "t%d.%d reads tuple slot t%d, which no enclosing operation binds", e.TupleID, e.Elem, e.TupleID)
			}
			return
		}
		if e.Elem < 0 || e.Elem >= b.arity {
			name := "tuple"
			if b.rel != nil {
				name = b.rel.Name
			}
			c.addf(e, RuleElemBounds, "t%d.%d reads element %d of %s, which has arity %d", e.TupleID, e.Elem, e.Elem, name, b.arity)
		}
	case *ram.Intrinsic:
		want, known := intrinsicArgs[e.Op]
		switch {
		case !known:
			c.addf(e, RuleIntrinsicArgs, "unknown intrinsic op %d", e.Op)
		case want == -1 && len(e.Args) < 1:
			c.addf(e, RuleIntrinsicArgs, "%s takes at least 1 argument, got %d", e.Op, len(e.Args))
		case want != -1 && len(e.Args) != want:
			c.addf(e, RuleIntrinsicArgs, "%s takes %d argument(s), got %d", e.Op, want, len(e.Args))
		}
		for i, a := range e.Args {
			if a == nil {
				c.addf(e, RuleNilNode, "%s has a nil argument at position %d", e.Op, i)
				continue
			}
			c.expr(a, sc)
		}
	default:
		c.addf(e, RuleProgram, "unknown expression type %T", e)
	}
}
