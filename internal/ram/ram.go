// Package ram defines the Relational Algebra Machine (RAM) intermediate
// representation (paper §2, Figs 3 and 17): an imperative/relational program
// over typed relations, produced from the AST by internal/ast2ram and
// consumed by the interpreter (internal/interp), the closure compiler
// (internal/compile), and the Go source emitter (internal/codegen).
//
// A RAM program consists of relation declarations and a statement tree.
// Statements provide control flow (sequences, fixpoint loops, exits) and
// whole-relation operations (clear, swap, merge, I/O). A Query statement
// roots an *operation* tree: nested scans, index scans, filters, aggregates,
// and a final projection — the compiled form of one Datalog rule.
//
// Coordinates: RAM is written entirely in *source* tuple coordinates.
// Index orders are chosen by internal/indexselect and recorded in the
// relation declarations; mapping source coordinates onto encoded index
// coordinates is the backends' job (statically with the paper's §4.2
// reordering, or dynamically through decoding adapters).
package ram

import (
	"sti/internal/tuple"
	"sti/internal/value"
)

// Relation declares a RAM relation: name, shape, representation, and the
// set of index orders that back it.
type Relation struct {
	ID     int
	Name   string
	Arity  int
	Types  []value.Type
	Rep    RepKind
	Orders []tuple.Order // index 0 is the primary

	Input     bool
	Output    bool
	PrintSize bool

	// Aux marks delta/new/recent relations introduced by semi-naive
	// translation.
	Aux bool
	// Kind classifies an aux relation's role (AuxNone for source relations).
	Kind AuxKind
	// BaseID is the source relation a delta/new/recent relation shadows
	// (its own ID for source relations). Provenance uses it to attribute
	// premises read from deltas to the user-visible relation.
	BaseID int
	// Stratum is the evaluation stratum of the relation's defining SCC;
	// aux relations inherit their base's stratum. The verifier uses it to
	// check that update sections stay within their own stratum's scratch
	// space.
	Stratum int
	// Counting marks a relation that maintains per-tuple support counts
	// (the number of derivations producing each tuple) so the Delete entry
	// point can retract without rederivation. Only non-recursive IDB
	// relations and their cbuf buffers are counting.
	Counting bool
	// ShardKey is the relation's partition column for shard-parallel
	// evaluation, stored 1-based (column index + 1) so the zero value means
	// "no shard plan". It is stamped by ast2ram from the join-key analysis
	// (analysis.ShardKeys); aux relations carry the same key as their base
	// so swaps and merges between a relation and its delta/new/recent
	// companions move whole partitions. EqRel and nullary relations never
	// carry a plan. Backends that do not shard ignore the field.
	ShardKey int
}

// ShardCol returns the 0-based partition column of the relation's shard
// plan, or -1 when the relation carries none.
func (r *Relation) ShardCol() int { return r.ShardKey - 1 }

// AuxKind names the role of an auxiliary relation in semi-naive evaluation.
type AuxKind uint8

// Auxiliary relation roles.
const (
	AuxNone   AuxKind = iota // a source relation
	AuxDelta                 // delta_R: tuples new in the previous iteration
	AuxNew                   // new_R: tuples derived in the current iteration
	AuxRecent                // recent_R: tuples fresh since the last Apply batch

	// Delete-propagation scratch space (counting + DRed, see ast2ram/delete.go).
	AuxDel      // del_R: tuples scheduled for physical removal from R
	AuxDelDelta // ddel_R: overdeletion frontier of the previous iteration
	AuxDelNew   // ndel_R: overdeletions derived in the current iteration
	AuxRed      // red_R: overdeleted tuples proven to survive (rederived)
	AuxRedDelta // dred_R: rederivation frontier of the previous iteration
	AuxRedNew   // nred_R: rederivations derived in the current iteration
	AuxCount    // cbuf_R: counting buffer holding per-derivation multiplicities
)

func (k AuxKind) String() string {
	switch k {
	case AuxDelta:
		return "delta"
	case AuxNew:
		return "new"
	case AuxRecent:
		return "recent"
	case AuxDel:
		return "del"
	case AuxDelDelta:
		return "ddel"
	case AuxDelNew:
		return "ndel"
	case AuxRed:
		return "red"
	case AuxRedDelta:
		return "dred"
	case AuxRedNew:
		return "nred"
	case AuxCount:
		return "cbuf"
	default:
		return "none"
	}
}

// RepKind mirrors relation.Rep without importing it (the IR stays
// representation-agnostic; backends map RepKind onto concrete stores).
type RepKind uint8

// Relation representations.
const (
	RepBTree RepKind = iota
	RepBrie
	RepEqRel
)

func (r RepKind) String() string {
	switch r {
	case RepBrie:
		return "brie"
	case RepEqRel:
		return "eqrel"
	default:
		return "btree"
	}
}

// Program is a complete RAM program.
type Program struct {
	Relations []*Relation
	Main      Statement
	// Update is the incremental re-evaluation entry point: a delta-restart
	// variant of every stratum, run by a resident engine after new EDB
	// facts have been staged into the recent_R relations. It is nil when
	// the program is not insert-monotone (negation or aggregates), in
	// which case resident engines fall back to full recomputation.
	// The peephole RAM optimization passes rewrite Main only; the
	// analysis-gated passes (dead code, index pruning) rewrite Main and
	// Update together so the two entry points stay consistent.
	Update Statement
	// NoUpdateReason is the monotonicity-analysis fact explaining a nil
	// Update ("" when an update program was emitted): it names the first
	// rule that breaks insert-monotonicity, so resident engines can report
	// why incremental application is unavailable.
	NoUpdateReason string
	// Delete is the incremental retraction entry point: counting-based
	// propagation for non-recursive strata and overdelete/rederive (DRed)
	// for recursive ones, run after retracted EDB facts have been staged
	// into the del_R relations. nil when the program is not deletable (see
	// NoDeleteReason); deletable implies an Update program exists.
	Delete Statement
	// NoDeleteReason explains a nil Delete ("" when a delete program was
	// emitted), mirroring NoUpdateReason.
	NoDeleteReason string
	// NumRules counts translated source rules, for profiling tables.
	NumRules int
}

// --- statements ---

// Statement is the control-flow layer of RAM.
type Statement interface{ isStatement() }

// Sequence executes statements in order.
type Sequence struct {
	Stmts []Statement
}

// Loop executes Body until an Exit statement fires.
type Loop struct {
	Body Statement
	// Label names the fixpoint for diagnostics and telemetry (the stratum
	// and its recursive relations); it carries no semantics.
	Label string
}

// Exit breaks the innermost loop when Cond holds.
type Exit struct {
	Cond Condition
}

// Query executes an operation tree (one rule evaluation).
type Query struct {
	Root Operation
	// NumTuples is the number of tuple slots the rule needs (context size).
	NumTuples int
	// RuleID/Label identify the source rule for the profiler.
	RuleID int
	Label  string
	// Parallel marks the outermost scan as parallelizable.
	Parallel bool
}

// Clear empties a relation.
type Clear struct {
	Rel *Relation
}

// Swap exchanges the contents of two relations with identical signatures.
type Swap struct {
	A, B *Relation
}

// Merge inserts every tuple of Src into Dst. (Newer Soufflé lowers this to
// a scan+project loop; keeping the instruction shrinks hot fixpoint code.)
type Merge struct {
	Dst, Src *Relation
}

// Subtract removes every tuple of Src from Dst: the physical-removal pass of
// delete propagation, run once per source relation after all strata have
// finished reading the old state.
type Subtract struct {
	Dst, Src *Relation
}

// CountMerge folds the per-tuple derivation counts of Src (an AuxCount
// buffer) into the counting relation Dst; tuples whose support transitions
// from zero to positive are inserted into Dst's indexes and recorded in
// Fresh (the stratum's recent_R tracker).
type CountMerge struct {
	Dst, Src *Relation
	Fresh    *Relation
}

// CountDelete subtracts the per-tuple derivation counts of Src (an AuxCount
// buffer) from the counting relation Dst, clamping at zero; tuples whose
// support transitions from positive to zero are recorded in Gone (the
// stratum's del_R set) for later physical removal. Dst keeps the tuple until
// the final Subtract pass so other strata still observe the old state.
type CountDelete struct {
	Dst, Src *Relation
	Gone     *Relation
}

// IOKind selects an I/O action.
type IOKind uint8

// I/O actions.
const (
	IOLoad IOKind = iota
	IOStore
	IOPrintSize
)

// IO performs input/output on a relation through the runtime's I/O handler.
type IO struct {
	Kind IOKind
	Rel  *Relation
}

// LogTimer wraps a statement with a profiler timer.
type LogTimer struct {
	Label string
	Stmt  Statement
}

func (*Sequence) isStatement()    {}
func (*Loop) isStatement()        {}
func (*Exit) isStatement()        {}
func (*Query) isStatement()       {}
func (*Clear) isStatement()       {}
func (*Swap) isStatement()        {}
func (*Merge) isStatement()       {}
func (*Subtract) isStatement()    {}
func (*CountMerge) isStatement()  {}
func (*CountDelete) isStatement() {}
func (*IO) isStatement()          {}
func (*LogTimer) isStatement()    {}

// --- operations ---

// Operation is one level of a query's nested-loop tree.
type Operation interface{ isOperation() }

// Scan enumerates all tuples of a relation, binding each to TupleID.
type Scan struct {
	Rel     *Relation
	TupleID int
	Nested  Operation
}

// IndexScan enumerates the tuples matching the bound positions of Pattern
// (nil entries are unbound), using index IndexID of Rel, binding each to
// TupleID. The bound positions are exactly the first k positions of the
// chosen index order.
type IndexScan struct {
	Rel     *Relation
	IndexID int
	Pattern []Expr // length == arity; nil means unbound
	TupleID int
	Nested  Operation
}

// Choice finds at most one tuple of Rel satisfying Cond, binds it to
// TupleID, and runs Nested once.
type Choice struct {
	Rel     *Relation
	Cond    Condition
	TupleID int
	Nested  Operation
}

// IndexChoice is Choice over an index range.
type IndexChoice struct {
	Rel     *Relation
	IndexID int
	Pattern []Expr
	Cond    Condition
	TupleID int
	Nested  Operation
}

// Filter runs Nested only when Cond holds.
type Filter struct {
	Cond   Condition
	Nested Operation
}

// Project inserts a tuple built from Exprs into Rel (the INSERT of Fig 3).
type Project struct {
	Rel   *Relation
	Exprs []Expr
}

// AggKind is an aggregate operator.
type AggKind uint8

// Aggregate operators.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

func (k AggKind) String() string {
	return [...]string{"count", "sum", "min", "max"}[k]
}

// Aggregate folds Target over the tuples of Rel matching Pattern (nil
// Pattern entries unbound; IndexID -1 means full scan) that satisfy Cond.
// Each candidate tuple is bound to TupleID while Target/Cond evaluate; the
// final aggregate result is then bound as a 1-tuple at TupleID and Nested
// runs once. Min/max over an empty set do not run Nested; count/sum yield
// 0.
type Aggregate struct {
	Kind    AggKind
	Rel     *Relation
	IndexID int
	Pattern []Expr
	Cond    Condition // may be nil
	Target  Expr      // nil for count
	Type    value.Type
	TupleID int
	Nested  Operation
}

func (*Scan) isOperation()        {}
func (*IndexScan) isOperation()   {}
func (*Choice) isOperation()      {}
func (*IndexChoice) isOperation() {}
func (*Filter) isOperation()      {}
func (*Project) isOperation()     {}
func (*Aggregate) isOperation()   {}

// --- conditions ---

// Condition is a boolean query fragment.
type Condition interface{ isCondition() }

// And is a conjunction.
type And struct {
	L, R Condition
}

// Not negates a condition.
type Not struct {
	C Condition
}

// EmptinessCheck holds when the relation is empty.
type EmptinessCheck struct {
	Rel *Relation
}

// ExistenceCheck holds when some tuple of Rel matches the bound positions
// of Pattern (all positions bound = membership test). IndexID selects the
// index whose order makes the bound set a prefix.
type ExistenceCheck struct {
	Rel     *Relation
	IndexID int
	Pattern []Expr
}

// Constraint compares two expressions under a typed ordering.
type Constraint struct {
	Op   CmpOp
	Type value.Type
	L, R Expr
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (op CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[op]
}

func (*And) isCondition()            {}
func (*Not) isCondition()            {}
func (*EmptinessCheck) isCondition() {}
func (*ExistenceCheck) isCondition() {}
func (*Constraint) isCondition()     {}

// --- expressions ---

// Expr is a value-producing query fragment.
type Expr interface{ isExpr() }

// Constant is a literal 32-bit word.
type Constant struct {
	Val value.Value
}

// TupleElement reads element Elem (source coordinates) of the tuple bound
// at TupleID.
type TupleElement struct {
	TupleID int
	Elem    int
}

// IntrinsicOp identifies a functor.
type IntrinsicOp uint8

// Intrinsic functors. Arithmetic is interpreted under the node's Type.
const (
	OpAdd IntrinsicOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpBAnd
	OpBOr
	OpBXor
	OpBShl
	OpBShr
	OpLAnd
	OpLOr
	OpNeg
	OpBNot
	OpLNot
	OpMin
	OpMax
	OpCat
	OpStrlen
	OpSubstr
	OpOrd
	OpToNumber
	OpToString
)

func (op IntrinsicOp) String() string {
	return [...]string{
		"add", "sub", "mul", "div", "mod", "pow", "band", "bor", "bxor",
		"bshl", "bshr", "land", "lor", "neg", "bnot", "lnot", "min", "max",
		"cat", "strlen", "substr", "ord", "to_number", "to_string",
	}[op]
}

// Intrinsic applies a functor to argument expressions. Type selects the
// signed/unsigned/float interpretation for arithmetic.
type Intrinsic struct {
	Op   IntrinsicOp
	Type value.Type
	Args []Expr
}

func (*Constant) isExpr()     {}
func (*TupleElement) isExpr() {}
func (*Intrinsic) isExpr()    {}
