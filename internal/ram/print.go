package ram

import (
	"fmt"
	"strings"
)

// String renders the program in the textual style of the paper's Fig 3.
func (p *Program) String() string {
	pr := &printer{}
	pr.program(p)
	return pr.b.String()
}

// MarkedString renders the program like String, but with a three-column
// gutter on every line; lines whose node is (or contains) mark carry a
// ">> " marker. mark may be a *Relation, Statement, Operation, Condition,
// or Expr that appears in p. The verifier uses this to point at the
// offending node of a diagnostic.
func (p *Program) MarkedString(mark any) string {
	pr := &printer{mark: mark, gutter: true}
	pr.program(p)
	return pr.b.String()
}

// printer renders a program line by line. When gutter is set, each line is
// prefixed with ">> " or "   " depending on whether any of the nodes the
// line renders equals — or, for conditions and expressions, contains — the
// marked node.
type printer struct {
	b      strings.Builder
	mark   any
	gutter bool
}

// line emits one output line at the given depth. nodes lists the RAM nodes
// rendered on this line, for mark matching.
func (p *printer) line(depth int, nodes []any, format string, args ...any) {
	if p.gutter {
		hit := false
		for _, n := range nodes {
			if nodeContains(n, p.mark) {
				hit = true
				break
			}
		}
		if hit {
			p.b.WriteString(">> ")
		} else {
			p.b.WriteString("   ")
		}
	}
	for i := 0; i < depth; i++ {
		p.b.WriteString("  ")
	}
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

// nodeContains reports whether n is mark or, for condition/expression
// trees (which render inline on their parent's line), contains mark.
func nodeContains(n, mark any) bool {
	if n == nil || mark == nil {
		return false
	}
	if n == mark {
		return true
	}
	switch n := n.(type) {
	case *And:
		return nodeContains(n.L, mark) || nodeContains(n.R, mark)
	case *Not:
		return nodeContains(n.C, mark)
	case *ExistenceCheck:
		for _, e := range n.Pattern {
			if e != nil && nodeContains(e, mark) {
				return true
			}
		}
	case *Constraint:
		return nodeContains(n.L, mark) || nodeContains(n.R, mark)
	case *Intrinsic:
		for _, a := range n.Args {
			if nodeContains(a, mark) {
				return true
			}
		}
	case []Expr:
		for _, e := range n {
			if e != nil && nodeContains(e, mark) {
				return true
			}
		}
	}
	return false
}

func (p *printer) program(prog *Program) {
	for _, r := range prog.Relations {
		var flags strings.Builder
		if r.Input {
			flags.WriteString(" input")
		}
		if r.Output {
			flags.WriteString(" output")
		}
		if r.PrintSize {
			flags.WriteString(" printsize")
		}
		p.line(0, []any{r}, "DECL %s arity=%d rep=%s orders=%v%s",
			r.Name, r.Arity, r.Rep, r.Orders, flags.String())
	}
	p.stmt(prog.Main, 0)
	if prog.Update != nil {
		p.line(0, []any{prog.Update}, "UPDATE")
		p.stmt(prog.Update, 1)
	}
	if prog.Delete != nil {
		p.line(0, []any{prog.Delete}, "DELETE")
		p.stmt(prog.Delete, 1)
	}
}

func (p *printer) stmt(s Statement, depth int) {
	switch s := s.(type) {
	case *Sequence:
		for _, st := range s.Stmts {
			p.stmt(st, depth)
		}
	case *Loop:
		if s.Label != "" {
			p.line(depth, []any{s}, "LOOP ; %s", s.Label)
		} else {
			p.line(depth, []any{s}, "LOOP")
		}
		p.stmt(s.Body, depth+1)
		p.line(depth, []any{s}, "END LOOP")
	case *Exit:
		p.line(depth, []any{s, s.Cond}, "EXIT (%s)", CondString(s.Cond))
	case *Query:
		label := s.Label
		if label == "" {
			label = fmt.Sprintf("rule#%d", s.RuleID)
		}
		p.line(depth, []any{s}, "QUERY %s", label)
		p.op(s.Root, depth+1)
	case *Clear:
		p.line(depth, []any{s}, "CLEAR %s", relName(s.Rel))
	case *Swap:
		p.line(depth, []any{s}, "SWAP (%s, %s)", relName(s.A), relName(s.B))
	case *Merge:
		p.line(depth, []any{s}, "MERGE %s INTO %s", relName(s.Src), relName(s.Dst))
	case *Subtract:
		p.line(depth, []any{s}, "SUBTRACT %s FROM %s", relName(s.Src), relName(s.Dst))
	case *CountMerge:
		p.line(depth, []any{s}, "COUNT-MERGE %s INTO %s FRESH %s",
			relName(s.Src), relName(s.Dst), relName(s.Fresh))
	case *CountDelete:
		p.line(depth, []any{s}, "COUNT-DELETE %s FROM %s GONE %s",
			relName(s.Src), relName(s.Dst), relName(s.Gone))
	case *IO:
		switch s.Kind {
		case IOLoad:
			p.line(depth, []any{s}, "LOAD %s", relName(s.Rel))
		case IOStore:
			p.line(depth, []any{s}, "STORE %s", relName(s.Rel))
		default:
			p.line(depth, []any{s}, "PRINTSIZE %s", relName(s.Rel))
		}
	case *LogTimer:
		p.line(depth, []any{s}, "TIMER %q", s.Label)
		p.stmt(s.Stmt, depth+1)
	case nil:
		p.line(depth, nil, "<nil statement>")
	default:
		p.line(depth, []any{s}, "<%T>", s)
	}
}

func (p *printer) op(o Operation, depth int) {
	switch o := o.(type) {
	case *Scan:
		p.line(depth, []any{o}, "FOR t%d IN %s", o.TupleID, relName(o.Rel))
		p.op(o.Nested, depth+1)
	case *IndexScan:
		p.line(depth, []any{o, o.Pattern}, "FOR t%d IN %s ON INDEX %s",
			o.TupleID, relName(o.Rel), patternString(o.Pattern))
		p.op(o.Nested, depth+1)
	case *Choice:
		p.line(depth, []any{o, o.Cond}, "CHOICE t%d IN %s WHERE %s",
			o.TupleID, relName(o.Rel), CondString(o.Cond))
		p.op(o.Nested, depth+1)
	case *IndexChoice:
		p.line(depth, []any{o, o.Pattern, o.Cond}, "CHOICE t%d IN %s ON INDEX %s WHERE %s",
			o.TupleID, relName(o.Rel), patternString(o.Pattern), CondString(o.Cond))
		p.op(o.Nested, depth+1)
	case *Filter:
		p.line(depth, []any{o, o.Cond}, "IF (%s)", CondString(o.Cond))
		p.op(o.Nested, depth+1)
	case *Project:
		exprs := make([]string, len(o.Exprs))
		for i, e := range o.Exprs {
			exprs[i] = ExprString(e)
		}
		p.line(depth, []any{o, o.Exprs}, "INSERT (%s) INTO %s",
			strings.Join(exprs, ", "), relName(o.Rel))
	case *Aggregate:
		target := ""
		if o.Target != nil {
			target = " " + ExprString(o.Target)
		}
		cond := ""
		if o.Cond != nil {
			cond = " WHERE " + CondString(o.Cond)
		}
		p.line(depth, []any{o, o.Pattern, o.Cond, o.Target}, "t%d = %s%s IN %s ON INDEX %s%s",
			o.TupleID, o.Kind, target, relName(o.Rel), patternString(o.Pattern), cond)
		p.op(o.Nested, depth+1)
	case nil:
		p.line(depth, nil, "<nil operation>")
	default:
		p.line(depth, []any{o}, "<%T>", o)
	}
}

// relName tolerates nil relation pointers so that malformed programs can
// still be rendered for diagnostics.
func relName(r *Relation) string {
	if r == nil {
		return "<nil relation>"
	}
	return r.Name
}

func patternString(pattern []Expr) string {
	var parts []string
	for i, e := range pattern {
		if e != nil {
			parts = append(parts, fmt.Sprintf("%d=%s", i, ExprString(e)))
		}
	}
	if len(parts) == 0 {
		return "(full)"
	}
	return strings.Join(parts, " AND ")
}

// CondString renders a condition.
func CondString(c Condition) string {
	switch c := c.(type) {
	case *And:
		return CondString(c.L) + " AND " + CondString(c.R)
	case *Not:
		return "NOT (" + CondString(c.C) + ")"
	case *EmptinessCheck:
		return relName(c.Rel) + " = EMPTY"
	case *ExistenceCheck:
		return "(" + patternString(c.Pattern) + ") IN " + relName(c.Rel)
	case *Constraint:
		return fmt.Sprintf("%s %s:%s %s", ExprString(c.L), c.Op, c.Type, ExprString(c.R))
	case nil:
		return "<nil>"
	default:
		return fmt.Sprintf("<%T>", c)
	}
}

// ExprString renders an expression.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *Constant:
		return fmt.Sprintf("%d", e.Val)
	case *TupleElement:
		return fmt.Sprintf("t%d.%d", e.TupleID, e.Elem)
	case *Intrinsic:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s:%s(%s)", e.Op, e.Type, strings.Join(args, ", "))
	case nil:
		return "<nil>"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
