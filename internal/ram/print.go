package ram

import (
	"fmt"
	"strings"
)

// String renders the program in the textual style of the paper's Fig 3.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Relations {
		fmt.Fprintf(&b, "DECL %s arity=%d rep=%s orders=%v", r.Name, r.Arity, r.Rep, r.Orders)
		if r.Input {
			b.WriteString(" input")
		}
		if r.Output {
			b.WriteString(" output")
		}
		if r.PrintSize {
			b.WriteString(" printsize")
		}
		b.WriteByte('\n')
	}
	printStmt(&b, p.Main, 0)
	return b.String()
}

func ind(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func printStmt(b *strings.Builder, s Statement, depth int) {
	switch s := s.(type) {
	case *Sequence:
		for _, st := range s.Stmts {
			printStmt(b, st, depth)
		}
	case *Loop:
		ind(b, depth)
		b.WriteString("LOOP\n")
		printStmt(b, s.Body, depth+1)
		ind(b, depth)
		b.WriteString("END LOOP\n")
	case *Exit:
		ind(b, depth)
		fmt.Fprintf(b, "EXIT (%s)\n", CondString(s.Cond))
	case *Query:
		ind(b, depth)
		label := s.Label
		if label == "" {
			label = fmt.Sprintf("rule#%d", s.RuleID)
		}
		fmt.Fprintf(b, "QUERY %s\n", label)
		printOp(b, s.Root, depth+1)
	case *Clear:
		ind(b, depth)
		fmt.Fprintf(b, "CLEAR %s\n", s.Rel.Name)
	case *Swap:
		ind(b, depth)
		fmt.Fprintf(b, "SWAP (%s, %s)\n", s.A.Name, s.B.Name)
	case *Merge:
		ind(b, depth)
		fmt.Fprintf(b, "MERGE %s INTO %s\n", s.Src.Name, s.Dst.Name)
	case *IO:
		ind(b, depth)
		switch s.Kind {
		case IOLoad:
			fmt.Fprintf(b, "LOAD %s\n", s.Rel.Name)
		case IOStore:
			fmt.Fprintf(b, "STORE %s\n", s.Rel.Name)
		default:
			fmt.Fprintf(b, "PRINTSIZE %s\n", s.Rel.Name)
		}
	case *LogTimer:
		ind(b, depth)
		fmt.Fprintf(b, "TIMER %q\n", s.Label)
		printStmt(b, s.Stmt, depth+1)
	default:
		ind(b, depth)
		fmt.Fprintf(b, "<%T>\n", s)
	}
}

func printOp(b *strings.Builder, o Operation, depth int) {
	switch o := o.(type) {
	case *Scan:
		ind(b, depth)
		fmt.Fprintf(b, "FOR t%d IN %s\n", o.TupleID, o.Rel.Name)
		printOp(b, o.Nested, depth+1)
	case *IndexScan:
		ind(b, depth)
		fmt.Fprintf(b, "FOR t%d IN %s ON INDEX %s\n", o.TupleID, o.Rel.Name, patternString(o.Pattern))
		printOp(b, o.Nested, depth+1)
	case *Choice:
		ind(b, depth)
		fmt.Fprintf(b, "CHOICE t%d IN %s WHERE %s\n", o.TupleID, o.Rel.Name, CondString(o.Cond))
		printOp(b, o.Nested, depth+1)
	case *IndexChoice:
		ind(b, depth)
		fmt.Fprintf(b, "CHOICE t%d IN %s ON INDEX %s WHERE %s\n",
			o.TupleID, o.Rel.Name, patternString(o.Pattern), CondString(o.Cond))
		printOp(b, o.Nested, depth+1)
	case *Filter:
		ind(b, depth)
		fmt.Fprintf(b, "IF (%s)\n", CondString(o.Cond))
		printOp(b, o.Nested, depth+1)
	case *Project:
		ind(b, depth)
		exprs := make([]string, len(o.Exprs))
		for i, e := range o.Exprs {
			exprs[i] = ExprString(e)
		}
		fmt.Fprintf(b, "INSERT (%s) INTO %s\n", strings.Join(exprs, ", "), o.Rel.Name)
	case *Aggregate:
		ind(b, depth)
		target := ""
		if o.Target != nil {
			target = " " + ExprString(o.Target)
		}
		cond := ""
		if o.Cond != nil {
			cond = " WHERE " + CondString(o.Cond)
		}
		fmt.Fprintf(b, "t%d = %s%s IN %s ON INDEX %s%s\n",
			o.TupleID, o.Kind, target, o.Rel.Name, patternString(o.Pattern), cond)
		printOp(b, o.Nested, depth+1)
	default:
		ind(b, depth)
		fmt.Fprintf(b, "<%T>\n", o)
	}
}

func patternString(pattern []Expr) string {
	var parts []string
	for i, e := range pattern {
		if e != nil {
			parts = append(parts, fmt.Sprintf("%d=%s", i, ExprString(e)))
		}
	}
	if len(parts) == 0 {
		return "(full)"
	}
	return strings.Join(parts, " AND ")
}

// CondString renders a condition.
func CondString(c Condition) string {
	switch c := c.(type) {
	case *And:
		return CondString(c.L) + " AND " + CondString(c.R)
	case *Not:
		return "NOT (" + CondString(c.C) + ")"
	case *EmptinessCheck:
		return c.Rel.Name + " = EMPTY"
	case *ExistenceCheck:
		return "(" + patternString(c.Pattern) + ") IN " + c.Rel.Name
	case *Constraint:
		return fmt.Sprintf("%s %s:%s %s", ExprString(c.L), c.Op, c.Type, ExprString(c.R))
	default:
		return fmt.Sprintf("<%T>", c)
	}
}

// ExprString renders an expression.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *Constant:
		return fmt.Sprintf("%d", e.Val)
	case *TupleElement:
		return fmt.Sprintf("t%d.%d", e.TupleID, e.Elem)
	case *Intrinsic:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s:%s(%s)", e.Op, e.Type, strings.Join(args, ", "))
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
