package ram

import (
	"strings"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

func rel(id int, name string, arity int) *Relation {
	return &Relation{
		ID: id, Name: name, Arity: arity, BaseID: id,
		Types:  make([]value.Type, arity),
		Orders: []tuple.Order{tuple.Identity(arity)},
	}
}

// TestFig3Shape renders a program with the structure of the paper's Fig 3
// and checks every statement form appears.
func TestFig3Shape(t *testing.T) {
	edge := rel(0, "Edge", 2)
	unsafe := rel(1, "Unsafe", 1)
	delta := rel(2, "delta_Unsafe", 1)
	nw := rel(3, "new_Unsafe", 1)
	delta.Aux, nw.Aux = true, true

	query := &Query{
		RuleID: 0,
		Label:  "Unsafe(y) :- Unsafe(x), Edge(x, y).",
		Root: &Filter{
			Cond: &And{
				L: &Not{C: &EmptinessCheck{Rel: delta}},
				R: &Not{C: &EmptinessCheck{Rel: edge}},
			},
			Nested: &Scan{
				Rel: delta, TupleID: 0,
				Nested: &IndexScan{
					Rel: edge, IndexID: 0, TupleID: 1,
					Pattern: []Expr{&TupleElement{TupleID: 0, Elem: 0}, nil},
					Nested: &Filter{
						Cond: &Not{C: &ExistenceCheck{
							Rel:     unsafe,
							Pattern: []Expr{&TupleElement{TupleID: 1, Elem: 1}},
						}},
						Nested: &Project{Rel: nw, Exprs: []Expr{&TupleElement{TupleID: 1, Elem: 1}}},
					},
				},
			},
		},
		NumTuples: 2,
	}
	prog := &Program{
		Relations: []*Relation{edge, unsafe, delta, nw},
		Main: &Sequence{Stmts: []Statement{
			&IO{Kind: IOLoad, Rel: edge},
			&Loop{Body: &Sequence{Stmts: []Statement{
				query,
				&Exit{Cond: &EmptinessCheck{Rel: nw}},
				&Merge{Dst: unsafe, Src: nw},
				&Swap{A: delta, B: nw},
				&Clear{Rel: nw},
			}}},
			&IO{Kind: IOStore, Rel: unsafe},
			&IO{Kind: IOPrintSize, Rel: unsafe},
		}},
		NumRules: 1,
	}
	text := prog.String()
	for _, want := range []string{
		"DECL Edge arity=2",
		"LOAD Edge",
		"LOOP",
		"FOR t0 IN delta_Unsafe",
		"FOR t1 IN Edge ON INDEX 0=t0.0",
		"NOT ((0=t1.1) IN Unsafe)",
		"INSERT (t1.1) INTO new_Unsafe",
		"EXIT (new_Unsafe = EMPTY)",
		"MERGE new_Unsafe INTO Unsafe",
		"SWAP (delta_Unsafe, new_Unsafe)",
		"CLEAR new_Unsafe",
		"END LOOP",
		"STORE Unsafe",
		"PRINTSIZE Unsafe",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, text)
		}
	}
}

func TestOperationRendering(t *testing.T) {
	r := rel(0, "r", 2)
	agg := &Aggregate{
		Kind: AggSum, Rel: r, IndexID: -1,
		Pattern: []Expr{&Constant{Val: 3}, nil},
		Target:  &TupleElement{TupleID: 0, Elem: 1},
		Type:    value.Number,
		TupleID: 0,
		Nested:  &Project{Rel: r, Exprs: []Expr{&Constant{Val: 1}, &Constant{Val: 2}}},
	}
	q := &Query{Root: agg, Label: "agg"}
	p := &Program{Relations: []*Relation{r}, Main: q}
	text := p.String()
	if !strings.Contains(text, "t0 = sum t0.1 IN r ON INDEX 0=3") {
		t.Fatalf("aggregate rendering:\n%s", text)
	}

	choice := &Query{Label: "choice", Root: &IndexChoice{
		Rel: r, Pattern: []Expr{&Constant{Val: 7}, nil},
		Cond:    &Constraint{Op: CmpGT, Type: value.Number, L: &TupleElement{TupleID: 0, Elem: 1}, R: &Constant{Val: 0}},
		Nested:  &Project{Rel: r, Exprs: []Expr{&Constant{Val: 1}, &Constant{Val: 2}}},
		TupleID: 0,
	}}
	text = (&Program{Relations: []*Relation{r}, Main: choice}).String()
	if !strings.Contains(text, "CHOICE t0 IN r ON INDEX 0=7 WHERE t0.1 >:number 0") {
		t.Fatalf("choice rendering:\n%s", text)
	}
}

func TestExprAndCondStrings(t *testing.T) {
	e := &Intrinsic{Op: OpAdd, Type: value.Number, Args: []Expr{
		&TupleElement{TupleID: 2, Elem: 1},
		&Constant{Val: 5},
	}}
	if got := ExprString(e); got != "add:number(t2.1, 5)" {
		t.Fatalf("ExprString = %q", got)
	}
	c := &And{
		L: &Constraint{Op: CmpNE, Type: value.Symbol, L: &Constant{Val: 1}, R: &Constant{Val: 2}},
		R: &Not{C: &EmptinessCheck{Rel: rel(0, "x", 1)}},
	}
	if got := CondString(c); got != "1 !=:symbol 2 AND NOT (x = EMPTY)" {
		t.Fatalf("CondString = %q", got)
	}
}

func TestEnumStrings(t *testing.T) {
	if RepBrie.String() != "brie" || RepEqRel.String() != "eqrel" || RepBTree.String() != "btree" {
		t.Fatal("rep names")
	}
	if AggCount.String() != "count" || AggMax.String() != "max" {
		t.Fatal("agg names")
	}
	if CmpLE.String() != "<=" {
		t.Fatal("cmp names")
	}
	if OpToString.String() != "to_string" || OpBShl.String() != "bshl" {
		t.Fatal("intrinsic names")
	}
}
