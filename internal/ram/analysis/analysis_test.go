package analysis_test

import (
	"fmt"
	"strings"
	"testing"

	"sti/internal/ast2ram"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/ram/analysis"
	"sti/internal/sema"
	"sti/internal/symtab"
)

func translate(t *testing.T, src string) *ram.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	prog, err := ast2ram.Translate(an, symtab.New())
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return prog
}

func relByName(t *testing.T, p *ram.Program, name string) *ram.Relation {
	t.Helper()
	for _, r := range p.Relations {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no relation %q", name)
	return nil
}

const tcSrc = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl scratch(x:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
scratch(x) :- edge(x, _).
`

func TestLiveness(t *testing.T) {
	prog := translate(t, tcSrc)
	f := analysis.Analyze(prog)
	if !f.HasSinks() {
		t.Fatal("HasSinks = false, program declares .output path")
	}
	cases := []struct {
		name string
		live bool
	}{
		{"edge", true}, {"path", true},
		{"delta_path", true}, {"new_path", true},
		{"scratch", false},
	}
	for _, c := range cases {
		rel := relByName(t, prog, c.name)
		if got := f.Live(rel); got != c.live {
			t.Errorf("Live(%s) = %v, want %v (why: %s)", c.name, got, c.live, f.Explain(rel))
		}
	}
	if why := f.Explain(relByName(t, prog, "path")); why != "declared .output" {
		t.Errorf("Explain(path) = %q", why)
	}
	if why := f.Explain(relByName(t, prog, "edge")); !strings.Contains(why, "feeds live relation") {
		t.Errorf("Explain(edge) = %q", why)
	}
	if why := f.Explain(relByName(t, prog, "scratch")); !strings.Contains(why, "no use reaches") {
		t.Errorf("Explain(scratch) = %q", why)
	}
}

func TestDefUseAndEdges(t *testing.T) {
	prog := translate(t, tcSrc)
	f := analysis.Analyze(prog)
	edge := f.Of(relByName(t, prog, "edge"))
	if len(edge.Defs) == 0 || edge.Defs[0].Kind != analysis.DefLoad {
		t.Fatalf("edge defs = %v, want a load site first", edge.Defs)
	}
	var scanUses int
	for _, u := range edge.Uses {
		if u.Kind == analysis.UseScan {
			scanUses++
		}
	}
	if scanUses == 0 {
		t.Fatalf("edge has no scan uses: %v", edge.Uses)
	}
	path := relByName(t, prog, "path")
	// The dependence graph must contain edge→path.
	found := false
	for _, e := range f.Edges {
		if e.From.Name == "edge" && e.To == path {
			found = true
		}
	}
	if !found {
		t.Fatalf("no edge→path dependence edge in %d edges", len(f.Edges))
	}
	// path's defs include projections plus the merge from new_path.
	pf := f.Of(path)
	kinds := map[analysis.SiteKind]bool{}
	for _, d := range pf.Defs {
		kinds[d.Kind] = true
	}
	if !kinds[analysis.DefMerge] {
		t.Fatalf("path defs lack a merge site: %v", pf.Defs)
	}
}

func TestStratumEdges(t *testing.T) {
	prog := translate(t, tcSrc)
	f := analysis.Analyze(prog)
	cross := 0
	for _, e := range f.Edges {
		if e.CrossStratum {
			cross++
		}
	}
	if cross == 0 {
		t.Fatal("expected at least one cross-stratum dependence edge (edge→path)")
	}
}

func TestBindingsAndIndexUsage(t *testing.T) {
	// The second body atom of the recursive rule searches edge on its first
	// column; the guard existence check searches path on both columns.
	prog := translate(t, tcSrc)
	f := analysis.Analyze(prog)
	edge := f.Of(relByName(t, prog, "edge"))
	patterns := map[string]bool{}
	for _, b := range edge.Bindings {
		patterns[fmt.Sprint(b.Cols)] = true
	}
	if !patterns["[]"] || !patterns["[0]"] {
		t.Fatalf("edge bindings = %v, want a full scan and a first-column search", edge.Bindings)
	}
	if !edge.IndexUsed[0] {
		t.Fatal("primary index must always count as used")
	}
}

func TestQueryEffectsDefensive(t *testing.T) {
	// A malformed query (nil nested, nil relation) must not panic.
	q := &ram.Query{Root: &ram.Scan{Rel: nil, TupleID: 0, Nested: nil}}
	reads, writes := analysis.QueryEffects(q)
	if len(reads) != 0 || len(writes) != 0 {
		t.Fatalf("reads=%v writes=%v, want empty", reads, writes)
	}
	r, w := analysis.QueryEffects(nil)
	if len(r) != 0 || len(w) != 0 {
		t.Fatal("nil query must yield empty effect sets")
	}
}

func TestNoSinks(t *testing.T) {
	prog := translate(t, `
.decl a(x:number)
.decl b(x:number)
b(x) :- a(x).
`)
	f := analysis.Analyze(prog)
	if f.HasSinks() {
		t.Fatal("HasSinks = true for a program without IO sinks")
	}
}

func TestMonotone(t *testing.T) {
	check := func(src string, wantMonotone bool, wantReason string) {
		t.Helper()
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		an, errs := sema.Analyze(p)
		if len(errs) > 0 {
			t.Fatalf("sema: %v", errs)
		}
		m := analysis.Monotone(an)
		if m.Monotone() != wantMonotone {
			t.Fatalf("Monotone() = %v, want %v (reason %q)", m.Monotone(), wantMonotone, m.Reason())
		}
		if wantReason != "" && !strings.Contains(m.Reason(), wantReason) {
			t.Fatalf("Reason() = %q, want substring %q", m.Reason(), wantReason)
		}
	}
	check(tcSrc, true, "")
	check(`
.decl a(x:number)
.decl b(x:number)
.decl c(x:number)
c(x) :- a(x), !b(x).
`, false, "negated atom !b(x)")
	check(`
.decl e(x:number, y:number)
.decl out(x:number, n:number)
out(x, n) :- e(x, _), n = count : { e(x, _) }.
`, false, "count aggregate")
}

func TestMonotoneGatesUpdate(t *testing.T) {
	// Translation must agree with the analysis fact: monotone programs get
	// an Update entry point, non-monotone programs get the reason instead.
	mono := translate(t, tcSrc)
	if mono.Update == nil || mono.NoUpdateReason != "" {
		t.Fatalf("monotone program: Update=%v reason=%q", mono.Update != nil, mono.NoUpdateReason)
	}
	neg := translate(t, `
.decl a(x:number)
.decl b(x:number)
.decl c(x:number)
c(x) :- a(x), !b(x).
`)
	if neg.Update != nil {
		t.Fatal("non-monotone program emitted an Update entry point")
	}
	if !strings.Contains(neg.NoUpdateReason, "not insert-monotone") {
		t.Fatalf("NoUpdateReason = %q", neg.NoUpdateReason)
	}
}
