package analysis

import "sti/internal/ram"

// ShardKeys derives a shard plan for a RAM program: the partition column of
// every relation for hash-partitioned ("sharded") evaluation, in source
// coordinates, or -1 for relations that cannot be sharded. The slice is
// aligned with p.Relations.
//
// The key of a base relation is the column most often bound by Main's
// searches of it or of its aux companions (index scans, choices,
// aggregates, existence checks): partitioning on the most-bound column lets
// the largest share of point and prefix reads resolve against a single
// shard instead of broadcasting over all of them. Only Main votes — the
// Update/Delete entry points run unsharded, and their rotated variants bind
// different columns than the fixpoint the plan serves. Ties break toward
// the lowest column, and relations that are only ever fully scanned
// partition on column 0. Aux relations (delta/new/recent and the
// delete-propagation families) take exactly their base's key, so the Swap
// and Merge statements of semi-naive evaluation exchange whole partitions
// between aligned shards — the invariant the shard-local-writes verifier
// rule enforces.
//
// Unshardable (-1): nullary relations (nothing to hash) and eqrel relations
// (the union-find implies pairs across arbitrary elements, so no hash
// partition of the pair space is closed under its congruence).
func ShardKeys(p *ram.Program) []int {
	if p == nil {
		return nil
	}
	keys := make([]int, len(p.Relations))
	votes := make([][]int, len(p.Relations))
	for i, rd := range p.Relations {
		keys[i] = -1
		if rd != nil {
			votes[i] = make([]int, rd.Arity)
		}
	}
	v := &shardVoter{p: p, votes: votes}
	if p.Main != nil {
		v.stmt(p.Main)
	}
	// First pass: source relations take their own vote tally.
	for i, rd := range p.Relations {
		if rd == nil || rd.Arity == 0 || rd.Rep == ram.RepEqRel || rd.Aux {
			continue
		}
		keys[i] = argmaxVote(votes[i])
	}
	// Second pass: aux companions inherit their base's key.
	for i, rd := range p.Relations {
		if rd == nil || !rd.Aux || rd.Arity == 0 || rd.Rep == ram.RepEqRel {
			continue
		}
		if rd.BaseID < 0 || rd.BaseID >= len(keys) {
			continue
		}
		base := p.Relations[rd.BaseID]
		// Aux relations of eqrel bases are plain B-trees of explicit
		// pairs; the base has no key to inherit, so they take column 0.
		if base != nil && base.Rep == ram.RepEqRel {
			keys[i] = 0
			continue
		}
		keys[i] = keys[rd.BaseID]
	}
	return keys
}

// argmaxVote returns the most-voted column, breaking ties toward the lowest
// (column 0 when nothing is ever bound).
func argmaxVote(votes []int) int {
	best := 0
	for c := 1; c < len(votes); c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// shardVoter walks Main and tallies, per base relation, how many search
// sites bind each column. Sites on aux companions vote for the base: in the
// fixpoint it is delta/new relations that are scanned and probed, and the
// whole family must partition identically.
type shardVoter struct {
	p     *ram.Program
	votes [][]int
}

// vote adds one tally per bound pattern column to rel's base relation.
func (v *shardVoter) vote(rel *ram.Relation, pattern []ram.Expr) {
	if rel == nil {
		return
	}
	id := rel.ID
	if rel.Aux && rel.BaseID >= 0 && rel.BaseID < len(v.votes) {
		id = rel.BaseID
	}
	if id < 0 || id >= len(v.votes) {
		return
	}
	tally := v.votes[id]
	for c, e := range pattern {
		if e != nil && c < len(tally) {
			tally[c]++
		}
	}
}

func (v *shardVoter) stmt(s ram.Statement) {
	switch s := s.(type) {
	case *ram.Sequence:
		for _, st := range s.Stmts {
			if st != nil {
				v.stmt(st)
			}
		}
	case *ram.Loop:
		if s.Body != nil {
			v.stmt(s.Body)
		}
	case *ram.Query:
		v.op(s.Root)
	case *ram.LogTimer:
		if s.Stmt != nil {
			v.stmt(s.Stmt)
		}
	}
}

func (v *shardVoter) op(o ram.Operation) {
	switch o := o.(type) {
	case *ram.Scan:
		v.op(o.Nested)
	case *ram.IndexScan:
		v.vote(o.Rel, o.Pattern)
		v.op(o.Nested)
	case *ram.Choice:
		v.cond(o.Cond)
		v.op(o.Nested)
	case *ram.IndexChoice:
		v.vote(o.Rel, o.Pattern)
		v.cond(o.Cond)
		v.op(o.Nested)
	case *ram.Filter:
		v.cond(o.Cond)
		v.op(o.Nested)
	case *ram.Aggregate:
		v.vote(o.Rel, o.Pattern)
		v.cond(o.Cond)
		v.op(o.Nested)
	}
}

func (v *shardVoter) cond(c ram.Condition) {
	switch c := c.(type) {
	case *ram.And:
		v.cond(c.L)
		v.cond(c.R)
	case *ram.Not:
		v.cond(c.C)
	case *ram.ExistenceCheck:
		v.vote(c.Rel, c.Pattern)
	}
}

// StampShardKeys computes ShardKeys and records the plan on the relation
// declarations (ram.Relation.ShardKey, 1-based). ast2ram calls it once per
// translation; engines that shard read the stamped plan instead of
// re-deriving it.
func StampShardKeys(p *ram.Program) {
	for i, col := range ShardKeys(p) {
		p.Relations[i].ShardKey = col + 1
	}
}
