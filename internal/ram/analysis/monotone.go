package analysis

import (
	"fmt"

	"sti/internal/ast"
	"sti/internal/sema"
)

// RuleClass is the monotonicity/safety classification of one source clause.
// A clause is insert-monotone when adding EDB facts can only add tuples it
// derives, never retract one; stratified negation and aggregates both break
// this (a new fact can falsify a negated atom or change an aggregate
// value).
type RuleClass struct {
	Rel      string // head relation name
	Clause   *ast.Clause
	Monotone bool
	// Reason names the first non-monotone construct in the clause, e.g.
	// `negated atom !b(x)` or `count aggregate`; "" for monotone clauses.
	Reason string
}

// Monotonicity is the program-level classification: the per-rule table plus
// the aggregate verdict that gates Update-program emission.
type Monotonicity struct {
	Rules  []RuleClass
	reason string
}

// Monotone reports whether every clause of the program is insert-monotone,
// i.e. whether a delta-restart Update program is sound.
func (m *Monotonicity) Monotone() bool { return m.reason == "" }

// Reason explains why the program is not insert-monotone, naming the first
// offending rule; "" when the program is monotone.
func (m *Monotonicity) Reason() string { return m.reason }

// Monotone classifies every clause of an analyzed program. The verdict
// replaces the ad-hoc predicate ast2ram previously used to gate Update
// emission: translation consults Monotone() and records Reason() on the
// RAM program so resident engines can explain why incremental application
// is unavailable.
func Monotone(p *sema.Program) *Monotonicity {
	m := &Monotonicity{}
	for _, r := range p.RelList {
		for _, c := range r.Clauses {
			rc := classifyClause(r.Name(), c)
			m.Rules = append(m.Rules, rc)
			if !rc.Monotone && m.reason == "" {
				m.reason = fmt.Sprintf("rule %q is not insert-monotone: %s", c.String(), rc.Reason)
			}
		}
	}
	return m
}

// classifyClause inspects one clause for non-monotone constructs: negated
// body atoms and aggregate expressions (anywhere in head or body, including
// nested aggregate bodies).
func classifyClause(rel string, c *ast.Clause) RuleClass {
	rc := RuleClass{Rel: rel, Clause: c, Monotone: true}
	for _, l := range c.Body {
		if n, ok := l.(*ast.Negation); ok {
			rc.Monotone = false
			rc.Reason = fmt.Sprintf("negated atom !%s", n.Atom.String())
			return rc
		}
	}
	c.Walk(func(e ast.Expr) {
		if agg, ok := e.(*ast.Aggregate); ok && rc.Monotone {
			rc.Monotone = false
			rc.Reason = fmt.Sprintf("%s aggregate", agg.Kind)
		}
	})
	return rc
}
