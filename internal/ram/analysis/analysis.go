// Package analysis implements a reusable static-analysis framework over the
// RAM IR. It computes, in one traversal of a ram.Program:
//
//   - per-relation def-use chains: every site that writes a relation
//     (projections, merges, swaps, loads) and every site that reads one
//     (scans, choices, aggregates, existence/emptiness checks, merges,
//     swaps, stores);
//   - a relation dependence graph: an edge R → S for every query that reads
//     R while inserting into S and for every whole-relation data movement,
//     each edge tagged with whether it crosses strata;
//   - relation liveness: a relation is live when one of its transitive uses
//     reaches an IO sink (a .output or .printsize relation). Everything the
//     analysis cannot see — resident databases and the embedding API keep
//     every source relation queryable — must be handled by the caller
//     choosing whether to act on liveness at all (see ramopt.Queryable);
//   - per-index usage: which declared orders of each relation are actually
//     selected by some search, and
//   - per-relation binding patterns: the distinct bound-argument column sets
//     observed across index searches, the seed facts for magic-set style
//     transformations.
//
// The facts are consumed by the ramopt dead-code and index-pruning passes,
// by the ram/verify update-* and parallel-frozen rules (through
// QueryEffects), and by `sti vet`. The companion file monotone.go hosts the
// source-level monotonicity classification that decides Update-program
// eligibility.
//
// The analysis is purely monotone over two lattices: liveness is a
// least-fixpoint over the powerset of relations seeded with the IO sinks
// and propagated backwards along def-use edges, and may-be-nonempty (used
// by the lint layer over the AST) is the dual forward fixpoint. Traversal
// order is the program's statement order, Main before Update, so fact
// tables list sites in evaluation order.
package analysis

import (
	"fmt"
	"sort"

	"sti/internal/ram"
)

// SiteKind classifies one def or use site.
type SiteKind uint8

// Site kinds. Defs first, then uses; MergeSrc/Swap appear in both chains
// (a swap both reads and writes each operand).
const (
	DefProject   SiteKind = iota // INSERT of a query
	DefMerge                     // MERGE destination
	DefSwap                      // SWAP operand (write side)
	DefLoad                      // LOAD from the IO handler
	UseScan                      // full or index scan, choice
	UseAggregate                 // aggregate source
	UseExistence                 // existence check in a condition
	UseEmptiness                 // emptiness check (loop exit)
	UseMergeSrc                  // MERGE source
	UseSwap                      // SWAP operand (read side)
	UseStore                     // STORE to the IO handler
	UsePrintSize                 // PRINTSIZE to the IO handler
	DefSubtract                  // SUBTRACT destination (tuples removed in place)
	UseSubtract                  // SUBTRACT source (the tuples to remove)
	DefCount                     // COUNT-MERGE/COUNT-DELETE write side (Dst, Fresh, Gone)
	UseCount                     // COUNT-MERGE/COUNT-DELETE read side (Src, and Dst's counts)
)

func (k SiteKind) String() string {
	return [...]string{
		"project", "merge-dst", "swap-write", "load",
		"scan", "aggregate", "existence", "emptiness",
		"merge-src", "swap-read", "store", "printsize",
		"subtract-dst", "subtract-src", "count-write", "count-read",
	}[k]
}

// Site is one def or use of a relation: the statement it occurs under
// (a *ram.Query for operation-level sites) and which program section it
// belongs to (Main when neither flag is set).
type Site struct {
	Kind     SiteKind
	Stmt     ram.Statement
	InUpdate bool
	InDelete bool
}

// Binding is one bound-argument pattern observed on searches of a relation:
// Cols lists the bound column positions (source coordinates, sorted), Count
// how many search sites bind exactly that set. A full scan is the empty
// pattern.
type Binding struct {
	Cols  []int
	Count int
}

// RelFacts aggregates everything the analysis learned about one relation.
type RelFacts struct {
	Rel  *ram.Relation
	Defs []Site
	Uses []Site

	// Live reports whether some transitive use reaches an IO sink; Why
	// explains the verdict ("declared .output", "feeds live relation path",
	// or "no use reaches an IO sink").
	Live bool
	Why  string

	// IndexUsed has one entry per declared order (at least one: relations
	// without explicit orders have an implicit identity primary). Index 0 is
	// always considered used — full scans, merges, stores, and deterministic
	// iteration all run over the primary.
	IndexUsed []bool

	// Bindings lists the distinct bound-column patterns of the relation's
	// search sites, sorted by column set.
	Bindings []Binding
}

// Edge is one relation dependence: during evaluation, tuples of From flow
// into (or gate the derivation of) To. CrossStratum marks edges between
// different strata.
type Edge struct {
	From, To     *ram.Relation
	CrossStratum bool
}

// Facts is the result of analyzing one program.
type Facts struct {
	Prog  *ram.Program
	Rels  []*RelFacts // declaration order
	Edges []Edge      // deduplicated, first-occurrence order

	byRel map[*ram.Relation]*RelFacts
}

// Of returns the facts for rel, or nil for relations unknown to the
// analyzed program.
func (f *Facts) Of(rel *ram.Relation) *RelFacts {
	return f.byRel[rel]
}

// Live reports relation liveness; relations unknown to the program count as
// live (the conservative answer for transformation passes).
func (f *Facts) Live(rel *ram.Relation) bool {
	if rf := f.byRel[rel]; rf != nil {
		return rf.Live
	}
	return true
}

// Explain returns the liveness explanation for rel, "" when unknown.
func (f *Facts) Explain(rel *ram.Relation) string {
	if rf := f.byRel[rel]; rf != nil {
		return rf.Why
	}
	return ""
}

// HasSinks reports whether the program has any IO sink at all. A program
// without sinks is observable only through engine queries, so liveness is
// meaningless for it and consumers must not eliminate anything.
func (f *Facts) HasSinks() bool {
	for _, rf := range f.Rels {
		if rf.Rel.Output || rf.Rel.PrintSize {
			return true
		}
	}
	return false
}

// Analyze computes the full fact set for p. It tolerates malformed programs
// (nil statements, undeclared or nil relations) by skipping what it cannot
// attribute, so it is safe to run before verification.
func Analyze(p *ram.Program) *Facts {
	f := &Facts{Prog: p, byRel: map[*ram.Relation]*RelFacts{}}
	if p == nil {
		return f
	}
	for _, r := range p.Relations {
		if r == nil || f.byRel[r] != nil {
			continue
		}
		rf := &RelFacts{Rel: r, IndexUsed: make([]bool, max(len(r.Orders), 1))}
		rf.IndexUsed[0] = true // primary backs scans, merges, IO, iteration
		f.Rels = append(f.Rels, rf)
		f.byRel[r] = rf
	}
	a := &analyzer{f: f, edges: map[[2]*ram.Relation]bool{}, bindings: map[*ram.Relation]map[string]*Binding{}}
	if p.Main != nil {
		a.stmt(p.Main, sec{})
	}
	if p.Update != nil {
		a.stmt(p.Update, sec{update: true})
	}
	if p.Delete != nil {
		a.stmt(p.Delete, sec{del: true})
	}
	a.finishBindings()
	f.computeLiveness()
	return f
}

// sec identifies which program section a site was found in.
type sec struct {
	update, del bool
}

type analyzer struct {
	f        *Facts
	edges    map[[2]*ram.Relation]bool
	bindings map[*ram.Relation]map[string]*Binding
}

func (a *analyzer) rf(rel *ram.Relation) *RelFacts { return a.f.byRel[rel] }

func (a *analyzer) def(rel *ram.Relation, kind SiteKind, stmt ram.Statement, s sec) {
	if rf := a.rf(rel); rf != nil {
		rf.Defs = append(rf.Defs, Site{Kind: kind, Stmt: stmt, InUpdate: s.update, InDelete: s.del})
	}
}

func (a *analyzer) use(rel *ram.Relation, kind SiteKind, stmt ram.Statement, s sec) {
	if rf := a.rf(rel); rf != nil {
		rf.Uses = append(rf.Uses, Site{Kind: kind, Stmt: stmt, InUpdate: s.update, InDelete: s.del})
	}
}

func (a *analyzer) edge(from, to *ram.Relation) {
	if from == nil || to == nil || a.rf(from) == nil || a.rf(to) == nil {
		return
	}
	key := [2]*ram.Relation{from, to}
	if a.edges[key] {
		return
	}
	a.edges[key] = true
	a.f.Edges = append(a.f.Edges, Edge{From: from, To: to, CrossStratum: from.Stratum != to.Stratum})
}

func (a *analyzer) markIndex(rel *ram.Relation, indexID int) {
	rf := a.rf(rel)
	if rf == nil || indexID < 0 || indexID >= len(rf.IndexUsed) {
		return
	}
	rf.IndexUsed[indexID] = true
}

func (a *analyzer) binding(rel *ram.Relation, pattern []ram.Expr) {
	if rel == nil || a.rf(rel) == nil {
		return
	}
	var cols []int
	for i, e := range pattern {
		if e != nil {
			cols = append(cols, i)
		}
	}
	key := fmt.Sprint(cols)
	m := a.bindings[rel]
	if m == nil {
		m = map[string]*Binding{}
		a.bindings[rel] = m
	}
	if b := m[key]; b != nil {
		b.Count++
	} else {
		m[key] = &Binding{Cols: cols, Count: 1}
	}
}

func (a *analyzer) finishBindings() {
	for rel, m := range a.bindings {
		rf := a.rf(rel)
		for _, b := range m {
			rf.Bindings = append(rf.Bindings, *b)
		}
		sort.Slice(rf.Bindings, func(i, j int) bool {
			return fmt.Sprint(rf.Bindings[i].Cols) < fmt.Sprint(rf.Bindings[j].Cols)
		})
	}
}

func (a *analyzer) stmt(s ram.Statement, in sec) {
	switch s := s.(type) {
	case *ram.Sequence:
		for _, st := range s.Stmts {
			if st != nil {
				a.stmt(st, in)
			}
		}
	case *ram.Loop:
		if s.Body != nil {
			a.stmt(s.Body, in)
		}
	case *ram.Exit:
		for rel := range condReads(s.Cond) {
			a.use(rel, UseEmptiness, s, in)
		}
	case *ram.Query:
		reads, writes := QueryEffects(s)
		for rel := range writes {
			a.def(rel, DefProject, s, in)
			for rd := range reads {
				a.edge(rd, rel)
			}
		}
		// Rewalk for per-site kind, index, and binding detail (QueryEffects
		// only aggregates relation sets).
		a.searchSites(s.Root, s, in)
	case *ram.Clear:
		// Clearing neither defines nor uses tuples; it resets scratch space.
	case *ram.Swap:
		if s.A != nil && s.B != nil {
			a.def(s.A, DefSwap, s, in)
			a.def(s.B, DefSwap, s, in)
			a.use(s.A, UseSwap, s, in)
			a.use(s.B, UseSwap, s, in)
			a.edge(s.A, s.B)
			a.edge(s.B, s.A)
		}
	case *ram.Merge:
		if s.Dst != nil && s.Src != nil {
			a.def(s.Dst, DefMerge, s, in)
			a.use(s.Src, UseMergeSrc, s, in)
			a.edge(s.Src, s.Dst)
		}
	case *ram.Subtract:
		if s.Dst != nil && s.Src != nil {
			a.def(s.Dst, DefSubtract, s, in)
			a.use(s.Src, UseSubtract, s, in)
			a.edge(s.Src, s.Dst)
		}
	case *ram.CountMerge:
		if s.Dst != nil && s.Src != nil && s.Fresh != nil {
			a.def(s.Dst, DefCount, s, in)
			a.def(s.Fresh, DefCount, s, in)
			a.use(s.Src, UseCount, s, in)
			a.edge(s.Src, s.Dst)
			a.edge(s.Src, s.Fresh)
		}
	case *ram.CountDelete:
		if s.Dst != nil && s.Src != nil && s.Gone != nil {
			// The destination's support counts are both read (to find the
			// zero transitions) and decremented in place.
			a.def(s.Dst, DefCount, s, in)
			a.def(s.Gone, DefCount, s, in)
			a.use(s.Src, UseCount, s, in)
			a.use(s.Dst, UseCount, s, in)
			a.edge(s.Src, s.Gone)
			a.edge(s.Dst, s.Gone)
		}
	case *ram.IO:
		switch s.Kind {
		case ram.IOLoad:
			a.def(s.Rel, DefLoad, s, in)
		case ram.IOStore:
			a.use(s.Rel, UseStore, s, in)
		case ram.IOPrintSize:
			a.use(s.Rel, UsePrintSize, s, in)
		}
	case *ram.LogTimer:
		if s.Stmt != nil {
			a.stmt(s.Stmt, in)
		}
	}
}

// searchSites records per-site use kinds, index usage, and binding patterns
// for every search in an operation tree.
func (a *analyzer) searchSites(o ram.Operation, q *ram.Query, in sec) {
	switch o := o.(type) {
	case *ram.Scan:
		a.use(o.Rel, UseScan, q, in)
		a.binding(o.Rel, nil)
		a.searchSites(o.Nested, q, in)
	case *ram.IndexScan:
		a.use(o.Rel, UseScan, q, in)
		a.markIndex(o.Rel, o.IndexID)
		a.binding(o.Rel, o.Pattern)
		a.searchSites(o.Nested, q, in)
	case *ram.Choice:
		a.use(o.Rel, UseScan, q, in)
		a.binding(o.Rel, nil)
		a.searchConds(o.Cond, q, in)
		a.searchSites(o.Nested, q, in)
	case *ram.IndexChoice:
		a.use(o.Rel, UseScan, q, in)
		a.markIndex(o.Rel, o.IndexID)
		a.binding(o.Rel, o.Pattern)
		a.searchConds(o.Cond, q, in)
		a.searchSites(o.Nested, q, in)
	case *ram.Filter:
		a.searchConds(o.Cond, q, in)
		a.searchSites(o.Nested, q, in)
	case *ram.Aggregate:
		a.use(o.Rel, UseAggregate, q, in)
		if o.IndexID >= 0 {
			a.markIndex(o.Rel, o.IndexID)
		}
		a.binding(o.Rel, o.Pattern)
		a.searchConds(o.Cond, q, in)
		a.searchSites(o.Nested, q, in)
	case *ram.Project:
		// leaf
	}
}

func (a *analyzer) searchConds(c ram.Condition, q *ram.Query, in sec) {
	switch c := c.(type) {
	case *ram.And:
		a.searchConds(c.L, q, in)
		a.searchConds(c.R, q, in)
	case *ram.Not:
		a.searchConds(c.C, q, in)
	case *ram.EmptinessCheck:
		a.use(c.Rel, UseEmptiness, q, in)
	case *ram.ExistenceCheck:
		a.use(c.Rel, UseExistence, q, in)
		a.markIndex(c.Rel, c.IndexID)
		a.binding(c.Rel, c.Pattern)
	}
}

// computeLiveness runs the backward fixpoint: seed with IO sinks, then
// propagate along query read→write edges, merges, and swaps until stable.
func (f *Facts) computeLiveness() {
	for _, rf := range f.Rels {
		switch {
		case rf.Rel.Output && rf.Rel.PrintSize:
			rf.Live, rf.Why = true, "declared .output and .printsize"
		case rf.Rel.Output:
			rf.Live, rf.Why = true, "declared .output"
		case rf.Rel.PrintSize:
			rf.Live, rf.Why = true, "declared .printsize"
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range f.Edges {
			from, to := f.byRel[e.From], f.byRel[e.To]
			if from == nil || to == nil || from.Live || !to.Live {
				continue
			}
			from.Live = true
			from.Why = fmt.Sprintf("feeds live relation %s", to.Rel.Name)
			changed = true
		}
	}
	for _, rf := range f.Rels {
		if !rf.Live {
			rf.Why = "no use reaches an IO sink"
		}
	}
}

// QueryEffects collects the relations a query's operation tree reads
// (scans, choices, aggregates, existence/emptiness checks) and writes
// (projections). It is defensive against malformed trees — nil children are
// skipped — so the verifier can consult it on programs it has not yet
// accepted.
func QueryEffects(q *ram.Query) (reads, writes map[*ram.Relation]bool) {
	reads = map[*ram.Relation]bool{}
	writes = map[*ram.Relation]bool{}
	if q == nil {
		return reads, writes
	}
	var walkOp func(o ram.Operation)
	walkCond := func(c ram.Condition) {
		for rel := range condReads(c) {
			reads[rel] = true
		}
	}
	walkOp = func(o ram.Operation) {
		switch o := o.(type) {
		case *ram.Scan:
			reads[o.Rel] = true
			walkOp(o.Nested)
		case *ram.IndexScan:
			reads[o.Rel] = true
			walkOp(o.Nested)
		case *ram.Choice:
			reads[o.Rel] = true
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.IndexChoice:
			reads[o.Rel] = true
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.Filter:
			walkCond(o.Cond)
			walkOp(o.Nested)
		case *ram.Project:
			writes[o.Rel] = true
		case *ram.Aggregate:
			reads[o.Rel] = true
			walkCond(o.Cond)
			walkOp(o.Nested)
		}
	}
	walkOp(q.Root)
	delete(reads, nil)
	delete(writes, nil)
	return reads, writes
}

// condReads collects the relations read by a condition tree (existence and
// emptiness checks).
func condReads(c ram.Condition) map[*ram.Relation]bool {
	out := map[*ram.Relation]bool{}
	var walk func(ram.Condition)
	walk = func(c ram.Condition) {
		switch c := c.(type) {
		case *ram.And:
			walk(c.L)
			walk(c.R)
		case *ram.Not:
			walk(c.C)
		case *ram.EmptinessCheck:
			if c.Rel != nil {
				out[c.Rel] = true
			}
		case *ram.ExistenceCheck:
			if c.Rel != nil {
				out[c.Rel] = true
			}
		}
	}
	walk(c)
	return out
}
