package analysis

import (
	"fmt"

	"sti/internal/ast"
	"sti/internal/sema"
)

// Deletable decides whether a Delete program (counting-based retraction for
// non-recursive strata, overdelete/rederive for recursive ones) is sound for
// p, returning the first obstruction as a reason string when it is not.
//
// Three obstructions exist:
//
//   - Non-monotone rules. Negation and aggregates make retraction
//     non-antitone: removing a fact can *add* derived tuples, which neither
//     counting nor DRed models. This subsumes the Update gate — a deletable
//     program always has an update program.
//   - EqRel relations. The union-find closes pairs no insert ever mentioned
//     and has no per-pair removal, so neither support counts nor
//     overdeletion can be expressed over it.
//   - Input-and-derived relations. A tuple of such a relation may be held up
//     both by an EDB assertion and by rules; retraction would need to
//     attribute each tuple to its origin, which the EDB/IDB split of the
//     delete program does not track.
func Deletable(p *sema.Program) (bool, string) {
	if m := Monotone(p); !m.Monotone() {
		return false, m.Reason()
	}
	for _, r := range p.RelList {
		if r.Decl.Rep == ast.RepEqRel {
			return false, fmt.Sprintf("relation %q is an eqrel: the union-find cannot retract pairs", r.Name())
		}
		if r.Input && len(r.Clauses) > 0 {
			return false, fmt.Sprintf("relation %q is both input and derived: retraction cannot attribute its tuples", r.Name())
		}
	}
	return true, ""
}
