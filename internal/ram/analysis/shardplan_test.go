package analysis_test

import (
	"testing"

	"sti/internal/ram"
	"sti/internal/ram/analysis"
)

// TestShardKeysTC: on transitive closure the inner scan binds edge's first
// column and the semi-naive existence check binds path fully; both relations
// (and every aux companion) should partition on column 0, the classic
// "partition by join key" plan.
func TestShardKeysTC(t *testing.T) {
	p := translate(t, tcSrc)
	keys := analysis.ShardKeys(p)
	if len(keys) != len(p.Relations) {
		t.Fatalf("got %d keys for %d relations", len(keys), len(p.Relations))
	}
	for i, rd := range p.Relations {
		switch {
		case rd.Arity == 0:
			if keys[i] != -1 {
				t.Errorf("nullary %s: key %d, want -1", rd.Name, keys[i])
			}
		case rd.Name == "edge" || rd.Name == "path":
			if keys[i] != 0 {
				t.Errorf("%s: key %d, want 0", rd.Name, keys[i])
			}
		}
		// Aux companions must inherit their base's key exactly.
		if rd.Aux && rd.Arity > 0 && p.Relations[rd.BaseID].Rep != ram.RepEqRel {
			if keys[i] != keys[rd.BaseID] {
				t.Errorf("aux %s: key %d, base %s has %d",
					rd.Name, keys[i], p.Relations[rd.BaseID].Name, keys[rd.BaseID])
			}
		}
	}
}

// TestShardKeysSecondColumn: when every search binds the second column, the
// vote must move off column 0.
func TestShardKeysSecondColumn(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl hit(y:number)
.decl out(x:number, y:number)
.input edge
.input hit
.output out
out(x, y) :- hit(y), edge(x, y).
`
	p := translate(t, src)
	edge := relByName(t, p, "edge")
	keys := analysis.ShardKeys(p)
	if keys[edge.ID] != 1 {
		t.Fatalf("edge key = %d, want 1 (joined on its second column)", keys[edge.ID])
	}
}

// TestShardKeysEqrel: eqrel relations carry no plan; their btree aux
// companions default to column 0.
func TestShardKeysEqrel(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl eq(x:number, y:number) eqrel
.input edge
.output eq
eq(x, y) :- edge(x, y).
eq(x, z) :- eq(x, y), edge(y, z).
`
	p := translate(t, src)
	keys := analysis.ShardKeys(p)
	for i, rd := range p.Relations {
		if rd.Rep == ram.RepEqRel && keys[i] != -1 {
			t.Errorf("eqrel %s: key %d, want -1", rd.Name, keys[i])
		}
		if rd.Aux && rd.Rep != ram.RepEqRel && p.Relations[rd.BaseID].Rep == ram.RepEqRel && keys[i] != 0 {
			t.Errorf("eqrel aux %s: key %d, want 0", rd.Name, keys[i])
		}
	}
}

// TestStampShardKeys: ast2ram stamps the plan 1-based onto the
// declarations; ShardCol round-trips back to the 0-based column.
func TestStampShardKeys(t *testing.T) {
	p := translate(t, tcSrc)
	keys := analysis.ShardKeys(p)
	for i, rd := range p.Relations {
		want := keys[i]
		if rd.ShardCol() != want {
			t.Errorf("%s: stamped ShardCol %d, analysis says %d", rd.Name, rd.ShardCol(), want)
		}
		if want == -1 && rd.ShardKey != 0 {
			t.Errorf("%s: unshardable but ShardKey %d", rd.Name, rd.ShardKey)
		}
	}
}
