package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// A nil collector must absorb every call without panicking — that is the
// whole zero-cost-when-disabled contract.
func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.EnableTrace(10)
	if c.Tracing() {
		t.Fatal("nil collector reports tracing")
	}
	if rs := c.BindRelation(0, "r", "btree", 2, false, 0, []string{"[0 1]"}); rs != nil {
		t.Fatal("nil collector returned relation stats")
	}
	f := c.StartFixpoint("loop")
	if f != nil {
		t.Fatal("nil collector returned fixpoint stats")
	}
	c.EndFixpoint(f)
	c.RecordParallelScan([]uint64{1}, []uint64{1}, time.Millisecond)
	if !c.Begin().IsZero() {
		t.Fatal("nil collector returned a live span start")
	}
	c.End(time.Time{}, "cat", "name")
	c.Instant("cat", "name", nil)
	c.Finish()
	if c.Report() != nil {
		t.Fatal("nil collector produced a report")
	}
}

func TestRelationStatsCounting(t *testing.T) {
	c := New()
	rs := c.BindRelation(3, "path", "btree", 2, false, 3, []string{"[0 1]", "[1 0]"})
	if len(rs.Ops) != 2 {
		t.Fatalf("got %d index counter blocks, want 2", len(rs.Ops))
	}
	rs.CountInsert(true)
	rs.CountInsert(true)
	rs.CountInsert(false)
	rs.CountBulk(10, 7)
	if rs.Inserts != 9 || rs.DedupHits != 4 {
		t.Fatalf("inserts=%d dedup=%d, want 9 and 4", rs.Inserts, rs.DedupHits)
	}
}

func TestFixpointCurve(t *testing.T) {
	c := New()
	f := c.StartFixpoint("stratum 1 (path)")
	f.RecordIteration([]string{"path"}, []uint64{5})
	f.RecordIteration([]string{"path"}, []uint64{3})
	f.RecordIteration([]string{"path"}, []uint64{0})
	c.EndFixpoint(f)
	if f.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", f.Iterations)
	}
	want := []uint64{5, 3, 0}
	for i, v := range want {
		if f.DeltaCurve[i] != v {
			t.Fatalf("delta curve = %v, want %v", f.DeltaCurve, want)
		}
	}
	if got := f.RelationCurves["path"]; len(got) != 3 || got[0] != 5 {
		t.Fatalf("relation curve = %v", got)
	}
}

func TestParallelSkew(t *testing.T) {
	c := New()
	// Worker 0 scans 30 of 40 tuples: skew = 30 / (40/4) = 3.
	c.RecordParallelScan([]uint64{30, 5, 5, 0}, []uint64{3, 1, 1, 0}, time.Millisecond)
	r := c.Report()
	if r.Parallel == nil {
		t.Fatal("no parallel stats recorded")
	}
	if r.Parallel.Scans != 1 || r.Parallel.Partitions != 4 {
		t.Fatalf("scans=%d partitions=%d", r.Parallel.Scans, r.Parallel.Partitions)
	}
	if r.Parallel.MaxSkew != 3.0 {
		t.Fatalf("max skew = %v, want 3.0", r.Parallel.MaxSkew)
	}
	if len(r.Parallel.Workers) != 4 || r.Parallel.Workers[0].Scanned != 30 {
		t.Fatalf("worker stats = %+v", r.Parallel.Workers)
	}
}

func TestReportRepAggregation(t *testing.T) {
	c := New()
	bt := c.BindRelation(0, "a", "btree", 2, false, 0, []string{"[0 1]"})
	bt.CountBulk(5, 5)
	bt.FinalSize = 5
	bt2 := c.BindRelation(1, "b", "btree", 1, false, 1, []string{"[0]"})
	bt2.CountBulk(4, 2)
	bt2.FinalSize = 2
	eq := c.BindRelation(2, "c", "eqrel", 2, false, 2, []string{"[0 1]"})
	eq.CountInsert(true)
	eq.FinalSize = 1
	c.Finish()

	r := c.Report()
	if len(r.Reps) != 2 {
		t.Fatalf("got %d rep groups, want 2 (btree, eqrel)", len(r.Reps))
	}
	// Sorted by rep name.
	if r.Reps[0].Rep != "btree" || r.Reps[1].Rep != "eqrel" {
		t.Fatalf("rep order = %s, %s", r.Reps[0].Rep, r.Reps[1].Rep)
	}
	if r.Reps[0].Relations != 2 || r.Reps[0].Tuples != 7 || r.Reps[0].Inserts != 7 || r.Reps[0].DedupHits != 2 {
		t.Fatalf("btree aggregate = %+v", r.Reps[0])
	}
	// The report must round-trip through JSON without the atomic Ops blocks.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(r); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	if strings.Contains(buf.String(), "Ops") {
		t.Fatal("atomic counter blocks leaked into the JSON report")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	c := New()
	c.EnableTrace(0)
	if !c.Tracing() {
		t.Fatal("tracing not enabled")
	}
	start := c.Begin()
	if start.IsZero() {
		t.Fatal("Begin returned zero time with tracing on")
	}
	c.End(start, "fixpoint", "stratum 1")
	c.EndArgs(c.Begin(), "query", "path(x,z)", map[string]any{"iterations": 3})
	c.Instant("io", "load edge", nil)

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "X" || doc.TraceEvents[0].Cat != "fixpoint" {
		t.Fatalf("first event = %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[2].Ph != "i" {
		t.Fatalf("instant event ph = %q, want i", doc.TraceEvents[2].Ph)
	}
}

func TestTraceCap(t *testing.T) {
	c := New()
	c.EnableTrace(4)
	for i := 0; i < 10; i++ {
		c.End(c.Begin(), "query", "q")
	}
	kept, dropped := c.TraceEventCount()
	if kept != 4 || dropped != 6 {
		t.Fatalf("kept=%d dropped=%d, want 4 and 6", kept, dropped)
	}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"droppedEvents": 6`) && !strings.Contains(buf.String(), `"droppedEvents":6`) {
		t.Fatalf("dropped count missing from trace: %s", buf.String())
	}
}

// An empty trace must still serialize traceEvents as [], not null —
// Perfetto rejects null.
func TestTraceEmpty(t *testing.T) {
	c := New()
	c.EnableTrace(0)
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) && !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace serialized badly: %s", buf.String())
	}
}

func TestReportString(t *testing.T) {
	c := New()
	rs := c.BindRelation(0, "path", "btree", 2, false, 0, []string{"[0 1]"})
	rs.CountBulk(12, 10)
	rs.FinalSize = 10
	rs.PeakDelta = 4
	f := c.StartFixpoint("stratum 0 (path)")
	f.RecordIteration([]string{"path"}, []uint64{4})
	f.RecordIteration([]string{"path"}, []uint64{0})
	c.EndFixpoint(f)
	c.Finish()
	s := c.Report().String()
	for _, want := range []string{"stratum 0 (path)", "2 iterations", "delta curve: 4 0", "path", "dup 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report summary missing %q:\n%s", want, s)
		}
	}
}

func TestCurveStringElision(t *testing.T) {
	long := make([]uint64, 40)
	for i := range long {
		long[i] = uint64(i)
	}
	s := curveString(long)
	if !strings.Contains(s, "(24 more)") {
		t.Fatalf("long curve not elided: %s", s)
	}
	if short := curveString([]uint64{1, 2, 3}); short != "1 2 3" {
		t.Fatalf("short curve = %q", short)
	}
}
