package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RelationReport is the JSON-friendly snapshot of one relation's telemetry.
type RelationReport struct {
	RelationStats
	Indexes []IndexOpsView `json:"indexes,omitempty"`
}

// RepReport aggregates relation telemetry per backing representation — the
// btree/brie/eqrel breakdown of tuple traffic.
type RepReport struct {
	Rep       string `json:"rep"`
	Relations int    `json:"relations"`
	Tuples    int    `json:"tuples"`
	Inserts   uint64 `json:"inserts"`
	DedupHits uint64 `json:"dedup_hits"`
}

// Report is the complete, immutable snapshot of a run's telemetry.
type Report struct {
	DurationNs  int64             `json:"duration_ns"`
	Relations   []*RelationReport `json:"relations,omitempty"`
	Reps        []*RepReport      `json:"reps,omitempty"`
	Fixpoints   []*FixpointStats  `json:"fixpoints,omitempty"`
	Parallel    *ParallelStats    `json:"parallel,omitempty"`
	TraceEvents int               `json:"trace_events,omitempty"`
}

// Report snapshots the collector. Safe to call after the run; calling it
// mid-run gives a best-effort view.
func (c *Collector) Report() *Report {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &Report{DurationNs: c.duration.Nanoseconds()}
	reps := map[string]*RepReport{}
	for _, rs := range c.relations {
		rr := &RelationReport{RelationStats: *rs}
		rr.Ops = nil // atomics stay out of the snapshot
		for i, ops := range rs.Ops {
			v := ops.View()
			if i < len(rs.IndexOrders) {
				v.Order = rs.IndexOrders[i]
			}
			rr.Indexes = append(rr.Indexes, v)
		}
		r.Relations = append(r.Relations, rr)
		agg := reps[rs.Rep]
		if agg == nil {
			agg = &RepReport{Rep: rs.Rep}
			reps[rs.Rep] = agg
		}
		agg.Relations++
		agg.Tuples += rs.FinalSize
		agg.Inserts += rs.Inserts
		agg.DedupHits += rs.DedupHits
	}
	for _, agg := range reps {
		r.Reps = append(r.Reps, agg)
	}
	sort.Slice(r.Reps, func(i, j int) bool { return r.Reps[i].Rep < r.Reps[j].Rep })
	r.Fixpoints = append([]*FixpointStats{}, c.fixpoints...)
	if c.parallel.Scans > 0 {
		p := c.parallel
		p.Workers = append([]*WorkerStats{}, c.parallel.Workers...)
		r.Parallel = &p
	}
	if c.trace != nil {
		r.TraceEvents = len(c.trace.events)
	}
	return r
}

// String renders a human-readable telemetry summary: the fixpoint
// convergence curves, the busiest relations, and the parallel traffic.
func (r *Report) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run time: %v\n", time.Duration(r.DurationNs).Round(time.Microsecond))
	for _, f := range r.Fixpoints {
		fmt.Fprintf(&b, "fixpoint %s: %d iterations, %v\n",
			f.Label, f.Iterations, time.Duration(f.DurationNs).Round(time.Microsecond))
		fmt.Fprintf(&b, "  delta curve: %s\n", curveString(f.DeltaCurve))
	}
	rels := append([]*RelationReport{}, r.Relations...)
	sort.Slice(rels, func(i, j int) bool {
		if rels[i].Inserts != rels[j].Inserts {
			return rels[i].Inserts > rels[j].Inserts
		}
		return rels[i].Name < rels[j].Name
	})
	for _, rel := range rels {
		if rel.Inserts == 0 && rel.DedupHits == 0 && rel.FinalSize == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-24s %-6s size %-9d ins %-9d dup %-9d peakΔ %d\n",
			rel.Name, rel.Rep, rel.FinalSize, rel.Inserts, rel.DedupHits, rel.PeakDelta)
	}
	if r.Parallel != nil {
		p := r.Parallel
		fmt.Fprintf(&b, "parallel: %d scans, %d partitions, merge %v, max skew %.2f\n",
			p.Scans, p.Partitions, time.Duration(p.MergeNs).Round(time.Microsecond), p.MaxSkew)
		for _, w := range p.Workers {
			fmt.Fprintf(&b, "  worker %d: scanned %d, staged %d\n", w.Worker, w.Scanned, w.Staged)
		}
	}
	return b.String()
}

// curveString compacts a delta curve for terminal output: full contents up
// to 16 points, elided in the middle beyond that.
func curveString(curve []uint64) string {
	var b strings.Builder
	write := func(xs []uint64) {
		for i, x := range xs {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", x)
		}
	}
	if len(curve) <= 16 {
		write(curve)
	} else {
		write(curve[:8])
		fmt.Fprintf(&b, " … (%d more) … ", len(curve)-16)
		write(curve[len(curve)-8:])
	}
	return b.String()
}
