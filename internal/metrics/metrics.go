// Package metrics is the engine-wide telemetry layer: counters and spans
// that attribute interpreter time and tuple traffic to fixpoints, relations,
// indexes, and parallel workers.
//
// The design follows the same discipline as the interpreter's profiler: all
// telemetry is opt-in (a nil *Collector disables everything), hot-path hooks
// are a single nil check, and counters that can be reached from worker
// goroutines (the per-index operation counters) are atomic while everything
// touched only at barriers stays plain. A Collector observes exactly one
// engine run; Report() snapshots it into a JSON-friendly form.
//
// Metric catalog:
//
//   - FixpointStats: one per RAM LOOP (stratum) — iteration count plus the
//     per-iteration delta sizes (recursion convergence curves).
//   - RelationStats: one per RAM relation — final size, peak delta, fresh
//     inserts vs. de-duplication hits, and per-index operation counters.
//   - IndexOps: one per index — inserts, lookups, scans, range scans,
//     existence probes, partition requests crossing the dynamic adapter.
//   - ParallelStats: staging-buffer traffic of partitioned scans — tuples
//     scanned and staged per worker, merge wall time, partition skew, and
//     for sharded evaluation the per-shard routed volume, routing skew,
//     and cross-shard delta-exchange count.
//   - Trace: span-style events (stratum → iteration → query → I/O) in
//     Chrome trace-event form, loadable in Perfetto (see trace.go).
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// IndexOps counts operations crossing one index's dynamic adapter. Fields
// are atomic because parallel workers probe shared indexes concurrently and
// secondary-index merges run on their own goroutines.
type IndexOps struct {
	Inserts    atomic.Uint64 // tuples offered for insertion
	Fresh      atomic.Uint64 // tuples newly added (Inserts - Fresh = dedup hits)
	Deletes    atomic.Uint64 // tuples removed (delete-propagation path)
	Lookups    atomic.Uint64 // membership tests (Contains / ContainsEncoded)
	Scans      atomic.Uint64 // full scans opened
	RangeScans atomic.Uint64 // prefix scans opened
	Probes     atomic.Uint64 // existence probes (AnyMatch)
	Partitions atomic.Uint64 // partitioned-scan requests
}

// IndexOpsView is the plain snapshot of IndexOps for reports.
type IndexOpsView struct {
	Order      string `json:"order,omitempty"`
	Inserts    uint64 `json:"inserts"`
	Fresh      uint64 `json:"fresh"`
	Deletes    uint64 `json:"deletes,omitempty"`
	Lookups    uint64 `json:"lookups"`
	Scans      uint64 `json:"scans"`
	RangeScans uint64 `json:"range_scans"`
	Probes     uint64 `json:"probes"`
	Partitions uint64 `json:"partitions"`
}

// View snapshots the counters.
func (o *IndexOps) View() IndexOpsView {
	return IndexOpsView{
		Inserts:    o.Inserts.Load(),
		Fresh:      o.Fresh.Load(),
		Deletes:    o.Deletes.Load(),
		Lookups:    o.Lookups.Load(),
		Scans:      o.Scans.Load(),
		RangeScans: o.RangeScans.Load(),
		Probes:     o.Probes.Load(),
		Partitions: o.Partitions.Load(),
	}
}

// RelationStats accumulates per-relation telemetry. The insert counters are
// only touched at barriers or on the coordinating goroutine (workers stage
// instead of inserting), so they are plain fields; see CountInsert.
type RelationStats struct {
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Rep    string `json:"rep"`
	Arity  int    `json:"arity"`
	Aux    bool   `json:"aux,omitempty"`
	BaseID int    `json:"base_id"`

	// Inserts counts tuples that were genuinely new; DedupHits counts
	// insert attempts the primary index rejected as duplicates; Deletes
	// counts tuples physically retracted by delete propagation.
	Inserts   uint64 `json:"inserts"`
	DedupHits uint64 `json:"dedup_hits"`
	Deletes   uint64 `json:"deletes,omitempty"`
	// PeakDelta is the largest per-iteration fresh-tuple count observed for
	// this relation across all fixpoint iterations (0 outside recursion).
	PeakDelta uint64 `json:"peak_delta"`
	// FinalSize is the tuple count when the run finished.
	FinalSize int `json:"final_size"`

	// Ops holds one counter block per index (index 0 is the primary).
	Ops []*IndexOps `json:"-"`
	// IndexOrders are the source→encoded orders of the indexes, for reports.
	IndexOrders []string `json:"-"`
}

// CountInsert records one insert attempt. Must only be called from code that
// already holds the mutation right on the relation (the coordinator).
func (rs *RelationStats) CountInsert(added bool) {
	if added {
		rs.Inserts++
	} else {
		rs.DedupHits++
	}
}

// CountBulk records a bulk merge of attempted tuples of which added were new.
func (rs *RelationStats) CountBulk(attempted, added int) {
	rs.Inserts += uint64(added)
	rs.DedupHits += uint64(attempted - added)
}

// CountDelete records one physical tuple retraction. Like CountInsert it
// must only be called while holding the mutation right on the relation.
func (rs *RelationStats) CountDelete() {
	rs.Deletes++
}

// FixpointStats records one execution of a RAM LOOP: the convergence curve
// of a recursive stratum.
type FixpointStats struct {
	Label string `json:"label"`
	// Iterations is the number of loop iterations until the exit condition
	// fired (the final, empty-delta iteration included).
	Iterations int `json:"iterations"`
	// DeltaCurve[i] is the total number of fresh tuples derived in
	// iteration i across all relations of the stratum.
	DeltaCurve []uint64 `json:"delta_curve"`
	// RelationCurves maps a base relation name to its per-iteration fresh
	// tuple counts.
	RelationCurves map[string][]uint64 `json:"relation_curves,omitempty"`
	DurationNs     int64               `json:"duration_ns"`

	start time.Time
}

// RecordIteration appends one iteration's delta sizes. names[i] is the base
// relation that derived sizes[i] fresh tuples this iteration.
func (f *FixpointStats) RecordIteration(names []string, sizes []uint64) {
	f.Iterations++
	var total uint64
	for i, n := range sizes {
		total += n
		if f.RelationCurves == nil {
			f.RelationCurves = make(map[string][]uint64, len(sizes))
		}
		f.RelationCurves[names[i]] = append(f.RelationCurves[names[i]], n)
	}
	f.DeltaCurve = append(f.DeltaCurve, total)
}

// WorkerStats accumulates one worker's share of partitioned-scan traffic.
type WorkerStats struct {
	Worker  int    `json:"worker"`
	Scanned uint64 `json:"tuples_scanned"`
	Staged  uint64 `json:"tuples_staged"`
}

// ParallelStats aggregates the staging-buffer path across all partitioned
// scans of a run. Only the coordinating goroutine records here (at scan
// barriers), so plain fields suffice.
type ParallelStats struct {
	// Scans counts partitioned scans that actually fanned out (>1 partition).
	Scans uint64 `json:"scans"`
	// Partitions is the total number of partitions across those scans.
	Partitions uint64 `json:"partitions"`
	// MergeNs is the total wall time spent merging staging buffers at scan
	// barriers.
	MergeNs int64 `json:"merge_ns"`
	// MaxSkew is the worst observed partition skew: max over scans of
	// (most-loaded worker's scanned tuples / mean scanned tuples).
	MaxSkew float64 `json:"max_skew"`
	// Workers holds the per-worker totals.
	Workers []*WorkerStats `json:"workers,omitempty"`

	// ShardMerges counts scan-barrier merges that routed staged tuples into
	// a sharded relation (the delta-exchange step of shard-parallel
	// evaluation).
	ShardMerges uint64 `json:"shard_merges,omitempty"`
	// ShardRouted[s] is the total number of staged tuples whose partition
	// hash owned them to shard s — the shard skew signal.
	ShardRouted []uint64 `json:"shard_routed,omitempty"`
	// ShardExchanged counts staged tuples that crossed shards at a merge:
	// produced by worker w but owned by a shard other than w's. This is the
	// exchange volume a distributed implementation would put on the wire.
	ShardExchanged uint64 `json:"shard_exchanged,omitempty"`
	// ShardMaxSkew is the worst observed shard skew: max over merges of
	// (most-loaded shard's routed tuples / mean routed tuples).
	ShardMaxSkew float64 `json:"shard_max_skew,omitempty"`
}

// Collector gathers one run's telemetry. The zero value is not usable; call
// New. All methods are safe on a nil receiver and do nothing, so callers can
// hold a possibly-nil *Collector and call through unconditionally on cold
// paths (hot paths should still nil-check once per operation batch).
type Collector struct {
	mu        sync.Mutex
	start     time.Time
	duration  time.Duration
	relations []*RelationStats
	fixpoints []*FixpointStats
	parallel  ParallelStats
	trace     *Trace
}

// New creates an empty collector; the run's clock starts now.
func New() *Collector {
	return &Collector{start: time.Now()}
}

// EnableTrace turns on span recording with the given event capacity
// (0 means DefaultTraceCap). Must be called before the run starts.
func (c *Collector) EnableTrace(capacity int) {
	if c == nil {
		return
	}
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	c.trace = &Trace{cap: capacity}
}

// Tracing reports whether span recording is enabled.
func (c *Collector) Tracing() bool { return c != nil && c.trace != nil }

// BindRelation registers a relation and allocates its per-index counter
// blocks. Called once per relation at engine construction.
func (c *Collector) BindRelation(id int, name, rep string, arity int, aux bool, baseID int, indexOrders []string) *RelationStats {
	if c == nil {
		return nil
	}
	rs := &RelationStats{
		ID: id, Name: name, Rep: rep, Arity: arity, Aux: aux, BaseID: baseID,
		IndexOrders: indexOrders,
	}
	for range indexOrders {
		rs.Ops = append(rs.Ops, &IndexOps{})
	}
	c.mu.Lock()
	c.relations = append(c.relations, rs)
	c.mu.Unlock()
	return rs
}

// StartFixpoint opens a fixpoint record for one LOOP execution.
func (c *Collector) StartFixpoint(label string) *FixpointStats {
	if c == nil {
		return nil
	}
	f := &FixpointStats{Label: label, start: time.Now()}
	c.mu.Lock()
	c.fixpoints = append(c.fixpoints, f)
	c.mu.Unlock()
	return f
}

// EndFixpoint closes a fixpoint record.
func (c *Collector) EndFixpoint(f *FixpointStats) {
	if c == nil || f == nil {
		return
	}
	f.DurationNs = time.Since(f.start).Nanoseconds()
}

// RecordParallelScan folds one partitioned scan's per-worker traffic into
// the aggregate: scanned[i]/staged[i] are worker i's tuple counts, merge is
// the barrier's staging-merge wall time.
func (c *Collector) RecordParallelScan(scanned, staged []uint64, merge time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := &c.parallel
	p.Scans++
	p.Partitions += uint64(len(scanned))
	p.MergeNs += merge.Nanoseconds()
	var total, max uint64
	for i := range scanned {
		if i >= len(p.Workers) {
			p.Workers = append(p.Workers, &WorkerStats{Worker: i})
		}
		p.Workers[i].Scanned += scanned[i]
		p.Workers[i].Staged += staged[i]
		total += scanned[i]
		if scanned[i] > max {
			max = scanned[i]
		}
	}
	if total > 0 && len(scanned) > 0 {
		mean := float64(total) / float64(len(scanned))
		if skew := float64(max) / mean; skew > p.MaxSkew {
			p.MaxSkew = skew
		}
	}
}

// RecordShardMerge folds one sharded scan-barrier merge into the aggregate:
// routed[s] is the number of staged tuples owned by shard s at this merge,
// exchanged the number that crossed shards (owner != producing worker's
// shard).
func (c *Collector) RecordShardMerge(routed []uint64, exchanged uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := &c.parallel
	p.ShardMerges++
	p.ShardExchanged += exchanged
	var total, max uint64
	for s, n := range routed {
		if s >= len(p.ShardRouted) {
			p.ShardRouted = append(p.ShardRouted, 0)
		}
		p.ShardRouted[s] += n
		total += n
		if n > max {
			max = n
		}
	}
	if total > 0 && len(routed) > 0 {
		mean := float64(total) / float64(len(routed))
		if skew := float64(max) / mean; skew > p.ShardMaxSkew {
			p.ShardMaxSkew = skew
		}
	}
}

// Finish stamps the run duration. Idempotent; later calls win.
func (c *Collector) Finish() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.duration = time.Since(c.start)
	c.mu.Unlock()
}
