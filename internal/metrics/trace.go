package metrics

import (
	"encoding/json"
	"io"
	"time"
)

// DefaultTraceCap bounds the number of recorded trace events so that long
// runs with millions of query executions cannot exhaust memory; events past
// the cap are counted but dropped.
const DefaultTraceCap = 1 << 20

// TraceEvent is one Chrome trace-event record ("X" complete events). Files
// written by WriteTrace load in Perfetto and chrome://tracing.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace is the bounded span log.
type Trace struct {
	events  []TraceEvent
	cap     int
	dropped uint64
}

// traceFile is the on-disk JSON envelope.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Dropped         uint64       `json:"droppedEvents,omitempty"`
}

// Begin opens a span: it returns the wall-clock start to hand back to End.
// When tracing is disabled the zero time is returned and End is a no-op, so
// span sites cost two nil checks and a clock read at most.
func (c *Collector) Begin() time.Time {
	if c == nil || c.trace == nil {
		return time.Time{}
	}
	return time.Now()
}

// End closes a span opened by Begin, recording a complete event. Spans
// nest purely by time range, which is exactly how Perfetto reconstructs the
// stratum → iteration → query hierarchy on a single track.
func (c *Collector) End(start time.Time, cat, name string) {
	c.EndArgs(start, cat, name, nil)
}

// EndArgs is End with event arguments attached.
func (c *Collector) EndArgs(start time.Time, cat, name string, args map[string]any) {
	if c == nil || c.trace == nil || start.IsZero() {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.trace
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Name:  name,
		Cat:   cat,
		Phase: "X",
		TsUs:  float64(start.Sub(c.start).Nanoseconds()) / 1e3,
		DurUs: float64(now.Sub(start).Nanoseconds()) / 1e3,
		Args:  args,
	})
}

// Instant records an instant ("i") marker event.
func (c *Collector) Instant(cat, name string, args map[string]any) {
	if c == nil || c.trace == nil {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.trace
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Name:  name,
		Cat:   cat,
		Phase: "i",
		TsUs:  float64(now.Sub(c.start).Nanoseconds()) / 1e3,
		Args:  args,
	})
}

// TraceEventCount reports how many events were recorded (and how many were
// dropped past the cap).
func (c *Collector) TraceEventCount() (kept int, dropped uint64) {
	if c == nil || c.trace == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.trace.events), c.trace.dropped
}

// WriteTrace writes the recorded spans as Chrome trace-event JSON.
func (c *Collector) WriteTrace(w io.Writer) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := traceFile{DisplayTimeUnit: "ms"}
	if c.trace != nil {
		out.TraceEvents = c.trace.events
		out.Dropped = c.trace.dropped
	}
	if out.TraceEvents == nil {
		out.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
