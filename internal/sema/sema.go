// Package sema performs semantic analysis: declaration and arity checking,
// groundedness checking, type inference and checking, and stratification of
// negation and aggregation (paper §2).
package sema

import (
	"fmt"
	"sort"

	"sti/internal/ast"
	"sti/internal/value"
)

// Error is a semantic error with position.
type Error struct {
	Msg string
	Pos ast.Pos
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

func errf(pos ast.Pos, format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Pos: pos}
}

// Rel is an analyzed relation.
type Rel struct {
	ID        int
	Decl      *ast.RelationDecl
	Input     bool
	Output    bool
	PrintSize bool
	Clauses   []*ast.Clause // clauses defining this relation
	Recursive bool          // belongs to a recursive SCC
	Stratum   int
}

// Name returns the relation's name.
func (r *Rel) Name() string { return r.Decl.Name }

// Arity returns the relation's arity.
func (r *Rel) Arity() int { return r.Decl.Arity() }

// Stratum is one evaluation layer: a single SCC of the predicate dependency
// graph. Strata are ordered so that all dependencies of a stratum lie in
// earlier strata.
type Stratum struct {
	Index     int
	Rels      []*Rel
	Recursive bool
}

// ClauseInfo carries per-clause analysis results.
type ClauseInfo struct {
	Clause   *ast.Clause
	VarTypes map[string]value.Type
}

// Program is the analysis result.
type Program struct {
	Source  *ast.Program
	Rels    map[string]*Rel
	RelList []*Rel // ordered by ID (declaration order)
	Strata  []*Stratum
	Clauses map[*ast.Clause]*ClauseInfo
}

// Rel returns the analyzed relation named name, or nil.
func (p *Program) Rel(name string) *Rel { return p.Rels[name] }

// Analyze checks prog and computes strata. All detected errors are returned
// together.
func Analyze(prog *ast.Program) (*Program, []error) {
	a := &analysis{
		prog: prog,
		out: &Program{
			Source:  prog,
			Rels:    make(map[string]*Rel),
			Clauses: make(map[*ast.Clause]*ClauseInfo),
		},
	}
	a.collectDecls()
	a.collectDirectives()
	a.collectClauses()
	if len(a.errs) == 0 {
		a.checkClauses()
	}
	if len(a.errs) == 0 {
		a.stratify()
	}
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	return a.out, nil
}

type analysis struct {
	prog *ast.Program
	out  *Program
	errs []error
}

func (a *analysis) errorf(pos ast.Pos, format string, args ...any) {
	a.errs = append(a.errs, errf(pos, format, args...))
}

func (a *analysis) collectDecls() {
	for _, d := range a.prog.Decls {
		if prev, ok := a.out.Rels[d.Name]; ok {
			a.errorf(d.Pos, "relation %s redeclared (previous declaration at %d:%d)",
				d.Name, prev.Decl.Pos.Line, prev.Decl.Pos.Col)
			continue
		}
		if d.Rep == ast.RepEqRel {
			if d.Arity() != 2 {
				a.errorf(d.Pos, "eqrel relation %s must be binary, has arity %d", d.Name, d.Arity())
			} else if d.Attrs[0].Type != d.Attrs[1].Type {
				a.errorf(d.Pos, "eqrel relation %s must have equally-typed columns", d.Name)
			}
		}
		seen := map[string]bool{}
		for _, at := range d.Attrs {
			if seen[at.Name] {
				a.errorf(d.Pos, "relation %s has duplicate attribute %s", d.Name, at.Name)
			}
			seen[at.Name] = true
		}
		r := &Rel{ID: len(a.out.RelList), Decl: d}
		a.out.Rels[d.Name] = r
		a.out.RelList = append(a.out.RelList, r)
	}
}

func (a *analysis) collectDirectives() {
	for _, d := range a.prog.Directives {
		r, ok := a.out.Rels[d.Rel]
		if !ok {
			a.errorf(d.Pos, "%s references undeclared relation %s", d.Kind, d.Rel)
			continue
		}
		switch d.Kind {
		case ast.DirInput:
			r.Input = true
		case ast.DirOutput:
			r.Output = true
		case ast.DirPrintSize:
			r.PrintSize = true
		}
	}
}

func (a *analysis) collectClauses() {
	for _, c := range a.prog.Clauses {
		r, ok := a.out.Rels[c.Head.Name]
		if !ok {
			a.errorf(c.Head.Pos, "clause head references undeclared relation %s", c.Head.Name)
			continue
		}
		r.Clauses = append(r.Clauses, c)
	}
}

// atomRel resolves an atom's relation, checking arity.
func (a *analysis) atomRel(at *ast.Atom) *Rel {
	r, ok := a.out.Rels[at.Name]
	if !ok {
		a.errorf(at.Pos, "undeclared relation %s", at.Name)
		return nil
	}
	if len(at.Args) != r.Arity() {
		a.errorf(at.Pos, "relation %s has arity %d, used with %d arguments",
			at.Name, r.Arity(), len(at.Args))
		return nil
	}
	return r
}

func (a *analysis) checkClauses() {
	for _, c := range a.prog.Clauses {
		if a.out.Rels[c.Head.Name] == nil {
			continue
		}
		before := len(a.errs)
		ck := &clauseCheck{a: a, clause: c, types: map[string]value.Type{}}
		ck.run()
		if len(a.errs) == before {
			a.out.Clauses[c] = &ClauseInfo{Clause: c, VarTypes: ck.types}
		}
	}
}

// --- per-clause checking ---

type clauseCheck struct {
	a      *analysis
	clause *ast.Clause
	types  map[string]value.Type
}

func (ck *clauseCheck) run() {
	c := ck.clause
	if c.IsFact() {
		ck.checkFact()
		return
	}
	// Pass 1: variable types from atom positions (positive and negative),
	// all nesting levels.
	ck.bindAtomTypes(c.Body)
	// Pass 2: propagate types through binding equalities until fixpoint.
	for changed := true; changed; {
		changed = false
		for _, l := range c.Body {
			if cons, ok := l.(*ast.Constraint); ok && cons.Op == ast.CmpEQ {
				if ck.propagateEq(cons) {
					changed = true
				}
			}
		}
	}
	// Groundedness.
	ck.checkGroundedness()
	// Full type check of every expression.
	ck.typeCheckBody(c.Body)
	head := ck.a.out.Rels[c.Head.Name]
	for i, e := range c.Head.Args {
		want := head.Decl.Attrs[i].Type
		ck.checkExprType(e, want, c.Head.Pos)
	}
}

func (ck *clauseCheck) checkFact() {
	c := ck.clause
	head := ck.a.out.Rels[c.Head.Name]
	for i, e := range c.Head.Args {
		if !isConstExpr(e) {
			ck.a.errorf(c.Pos, "fact %s has non-constant argument %s", c.Head.Name, ast.ExprString(e))
			continue
		}
		ck.checkExprType(e, head.Decl.Attrs[i].Type, c.Pos)
	}
}

func isConstExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.NumLit, *ast.UnsignedLit, *ast.FloatLit, *ast.StrLit:
		return true
	case *ast.BinExpr:
		return isConstExpr(e.L) && isConstExpr(e.R)
	case *ast.UnExpr:
		return isConstExpr(e.E)
	case *ast.Call:
		for _, a := range e.Args {
			if !isConstExpr(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// bindAtomTypes records the type of every variable that appears directly as
// an atom argument, at any nesting depth (including aggregate bodies).
func (ck *clauseCheck) bindAtomTypes(lits []ast.Literal) {
	var doAtom func(at *ast.Atom)
	doAtom = func(at *ast.Atom) {
		r := ck.a.atomRel(at)
		if r == nil {
			return
		}
		for i, e := range at.Args {
			if v, ok := e.(*ast.Var); ok {
				ck.noteVarType(v, r.Decl.Attrs[i].Type)
			}
			// Aggregates nested in atom args carry their own bodies.
			ast.WalkExpr(e, func(sub ast.Expr) {
				if agg, ok := sub.(*ast.Aggregate); ok {
					ck.bindAtomTypes(agg.Body)
				}
			})
		}
	}
	for _, l := range lits {
		switch l := l.(type) {
		case *ast.Atom:
			doAtom(l)
		case *ast.Negation:
			doAtom(l.Atom)
		case *ast.Constraint:
			ast.WalkExpr(l.L, func(sub ast.Expr) {
				if agg, ok := sub.(*ast.Aggregate); ok {
					ck.bindAtomTypes(agg.Body)
				}
			})
			ast.WalkExpr(l.R, func(sub ast.Expr) {
				if agg, ok := sub.(*ast.Aggregate); ok {
					ck.bindAtomTypes(agg.Body)
				}
			})
		}
	}
}

func (ck *clauseCheck) noteVarType(v *ast.Var, t value.Type) {
	if prev, ok := ck.types[v.Name]; ok {
		if prev != t {
			ck.a.errorf(v.Pos, "variable %s used with conflicting types %s and %s", v.Name, prev, t)
		}
		return
	}
	ck.types[v.Name] = t
}

// propagateEq assigns a type to a variable on one side of x = expr when the
// other side's type is known. Reports whether anything changed.
func (ck *clauseCheck) propagateEq(c *ast.Constraint) bool {
	try := func(v ast.Expr, other ast.Expr) bool {
		vv, ok := v.(*ast.Var)
		if !ok {
			return false
		}
		if _, known := ck.types[vv.Name]; known {
			return false
		}
		t, ok := ck.inferType(other)
		if !ok {
			return false
		}
		ck.types[vv.Name] = t
		return true
	}
	return try(c.L, c.R) || try(c.R, c.L)
}

// inferType computes an expression's type if fully determined.
func (ck *clauseCheck) inferType(e ast.Expr) (value.Type, bool) {
	switch e := e.(type) {
	case *ast.NumLit:
		return value.Number, true
	case *ast.UnsignedLit:
		return value.Unsigned, true
	case *ast.FloatLit:
		return value.Float, true
	case *ast.StrLit:
		return value.Symbol, true
	case *ast.Var:
		t, ok := ck.types[e.Name]
		return t, ok
	case *ast.BinExpr:
		lt, lok := ck.inferType(e.L)
		if lok {
			return lt, true
		}
		return ck.inferType(e.R)
	case *ast.UnExpr:
		return ck.inferType(e.E)
	case *ast.Call:
		switch e.Name {
		case "cat", "substr", "to_string":
			return value.Symbol, true
		case "strlen", "ord", "to_number":
			return value.Number, true
		case "min", "max":
			if len(e.Args) > 0 {
				return ck.inferType(e.Args[0])
			}
			return 0, false
		default:
			return 0, false
		}
	case *ast.Aggregate:
		if e.Kind == ast.AggCount {
			return value.Number, true
		}
		if e.Target != nil {
			return ck.inferType(e.Target)
		}
		return 0, false
	default:
		return 0, false
	}
}

// --- groundedness ---

// GroundVars computes the set of variables bound by the given conjunction,
// starting from the variables in outer (for aggregate bodies). It is
// exported for the lint rules, which reuse the checker's groundedness
// semantics on sources that may not otherwise pass analysis.
func GroundVars(lits []ast.Literal, outer map[string]bool) map[string]bool {
	bound := map[string]bool{}
	for v := range outer {
		bound[v] = true
	}
	// Positive atoms bind their direct variable arguments.
	for _, l := range lits {
		if at, ok := l.(*ast.Atom); ok {
			for _, e := range at.Args {
				if v, ok := e.(*ast.Var); ok {
					bound[v.Name] = true
				}
			}
		}
	}
	// Equalities v = ground-expr bind v; iterate to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, l := range lits {
			cons, ok := l.(*ast.Constraint)
			if !ok || cons.Op != ast.CmpEQ {
				continue
			}
			try := func(v, other ast.Expr) {
				vv, ok := v.(*ast.Var)
				if !ok || bound[vv.Name] {
					return
				}
				if ExprGround(other, bound) {
					bound[vv.Name] = true
					changed = true
				}
			}
			try(cons.L, cons.R)
			try(cons.R, cons.L)
		}
	}
	return bound
}

// ExprGround reports whether every variable in e is bound. Aggregates are
// ground when their outer-referenced variables are bound (local variables
// are bound by the aggregate body itself).
func ExprGround(e ast.Expr, bound map[string]bool) bool {
	switch e := e.(type) {
	case *ast.Var:
		return bound[e.Name]
	case *ast.Wildcard, *ast.NumLit, *ast.UnsignedLit, *ast.FloatLit, *ast.StrLit:
		return true
	case *ast.BinExpr:
		return ExprGround(e.L, bound) && ExprGround(e.R, bound)
	case *ast.UnExpr:
		return ExprGround(e.E, bound)
	case *ast.Call:
		for _, a := range e.Args {
			if !ExprGround(a, bound) {
				return false
			}
		}
		return true
	case *ast.Aggregate:
		inner := GroundVars(e.Body, bound)
		for _, l := range e.Body {
			if !LiteralGround(l, inner) {
				return false
			}
		}
		if e.Target != nil && !ExprGround(e.Target, inner) {
			return false
		}
		return true
	default:
		return false
	}
}

// LiteralGround checks that the non-binding parts of a literal are ground.
func LiteralGround(l ast.Literal, bound map[string]bool) bool {
	switch l := l.(type) {
	case *ast.Atom:
		for _, e := range l.Args {
			if _, isVar := e.(*ast.Var); isVar {
				continue // binding position
			}
			if !ExprGround(e, bound) {
				return false
			}
		}
		return true
	case *ast.Negation:
		for _, e := range l.Atom.Args {
			if w, ok := e.(*ast.Wildcard); ok {
				_ = w
				continue
			}
			if !ExprGround(e, bound) {
				return false
			}
		}
		return true
	case *ast.Constraint:
		// Binding equalities were handled in GroundVars; remaining operands
		// must be ground.
		return ExprGround(l.L, bound) && ExprGround(l.R, bound)
	default:
		return false
	}
}

func (ck *clauseCheck) checkGroundedness() {
	c := ck.clause
	bound := GroundVars(c.Body, nil)
	for _, e := range c.Head.Args {
		ck.reportUnground(e, bound, c.Head.Pos, "head")
	}
	for _, l := range c.Body {
		switch l := l.(type) {
		case *ast.Negation:
			for _, e := range l.Atom.Args {
				if _, isW := e.(*ast.Wildcard); isW {
					continue
				}
				ck.reportUnground(e, bound, l.Atom.Pos, "negation")
			}
		case *ast.Constraint:
			if l.Op == ast.CmpEQ {
				// At least one side must be ground for an equality;
				// groundVars already used it to bind the other side.
				if !ExprGround(l.L, bound) || !ExprGround(l.R, bound) {
					ck.a.errorf(l.Pos, "ungrounded equality %s", ast.LiteralString(l))
				}
				continue
			}
			ck.reportUnground(l.L, bound, l.Pos, "constraint")
			ck.reportUnground(l.R, bound, l.Pos, "constraint")
		case *ast.Atom:
			for _, e := range l.Args {
				if _, isVar := e.(*ast.Var); isVar {
					continue
				}
				if _, isW := e.(*ast.Wildcard); isW {
					continue
				}
				ck.reportUnground(e, bound, l.Pos, "argument")
			}
		}
	}
}

func (ck *clauseCheck) reportUnground(e ast.Expr, bound map[string]bool, pos ast.Pos, where string) {
	if ExprGround(e, bound) {
		return
	}
	// Name one offending variable for the message.
	var offender string
	ast.WalkExpr(e, func(sub ast.Expr) {
		if v, ok := sub.(*ast.Var); ok && !bound[v.Name] && offender == "" {
			offender = v.Name
		}
	})
	if offender == "" {
		offender = ast.ExprString(e)
	}
	ck.a.errorf(pos, "variable %s is not grounded by a positive body literal (%s)", offender, where)
}

// --- expression type checking ---

func (ck *clauseCheck) typeCheckBody(lits []ast.Literal) {
	for _, l := range lits {
		switch l := l.(type) {
		case *ast.Atom:
			ck.typeCheckAtom(l)
		case *ast.Negation:
			ck.typeCheckAtom(l.Atom)
		case *ast.Constraint:
			lt, lok := ck.inferType(l.L)
			rt, rok := ck.inferType(l.R)
			switch {
			case lok && rok && lt != rt:
				ck.a.errorf(l.Pos, "comparison of %s and %s", lt, rt)
			case lok:
				ck.checkExprType(l.L, lt, l.Pos)
				ck.checkExprType(l.R, lt, l.Pos)
			case rok:
				ck.checkExprType(l.L, rt, l.Pos)
				ck.checkExprType(l.R, rt, l.Pos)
			default:
				ck.a.errorf(l.Pos, "cannot infer types in constraint %s", ast.LiteralString(l))
			}
		}
	}
}

func (ck *clauseCheck) typeCheckAtom(at *ast.Atom) {
	r := ck.a.out.Rels[at.Name]
	if r == nil || len(at.Args) != r.Arity() {
		return // already reported
	}
	for i, e := range at.Args {
		if _, isW := e.(*ast.Wildcard); isW {
			continue
		}
		ck.checkExprType(e, r.Decl.Attrs[i].Type, at.Pos)
	}
}

// checkExprType verifies that e has type want, recursing into operators.
func (ck *clauseCheck) checkExprType(e ast.Expr, want value.Type, pos ast.Pos) {
	switch e := e.(type) {
	case *ast.Wildcard:
		// allowed contexts only; callers filter
	case *ast.Var:
		if t, ok := ck.types[e.Name]; ok && t != want {
			ck.a.errorf(e.Pos, "variable %s has type %s, expected %s", e.Name, t, want)
		}
	case *ast.NumLit:
		if want != value.Number {
			ck.a.errorf(e.Pos, "number literal %d used as %s", e.Val, want)
		}
	case *ast.UnsignedLit:
		if want != value.Unsigned {
			ck.a.errorf(e.Pos, "unsigned literal %du used as %s", e.Val, want)
		}
	case *ast.FloatLit:
		if want != value.Float {
			ck.a.errorf(e.Pos, "float literal used as %s", want)
		}
	case *ast.StrLit:
		if want != value.Symbol {
			ck.a.errorf(e.Pos, "string literal %q used as %s", e.Val, want)
		}
	case *ast.BinExpr:
		switch e.Op {
		case ast.OpBAnd, ast.OpBOr, ast.OpBXor, ast.OpBShl, ast.OpBShr, ast.OpLAnd, ast.OpLOr:
			if want == value.Float || want == value.Symbol {
				ck.a.errorf(e.Pos, "bitwise/logical operator %s cannot produce %s", e.Op, want)
				return
			}
		case ast.OpMod:
			if want == value.Float || want == value.Symbol {
				ck.a.errorf(e.Pos, "operator %% cannot produce %s", want)
				return
			}
		default:
			if want == value.Symbol {
				ck.a.errorf(e.Pos, "arithmetic operator %s cannot produce symbol", e.Op)
				return
			}
		}
		ck.checkExprType(e.L, want, pos)
		ck.checkExprType(e.R, want, pos)
	case *ast.UnExpr:
		switch e.Op {
		case ast.OpNeg:
			if want == value.Symbol || want == value.Unsigned {
				ck.a.errorf(e.Pos, "unary minus cannot produce %s", want)
				return
			}
		case ast.OpBNot, ast.OpLNot:
			if want == value.Float || want == value.Symbol {
				ck.a.errorf(e.Pos, "operator %s cannot produce %s", e.Op, want)
				return
			}
		}
		ck.checkExprType(e.E, want, pos)
	case *ast.Call:
		ck.typeCheckCall(e, want)
	case *ast.Aggregate:
		ck.typeCheckAggregate(e, want)
	}
}

func (ck *clauseCheck) typeCheckCall(e *ast.Call, want value.Type) {
	expectArgs := func(n int) bool {
		if len(e.Args) != n {
			ck.a.errorf(e.Pos, "functor %s expects %d arguments, got %d", e.Name, n, len(e.Args))
			return false
		}
		return true
	}
	switch e.Name {
	case "cat":
		if want != value.Symbol {
			ck.a.errorf(e.Pos, "cat produces symbol, expected %s", want)
		}
		if len(e.Args) < 2 {
			ck.a.errorf(e.Pos, "cat expects at least 2 arguments")
			return
		}
		for _, a := range e.Args {
			ck.checkExprType(a, value.Symbol, e.Pos)
		}
	case "strlen":
		if want != value.Number {
			ck.a.errorf(e.Pos, "strlen produces number, expected %s", want)
		}
		if expectArgs(1) {
			ck.checkExprType(e.Args[0], value.Symbol, e.Pos)
		}
	case "substr":
		if want != value.Symbol {
			ck.a.errorf(e.Pos, "substr produces symbol, expected %s", want)
		}
		if expectArgs(3) {
			ck.checkExprType(e.Args[0], value.Symbol, e.Pos)
			ck.checkExprType(e.Args[1], value.Number, e.Pos)
			ck.checkExprType(e.Args[2], value.Number, e.Pos)
		}
	case "ord":
		if want != value.Number {
			ck.a.errorf(e.Pos, "ord produces number, expected %s", want)
		}
		if expectArgs(1) {
			ck.checkExprType(e.Args[0], value.Symbol, e.Pos)
		}
	case "to_number":
		if want != value.Number {
			ck.a.errorf(e.Pos, "to_number produces number, expected %s", want)
		}
		if expectArgs(1) {
			ck.checkExprType(e.Args[0], value.Symbol, e.Pos)
		}
	case "to_string":
		if want != value.Symbol {
			ck.a.errorf(e.Pos, "to_string produces symbol, expected %s", want)
		}
		if expectArgs(1) {
			ck.checkExprType(e.Args[0], value.Number, e.Pos)
		}
	case "min", "max":
		if len(e.Args) < 2 {
			ck.a.errorf(e.Pos, "%s expects at least 2 arguments", e.Name)
			return
		}
		if want == value.Symbol {
			ck.a.errorf(e.Pos, "%s cannot produce symbol", e.Name)
			return
		}
		for _, a := range e.Args {
			ck.checkExprType(a, want, e.Pos)
		}
	default:
		ck.a.errorf(e.Pos, "unknown functor %s", e.Name)
	}
}

func (ck *clauseCheck) typeCheckAggregate(e *ast.Aggregate, want value.Type) {
	ck.typeCheckBody(e.Body)
	switch e.Kind {
	case ast.AggCount:
		if want != value.Number {
			ck.a.errorf(e.Pos, "count produces number, expected %s", want)
		}
	default:
		if want == value.Symbol {
			ck.a.errorf(e.Pos, "%s aggregate cannot produce symbol", e.Kind)
			return
		}
		if e.Target != nil {
			ck.checkExprType(e.Target, want, e.Pos)
		}
	}
}

// --- stratification ---

// stratify runs Tarjan's SCC algorithm over the predicate dependency graph,
// rejects negative (negation/aggregate) edges inside an SCC, and orders the
// SCCs into strata.
func (a *analysis) stratify() {
	n := len(a.out.RelList)
	type edge struct {
		to       int
		negative bool
	}
	adj := make([][]edge, n)
	var collect func(head *Rel, lits []ast.Literal, negCtx bool)
	collect = func(head *Rel, lits []ast.Literal, negCtx bool) {
		for _, l := range lits {
			switch l := l.(type) {
			case *ast.Atom:
				if r := a.out.Rels[l.Name]; r != nil {
					adj[head.ID] = append(adj[head.ID], edge{to: r.ID, negative: negCtx})
				}
				for _, e := range l.Args {
					ast.WalkExpr(e, func(sub ast.Expr) {
						if agg, ok := sub.(*ast.Aggregate); ok {
							collect(head, agg.Body, true)
						}
					})
				}
			case *ast.Negation:
				if r := a.out.Rels[l.Atom.Name]; r != nil {
					adj[head.ID] = append(adj[head.ID], edge{to: r.ID, negative: true})
				}
			case *ast.Constraint:
				for _, side := range []ast.Expr{l.L, l.R} {
					ast.WalkExpr(side, func(sub ast.Expr) {
						if agg, ok := sub.(*ast.Aggregate); ok {
							collect(head, agg.Body, true)
						}
					})
				}
			}
		}
	}
	for _, r := range a.out.RelList {
		for _, c := range r.Clauses {
			collect(r, c.Body, false)
		}
	}

	// Tarjan SCC (iterative to survive deep programs).
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	counter := 0
	ncomp := 0
	type tframe struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		work := []tframe{{start, 0}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei < len(adj[v]) {
				w := adj[v][f.ei].to
				f.ei++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, tframe{w, 0})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}

	// Reject negative edges within an SCC; mark recursive relations.
	compSize := make([]int, ncomp)
	for _, c := range comp {
		compSize[c]++
	}
	for v, edges := range adj {
		for _, e := range edges {
			if comp[v] == comp[e.to] {
				a.out.RelList[v].Recursive = true
				a.out.RelList[e.to].Recursive = true
				if e.negative {
					a.errorf(a.out.RelList[v].Decl.Pos,
						"program is not stratifiable: %s depends negatively on %s within a recursive cycle",
						a.out.RelList[v].Name(), a.out.RelList[e.to].Name())
				}
			}
		}
	}
	if len(a.errs) > 0 {
		return
	}

	// Order SCCs topologically: dependencies first. Tarjan assigns component
	// numbers in reverse topological order of the condensation (a component
	// is finished only after everything it reaches), so ascending component
	// id already places dependencies before dependents.
	strata := make([]*Stratum, ncomp)
	for i := range strata {
		strata[i] = &Stratum{Index: i}
	}
	for _, r := range a.out.RelList {
		s := strata[comp[r.ID]]
		r.Stratum = s.Index
		s.Rels = append(s.Rels, r)
		if r.Recursive {
			s.Recursive = true
		}
	}
	for _, s := range strata {
		sort.Slice(s.Rels, func(i, j int) bool { return s.Rels[i].ID < s.Rels[j].ID })
	}
	a.out.Strata = strata
}
