package sema

import (
	"strings"
	"testing"

	"sti/internal/parser"
	"sti/internal/value"
)

func analyze(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, errs := Analyze(prog)
	if len(errs) > 0 {
		t.Fatalf("analyze: %v", errs)
	}
	return out
}

func analyzeErr(t *testing.T, src string) []error {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, errs := Analyze(prog)
	if len(errs) == 0 {
		t.Fatalf("expected analysis errors for:\n%s", src)
	}
	return errs
}

func errorsContain(errs []error, substr string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return true
		}
	}
	return false
}

const tcProgram = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func TestBasicProgram(t *testing.T) {
	p := analyze(t, tcProgram)
	if len(p.RelList) != 2 {
		t.Fatalf("rels = %d", len(p.RelList))
	}
	edge, path := p.Rel("edge"), p.Rel("path")
	if !edge.Input || edge.Output {
		t.Fatal("edge directives wrong")
	}
	if !path.Output || path.Input {
		t.Fatal("path directives wrong")
	}
	if edge.Recursive {
		t.Fatal("edge marked recursive")
	}
	if !path.Recursive {
		t.Fatal("path not marked recursive")
	}
	if len(path.Clauses) != 2 {
		t.Fatalf("path clauses = %d", len(path.Clauses))
	}
}

func TestStrataOrder(t *testing.T) {
	p := analyze(t, tcProgram)
	edge, path := p.Rel("edge"), p.Rel("path")
	if edge.Stratum >= path.Stratum {
		t.Fatalf("edge stratum %d, path stratum %d", edge.Stratum, path.Stratum)
	}
	// Strata indices match positions.
	for i, s := range p.Strata {
		if s.Index != i {
			t.Fatalf("stratum %d has index %d", i, s.Index)
		}
	}
	// path stratum is recursive, edge stratum isn't.
	if p.Strata[edge.Stratum].Recursive {
		t.Fatal("edge stratum recursive")
	}
	if !p.Strata[path.Stratum].Recursive {
		t.Fatal("path stratum not recursive")
	}
}

func TestMutualRecursionOneStratum(t *testing.T) {
	p := analyze(t, `
.decl a(x:number)
.decl b(x:number)
.decl seed(x:number)
a(x) :- seed(x).
a(x) :- b(x).
b(x) :- a(x), x < 10.
`)
	if p.Rel("a").Stratum != p.Rel("b").Stratum {
		t.Fatal("mutually recursive relations in different strata")
	}
	if p.Rel("seed").Stratum >= p.Rel("a").Stratum {
		t.Fatal("seed not before a")
	}
}

func TestStratifiedNegationAccepted(t *testing.T) {
	p := analyze(t, `
.decl edge(x:number, y:number)
.decl reach(x:number)
.decl unreach(x:number)
.decl node(x:number)
reach(x) :- edge(x, _).
reach(y) :- reach(x), edge(x, y).
unreach(x) :- node(x), !reach(x).
`)
	if p.Rel("unreach").Stratum <= p.Rel("reach").Stratum {
		t.Fatal("negated dependency not in earlier stratum")
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	errs := analyzeErr(t, `
.decl a(x:number)
.decl b(x:number)
a(x) :- b(x).
b(x) :- a(x), !a(x).
`)
	if !errorsContain(errs, "not stratifiable") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestAggregateStratification(t *testing.T) {
	// Aggregation over the relation being defined is rejected.
	errs := analyzeErr(t, `
.decl r(x:number)
r(n) :- r(x), n = count : { r(x) }.
`)
	if !errorsContain(errs, "not stratifiable") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestUndeclaredRelation(t *testing.T) {
	errs := analyzeErr(t, `a(1).`)
	if !errorsContain(errs, "undeclared") {
		t.Fatalf("errors = %v", errs)
	}
	errs = analyzeErr(t, ".decl a(x:number)\na(x) :- b(x).")
	if !errorsContain(errs, "undeclared relation b") {
		t.Fatalf("errors = %v", errs)
	}
	errs = analyzeErr(t, ".decl a(x:number)\n.input missing")
	if !errorsContain(errs, "undeclared") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestArityMismatch(t *testing.T) {
	errs := analyzeErr(t, ".decl a(x:number)\n.decl b(x:number, y:number)\na(x) :- b(x).")
	if !errorsContain(errs, "arity") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestRedeclaration(t *testing.T) {
	errs := analyzeErr(t, ".decl a(x:number)\n.decl a(y:symbol)")
	if !errorsContain(errs, "redeclared") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestEqrelChecks(t *testing.T) {
	errs := analyzeErr(t, ".decl e(x:number) eqrel")
	if !errorsContain(errs, "binary") {
		t.Fatalf("errors = %v", errs)
	}
	errs = analyzeErr(t, ".decl e(x:number, y:symbol) eqrel")
	if !errorsContain(errs, "equally-typed") {
		t.Fatalf("errors = %v", errs)
	}
	analyze(t, ".decl e(x:number, y:number) eqrel")
}

func TestGroundedness(t *testing.T) {
	// Head variable not bound.
	errs := analyzeErr(t, ".decl a(x:number)\n.decl b(x:number)\na(y) :- b(x).")
	if !errorsContain(errs, "not grounded") {
		t.Fatalf("errors = %v", errs)
	}
	// Negation-only binding is rejected.
	errs = analyzeErr(t, ".decl a(x:number)\n.decl b(x:number)\na(x) :- !b(x).")
	if !errorsContain(errs, "not grounded") {
		t.Fatalf("errors = %v", errs)
	}
	// Constraint-only appearance is rejected.
	errs = analyzeErr(t, ".decl a(x:number)\n.decl b(x:number)\na(1) :- b(x), y < x.")
	if !errorsContain(errs, "not grounded") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestEqualityBinds(t *testing.T) {
	analyze(t, `
.decl a(x:number)
.decl b(x:number)
a(y) :- b(x), y = x + 1.
`)
	// Chained equalities bind through a fixpoint.
	analyze(t, `
.decl a(x:number)
.decl b(x:number)
a(z) :- b(x), z = y * 2, y = x + 1.
`)
	// Circular equalities do not bind.
	errs := analyzeErr(t, `
.decl a(x:number)
.decl b(x:number)
a(y) :- b(x), y = z, z = y.
`)
	if !errorsContain(errs, "ungrounded") && !errorsContain(errs, "not grounded") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestAggregateBindsResult(t *testing.T) {
	p := analyze(t, `
.decl e(x:number, y:number)
.decl r(x:number, n:number)
r(x, n) :- e(x, _), n = count : { e(x, _) }.
`)
	info := p.Clauses[p.Rel("r").Clauses[0]]
	if info.VarTypes["n"] != value.Number {
		t.Fatalf("n type = %v", info.VarTypes["n"])
	}
}

func TestTypeConflicts(t *testing.T) {
	errs := analyzeErr(t, `
.decl a(x:number)
.decl s(x:symbol)
a(x) :- s(x).
`)
	if !errorsContain(errs, "conflicting types") && !errorsContain(errs, "has type symbol, expected number") {
		t.Fatalf("errors = %v", errs)
	}
	// Literal type mismatch in a fact.
	errs = analyzeErr(t, `.decl a(x:symbol)`+"\n"+`a(3).`)
	if !errorsContain(errs, "used as symbol") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestVarTypesInferred(t *testing.T) {
	p := analyze(t, `
.decl e(x:number, s:symbol)
.decl out(s:symbol, n:number)
out(s, y) :- e(x, s), y = x + 1.
`)
	info := p.Clauses[p.Rel("out").Clauses[0]]
	if info.VarTypes["x"] != value.Number || info.VarTypes["s"] != value.Symbol || info.VarTypes["y"] != value.Number {
		t.Fatalf("types = %v", info.VarTypes)
	}
}

func TestFunctorTypeChecks(t *testing.T) {
	analyze(t, `
.decl s(x:symbol)
.decl n(x:number)
n(strlen(x)) :- s(x).
s(cat(x, "!")) :- s(x).
`)
	errs := analyzeErr(t, `
.decl s(x:symbol)
s(x + 1) :- s(x).
`)
	if !errorsContain(errs, "symbol") {
		t.Fatalf("errors = %v", errs)
	}
	errs = analyzeErr(t, `
.decl n(x:number)
n(bogus(x)) :- n(x).
`)
	if !errorsContain(errs, "unknown functor") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestFactChecks(t *testing.T) {
	errs := analyzeErr(t, ".decl a(x:number)\na(x).")
	if !errorsContain(errs, "non-constant") {
		t.Fatalf("errors = %v", errs)
	}
	// Constant-folded facts are fine.
	analyze(t, ".decl a(x:number)\na(1 + 2).")
}

func TestDuplicateAttr(t *testing.T) {
	errs := analyzeErr(t, ".decl a(x:number, x:number)")
	if !errorsContain(errs, "duplicate attribute") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestLongChainStratification(t *testing.T) {
	// A linear chain of 50 relations exercises the iterative Tarjan.
	var b strings.Builder
	b.WriteString(".decl r0(x:number)\nr0(1).\n")
	for i := 1; i < 50; i++ {
		b.WriteString(".decl r" + itoa(i) + "(x:number)\n")
		b.WriteString("r" + itoa(i) + "(x) :- r" + itoa(i-1) + "(x).\n")
	}
	p := analyze(t, b.String())
	for i := 1; i < 50; i++ {
		if p.Rel("r"+itoa(i)).Stratum <= p.Rel("r"+itoa(i-1)).Stratum {
			t.Fatalf("chain stratum order broken at %d", i)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}
