package eio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sti/internal/ram"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

func numRel(name string, arity int) *ram.Relation {
	types := make([]value.Type, arity)
	return &ram.Relation{Name: name, Arity: arity, Types: types}
}

func TestMemRoundTrip(t *testing.T) {
	m := NewMem()
	m.Add("r", tuple.Tuple{1, 2})
	m.Add("r", tuple.Tuple{3, 4})
	rel := numRel("r", 2)
	var got []tuple.Tuple
	err := m.Load(rel, func(tp tuple.Tuple) error {
		got = append(got, tuple.Clone(tp))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][1] != 4 {
		t.Fatalf("loaded %v", got)
	}
	// Store collects.
	it := &sliceIter{ts: got}
	if err := m.Store(rel, it); err != nil {
		t.Fatal(err)
	}
	if len(m.Out["r"]) != 2 {
		t.Fatalf("stored %v", m.Out["r"])
	}
	if err := m.PrintSize(rel, 7); err != nil || m.Sizes["r"] != 7 {
		t.Fatal("printsize")
	}
}

func TestMemArityMismatch(t *testing.T) {
	m := NewMem()
	m.Add("r", tuple.Tuple{1})
	err := m.Load(numRel("r", 2), func(tuple.Tuple) error { return nil })
	if err == nil {
		t.Fatal("arity mismatch not reported")
	}
}

type sliceIter struct {
	ts []tuple.Tuple
	i  int
}

func (s *sliceIter) Next() (tuple.Tuple, bool) {
	if s.i >= len(s.ts) {
		return nil, false
	}
	s.i++
	return s.ts[s.i-1], true
}

func TestDirAllTypes(t *testing.T) {
	dir := t.TempDir()
	st := symtab.New()
	rel := &ram.Relation{
		Name:  "m",
		Arity: 4,
		Types: []value.Type{value.Number, value.Unsigned, value.Float, value.Symbol},
	}
	content := "-5\t4000000000\t2.5\thello world\n0\t0\t-1.25\t\n"
	if err := os.WriteFile(filepath.Join(dir, "m.facts"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d := &Dir{InputDir: dir, OutputDir: dir, Symbols: st}
	var rows []tuple.Tuple
	if err := d.Load(rel, func(tp tuple.Tuple) error {
		rows = append(rows, tuple.Clone(tp))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if value.AsInt(rows[0][0]) != -5 || rows[0][1] != 4000000000 ||
		value.AsFloat(rows[0][2]) != 2.5 || st.Resolve(rows[0][3]) != "hello world" {
		t.Fatalf("row 0 = %v", rows[0])
	}
	if st.Resolve(rows[1][3]) != "" {
		t.Fatal("empty symbol field not preserved")
	}

	// Write back and compare.
	if err := d.Store(rel, &sliceIter{ts: rows}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "m.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "-5\t4000000000\t2.5\thello world") {
		t.Fatalf("m.csv = %q", data)
	}
}

func TestDirParseErrors(t *testing.T) {
	dir := t.TempDir()
	st := symtab.New()
	d := &Dir{InputDir: dir, OutputDir: dir, Symbols: st}
	rel := &ram.Relation{Name: "r", Arity: 1, Types: []value.Type{value.Number}}
	for name, content := range map[string]string{
		"bad number": "abc\n",
		"bad arity":  "1\t2\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, "r.facts"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := d.Load(rel, func(tuple.Tuple) error { return nil }); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestDirRowErrors pins the typed error contract: malformed rows surface
// as *RowError carrying the file, 1-based line, the byte column of the
// offending field (0 for whole-row errors like arity mismatches), and the
// relation name, rendered as path:line:col.
func TestDirRowErrors(t *testing.T) {
	dir := t.TempDir()
	st := symtab.New()
	d := &Dir{InputDir: dir, Symbols: st}
	rel := &ram.Relation{Name: "pair", Arity: 2,
		Types: []value.Type{value.Number, value.Symbol}}
	cases := []struct {
		name, content string
		wantLine      int
		wantCol       int
	}{
		{"short row", "1\tok\n2\n", 2, 0},
		{"arity mismatch", "1\ta\tb\n", 1, 0},
		{"unterminated quoted symbol", "1\tok\n22\t\"oops\n", 2, 4},
		{"bad number", "x\tok\n", 1, 1},
	}
	for _, tc := range cases {
		if err := os.WriteFile(filepath.Join(dir, "pair.facts"), []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		err := d.Load(rel, func(tuple.Tuple) error { return nil })
		var re *RowError
		if !errors.As(err, &re) {
			t.Errorf("%s: error %v is not a *RowError", tc.name, err)
			continue
		}
		if re.Line != tc.wantLine || re.Col != tc.wantCol || re.Rel != "pair" || !strings.HasSuffix(re.Path, "pair.facts") {
			t.Errorf("%s: RowError = %+v, want line %d col %d", tc.name, re, tc.wantLine, tc.wantCol)
		}
		if re.Unwrap() == nil || !strings.Contains(re.Error(), "pair.facts") {
			t.Errorf("%s: Error/Unwrap malformed: %v", tc.name, re)
		}
		wantLoc := fmt.Sprintf("pair.facts:%d:", tc.wantLine)
		if tc.wantCol > 0 {
			wantLoc = fmt.Sprintf("pair.facts:%d:%d:", tc.wantLine, tc.wantCol)
		}
		if !strings.Contains(re.Error(), wantLoc) {
			t.Errorf("%s: Error() = %q, want location %q", tc.name, re.Error(), wantLoc)
		}
	}
}

// TestQuotedSymbolRoundTrip checks symbols with embedded separators are
// quoted on Store and unquoted on Load, while plain symbols (even with
// spaces) stay verbatim.
func TestQuotedSymbolRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := symtab.New()
	d := &Dir{InputDir: dir, OutputDir: dir, Symbols: st}
	rel := &ram.Relation{Name: "s", Arity: 1, Types: []value.Type{value.Symbol}}
	tricky := []string{"tab\there", "line\nbreak", `"leading quote`, "plain words"}
	var rows []tuple.Tuple
	for _, s := range tricky {
		rows = append(rows, tuple.Tuple{st.Intern(s)})
	}
	if err := d.Store(rel, &sliceIter{ts: rows}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "s.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"tab\there"`) {
		t.Fatalf("tabbed symbol not quoted: %q", data)
	}
	if !strings.Contains(string(data), "plain words\n") {
		t.Fatalf("plain symbol should stay unquoted: %q", data)
	}
	if err := os.Rename(filepath.Join(dir, "s.csv"), filepath.Join(dir, "s.facts")); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := d.Load(rel, func(tp tuple.Tuple) error {
		got = append(got, st.Resolve(tp[0]))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tricky) {
		t.Fatalf("round-trip rows = %v", got)
	}
	want := map[string]bool{}
	for _, s := range tricky {
		want[s] = true
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("round-trip produced unexpected symbol %q (all: %v)", s, got)
		}
	}
}

func TestDirPrintSizeWriter(t *testing.T) {
	var sb strings.Builder
	d := &Dir{W: &sb}
	if err := d.PrintSize(numRel("big", 1), 42); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "big\t42\n" {
		t.Fatalf("printsize output %q", sb.String())
	}
}

func TestDirSkipsBlankLines(t *testing.T) {
	dir := t.TempDir()
	st := symtab.New()
	if err := os.WriteFile(filepath.Join(dir, "r.facts"), []byte("1\n\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := &Dir{InputDir: dir, Symbols: st}
	rel := &ram.Relation{Name: "r", Arity: 1, Types: []value.Type{value.Number}}
	n := 0
	if err := d.Load(rel, func(tuple.Tuple) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d rows", n)
	}
}
