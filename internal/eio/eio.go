// Package eio implements the engine's I/O handlers: LOAD/STORE/PRINTSIZE
// statements are routed through a Handler so programs can run against
// in-memory facts (Mem) or Soufflé-style tab-separated fact files (Dir).
package eio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sti/internal/ram"
	"sti/internal/relation"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

// Handler connects LOAD/STORE/PRINTSIZE statements to the outside world.
type Handler interface {
	// Load feeds input tuples for rel to insert (source order).
	Load(rel *ram.Relation, insert func(tuple.Tuple) error) error
	// Store receives an iterator over rel's tuples in source order.
	Store(rel *ram.Relation, it relation.Iterator) error
	// PrintSize reports rel's cardinality.
	PrintSize(rel *ram.Relation, size int) error
}

// Mem is an in-memory Handler: inputs come from Facts, outputs are
// collected into Out. It is also the default handler (with no facts) when
// none is configured.
type Mem struct {
	Facts map[string][]tuple.Tuple // by relation name, source order
	Out   map[string][]tuple.Tuple
	Sizes map[string]int
}

// NewMemIO returns an empty in-memory handler.
func NewMem() *Mem {
	return &Mem{
		Facts: map[string][]tuple.Tuple{},
		Out:   map[string][]tuple.Tuple{},
		Sizes: map[string]int{},
	}
}

// Add appends an input tuple for relation name.
func (m *Mem) Add(name string, t tuple.Tuple) {
	m.Facts[name] = append(m.Facts[name], tuple.Clone(t))
}

// Load implements Handler.
func (m *Mem) Load(rel *ram.Relation, insert func(tuple.Tuple) error) error {
	for _, t := range m.Facts[rel.Name] {
		if len(t) != rel.Arity {
			return fmt.Errorf("input tuple for %s has arity %d, want %d", rel.Name, len(t), rel.Arity)
		}
		if err := insert(t); err != nil {
			return err
		}
	}
	return nil
}

// Store implements Handler.
func (m *Mem) Store(rel *ram.Relation, it relation.Iterator) error {
	var out []tuple.Tuple
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, tuple.Clone(t))
	}
	m.Out[rel.Name] = out
	return nil
}

// PrintSize implements Handler.
func (m *Mem) PrintSize(rel *ram.Relation, size int) error {
	m.Sizes[rel.Name] = size
	return nil
}

// RowError describes one malformed row in a fact file: which file, which
// line, which relation, and the underlying parse problem. Dir.Load wraps
// every per-row failure in it, so callers can errors.As for the position.
type RowError struct {
	Path string // fact file path
	Line int    // 1-based line number
	Col  int    // 1-based byte column of the offending field; 0 if whole-row
	Rel  string // relation being loaded
	Err  error  // underlying cause
}

func (e *RowError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("%s:%d:%d: relation %s: %v", e.Path, e.Line, e.Col, e.Rel, e.Err)
	}
	return fmt.Sprintf("%s:%d: relation %s: %v", e.Path, e.Line, e.Rel, e.Err)
}

func (e *RowError) Unwrap() error { return e.Err }

// Dir reads and writes tab-separated fact files <dir>/<relation>.facts
// and <dir>/<relation>.csv, the Soufflé file convention. Symbols are
// resolved through the engine's symbol table; PrintSize writes to W.
type Dir struct {
	InputDir  string
	OutputDir string
	Symbols   *symtab.Table
	W         io.Writer
}

// Load implements Handler.
func (d *Dir) Load(rel *ram.Relation, insert func(tuple.Tuple) error) error {
	path := filepath.Join(d.InputDir, rel.Name+".facts")
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	t := make(tuple.Tuple, rel.Arity)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != rel.Arity {
			return &RowError{Path: path, Line: lineNo, Rel: rel.Name,
				Err: fmt.Errorf("%d fields, want %d", len(fields), rel.Arity)}
		}
		col := 1
		for i, field := range fields {
			v, err := ParseField(field, rel.Types[i], d.Symbols)
			if err != nil {
				return &RowError{Path: path, Line: lineNo, Col: col, Rel: rel.Name, Err: err}
			}
			t[i] = v
			col += len(field) + 1 // the field plus its tab separator
		}
		if err := insert(t); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ParseField converts one tab-separated field to a value. Symbol fields
// are taken verbatim unless they start with a double quote, in which case
// they must be a complete Go-syntax quoted string (the form Store emits
// for symbols that embed tabs, newlines, or a leading quote); an
// unterminated or otherwise malformed quoted symbol is an error.
func ParseField(s string, ty value.Type, st *symtab.Table) (value.Value, error) {
	switch ty {
	case value.Symbol:
		if strings.HasPrefix(s, `"`) {
			u, err := strconv.Unquote(s)
			if err != nil {
				return 0, fmt.Errorf("malformed quoted symbol %q", s)
			}
			return st.Intern(u), nil
		}
		return st.Intern(s), nil
	case value.Number:
		n, err := strconv.ParseInt(s, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", s)
		}
		return value.FromInt(int32(n)), nil
	case value.Unsigned:
		n, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad unsigned %q", s)
		}
		return value.Value(n), nil
	default:
		f, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return 0, fmt.Errorf("bad float %q", s)
		}
		return value.FromFloat(float32(f)), nil
	}
}

// Store implements Handler.
func (d *Dir) Store(rel *ram.Relation, it relation.Iterator) error {
	if err := os.MkdirAll(d.OutputDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(d.OutputDir, rel.Name+".csv"))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		for i, v := range t {
			if i > 0 {
				if err := w.WriteByte('\t'); err != nil {
					f.Close()
					return err
				}
			}
			if _, err := w.WriteString(formatField(v, rel.Types[i], d.Symbols)); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FormatField renders one value as a tab-separated field, the inverse of
// ParseField: symbols that would not survive a plain round trip come back
// Go-quoted.
func FormatField(v value.Value, ty value.Type, st *symtab.Table) string {
	return formatField(v, ty, st)
}

func formatField(v value.Value, ty value.Type, st *symtab.Table) string {
	switch ty {
	case value.Symbol:
		s := st.Resolve(v)
		// Quote only when the plain form would not survive a round trip:
		// embedded field/row separators or a leading quote.
		if strings.ContainsAny(s, "\t\n\r") || strings.HasPrefix(s, `"`) {
			return strconv.Quote(s)
		}
		return s
	case value.Number:
		return strconv.FormatInt(int64(value.AsInt(v)), 10)
	case value.Unsigned:
		return strconv.FormatUint(uint64(v), 10)
	default:
		return strconv.FormatFloat(float64(value.AsFloat(v)), 'g', -1, 32)
	}
}

// PrintSize implements Handler.
func (d *Dir) PrintSize(rel *ram.Relation, size int) error {
	w := d.W
	if w == nil {
		w = os.Stdout
	}
	_, err := fmt.Fprintf(w, "%s\t%d\n", rel.Name, size)
	return err
}
