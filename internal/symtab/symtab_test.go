package symtab

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternResolve(t *testing.T) {
	st := New()
	a := st.Intern("alpha")
	b := st.Intern("beta")
	if a == b {
		t.Fatal("distinct strings got the same ordinal")
	}
	if st.Intern("alpha") != a {
		t.Fatal("re-interning changed the ordinal")
	}
	if st.Resolve(a) != "alpha" || st.Resolve(b) != "beta" {
		t.Fatal("resolve mismatch")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
}

func TestOrdinalsAreDense(t *testing.T) {
	st := New()
	for i := 0; i < 100; i++ {
		v := st.Intern(fmt.Sprintf("s%d", i))
		if int(v) != i {
			t.Fatalf("ordinal for s%d = %d", i, v)
		}
	}
}

func TestLookup(t *testing.T) {
	st := New()
	if _, ok := st.Lookup("missing"); ok {
		t.Fatal("lookup found a missing symbol")
	}
	v := st.Intern("present")
	got, ok := st.Lookup("present")
	if !ok || got != v {
		t.Fatalf("lookup = %d,%v want %d,true", got, ok, v)
	}
}

func TestEmptyString(t *testing.T) {
	st := New()
	v := st.Intern("")
	if st.Resolve(v) != "" {
		t.Fatal("empty string not interned faithfully")
	}
}

func TestResolveUnknownPanics(t *testing.T) {
	st := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Resolve of unknown ordinal did not panic")
		}
	}()
	st.Resolve(42)
}

func TestConcurrentIntern(t *testing.T) {
	st := New()
	var wg sync.WaitGroup
	const workers, n = 8, 500
	results := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = make([]uint32, n)
			for i := 0; i < n; i++ {
				results[w][i] = st.Intern(fmt.Sprintf("sym%d", i))
			}
		}(w)
	}
	wg.Wait()
	if st.Len() != n {
		t.Fatalf("Len = %d, want %d", st.Len(), n)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < n; i++ {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d got different ordinal for sym%d", w, i)
			}
		}
	}
}
