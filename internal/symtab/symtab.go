// Package symtab implements the engine's symbol table.
//
// Strings are interned once and referred to everywhere else by a dense
// 32-bit ordinal, so that relational data structures only ever store
// integer words (the paper's second de-specialization step, §3).
//
// The table is safe for concurrent use: parallel interpreter workers may
// intern strings (e.g. via the cat functor) while others resolve them.
package symtab

import (
	"fmt"
	"sync"

	"sti/internal/value"
)

// Table interns strings to dense ordinals. The zero value is not usable;
// call New.
type Table struct {
	mu      sync.RWMutex
	ordinal map[string]value.Value
	str     []string
}

// New returns an empty symbol table.
func New() *Table {
	return &Table{ordinal: make(map[string]value.Value)}
}

// Intern returns the ordinal for s, assigning the next free ordinal if s has
// not been seen before.
func (t *Table) Intern(s string) value.Value {
	t.mu.RLock()
	v, ok := t.ordinal[s]
	t.mu.RUnlock()
	if ok {
		return v
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.ordinal[s]; ok {
		return v
	}
	v = value.Value(len(t.str))
	t.ordinal[s] = v
	t.str = append(t.str, s)
	return v
}

// Lookup returns the ordinal for s and whether s has been interned.
func (t *Table) Lookup(s string) (value.Value, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.ordinal[s]
	return v, ok
}

// Resolve returns the string for ordinal v. It panics if v was never issued
// by this table; that indicates engine corruption, not user error.
func (t *Table) Resolve(v value.Value) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(v) >= len(t.str) {
		panic(fmt.Sprintf("symtab: unknown symbol ordinal %d (table size %d)", v, len(t.str)))
	}
	return t.str[v]
}

// Len reports the number of interned symbols.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.str)
}

// Strings returns a snapshot of all interned strings in ordinal order.
func (t *Table) Strings() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.str))
	copy(out, t.str)
	return out
}
