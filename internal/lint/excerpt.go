package lint

import (
	"fmt"
	"strings"
)

// Excerpt renders the source line a diagnostic points at with a caret
// marking the column, gcc-style:
//
//	5 | out(x, y) :- e(x), y > 0.
//	  |        ^
//
// Returns "" when the position does not fall inside src (line 0, or past
// the end), so callers can print diagnostics for synthetic positions
// without a broken marker.
func Excerpt(src string, line, col int) string {
	if line <= 0 {
		return ""
	}
	lines := strings.Split(src, "\n")
	if line > len(lines) {
		return ""
	}
	text := strings.TrimRight(lines[line-1], "\r")
	gutter := fmt.Sprintf("%5d | ", line)
	var b strings.Builder
	b.WriteString(gutter)
	b.WriteString(text)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", len(gutter)-2))
	b.WriteString("| ")
	// Advance to the caret column, preserving tabs so the caret lines up
	// under tab-indented source.
	for i := 0; i < col-1 && i < len(text); i++ {
		if text[i] == '\t' {
			b.WriteByte('\t')
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('^')
	return b.String()
}
