package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sti/internal/lint"
	"sti/internal/parser"
)

func checkFile(t *testing.T, path string) []lint.Diagnostic {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return lint.Check(path, prog)
}

// at is the position-and-code fingerprint of one expected diagnostic.
type at struct {
	line, col int
	code      string
}

func wantDiags(t *testing.T, got []lint.Diagnostic, want []at) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(want), render(got))
	}
	for i, w := range want {
		d := got[i]
		if d.Line != w.line || d.Col != w.col || d.Code != w.code {
			t.Errorf("diagnostic %d = %s:%d:%d [%s], want %d:%d [%s]",
				i, d.Path, d.Line, d.Col, d.Code, w.line, w.col, w.code)
		}
	}
}

func render(ds []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

const corpusDir = "../../examples/lint"

func TestCorpusSeededDefects(t *testing.T) {
	cases := []struct {
		file string
		want []at
	}{
		{"unused_relation.dl", []at{{4, 1, "unused-relation"}}},
		{"unbound_head.dl", []at{{8, 8, "unbound-head-var"}}},
		{"singleton.dl", []at{{7, 16, "singleton-var"}}},
		{"always_empty.dl", []at{{10, 1, "always-empty-rule"}}},
		{"unreachable_rule.dl", []at{
			{11, 1, "unreachable-rule"},
			{12, 1, "unreachable-rule"},
			{13, 1, "unreachable-rule"},
		}},
		{"negation_in_recursion.dl", []at{{10, 19, "negation-in-recursion"}}},
		{"input_and_derived.dl", []at{{14, 1, "input-and-derived"}}},
		{"persist_gated.dl", []at{{8, 1, "persist-gated"}}},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			got := checkFile(t, filepath.Join(corpusDir, c.file))
			wantDiags(t, got, c.want)
		})
	}
}

// TestCorpusFilesFireOnlyTheirOwnKind: each seeded file demonstrates one
// diagnostic kind without tripping the others, and the corpus covers every
// rule the checker implements.
func TestCorpusFilesFireOnlyTheirOwnKind(t *testing.T) {
	kinds := map[string]string{
		"unused_relation.dl":       "unused-relation",
		"unbound_head.dl":          "unbound-head-var",
		"singleton.dl":             "singleton-var",
		"always_empty.dl":          "always-empty-rule",
		"unreachable_rule.dl":      "unreachable-rule",
		"negation_in_recursion.dl": "negation-in-recursion",
		"input_and_derived.dl":     "input-and-derived",
		"persist_gated.dl":         "persist-gated",
	}
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".dl") {
			continue
		}
		seen++
		want, ok := kinds[e.Name()]
		if !ok {
			t.Errorf("corpus file %s has no registered diagnostic kind", e.Name())
			continue
		}
		got := checkFile(t, filepath.Join(corpusDir, e.Name()))
		if len(got) == 0 {
			t.Errorf("%s: no diagnostics fired", e.Name())
		}
		for _, d := range got {
			if d.Code != want {
				t.Errorf("%s: unexpected %s diagnostic: %s", e.Name(), d.Code, d)
			}
		}
	}
	if seen != len(kinds) {
		t.Errorf("corpus has %d .dl files, want %d (one per diagnostic kind)", seen, len(kinds))
	}
}

// TestShippedExamplesLintClean: every example outside the seeded-defect
// corpus must produce zero diagnostics.
func TestShippedExamplesLintClean(t *testing.T) {
	paths, err := filepath.Glob("../../examples/*.dl")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no shipped .dl examples")
	}
	for _, p := range paths {
		if got := checkFile(t, p); len(got) != 0 {
			t.Errorf("%s is not lint-clean:\n%s", p, render(got))
		}
	}
}

func TestExcerpt(t *testing.T) {
	src := "line one\nout(x, y) :- e(x), y > 0.\n"
	got := lint.Excerpt(src, 2, 8)
	if !strings.Contains(got, "out(x, y)") || !strings.Contains(got, "^") {
		t.Fatalf("excerpt missing source or caret:\n%s", got)
	}
	lines := strings.Split(got, "\n")
	if len(lines) != 2 {
		t.Fatalf("excerpt is %d lines, want 2:\n%s", len(lines), got)
	}
	caret := strings.IndexByte(lines[1], '^')
	text := strings.Index(lines[0], "out(")
	if caret-strings.Index(lines[1], "| ")-2 != 7 || text < 0 {
		t.Fatalf("caret misaligned (index %d):\n%s", caret, got)
	}
	if lint.Excerpt(src, 0, 1) != "" || lint.Excerpt(src, 99, 1) != "" {
		t.Fatal("out-of-range positions must yield empty excerpts")
	}
}
