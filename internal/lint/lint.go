// Package lint implements source-level diagnostics over parsed Datalog
// programs. The rules work on the AST alone — before semantic analysis — so
// they fire even on files sema rejects, and each one explains a likely
// authoring mistake rather than a hard error:
//
//	unused-relation        declared but never read, and not an output
//	unbound-head-var       head variable no positive body literal grounds
//	singleton-var          named variable used exactly once in its clause
//	always-empty-rule      body reads a relation that can never hold facts
//	unreachable-rule       derived facts can never reach an output
//	negation-in-recursion  negation through a recursive cycle (unstratifiable)
//	input-and-derived      rules derive an .input relation (loses the
//	                       incremental delete path: retraction cannot
//	                       attribute tuples to EDB vs rules)
//	persist-gated          an .input relation whose representation cannot
//	                       live on the durable tier (eqrel has no
//	                       persistent union-find): under -data it silently
//	                       stays memory-resident, rebuilt on every restart
//
// The groundedness rule reuses the checker's semantics via the exported
// sema.GroundVars helpers, so lint and sema never disagree about what is
// bound.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"sti/internal/ast"
	"sti/internal/sema"
)

// Severity grades a diagnostic.
type Severity string

// The severities: errors mark programs sema would reject, warnings mark
// suspicious-but-valid code.
const (
	Error   Severity = "error"
	Warning Severity = "warning"
)

// Diagnostic is one lint finding, positioned in the source.
type Diagnostic struct {
	Path     string   `json:"path"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Msg      string   `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", d.Path, d.Line, d.Col, d.Severity, d.Msg, d.Code)
}

// Check runs every rule over the parsed program and returns the findings
// sorted by position. path is used only to label diagnostics.
func Check(path string, prog *ast.Program) []Diagnostic {
	if prog == nil {
		return nil
	}
	c := &checker{path: path, prog: prog}
	c.unusedRelations()
	c.unboundHeadVars()
	c.singletonVars()
	c.alwaysEmptyRules()
	c.unreachableRules()
	c.negationInRecursion()
	c.inputAndDerived()
	c.persistGated()
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	return c.diags
}

type checker struct {
	path  string
	prog  *ast.Program
	diags []Diagnostic
}

func (c *checker) add(pos ast.Pos, code string, sev Severity, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Path:     c.path,
		Line:     pos.Line,
		Col:      pos.Col,
		Code:     code,
		Severity: sev,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// directives returns the relation names carrying the given directive kinds.
func (c *checker) directives(kinds ...ast.DirectiveKind) map[string]bool {
	out := map[string]bool{}
	for _, d := range c.prog.Directives {
		for _, k := range kinds {
			if d.Kind == k {
				out[d.Rel] = true
			}
		}
	}
	return out
}

// bodyAtoms visits every atom read by a clause body: positive atoms,
// negated atoms, and atoms inside aggregate bodies, recursively.
func bodyAtoms(body []ast.Literal, fn func(at *ast.Atom, negated bool)) {
	for _, l := range body {
		switch l := l.(type) {
		case *ast.Atom:
			fn(l, false)
		case *ast.Negation:
			fn(l.Atom, true)
		}
	}
	// Aggregate bodies hide more reads inside expressions.
	ast.WalkLiterals(body, func(e ast.Expr) {
		if agg, ok := e.(*ast.Aggregate); ok {
			for _, l := range agg.Body {
				switch l := l.(type) {
				case *ast.Atom:
					fn(l, false)
				case *ast.Negation:
					fn(l.Atom, true)
				}
			}
		}
	})
}

// unusedRelations: a declared relation nothing reads and no .output or
// .printsize directive observes is dead weight.
func (c *checker) unusedRelations() {
	read := map[string]bool{}
	for _, cl := range c.prog.Clauses {
		bodyAtoms(cl.Body, func(at *ast.Atom, _ bool) { read[at.Name] = true })
	}
	observed := c.directives(ast.DirOutput, ast.DirPrintSize)
	for _, d := range c.prog.Decls {
		if !read[d.Name] && !observed[d.Name] {
			c.add(d.Pos, "unused-relation", Warning,
				"relation %s is declared but never read and never output", d.Name)
		}
	}
}

// unboundHeadVars: every head variable must be grounded by a positive body
// literal — the same rule sema enforces, surfaced per variable.
func (c *checker) unboundHeadVars() {
	for _, cl := range c.prog.Clauses {
		if cl.IsFact() {
			continue // fact groundedness is a constant-ness question, sema's job
		}
		bound := sema.GroundVars(cl.Body, nil)
		reported := map[string]bool{}
		for _, e := range cl.Head.Args {
			ast.WalkExpr(e, func(sub ast.Expr) {
				v, ok := sub.(*ast.Var)
				if !ok || bound[v.Name] || reported[v.Name] {
					return
				}
				reported[v.Name] = true
				c.add(v.Pos, "unbound-head-var", Error,
					"head variable %s is not bound by any positive body literal", v.Name)
			})
		}
	}
}

// singletonVars: a named variable used exactly once joins nothing and
// constrains nothing — it is almost always a typo for another variable or
// an intended wildcard.
func (c *checker) singletonVars() {
	for _, cl := range c.prog.Clauses {
		count := map[string]int{}
		first := map[string]ast.Pos{}
		cl.Walk(func(e ast.Expr) {
			if v, ok := e.(*ast.Var); ok {
				count[v.Name]++
				if count[v.Name] == 1 {
					first[v.Name] = v.Pos
				}
			}
		})
		var names []string
		for name, n := range count {
			if n == 1 {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			c.add(first[name], "singleton-var", Warning,
				"variable %s occurs only once in this clause; use _ if the value is irrelevant", name)
		}
	}
}

// alwaysEmptyRules: a forward fixpoint over "may hold facts" — a relation
// may be nonempty if it is an input, has a fact, or has a rule whose
// positive atoms may all be nonempty. A rule reading a never-nonempty
// relation positively can never fire.
func (c *checker) alwaysEmptyRules() {
	mayBeNonempty := c.directives(ast.DirInput)
	for _, cl := range c.prog.Clauses {
		if cl.IsFact() {
			mayBeNonempty[cl.Head.Name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, cl := range c.prog.Clauses {
			if cl.IsFact() || mayBeNonempty[cl.Head.Name] {
				continue
			}
			feasible := true
			for _, l := range cl.Body {
				if at, ok := l.(*ast.Atom); ok && !mayBeNonempty[at.Name] {
					feasible = false
					break
				}
			}
			if feasible {
				mayBeNonempty[cl.Head.Name] = true
				changed = true
			}
		}
	}
	for _, cl := range c.prog.Clauses {
		if cl.IsFact() {
			continue
		}
		var empty []string
		seen := map[string]bool{}
		for _, l := range cl.Body {
			if at, ok := l.(*ast.Atom); ok && !mayBeNonempty[at.Name] && !seen[at.Name] {
				seen[at.Name] = true
				empty = append(empty, at.Name)
			}
		}
		if len(empty) > 0 {
			c.add(cl.Pos, "always-empty-rule", Warning,
				"rule can never fire: relation %s has no facts, no input, and no feasible rule",
				strings.Join(empty, ", "))
		}
	}
}

// unreachableRules: backward reachability from output/printsize sinks over
// the body→head dependence graph. A rule whose head cannot reach a sink
// computes results nothing observes. Programs with no sinks at all are
// skipped — they are driven through engine queries, where everything is
// observable.
func (c *checker) unreachableRules() {
	sinks := c.directives(ast.DirOutput, ast.DirPrintSize)
	if len(sinks) == 0 {
		return
	}
	// feeds[b] = set of head relations with b in the body.
	feeds := map[string]map[string]bool{}
	for _, cl := range c.prog.Clauses {
		bodyAtoms(cl.Body, func(at *ast.Atom, _ bool) {
			if feeds[at.Name] == nil {
				feeds[at.Name] = map[string]bool{}
			}
			feeds[at.Name][cl.Head.Name] = true
		})
	}
	// Backward: rel reaches a sink if it is a sink or feeds one that does.
	reaches := map[string]bool{}
	for rel := range sinks {
		reaches[rel] = true
	}
	for changed := true; changed; {
		changed = false
		for rel, heads := range feeds {
			if reaches[rel] {
				continue
			}
			for h := range heads {
				if reaches[h] {
					reaches[rel] = true
					changed = true
					break
				}
			}
		}
	}
	for _, cl := range c.prog.Clauses {
		if cl.IsFact() {
			continue
		}
		if !reaches[cl.Head.Name] {
			c.add(cl.Pos, "unreachable-rule", Warning,
				"rule derives %s, which never reaches an .output or .printsize relation", cl.Head.Name)
		}
	}
}

// negationInRecursion: Tarjan SCC over the relation dependence graph; a
// negated edge inside a cycle means the program has no stratification and
// sema will reject it.
func (c *checker) negationInRecursion() {
	type edge struct {
		from, to string
		negated  bool
		pos      ast.Pos
	}
	var edges []edge
	index := map[string]int{}
	nodeOf := func(name string) int {
		if i, ok := index[name]; ok {
			return i
		}
		i := len(index)
		index[name] = i
		return i
	}
	for _, cl := range c.prog.Clauses {
		head := cl.Head.Name
		nodeOf(head)
		bodyAtoms(cl.Body, func(at *ast.Atom, negated bool) {
			nodeOf(at.Name)
			edges = append(edges, edge{from: at.Name, to: head, negated: negated, pos: at.Pos})
		})
	}
	adj := make([][]int, len(index))
	for _, e := range edges {
		adj[index[e.from]] = append(adj[index[e.from]], index[e.to])
	}
	scc := tarjan(adj)
	for _, e := range edges {
		if e.negated && scc[index[e.from]] == scc[index[e.to]] {
			c.add(e.pos, "negation-in-recursion", Warning,
				"negation of %s inside a recursive cycle with %s; the program cannot be stratified",
				e.from, e.to)
		}
	}
}

// inputAndDerived: a rule head naming an .input relation makes its tuples
// attributable to both EDB assertions and derivations. Such relations
// silently force the resident database's full-recompute fallback — the
// delete program cannot decide which origin holds a tuple up — and are the
// most common reason an Apply stream loses the incremental path.
func (c *checker) inputAndDerived() {
	inputs := c.directives(ast.DirInput)
	warned := map[string]bool{}
	for _, cl := range c.prog.Clauses {
		if len(cl.Body) == 0 {
			continue // ground facts are EDB, not derivations
		}
		name := cl.Head.Name
		if !inputs[name] || warned[name] {
			continue
		}
		warned[name] = true
		c.add(cl.Pos, "input-and-derived", Warning,
			"relation %s is both .input and derived by rules; retraction cannot attribute its tuples, forcing the recompute fallback on every delete batch", name)
	}
}

// persistGated: the durable tier (sti serve -data, WithPersistence) backs
// eligible .input relations with on-disk tables, but an eqrel
// representation has no persistent form — the union-find holds implicit
// pairs that never materialize as keys. Such a relation is valid and
// correct under persistence, yet it silently stays memory-resident and is
// rebuilt from the WAL and snapshots on every restart (the runtime records
// the same decision in db.Stats().Persist.Gated). Flagging it at lint time
// surfaces the durability gap before the first restart does.
func (c *checker) persistGated() {
	inputs := c.directives(ast.DirInput)
	for _, d := range c.prog.Decls {
		if d.Rep == ast.RepEqRel && inputs[d.Name] {
			c.add(d.Pos, "persist-gated", Warning,
				"input relation %s is declared eqrel, which has no persistent form; under a durable data directory it stays in memory and is rebuilt on every restart", d.Name)
		}
	}
}

// tarjan returns the strongly connected component ID of each node.
func tarjan(adj [][]int) []int {
	n := len(adj)
	const unvisited = -1
	idx := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range idx {
		idx[i], comp[i] = unvisited, unvisited
	}
	var stack []int
	next, comps := 0, 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		idx[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if idx[w] == unvisited {
				strongconnect(w)
				low[v] = min(low[v], low[w])
			} else if onStack[w] {
				low[v] = min(low[v], idx[w])
			}
		}
		if low[v] == idx[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = comps
				if w == v {
					break
				}
			}
			comps++
		}
	}
	for v := 0; v < n; v++ {
		if idx[v] == unvisited {
			strongconnect(v)
		}
	}
	return comp
}
