package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sample.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return checkFile(fset, f)
}

func TestLeakedHandleReported(t *testing.T) {
	issues := check(t, `
package p

func leak(g *Guard) int {
	h := g.Acquire()
	return h.Epoch()
}
`)
	if len(issues) != 1 || !strings.Contains(issues[0], "never released") {
		t.Fatalf("issues = %v, want one leak report", issues)
	}
	if !strings.Contains(issues[0], "sample.go:5") {
		t.Fatalf("issue lacks position: %v", issues[0])
	}
}

func TestDiscardedHandleReported(t *testing.T) {
	issues := check(t, `
package p

func drop(g *Guard) {
	_ = g.Acquire()
}
`)
	if len(issues) != 1 || !strings.Contains(issues[0], "discarded") {
		t.Fatalf("issues = %v, want one discard report", issues)
	}
}

func TestReleasePatternsAccepted(t *testing.T) {
	for name, src := range map[string]string{
		"direct": `
package p

func ok(g *Guard) {
	h := g.Acquire()
	h.Release()
}
`,
		"deferred": `
package p

func ok(g *Guard) {
	h := g.Acquire()
	defer h.Release()
	use(h.Epoch())
}
`,
		"deferred-closure": `
package p

func ok(g *Guard) {
	h := g.Acquire()
	defer func() { h.Release() }()
}
`,
		"handed-off-composite": `
package p

func ok(g *Guard) *Snap {
	return &Snap{h: g.Acquire()}
}
`,
		"handed-off-var": `
package p

func ok(g *Guard) *Snap {
	h := g.Acquire()
	return &Snap{h: h}
}
`,
		"handed-off-call": `
package p

func ok(g *Guard) {
	h := g.Acquire()
	register(h)
}
`,
		"field-store": `
package p

func ok(s *Snap, g *Guard) {
	s.h = g.Acquire()
}
`,
	} {
		if issues := check(t, src); len(issues) != 0 {
			t.Errorf("%s: unexpected issues %v", name, issues)
		}
	}
}

func TestClosureCheckedSeparately(t *testing.T) {
	// The goroutine closure acquires and releases its own handle; the outer
	// function acquires one and leaks it.
	issues := check(t, `
package p

func mixed(g *Guard) {
	outer := g.Acquire()
	go func() {
		h := g.Acquire()
		h.Release()
	}()
	_ = outer.Epoch()
}
`)
	if len(issues) != 1 || !strings.Contains(issues[0], "outer") {
		t.Fatalf("issues = %v, want exactly the outer leak", issues)
	}
}

func TestClosureLeakReported(t *testing.T) {
	issues := check(t, `
package p

func spawn(g *Guard) {
	go func() {
		h := g.Acquire()
		_ = h.Epoch()
	}()
}
`)
	if len(issues) != 1 {
		t.Fatalf("issues = %v, want the closure leak", issues)
	}
}
