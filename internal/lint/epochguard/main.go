// Command epochguard is a repository-local static check enforcing the
// relation.EpochGuard contract: every snapshot handle obtained with
// Acquire() must be released. A handle that is acquired into a local
// variable and neither Release()d in the same function nor handed off
// (returned, stored in a struct, passed to another function) pins the
// guard's epoch forever and blocks every future writer.
//
// The checker is built on the standard go/parser and go/ast only — no
// external analysis framework — and resolves Acquire() by method name,
// which is unambiguous in this module. It runs in CI next to go vet:
//
//	go run ./internal/lint/epochguard ./...
//
// Exit code 0 means clean, 1 means findings, 2 means an internal error.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var files []string
	for _, arg := range args {
		arg = strings.TrimSuffix(strings.TrimSuffix(arg, "..."), string(filepath.Separator)+"...")
		arg = strings.TrimSuffix(arg, "/...")
		if arg == "" {
			arg = "."
		}
		err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == ".git" || name == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "epochguard:", err)
			os.Exit(2)
		}
	}
	fset := token.NewFileSet()
	found := 0
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epochguard:", err)
			os.Exit(2)
		}
		for _, iss := range checkFile(fset, f) {
			fmt.Fprintln(os.Stderr, iss)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "epochguard: %d unreleased snapshot handle(s)\n", found)
		os.Exit(1)
	}
}

// checkFile reports every Acquire() whose handle provably leaks: assigned
// to a local (or discarded with _) and never released nor handed off
// within the enclosing function.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var issues []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		issues = append(issues, fmt.Sprintf("%s: %s", p, fmt.Sprintf(format, args...)))
	}
	// Visit every function body independently; an acquire inside a closure
	// is checked against the closure's own body (the outer Inspect below
	// reaches nested function literals too, so each gets its own pass).
	visitFunc := func(body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // closure assignments belong to the closure's pass
			}
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range asg.Rhs {
				if !isAcquireCall(rhs) {
					continue
				}
				if i >= len(asg.Lhs) {
					continue
				}
				switch lhs := asg.Lhs[i].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						report(rhs.Pos(), "snapshot handle from Acquire() is discarded without Release()")
						continue
					}
					if !handleResolved(body, asg, lhs.Name) {
						report(rhs.Pos(), "snapshot handle %s from Acquire() is never released or handed off", lhs.Name)
					}
				default:
					// Assignment into a field or index hands the handle off.
				}
			}
			return true
		})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visitFunc(n.Body)
			}
		case *ast.FuncLit:
			visitFunc(n.Body)
		}
		return true
	})
	return issues
}

// isAcquireCall matches x.Acquire() with no arguments.
func isAcquireCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Acquire"
}

// handleResolved reports whether the named handle is released or handed
// off somewhere in the function body after its acquisition: a direct or
// deferred name.Release() call, or any use of the name outside its own
// method calls (passed as an argument, returned, stored in a composite
// literal or another variable, sent on a channel).
func handleResolved(body *ast.BlockStmt, acquire *ast.AssignStmt, name string) bool {
	resolved := false
	ast.Inspect(body, func(n ast.Node) bool {
		if resolved {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == name {
					if sel.Sel.Name == "Release" {
						resolved = true
					}
					return false // reads like h.Epoch() don't hand the handle off
				}
			}
			for _, arg := range n.Args {
				if usesIdent(arg, name) {
					resolved = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesIdent(r, name) {
					resolved = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if usesIdent(el, name) {
					resolved = true
					return false
				}
			}
		case *ast.SendStmt:
			if usesIdent(n.Value, name) {
				resolved = true
				return false
			}
		case *ast.AssignStmt:
			if n == acquire {
				return true
			}
			for _, rhs := range n.Rhs {
				if usesIdent(rhs, name) {
					resolved = true // re-assigned elsewhere; tracked there
					return false
				}
			}
		}
		return true
	})
	return resolved
}

// usesIdent reports whether the expression hands the named handle off: the
// bare identifier appears somewhere other than as the receiver of one of
// its own method calls. h.Epoch() is a read, not a handoff; f(h), h,
// and Snap{h: h} all transfer ownership.
func usesIdent(e ast.Expr, name string) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if used {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == name {
					// Method call on the handle itself: only its arguments
					// could hand the handle off.
					for _, a := range call.Args {
						if usesIdent(a, name) {
							used = true
						}
					}
					return false
				}
			}
			return true
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			// Only the X side can be our ident; don't match field names.
			if usesIdent(sel.X, name) {
				used = true
			}
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}
