package brie

import (
	"math/rand"
	"sort"
	"testing"

	"sti/internal/value"
)

func TestRemoveBasics(t *testing.T) {
	tr := New(2)
	if tr.Remove([]value.Value{1, 2}) {
		t.Fatal("remove from empty trie reported a hit")
	}
	tr.Insert([]value.Value{1, 2})
	tr.Insert([]value.Value{1, 3})
	if tr.Remove([]value.Value{1, 9}) || tr.Remove([]value.Value{9, 2}) {
		t.Fatal("remove of absent tuple reported a hit")
	}
	if !tr.Remove([]value.Value{1, 2}) || tr.Size() != 1 {
		t.Fatalf("remove of present tuple failed (size=%d)", tr.Size())
	}
	if tr.Contains([]value.Value{1, 2}) || !tr.Contains([]value.Value{1, 3}) {
		t.Fatal("membership wrong after remove")
	}
}

// TestRemovePrunesPrefixes checks that HasPrefix stays exact after
// retraction: once the last tuple under a prefix dies, the prefix must
// report absent (interior nodes are pruned, not left dangling).
func TestRemovePrunesPrefixes(t *testing.T) {
	tr := New(3)
	tr.Insert([]value.Value{1, 2, 3})
	tr.Insert([]value.Value{1, 2, 4})
	tr.Insert([]value.Value{1, 5, 6})
	if !tr.Remove([]value.Value{1, 2, 3}) {
		t.Fatal("remove failed")
	}
	if !tr.HasPrefix([]value.Value{1, 2}) {
		t.Fatal("prefix (1,2) vanished while (1,2,4) lives")
	}
	if !tr.Remove([]value.Value{1, 2, 4}) {
		t.Fatal("remove failed")
	}
	if tr.HasPrefix([]value.Value{1, 2}) {
		t.Fatal("prefix (1,2) survives with no tuples under it")
	}
	if !tr.HasPrefix([]value.Value{1}) || !tr.HasPrefix([]value.Value{1, 5}) {
		t.Fatal("pruning removed a still-populated prefix")
	}
	if !tr.Remove([]value.Value{1, 5, 6}) || tr.Size() != 0 {
		t.Fatal("trie not drained")
	}
	if tr.HasPrefix([]value.Value{1}) {
		t.Fatal("prefix survives in an empty trie")
	}
	// Reuse after draining.
	if !tr.Insert([]value.Value{7, 8, 9}) || !tr.HasPrefix([]value.Value{7}) {
		t.Fatal("insert after draining failed")
	}
}

// TestRemoveBlockBoundaries exercises the bitmap leaf layer: values packed
// into one 64-bit block, straddling blocks, and block-emptying removals.
func TestRemoveBlockBoundaries(t *testing.T) {
	tr := New(1)
	vals := []value.Value{0, 1, 63, 64, 65, 127, 128, 1000}
	for _, v := range vals {
		tr.Insert([]value.Value{v})
	}
	for i, v := range vals {
		if !tr.Remove([]value.Value{v}) {
			t.Fatalf("remove(%d) missed", v)
		}
		if tr.Remove([]value.Value{v}) {
			t.Fatalf("second remove(%d) reported a hit", v)
		}
		if tr.Size() != len(vals)-1-i {
			t.Fatalf("size %d after %d removals", tr.Size(), i+1)
		}
		for _, w := range vals[i+1:] {
			if !tr.Contains([]value.Value{w}) {
				t.Fatalf("remove(%d) destroyed sibling %d", v, w)
			}
		}
	}
}

// TestRemoveRandomizedAgainstModel interleaves inserts and removes on a
// 2-ary trie and compares membership, size, and ordered enumeration with a
// map model.
func TestRemoveRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	tr := New(2)
	model := map[[2]value.Value]bool{}
	for step := 0; step < 30000; step++ {
		k := [2]value.Value{value.Value(rng.Intn(200)), value.Value(rng.Intn(200))}
		tup := []value.Value{k[0], k[1]}
		if rng.Intn(3) == 0 {
			if tr.Remove(tup) != model[k] {
				t.Fatalf("step %d: remove(%v) disagrees with model", step, tup)
			}
			delete(model, k)
		} else {
			if tr.Insert(tup) == model[k] {
				t.Fatalf("step %d: insert(%v) newness disagrees with model", step, tup)
			}
			model[k] = true
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("size %d, model %d", tr.Size(), len(model))
	}
	var want [][]value.Value
	for k := range model {
		want = append(want, []value.Value{k[0], k[1]})
	}
	sort.Slice(want, func(i, j int) bool { return lessTuple(want[i], want[j]) })
	got := drain(tr.Iter())
	if len(got) != len(want) {
		t.Fatalf("iteration yields %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("enumeration diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
