package brie

import (
	"sti/internal/tuple"
	"sti/internal/value"
)

// remove clears v's bit, reporting whether it was set. An emptied block is
// compacted out so any()/forEach never observe dead blocks.
func (l *leafSet) remove(v value.Value) bool {
	base := v &^ 63
	i, ok := l.findBlock(base)
	if !ok {
		return false
	}
	bit := uint64(1) << (v & 63)
	if l.blocks[i].bits&bit == 0 {
		return false
	}
	l.blocks[i].bits &^= bit
	if l.blocks[i].bits == 0 {
		l.blocks = append(l.blocks[:i], l.blocks[i+1:]...)
	}
	return true
}

func (l *leafSet) empty() bool { return len(l.blocks) == 0 }

// Remove deletes tup (source order), reporting whether it was present.
// Emptied leaf sets and inner nodes are pruned bottom-up, so HasPrefix and
// AnyMatch — which treat the mere presence of a node as evidence of a
// matching tuple — stay exact after retractions.
func (t *Trie) Remove(tup tuple.Tuple) bool {
	if t.arity == 1 {
		if t.leaf == nil || !t.leaf.remove(tup[0]) {
			return false
		}
		t.size--
		return true
	}

	// Walk to the leaf set, recording the path for pruning.
	type step struct {
		nd *tnode
		i  int
	}
	path := make([]step, 0, t.arity-1)
	nd := &t.root
	for level := 0; level < t.arity-1; level++ {
		i, ok := nd.find(tup[level])
		if !ok {
			return false
		}
		path = append(path, step{nd, i})
		if level == t.arity-2 {
			break
		}
		nd = nd.children[i]
	}
	last := path[len(path)-1]
	ls := last.nd.leaves[last.i]
	if !ls.remove(tup[t.arity-1]) {
		return false
	}
	t.size--

	// Prune upward: drop the value entry whose subtree became empty.
	if !ls.empty() {
		return true
	}
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		s := path[lvl]
		s.nd.vals = append(s.nd.vals[:s.i], s.nd.vals[s.i+1:]...)
		if s.nd.leaves != nil {
			s.nd.leaves = append(s.nd.leaves[:s.i], s.nd.leaves[s.i+1:]...)
		} else {
			s.nd.children = append(s.nd.children[:s.i], s.nd.children[s.i+1:]...)
		}
		if len(s.nd.vals) > 0 {
			break
		}
	}
	return true
}
