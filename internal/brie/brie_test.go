package brie

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sti/internal/value"
)

func drain(it *Iter) [][]value.Value {
	var out [][]value.Value
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		c := make([]value.Value, len(t))
		copy(c, t)
		out = append(out, c)
	}
}

func lessTuple(a, b []value.Value) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestEmpty(t *testing.T) {
	tr := New(3)
	if !tr.Empty() || tr.Size() != 0 || tr.Arity() != 3 {
		t.Fatal("bad empty trie")
	}
	if tr.Contains([]value.Value{1, 2, 3}) {
		t.Error("empty trie contains a tuple")
	}
	if got := drain(tr.Iter()); len(got) != 0 {
		t.Errorf("empty trie yielded %v", got)
	}
}

func TestBadArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestInsertContains(t *testing.T) {
	tr := New(2)
	if !tr.Insert([]value.Value{1, 2}) {
		t.Fatal("first insert not new")
	}
	if tr.Insert([]value.Value{1, 2}) {
		t.Fatal("duplicate insert reported new")
	}
	if !tr.Insert([]value.Value{1, 3}) {
		t.Fatal("sibling insert not new")
	}
	if tr.Size() != 2 {
		t.Fatalf("size = %d", tr.Size())
	}
	if !tr.Contains([]value.Value{1, 2}) || tr.Contains([]value.Value{2, 2}) {
		t.Fatal("contains wrong")
	}
}

func TestOrderedEnumeration(t *testing.T) {
	tr := New(2)
	rng := rand.New(rand.NewSource(3))
	model := map[[2]value.Value]bool{}
	for i := 0; i < 5000; i++ {
		a, b := value.Value(rng.Intn(64)), value.Value(rng.Intn(64))
		tr.Insert([]value.Value{a, b})
		model[[2]value.Value{a, b}] = true
	}
	got := drain(tr.Iter())
	if len(got) != len(model) {
		t.Fatalf("enumerated %d, model %d", len(got), len(model))
	}
	for i := 1; i < len(got); i++ {
		if !lessTuple(got[i-1], got[i]) {
			t.Fatalf("out of order at %d: %v then %v", i, got[i-1], got[i])
		}
	}
	for _, tp := range got {
		if !model[[2]value.Value{tp[0], tp[1]}] {
			t.Fatalf("phantom tuple %v", tp)
		}
	}
}

func TestPrefix(t *testing.T) {
	tr := New(3)
	for a := value.Value(0); a < 5; a++ {
		for b := value.Value(0); b < 4; b++ {
			for c := value.Value(0); c < 3; c++ {
				tr.Insert([]value.Value{a, b, c})
			}
		}
	}
	if got := drain(tr.Prefix([]value.Value{2})); len(got) != 12 {
		t.Fatalf("prefix (2): %d tuples, want 12", len(got))
	}
	if got := drain(tr.Prefix([]value.Value{2, 3})); len(got) != 3 {
		t.Fatalf("prefix (2,3): %d tuples, want 3", len(got))
	}
	got := drain(tr.Prefix([]value.Value{2, 3, 1}))
	if len(got) != 1 || got[0][2] != 1 {
		t.Fatalf("full prefix: %v", got)
	}
	if got := drain(tr.Prefix([]value.Value{9})); len(got) != 0 {
		t.Fatalf("missing prefix yielded %v", got)
	}
	if got := drain(tr.Prefix(nil)); len(got) != 60 {
		t.Fatalf("empty prefix: %d tuples, want 60", len(got))
	}
}

func TestClearSwap(t *testing.T) {
	a, b := New(1), New(1)
	a.Insert([]value.Value{1})
	a.Insert([]value.Value{2})
	b.Insert([]value.Value{7})
	a.Swap(b)
	if a.Size() != 1 || b.Size() != 2 {
		t.Fatalf("swap sizes: a=%d b=%d", a.Size(), b.Size())
	}
	a.Clear()
	if !a.Empty() || a.Contains([]value.Value{7}) {
		t.Fatal("clear failed")
	}
}

func TestArityOne(t *testing.T) {
	tr := New(1)
	for i := 10; i > 0; i-- {
		tr.Insert([]value.Value{value.Value(i)})
	}
	got := drain(tr.Iter())
	if len(got) != 10 {
		t.Fatalf("%d tuples", len(got))
	}
	for i, tp := range got {
		if tp[0] != value.Value(i+1) {
			t.Fatalf("position %d: %v", i, tp)
		}
	}
}

// TestQuickAgainstSortedModel compares full enumeration with a sorted-unique
// reference for random tuples.
func TestQuickAgainstSortedModel(t *testing.T) {
	f := func(raw []uint32) bool {
		tr := New(2)
		seen := map[[2]value.Value]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			k := [2]value.Value{raw[i] % 16, raw[i+1] % 16}
			tr.Insert(k[:])
			seen[k] = true
		}
		var want [][2]value.Value
		for k := range seen {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return lessTuple(want[i][:], want[j][:]) })
		got := drain(tr.Iter())
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseBitmapLeaves(t *testing.T) {
	// A dense run of final elements exercises the bitmap blocks.
	tr := New(2)
	for v := value.Value(100); v < 400; v++ {
		if !tr.Insert([]value.Value{7, v}) {
			t.Fatalf("insert %d reported duplicate", v)
		}
	}
	if tr.Size() != 300 {
		t.Fatalf("size = %d", tr.Size())
	}
	got := drain(tr.Prefix([]value.Value{7}))
	if len(got) != 300 {
		t.Fatalf("prefix scan: %d tuples", len(got))
	}
	for i, tp := range got {
		if tp[1] != value.Value(100+i) {
			t.Fatalf("position %d: %v", i, tp)
		}
	}
	if !tr.Contains([]value.Value{7, 255}) || tr.Contains([]value.Value{7, 400}) {
		t.Fatal("contains over bitmap wrong")
	}
}

func TestBlockBoundaries(t *testing.T) {
	// Values straddling 64-bit block boundaries.
	tr := New(1)
	vals := []value.Value{0, 63, 64, 127, 128, 4095, 4096, ^value.Value(0)}
	for _, v := range vals {
		tr.Insert([]value.Value{v})
	}
	got := drain(tr.Iter())
	if len(got) != len(vals) {
		t.Fatalf("enumerated %d", len(got))
	}
	for i, v := range vals {
		if got[i][0] != v {
			t.Fatalf("position %d: %v want %d", i, got[i], v)
		}
	}
	for _, v := range vals {
		if !tr.Contains([]value.Value{v}) {
			t.Fatalf("missing %d", v)
		}
	}
	if tr.Contains([]value.Value{1}) || tr.Contains([]value.Value{65}) {
		t.Fatal("phantom value")
	}
}

func TestArityOnePrefix(t *testing.T) {
	tr := New(1)
	tr.Insert([]value.Value{5})
	if got := drain(tr.Prefix([]value.Value{5})); len(got) != 1 || got[0][0] != 5 {
		t.Fatalf("full prefix on arity 1: %v", got)
	}
	if got := drain(tr.Prefix([]value.Value{6})); len(got) != 0 {
		t.Fatalf("missing prefix on arity 1: %v", got)
	}
	if !tr.HasPrefix(nil) || !tr.HasPrefix([]value.Value{5}) || tr.HasPrefix([]value.Value{6}) {
		t.Fatal("HasPrefix on arity 1 wrong")
	}
}

func TestPenultimatePrefix(t *testing.T) {
	tr := New(3)
	tr.Insert([]value.Value{1, 2, 3})
	tr.Insert([]value.Value{1, 2, 4})
	// Prefix of length arity-1 lands exactly on a leaf set.
	if got := drain(tr.Prefix([]value.Value{1, 2})); len(got) != 2 {
		t.Fatalf("penultimate prefix: %v", got)
	}
	if !tr.HasPrefix([]value.Value{1, 2}) || tr.HasPrefix([]value.Value{1, 3}) {
		t.Fatal("HasPrefix at penultimate level wrong")
	}
	// Full-arity prefix.
	if got := drain(tr.Prefix([]value.Value{1, 2, 4})); len(got) != 1 || got[0][2] != 4 {
		t.Fatalf("full prefix: %v", got)
	}
	if got := drain(tr.Prefix([]value.Value{1, 2, 9})); len(got) != 0 {
		t.Fatalf("absent full prefix: %v", got)
	}
}
