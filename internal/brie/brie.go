// Package brie implements a trie-based relation store, modelled on Soufflé's
// Brie (Jordan et al., PMAM 2019; paper §2). Tuples are stored level by
// level: the i-th trie level discriminates the i-th tuple element. The trie
// is naturally ordered lexicographically, so prefix searches — the only
// primitive search shape left after the paper's first de-specialization step
// — descend the fixed prefix and enumerate the remaining subtree.
//
// Like Soufflé's Brie, the deepest level specializes for dense data: the
// final tuple elements are stored in sorted 64-bit bitmap blocks, so runs of
// nearby values cost one bit each instead of a slice slot.
package brie

import (
	"math/bits"

	"sti/internal/value"
)

// --- inner levels: sorted values with child pointers ---

type tnode struct {
	vals     []value.Value // sorted, distinct
	children []*tnode      // parallel to vals at inner levels; nil on the penultimate level
	leaves   []*leafSet    // parallel to vals on the penultimate level
}

// find returns the first index i with vals[i] >= v, and whether vals[i] == v.
func (nd *tnode) find(v value.Value) (int, bool) {
	lo, hi := 0, len(nd.vals)
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(nd.vals) && nd.vals[lo] == v
}

// --- leaf level: sorted bitmap blocks ---

// leafSet stores a set of 32-bit values as sorted 64-value bitmap blocks.
type leafSet struct {
	blocks []leafBlock
}

type leafBlock struct {
	base value.Value // multiple of 64
	bits uint64
}

// findBlock returns the first index i with blocks[i].base >= base, and
// whether blocks[i].base == base.
func (l *leafSet) findBlock(base value.Value) (int, bool) {
	lo, hi := 0, len(l.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.blocks[mid].base < base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l.blocks) && l.blocks[lo].base == base
}

func (l *leafSet) insert(v value.Value) bool {
	base := v &^ 63
	bit := uint64(1) << (v & 63)
	i, ok := l.findBlock(base)
	if !ok {
		l.blocks = append(l.blocks, leafBlock{})
		copy(l.blocks[i+1:], l.blocks[i:])
		l.blocks[i] = leafBlock{base: base, bits: bit}
		return true
	}
	if l.blocks[i].bits&bit != 0 {
		return false
	}
	l.blocks[i].bits |= bit
	return true
}

func (l *leafSet) contains(v value.Value) bool {
	i, ok := l.findBlock(v &^ 63)
	return ok && l.blocks[i].bits&(uint64(1)<<(v&63)) != 0
}

func (l *leafSet) any() bool { return len(l.blocks) > 0 }

// forEach visits values in ascending order until fn returns false.
func (l *leafSet) forEach(fn func(value.Value) bool) bool {
	for _, b := range l.blocks {
		bitset := b.bits
		for bitset != 0 {
			v := b.base + value.Value(bits.TrailingZeros64(bitset))
			if !fn(v) {
				return false
			}
			bitset &= bitset - 1
		}
	}
	return true
}

// --- trie ---

// Trie is an ordered set of fixed-arity tuples.
type Trie struct {
	arity int
	root  tnode    // used when arity >= 2
	leaf  *leafSet // used when arity == 1
	size  int
}

// New returns an empty trie for tuples of the given arity (>= 1).
func New(arity int) *Trie {
	if arity < 1 {
		panic("brie: arity must be >= 1")
	}
	t := &Trie{arity: arity}
	if arity == 1 {
		t.leaf = &leafSet{}
	}
	return t
}

// Arity reports the tuple width.
func (t *Trie) Arity() int { return t.arity }

// Size reports the number of stored tuples.
func (t *Trie) Size() int { return t.size }

// Empty reports whether the trie holds no tuples.
func (t *Trie) Empty() bool { return t.size == 0 }

// Clear removes all tuples.
func (t *Trie) Clear() {
	t.root = tnode{}
	if t.arity == 1 {
		t.leaf = &leafSet{}
	}
	t.size = 0
}

// Swap exchanges the contents of two tries of equal arity in O(1).
func (t *Trie) Swap(o *Trie) {
	t.root, o.root = o.root, t.root
	t.leaf, o.leaf = o.leaf, t.leaf
	t.size, o.size = o.size, t.size
}

// descend walks the inner levels for tup[0:arity-1], optionally creating
// nodes, and returns the leaf set for the final element (nil if absent and
// not created).
func (t *Trie) descend(tup []value.Value, create bool) *leafSet {
	if t.arity == 1 {
		return t.leaf
	}
	nd := &t.root
	last := t.arity - 1
	for level := 0; level < last; level++ {
		v := tup[level]
		i, ok := nd.find(v)
		if !ok {
			if !create {
				return nil
			}
			nd.vals = append(nd.vals, 0)
			copy(nd.vals[i+1:], nd.vals[i:])
			nd.vals[i] = v
			if level == last-1 {
				nd.leaves = append(nd.leaves, nil)
				copy(nd.leaves[i+1:], nd.leaves[i:])
				nd.leaves[i] = &leafSet{}
			} else {
				nd.children = append(nd.children, nil)
				copy(nd.children[i+1:], nd.children[i:])
				nd.children[i] = &tnode{}
			}
		}
		if level == last-1 {
			return nd.leaves[i]
		}
		nd = nd.children[i]
	}
	return nil // unreachable
}

// Insert adds tup (len == arity), reporting whether it was newly added.
func (t *Trie) Insert(tup []value.Value) bool {
	leaf := t.descend(tup, true)
	if leaf.insert(tup[t.arity-1]) {
		t.size++
		return true
	}
	return false
}

// InsertAll adds tuples packed back to back in flat (len a multiple of the
// arity), reporting how many were newly added: the bulk entry point of the
// staging-buffer merge path.
func (t *Trie) InsertAll(flat []value.Value) int {
	added := 0
	for i := 0; i+t.arity <= len(flat); i += t.arity {
		if t.Insert(flat[i : i+t.arity]) {
			added++
		}
	}
	return added
}

// Contains reports whether tup is stored.
func (t *Trie) Contains(tup []value.Value) bool {
	leaf := t.descend(tup, false)
	return leaf != nil && leaf.contains(tup[t.arity-1])
}

// HasPrefix reports whether any stored tuple starts with prefix (an empty
// prefix matches any tuple of a non-empty trie).
func (t *Trie) HasPrefix(prefix []value.Value) bool {
	if t.size == 0 {
		return false
	}
	if len(prefix) == 0 {
		return true
	}
	if len(prefix) == t.arity {
		return t.Contains(prefix)
	}
	if t.arity == 1 {
		return t.leaf.contains(prefix[0]) // len(prefix) == arity handled above
	}
	nd := &t.root
	last := t.arity - 1
	for level := 0; level < len(prefix); level++ {
		i, ok := nd.find(prefix[level])
		if !ok {
			return false
		}
		if level == last-1 {
			return nd.leaves[i].any()
		}
		if level < len(prefix)-1 {
			nd = nd.children[i]
		}
	}
	return true
}

// Iter enumerates all tuples in lexicographic order.
func (t *Trie) Iter() *Iter { return t.Prefix(nil) }

// Prefix enumerates, in lexicographic order, all tuples whose first
// len(prefix) elements equal prefix.
func (t *Trie) Prefix(prefix []value.Value) *Iter {
	it := &Iter{arity: t.arity, cur: make([]value.Value, t.arity)}
	if t.arity == 1 {
		if len(prefix) == 1 {
			if t.leaf.contains(prefix[0]) {
				it.cur[0] = prefix[0]
				it.single = true
			}
			return it
		}
		it.pushLeaf(t.leaf)
		return it
	}
	nd := &t.root
	last := t.arity - 1
	for level, v := range prefix {
		i, ok := nd.find(v)
		if !ok {
			return it // empty
		}
		it.cur[level] = v
		switch {
		case level == t.arity-1:
			// Full-arity prefix: the single matching tuple.
			it.single = true
			return it
		case level == last-1:
			if level == len(prefix)-1 {
				it.pushLeaf(nd.leaves[i])
				return it
			}
			// Remaining prefix element is the final one; handled by the
			// full-arity case next iteration via contains.
			if nd.leaves[i].contains(prefix[level+1]) {
				it.cur[level+1] = prefix[level+1]
				it.single = true
			}
			return it
		default:
			nd = nd.children[i]
		}
	}
	it.push(nd, len(prefix))
	return it
}

type iframe struct {
	nd    *tnode
	i     int
	level int
}

// Iter enumerates trie tuples. The yielded slice is reused between calls;
// callers must copy it if they retain it.
type Iter struct {
	arity  int
	cur    []value.Value
	stack  []iframe
	single bool // Prefix matched a complete tuple; emit cur once

	// Leaf-block cursor for the final tuple element.
	leaf     *leafSet
	blockIdx int
	blockBit uint64 // remaining bits of the current block
}

func (it *Iter) push(nd *tnode, level int) {
	it.stack = append(it.stack, iframe{nd, 0, level})
}

func (it *Iter) pushLeaf(l *leafSet) {
	it.leaf = l
	it.blockIdx = 0
	if len(l.blocks) > 0 {
		it.blockBit = l.blocks[0].bits
	}
}

// nextLeafValue advances the leaf cursor; ok=false when drained.
func (it *Iter) nextLeafValue() (value.Value, bool) {
	for it.leaf != nil && it.blockIdx < len(it.leaf.blocks) {
		if it.blockBit != 0 {
			b := it.leaf.blocks[it.blockIdx]
			v := b.base + value.Value(bits.TrailingZeros64(it.blockBit))
			it.blockBit &= it.blockBit - 1
			return v, true
		}
		it.blockIdx++
		if it.blockIdx < len(it.leaf.blocks) {
			it.blockBit = it.leaf.blocks[it.blockIdx].bits
		}
	}
	it.leaf = nil
	return 0, false
}

// Next returns the next tuple, or ok=false when exhausted.
func (it *Iter) Next() ([]value.Value, bool) {
	if it.single {
		it.single = false
		return it.cur, true
	}
	for {
		// Drain the active leaf first.
		if it.leaf != nil {
			if v, ok := it.nextLeafValue(); ok {
				it.cur[it.arity-1] = v
				return it.cur, true
			}
		}
		if len(it.stack) == 0 {
			return nil, false
		}
		top := &it.stack[len(it.stack)-1]
		if top.i >= len(top.nd.vals) {
			it.stack = it.stack[:len(it.stack)-1]
			continue
		}
		it.cur[top.level] = top.nd.vals[top.i]
		if top.level == it.arity-2 {
			it.pushLeaf(top.nd.leaves[top.i])
			top.i++
			continue
		}
		child := top.nd.children[top.i]
		top.i++
		it.push(child, top.level+1)
	}
}
